//! Aggregation microbenchmarks: the server-side cost of intra-tier
//! averaging and cross-tier weighted aggregation (Algorithm 2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fedat_core::aggregate::{aggregate_tiers, cross_tier_weights, weighted_client_average};
use std::hint::black_box;

fn client_updates(clients: usize, dim: usize) -> Vec<(Vec<f32>, usize)> {
    (0..clients)
        .map(|c| {
            let w: Vec<f32> = (0..dim)
                .map(|i| ((c * dim + i) as f32 * 1e-4).sin())
                .collect();
            (w, 40 + c)
        })
        .collect()
}

fn bench_client_average(c: &mut Criterion) {
    let dim = 22_000;
    let mut group = c.benchmark_group("aggregate/intra-tier");
    group.sample_size(20);
    for clients in [5usize, 10, 20] {
        let updates = client_updates(clients, dim);
        group.throughput(Throughput::Elements((clients * dim) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(clients), &updates, |b, u| {
            b.iter(|| {
                let refs: Vec<(&[f32], usize)> =
                    u.iter().map(|(w, n)| (w.as_slice(), *n)).collect();
                black_box(weighted_client_average(&refs))
            })
        });
    }
    group.finish();
}

fn bench_cross_tier(c: &mut Criterion) {
    let dim = 22_000;
    let mut group = c.benchmark_group("aggregate/cross-tier");
    group.sample_size(20);
    for tiers in [3usize, 5, 10] {
        let models: Vec<Vec<f32>> = (0..tiers)
            .map(|t| {
                (0..dim)
                    .map(|i| ((t * dim + i) as f32 * 1e-4).cos())
                    .collect()
            })
            .collect();
        let counts: Vec<u64> = (1..=tiers as u64).rev().map(|x| x * 7).collect();
        group.throughput(Throughput::Elements((tiers * dim) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(tiers), &models, |b, m| {
            b.iter(|| {
                let w = cross_tier_weights(black_box(&counts));
                black_box(aggregate_tiers(black_box(m), &w))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_client_average, bench_cross_tier);
criterion_main!(benches);
