//! Codec microbenchmarks: polyline encode/decode throughput per precision,
//! versus raw and int8 quantization (the transport cost behind Table 2 and
//! Fig. 5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fedat_compress::codec::{NoCompression, PolylineCodec, QuantizeCodec, WireCodec};
use fedat_compress::{DeltaRleCodec, QuantizedCodec, TopKCodec};
use std::hint::black_box;

fn model_weights(n: usize) -> Vec<f32> {
    // Kaiming-ish magnitudes: the realistic payload distribution.
    (0..n)
        .map(|i| ((i as f64 * 0.377).sin() * 0.05) as f32)
        .collect()
}

fn bench_encode(c: &mut Criterion) {
    let weights = model_weights(22_000); // ≈ the CnnLite parameter count
    let mut group = c.benchmark_group("codec/encode");
    group.throughput(Throughput::Elements(weights.len() as u64));
    group.sample_size(20);
    for p in [3u8, 4, 5, 6] {
        let codec = PolylineCodec::new(p);
        group.bench_with_input(BenchmarkId::new("polyline", p), &weights, |b, w| {
            b.iter(|| black_box(codec.encode(black_box(w))))
        });
    }
    let raw = NoCompression;
    group.bench_with_input(BenchmarkId::new("raw", 0), &weights, |b, w| {
        b.iter(|| black_box(raw.encode(black_box(w))))
    });
    let quant = QuantizeCodec;
    group.bench_with_input(BenchmarkId::new("quantize-i8", 0), &weights, |b, w| {
        b.iter(|| black_box(quant.encode(black_box(w))))
    });
    // Reference-aware uplink codecs: encode the post-training model
    // against the broadcast it started from, like `upload_with_ref`.
    let reference = model_weights(22_000);
    let trained: Vec<f32> = reference.iter().map(|w| w + 1e-3).collect();
    group.bench_with_input(BenchmarkId::new("delta-rle", 0), &trained, |b, w| {
        b.iter(|| black_box(DeltaRleCodec.encode_with_ref(black_box(w), Some(&reference))))
    });
    for bits in [4u8, 8] {
        let codec = QuantizedCodec::new(bits);
        group.bench_with_input(BenchmarkId::new("quantized", bits), &trained, |b, w| {
            b.iter(|| black_box(codec.encode_with_ref(black_box(w), Some(&reference))))
        });
    }
    let topk = TopKCodec::new(50);
    group.bench_with_input(BenchmarkId::new("topk-50pm", 0), &trained, |b, w| {
        b.iter(|| black_box(topk.encode_with_ref(black_box(w), Some(&reference))))
    });
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let weights = model_weights(22_000);
    let mut group = c.benchmark_group("codec/decode");
    group.throughput(Throughput::Elements(weights.len() as u64));
    group.sample_size(20);
    for p in [3u8, 4, 6] {
        let codec = PolylineCodec::new(p);
        let blob = codec.encode(&weights);
        group.bench_with_input(BenchmarkId::new("polyline", p), &blob, |b, blob| {
            b.iter(|| black_box(codec.decode(black_box(blob))))
        });
    }
    let reference = model_weights(22_000);
    let trained: Vec<f32> = reference.iter().map(|w| w + 1e-3).collect();
    for (name, blob) in [
        (
            "delta-rle",
            DeltaRleCodec.encode_with_ref(&trained, Some(&reference)),
        ),
        (
            "quantized8",
            QuantizedCodec::new(8).encode_with_ref(&trained, Some(&reference)),
        ),
    ] {
        let codec: Box<dyn WireCodec> = match name {
            "delta-rle" => Box::new(DeltaRleCodec),
            _ => Box::new(QuantizedCodec::new(8)),
        };
        group.bench_with_input(BenchmarkId::new(name, 0), &blob, |b, blob| {
            b.iter(|| black_box(codec.decode_with_ref(black_box(blob), Some(&reference))))
        });
    }
    group.finish();
}

fn bench_roundtrip(c: &mut Criterion) {
    // End-to-end transport cost: encode + decode (what every simulated
    // transfer pays).
    let weights = model_weights(22_000);
    let codec = PolylineCodec::new(4);
    let mut group = c.benchmark_group("codec/roundtrip");
    group.sample_size(20);
    group.bench_function("polyline-p4", |b| {
        b.iter(|| {
            let blob = codec.encode(black_box(&weights));
            black_box(codec.decode(&blob))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_encode, bench_decode, bench_roundtrip);
criterion_main!(benches);
