//! Codec microbenchmarks: polyline encode/decode throughput per precision,
//! versus raw and int8 quantization (the transport cost behind Table 2 and
//! Fig. 5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fedat_compress::codec::{Codec, NoCompression, PolylineCodec, QuantizeCodec};
use std::hint::black_box;

fn model_weights(n: usize) -> Vec<f32> {
    // Kaiming-ish magnitudes: the realistic payload distribution.
    (0..n)
        .map(|i| ((i as f64 * 0.377).sin() * 0.05) as f32)
        .collect()
}

fn bench_encode(c: &mut Criterion) {
    let weights = model_weights(22_000); // ≈ the CnnLite parameter count
    let mut group = c.benchmark_group("codec/encode");
    group.throughput(Throughput::Elements(weights.len() as u64));
    group.sample_size(20);
    for p in [3u8, 4, 5, 6] {
        let codec = PolylineCodec::new(p);
        group.bench_with_input(BenchmarkId::new("polyline", p), &weights, |b, w| {
            b.iter(|| black_box(codec.encode(black_box(w))))
        });
    }
    let raw = NoCompression;
    group.bench_with_input(BenchmarkId::new("raw", 0), &weights, |b, w| {
        b.iter(|| black_box(raw.encode(black_box(w))))
    });
    let quant = QuantizeCodec;
    group.bench_with_input(BenchmarkId::new("quantize-i8", 0), &weights, |b, w| {
        b.iter(|| black_box(quant.encode(black_box(w))))
    });
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let weights = model_weights(22_000);
    let mut group = c.benchmark_group("codec/decode");
    group.throughput(Throughput::Elements(weights.len() as u64));
    group.sample_size(20);
    for p in [3u8, 4, 6] {
        let codec = PolylineCodec::new(p);
        let blob = codec.encode(&weights);
        group.bench_with_input(BenchmarkId::new("polyline", p), &blob, |b, blob| {
            b.iter(|| black_box(codec.decode(black_box(blob))))
        });
    }
    group.finish();
}

fn bench_roundtrip(c: &mut Criterion) {
    // End-to-end transport cost: encode + decode (what every simulated
    // transfer pays).
    let weights = model_weights(22_000);
    let codec = PolylineCodec::new(4);
    let mut group = c.benchmark_group("codec/roundtrip");
    group.sample_size(20);
    group.bench_function("polyline-p4", |b| {
        b.iter(|| {
            let blob = codec.encode(black_box(&weights));
            black_box(codec.decode(&blob))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_encode, bench_decode, bench_roundtrip);
criterion_main!(benches);
