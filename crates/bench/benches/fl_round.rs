//! End-to-end federated-round benchmarks: the full cost of one global
//! update for each strategy family on a small federation (local training +
//! transport + aggregation + evaluation cadence).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fedat_core::{run_experiment, ExperimentConfig, StrategyKind};
use fedat_data::suite;
use std::hint::black_box;

fn bench_strategy_rounds(c: &mut Criterion) {
    let task = suite::sent140_like(20, 3);
    let mut group = c.benchmark_group("fl/rounds");
    group.sample_size(10);
    for strategy in [
        StrategyKind::FedAvg,
        StrategyKind::TiFL,
        StrategyKind::FedAt,
    ] {
        group.bench_function(BenchmarkId::new("10-updates", strategy.name()), |b| {
            b.iter(|| {
                let cfg = ExperimentConfig::builder()
                    .strategy(strategy)
                    .rounds(10)
                    .clients_per_round(4)
                    .local_epochs(1)
                    .eval_every(5)
                    .seed(3)
                    .build();
                black_box(run_experiment(&task, &cfg))
            })
        });
    }
    group.finish();
}

fn bench_local_training(c: &mut Criterion) {
    use fedat_core::local::train_client;
    let task = suite::cifar10_like(10, 2, 3);
    let cfg = ExperimentConfig::builder().seed(3).build();
    let global: std::sync::Arc<[f32]> = task.model.build(3).weights().into();
    let mut group = c.benchmark_group("fl/local-training");
    group.sample_size(10);
    group.bench_function("cnn-client-round-3epochs", |b| {
        b.iter(|| black_box(train_client(&task, 0, &global, &cfg, 3, 0, true)))
    });
    group.finish();
}

criterion_group!(benches, bench_strategy_rounds, bench_local_training);
criterion_main!(benches);
