//! Simulator microbenchmarks: event-queue throughput and end-to-end event
//! processing rate of the discrete-event runtime (no model math).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fedat_sim::event::EventQueue;
use fedat_sim::fleet::{ClusterConfig, Fleet};
use fedat_sim::runtime::{run, Completion, EventHandler, RunLimits, SimCtx};
use std::hint::black_box;

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/event-queue");
    group.sample_size(20);
    for n in [1_000usize, 10_000, 100_000] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut q = EventQueue::new();
                for i in 0..n {
                    q.push(((i * 7919) % n) as f64, i);
                }
                let mut acc = 0usize;
                while let Some((_, v)) = q.pop() {
                    acc = acc.wrapping_add(v);
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

/// A no-op strategy that keeps `k` clients cycling; measures raw runtime
/// overhead per completion event.
struct Cycler {
    events: u64,
    budget: u64,
}

impl EventHandler for Cycler {
    fn on_start(&mut self, ctx: &mut SimCtx) {
        for c in ctx.alive_clients().into_iter().take(32) {
            ctx.dispatch(c, 0, 1);
        }
    }
    fn on_completion(&mut self, ctx: &mut SimCtx, c: Completion) {
        self.events += 1;
        if !c.dropped && self.events < self.budget && ctx.fleet.is_alive(c.client, ctx.now()) {
            ctx.dispatch(c.client, 0, 1);
        }
    }
    fn finished(&self) -> bool {
        self.events >= self.budget
    }
}

fn bench_runtime_events(c: &mut Criterion) {
    let cfg = ClusterConfig::paper_medium(1).without_dropouts();
    let fleet = Fleet::new(&cfg, vec![48; 100]);
    let mut group = c.benchmark_group("sim/runtime");
    group.sample_size(20);
    let budget = 10_000u64;
    group.throughput(Throughput::Elements(budget));
    group.bench_function("events-10k", |b| {
        b.iter(|| {
            let mut h = Cycler { events: 0, budget };
            black_box(run(&mut h, &fleet, 1, RunLimits::default()))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_event_queue, bench_runtime_events);
criterion_main!(benches);
