//! Tensor-kernel microbenchmarks: matmul variants (serial vs parallel,
//! SIMD vs scalar) and im2col convolution — the compute underlying every
//! client round. The JSON-emitting twin is `bench_tensor_kernels`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fedat_tensor::conv::{conv2d_forward, Conv2dSpec};
use fedat_tensor::parallel;
use fedat_tensor::rng::rng_for;
use fedat_tensor::simd::{set_simd_kernel, SimdKernel};
use fedat_tensor::Tensor;
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut rng = rng_for(1, 1);
    let mut group = c.benchmark_group("tensor/matmul");
    group.sample_size(20);
    for n in [64usize, 128, 256] {
        let a = Tensor::randn(&mut rng, &[n, n], 0.0, 1.0);
        let b = Tensor::randn(&mut rng, &[n, n], 0.0, 1.0);
        group.throughput(Throughput::Elements((2 * n * n * n) as u64));
        group.bench_function(BenchmarkId::new("serial", n), |bench| {
            parallel::set_max_threads(1);
            bench.iter(|| black_box(a.matmul(black_box(&b))))
        });
        group.bench_function(BenchmarkId::new("parallel8", n), |bench| {
            parallel::set_max_threads(8);
            bench.iter(|| black_box(a.matmul(black_box(&b))));
        });
    }
    parallel::set_max_threads(1);
    group.finish();
}

fn bench_matmul_variants(c: &mut Criterion) {
    let mut rng = rng_for(2, 1);
    let a = Tensor::randn(&mut rng, &[128, 128], 0.0, 1.0);
    let b = Tensor::randn(&mut rng, &[128, 128], 0.0, 1.0);
    let mut group = c.benchmark_group("tensor/matmul-variants");
    group.sample_size(20);
    group.bench_function("nn", |bench| bench.iter(|| black_box(a.matmul(&b))));
    group.bench_function("tn", |bench| bench.iter(|| black_box(a.matmul_tn(&b))));
    group.bench_function("nt", |bench| bench.iter(|| black_box(a.matmul_nt(&b))));
    group.finish();
}

fn bench_simd_kernels(c: &mut Criterion) {
    let mut rng = rng_for(4, 1);
    let a = Tensor::randn(&mut rng, &[128, 128], 0.0, 1.0);
    let b = Tensor::randn(&mut rng, &[128, 128], 0.0, 1.0);
    // Restore the entry kernel (not a hard-coded Auto) so later groups
    // still honor a FEDAT_SIMD=scalar environment.
    let entry_kernel = fedat_tensor::simd::simd_kernel();
    let mut group = c.benchmark_group("tensor/simd");
    group.sample_size(20);
    group.bench_function("matmul128-scalar", |bench| {
        set_simd_kernel(SimdKernel::Scalar);
        bench.iter(|| black_box(a.matmul(black_box(&b))));
        set_simd_kernel(entry_kernel);
    });
    group.bench_function("matmul128-auto", |bench| {
        set_simd_kernel(SimdKernel::Auto);
        bench.iter(|| black_box(a.matmul(black_box(&b))));
        set_simd_kernel(entry_kernel);
    });
    group.finish();
}

fn bench_conv(c: &mut Criterion) {
    let mut rng = rng_for(3, 1);
    let spec = Conv2dSpec {
        in_channels: 3,
        out_channels: 16,
        kernel: 3,
        stride: 1,
        padding: 1,
    };
    let input = Tensor::randn(&mut rng, &[10, 3, 8, 8], 0.0, 1.0);
    let weight = Tensor::randn(&mut rng, &[16, 27], 0.0, 0.3);
    let bias = Tensor::zeros(&[16]);
    let mut group = c.benchmark_group("tensor/conv2d");
    group.sample_size(20);
    group.bench_function("forward-batch10-8x8", |b| {
        b.iter(|| black_box(conv2d_forward(&input, &weight, &bias, 8, 8, &spec)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_matmul,
    bench_matmul_variants,
    bench_simd_kernels,
    bench_conv
);
criterion_main!(benches);
