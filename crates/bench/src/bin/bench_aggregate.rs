//! Wall-clock benchmark of the parallel server path: sharded aggregation
//! plus pooled streaming evaluation on the 500-client × large-model
//! cohort.
//!
//! Simulates the server's steady-state loop at the paper's cadence — per
//! tier round a full intra-tier `n_k/N_c` average over the whole cohort's
//! updates and the Eq. (5) cross-tier aggregation; every `eval_stride`-th
//! round a capped-subset global evaluation; every `variance_stride`-th
//! evaluation a full per-client accuracy sweep — twice: once with the
//! optimized server layer (sharded-axpy aggregation on the kernel pool,
//! pooled streaming evaluator) and once with the serial baseline toggles
//! (`AggKernel::FusedSerial`, `set_pooled_eval(false)`) that restore the
//! pre-sharding path. Writes both throughputs to `BENCH_aggregate.json`.
//!
//! The two modes are bit-identical by construction (per-element input-order
//! accumulation; fixed batch partition and merge order) — asserted on the
//! final global model every run.
//!
//! ```text
//! cargo run --release -p fedat-bench --bin bench_aggregate -- \
//!     [--out FILE] [--seed N] [--clients N] [--rounds N] [--threads N]
//! ```
//!
//! See `docs/PERF.md` for how to read the output.

use fedat_bench::experiments::large_cohort_task;
use fedat_core::aggregate::{
    aggregate_tiers_into, cross_tier_weights, weighted_client_average_into,
};
use fedat_core::eval::{per_client_accuracy, Evaluator};
use fedat_data::suite::FedTask;
use fedat_nn::metrics::set_pooled_eval;
use fedat_tensor::ops::{set_agg_kernel, AggKernel};
use fedat_tensor::parallel;
use fedat_tensor::rng::{fill_normal, rng_for};
use fedat_tensor::simd::{set_simd_kernel, SimdKernel};
use std::time::Instant;

/// Flips the server-path toggles introduced with the sharded server.
fn set_server_layer(optimized: bool) {
    set_agg_kernel(if optimized {
        AggKernel::ShardedAxpy
    } else {
        AggKernel::FusedSerial
    });
    set_pooled_eval(optimized);
    set_simd_kernel(if optimized {
        SimdKernel::Auto
    } else {
        SimdKernel::Scalar
    });
}

/// One simulated steady-state server run; returns (seconds, final global).
#[allow(clippy::too_many_arguments)]
fn run_server_loop(
    task: &FedTask,
    updates: &[Vec<f32>],
    tier_models: &[Vec<f32>],
    rounds: usize,
    eval_stride: usize,
    variance_stride: usize,
    evaluator: &mut Evaluator,
    seed: u64,
) -> (f64, Vec<f32>, f64, f64) {
    let refs: Vec<(&[f32], usize)> = updates
        .iter()
        .enumerate()
        .map(|(c, w)| (w.as_slice(), 20 + c % 40))
        .collect();
    let tier_counts: Vec<u64> = (1..=tier_models.len() as u64)
        .rev()
        .map(|x| x * 9)
        .collect();
    let mut tier_avg = Vec::new();
    let mut global = Vec::new();
    let mut agg_secs = 0.0f64;
    let mut eval_secs = 0.0f64;
    let mut evals = 0usize;
    let started = Instant::now();
    for round in 1..=rounds {
        let t0 = Instant::now();
        // Intra-tier aggregation over the full cohort (Algorithm 2 inner
        // loop at tier-arrival time), then the Eq. (5) cross-tier update.
        weighted_client_average_into(&refs, &mut tier_avg);
        let w = cross_tier_weights(&tier_counts);
        aggregate_tiers_into(tier_models, &w, &mut global);
        // Mix the fresh tier average into the standing global, as the
        // FedAT server does, so the eval input depends on every round.
        fedat_tensor::ops::lerp_into(&mut global, &tier_avg, 0.125);
        agg_secs += t0.elapsed().as_secs_f64();
        if round.is_multiple_of(eval_stride) {
            let t1 = Instant::now();
            let r = evaluator.evaluate(&global);
            assert!(r.loss.is_finite());
            evals += 1;
            if evals.is_multiple_of(variance_stride) {
                let accs = per_client_accuracy(task, &global, seed);
                assert_eq!(accs.len(), task.fed.num_clients());
            }
            eval_secs += t1.elapsed().as_secs_f64();
        }
    }
    (started.elapsed().as_secs_f64(), global, agg_secs, eval_secs)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = String::from("BENCH_aggregate.json");
    let mut seed = 9u64;
    let mut clients = 500usize;
    let mut rounds = 40usize;
    let mut threads = 4usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out_path = args[i].clone();
            }
            "--seed" => {
                i += 1;
                seed = args[i].parse().expect("--seed takes an integer");
            }
            "--clients" => {
                i += 1;
                clients = args[i].parse().expect("--clients takes an integer");
            }
            "--rounds" => {
                i += 1;
                rounds = args[i].parse().expect("--rounds takes an integer");
            }
            "--threads" => {
                i += 1;
                threads = args[i].parse().expect("--threads takes an integer");
            }
            other => {
                eprintln!("unknown flag: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    eprintln!("[bench_aggregate] building the {clients}-client large-model cohort ...");
    let task = large_cohort_task(clients, seed);
    let dim = task.model.build(seed).weights().len();
    let tiers = 5usize;
    // The paper's cadence: evaluate every 5th global update, sweep
    // per-client accuracies every 5th evaluation (VARIANCE_EVAL_STRIDE).
    let (eval_stride, variance_stride) = (5usize, 5usize);
    let eval_subset = 512usize;

    // Synthetic in-flight state: one update per client, one model per tier.
    let updates: Vec<Vec<f32>> = (0..clients)
        .map(|c| {
            let mut w = vec![0.0f32; dim];
            fill_normal(&mut rng_for(seed ^ c as u64, 101), &mut w, 0.0, 0.05);
            w
        })
        .collect();
    let tier_models: Vec<Vec<f32>> = (0..tiers)
        .map(|t| {
            let mut w = vec![0.0f32; dim];
            fill_normal(
                &mut rng_for(seed ^ (t as u64) << 32, 102),
                &mut w,
                0.0,
                0.05,
            );
            w
        })
        .collect();

    parallel::set_max_threads(threads);
    let mut evaluator = Evaluator::new(&task, eval_subset, seed);

    /// Timed repeats per mode; the minimum is reported (noise-robust).
    const REPEATS: usize = 3;

    let mut measure = |optimized: bool| -> (f64, Vec<f32>, f64, f64) {
        set_server_layer(optimized);
        // Warm-up run: fills the kernel pool, the scratch arenas and the
        // per-thread eval-model caches, and doubles as a determinism check.
        let (_, warm, _, _) = run_server_loop(
            &task,
            &updates,
            &tier_models,
            rounds,
            eval_stride,
            variance_stride,
            &mut evaluator,
            seed,
        );
        let mut best = (f64::INFINITY, Vec::new(), 0.0, 0.0);
        for _ in 0..REPEATS {
            let (secs, global, agg, eval) = run_server_loop(
                &task,
                &updates,
                &tier_models,
                rounds,
                eval_stride,
                variance_stride,
                &mut evaluator,
                seed,
            );
            assert_eq!(
                warm, global,
                "server loop must be bit-identical across repeats"
            );
            if secs < best.0 {
                best = (secs, global, agg, eval);
            }
        }
        best
    };

    eprintln!("[bench_aggregate] measuring sharded server path ({threads} threads) ...");
    let (sharded_secs, sharded_global, sharded_agg, sharded_eval) = measure(true);
    eprintln!("[bench_aggregate] measuring serial baseline ...");
    let (serial_secs, serial_global, serial_agg, serial_eval) = measure(false);
    set_server_layer(true);

    assert_eq!(
        sharded_global, serial_global,
        "sharded server path must be bit-identical to the serial baseline"
    );

    let sharded_rps = rounds as f64 / sharded_secs.max(1e-9);
    let serial_rps = rounds as f64 / serial_secs.max(1e-9);
    let speedup = sharded_rps / serial_rps.max(1e-12);

    let json = format!(
        "{{\n  \"bench\": \"aggregate\",\n  \"seed\": {seed},\n  \"clients\": {clients},\n  \"model_dim\": {dim},\n  \"tiers\": {tiers},\n  \"rounds\": {rounds},\n  \"eval_stride\": {eval_stride},\n  \"variance_stride\": {variance_stride},\n  \"eval_subset\": {eval_subset},\n  \"kernel_threads\": {threads},\n  \"serial_baseline\": \"AggKernel::FusedSerial + set_pooled_eval(false) + SimdKernel::Scalar: the pre-sharding server path\",\n  \"serial_secs\": {serial_secs:.4},\n  \"sharded_secs\": {sharded_secs:.4},\n  \"serial_rounds_per_sec\": {serial_rps:.3},\n  \"sharded_rounds_per_sec\": {sharded_rps:.3},\n  \"speedup\": {speedup:.3},\n  \"phases\": {{\n    \"aggregate\": {{ \"serial_secs\": {serial_agg:.4}, \"sharded_secs\": {sharded_agg:.4}, \"speedup\": {agg_speedup:.3} }},\n    \"eval\": {{ \"serial_secs\": {serial_eval:.4}, \"sharded_secs\": {sharded_eval:.4}, \"speedup\": {eval_speedup:.3} }}\n  }}\n}}\n",
        agg_speedup = serial_agg / sharded_agg.max(1e-9),
        eval_speedup = serial_eval / sharded_eval.max(1e-9),
    );
    std::fs::write(&out_path, &json).expect("writing benchmark record");
    println!("{json}");
    println!(
        "server rounds/sec: sharded {sharded_rps:.2} vs serial {serial_rps:.2} → speedup {speedup:.2}x"
    );
    eprintln!("[bench_aggregate] wrote {out_path}");
}
