//! Robustness benchmark: FedAT under availability churn (flaps + correlated
//! storms) and compute drift, with and without the server-side fault layer.
//!
//! Three FedAT variants share one drift+storm scenario:
//!
//! * **static** — the legacy server: one-shot latency profile, no
//!   deadlines. Drifted stragglers stay in fast tiers and every round they
//!   are picked for runs at straggler speed.
//! * **timeouts** — per-dispatch deadlines with bounded re-dispatch and
//!   quorum degradation, but the initial tier assignment is kept.
//! * **dynamic** — timeouts plus EWMA-driven re-tiering: drifted clients
//!   migrate to slower tiers, so the fast tiers recover their cadence.
//!
//! Reported per variant: time-to-target-accuracy, best accuracy, global
//! updates, per-tier update counts and the fault counters — written to
//! `BENCH_churn.json`. The run asserts the ISSUE acceptance criteria:
//! the fault-tolerant variants stall no tier and actually exercise the
//! timeout/retry path, dynamic re-tiering adopts at least one migration
//! and does not lose time-to-accuracy versus the static server, and the
//! dynamic run is bit-identical across ExecMode × SimdKernel × kernel-pool
//! worker counts {1, 2, 4, 8}.
//!
//! ```text
//! cargo run --release -p fedat-bench --bin bench_churn -- \
//!     [--out FILE] [--seed N] [--clients N] [--rounds N] [--threads N] [--no-sweep]
//! ```
//!
//! See `docs/ROBUSTNESS.md` for the fault model and how to read the output.

use fedat_core::config::{ExperimentConfig, FaultPolicy, RetierPolicy, StrategyKind};
use fedat_core::exec::{set_exec_mode, ExecMode};
use fedat_core::run_experiment_shared;
use fedat_data::suite::{self, FedTask};
use fedat_sim::churn::{ChurnConfig, DriftSpec, FlapSpec, StormSpec};
use fedat_sim::fault::FaultKind;
use fedat_sim::fleet::ClusterConfig;
use fedat_tensor::pool;
use fedat_tensor::simd::{set_simd_kernel, SimdKernel};
use std::sync::Arc;

/// The benchmark scenario: light flapping, two ~30% correlated storms, and
/// compute drift on half the fleet (up to 10× slower), on top of the
/// paper-medium latency parts.
fn churn_scenario() -> ChurnConfig {
    ChurnConfig {
        flaps: Some(FlapSpec {
            fraction: 0.25,
            mean_up: 300.0,
            mean_down: 60.0,
            horizon: 4000.0,
        }),
        storms: Some(StormSpec {
            count: 2,
            cohort_fraction: 0.3,
            duration: 150.0,
            horizon: 1500.0,
        }),
        // Severe drift: half the fleet degrades 30% per selection round, up
        // to 10× — a drifted fast-tier client ends up slower than the
        // slowest injected-delay part, so a static tier assignment pins the
        // fast tier's cadence to its worst straggler.
        drift: Some(DriftSpec {
            fraction: 0.5,
            per_round: 0.3,
            max_factor: 10.0,
        }),
        ..ChurnConfig::default()
    }
}

fn cfg(variant: &str, rounds: u64, seed: u64, clients: usize) -> ExperimentConfig {
    let cluster = ClusterConfig::paper_medium(seed)
        .with_clients(clients)
        .without_dropouts()
        .with_churn(churn_scenario());
    let fault = match variant {
        "static" => FaultPolicy::default(),
        "timeouts" => FaultPolicy {
            deadline_multiplier: Some(3.0),
            max_retries: 2,
            backoff: 1.5,
            quorum: 0.9,
            retier: None,
        },
        "dynamic" => FaultPolicy {
            deadline_multiplier: Some(3.0),
            max_retries: 2,
            backoff: 1.5,
            quorum: 0.9,
            retier: Some(RetierPolicy {
                alpha: 0.3,
                check_every: 10,
                drift_threshold: 0.05,
            }),
        },
        other => panic!("unknown variant {other}"),
    };
    ExperimentConfig::builder()
        .strategy(StrategyKind::FedAt)
        .rounds(rounds)
        .clients_per_round(3)
        .local_epochs(1)
        .eval_every(10)
        .max_time(8_000.0)
        .seed(seed)
        .cluster(cluster)
        .fault(fault)
        .build()
}

struct VariantResult {
    name: &'static str,
    outcome: fedat_core::Outcome,
    tta: Option<f64>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = String::from("BENCH_churn.json");
    let mut seed = 37u64;
    let mut clients = 30usize;
    // Generous round budget: the shared `max_time` horizon is the binding
    // stopping rule (the paper's methodology), so a faster server cadence
    // earns proportionally more global updates.
    let mut rounds = 20_000u64;
    let mut threads = 4usize;
    let mut sweep = true;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out_path = args[i].clone();
            }
            "--seed" => {
                i += 1;
                seed = args[i].parse().expect("--seed takes an integer");
            }
            "--clients" => {
                i += 1;
                clients = args[i].parse().expect("--clients takes an integer");
            }
            "--rounds" => {
                i += 1;
                rounds = args[i].parse().expect("--rounds takes an integer");
            }
            "--threads" => {
                i += 1;
                threads = args[i].parse().expect("--threads takes an integer");
            }
            "--no-sweep" => sweep = false,
            other => {
                eprintln!("unknown flag: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    eprintln!("[bench_churn] building the {clients}-client sentiment task ...");
    let task: Arc<FedTask> = Arc::new(suite::sent140_like(clients, seed));
    let target = task.target_accuracy;
    pool::ensure_workers(threads.max(1));

    let run_variant = |name: &'static str| -> VariantResult {
        eprintln!("[bench_churn] running FedAT/{name} under drift + storms ...");
        let c = cfg(name, rounds, seed, clients);
        let outcome = run_experiment_shared(&task, &c);
        let tta = outcome.trace.time_to_accuracy(target);
        VariantResult { name, outcome, tta }
    };

    let results = [
        run_variant("static"),
        run_variant("timeouts"),
        run_variant("dynamic"),
    ];
    let [ref stat, ref tmo, ref dynr] = results;
    let horizon = 8_000.0f64;

    // Write the artifact before asserting acceptance, so a failed criterion
    // in CI still leaves the numbers behind.
    let fmt_tta = |t: Option<f64>| {
        t.map(|t| format!("{t:.1}"))
            .unwrap_or_else(|| "null".into())
    };
    let mut rows = String::new();
    for (i, r) in results.iter().enumerate() {
        let fc = r.outcome.fault_counters;
        let tiers = r
            .outcome
            .tier_updates
            .as_ref()
            .map(|t| {
                t.iter()
                    .map(|u| u.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            })
            .unwrap_or_default();
        rows.push_str(&format!(
            "    {{ \"variant\": \"{}\", \"best_accuracy\": {:.4}, \"time_to_target\": {}, \"global_updates\": {}, \"tier_updates\": [{}], \"timeouts\": {}, \"retries\": {}, \"quorum_rounds\": {}, \"retier_events\": {}, \"fault_rows\": {} }}{}\n",
            r.name,
            r.outcome.best_accuracy(),
            fmt_tta(r.tta),
            r.outcome.global_updates,
            tiers,
            fc.timeouts,
            fc.retries,
            fc.quorum_rounds,
            fc.retier_events,
            r.outcome.faults.events().len(),
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"churn\",\n  \"seed\": {seed},\n  \"clients\": {clients},\n  \"rounds\": {rounds},\n  \"target_accuracy\": {target:.2},\n  \"horizon\": {horizon:.1},\n  \"scenario\": \"25% flapping (up~300s/down~60s), 2 storms of 30% for 150s, 50% compute drift to 10x\",\n  \"determinism_sweep\": {},\n  \"variants\": [\n{rows}  ]\n}}\n",
        if sweep {
            "\"ExecMode x SimdKernel x workers {1,2,4,8}: asserted bit-identical\""
        } else {
            "\"skipped (--no-sweep)\""
        },
    );
    std::fs::write(&out_path, &json).expect("writing benchmark record");
    println!("{json}");
    println!(
        "time-to-{target:.2}: static {} vs timeouts {} vs dynamic {}",
        fmt_tta(stat.tta),
        fmt_tta(tmo.tta),
        fmt_tta(dynr.tta)
    );
    eprintln!("[bench_churn] wrote {out_path}");

    // Acceptance: the fault-tolerant servers ride out the scenario with no
    // stalled tier and genuinely exercise the timeout/re-dispatch path.
    for r in [tmo, dynr] {
        let fc = r.outcome.fault_counters;
        assert!(fc.timeouts > 0, "{}: no deadline fired ({fc:?})", r.name);
        assert!(
            fc.retries > 0,
            "{}: no re-dispatch happened ({fc:?})",
            r.name
        );
        let tiers = r
            .outcome
            .tier_updates
            .as_ref()
            .expect("FedAT reports tier updates");
        for (t, &u) in tiers.iter().enumerate() {
            assert!(u > 0, "{}: tier {t} stalled ({tiers:?})", r.name);
        }
        for kind in [FaultKind::Down, FaultKind::Timeout, FaultKind::Retry] {
            assert!(
                r.outcome.faults.count(kind) > 0,
                "{}: fault kind {kind} missing from the log",
                r.name
            );
        }
    }
    assert!(
        dynr.outcome.fault_counters.retier_events > 0,
        "dynamic re-tiering never adopted a migration: {:?}",
        dynr.outcome.fault_counters
    );
    // Time-to-accuracy: dynamic must not lose to the static server (an
    // unreached target counts as the full horizon).
    let stat_tta = stat.tta.unwrap_or(horizon);
    let dyn_tta = dynr.tta.unwrap_or(horizon);
    assert!(
        dyn_tta <= stat_tta,
        "dynamic re-tiering lost time-to-accuracy: {dyn_tta:.1}s vs static {stat_tta:.1}s"
    );

    // Determinism sweep: the dynamic variant — the one exercising every
    // fault path — must be bit-identical across execution mode, SIMD
    // kernel, and kernel-pool width.
    if sweep {
        eprintln!("[bench_churn] determinism sweep: ExecMode x SimdKernel x workers ...");
        pool::ensure_workers(8);
        let entry_cap = pool::max_pool_jobs();
        let c = cfg("dynamic", rounds, seed, clients);
        for mode in [ExecMode::Speculative, ExecMode::Inline] {
            for kernel in [SimdKernel::Auto, SimdKernel::Scalar] {
                for workers in [1usize, 2, 4, 8] {
                    set_exec_mode(mode);
                    set_simd_kernel(kernel);
                    pool::set_max_pool_jobs(workers - 1);
                    let out = run_experiment_shared(&task, &c);
                    assert_eq!(
                        out.final_weights, dynr.outcome.final_weights,
                        "weights diverged under {mode:?}/{kernel:?}/{workers} workers"
                    );
                    assert_eq!(
                        out.fault_counters, dynr.outcome.fault_counters,
                        "fault counters diverged under {mode:?}/{kernel:?}/{workers} workers"
                    );
                }
            }
        }
        pool::set_max_pool_jobs(entry_cap);
        set_simd_kernel(SimdKernel::Auto);
        set_exec_mode(ExecMode::Speculative);
        eprintln!("[bench_churn] sweep ok: 16/16 bit-identical");
    }
    eprintln!("[bench_churn] all acceptance criteria hold");
}
