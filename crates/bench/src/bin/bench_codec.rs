//! Wire-codec benchmark: compression ratio vs accuracy across the Table-1
//! strategies, plus codec throughput and the lossless bit-identity sweep.
//!
//! Every Table-1 strategy runs the same sentiment federation once per wire
//! codec — the full two-phase path, so downlink broadcasts and
//! reference-aware uplinks both charge the traffic meter what the codec
//! actually produces. Written to `BENCH_codec.json`:
//!
//! * per-cell best accuracy, uplink/downlink bytes, and the uplink ratio
//!   vs the uncompressed run of the same strategy,
//! * encode/decode throughput per codec on a model-sized payload,
//! * the FedAT acceptance row: the best codec achieving ≥4× uplink
//!   reduction at ≤1 accuracy-point loss.
//!
//! The run asserts the ISSUE acceptance criteria after writing the record:
//! FedAT uplink bytes drop ≥4× at ≤1% accuracy loss; the lossless
//! `delta-rle` run reproduces the uncompressed run's final model
//! bit-for-bit with fewer uplink bytes; and that lossless run is
//! bit-identical across ExecMode × SimdKernel × kernel-pool worker counts
//! {1, 2, 4, 8}.
//!
//! ```text
//! cargo run --release -p fedat-bench --bin bench_codec -- \
//!     [--out FILE] [--seed N] [--clients N] [--rounds N] [--threads N] [--no-sweep]
//! ```
//!
//! See `docs/PERF.md` ("Compressed transport") for how to read the output.

use fedat_compress::codec::{codec_for, CodecKind};
use fedat_core::config::{ExperimentConfig, StrategyKind};
use fedat_core::exec::{set_exec_mode, ExecMode};
use fedat_core::run_experiment_shared;
use fedat_data::suite::{self, FedTask};
use fedat_tensor::pool;
use fedat_tensor::simd::{set_simd_kernel, SimdKernel};
use std::sync::Arc;
use std::time::Instant;

/// The codec column of the grid: the uncompressed baseline, the paper's
/// polyline codec at two precisions, the lossless delta, the 8/4-bit
/// quantized deltas, and the sparse top-5% delta.
const CODECS: [(&str, CodecKind); 7] = [
    ("none", CodecKind::None),
    (
        "polyline-p3",
        CodecKind::Polyline {
            precision: 3,
            delta: true,
        },
    ),
    (
        "polyline-p4",
        CodecKind::Polyline {
            precision: 4,
            delta: true,
        },
    ),
    ("delta-rle", CodecKind::DeltaRle),
    ("quantized8", CodecKind::Quantized { bits: 8 }),
    ("quantized4", CodecKind::Quantized { bits: 4 }),
    ("topk-50pm", CodecKind::TopK { per_mille: 50 }),
];

fn cfg(strategy: StrategyKind, kind: CodecKind, rounds: u64, seed: u64) -> ExperimentConfig {
    ExperimentConfig::builder()
        .strategy(strategy)
        .rounds(rounds)
        .clients_per_round(4)
        .local_epochs(1)
        .eval_every(10)
        .max_time(6_000.0)
        .codec(kind)
        .seed(seed)
        .build()
}

struct Cell {
    strategy: StrategyKind,
    codec: &'static str,
    kind: CodecKind,
    outcome: fedat_core::Outcome,
}

impl Cell {
    fn up_bytes(&self) -> u64 {
        self.outcome
            .trace
            .points
            .last()
            .map(|p| p.up_bytes)
            .unwrap_or(0)
    }
    fn down_bytes(&self) -> u64 {
        self.outcome
            .trace
            .points
            .last()
            .map(|p| p.down_bytes)
            .unwrap_or(0)
    }
}

/// Encode/decode throughput of one codec over a model-sized payload with a
/// nearby reference (the uplink situation), in MB/s of raw f32 input.
fn throughput(kind: CodecKind, weights: &[f32], reference: &[f32]) -> (f64, f64, f64) {
    let codec = codec_for(kind);
    let reps = 5u32;
    let mb = (weights.len() * 4) as f64 / 1e6;
    // Warm once so pool workers and scratch arenas exist before timing.
    let blob = codec.encode_with_ref(weights, Some(reference));
    let ratio = (weights.len() * 4) as f64 / blob.wire_bytes() as f64;
    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(codec.encode_with_ref(
            std::hint::black_box(weights),
            Some(std::hint::black_box(reference)),
        ));
    }
    let enc = mb * reps as f64 / t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(codec.decode_with_ref(
            std::hint::black_box(&blob),
            Some(std::hint::black_box(reference)),
        ));
    }
    let dec = mb * reps as f64 / t1.elapsed().as_secs_f64();
    (enc, dec, ratio)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = String::from("BENCH_codec.json");
    let mut seed = 11u64;
    let mut clients = 16usize;
    let mut rounds = 100u64;
    let mut threads = 4usize;
    let mut sweep = true;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out_path = args[i].clone();
            }
            "--seed" => {
                i += 1;
                seed = args[i].parse().expect("--seed takes an integer");
            }
            "--clients" => {
                i += 1;
                clients = args[i].parse().expect("--clients takes an integer");
            }
            "--rounds" => {
                i += 1;
                rounds = args[i].parse().expect("--rounds takes an integer");
            }
            "--threads" => {
                i += 1;
                threads = args[i].parse().expect("--threads takes an integer");
            }
            "--no-sweep" => sweep = false,
            other => {
                eprintln!("unknown flag: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    eprintln!("[bench_codec] building the {clients}-client sentiment task ...");
    let task: Arc<FedTask> = Arc::new(suite::sent140_like(clients, seed));
    pool::ensure_workers(threads.max(1));

    // Codec throughput on a model-sized payload (1M weights, near-reference
    // deltas — the uplink situation).
    eprintln!("[bench_codec] codec throughput ...");
    let big_ref: Vec<f32> = (0..1_000_000)
        .map(|i| ((i as f32) * 0.013).sin() * 0.1)
        .collect();
    let big: Vec<f32> = big_ref
        .iter()
        .enumerate()
        .map(|(i, v)| v + ((i as f32) * 0.07).cos() * 1e-3)
        .collect();
    let mut thr_rows = String::new();
    for (k, (name, kind)) in CODECS.iter().enumerate() {
        let (enc, dec, ratio) = throughput(*kind, &big, &big_ref);
        eprintln!("[bench_codec]   {name}: enc {enc:.0} MB/s, dec {dec:.0} MB/s, {ratio:.2}x");
        thr_rows.push_str(&format!(
            "    {{ \"codec\": \"{name}\", \"encode_mb_per_s\": {enc:.1}, \"decode_mb_per_s\": {dec:.1}, \"payload_ratio\": {ratio:.2} }}{}\n",
            if k + 1 < CODECS.len() { "," } else { "" },
        ));
    }

    // The strategy × codec grid through the full wire path.
    let mut cells: Vec<Cell> = Vec::new();
    for strategy in StrategyKind::all() {
        for (name, kind) in CODECS {
            eprintln!("[bench_codec] {} x {name} ...", strategy.name());
            let c = cfg(strategy, kind, rounds, seed);
            let outcome = run_experiment_shared(&task, &c);
            cells.push(Cell {
                strategy,
                codec: name,
                kind,
                outcome,
            });
        }
    }

    let cell = |strategy: StrategyKind, codec: &str| -> &Cell {
        cells
            .iter()
            .find(|c| c.strategy == strategy && c.codec == codec)
            .expect("cell ran")
    };

    // FedAT acceptance row: the best uplink ratio among lossy codecs whose
    // accuracy stays within one point of the uncompressed run.
    let fedat_none = cell(StrategyKind::FedAt, "none");
    let baseline_best = fedat_none.outcome.best_accuracy();
    let baseline_up = fedat_none.up_bytes();
    let mut accepted: Option<(&Cell, f64, f64)> = None;
    for c in cells
        .iter()
        .filter(|c| c.strategy == StrategyKind::FedAt && c.codec != "none")
    {
        let ratio = baseline_up as f64 / c.up_bytes().max(1) as f64;
        let loss = (baseline_best - c.outcome.best_accuracy()) as f64;
        if loss <= 0.01 && accepted.as_ref().is_none_or(|(_, r, _)| ratio > *r) {
            accepted = Some((c, ratio, loss));
        }
    }

    // Write the artifact before asserting acceptance, so a failed criterion
    // in CI still leaves the numbers behind.
    let mut rows = String::new();
    for (i, c) in cells.iter().enumerate() {
        let base_up = cell(c.strategy, "none").up_bytes();
        rows.push_str(&format!(
            "    {{ \"strategy\": \"{}\", \"codec\": \"{}\", \"best_accuracy\": {:.4}, \"up_bytes\": {}, \"down_bytes\": {}, \"uplink_ratio\": {:.2}, \"global_updates\": {} }}{}\n",
            c.strategy.name(),
            c.codec,
            c.outcome.best_accuracy(),
            c.up_bytes(),
            c.down_bytes(),
            base_up as f64 / c.up_bytes().max(1) as f64,
            c.outcome.global_updates,
            if i + 1 < cells.len() { "," } else { "" },
        ));
    }
    let acceptance = match &accepted {
        Some((c, ratio, loss)) => format!(
            "{{ \"codec\": \"{}\", \"uplink_ratio\": {ratio:.2}, \"accuracy_loss\": {loss:.4}, \"baseline_best\": {baseline_best:.4} }}",
            c.codec
        ),
        None => "null".to_string(),
    };
    let json = format!(
        "{{\n  \"bench\": \"codec\",\n  \"seed\": {seed},\n  \"clients\": {clients},\n  \"rounds\": {rounds},\n  \"throughput_payload_weights\": 1000000,\n  \"throughput\": [\n{thr_rows}  ],\n  \"fedat_acceptance\": {acceptance},\n  \"lossless_sweep\": {},\n  \"cells\": [\n{rows}  ]\n}}\n",
        if sweep {
            "\"delta-rle under ExecMode x SimdKernel x workers {1,2,4,8}: asserted bit-identical\""
        } else {
            "\"skipped (--no-sweep)\""
        },
    );
    std::fs::write(&out_path, &json).expect("writing benchmark record");
    println!("{json}");
    eprintln!("[bench_codec] wrote {out_path}");

    // Acceptance (a): >=4x FedAT uplink reduction at <=1 point of accuracy.
    let (acc_cell, acc_ratio, acc_loss) = accepted.expect("no codec stayed within 1% of baseline");
    assert!(
        acc_ratio >= 4.0,
        "best qualifying codec {} only reached {acc_ratio:.2}x (loss {acc_loss:.4})",
        acc_cell.codec
    );
    eprintln!(
        "[bench_codec] acceptance: {} @ {acc_ratio:.2}x uplink reduction, {acc_loss:.4} loss",
        acc_cell.codec
    );

    // Acceptance (b): the lossless delta run is bitwise-identical training —
    // same final model as uncompressed, fewer uplink bytes.
    let rle = cell(StrategyKind::FedAt, "delta-rle");
    assert_eq!(
        rle.outcome.final_weights, fedat_none.outcome.final_weights,
        "delta-rle diverged from the uncompressed run"
    );
    assert!(
        rle.up_bytes() < baseline_up,
        "delta-rle saved nothing: {} vs {baseline_up}",
        rle.up_bytes()
    );

    // Acceptance (c): lossless bit-identity across execution mode, SIMD
    // kernel, and kernel-pool width.
    if sweep {
        eprintln!("[bench_codec] lossless sweep: ExecMode x SimdKernel x workers ...");
        pool::ensure_workers(8);
        let entry_cap = pool::max_pool_jobs();
        let c = cfg(StrategyKind::FedAt, rle.kind, rounds, seed);
        for mode in [ExecMode::Speculative, ExecMode::Inline] {
            for kernel in [SimdKernel::Auto, SimdKernel::Scalar] {
                for workers in [1usize, 2, 4, 8] {
                    set_exec_mode(mode);
                    set_simd_kernel(kernel);
                    pool::set_max_pool_jobs(workers - 1);
                    let out = run_experiment_shared(&task, &c);
                    assert_eq!(
                        out.final_weights, rle.outcome.final_weights,
                        "weights diverged under {mode:?}/{kernel:?}/{workers} workers"
                    );
                    let up = out.trace.points.last().map(|p| p.up_bytes).unwrap_or(0);
                    assert_eq!(
                        up,
                        rle.up_bytes(),
                        "wire bytes diverged under {mode:?}/{kernel:?}/{workers} workers"
                    );
                }
            }
        }
        pool::set_max_pool_jobs(entry_cap);
        set_simd_kernel(SimdKernel::Auto);
        set_exec_mode(ExecMode::Speculative);
        eprintln!("[bench_codec] sweep ok: 16/16 bit-identical");
    }
    eprintln!("[bench_codec] all acceptance criteria hold");
}
