//! Wall-clock benchmark of the federated-round hot path.
//!
//! Runs a quick-scale experiment per strategy twice — once with the
//! optimized execution layer (persistent kernel pool, speculative client
//! execution, thread-local model reuse, scratch-arena workspace,
//! transposed-scratch NT kernel, zero-copy broadcast) and once with the
//! naive baseline toggles that restore the seed's execution layer (scoped
//! thread spawns per kernel, inline train-at-completion, a full model
//! rebuild per dispatch, dot-product NT kernel, arena off, per-client
//! encode, scalar SIMD kernel) — and records rounds/sec for both in
//! `BENCH_fl_round.json`.
//! The optimized run is additionally checked for determinism (two runs,
//! bit-identical weights).
//!
//! `--threads-sweep` additionally measures the speculative executor's
//! client-level scaling on the 500-client cohort: FedAT rounds/sec at
//! {1, 2, 4, 8} workers (speculative) against the 1-worker inline
//! baseline, with bit-identity asserted before any timing. Inner kernels
//! run serially during the sweep so whole-client task parallelism is the
//! only lever measured.
//!
//! ```text
//! cargo run --release -p fedat-bench --bin bench_fl_round -- \
//!     [--out FILE] [--seed N] [--threads-sweep] [--leaf-dir DIR]
//! ```
//!
//! `--leaf-dir` swaps the synthetic CNN task for a LEAF-format directory
//! (FEMNIST featurizer) loaded from disk, so the round hot path can be
//! measured on real natural-partition corpora.
//!
//! See `docs/PERF.md` for how to read the output.

use fedat_bench::experiments::large_cohort_task;
use fedat_core::exec::{set_exec_mode, ExecMode};
use fedat_core::local::set_model_reuse;
use fedat_core::transport::set_broadcast_enabled;
use fedat_core::{run_experiment_shared, ExperimentConfig, StrategyKind};
use fedat_data::leaf::LeafBenchmark;
use fedat_data::suite::{self, FedTask};
use fedat_sim::fleet::ClusterConfig;
use fedat_tensor::ops::{set_nt_kernel, NtKernel};
use fedat_tensor::parallel::{self, SpawnMode};
use fedat_tensor::pool;
use fedat_tensor::scratch;
use fedat_tensor::simd::{set_simd_kernel, SimdKernel};
use std::sync::Arc;
use std::time::Instant;

/// Flips every execution-layer toggle at once.
fn set_execution_layer(optimized: bool) {
    parallel::set_spawn_mode(if optimized {
        SpawnMode::PersistentPool
    } else {
        SpawnMode::ScopedSpawn
    });
    set_model_reuse(optimized);
    set_nt_kernel(if optimized {
        NtKernel::TransposedScratch
    } else {
        NtKernel::DotProduct
    });
    scratch::set_enabled(optimized);
    set_broadcast_enabled(optimized);
    set_simd_kernel(if optimized {
        SimdKernel::Auto
    } else {
        SimdKernel::Scalar
    });
    set_exec_mode(if optimized {
        ExecMode::Speculative
    } else {
        ExecMode::Inline
    });
}

struct Sample {
    strategy: &'static str,
    rounds: u64,
    optimized_secs: f64,
    naive_secs: f64,
}

impl Sample {
    fn optimized_rounds_per_sec(&self) -> f64 {
        self.rounds as f64 / self.optimized_secs.max(1e-9)
    }

    fn naive_rounds_per_sec(&self) -> f64 {
        self.rounds as f64 / self.naive_secs.max(1e-9)
    }

    fn speedup(&self) -> f64 {
        self.optimized_rounds_per_sec() / self.naive_rounds_per_sec().max(1e-12)
    }
}

fn quick_cfg(strategy: StrategyKind, seed: u64, n_clients: usize) -> ExperimentConfig {
    let rounds = match strategy {
        // FedAT tier rounds are ~5× cheaper than full synchronous rounds;
        // equalize total local work instead of round counts.
        StrategyKind::FedAt => 50,
        _ => 10,
    };
    ExperimentConfig::builder()
        .strategy(strategy)
        .rounds(rounds)
        .clients_per_round(5)
        .local_epochs(1)
        // The benchmark measures the *round* hot path; keep the (mode-
        // independent) evaluation cadence out of the measurement.
        .eval_every(10_000)
        .eval_subset(64)
        .seed(seed)
        .cluster(
            ClusterConfig::paper_medium(seed)
                .with_clients(n_clients)
                .without_dropouts(),
        )
        .build()
}

fn timed_run(task: &Arc<FedTask>, cfg: &ExperimentConfig) -> (f64, u64, Vec<f32>) {
    let started = Instant::now();
    // Shared entry: the task (possibly a multi-MB --leaf-dir corpus) must
    // not be cloned inside the timed window.
    let out = run_experiment_shared(task, cfg);
    // Speculative jobs abandoned at the rounds cutoff (dispatched clients
    // whose completions never fired) are part of this run's cost and must
    // not bleed into the next measurement: drain them inside the timing.
    pool::quiesce();
    (
        started.elapsed().as_secs_f64(),
        out.global_updates,
        out.final_weights,
    )
}

/// Timed repeats per mode; the minimum is reported (noise-robust, like
/// criterion's best-estimate for short benches).
const REPEATS: usize = 3;

fn bench_strategy(
    strategy: StrategyKind,
    seed: u64,
    n_clients: usize,
    task: &Arc<FedTask>,
) -> Sample {
    let cfg = quick_cfg(strategy, seed, n_clients);

    // Warm the kernel pool and the scratch arenas so the optimized run is
    // measured at steady state (how a long-lived server actually runs).
    // The warm-up doubles as a determinism check against the timed runs.
    set_execution_layer(true);
    let (_, rounds, w_warm) = timed_run(task, &cfg);
    let mut optimized_secs = f64::INFINITY;
    for _ in 0..REPEATS {
        let (secs, r, w) = timed_run(task, &cfg);
        assert_eq!(r, rounds, "repeat changed the schedule");
        assert_eq!(
            w_warm,
            w,
            "optimized runs must be bit-identical across repeats ({})",
            strategy.name()
        );
        optimized_secs = optimized_secs.min(secs);
    }

    // Naive baseline: the seed's execution layer (spawn+join OS threads per
    // kernel, model rebuild per dispatch, dot-product NT kernel, no arena,
    // per-client encode).
    set_execution_layer(false);
    let mut naive_secs = f64::INFINITY;
    for _ in 0..REPEATS {
        let (secs, naive_rounds, _w) = timed_run(task, &cfg);
        assert_eq!(rounds, naive_rounds, "toggles must not change the schedule");
        naive_secs = naive_secs.min(secs);
    }
    set_execution_layer(true);

    Sample {
        strategy: strategy.name(),
        rounds,
        optimized_secs,
        naive_secs,
    }
}

/// One measured point of the thread-scaling sweep.
struct SweepPoint {
    workers: usize,
    mode: &'static str,
    secs: f64,
    rounds: u64,
}

impl SweepPoint {
    fn rounds_per_sec(&self) -> f64 {
        self.rounds as f64 / self.secs.max(1e-9)
    }
}

/// FedAT on the 500-client cohort, speculative at {1, 2, 4, 8} workers vs
/// the 1-worker inline baseline. "W workers" = the event-loop thread plus
/// W − 1 pool helpers (emulated by the pool-job cap on a pool grown to 7
/// real helper threads, so the sweep shape is identical on every host —
/// though on machines with fewer cores the extra workers oversubscribe and
/// the curve honestly flattens). Bit-identity across every configuration
/// is asserted before any timing.
fn threads_sweep(seed: u64) -> Vec<SweepPoint> {
    const SWEEP: [usize; 4] = [1, 2, 4, 8];
    let n_clients = 500;
    let task = Arc::new(large_cohort_task(n_clients, seed));
    let cluster = fedat_sim::fleet::ClusterConfig::paper_large(seed)
        .with_clients(n_clients)
        .without_dropouts();
    let cfg = ExperimentConfig::builder()
        .strategy(StrategyKind::FedAt)
        .rounds(40)
        .clients_per_round(10)
        .local_epochs(1)
        .eval_every(10_000) // keep the (mode-independent) eval cadence out
        .eval_subset(64)
        .seed(seed)
        .cluster(cluster)
        .build();

    set_execution_layer(true);
    // Whole-client task parallelism is the lever under test: inner kernels
    // stay serial so the sweep measures the speculative executor alone.
    parallel::set_max_threads(1);
    pool::ensure_workers(SWEEP[SWEEP.len() - 1] - 1);
    let entry_cap = pool::max_pool_jobs();

    // Identity gate: every configuration must produce the same bits
    // before any of them is timed.
    set_exec_mode(ExecMode::Inline);
    let (_, rounds, w_base) = timed_run(&task, &cfg);
    set_exec_mode(ExecMode::Speculative);
    for &w in &SWEEP {
        pool::set_max_pool_jobs(w - 1);
        let (_, r, wts) = timed_run(&task, &cfg);
        assert_eq!(rounds, r, "speculative execution changed the schedule");
        assert_eq!(
            w_base, wts,
            "speculative execution must be bit-identical to inline at {w} workers"
        );
    }

    let mut points = Vec::new();
    // Inline baseline (the seed's train-at-completion), 1 worker.
    set_exec_mode(ExecMode::Inline);
    let mut inline_secs = f64::INFINITY;
    for _ in 0..REPEATS {
        inline_secs = inline_secs.min(timed_run(&task, &cfg).0);
    }
    points.push(SweepPoint {
        workers: 1,
        mode: "inline",
        secs: inline_secs,
        rounds,
    });
    set_exec_mode(ExecMode::Speculative);
    for &w in &SWEEP {
        pool::set_max_pool_jobs(w - 1);
        let mut secs = f64::INFINITY;
        for _ in 0..REPEATS {
            secs = secs.min(timed_run(&task, &cfg).0);
        }
        points.push(SweepPoint {
            workers: w,
            mode: "speculative",
            secs,
            rounds,
        });
    }
    pool::set_max_pool_jobs(entry_cap);
    points
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = String::from("BENCH_fl_round.json");
    let mut seed = 9u64;
    let mut with_sweep = false;
    let mut leaf_dir: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out_path = args[i].clone();
            }
            "--seed" => {
                i += 1;
                seed = args[i].parse().expect("--seed takes an integer");
            }
            "--threads-sweep" => {
                with_sweep = true;
            }
            "--leaf-dir" => {
                i += 1;
                leaf_dir = Some(args[i].clone());
            }
            other => {
                eprintln!("unknown flag: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let host_cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    if host_cores == 1 {
        eprintln!(
            "[bench_fl_round] WARNING: single-core host — kernel fan-out, the \
             persistent pool, and speculative execution have no parallelism to \
             exploit, so the optimized-vs-naive speedups measure the serial \
             regime only. The record carries host_cores = 1."
        );
    }

    // Let individual kernels fan out across all cores — the regime where
    // spawn overhead vs. a persistent pool matters most.
    parallel::set_max_threads(0);

    // Default: the CNN task, the compute-heavy representative (conv kernels
    // cross the parallel threshold, models are large enough for codec/build
    // costs to register). `--leaf-dir` benches a disk-loaded LEAF corpus
    // under its natural partition instead.
    let task = Arc::new(match &leaf_dir {
        Some(d) => FedTask::from_leaf_dir(d, LeafBenchmark::femnist(), seed)
            .unwrap_or_else(|e| panic!("loading LEAF directory {d}: {e}")),
        None => suite::cifar10_like(30, 2, seed),
    });
    let n_clients = task.fed.num_clients();

    let samples: Vec<Sample> = [
        StrategyKind::FedAvg,
        StrategyKind::TiFL,
        StrategyKind::FedAt,
    ]
    .into_iter()
    .map(|s| {
        eprintln!("[bench_fl_round] running {} ...", s.name());
        bench_strategy(s, seed, n_clients, &task)
    })
    .collect();

    let sweep = if with_sweep {
        eprintln!("[bench_fl_round] thread-scaling sweep (500-client FedAT) ...");
        let points = threads_sweep(seed);
        // Restore the whole-machine kernel fan-out for anything after us.
        parallel::set_max_threads(0);
        Some(points)
    } else {
        None
    };

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"fl_round\",\n");
    json.push_str("  \"scale\": \"quick\",\n");
    json.push_str(&format!("  \"seed\": {seed},\n"));
    json.push_str(&format!("  \"clients\": {n_clients},\n"));
    json.push_str(&format!("  \"task\": \"{}\",\n", task.name));
    json.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    if host_cores == 1 {
        json.push_str(
            "  \"host_warning\": \"single-core host: no parallelism for the pool or speculative executor to exploit; speedups reflect the serial regime only\",\n",
        );
    }
    json.push_str(&format!(
        "  \"kernel_threads\": {},\n",
        fedat_tensor::parallel::max_threads()
    ));
    json.push_str(
        "  \"naive_baseline\": \"seed execution layer: scoped spawn per kernel, model rebuild per dispatch, dot-product NT kernel, scratch arena off, per-client downlink encode, scalar SIMD kernel\",\n",
    );
    json.push_str(&format!(
        "  \"simd_backend\": \"{}\",\n",
        fedat_tensor::simd::backend_name()
    ));
    json.push_str("  \"strategies\": [\n");
    for (i, s) in samples.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"name\": \"{}\", \"rounds\": {}, \"optimized_secs\": {:.4}, \"naive_secs\": {:.4}, \"optimized_rounds_per_sec\": {:.3}, \"naive_rounds_per_sec\": {:.3}, \"speedup\": {:.3} }}{}\n",
            s.strategy,
            s.rounds,
            s.optimized_secs,
            s.naive_secs,
            s.optimized_rounds_per_sec(),
            s.naive_rounds_per_sec(),
            s.speedup(),
            if i + 1 < samples.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]");
    if let Some(points) = &sweep {
        let baseline = points
            .iter()
            .find(|p| p.mode == "inline")
            .map(|p| p.rounds_per_sec())
            .unwrap_or(f64::NAN);
        json.push_str(",\n  \"threads_sweep\": {\n");
        json.push_str("    \"task\": \"large-cohort(500)\",\n");
        json.push_str("    \"strategy\": \"FedAT\",\n");
        json.push_str(&format!(
            "    \"host_cores\": {},\n",
            std::thread::available_parallelism()
                .map(|c| c.get())
                .unwrap_or(1)
        ));
        json.push_str(&format!(
            "    \"pool_workers\": {},\n",
            pool::worker_count()
        ));
        json.push_str(
            "    \"note\": \"inner kernels serial; workers = event-loop thread + (W-1) pool helpers; bit-identity asserted across every configuration before timing; scaling requires >= W physical cores\",\n",
        );
        json.push_str("    \"points\": [\n");
        for (i, p) in points.iter().enumerate() {
            json.push_str(&format!(
                "      {{ \"workers\": {}, \"mode\": \"{}\", \"rounds\": {}, \"secs\": {:.4}, \"rounds_per_sec\": {:.3}, \"speedup_vs_inline_1w\": {:.3} }}{}\n",
                p.workers,
                p.mode,
                p.rounds,
                p.secs,
                p.rounds_per_sec(),
                p.rounds_per_sec() / baseline.max(1e-12),
                if i + 1 < points.len() { "," } else { "" }
            ));
        }
        json.push_str("    ]\n  }");
    }
    json.push_str("\n}\n");
    std::fs::write(&out_path, &json).expect("writing benchmark record");

    println!("{json}");
    for s in &samples {
        println!(
            "{:<8} {:>4} rounds  optimized {:>8.2} r/s  naive {:>8.2} r/s  speedup {:>5.2}x",
            s.strategy,
            s.rounds,
            s.optimized_rounds_per_sec(),
            s.naive_rounds_per_sec(),
            s.speedup()
        );
    }
    if let Some(points) = &sweep {
        for p in points {
            println!(
                "sweep {:>11} {:>2}w  {:>8.2} r/s",
                p.mode,
                p.workers,
                p.rounds_per_sec()
            );
        }
    }
    eprintln!("[bench_fl_round] wrote {out_path}");
}
