//! Wall-clock benchmark of the concurrent experiment grid.
//!
//! Two measurements, identity asserted before either is timed:
//!
//! 1. **Identity gate** — all six strategies run once serially and once as
//!    one concurrent grid on the kernel pool; every trace point and the
//!    final weights must be bit-identical. A grid that changes a single bit
//!    fails here and nothing is timed.
//! 2. **Throughput** — a 4-run FedAT grid (four seeds) timed as one
//!    concurrent grid against the same four runs executed serially;
//!    aggregate rounds/sec for both and the speedup are recorded in
//!    `BENCH_grid.json`.
//!
//! The speedup is only meaningful on a multi-core host: with one core the
//! pool has zero workers, every grid job is stolen and run inline by the
//! joining thread, and the grid *is* the serial loop (speedup ≈ 1.0). The
//! record carries `host_cores` so readers can tell which regime produced
//! it, and the bench warns loudly on single-core hosts.
//!
//! ```text
//! cargo run --release -p fedat-bench --bin bench_grid -- \
//!     [--out FILE] [--seed N] [--grid N] [--quick]
//! ```
//!
//! See `docs/PERF.md` ("Pipelined server and experiment grids") for how to
//! read the output.

use fedat_bench::grid::run_grid;
use fedat_bench::harness::Job;
use fedat_core::{run_experiment_shared, ExperimentConfig, Outcome, StrategyKind};
use fedat_data::suite::{self, FedTask};
use fedat_sim::fleet::ClusterConfig;
use fedat_tensor::pool;
use std::sync::Arc;
use std::time::Instant;

fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1)
}

fn grid_cfg(strategy: StrategyKind, seed: u64, rounds: u64, n_clients: usize) -> ExperimentConfig {
    ExperimentConfig::builder()
        .strategy(strategy)
        .rounds(rounds)
        .clients_per_round(4)
        .local_epochs(1)
        .eval_every(5)
        .eval_subset(64)
        .seed(seed)
        .cluster(
            ClusterConfig::paper_medium(seed)
                .with_clients(n_clients)
                .without_dropouts(),
        )
        .build()
}

fn job(task: &Arc<FedTask>, strategy: StrategyKind, seed: u64, rounds: u64) -> Job {
    Job {
        label: format!("{} seed {seed}", strategy.name()),
        task: task.clone(),
        cfg: grid_cfg(strategy, seed, rounds, task.fed.num_clients()),
    }
}

/// Asserts a grid member is bit-identical to its serial counterpart: the
/// final weights and every field of every trace point.
fn assert_identical(label: &str, grid: &Outcome, serial: &Outcome) {
    assert_eq!(
        grid.final_weights, serial.final_weights,
        "{label}: final weights diverged between concurrent grid and serial"
    );
    assert_eq!(grid.global_updates, serial.global_updates, "{label}");
    assert_eq!(
        grid.trace.points.len(),
        serial.trace.points.len(),
        "{label}: trace length diverged"
    );
    for (p, q) in grid.trace.points.iter().zip(serial.trace.points.iter()) {
        assert_eq!(p.time, q.time, "{label}: virtual time diverged");
        assert_eq!(p.round, q.round, "{label}");
        assert_eq!(p.accuracy, q.accuracy, "{label}: accuracy diverged");
        assert_eq!(p.loss, q.loss, "{label}: loss diverged");
        assert_eq!(p.up_bytes, q.up_bytes, "{label}: uplink traffic diverged");
        assert_eq!(p.down_bytes, q.down_bytes, "{label}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = String::from("BENCH_grid.json");
    let mut seed = 9u64;
    let mut grid_size = 4usize;
    let mut quick = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out_path = args[i].clone();
            }
            "--seed" => {
                i += 1;
                seed = args[i].parse().expect("--seed takes an integer");
            }
            "--grid" => {
                i += 1;
                grid_size = args[i].parse().expect("--grid takes an integer");
            }
            "--quick" => quick = true,
            other => {
                eprintln!("unknown flag: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let cores = host_cores();
    if cores == 1 {
        eprintln!(
            "[bench_grid] WARNING: single-core host — the pool has no helper \
             workers, every grid job runs inline at its join, and the grid \
             speedup honestly reads ~1.0. Identity is still asserted; the \
             throughput numbers measure the serial regime."
        );
    }

    let (n_clients, rounds) = if quick { (8, 4) } else { (15, 10) };
    let task = Arc::new(suite::sent140_like(n_clients, seed));

    // ---- Identity gate: all six strategies, concurrent grid vs serial ----
    eprintln!("[bench_grid] identity gate: six strategies, grid vs serial ...");
    let serial_outcomes: Vec<(StrategyKind, Outcome)> = StrategyKind::all()
        .into_iter()
        .map(|s| {
            let j = job(&task, s, seed, rounds);
            (s, run_experiment_shared(&j.task, &j.cfg))
        })
        .collect();
    let grid_jobs: Vec<Job> = StrategyKind::all()
        .into_iter()
        .map(|s| job(&task, s, seed, rounds))
        .collect();
    let grid_results = run_grid(grid_jobs, 0);
    for ((s, serial), g) in serial_outcomes.iter().zip(grid_results.iter()) {
        assert_identical(s.name(), &g.outcome, serial);
    }
    eprintln!("[bench_grid] identity gate passed: all six strategies bit-identical");

    // ---- Throughput: N-run FedAT grid vs the same runs serially ----
    // Warm-up pass so pool workers, model caches and scratch arenas exist
    // before either timed window.
    let warm = job(&task, StrategyKind::FedAt, seed, rounds);
    let _ = run_experiment_shared(&warm.task, &warm.cfg);
    pool::quiesce();

    let seeds: Vec<u64> = (0..grid_size as u64).map(|i| seed + i).collect();

    // Identity for the timed configurations too, before any timing.
    let timed_serial: Vec<Outcome> = seeds
        .iter()
        .map(|&s| {
            let j = job(&task, StrategyKind::FedAt, s, rounds);
            run_experiment_shared(&j.task, &j.cfg)
        })
        .collect();
    let check_jobs: Vec<Job> = seeds
        .iter()
        .map(|&s| job(&task, StrategyKind::FedAt, s, rounds))
        .collect();
    let check = run_grid(check_jobs, 0);
    for (g, serial) in check.iter().zip(timed_serial.iter()) {
        assert_identical(&g.label, &g.outcome, serial);
    }
    pool::quiesce();

    eprintln!("[bench_grid] timing {grid_size}-run grid vs serial ...");
    let started = Instant::now();
    let mut serial_updates = 0u64;
    for &s in &seeds {
        let j = job(&task, StrategyKind::FedAt, s, rounds);
        serial_updates += run_experiment_shared(&j.task, &j.cfg).global_updates;
        pool::quiesce();
    }
    let serial_secs = started.elapsed().as_secs_f64();

    let timed_jobs: Vec<Job> = seeds
        .iter()
        .map(|&s| job(&task, StrategyKind::FedAt, s, rounds))
        .collect();
    let started = Instant::now();
    let timed_grid = run_grid(timed_jobs, 0);
    pool::quiesce();
    let grid_secs = started.elapsed().as_secs_f64();
    let grid_updates: u64 = timed_grid.iter().map(|r| r.outcome.global_updates).sum();
    assert_eq!(
        serial_updates, grid_updates,
        "schedulers changed the schedule"
    );

    let serial_rps = serial_updates as f64 / serial_secs.max(1e-9);
    let grid_rps = grid_updates as f64 / grid_secs.max(1e-9);
    let speedup = grid_rps / serial_rps.max(1e-12);

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"grid\",\n");
    json.push_str(&format!("  \"seed\": {seed},\n"));
    json.push_str(&format!("  \"task\": \"{}\",\n", task.name));
    json.push_str(&format!("  \"host_cores\": {cores},\n"));
    json.push_str(&format!("  \"pool_workers\": {},\n", pool::worker_count()));
    if cores == 1 {
        json.push_str(
            "  \"host_warning\": \"single-core host: zero pool workers, grid degrades to the serial loop, speedup ~1.0 expected; re-run on a multi-core host for a meaningful number\",\n",
        );
    }
    json.push_str(
        "  \"identity\": \"all six strategies bit-identical (full trace + final weights) between concurrent grid and serial, asserted before timing\",\n",
    );
    json.push_str("  \"throughput\": {\n");
    json.push_str("    \"strategy\": \"FedAT\",\n");
    json.push_str(&format!("    \"grid_runs\": {grid_size},\n"));
    json.push_str(&format!("    \"rounds_per_run\": {rounds},\n"));
    json.push_str(&format!("    \"total_updates\": {grid_updates},\n"));
    json.push_str(&format!("    \"serial_secs\": {serial_secs:.4},\n"));
    json.push_str(&format!("    \"grid_secs\": {grid_secs:.4},\n"));
    json.push_str(&format!(
        "    \"serial_aggregate_rounds_per_sec\": {serial_rps:.3},\n"
    ));
    json.push_str(&format!(
        "    \"grid_aggregate_rounds_per_sec\": {grid_rps:.3},\n"
    ));
    json.push_str(&format!("    \"speedup\": {speedup:.3}\n"));
    json.push_str("  }\n}\n");
    std::fs::write(&out_path, &json).expect("writing benchmark record");

    println!("{json}");
    println!(
        "grid {grid_size} runs: serial {serial_rps:.2} r/s, concurrent {grid_rps:.2} r/s, speedup {speedup:.2}x ({cores} cores)"
    );
    eprintln!("[bench_grid] wrote {out_path}");
}
