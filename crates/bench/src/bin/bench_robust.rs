//! Robustness benchmark: corrupted client updates vs the deterministic
//! guard layer and the robust aggregation rules.
//!
//! One FedAvg scenario — a 24-client sentiment federation where a fraction
//! of clients uplink additive-noise garbage on every selection — is run at
//! 0/10/20/30% corrupt clients under four server postures:
//!
//! * **undefended** — the legacy server: weighted mean, no screening.
//! * **clip** — per-update finite check + L2-norm screen against a
//!   deterministic EWMA of accepted norms, clipping over-limit updates
//!   down to the threshold.
//! * **trimmed** — finite check + coordinate-wise trimmed mean (drop the
//!   top and bottom 25% of client values per coordinate).
//! * **median** — finite check + coordinate-wise median.
//!
//! Written to `BENCH_robust.json`: the accuracy-vs-corrupt-fraction curve
//! per posture plus the guard/fault counters. The run asserts the ISSUE
//! acceptance criteria: the undefended server collapses (or goes
//! non-finite) at ≥20% corrupt clients while every defended posture stays
//! within 2% of the clean baseline, and a guard-on corruption-active run
//! is bit-identical across ExecMode × SimdKernel × kernel-pool worker
//! counts {1, 2, 4, 8}.
//!
//! ```text
//! cargo run --release -p fedat-bench --bin bench_robust -- \
//!     [--out FILE] [--seed N] [--clients N] [--rounds N] [--threads N] [--no-sweep]
//! ```
//!
//! See `docs/ROBUSTNESS.md` ("Corrupted updates") for the threat model and
//! how to read the output.

use fedat_core::aggregate::AggRule;
use fedat_core::config::{ExperimentConfig, GuardPolicy, NormScreen, StrategyKind};
use fedat_core::exec::{set_exec_mode, ExecMode};
use fedat_core::run_experiment_shared;
use fedat_data::suite::{self, FedTask};
use fedat_sim::churn::{ChurnConfig, CorruptMode, CorruptSpec};
use fedat_sim::fault::FaultKind;
use fedat_sim::fleet::ClusterConfig;
use fedat_tensor::pool;
use fedat_tensor::simd::{set_simd_kernel, SimdKernel};
use std::sync::Arc;

/// The corrupt fractions of the curve (share of clients that mangle every
/// uplink).
const FRACTIONS: [f64; 4] = [0.0, 0.1, 0.2, 0.3];

/// The attack: a corrupt-capable client uplinks its trained weights scaled
/// 5× on 60% of its selections — a magnitude attack that preserves the
/// update's direction but inflates every aggregate it reaches, compounding
/// round over round until the undefended model saturates and freezes.
fn attack(fraction: f64) -> Option<CorruptSpec> {
    if fraction == 0.0 {
        return None;
    }
    Some(CorruptSpec {
        fraction,
        probability: 0.5,
        mode: CorruptMode::Scale { factor: 5.0 },
    })
}

fn guard(posture: &str) -> GuardPolicy {
    match posture {
        "undefended" => GuardPolicy::default(),
        "clip" => GuardPolicy {
            finite_check: true,
            norm_screen: Some(NormScreen {
                alpha: 0.2,
                threshold: 2.0,
                clip: true,
            }),
            ..GuardPolicy::default()
        },
        "trimmed" => GuardPolicy {
            finite_check: true,
            agg_rule: AggRule::TrimmedMean { frac: 0.45 },
            ..GuardPolicy::default()
        },
        "median" => GuardPolicy {
            finite_check: true,
            agg_rule: AggRule::CoordinateMedian,
            ..GuardPolicy::default()
        },
        other => panic!("unknown posture {other}"),
    }
}

fn cfg(posture: &str, fraction: f64, rounds: u64, seed: u64, clients: usize) -> ExperimentConfig {
    let churn = ChurnConfig {
        corrupt: attack(fraction),
        ..ChurnConfig::default()
    };
    let cluster = ClusterConfig::paper_medium(seed)
        .with_clients(clients)
        .without_dropouts()
        .with_churn(churn);
    ExperimentConfig::builder()
        .strategy(StrategyKind::FedAvg)
        .rounds(rounds)
        // A 12-wide cohort keeps the per-round corrupt count concentrated
        // near its mean: with 30% corrupt clients firing half the time,
        // rounds that breach the order statistics' 6-of-12 breakdown point
        // are ~0.02% instead of the ~2% an 8-wide cohort sees.
        .clients_per_round(12)
        .local_epochs(1)
        .eval_every(5)
        .max_time(6_000.0)
        .seed(seed)
        .cluster(cluster)
        .guard(guard(posture))
        .build()
}

struct Cell {
    posture: &'static str,
    fraction: f64,
    outcome: fedat_core::Outcome,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = String::from("BENCH_robust.json");
    let mut seed = 41u64;
    let mut clients = 24usize;
    let mut rounds = 200u64;
    let mut threads = 4usize;
    let mut sweep = true;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out_path = args[i].clone();
            }
            "--seed" => {
                i += 1;
                seed = args[i].parse().expect("--seed takes an integer");
            }
            "--clients" => {
                i += 1;
                clients = args[i].parse().expect("--clients takes an integer");
            }
            "--rounds" => {
                i += 1;
                rounds = args[i].parse().expect("--rounds takes an integer");
            }
            "--threads" => {
                i += 1;
                threads = args[i].parse().expect("--threads takes an integer");
            }
            "--no-sweep" => sweep = false,
            other => {
                eprintln!("unknown flag: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    eprintln!("[bench_robust] building the {clients}-client sentiment task ...");
    let task: Arc<FedTask> = Arc::new(suite::sent140_like(clients, seed));
    pool::ensure_workers(threads.max(1));

    const POSTURES: [&str; 4] = ["undefended", "clip", "trimmed", "median"];
    let mut cells: Vec<Cell> = Vec::new();
    for &fraction in &FRACTIONS {
        for posture in POSTURES {
            // The clean column is identical across postures except for the
            // aggregation rule; run it per posture anyway — it doubles as
            // the inert-guard sanity row for each rule.
            eprintln!(
                "[bench_robust] {posture} @ {:.0}% corrupt ...",
                fraction * 100.0
            );
            let c = cfg(posture, fraction, rounds, seed, clients);
            let outcome = run_experiment_shared(&task, &c);
            cells.push(Cell {
                posture,
                fraction,
                outcome,
            });
        }
    }

    let clean_best = cells
        .iter()
        .find(|c| c.posture == "undefended" && c.fraction == 0.0)
        .expect("clean baseline ran")
        .outcome
        .best_accuracy();

    // Write the artifact before asserting acceptance, so a failed criterion
    // in CI still leaves the numbers behind.
    let mut rows = String::new();
    for (i, c) in cells.iter().enumerate() {
        let fc = c.outcome.fault_counters;
        let finite = c.outcome.final_weights.iter().all(|w| w.is_finite());
        rows.push_str(&format!(
            "    {{ \"posture\": \"{}\", \"corrupt_fraction\": {:.2}, \"best_accuracy\": {:.4}, \"final_finite\": {}, \"global_updates\": {}, \"corrupt\": {}, \"rejects\": {}, \"clips\": {}, \"quarantines\": {}, \"fault_rows\": {} }}{}\n",
            c.posture,
            c.fraction,
            c.outcome.best_accuracy(),
            finite,
            c.outcome.global_updates,
            fc.corrupt,
            fc.rejects,
            fc.clips,
            fc.quarantines,
            c.outcome.faults.events().len(),
            if i + 1 < cells.len() { "," } else { "" },
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"robust\",\n  \"seed\": {seed},\n  \"clients\": {clients},\n  \"rounds\": {rounds},\n  \"clean_baseline\": {clean_best:.4},\n  \"attack\": \"scale-by-5, probability 0.5 per selection\",\n  \"determinism_sweep\": {},\n  \"cells\": [\n{rows}  ]\n}}\n",
        if sweep {
            "\"ExecMode x SimdKernel x workers {1,2,4,8}: asserted bit-identical\""
        } else {
            "\"skipped (--no-sweep)\""
        },
    );
    std::fs::write(&out_path, &json).expect("writing benchmark record");
    println!("{json}");
    eprintln!("[bench_robust] wrote {out_path}");

    let cell = |posture: &str, fraction: f64| -> &Cell {
        cells
            .iter()
            .find(|c| c.posture == posture && c.fraction == fraction)
            .expect("cell ran")
    };

    // Acceptance (a): the undefended server collapses at >=20% corrupt
    // clients — accuracy well below the clean baseline, or a non-finite
    // model — while every defended posture stays within 2% of clean.
    for fraction in [0.2, 0.3] {
        let u = cell("undefended", fraction);
        let finite = u.outcome.final_weights.iter().all(|w| w.is_finite());
        let collapsed = !finite || u.outcome.best_accuracy() < clean_best - 0.05;
        assert!(
            collapsed,
            "undefended @ {fraction}: expected collapse, got best {:.3} vs clean {clean_best:.3}",
            u.outcome.best_accuracy()
        );
        for posture in ["clip", "trimmed", "median"] {
            let d = cell(posture, fraction);
            assert!(
                d.outcome.final_weights.iter().all(|w| w.is_finite()),
                "{posture} @ {fraction}: non-finite final model"
            );
            assert!(
                d.outcome.best_accuracy() >= clean_best - 0.02,
                "{posture} @ {fraction}: best {:.3} fell more than 2% below clean {clean_best:.3}",
                d.outcome.best_accuracy()
            );
        }
    }
    // The observability surfaces must actually see the attack: ground-truth
    // corrupt events land in the log, and the clip posture clips.
    for fraction in [0.1, 0.2, 0.3] {
        let c = cell("clip", fraction);
        assert!(
            c.outcome.fault_counters.corrupt > 0,
            "clip @ {fraction}: no corrupt event recorded"
        );
        assert!(
            c.outcome.faults.count(FaultKind::Corrupt) > 0,
            "clip @ {fraction}: FaultKind::Corrupt missing from the log"
        );
        assert!(
            c.outcome.fault_counters.clips > 0,
            "clip @ {fraction}: the norm screen never clipped"
        );
    }

    // Acceptance (b): determinism sweep — guard on, corruption active —
    // must be bit-identical across execution mode, SIMD kernel, and
    // kernel-pool width.
    if sweep {
        eprintln!("[bench_robust] determinism sweep: ExecMode x SimdKernel x workers ...");
        pool::ensure_workers(8);
        let entry_cap = pool::max_pool_jobs();
        let baseline = cell("clip", 0.3);
        let c = cfg("clip", 0.3, rounds, seed, clients);
        for mode in [ExecMode::Speculative, ExecMode::Inline] {
            for kernel in [SimdKernel::Auto, SimdKernel::Scalar] {
                for workers in [1usize, 2, 4, 8] {
                    set_exec_mode(mode);
                    set_simd_kernel(kernel);
                    pool::set_max_pool_jobs(workers - 1);
                    let out = run_experiment_shared(&task, &c);
                    assert_eq!(
                        out.final_weights, baseline.outcome.final_weights,
                        "weights diverged under {mode:?}/{kernel:?}/{workers} workers"
                    );
                    assert_eq!(
                        out.fault_counters, baseline.outcome.fault_counters,
                        "fault counters diverged under {mode:?}/{kernel:?}/{workers} workers"
                    );
                }
            }
        }
        pool::set_max_pool_jobs(entry_cap);
        set_simd_kernel(SimdKernel::Auto);
        set_exec_mode(ExecMode::Speculative);
        eprintln!("[bench_robust] sweep ok: 16/16 bit-identical");
    }
    eprintln!("[bench_robust] all acceptance criteria hold");
}
