//! Wall-clock microbenchmark of the SIMD micro-kernel layer: the three
//! matmul variants, the slice primitives, and the lane-decomposed
//! reductions, each timed under `SimdKernel::Auto` (runtime-dispatched
//! AVX2+FMA or the portable fallback) and `SimdKernel::Scalar` (the seed's
//! plain loops, what autovectorization alone gave). Writes both
//! throughputs and the speedup to `BENCH_tensor_kernels.json`.
//!
//! The two kernels are bit-identical by construction — asserted here on
//! every shape before timing.
//!
//! ```text
//! cargo run --release -p fedat-bench --bin bench_tensor_kernels -- \
//!     [--out FILE] [--seed N]
//! ```
//!
//! See `docs/PERF.md` for how to read the output.

use fedat_tensor::ops::{matmul_into, matmul_nt_into, matmul_tn_into};
use fedat_tensor::rng::{fill_normal, rng_for};
use fedat_tensor::simd::{self, SimdKernel};
use fedat_tensor::{ops, parallel};
use std::hint::black_box;
use std::time::Instant;

/// Timed repeats per kernel; the minimum is reported (noise-robust).
const REPEATS: usize = 3;

fn filled(len: usize, seed: u64) -> Vec<f32> {
    let mut v = vec![0.0f32; len];
    fill_normal(&mut rng_for(seed, 91), &mut v, 0.0, 1.0);
    v
}

/// Times `iters` calls of `f`, three repeats, returns best seconds.
fn time_best(iters: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPEATS {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

struct MatmulSample {
    variant: &'static str,
    dim: usize,
    scalar_gflops: f64,
    simd_gflops: f64,
}

impl MatmulSample {
    fn speedup(&self) -> f64 {
        self.simd_gflops / self.scalar_gflops.max(1e-12)
    }
}

fn bench_matmul(
    variant: &'static str,
    dim: usize,
    seed: u64,
    mm: impl Fn(&[f32], &[f32], &mut [f32], usize),
) -> MatmulSample {
    let a = filled(dim * dim, seed);
    let b = filled(dim * dim, seed ^ 1);
    let mut c = vec![0.0f32; dim * dim];

    // Bit-identity check before timing.
    simd::set_simd_kernel(SimdKernel::Scalar);
    c.fill(0.0);
    mm(&a, &b, &mut c, dim);
    let want = c.clone();
    simd::set_simd_kernel(SimdKernel::Auto);
    c.fill(0.0);
    mm(&a, &b, &mut c, dim);
    assert_eq!(want, c, "SIMD {variant} {dim} diverged from scalar");

    let flops = 2.0 * (dim * dim * dim) as f64;
    let iters = ((400_000_000.0 / flops) as usize).max(8);
    let mut measure = |kernel: SimdKernel| {
        simd::set_simd_kernel(kernel);
        // One warm-up call per kernel so timed runs start cache-warm.
        c.fill(0.0);
        mm(&a, &b, &mut c, dim);
        let secs = time_best(iters, || {
            c.fill(0.0);
            mm(black_box(&a), black_box(&b), black_box(&mut c), dim);
        });
        flops * iters as f64 / secs.max(1e-12) / 1e9
    };
    let scalar_gflops = measure(SimdKernel::Scalar);
    let simd_gflops = measure(SimdKernel::Auto);
    simd::set_simd_kernel(SimdKernel::Auto);
    MatmulSample {
        variant,
        dim,
        scalar_gflops,
        simd_gflops,
    }
}

struct SliceSample {
    kernel: &'static str,
    len: usize,
    scalar_gelems: f64,
    simd_gelems: f64,
}

impl SliceSample {
    fn speedup(&self) -> f64 {
        self.simd_gelems / self.scalar_gelems.max(1e-12)
    }
}

fn bench_slice(
    kernel: &'static str,
    len: usize,
    seed: u64,
    mut f: impl FnMut(&[f32], &mut [f32]),
) -> SliceSample {
    let x = filled(len, seed);
    let y0 = filled(len, seed ^ 2);
    let mut y = y0.clone();
    let iters = (200_000_000 / len).max(16);
    let mut measure = |k: SimdKernel| {
        simd::set_simd_kernel(k);
        y.copy_from_slice(&y0);
        f(&x, &mut y);
        let secs = time_best(iters, || {
            f(black_box(&x), black_box(&mut y));
        });
        len as f64 * iters as f64 / secs.max(1e-12) / 1e9
    };
    let scalar_gelems = measure(SimdKernel::Scalar);
    let simd_gelems = measure(SimdKernel::Auto);
    simd::set_simd_kernel(SimdKernel::Auto);
    SliceSample {
        kernel,
        len,
        scalar_gelems,
        simd_gelems,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = String::from("BENCH_tensor_kernels.json");
    let mut seed = 9u64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out_path = args[i].clone();
            }
            "--seed" => {
                i += 1;
                seed = args[i].parse().expect("--seed takes an integer");
            }
            other => {
                eprintln!("unknown flag: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    // One thread: this benchmark isolates the micro-kernel itself; the
    // banding across the pool is measured by bench_fl_round/bench_aggregate.
    parallel::set_max_threads(1);
    simd::set_simd_kernel(SimdKernel::Auto);
    let backend = simd::backend_name();
    eprintln!("[bench_tensor_kernels] Auto dispatches to: {backend}");

    let mut matmuls = Vec::new();
    for dim in [64usize, 128, 256] {
        eprintln!("[bench_tensor_kernels] matmul variants at {dim}x{dim} ...");
        matmuls.push(bench_matmul("nn", dim, seed, |a, b, c, d| {
            matmul_into(a, b, c, d, d, d)
        }));
        matmuls.push(bench_matmul("tn", dim, seed ^ 10, |a, b, c, d| {
            matmul_tn_into(a, b, c, d, d, d)
        }));
        matmuls.push(bench_matmul("nt", dim, seed ^ 20, |a, b, c, d| {
            matmul_nt_into(a, b, c, d, d, d)
        }));
    }

    // The model-dimension sweeps: sized like the large-cohort model.
    let model_dim = 32 * 1024;
    eprintln!("[bench_tensor_kernels] slice primitives ({model_dim} elements) ...");
    let slices = vec![
        bench_slice("axpy", model_dim, seed, |x, y| ops::axpy(0.25, x, y)),
        bench_slice("lerp", model_dim, seed ^ 3, |x, y| {
            ops::lerp_into(y, x, 0.125)
        }),
        bench_slice("scale", model_dim, seed ^ 4, |_, y| ops::scale(y, 1.0001)),
        bench_slice("dot", model_dim, seed ^ 5, |x, y| {
            black_box(ops::dot(x, y));
        }),
    ];

    let key = matmuls
        .iter()
        .find(|s| s.variant == "nn" && s.dim == 128)
        .expect("128x128 nn sample");

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"tensor_kernels\",\n");
    json.push_str(&format!("  \"seed\": {seed},\n"));
    json.push_str(&format!("  \"simd_backend\": \"{backend}\",\n"));
    json.push_str("  \"kernel_threads\": 1,\n");
    json.push_str(
        "  \"scalar_baseline\": \"SimdKernel::Scalar: plain loops, compiler autovectorization only (seed's loops for matmul/elementwise; lane-decomposed scalar form for dot, whose definition moved — see docs/PERF.md)\",\n",
    );
    json.push_str(&format!(
        "  \"matmul_128_speedup\": {:.3},\n",
        key.speedup()
    ));
    json.push_str("  \"matmul\": [\n");
    for (i, s) in matmuls.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"variant\": \"{}\", \"dim\": {}, \"scalar_gflops\": {:.3}, \"simd_gflops\": {:.3}, \"speedup\": {:.3} }}{}\n",
            s.variant,
            s.dim,
            s.scalar_gflops,
            s.simd_gflops,
            s.speedup(),
            if i + 1 < matmuls.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"slice_primitives\": [\n");
    for (i, s) in slices.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"kernel\": \"{}\", \"len\": {}, \"scalar_gelems_per_sec\": {:.3}, \"simd_gelems_per_sec\": {:.3}, \"speedup\": {:.3} }}{}\n",
            s.kernel,
            s.len,
            s.scalar_gelems,
            s.simd_gelems,
            s.speedup(),
            if i + 1 < slices.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("writing benchmark record");

    println!("{json}");
    for s in &matmuls {
        println!(
            "matmul {:<2} {:>4}  scalar {:>7.2} GF/s  simd {:>7.2} GF/s  speedup {:>5.2}x",
            s.variant,
            s.dim,
            s.scalar_gflops,
            s.simd_gflops,
            s.speedup()
        );
    }
    for s in &slices {
        println!(
            "{:<6} {:>6}  scalar {:>6.2} Ge/s  simd {:>6.2} Ge/s  speedup {:>5.2}x",
            s.kernel,
            s.len,
            s.scalar_gelems,
            s.simd_gelems,
            s.speedup()
        );
    }
    eprintln!("[bench_tensor_kernels] wrote {out_path}");
}
