//! Diagnostic probe: one dataset × all Table-1 strategies at full scale,
//! printed as a single row. Used to sanity-check calibration without
//! running the whole matrix.
//!
//! ```text
//! probe [cifar2|cifar8|fmnist2|sent140|femnist|reddit] [--seed N]
//! ```

use fedat_bench::harness::{run_jobs, Job, Scale};
use fedat_bench::report::fmt_tta;
use fedat_core::{ExperimentConfig, StrategyKind};
use fedat_data::suite;
use fedat_sim::fleet::ClusterConfig;
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args
        .first()
        .map(|s| s.as_str())
        .unwrap_or("cifar2")
        .to_string();
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(9u64);
    let scale = Scale::Full;
    let n = scale.medium_clients();
    let task = Arc::new(match which.as_str() {
        "cifar2" => suite::cifar10_like(n, 2, seed),
        "cifar8" => suite::cifar10_like(n, 8, seed),
        "fmnist2" => suite::fmnist_like(n, 2, seed),
        "sent140" => suite::sent140_like(n, seed),
        "femnist" => suite::femnist_like(scale.large_clients(), seed),
        "reddit" => suite::reddit_like(scale.large_clients(), seed),
        other => {
            eprintln!("unknown task {other}");
            std::process::exit(2);
        }
    });
    let large = matches!(which.as_str(), "femnist" | "reddit");
    let cluster = if large {
        let mut c = ClusterConfig::paper_large(seed).with_clients(task.fed.num_clients());
        c.n_unstable = c.n_unstable.min(c.n_clients / 10);
        c
    } else {
        ClusterConfig::paper_medium(seed).with_clients(task.fed.num_clients())
    };
    let jobs: Vec<Job> = StrategyKind::all()
        .into_iter()
        .map(|strategy| {
            let rounds = match strategy {
                StrategyKind::FedAt => 1300,
                _ => 150,
            };
            let cfg = ExperimentConfig::builder()
                .strategy(strategy)
                .rounds(rounds)
                .max_time(4500.0)
                .eval_every(5)
                .seed(seed)
                .cluster(cluster.clone())
                .build();
            Job {
                label: strategy.name().to_string(),
                task: task.clone(),
                cfg,
            }
        })
        .collect();
    let started = std::time::Instant::now();
    for r in run_jobs(jobs, 0) {
        let up = r
            .outcome
            .trace
            .points
            .last()
            .map(|p| p.up_bytes)
            .unwrap_or(0);
        println!(
            "{:9} best {:.4} t→{:.2} {:>8} end {:6.0}s updates {:6} var {:.5} upMB {:7.1}",
            r.strategy,
            r.outcome.best_accuracy(),
            r.target_accuracy,
            fmt_tta(r.outcome.trace.time_to_accuracy(r.target_accuracy)),
            r.outcome.report.end_time,
            r.outcome.global_updates,
            r.outcome.accuracy_variance,
            up as f64 / 1e6,
        );
    }
    eprintln!(
        "probe {which} done in {:.0}s",
        started.elapsed().as_secs_f64()
    );
}
