//! Reproduction CLI: regenerates every table and figure of the FedAT paper.
//!
//! ```text
//! repro <experiment-id> [--quick] [--seed N] [--threads N] [--out DIR]
//! ```

use fedat_bench::experiments::{self, Ctx};
use fedat_bench::harness::Scale;
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: repro <experiment-id> [--quick] [--seed N] [--threads N] [--out DIR]");
        eprintln!("ids: table1 table2 fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10");
        eprintln!("     leaf churn corrupt ablate-mistier ablate-lambda ablate-delta matrix all");
        eprintln!("     (leaf reads FEDAT_LEAF_DIR / FEDAT_LEAF_BENCH, or generates a fixture)");
        std::process::exit(2);
    }
    let id = args[0].clone();
    let mut scale = Scale::Full;
    let mut seed = 9u64;
    let mut threads = 0usize;
    let mut out = PathBuf::from("results");
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => scale = Scale::Quick,
            "--seed" => {
                i += 1;
                seed = args[i].parse().expect("--seed takes an integer");
            }
            "--threads" => {
                i += 1;
                threads = args[i].parse().expect("--threads takes an integer");
            }
            "--out" => {
                i += 1;
                out = PathBuf::from(&args[i]);
            }
            other => {
                eprintln!("unknown flag: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let started = std::time::Instant::now();
    let ctx = Ctx {
        scale,
        out,
        seed,
        threads,
    };
    experiments::run(&id, &ctx);
    eprintln!(
        "[repro {id}] done in {:.1}s",
        started.elapsed().as_secs_f64()
    );
}
