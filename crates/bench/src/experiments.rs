//! One function per table/figure of the paper's evaluation section, plus
//! the DESIGN.md §5 ablations.
//!
//! Heavy artifacts share runs: Table 1, Table 2 and Figs. 2–4 all derive
//! from [`core_matrix`] (strategy × dataset on the 100-client cluster);
//! `repro all` therefore computes that matrix once.

use crate::harness::{run_jobs, Job, JobResult, Scale};
use crate::report::{fmt_mb, fmt_tta, out_dir, slug, write_fault_log, write_trace, TextReport};
use fedat_compress::codec::CodecKind;
use fedat_core::config::{ExperimentConfig, StrategyKind};
use fedat_data::federated::FederatedDataset;
use fedat_data::leaf::{writer, LeafBenchmark};
use fedat_data::partition::Partitioner;
use fedat_data::suite::{self, FedTask};
use fedat_data::synth::{synth_features, FeatureSynthSpec};
use fedat_nn::models::ModelSpec;
use fedat_sim::fleet::ClusterConfig;
use fedat_tensor::rng::{rng_for, tags};
use std::path::PathBuf;
use std::sync::Arc;

/// Shared experiment context.
pub struct Ctx {
    /// Full or quick scale.
    pub scale: Scale,
    /// Output directory root (usually `results/`).
    pub out: PathBuf,
    /// Master seed.
    pub seed: u64,
    /// Worker threads (0 = auto).
    pub threads: usize,
}

/// Smoothing window used by the paper's figures ("average-smoothed for
/// every 40 global rounds"; our eval cadence is every 5 rounds, so 8 points
/// ≈ 40 rounds).
const SMOOTH_WINDOW: usize = 8;

/// Round budgets for the medium-cluster matrix. Calibrated so every method
/// fills (roughly) the same virtual-time horizon: a synchronous round takes
/// ~30 s (compute + worst sampled delay), a FedAT tier round ~10–35 s
/// depending on the tier, so FedAT earns proportionally more global updates
/// within the shared `max_time` — exactly the effect the paper measures.
fn sync_rounds(scale: Scale) -> u64 {
    scale.rounds(150)
}
fn fedat_rounds(scale: Scale) -> u64 {
    scale.rounds(1000)
}

/// Shared virtual-time horizon (seconds) for the medium-cluster matrix.
const MATRIX_HORIZON: f64 = 4500.0;

impl Ctx {
    fn medium_cluster(&self) -> ClusterConfig {
        ClusterConfig::paper_medium(self.seed).with_clients(self.scale.medium_clients())
    }

    fn large_cluster(&self) -> ClusterConfig {
        let mut c = ClusterConfig::paper_large(self.seed).with_clients(self.scale.large_clients());
        c.n_unstable = c.n_unstable.min(c.n_clients / 10);
        c
    }

    fn cfg(&self, strategy: StrategyKind) -> ExperimentConfig {
        let rounds = match strategy {
            StrategyKind::FedAt => fedat_rounds(self.scale),
            _ => sync_rounds(self.scale),
        };
        ExperimentConfig::builder()
            .strategy(strategy)
            .rounds(rounds)
            .max_time(MATRIX_HORIZON)
            .eval_every(5)
            .seed(self.seed)
            .cluster(self.medium_cluster())
            .build()
    }

    fn job(&self, task: &Arc<FedTask>, cfg: ExperimentConfig) -> Job {
        Job {
            label: format!("{} @ {}", cfg.strategy.name(), task.name),
            task: task.clone(),
            cfg,
        }
    }
}

/// The large-cohort server-path scenario: `n_clients` (500 at full scale —
/// the paper's AWS-style cohort size) Dirichlet-skewed feature clients
/// under a wide two-layer MLP (~33 k weights).
///
/// This cohort is sized so the *server* dominates: every tier arrival
/// re-aggregates hundreds of ~33 k-weight updates and the evaluation
/// cadence sweeps thousands of test rows, which is exactly the load the
/// sharded aggregation kernel and the pooled streaming evaluator target.
/// `bench_aggregate` (→ `BENCH_aggregate.json`) and the `large_cohort`
/// example both build their federation here.
pub fn large_cohort_task(n_clients: usize, seed: u64) -> FedTask {
    let mut rng = rng_for(seed.wrapping_add(7), tags::DATA);
    let spec = FeatureSynthSpec {
        features: 64,
        classes: 62,
        separation: 0.8,
        noise: 1.0,
    };
    let pool = synth_features(&mut rng, &spec, n_clients * 40);
    let parts = Partitioner::Dirichlet { alpha: 0.3 }.partition(&pool, n_clients, &mut rng);
    let fed = FederatedDataset::from_partitions(parts, seed.wrapping_add(7));
    FedTask {
        name: format!("large-cohort({n_clients})"),
        fed,
        model: ModelSpec::Mlp {
            input: 64,
            hidden: vec![128, 128],
            classes: 62,
        },
        target_accuracy: 0.5,
    }
}

/// The five Table 1 strategies in paper order.
fn table1_strategies() -> [StrategyKind; 5] {
    [
        StrategyKind::TiFL,
        StrategyKind::FedAvg,
        StrategyKind::FedProx,
        StrategyKind::FedAsync,
        StrategyKind::FedAt,
    ]
}

/// The medium-cluster datasets of Table 1 / Figs. 2–4.
fn matrix_tasks(ctx: &Ctx) -> Vec<Arc<FedTask>> {
    let n = ctx.scale.medium_clients();
    vec![
        Arc::new(suite::cifar10_like(n, 2, ctx.seed)),
        Arc::new(suite::cifar10_like(n, 4, ctx.seed)),
        Arc::new(suite::cifar10_like(n, 6, ctx.seed)),
        Arc::new(suite::cifar10_like(n, 8, ctx.seed)),
        Arc::new(suite::cifar10_like(n, 0, ctx.seed)),
        Arc::new(suite::fmnist_like(n, 2, ctx.seed)),
        Arc::new(suite::sent140_like(n, ctx.seed)),
    ]
}

/// Runs the strategy×dataset matrix behind Table 1/2 and Figs. 2–4.
pub fn core_matrix(ctx: &Ctx) -> Vec<JobResult> {
    let tasks = matrix_tasks(ctx);
    let mut jobs = Vec::new();
    for task in &tasks {
        for strategy in table1_strategies() {
            jobs.push(ctx.job(task, ctx.cfg(strategy)));
        }
    }
    run_jobs(jobs, ctx.threads)
}

/// Table 1: best accuracy + accuracy variance per dataset and strategy.
pub fn table1(ctx: &Ctx, matrix: &[JobResult]) {
    let dir = out_dir(&ctx.out, "table1");
    let mut rep = TextReport::new("Table 1 — prediction performance and variance");
    rep.line(format!(
        "{:<22} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "dataset", "TiFL", "FedAvg", "FedProx", "FedAsync", "FedAT"
    ));
    let mut csv = String::from("dataset,strategy,best_accuracy,accuracy_variance,norm_variance\n");
    let datasets: Vec<String> = dedup_keep_order(matrix.iter().map(|r| r.task_name.clone()));
    for ds in &datasets {
        let row: Vec<&JobResult> = matrix.iter().filter(|r| &r.task_name == ds).collect();
        let fedat_var = row
            .iter()
            .find(|r| r.strategy == "FedAT")
            .map(|r| r.outcome.accuracy_variance.max(1e-9))
            .unwrap_or(1.0);
        let cell = |name: &str| -> String {
            row.iter()
                .find(|r| r.strategy == name)
                .map(|r| format!("{:.3}", r.outcome.best_accuracy()))
                .unwrap_or_else(|| "—".into())
        };
        rep.line(format!(
            "{:<22} {:>9} {:>9} {:>9} {:>9} {:>9}  (acc)",
            ds,
            cell("TiFL"),
            cell("FedAvg"),
            cell("FedProx"),
            cell("FedAsync"),
            cell("FedAT"),
        ));
        let var_cell = |name: &str| -> String {
            row.iter()
                .find(|r| r.strategy == name)
                .map(|r| format!("{:.2}", r.outcome.accuracy_variance / fedat_var))
                .unwrap_or_else(|| "—".into())
        };
        rep.line(format!(
            "{:<22} {:>9} {:>9} {:>9} {:>9} {:>9}  (norm.var)",
            "",
            var_cell("TiFL"),
            var_cell("FedAvg"),
            var_cell("FedProx"),
            var_cell("FedAsync"),
            var_cell("FedAT"),
        ));
        for r in &row {
            csv.push_str(&format!(
                "{},{},{:.4},{:.6},{:.3}\n",
                ds,
                r.strategy,
                r.outcome.best_accuracy(),
                r.outcome.accuracy_variance,
                r.outcome.accuracy_variance / fedat_var
            ));
        }
    }
    std::fs::create_dir_all(&dir).ok();
    std::fs::write(dir.join("table1.csv"), csv).ok();
    rep.emit(&dir, "table1").ok();
}

/// Table 2: MB transferred (up + down) to reach the target accuracy on the
/// 2-class non-IID datasets.
pub fn table2(ctx: &Ctx, matrix: &[JobResult]) {
    let dir = out_dir(&ctx.out, "table2");
    let mut rep =
        TextReport::new("Table 2 — MB transferred to reach target accuracy (2-class non-IID)");
    let mut csv = String::from("dataset,strategy,target,mb_to_target\n");
    let wanted = ["cifar10-like(#2)", "fmnist-like(#2)", "sent140-like"];
    rep.line(format!(
        "{:<10} {:>22} {:>18} {:>14}",
        "method", "cifar10-like(#2)", "fmnist-like(#2)", "sent140-like"
    ));
    for strategy in ["FedAvg", "TiFL", "FedProx", "FedAsync", "FedAT"] {
        let mut cells = Vec::new();
        for ds in wanted {
            let r = matrix
                .iter()
                .find(|r| r.task_name == ds && r.strategy == strategy);
            let cell = match r {
                Some(r) => {
                    let b = r.outcome.trace.bytes_to_accuracy(r.target_accuracy);
                    csv.push_str(&format!(
                        "{},{},{},{}\n",
                        ds,
                        strategy,
                        r.target_accuracy,
                        b.map(|x| x.to_string()).unwrap_or_else(|| "-".into())
                    ));
                    fmt_mb(b)
                }
                None => "—".into(),
            };
            cells.push(cell);
        }
        rep.line(format!(
            "{:<10} {:>22} {:>18} {:>14}",
            strategy, cells[0], cells[1], cells[2]
        ));
    }
    std::fs::create_dir_all(&dir).ok();
    std::fs::write(dir.join("table2.csv"), csv).ok();
    rep.emit(&dir, "table2").ok();
}

/// Fig. 2: accuracy-over-time curves + time-to-target bars for the three
/// 2-class non-IID datasets.
pub fn fig2(ctx: &Ctx, matrix: &[JobResult]) {
    let dir = out_dir(&ctx.out, "fig2");
    let mut rep = TextReport::new("Fig. 2 — convergence timelines and time-to-target");
    for ds in ["cifar10-like(#2)", "fmnist-like(#2)", "sent140-like"] {
        rep.line(format!("[{ds}]"));
        for r in matrix.iter().filter(|r| r.task_name == ds) {
            write_trace(&dir, &slug(&r.label), &r.outcome.trace, SMOOTH_WINDOW).ok();
            rep.line(format!(
                "  {:<9} best {:.3}  time→{:.2}: {}",
                r.strategy,
                r.outcome.best_accuracy(),
                r.target_accuracy,
                fmt_tta(r.outcome.trace.time_to_accuracy(r.target_accuracy)),
            ));
        }
        rep.blank();
    }
    rep.emit(&dir, "fig2").ok();
}

/// Fig. 3: convergence vs non-IID level on CIFAR-10-like.
pub fn fig3(ctx: &Ctx, matrix: &[JobResult]) {
    let dir = out_dir(&ctx.out, "fig3");
    let mut rep = TextReport::new("Fig. 3 — CIFAR-10-like convergence across non-IID levels");
    for ds in [
        "cifar10-like(#4)",
        "cifar10-like(#6)",
        "cifar10-like(#8)",
        "cifar10-like(iid)",
    ] {
        rep.line(format!("[{ds}]"));
        for r in matrix.iter().filter(|r| r.task_name == ds) {
            write_trace(&dir, &slug(&r.label), &r.outcome.trace, SMOOTH_WINDOW).ok();
            rep.line(format!(
                "  {:<9} best {:.3}  final {:.3}",
                r.strategy,
                r.outcome.best_accuracy(),
                r.outcome.trace.final_accuracy()
            ));
        }
        rep.blank();
    }
    rep.emit(&dir, "fig3").ok();
}

/// Fig. 4: accuracy vs cumulative uploaded bytes (2-class non-IID).
pub fn fig4(ctx: &Ctx, matrix: &[JobResult]) {
    let dir = out_dir(&ctx.out, "fig4");
    let mut rep = TextReport::new("Fig. 4 — accuracy vs uploaded bytes (2-class non-IID)");
    for ds in ["cifar10-like(#2)", "fmnist-like(#2)", "sent140-like"] {
        rep.line(format!("[{ds}]"));
        for r in matrix.iter().filter(|r| r.task_name == ds) {
            // The trace CSV already carries up_bytes per point; the figure
            // is accuracy against that column.
            write_trace(&dir, &slug(&r.label), &r.outcome.trace, SMOOTH_WINDOW).ok();
            let up = r.outcome.trace.upload_bytes_to_accuracy(r.target_accuracy);
            rep.line(format!(
                "  {:<9} upload-MB→{:.2}: {}",
                r.strategy,
                r.target_accuracy,
                fmt_mb(up)
            ));
        }
        rep.blank();
    }
    rep.emit(&dir, "fig4").ok();
}

/// Fig. 5: FedAT compression-precision sweep on CIFAR-10-like 2-class.
pub fn fig5(ctx: &Ctx) {
    let dir = out_dir(&ctx.out, "fig5");
    let task = Arc::new(suite::cifar10_like(ctx.scale.medium_clients(), 2, ctx.seed));
    let variants: Vec<(String, Option<CodecKind>)> = vec![
        (
            "precision3".into(),
            Some(CodecKind::Polyline {
                precision: 3,
                delta: true,
            }),
        ),
        (
            "precision4".into(),
            Some(CodecKind::Polyline {
                precision: 4,
                delta: true,
            }),
        ),
        (
            "precision5".into(),
            Some(CodecKind::Polyline {
                precision: 5,
                delta: true,
            }),
        ),
        (
            "precision6".into(),
            Some(CodecKind::Polyline {
                precision: 6,
                delta: true,
            }),
        ),
        ("no-compression".into(), Some(CodecKind::None)),
    ];
    let jobs: Vec<Job> = variants
        .iter()
        .map(|(name, codec)| {
            let mut cfg = ctx.cfg(StrategyKind::FedAt);
            if let Some(k) = codec {
                cfg.codec = Some(*k);
            }
            Job {
                label: format!("FedAT-{name}"),
                task: task.clone(),
                cfg,
            }
        })
        .collect();
    let results = run_jobs(jobs, ctx.threads);
    let mut rep =
        TextReport::new("Fig. 5 — accuracy vs compression precision (FedAT, CIFAR-10-like #2)");
    let mut csv = String::from("variant,best_accuracy,up_mb_total,up_mb_to_target\n");
    for r in &results {
        write_trace(&dir, &slug(&r.label), &r.outcome.trace, SMOOTH_WINDOW).ok();
        let up_total = r
            .outcome
            .trace
            .points
            .last()
            .map(|p| p.up_bytes)
            .unwrap_or(0);
        let up_t = r.outcome.trace.upload_bytes_to_accuracy(r.target_accuracy);
        rep.line(format!(
            "  {:<22} best {:.3}  upload total {:.1} MB  upload→{:.2}: {}",
            r.label,
            r.outcome.best_accuracy(),
            up_total as f64 / 1e6,
            r.target_accuracy,
            fmt_mb(up_t)
        ));
        csv.push_str(&format!(
            "{},{:.4},{:.2},{}\n",
            r.label,
            r.outcome.best_accuracy(),
            up_total as f64 / 1e6,
            up_t.map(|b| format!("{:.2}", b as f64 / 1e6))
                .unwrap_or_else(|| "-".into())
        ));
    }
    std::fs::create_dir_all(&dir).ok();
    std::fs::write(dir.join("fig5.csv"), csv).ok();
    rep.emit(&dir, "fig5").ok();
}

/// Fig. 6: weighted vs uniform cross-tier aggregation.
pub fn fig6(ctx: &Ctx) {
    let dir = out_dir(&ctx.out, "fig6");
    let n = ctx.scale.medium_clients();
    let tasks = vec![
        Arc::new(suite::cifar10_like(n, 2, ctx.seed)),
        Arc::new(suite::fmnist_like(n, 2, ctx.seed)),
        Arc::new(suite::sent140_like(n, ctx.seed)),
    ];
    let mut jobs = Vec::new();
    for task in &tasks {
        for uniform in [false, true] {
            let mut cfg = ctx.cfg(StrategyKind::FedAt);
            cfg.uniform_tier_weights = uniform;
            jobs.push(Job {
                label: format!(
                    "{} @ {}",
                    if uniform { "Uniform" } else { "Weighted" },
                    task.name
                ),
                task: task.clone(),
                cfg,
            });
        }
    }
    let results = run_jobs(jobs, ctx.threads);
    let mut rep = TextReport::new("Fig. 6 — weighted vs uniform cross-tier aggregation (FedAT)");
    let mut csv = String::from("dataset,aggregation,best_accuracy\n");
    for pair in results.chunks(2) {
        let (w, u) = (&pair[0], &pair[1]);
        rep.line(format!(
            "  {:<22} weighted {:.3}  uniform {:.3}  (Δ {:+.3})",
            w.task_name,
            w.outcome.best_accuracy(),
            u.outcome.best_accuracy(),
            w.outcome.best_accuracy() - u.outcome.best_accuracy()
        ));
        csv.push_str(&format!(
            "{},weighted,{:.4}\n",
            w.task_name,
            w.outcome.best_accuracy()
        ));
        csv.push_str(&format!(
            "{},uniform,{:.4}\n",
            u.task_name,
            u.outcome.best_accuracy()
        ));
    }
    std::fs::create_dir_all(&dir).ok();
    std::fs::write(dir.join("fig6.csv"), csv).ok();
    rep.emit(&dir, "fig6").ok();
}

/// Fig. 7: FEMNIST-like at large scale, all six methods (adds ASO-Fed).
pub fn fig7(ctx: &Ctx) {
    let dir = out_dir(&ctx.out, "fig7");
    let task = Arc::new(suite::femnist_like(ctx.scale.large_clients(), ctx.seed));
    let mut jobs = Vec::new();
    for strategy in StrategyKind::all() {
        // At 500 clients a fully-async method performs hundreds of single-
        // client updates per virtual minute; its budget is capped lower so
        // the simulated compute stays tractable (the paper's async curves
        // plateau early regardless).
        let rounds = match strategy {
            StrategyKind::FedAt => ctx.scale.rounds(500),
            StrategyKind::FedAsync | StrategyKind::AsoFed => ctx.scale.rounds(64),
            _ => ctx.scale.rounds(200),
        };
        let cfg = ExperimentConfig::builder()
            .strategy(strategy)
            .rounds(rounds)
            .max_time(6000.0)
            .eval_every(5)
            .seed(ctx.seed)
            .cluster(ctx.large_cluster())
            .build();
        jobs.push(ctx.job(&task, cfg));
    }
    let results = run_jobs(jobs, ctx.threads);
    let mut rep = TextReport::new("Fig. 7 — FEMNIST-like, 500 clients, accuracy vs time and bytes");
    for r in &results {
        write_trace(&dir, &slug(&r.label), &r.outcome.trace, SMOOTH_WINDOW).ok();
        let up_total = r
            .outcome
            .trace
            .points
            .last()
            .map(|p| p.up_bytes)
            .unwrap_or(0);
        rep.line(format!(
            "  {:<9} best {:.3}  t→{:.2}: {:>8}  upload {:.1} MB",
            r.strategy,
            r.outcome.best_accuracy(),
            r.target_accuracy,
            fmt_tta(r.outcome.trace.time_to_accuracy(r.target_accuracy)),
            up_total as f64 / 1e6
        ));
    }
    rep.emit(&dir, "fig7").ok();
}

/// Fig. 8: Reddit-like LSTM, accuracy and loss over time
/// (FedAT / TiFL / FedProx).
pub fn fig8(ctx: &Ctx) {
    let dir = out_dir(&ctx.out, "fig8");
    let task = Arc::new(suite::reddit_like(ctx.scale.large_clients(), ctx.seed));
    let mut jobs = Vec::new();
    for strategy in [
        StrategyKind::FedAt,
        StrategyKind::TiFL,
        StrategyKind::FedProx,
    ] {
        // FedAT tier updates are ~3–4× faster than full rounds; budgets are
        // set so both fill the same 4000 s horizon (DESIGN.md §6).
        let rounds = match strategy {
            StrategyKind::FedAt => ctx.scale.rounds(1400),
            _ => ctx.scale.rounds(160),
        };
        let cfg = ExperimentConfig::builder()
            .strategy(strategy)
            .rounds(rounds)
            .max_time(4000.0)
            .eval_every(5)
            .seed(ctx.seed)
            .cluster(ctx.large_cluster())
            .build();
        jobs.push(ctx.job(&task, cfg));
    }
    let results = run_jobs(jobs, ctx.threads);
    let mut rep = TextReport::new("Fig. 8 — Reddit-like LSTM: accuracy and loss over time");
    for r in &results {
        write_trace(&dir, &slug(&r.label), &r.outcome.trace, SMOOTH_WINDOW).ok();
        let final_loss = r
            .outcome
            .trace
            .points
            .last()
            .map(|p| p.loss)
            .unwrap_or(f32::NAN);
        rep.line(format!(
            "  {:<9} best acc {:.3}  final loss {:.3}",
            r.strategy,
            r.outcome.best_accuracy(),
            final_loss
        ));
    }
    rep.emit(&dir, "fig8").ok();
}

/// Fig. 9: client-participation sweep (clients per round) on CIFAR-10-like
/// #2 and Sentiment140-like, for the four synchronous-flavoured methods.
pub fn fig9(ctx: &Ctx) {
    let dir = out_dir(&ctx.out, "fig9");
    let n = ctx.scale.medium_clients();
    let tasks = vec![
        Arc::new(suite::cifar10_like(n, 2, ctx.seed)),
        Arc::new(suite::sent140_like(n, ctx.seed)),
    ];
    let parts = [2usize, 5, 10, 15];
    let strategies = [
        StrategyKind::FedAt,
        StrategyKind::TiFL,
        StrategyKind::FedAvg,
        StrategyKind::FedProx,
    ];
    let mut jobs = Vec::new();
    for task in &tasks {
        for &k in &parts {
            for strategy in strategies {
                let mut cfg = ctx.cfg(strategy);
                cfg.clients_per_round = k;
                jobs.push(Job {
                    label: format!("{} k={k} @ {}", strategy.name(), task.name),
                    task: task.clone(),
                    cfg,
                });
            }
        }
    }
    let results = run_jobs(jobs, ctx.threads);
    let mut rep = TextReport::new("Fig. 9 — accuracy vs clients per round");
    let mut csv = String::from("dataset,clients_per_round,strategy,best_accuracy\n");
    for r in &results {
        csv.push_str(&format!(
            "{},{},{},{:.4}\n",
            r.task_name,
            r.label
                .split("k=")
                .nth(1)
                .and_then(|s| s.split(' ').next())
                .unwrap_or("?"),
            r.strategy,
            r.outcome.best_accuracy()
        ));
    }
    for task in &tasks {
        rep.line(format!("[{}]", task.name));
        for &k in &parts {
            let row: Vec<String> = strategies
                .iter()
                .map(|s| {
                    results
                        .iter()
                        .find(|r| {
                            r.task_name == task.name
                                && r.strategy == s.name()
                                && r.label.contains(&format!("k={k} "))
                        })
                        .map(|r| format!("{}={:.3}", s.name(), r.outcome.best_accuracy()))
                        .unwrap_or_default()
                })
                .collect();
            rep.line(format!("  k={k:<3} {}", row.join("  ")));
        }
        rep.blank();
    }
    std::fs::create_dir_all(&dir).ok();
    std::fs::write(dir.join("fig9.csv"), csv).ok();
    rep.emit(&dir, "fig9").ok();
}

/// Fig. 10: tier-size distributions (Uniform/Slow/Medium/Fast) on the
/// large FEMNIST-like cluster, FedAT only.
pub fn fig10(ctx: &Ctx) {
    let dir = out_dir(&ctx.out, "fig10");
    let n = ctx.scale.large_clients();
    let task = Arc::new(suite::femnist_like(n, ctx.seed));
    // Scale the paper's 500-client distributions to n.
    let dist = |fracs: [usize; 5]| -> Vec<usize> {
        let total: usize = fracs.iter().sum();
        let mut sizes: Vec<usize> = fracs.iter().map(|f| f * n / total).collect();
        let mut diff = n as isize - sizes.iter().sum::<usize>() as isize;
        let mut i = 0usize;
        while diff > 0 {
            sizes[i % 5] += 1;
            diff -= 1;
            i += 1;
        }
        sizes
    };
    let configs = vec![
        ("Uniform", dist([100, 100, 100, 100, 100])),
        ("Slow", dist([50, 50, 100, 100, 200])),
        ("Medium", dist([50, 100, 200, 100, 50])),
        ("Fast", dist([200, 100, 100, 50, 50])),
    ];
    let mut jobs = Vec::new();
    for (name, sizes) in &configs {
        let cluster = ctx.large_cluster().with_part_sizes(sizes.clone());
        let cfg = ExperimentConfig::builder()
            .strategy(StrategyKind::FedAt)
            .rounds(ctx.scale.rounds(500))
            .max_time(6000.0)
            .eval_every(5)
            .seed(ctx.seed)
            .cluster(cluster)
            .build();
        jobs.push(Job {
            label: format!("FedAT-{name}"),
            task: task.clone(),
            cfg,
        });
    }
    let results = run_jobs(jobs, ctx.threads);
    let mut rep =
        TextReport::new("Fig. 10 — FedAT under different tier-size distributions (FEMNIST-like)");
    for r in &results {
        write_trace(&dir, &slug(&r.label), &r.outcome.trace, SMOOTH_WINDOW).ok();
        rep.line(format!(
            "  {:<15} best {:.3}  t→{:.2}: {}",
            r.label,
            r.outcome.best_accuracy(),
            r.target_accuracy,
            fmt_tta(r.outcome.trace.time_to_accuracy(r.target_accuracy))
        ));
    }
    rep.emit(&dir, "fig10").ok();
}

/// The LEAF-format scenario: the Table-1 strategies on a **disk-loaded**
/// LEAF directory under the natural per-user partition.
///
/// Point `FEDAT_LEAF_DIR` at a real (or writer-generated) LEAF directory
/// and optionally `FEDAT_LEAF_BENCH` at `femnist`/`sent140`/`reddit`
/// (default `femnist`). Without the env var, a FEMNIST-shaped fixture is
/// generated via [`fedat_data::leaf::writer`] under the output directory
/// and loaded back from disk, so the measured path is always the loader.
pub fn leaf(ctx: &Ctx) {
    let dir = out_dir(&ctx.out, "leaf");
    let (task, source) = match std::env::var_os("FEDAT_LEAF_DIR") {
        Some(d) => {
            let bench = match std::env::var("FEDAT_LEAF_BENCH").as_deref() {
                Ok("sent140") => LeafBenchmark::sent140(),
                Ok("reddit") => LeafBenchmark::reddit(),
                Ok("femnist") | Err(_) => LeafBenchmark::femnist(),
                Ok(other) => {
                    panic!("FEDAT_LEAF_BENCH must be femnist|sent140|reddit, got `{other}`")
                }
            };
            let path = PathBuf::from(d);
            let task = FedTask::from_leaf_dir(&path, bench, ctx.seed)
                .unwrap_or_else(|e| panic!("loading LEAF directory {}: {e}", path.display()));
            (task, path.display().to_string())
        }
        None => {
            let fixture = dir.join("fixture");
            let (clients, per_client) = match ctx.scale {
                Scale::Full => (50, 40),
                Scale::Quick => (10, 16),
            };
            writer::write_femnist_fixture(&fixture, clients, per_client, ctx.seed)
                .expect("writing the LEAF fixture");
            let task = FedTask::from_leaf_dir(&fixture, LeafBenchmark::femnist(), ctx.seed)
                .expect("parsing the fixture the writer just emitted");
            (task, format!("generated fixture @ {}", fixture.display()))
        }
    };
    let task = Arc::new(task);
    let n = task.fed.num_clients();
    let mut cluster = ClusterConfig::paper_medium(ctx.seed).with_clients(n);
    cluster.n_unstable = cluster.n_unstable.min(n / 10);
    let mut jobs = Vec::new();
    for strategy in table1_strategies() {
        let rounds = match strategy {
            StrategyKind::FedAt => fedat_rounds(ctx.scale),
            _ => sync_rounds(ctx.scale),
        };
        let cfg = ExperimentConfig::builder()
            .strategy(strategy)
            .rounds(rounds)
            .max_time(MATRIX_HORIZON)
            .eval_every(5)
            .seed(ctx.seed)
            .cluster(cluster.clone())
            .build();
        jobs.push(ctx.job(&task, cfg));
    }
    let results = run_jobs(jobs, ctx.threads);
    let mut rep = TextReport::new("LEAF — disk-loaded natural partition, Table-1 strategies");
    rep.line(format!("source: {source}"));
    let sizes = task.fed.client_sizes();
    rep.line(format!(
        "task: {} — {} clients, sizes {}..{}, {} classes, {} features",
        task.name,
        n,
        sizes.iter().min().unwrap_or(&0),
        sizes.iter().max().unwrap_or(&0),
        task.fed.classes,
        task.fed.features
    ));
    let mut csv = String::from("strategy,best_accuracy,accuracy_variance,time_to_target\n");
    for r in &results {
        write_trace(&dir, &slug(&r.label), &r.outcome.trace, SMOOTH_WINDOW).ok();
        let tta = r.outcome.trace.time_to_accuracy(r.target_accuracy);
        rep.line(format!(
            "  {:<9} best {:.3}  variance {:.5}  t→{:.2}: {}",
            r.strategy,
            r.outcome.best_accuracy(),
            r.outcome.accuracy_variance,
            r.target_accuracy,
            fmt_tta(tta),
        ));
        csv.push_str(&format!(
            "{},{:.4},{:.6},{}\n",
            r.strategy,
            r.outcome.best_accuracy(),
            r.outcome.accuracy_variance,
            tta.map(|t| format!("{t:.1}")).unwrap_or_else(|| "-".into())
        ));
    }
    std::fs::create_dir_all(&dir).ok();
    std::fs::write(dir.join("leaf.csv"), csv).ok();
    rep.emit(&dir, "leaf").ok();
}

/// Ablation: FedAT vs TiFL under mis-tiering (DESIGN.md §5.4).
pub fn ablate_mistier(ctx: &Ctx) {
    let dir = out_dir(&ctx.out, "ablate-mistier");
    let task = Arc::new(suite::cifar10_like(ctx.scale.medium_clients(), 2, ctx.seed));
    let mut jobs = Vec::new();
    for strategy in [StrategyKind::FedAt, StrategyKind::TiFL] {
        for frac in [0.0, 0.3] {
            let mut cfg = ctx.cfg(strategy);
            cfg.mistier_fraction = frac;
            jobs.push(Job {
                label: format!("{} mistier={frac}", strategy.name()),
                task: task.clone(),
                cfg,
            });
        }
    }
    let results = run_jobs(jobs, ctx.threads);
    let mut rep =
        TextReport::new("Ablation — tolerance to mis-tiering (30% of clients mis-assigned)");
    for pair in results.chunks(2) {
        let (clean, noisy) = (&pair[0], &pair[1]);
        rep.line(format!(
            "  {:<9} clean {:.3} → mis-tiered {:.3}  (drop {:+.3})",
            clean.strategy,
            clean.outcome.best_accuracy(),
            noisy.outcome.best_accuracy(),
            noisy.outcome.best_accuracy() - clean.outcome.best_accuracy()
        ));
    }
    rep.emit(&dir, "ablate_mistier").ok();
}

/// Ablation: the proximal coefficient λ (paper fixes 0.4).
pub fn ablate_lambda(ctx: &Ctx) {
    let dir = out_dir(&ctx.out, "ablate-lambda");
    let task = Arc::new(suite::cifar10_like(ctx.scale.medium_clients(), 2, ctx.seed));
    let jobs: Vec<Job> = [0.0f32, 0.1, 0.4, 1.0]
        .into_iter()
        .map(|lambda| {
            let mut cfg = ctx.cfg(StrategyKind::FedAt);
            cfg.lambda = lambda;
            Job {
                label: format!("FedAT λ={lambda}"),
                task: task.clone(),
                cfg,
            }
        })
        .collect();
    let results = run_jobs(jobs, ctx.threads);
    let mut rep = TextReport::new("Ablation — local constraint λ (FedAT, CIFAR-10-like #2)");
    for r in &results {
        rep.line(format!(
            "  {:<12} best {:.3}  variance {:.5}",
            r.label,
            r.outcome.best_accuracy(),
            r.outcome.accuracy_variance
        ));
    }
    rep.emit(&dir, "ablate_lambda").ok();
}

/// Ablation: delta vs absolute polyline coding (DESIGN.md §5.2).
pub fn ablate_delta(ctx: &Ctx) {
    let dir = out_dir(&ctx.out, "ablate-delta");
    let task = Arc::new(suite::cifar10_like(ctx.scale.medium_clients(), 2, ctx.seed));
    let jobs: Vec<Job> = [true, false]
        .into_iter()
        .map(|delta| {
            let mut cfg = ctx.cfg(StrategyKind::FedAt);
            cfg.codec = Some(CodecKind::Polyline {
                precision: 4,
                delta,
            });
            Job {
                label: format!(
                    "FedAT polyline-{}",
                    if delta { "delta" } else { "absolute" }
                ),
                task: task.clone(),
                cfg,
            }
        })
        .collect();
    let results = run_jobs(jobs, ctx.threads);
    let mut rep = TextReport::new("Ablation — delta vs absolute polyline coding (FedAT)");
    for r in &results {
        let up = r
            .outcome
            .trace
            .points
            .last()
            .map(|p| p.up_bytes)
            .unwrap_or(0);
        rep.line(format!(
            "  {:<26} best {:.3}  upload {:.1} MB",
            r.label,
            r.outcome.best_accuracy(),
            up as f64 / 1e6
        ));
    }
    rep.emit(&dir, "ablate_delta").ok();
}

/// Robustness rows: FedAT under availability churn and compute drift, with
/// the server-side fault layer off (static), timeouts-only, and timeouts
/// plus dynamic re-tiering. Quantifies the two ISSUE acceptance claims:
/// dynamic re-tiering recovers time-to-accuracy under drift, and timeouts
/// keep every tier moving through a 30% correlated storm.
pub fn churn(ctx: &Ctx) {
    use fedat_core::config::{FaultPolicy, RetierPolicy};
    use fedat_sim::churn::{ChurnConfig, DriftSpec, FlapSpec, StormSpec};

    let dir = out_dir(&ctx.out, "churn");
    let n = ctx.scale.medium_clients();
    let task = Arc::new(suite::sent140_like(n, ctx.seed));
    let scenario = ChurnConfig {
        flaps: Some(FlapSpec {
            fraction: 0.25,
            mean_up: 300.0,
            mean_down: 60.0,
            horizon: 4000.0,
        }),
        storms: Some(StormSpec {
            count: 2,
            cohort_fraction: 0.3,
            duration: 150.0,
            horizon: 1500.0,
        }),
        drift: Some(DriftSpec {
            fraction: 0.5,
            per_round: 0.3,
            max_factor: 10.0,
        }),
        ..ChurnConfig::default()
    };
    let timeouts_only = FaultPolicy {
        deadline_multiplier: Some(3.0),
        max_retries: 2,
        backoff: 1.5,
        quorum: 0.9,
        retier: None,
    };
    let dynamic = FaultPolicy {
        retier: Some(RetierPolicy {
            alpha: 0.3,
            check_every: 10,
            drift_threshold: 0.05,
        }),
        ..timeouts_only
    };
    let variants = [
        ("static", FaultPolicy::default()),
        ("timeouts", timeouts_only),
        ("dynamic re-tier", dynamic),
    ];
    let jobs: Vec<Job> = variants
        .iter()
        .map(|(name, fault)| {
            let cluster = ClusterConfig::paper_medium(ctx.seed)
                .with_clients(n)
                .without_dropouts()
                .with_churn(scenario);
            let cfg = ExperimentConfig::builder()
                .strategy(StrategyKind::FedAt)
                // Generous at any scale: the shared horizon is the binding
                // stopping rule, so cadence differences show up as updates.
                .rounds(20_000)
                .clients_per_round(3)
                .local_epochs(1)
                .eval_every(10)
                .max_time(8_000.0)
                .seed(ctx.seed)
                .cluster(cluster)
                .fault(*fault)
                .build();
            Job {
                label: format!("FedAT {name}"),
                task: task.clone(),
                cfg,
            }
        })
        .collect();
    let results = run_jobs(jobs, ctx.threads);
    let mut rep = TextReport::new(
        "Robustness — FedAT under flaps + 30% storms + 10x compute drift (8000 s horizon)",
    );
    let mut csv = String::from(
        "variant,best_accuracy,time_to_target,global_updates,timeouts,retries,quorum_rounds,retier_events\n",
    );
    for r in &results {
        write_trace(&dir, &slug(&r.label), &r.outcome.trace, SMOOTH_WINDOW).ok();
        write_fault_log(&dir, &slug(&r.label), &r.outcome.faults).ok();
        let tta = r.outcome.trace.time_to_accuracy(r.target_accuracy);
        let fc = r.outcome.fault_counters;
        let tiers = r.outcome.tier_updates.clone().unwrap_or_default();
        rep.line(format!(
            "  {:<16} best {:.3}  t→{:.2}: {}  updates {}  tiers {:?}",
            r.label,
            r.outcome.best_accuracy(),
            r.target_accuracy,
            fmt_tta(tta),
            r.outcome.global_updates,
            tiers,
        ));
        rep.line(format!(
            "  {:<16} timeouts {}  retries {}  quorum-skips {}  re-tiers {}  fault rows {}",
            "",
            fc.timeouts,
            fc.retries,
            fc.quorum_rounds,
            fc.retier_events,
            r.outcome.faults.events().len(),
        ));
        csv.push_str(&format!(
            "{},{:.4},{},{},{},{},{},{}\n",
            slug(&r.label),
            r.outcome.best_accuracy(),
            tta.map(|t| format!("{t:.1}")).unwrap_or_else(|| "-".into()),
            r.outcome.global_updates,
            fc.timeouts,
            fc.retries,
            fc.quorum_rounds,
            fc.retier_events,
        ));
    }
    rep.blank();
    rep.line("  (see docs/ROBUSTNESS.md for the fault model; BENCH_churn.json for the smoke run)");
    std::fs::create_dir_all(&dir).ok();
    std::fs::write(dir.join("churn.csv"), csv).ok();
    rep.emit(&dir, "churn").ok();
}

/// Robustness rows: FedAT under corrupted client uplinks (30% of clients
/// uploading 5×-scaled models half the time), with the guard layer off,
/// norm-screen clipping, and clipping plus quarantine + coordinate-median
/// aggregation. The per-variant fault logs land next to the traces for
/// forensics; `BENCH_robust.json` holds the FedAvg posture × fraction
/// curve and the bit-identity sweep.
pub fn corrupt(ctx: &Ctx) {
    use fedat_core::aggregate::AggRule;
    use fedat_core::config::{GuardPolicy, NormScreen};
    use fedat_sim::churn::{ChurnConfig, CorruptMode, CorruptSpec};

    let dir = out_dir(&ctx.out, "corrupt");
    let n = ctx.scale.medium_clients();
    let task = Arc::new(suite::sent140_like(n, ctx.seed));
    let scenario = ChurnConfig {
        corrupt: Some(CorruptSpec {
            fraction: 0.3,
            probability: 0.5,
            mode: CorruptMode::Scale { factor: 5.0 },
        }),
        ..ChurnConfig::default()
    };
    let clip = GuardPolicy {
        finite_check: true,
        norm_screen: Some(NormScreen {
            alpha: 0.2,
            threshold: 2.0,
            clip: true,
        }),
        ..GuardPolicy::default()
    };
    let full = GuardPolicy {
        quarantine_after: Some(3),
        quarantine_secs: 600.0,
        agg_rule: AggRule::CoordinateMedian,
        norm_screen: Some(NormScreen {
            clip: false,
            ..clip.norm_screen.expect("clip screen set")
        }),
        ..clip
    };
    let variants = [
        ("undefended", GuardPolicy::default()),
        ("clip", clip),
        ("median+quarantine", full),
    ];
    let jobs: Vec<Job> = variants
        .iter()
        .map(|(name, guard)| {
            let cluster = ClusterConfig::paper_medium(ctx.seed)
                .with_clients(n)
                .without_dropouts()
                .with_churn(scenario);
            let cfg = ExperimentConfig::builder()
                .strategy(StrategyKind::FedAt)
                .rounds(20_000)
                .clients_per_round(5)
                .local_epochs(1)
                .eval_every(10)
                .max_time(8_000.0)
                .seed(ctx.seed)
                .cluster(cluster)
                .guard(*guard)
                .build();
            Job {
                label: format!("FedAT {name}"),
                task: task.clone(),
                cfg,
            }
        })
        .collect();
    let results = run_jobs(jobs, ctx.threads);
    let mut rep = TextReport::new(
        "Robustness — FedAT under 30% corrupted uplinks (scale-by-5, half of selections)",
    );
    let mut csv = String::from(
        "variant,best_accuracy,final_finite,global_updates,corrupt,rejects,clips,stale,quarantines\n",
    );
    for r in &results {
        write_trace(&dir, &slug(&r.label), &r.outcome.trace, SMOOTH_WINDOW).ok();
        write_fault_log(&dir, &slug(&r.label), &r.outcome.faults).ok();
        let fc = r.outcome.fault_counters;
        let finite = r.outcome.final_weights.iter().all(|w| w.is_finite());
        rep.line(format!(
            "  {:<24} best {:.3}  finite {}  updates {}",
            r.label,
            r.outcome.best_accuracy(),
            finite,
            r.outcome.global_updates,
        ));
        rep.line(format!(
            "  {:<24} corrupt {}  rejects {}  clips {}  stale {}  quarantines {}  fault rows {}",
            "",
            fc.corrupt,
            fc.rejects,
            fc.clips,
            fc.stale,
            fc.quarantines,
            r.outcome.faults.events().len(),
        ));
        csv.push_str(&format!(
            "{},{:.4},{},{},{},{},{},{},{}\n",
            slug(&r.label),
            r.outcome.best_accuracy(),
            finite,
            r.outcome.global_updates,
            fc.corrupt,
            fc.rejects,
            fc.clips,
            fc.stale,
            fc.quarantines,
        ));
    }
    rep.blank();
    rep.line("  (see docs/ROBUSTNESS.md §Corrupted updates; BENCH_robust.json for the curve)");
    std::fs::create_dir_all(&dir).ok();
    std::fs::write(dir.join("corrupt.csv"), csv).ok();
    rep.emit(&dir, "corrupt").ok();
}

fn dedup_keep_order<I: Iterator<Item = String>>(it: I) -> Vec<String> {
    let mut seen = Vec::new();
    for s in it {
        if !seen.contains(&s) {
            seen.push(s);
        }
    }
    seen
}

/// Runs one experiment by id; `all` shares the core matrix across the
/// artifacts that reuse it.
pub fn run(id: &str, ctx: &Ctx) {
    match id {
        "table1" => {
            let m = core_matrix(ctx);
            table1(ctx, &m);
        }
        "table2" => {
            let m = core_matrix(ctx);
            table2(ctx, &m);
        }
        "fig2" => {
            let m = core_matrix(ctx);
            fig2(ctx, &m);
        }
        "fig3" => {
            let m = core_matrix(ctx);
            fig3(ctx, &m);
        }
        "fig4" => {
            let m = core_matrix(ctx);
            fig4(ctx, &m);
        }
        "fig5" => fig5(ctx),
        "fig6" => fig6(ctx),
        "fig7" => fig7(ctx),
        "fig8" => fig8(ctx),
        "fig9" => fig9(ctx),
        "fig10" => fig10(ctx),
        "leaf" => leaf(ctx),
        "churn" => churn(ctx),
        "corrupt" => corrupt(ctx),
        "ablate-mistier" => ablate_mistier(ctx),
        "ablate-lambda" => ablate_lambda(ctx),
        "ablate-delta" => ablate_delta(ctx),
        "matrix" | "all" => {
            let m = core_matrix(ctx);
            table1(ctx, &m);
            table2(ctx, &m);
            fig2(ctx, &m);
            fig3(ctx, &m);
            fig4(ctx, &m);
            if id == "all" {
                fig5(ctx);
                fig6(ctx);
                fig7(ctx);
                fig8(ctx);
                fig9(ctx);
                fig10(ctx);
                churn(ctx);
                corrupt(ctx);
                ablate_mistier(ctx);
                ablate_lambda(ctx);
                ablate_delta(ctx);
            }
        }
        other => {
            eprintln!("unknown experiment id: {other}");
            eprintln!(
                "known: table1 table2 fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10 \
                 leaf churn corrupt ablate-mistier ablate-lambda ablate-delta matrix all"
            );
            std::process::exit(2);
        }
    }
}
