//! Concurrent experiment grids on the kernel pool.
//!
//! Runs many [`run_experiment_shared`] instances as concurrent pool *jobs*
//! — not dedicated OS threads — so whole-experiment parallelism and the
//! kernels' own fork-join parallelism share one scheduler instead of
//! oversubscribing the host. Each run resolves its own
//! [`fedat_core::exec::ExecCtx`] from its config at run start and installs
//! it as a per-thread overlay, so grid members with *different* execution
//! contexts (exec mode, SIMD kernel, thread budget) cannot cross-talk
//! through the process-global toggles: every run in the grid is
//! bit-identical to the same run executed serially, which `bench_grid`
//! asserts before timing anything.
//!
//! The submitting thread joins handles in submission order; an unstarted
//! job is stolen and run inline at its join (the pool's steal-on-join
//! contract), so a grid completes on any host — including zero-worker
//! single-core machines, where it degrades to exactly the serial loop it
//! replaced.

use crate::harness::{Job, JobResult};
use fedat_core::run_experiment_shared;
use fedat_tensor::pool;

/// Runs every job as a kernel-pool job and returns results in the original
/// job order. `workers` is a pool-size hint: > 1 grows the shared pool to
/// at least `workers - 1` helper threads (the joining thread is the extra
/// worker); 0 or 1 leaves the pool at its ambient size.
pub fn run_grid(jobs: Vec<Job>, workers: usize) -> Vec<JobResult> {
    if workers > 1 {
        pool::ensure_workers(workers - 1);
    }
    let handles: Vec<pool::JobHandle<JobResult>> = jobs
        .into_iter()
        .map(|job| {
            pool::submit(move || {
                // Jobs share one task Arc per dataset — no corpus clone per
                // run. The run resolves its ExecCtx from its own config.
                let outcome = run_experiment_shared(&job.task, &job.cfg);
                JobResult {
                    label: job.label,
                    task_name: job.task.name.clone(),
                    strategy: job.cfg.strategy.name(),
                    target_accuracy: job.task.target_accuracy,
                    outcome,
                }
            })
        })
        .collect();
    handles.into_iter().map(|h| h.join()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedat_core::{ExperimentConfig, StrategyKind};
    use fedat_data::suite;
    use std::sync::Arc;

    fn job(task: &Arc<suite::FedTask>, strategy: StrategyKind, seed: u64) -> Job {
        Job {
            label: format!("{} s{seed}", strategy.name()),
            task: task.clone(),
            cfg: ExperimentConfig::builder()
                .strategy(strategy)
                .rounds(5)
                .clients_per_round(2)
                .local_epochs(1)
                .eval_every(2)
                .seed(seed)
                .build(),
        }
    }

    #[test]
    fn grid_matches_serial_for_every_strategy() {
        let task = Arc::new(suite::sent140_like(10, 11));
        let jobs: Vec<Job> = StrategyKind::all()
            .into_iter()
            .map(|s| job(&task, s, 11))
            .collect();
        let serial: Vec<_> = StrategyKind::all()
            .into_iter()
            .map(|s| {
                let j = job(&task, s, 11);
                run_experiment_shared(&j.task, &j.cfg)
            })
            .collect();
        let grid = run_grid(jobs, 3);
        assert_eq!(grid.len(), serial.len());
        for (g, s) in grid.iter().zip(serial.iter()) {
            assert_eq!(
                g.outcome.final_weights, s.final_weights,
                "{}: concurrent grid must be bit-identical to serial",
                g.label
            );
            assert_eq!(g.outcome.trace.points.len(), s.trace.points.len());
            for (p, q) in g.outcome.trace.points.iter().zip(s.trace.points.iter()) {
                assert_eq!(p.accuracy, q.accuracy, "{}", g.label);
                assert_eq!(p.time, q.time, "{}", g.label);
                assert_eq!(p.up_bytes, q.up_bytes, "{}", g.label);
            }
        }
    }

    #[test]
    fn grid_preserves_job_order() {
        let task = Arc::new(suite::sent140_like(8, 13));
        let jobs: Vec<Job> = (0..5)
            .map(|i| job(&task, StrategyKind::FedAvg, i))
            .collect();
        let results = run_grid(jobs, 2);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.label, format!("FedAvg s{i}"));
            assert!(r.outcome.global_updates > 0);
        }
    }

    #[test]
    fn zero_worker_hint_degrades_to_serial_loop() {
        let task = Arc::new(suite::sent140_like(8, 17));
        let jobs = vec![job(&task, StrategyKind::FedAt, 17)];
        let results = run_grid(jobs, 0);
        let j = job(&task, StrategyKind::FedAt, 17);
        let serial = run_experiment_shared(&j.task, &j.cfg);
        assert_eq!(results[0].outcome.final_weights, serial.final_weights);
    }
}
