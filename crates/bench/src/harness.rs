//! Parallel experiment execution.
//!
//! Each simulation run is deterministic in its config alone, so the harness
//! fans independent runs out as concurrent kernel-pool jobs (see
//! [`crate::grid`]): whole-experiment parallelism and the kernels' own
//! fork-join parallelism share one scheduler instead of oversubscribing
//! the host with a second thread pool.

use fedat_core::{ExperimentConfig, Outcome};
use fedat_data::suite::FedTask;
use std::sync::Arc;

/// One experiment to run: a label, the task, and the configuration.
pub struct Job {
    /// Row/series label, e.g. `FedAT @ cifar10-like(#2)`.
    pub label: String,
    /// The federated task (shared between jobs on the same dataset).
    pub task: Arc<FedTask>,
    /// Full configuration.
    pub cfg: ExperimentConfig,
}

/// A finished job.
pub struct JobResult {
    /// The job's label.
    pub label: String,
    /// Name of the task the job ran on.
    pub task_name: String,
    /// Strategy name.
    pub strategy: &'static str,
    /// The task's time-to-accuracy target.
    pub target_accuracy: f32,
    /// The experiment outcome.
    pub outcome: Outcome,
}

/// Runs all jobs as concurrent kernel-pool jobs (`threads` is the pool-size
/// hint: 0 = all cores minus one, the pool's ambient default), returning
/// results in the original job order.
pub fn run_jobs(jobs: Vec<Job>, threads: usize) -> Vec<JobResult> {
    crate::grid::run_grid(jobs, threads)
}

/// Scale selector: full reproduces the paper's setup, quick shrinks it for
/// smoke tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Paper-scale clients and budgets.
    Full,
    /// ≈8× smaller (harness smoke test).
    Quick,
}

impl Scale {
    /// Clients for the medium (Chameleon-style) experiments.
    pub fn medium_clients(self) -> usize {
        match self {
            Scale::Full => 100,
            Scale::Quick => 30,
        }
    }

    /// Clients for the large (AWS-style) experiments.
    pub fn large_clients(self) -> usize {
        match self {
            Scale::Full => 500,
            Scale::Quick => 50,
        }
    }

    /// Scales a round budget.
    pub fn rounds(self, full: u64) -> u64 {
        match self {
            Scale::Full => full,
            Scale::Quick => (full / 8).max(10),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedat_core::StrategyKind;
    use fedat_data::suite;

    #[test]
    fn jobs_run_in_parallel_and_keep_order() {
        let task = Arc::new(suite::sent140_like(10, 3));
        let jobs: Vec<Job> = (0..4)
            .map(|i| Job {
                label: format!("job{i}"),
                task: task.clone(),
                cfg: ExperimentConfig::builder()
                    .strategy(StrategyKind::FedAvg)
                    .rounds(4)
                    .clients_per_round(2)
                    .local_epochs(1)
                    .seed(i)
                    .build(),
            })
            .collect();
        let results = run_jobs(jobs, 3);
        assert_eq!(results.len(), 4);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.label, format!("job{i}"), "order must be preserved");
            assert!(r.outcome.global_updates > 0);
        }
    }

    #[test]
    fn parallel_equals_serial() {
        let task = Arc::new(suite::sent140_like(10, 4));
        let mk = || Job {
            label: "x".into(),
            task: task.clone(),
            cfg: ExperimentConfig::builder()
                .strategy(StrategyKind::FedAt)
                .rounds(6)
                .clients_per_round(2)
                .local_epochs(1)
                .seed(7)
                .build(),
        };
        let serial = run_jobs(vec![mk()], 1);
        let parallel = run_jobs(vec![mk(), mk(), mk()], 3);
        for p in &parallel {
            assert_eq!(
                p.outcome.final_weights, serial[0].outcome.final_weights,
                "parallel scheduling must not affect results"
            );
        }
    }

    #[test]
    fn scale_shrinks() {
        assert_eq!(Scale::Full.medium_clients(), 100);
        assert!(Scale::Quick.medium_clients() < 100);
        assert_eq!(Scale::Full.rounds(600), 600);
        assert_eq!(Scale::Quick.rounds(600), 75);
    }
}
