//! # fedat-bench — the reproduction harness
//!
//! One experiment module per table/figure of the paper's evaluation (§7),
//! all driven from the `repro` binary:
//!
//! ```text
//! cargo run --release -p fedat-bench --bin repro -- <experiment> [--quick] [--out DIR]
//! ```
//!
//! `<experiment>` ∈ {`table1`, `table2`, `fig2`, `fig3`, `fig4`, `fig5`,
//! `fig6`, `fig7`, `fig8`, `fig9`, `fig10`, `ablate-mistier`,
//! `ablate-lambda`, `ablate-delta`, `all`}. `--quick` shrinks client counts
//! and round budgets ≈8× for smoke-testing the harness.
//!
//! Experiments sharing the same underlying runs (Table 1/2 and Figs. 2–4
//! all derive from one strategy×dataset matrix) are computed once by
//! [`experiments::core_matrix`] and post-processed per artifact.

pub mod experiments;
pub mod grid;
pub mod harness;
pub mod report;
