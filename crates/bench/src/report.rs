//! Report formatting: aligned text tables and CSV/trace files under
//! `results/`.

use fedat_sim::trace::Trace;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// A simple aligned text table that is also echoed to a `.txt` file.
pub struct TextReport {
    title: String,
    lines: Vec<String>,
}

impl TextReport {
    /// Starts a report with a title line.
    pub fn new(title: impl Into<String>) -> Self {
        TextReport {
            title: title.into(),
            lines: Vec::new(),
        }
    }

    /// Appends one line.
    pub fn line(&mut self, s: impl Into<String>) {
        self.lines.push(s.into());
    }

    /// Appends a blank line.
    pub fn blank(&mut self) {
        self.lines.push(String::new());
    }

    /// Renders to a string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("=== {} ===\n", self.title));
        for l in &self.lines {
            out.push_str(l);
            out.push('\n');
        }
        out
    }

    /// Prints to stdout and writes `<dir>/<name>.txt`.
    pub fn emit(&self, dir: &Path, name: &str) -> std::io::Result<()> {
        let text = self.render();
        print!("{text}");
        std::io::stdout().flush().ok();
        fs::create_dir_all(dir)?;
        fs::write(dir.join(format!("{name}.txt")), text)
    }
}

/// Writes a trace (smoothed like the paper's figures) as
/// `<dir>/<name>.csv`.
pub fn write_trace(
    dir: &Path,
    name: &str,
    trace: &Trace,
    smooth_window: usize,
) -> std::io::Result<()> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.csv"));
    let file = fs::File::create(path)?;
    let mut w = std::io::BufWriter::new(file);
    trace.smoothed(smooth_window).write_csv(&mut w)
}

/// Writes a run's fault log as `<dir>/<name>_faults.csv` — one row per
/// timeout/retry/corruption/rejection/... event, for post-hoc forensics.
pub fn write_fault_log(
    dir: &Path,
    name: &str,
    faults: &fedat_sim::fault::FaultLog,
) -> std::io::Result<()> {
    fs::create_dir_all(dir)?;
    let file = fs::File::create(dir.join(format!("{name}_faults.csv")))?;
    let mut w = std::io::BufWriter::new(file);
    faults.write_csv(&mut w)
}

/// Sanitizes a label into a file-name-safe slug.
pub fn slug(label: &str) -> String {
    label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Resolves the output directory for an experiment id.
pub fn out_dir(base: &Path, id: &str) -> PathBuf {
    base.join(id)
}

/// Formats an optional time-to-accuracy.
pub fn fmt_tta(t: Option<f64>) -> String {
    match t {
        Some(t) => format!("{t:.0}s"),
        None => "—".to_string(),
    }
}

/// Formats an optional byte count as MB (10⁶ B, like the paper's Table 2).
pub fn fmt_mb(b: Option<u64>) -> String {
    match b {
        Some(b) => format!("{:.2}", b as f64 / 1e6),
        None => "—".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedat_sim::trace::TracePoint;

    #[test]
    fn slug_is_filesystem_safe() {
        assert_eq!(slug("FedAT @ cifar10-like(#2)"), "FedAT___cifar10-like__2_");
    }

    #[test]
    fn report_renders_title_and_lines() {
        let mut r = TextReport::new("Table 1");
        r.line("row");
        let s = r.render();
        assert!(s.contains("=== Table 1 ==="));
        assert!(s.contains("row"));
    }

    #[test]
    fn trace_csv_written() {
        let dir = std::env::temp_dir().join("fedat_report_test");
        let mut t = Trace::new("x");
        t.push(TracePoint {
            time: 1.0,
            round: 1,
            accuracy: 0.5,
            loss: 1.0,
            up_bytes: 10,
            down_bytes: 5,
        });
        write_trace(&dir, "t", &t, 1).unwrap();
        let content = std::fs::read_to_string(dir.join("t.csv")).unwrap();
        assert!(content.contains("time,round"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_tta(Some(123.4)), "123s");
        assert_eq!(fmt_tta(None), "—");
        assert_eq!(fmt_mb(Some(2_500_000)), "2.50");
    }
}
