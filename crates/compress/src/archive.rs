//! Marshalling and unmarshalling of layered model weights (paper §4.3).
//!
//! The paper's pipeline: (1) flatten each layer's weights ("marshalling"),
//! (2) polyline-encode every value, (3) transmit the per-layer dimensions
//! alongside so the receiver can decompress and reshape ("unmarshalling").
//! [`WeightArchive`] reproduces that framing and charges the dimension
//! sideband to the wire size.

use crate::codec::{CompressedBlob, WireCodec};

/// Shape metadata of one marshalled layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LayerDims {
    /// Layer dimensions (e.g. `[in, out]` for a dense kernel).
    pub dims: Vec<usize>,
}

impl LayerDims {
    /// Element count implied by the dims.
    pub fn len(&self) -> usize {
        self.dims.iter().product::<usize>().max(1)
    }

    /// True when rank is zero (scalar layer).
    pub fn is_empty(&self) -> bool {
        self.dims.is_empty()
    }
}

/// A compressed, layered weight payload: one blob for the concatenated
/// values plus the dimension table.
#[derive(Clone, Debug)]
pub struct WeightArchive {
    /// Encoded concatenated weights.
    pub blob: CompressedBlob,
    /// Per-layer dimensions, in marshalling order.
    pub layers: Vec<LayerDims>,
}

/// Bytes charged per dimension entry on the wire (u32 each).
const DIM_ENTRY_BYTES: usize = 4;

impl WeightArchive {
    /// Marshals per-layer weight slices and encodes them with `codec`.
    ///
    /// # Panics
    /// Panics if any layer's slice length disagrees with its dims.
    pub fn marshal(codec: &dyn WireCodec, layers: &[(&[f32], Vec<usize>)]) -> WeightArchive {
        let total: usize = layers.iter().map(|(w, _)| w.len()).sum();
        let mut flat = Vec::with_capacity(total);
        let mut dims = Vec::with_capacity(layers.len());
        for (w, d) in layers {
            let expect: usize = d.iter().product::<usize>().max(1);
            assert_eq!(w.len(), expect, "layer data does not match dims {d:?}");
            flat.extend_from_slice(w);
            dims.push(LayerDims { dims: d.clone() });
        }
        WeightArchive {
            blob: codec.encode(&flat),
            layers: dims,
        }
    }

    /// Unmarshals back into per-layer vectors.
    ///
    /// # Panics
    /// Panics if the blob length disagrees with the dimension table.
    pub fn unmarshal(&self, codec: &dyn WireCodec) -> Vec<Vec<f32>> {
        let flat = codec.decode(&self.blob);
        let expected: usize = self.layers.iter().map(|l| l.len()).sum();
        assert_eq!(flat.len(), expected, "archive length mismatch");
        let mut out = Vec::with_capacity(self.layers.len());
        let mut off = 0usize;
        for l in &self.layers {
            let n = l.len();
            out.push(flat[off..off + n].to_vec());
            off += n;
        }
        out
    }

    /// Total wire size: payload + blob header + dimension table.
    pub fn wire_bytes(&self) -> usize {
        let dim_entries: usize = self.layers.iter().map(|l| l.dims.len() + 1).sum();
        self.blob.wire_bytes() + dim_entries * DIM_ENTRY_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{NoCompression, PolylineCodec};

    fn layered() -> Vec<(Vec<f32>, Vec<usize>)> {
        vec![
            ((0..12).map(|i| i as f32 * 0.01).collect(), vec![3, 4]),
            ((0..4).map(|i| -(i as f32) * 0.1).collect(), vec![4]),
            (
                (0..24).map(|i| (i as f32 * 0.3).sin()).collect(),
                vec![2, 3, 4],
            ),
        ]
    }

    #[test]
    fn marshal_unmarshal_roundtrip_raw() {
        let layers = layered();
        let refs: Vec<(&[f32], Vec<usize>)> = layers
            .iter()
            .map(|(w, d)| (w.as_slice(), d.clone()))
            .collect();
        let codec = NoCompression;
        let arch = WeightArchive::marshal(&codec, &refs);
        let out = arch.unmarshal(&codec);
        assert_eq!(out.len(), 3);
        for ((orig, _), got) in layers.iter().zip(out.iter()) {
            assert_eq!(orig, got);
        }
    }

    #[test]
    fn marshal_unmarshal_roundtrip_polyline() {
        let layers = layered();
        let refs: Vec<(&[f32], Vec<usize>)> = layers
            .iter()
            .map(|(w, d)| (w.as_slice(), d.clone()))
            .collect();
        let codec = PolylineCodec::new(5);
        let arch = WeightArchive::marshal(&codec, &refs);
        let out = arch.unmarshal(&codec);
        for ((orig, _), got) in layers.iter().zip(out.iter()) {
            for (a, b) in orig.iter().zip(got.iter()) {
                assert!((a - b).abs() <= 0.5e-5 * 1.01);
            }
        }
    }

    #[test]
    fn wire_bytes_accounts_for_dim_table() {
        let layers = layered();
        let refs: Vec<(&[f32], Vec<usize>)> = layers
            .iter()
            .map(|(w, d)| (w.as_slice(), d.clone()))
            .collect();
        let arch = WeightArchive::marshal(&NoCompression, &refs);
        // dim entries: (2+1) + (1+1) + (3+1) = 9 → 36 bytes beyond the blob.
        assert_eq!(arch.wire_bytes(), arch.blob.wire_bytes() + 36);
    }

    #[test]
    #[should_panic(expected = "does not match dims")]
    fn bad_dims_rejected() {
        let w = vec![1.0f32; 5];
        let _ = WeightArchive::marshal(&NoCompression, &[(w.as_slice(), vec![2, 2])]);
    }
}
