//! The codec abstraction used by the FL transport.

use crate::polyline::{decode_stream, encode_stream};
use bytes::Bytes;

/// Identifies how a blob was encoded (carried in the blob header).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CodecKind {
    /// Raw little-endian `f32`s.
    Raw,
    /// Polyline at a given precision; `delta` selects difference coding.
    Polyline {
        /// Decimal precision (1–7).
        precision: u8,
        /// Difference coding enabled.
        delta: bool,
    },
    /// Per-blob linear int8 quantization.
    QuantizeI8,
}

/// An encoded weight vector plus the header a receiver needs to decode it.
///
/// [`CompressedBlob::wire_bytes`] is what the simulator's traffic meter
/// charges to the network: payload + a small fixed header (codec id,
/// precision, value count — the "dimensions of the weights" sideband from
/// paper §4.3 is charged by the archive layer).
#[derive(Clone, Debug)]
pub struct CompressedBlob {
    /// Encoded payload.
    pub payload: Bytes,
    /// Number of `f32` values encoded.
    pub count: usize,
    /// Codec identification for decode.
    pub kind: CodecKind,
    /// Extra decode parameters (quantization range for int8).
    pub aux: Vec<f32>,
}

/// Size of the fixed blob header on the wire.
pub const BLOB_HEADER_BYTES: usize = 16;

impl CompressedBlob {
    /// Total bytes this blob occupies on the wire.
    pub fn wire_bytes(&self) -> usize {
        BLOB_HEADER_BYTES + self.payload.len() + self.aux.len() * 4
    }
}

/// A lossy or lossless weight-vector codec.
pub trait Codec: Send + Sync {
    /// Encodes a weight vector.
    fn encode(&self, weights: &[f32]) -> CompressedBlob;

    /// Decodes a blob produced by this codec.
    ///
    /// # Panics
    /// Panics on corrupt input — a decode failure in the simulator is a
    /// programming error, not a recoverable condition.
    fn decode(&self, blob: &CompressedBlob) -> Vec<f32>;

    /// Short name for reports (e.g. `polyline-p4`).
    fn name(&self) -> String;
}

/// Identity codec: 4 bytes per value on the wire.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoCompression;

impl Codec for NoCompression {
    fn encode(&self, weights: &[f32]) -> CompressedBlob {
        let mut payload = Vec::with_capacity(weights.len() * 4);
        for w in weights {
            payload.extend_from_slice(&w.to_le_bytes());
        }
        CompressedBlob {
            payload: Bytes::from(payload),
            count: weights.len(),
            kind: CodecKind::Raw,
            aux: Vec::new(),
        }
    }

    fn decode(&self, blob: &CompressedBlob) -> Vec<f32> {
        assert_eq!(blob.kind, CodecKind::Raw, "blob was not raw-encoded");
        assert_eq!(blob.payload.len(), blob.count * 4, "raw blob size mismatch");
        blob.payload
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect()
    }

    fn name(&self) -> String {
        "none".to_string()
    }
}

/// The FedAT polyline codec (§4.3). The paper's default is precision 4.
#[derive(Clone, Copy, Debug)]
pub struct PolylineCodec {
    precision: u8,
    delta: bool,
}

impl PolylineCodec {
    /// Polyline codec in the paper's configuration (delta coding on).
    ///
    /// # Panics
    /// Panics if `precision` is 0 or exceeds
    /// [`MAX_PRECISION`](crate::polyline::MAX_PRECISION).
    pub fn new(precision: u8) -> Self {
        Self::with_mode(precision, true)
    }

    /// Polyline codec with explicit delta/absolute mode (the ablation in
    /// DESIGN.md §5).
    pub fn with_mode(precision: u8, delta: bool) -> Self {
        assert!(
            (1..=crate::polyline::MAX_PRECISION).contains(&precision),
            "precision {precision} out of range"
        );
        PolylineCodec { precision, delta }
    }

    /// Decimal precision.
    pub fn precision(&self) -> u8 {
        self.precision
    }
}

impl Codec for PolylineCodec {
    fn encode(&self, weights: &[f32]) -> CompressedBlob {
        let payload = encode_stream(weights, self.precision, self.delta);
        CompressedBlob {
            payload: Bytes::from(payload),
            count: weights.len(),
            kind: CodecKind::Polyline {
                precision: self.precision,
                delta: self.delta,
            },
            aux: Vec::new(),
        }
    }

    fn decode(&self, blob: &CompressedBlob) -> Vec<f32> {
        match blob.kind {
            CodecKind::Polyline { precision, delta } => {
                decode_stream(&blob.payload, blob.count, precision, delta)
                    .expect("corrupt polyline blob")
            }
            _ => panic!("blob was not polyline-encoded"),
        }
    }

    fn name(&self) -> String {
        format!(
            "polyline-p{}{}",
            self.precision,
            if self.delta { "" } else { "-abs" }
        )
    }
}

/// Linear int8 quantization over the blob's own min/max range — the classic
/// quantization baseline the paper's related work discusses (§2.2, §4.3).
#[derive(Clone, Copy, Debug, Default)]
pub struct QuantizeCodec;

impl Codec for QuantizeCodec {
    fn encode(&self, weights: &[f32]) -> CompressedBlob {
        let lo = weights.iter().copied().fold(f32::INFINITY, f32::min);
        let hi = weights.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let (lo, hi) = if lo.is_finite() && hi.is_finite() && hi > lo {
            (lo, hi)
        } else {
            (0.0, 1.0) // constant or empty input
        };
        let scale = 255.0 / (hi - lo);
        let payload: Vec<u8> = weights
            .iter()
            .map(|&w| (((w - lo) * scale).round()).clamp(0.0, 255.0) as u8)
            .collect();
        CompressedBlob {
            payload: Bytes::from(payload),
            count: weights.len(),
            kind: CodecKind::QuantizeI8,
            aux: vec![lo, hi],
        }
    }

    fn decode(&self, blob: &CompressedBlob) -> Vec<f32> {
        assert_eq!(
            blob.kind,
            CodecKind::QuantizeI8,
            "blob was not int8-quantized"
        );
        let (lo, hi) = (blob.aux[0], blob.aux[1]);
        let inv = (hi - lo) / 255.0;
        blob.payload.iter().map(|&b| lo + b as f32 * inv).collect()
    }

    fn name(&self) -> String {
        "quantize-i8".to_string()
    }
}

/// Builds a codec from a kind tag (the reverse of blob headers; useful for
/// config files and the bench harness).
pub fn codec_for(kind: CodecKind) -> Box<dyn Codec> {
    match kind {
        CodecKind::Raw => Box::new(NoCompression),
        CodecKind::Polyline { precision, delta } => {
            Box::new(PolylineCodec::with_mode(precision, delta))
        }
        CodecKind::QuantizeI8 => Box::new(QuantizeCodec),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wiggly(n: usize) -> Vec<f32> {
        (0..n).map(|i| ((i as f32) * 0.31).sin() * 0.2).collect()
    }

    #[test]
    fn raw_roundtrip_is_exact() {
        let w = wiggly(100);
        let c = NoCompression;
        let blob = c.encode(&w);
        assert_eq!(c.decode(&blob), w);
        assert_eq!(blob.wire_bytes(), BLOB_HEADER_BYTES + 400);
    }

    #[test]
    fn polyline_roundtrip_within_half_lattice() {
        let w = wiggly(1000);
        for p in 1..=6u8 {
            let c = PolylineCodec::new(p);
            let blob = c.encode(&w);
            let r = c.decode(&blob);
            let tol = 0.5 * 10f32.powi(-(p as i32)) * 1.01;
            for (a, b) in w.iter().zip(r.iter()) {
                assert!((a - b).abs() <= tol, "p{p}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn polyline_beats_raw_for_typical_weights() {
        // Kaiming-style small weights at precision 4 should compress well
        // below 4 bytes/value.
        let w: Vec<f32> = (0..10_000)
            .map(|i| ((i as f32) * 0.017).sin() * 0.05)
            .collect();
        let c = PolylineCodec::new(4);
        let blob = c.encode(&w);
        let raw = NoCompression.encode(&w);
        let ratio = raw.wire_bytes() as f64 / blob.wire_bytes() as f64;
        assert!(ratio > 1.5, "compression ratio {ratio} too low");
    }

    #[test]
    fn quantize_roundtrip_bounded_by_range_step() {
        let w = wiggly(500);
        let c = QuantizeCodec;
        let blob = c.encode(&w);
        let r = c.decode(&blob);
        let range = 0.4f32; // wiggly spans ±0.2
        let step = range / 255.0;
        for (a, b) in w.iter().zip(r.iter()) {
            assert!((a - b).abs() <= step, "{a} vs {b}");
        }
        assert_eq!(blob.wire_bytes(), BLOB_HEADER_BYTES + 500 + 8);
    }

    #[test]
    fn quantize_handles_constant_input() {
        let w = vec![0.25f32; 10];
        let c = QuantizeCodec;
        let r = c.decode(&c.encode(&w));
        for v in r {
            assert!(
                (v - 0.25).abs() < 0.3,
                "constant input badly recovered: {v}"
            );
        }
    }

    #[test]
    fn codec_names_are_stable() {
        assert_eq!(NoCompression.name(), "none");
        assert_eq!(PolylineCodec::new(4).name(), "polyline-p4");
        assert_eq!(PolylineCodec::with_mode(3, false).name(), "polyline-p3-abs");
        assert_eq!(QuantizeCodec.name(), "quantize-i8");
    }

    #[test]
    fn codec_for_roundtrips_kind() {
        let w = wiggly(64);
        for kind in [
            CodecKind::Raw,
            CodecKind::Polyline {
                precision: 4,
                delta: true,
            },
            CodecKind::QuantizeI8,
        ] {
            let c = codec_for(kind);
            let blob = c.encode(&w);
            assert_eq!(blob.kind, kind);
            let r = c.decode(&blob);
            assert_eq!(r.len(), w.len());
        }
    }

    #[test]
    #[should_panic(expected = "not raw-encoded")]
    fn decoding_with_wrong_codec_panics() {
        let blob = PolylineCodec::new(4).encode(&[1.0]);
        let _ = NoCompression.decode(&blob);
    }
}
