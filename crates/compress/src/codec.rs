//! The wire-codec abstraction used by the FL transport.
//!
//! A [`WireCodec`] turns a weight vector into a [`CompressedBlob`] (what the
//! simulator's traffic meter charges to the network) and back. Codecs come
//! in two families:
//!
//! * **absolute** codecs encode the weight vector alone
//!   ([`NoCompression`], [`PolylineCodec`], [`QuantizeCodec`]),
//! * **reference-aware** codecs encode against a model both endpoints
//!   already hold — the decoded broadcast the client trained from —
//!   via [`WireCodec::encode_with_ref`]
//!   ([`crate::delta_rle::DeltaRleCodec`],
//!   [`crate::quantized::QuantizedCodec`], [`crate::topk::TopKCodec`]).
//!
//! Every decoder is total: [`WireCodec::try_decode_with_ref`] returns
//! [`CodecError`] on arbitrary corrupt bytes instead of panicking (pinned by
//! proptest). The panicking [`WireCodec::decode`]/[`WireCodec::decode_with_ref`]
//! conveniences exist because inside the simulator a decode failure is a
//! programming error, not a recoverable condition.

use crate::delta_rle::DeltaRleCodec;
use crate::polyline::{decode_stream, encode_stream};
use crate::quantized::QuantizedCodec;
use crate::topk::TopKCodec;
use bytes::Bytes;

/// Identifies how a blob was encoded (carried in the blob header).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CodecKind {
    /// Raw little-endian `f32`s — 4 bytes per value, bit-exact, inert.
    None,
    /// Polyline at a given precision; `delta` selects difference coding.
    Polyline {
        /// Decimal precision (1–7).
        precision: u8,
        /// Difference coding enabled.
        delta: bool,
    },
    /// Per-blob linear int8 quantization (absolute, reference-free).
    QuantizeI8,
    /// Lossless bit-delta vs the reference + byte-plane RLE packing.
    DeltaRle,
    /// Linear quantization of the delta vs the reference at `bits` ∈ {4, 8}.
    Quantized {
        /// Quantizer width in bits per weight (4 or 8).
        bits: u8,
    },
    /// Sparse top-k delta: the `per_mille`/1000 largest-magnitude delta
    /// coordinates travel as exact values, the rest decode to the reference.
    TopK {
        /// Selected fraction in thousandths (1–1000).
        per_mille: u16,
    },
}

/// Values per codec shard: encode/decode work is split into fixed
/// `CODEC_CHUNK`-value chunks whose boundaries depend on nothing but this
/// constant, so sharding across the kernel pool is thread-count invariant
/// (same argument as `fedat_tensor::parallel::for_each_chunk`).
pub const CODEC_CHUNK: usize = 4096;

/// A decode failure: the blob's bytes are inconsistent with its header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// `blob.kind` does not name a blob this codec can decode.
    WrongKind,
    /// Payload, aux, or count are inconsistent with the claimed kind.
    Malformed(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::WrongKind => write!(f, "blob kind does not match this codec"),
            CodecError::Malformed(why) => write!(f, "malformed blob: {why}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// An encoded weight vector plus the header a receiver needs to decode it.
///
/// [`CompressedBlob::wire_bytes`] is what the simulator's traffic meter
/// charges to the network: payload + a small fixed header (codec id,
/// precision, value count — the "dimensions of the weights" sideband from
/// paper §4.3 is charged by the archive layer).
#[derive(Clone, Debug)]
pub struct CompressedBlob {
    /// Encoded payload.
    pub payload: Bytes,
    /// Number of `f32` values encoded.
    pub count: usize,
    /// Codec identification for decode.
    pub kind: CodecKind,
    /// Extra decode parameters (quantization range for the quantizers).
    pub aux: Vec<f32>,
}

/// Size of the fixed blob header on the wire.
pub const BLOB_HEADER_BYTES: usize = 16;

impl CompressedBlob {
    /// Total bytes this blob occupies on the wire.
    pub fn wire_bytes(&self) -> usize {
        BLOB_HEADER_BYTES + self.payload.len() + self.aux.len() * 4
    }
}

/// A lossy or lossless weight-vector codec.
///
/// The `reference` is the model both endpoints already hold (the decoded
/// broadcast a client trained from). Absolute codecs ignore it; the
/// reference-aware codecs encode the difference against it, which is why
/// the transport threads the same reference through both
/// [`encode_with_ref`](WireCodec::encode_with_ref) and
/// [`try_decode_with_ref`](WireCodec::try_decode_with_ref).
pub trait WireCodec: Send + Sync {
    /// Encodes a weight vector, optionally against a reference model.
    ///
    /// # Panics
    /// Panics if `reference` is present with a different length than
    /// `weights` — that is a caller bug, not a data condition.
    fn encode_with_ref(&self, weights: &[f32], reference: Option<&[f32]>) -> CompressedBlob;

    /// Decodes a blob, optionally against the reference it was encoded
    /// with. Never panics on corrupt payload bytes: any inconsistency
    /// surfaces as a [`CodecError`].
    fn try_decode_with_ref(
        &self,
        blob: &CompressedBlob,
        reference: Option<&[f32]>,
    ) -> Result<Vec<f32>, CodecError>;

    /// Short name for reports (e.g. `polyline-p4`).
    fn name(&self) -> String;

    /// Encodes without a reference.
    fn encode(&self, weights: &[f32]) -> CompressedBlob {
        self.encode_with_ref(weights, None)
    }

    /// Decodes a blob produced by [`WireCodec::encode`].
    ///
    /// # Panics
    /// Panics on corrupt input — a decode failure in the simulator is a
    /// programming error, not a recoverable condition.
    fn decode(&self, blob: &CompressedBlob) -> Vec<f32> {
        self.decode_with_ref(blob, None)
    }

    /// Decodes against a reference, panicking on corrupt input (the
    /// in-simulator convenience over [`WireCodec::try_decode_with_ref`]).
    ///
    /// # Panics
    /// Panics on corrupt input.
    fn decode_with_ref(&self, blob: &CompressedBlob, reference: Option<&[f32]>) -> Vec<f32> {
        match self.try_decode_with_ref(blob, reference) {
            Ok(w) => w,
            Err(e) => panic!("{} blob failed to decode: {e}", self.name()),
        }
    }
}

/// Checks the encode-side reference contract shared by every codec.
pub(crate) fn check_reference(weights: &[f32], reference: Option<&[f32]>) {
    if let Some(r) = reference {
        assert_eq!(
            r.len(),
            weights.len(),
            "encode reference length mismatch: {} vs {} weights",
            r.len(),
            weights.len()
        );
    }
}

/// Validates the decode-side reference length without panicking.
pub(crate) fn decode_reference(
    count: usize,
    reference: Option<&[f32]>,
) -> Result<Option<&[f32]>, CodecError> {
    match reference {
        Some(r) if r.len() != count => Err(CodecError::Malformed("reference length mismatch")),
        other => Ok(other),
    }
}

/// Identity codec: 4 bytes per value on the wire, bit-exact. The inert
/// default — `CodecKind::None` runs charge exactly the pre-codec byte
/// counts (16-byte header + 4·n payload).
#[derive(Clone, Copy, Debug, Default)]
pub struct NoCompression;

impl WireCodec for NoCompression {
    fn encode_with_ref(&self, weights: &[f32], reference: Option<&[f32]>) -> CompressedBlob {
        check_reference(weights, reference);
        let mut payload = Vec::with_capacity(weights.len() * 4);
        for w in weights {
            payload.extend_from_slice(&w.to_le_bytes());
        }
        CompressedBlob {
            payload: Bytes::from(payload),
            count: weights.len(),
            kind: CodecKind::None,
            aux: Vec::new(),
        }
    }

    fn try_decode_with_ref(
        &self,
        blob: &CompressedBlob,
        _reference: Option<&[f32]>,
    ) -> Result<Vec<f32>, CodecError> {
        if blob.kind != CodecKind::None {
            return Err(CodecError::WrongKind);
        }
        if blob.count.checked_mul(4) != Some(blob.payload.len()) {
            return Err(CodecError::Malformed("raw blob size mismatch"));
        }
        Ok(blob
            .payload
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }

    fn name(&self) -> String {
        "none".to_string()
    }
}

/// The FedAT polyline codec (§4.3). The paper's default is precision 4.
/// Absolute: the reference is ignored.
#[derive(Clone, Copy, Debug)]
pub struct PolylineCodec {
    precision: u8,
    delta: bool,
}

impl PolylineCodec {
    /// Polyline codec in the paper's configuration (delta coding on).
    ///
    /// # Panics
    /// Panics if `precision` is 0 or exceeds
    /// [`MAX_PRECISION`](crate::polyline::MAX_PRECISION).
    pub fn new(precision: u8) -> Self {
        Self::with_mode(precision, true)
    }

    /// Polyline codec with explicit delta/absolute mode (the ablation in
    /// DESIGN.md §5).
    pub fn with_mode(precision: u8, delta: bool) -> Self {
        assert!(
            (1..=crate::polyline::MAX_PRECISION).contains(&precision),
            "precision {precision} out of range"
        );
        PolylineCodec { precision, delta }
    }

    /// Decimal precision.
    pub fn precision(&self) -> u8 {
        self.precision
    }
}

impl WireCodec for PolylineCodec {
    fn encode_with_ref(&self, weights: &[f32], reference: Option<&[f32]>) -> CompressedBlob {
        check_reference(weights, reference);
        let payload = encode_stream(weights, self.precision, self.delta);
        CompressedBlob {
            payload: Bytes::from(payload),
            count: weights.len(),
            kind: CodecKind::Polyline {
                precision: self.precision,
                delta: self.delta,
            },
            aux: Vec::new(),
        }
    }

    fn try_decode_with_ref(
        &self,
        blob: &CompressedBlob,
        _reference: Option<&[f32]>,
    ) -> Result<Vec<f32>, CodecError> {
        match blob.kind {
            CodecKind::Polyline { precision, delta } => {
                decode_stream(&blob.payload, blob.count, precision, delta)
                    .ok_or(CodecError::Malformed("corrupt polyline stream"))
            }
            _ => Err(CodecError::WrongKind),
        }
    }

    fn name(&self) -> String {
        format!(
            "polyline-p{}{}",
            self.precision,
            if self.delta { "" } else { "-abs" }
        )
    }
}

/// Linear int8 quantization over the blob's own min/max range — the classic
/// quantization baseline the paper's related work discusses (§2.2, §4.3).
/// Absolute: the reference is ignored (the reference-aware variant is
/// [`crate::quantized::QuantizedCodec`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct QuantizeCodec;

impl WireCodec for QuantizeCodec {
    fn encode_with_ref(&self, weights: &[f32], reference: Option<&[f32]>) -> CompressedBlob {
        check_reference(weights, reference);
        let lo = weights.iter().copied().fold(f32::INFINITY, f32::min);
        let hi = weights.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let (lo, hi) = if lo.is_finite() && hi.is_finite() && hi > lo {
            (lo, hi)
        } else {
            (0.0, 1.0) // constant or empty input
        };
        let scale = 255.0 / (hi - lo);
        let payload: Vec<u8> = weights
            .iter()
            .map(|&w| (((w - lo) * scale).round()).clamp(0.0, 255.0) as u8)
            .collect();
        CompressedBlob {
            payload: Bytes::from(payload),
            count: weights.len(),
            kind: CodecKind::QuantizeI8,
            aux: vec![lo, hi],
        }
    }

    fn try_decode_with_ref(
        &self,
        blob: &CompressedBlob,
        _reference: Option<&[f32]>,
    ) -> Result<Vec<f32>, CodecError> {
        if blob.kind != CodecKind::QuantizeI8 {
            return Err(CodecError::WrongKind);
        }
        if blob.payload.len() != blob.count {
            return Err(CodecError::Malformed("quantize payload size mismatch"));
        }
        if blob.aux.len() < 2 {
            return Err(CodecError::Malformed("quantize range missing"));
        }
        let (lo, hi) = (blob.aux[0], blob.aux[1]);
        let inv = (hi - lo) / 255.0;
        Ok(blob.payload.iter().map(|&b| lo + b as f32 * inv).collect())
    }

    fn name(&self) -> String {
        "quantize-i8".to_string()
    }
}

/// Builds a codec from a kind tag (the reverse of blob headers; useful for
/// config files and the bench harness).
pub fn codec_for(kind: CodecKind) -> Box<dyn WireCodec> {
    match kind {
        CodecKind::None => Box::new(NoCompression),
        CodecKind::Polyline { precision, delta } => {
            Box::new(PolylineCodec::with_mode(precision, delta))
        }
        CodecKind::QuantizeI8 => Box::new(QuantizeCodec),
        CodecKind::DeltaRle => Box::new(DeltaRleCodec),
        CodecKind::Quantized { bits } => Box::new(QuantizedCodec::new(bits)),
        CodecKind::TopK { per_mille } => Box::new(TopKCodec::new(per_mille)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wiggly(n: usize) -> Vec<f32> {
        (0..n).map(|i| ((i as f32) * 0.31).sin() * 0.2).collect()
    }

    #[test]
    fn raw_roundtrip_is_exact() {
        let w = wiggly(100);
        let c = NoCompression;
        let blob = c.encode(&w);
        assert_eq!(c.decode(&blob), w);
        assert_eq!(blob.wire_bytes(), BLOB_HEADER_BYTES + 400);
    }

    #[test]
    fn polyline_roundtrip_within_half_lattice() {
        let w = wiggly(1000);
        for p in 1..=6u8 {
            let c = PolylineCodec::new(p);
            let blob = c.encode(&w);
            let r = c.decode(&blob);
            let tol = 0.5 * 10f32.powi(-(p as i32)) * 1.01;
            for (a, b) in w.iter().zip(r.iter()) {
                assert!((a - b).abs() <= tol, "p{p}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn polyline_beats_raw_for_typical_weights() {
        // Kaiming-style small weights at precision 4 should compress well
        // below 4 bytes/value.
        let w: Vec<f32> = (0..10_000)
            .map(|i| ((i as f32) * 0.017).sin() * 0.05)
            .collect();
        let c = PolylineCodec::new(4);
        let blob = c.encode(&w);
        let raw = NoCompression.encode(&w);
        let ratio = raw.wire_bytes() as f64 / blob.wire_bytes() as f64;
        assert!(ratio > 1.5, "compression ratio {ratio} too low");
    }

    #[test]
    fn quantize_roundtrip_bounded_by_range_step() {
        let w = wiggly(500);
        let c = QuantizeCodec;
        let blob = c.encode(&w);
        let r = c.decode(&blob);
        let range = 0.4f32; // wiggly spans ±0.2
        let step = range / 255.0;
        for (a, b) in w.iter().zip(r.iter()) {
            assert!((a - b).abs() <= step, "{a} vs {b}");
        }
        assert_eq!(blob.wire_bytes(), BLOB_HEADER_BYTES + 500 + 8);
    }

    #[test]
    fn quantize_handles_constant_input() {
        let w = vec![0.25f32; 10];
        let c = QuantizeCodec;
        let r = c.decode(&c.encode(&w));
        for v in r {
            assert!(
                (v - 0.25).abs() < 0.3,
                "constant input badly recovered: {v}"
            );
        }
    }

    #[test]
    fn codec_names_are_stable() {
        assert_eq!(NoCompression.name(), "none");
        assert_eq!(PolylineCodec::new(4).name(), "polyline-p4");
        assert_eq!(PolylineCodec::with_mode(3, false).name(), "polyline-p3-abs");
        assert_eq!(QuantizeCodec.name(), "quantize-i8");
        assert_eq!(DeltaRleCodec.name(), "delta-rle");
        assert_eq!(QuantizedCodec::new(8).name(), "quantized8");
        assert_eq!(QuantizedCodec::new(4).name(), "quantized4");
        assert_eq!(TopKCodec::new(50).name(), "topk-50pm");
    }

    #[test]
    fn codec_for_roundtrips_kind() {
        let w = wiggly(64);
        for kind in [
            CodecKind::None,
            CodecKind::Polyline {
                precision: 4,
                delta: true,
            },
            CodecKind::QuantizeI8,
            CodecKind::DeltaRle,
            CodecKind::Quantized { bits: 8 },
            CodecKind::Quantized { bits: 4 },
            CodecKind::TopK { per_mille: 100 },
        ] {
            let c = codec_for(kind);
            let blob = c.encode(&w);
            assert_eq!(blob.kind, kind);
            let r = c.decode(&blob);
            assert_eq!(r.len(), w.len());
        }
    }

    #[test]
    fn decoding_with_wrong_codec_errors() {
        let blob = PolylineCodec::new(4).encode(&[1.0]);
        assert_eq!(
            NoCompression.try_decode_with_ref(&blob, None),
            Err(CodecError::WrongKind)
        );
    }

    #[test]
    #[should_panic(expected = "failed to decode")]
    fn panicking_decode_names_the_codec() {
        let blob = PolylineCodec::new(4).encode(&[1.0]);
        let _ = NoCompression.decode(&blob);
    }
}
