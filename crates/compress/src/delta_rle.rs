//! Lossless delta + byte-plane RLE codec.
//!
//! The only truly lossless compressed wire format in the stack: every bit
//! pattern round-trips, including `-0.0`, subnormals, and NaN payloads
//! (pinned by proptest). The encoder:
//!
//! 1. XORs each weight's bit pattern with the reference model's (the decoded
//!    broadcast both endpoints hold) — weights drift little in one local
//!    training pass, so the XOR zeroes most sign/exponent/high-mantissa
//!    bits. Without a reference the XOR is against zero (identity).
//! 2. Splits each [`CODEC_CHUNK`]-value chunk of XOR words into four byte
//!    planes (plane `b` holds byte `b` of every word), concentrating the
//!    zero bytes into long runs,
//! 3. Packs each plane with a byte-oriented RLE (PackBits-style: literal
//!    runs up to 128 bytes, repeat runs of 3–130 bytes).
//!
//! Chunk boundaries are a function of [`CODEC_CHUNK`] alone and every chunk
//! is encoded/decoded independently (sharded over the persistent kernel
//! pool via [`fedat_tensor::parallel::for_each_slot`]), so the byte stream
//! and the decoded weights are bit-identical for any worker count, either
//! `ExecMode`, and either `SimdKernel` — the XOR inner loop is pure integer
//! arithmetic with one possible answer.
//!
//! Wire layout: `[u32-LE segment length × n_chunks] ++ segments`, each
//! segment the concatenation of its four packed planes (a plane's packed
//! length is implicit: the decoder consumes tokens until the plane's
//! `chunk_len` bytes are reproduced).

use crate::codec::{
    check_reference, decode_reference, CodecError, CodecKind, CompressedBlob, WireCodec,
    CODEC_CHUNK,
};
use bytes::Bytes;
use fedat_tensor::parallel::{for_each_slot, plan_threads};
use fedat_tensor::simd;

/// Longest literal run one token can carry.
const MAX_LITERAL: usize = 128;
/// Shortest byte run worth a repeat token (a repeat costs 2 bytes).
const MIN_RUN: usize = 3;
/// Longest byte run one repeat token can carry.
const MAX_RUN: usize = MIN_RUN + 127;

fn flush_literals(bytes: &[u8], from: usize, to: usize, out: &mut Vec<u8>) {
    let mut p = from;
    while p < to {
        let take = (to - p).min(MAX_LITERAL);
        out.push((take - 1) as u8);
        out.extend_from_slice(&bytes[p..p + take]);
        p += take;
    }
}

/// Greedy PackBits-style packing of one byte plane. Deterministic: a pure
/// function of the plane bytes.
fn pack_plane(bytes: &[u8], out: &mut Vec<u8>) {
    let n = bytes.len();
    let mut lit_start = 0usize;
    let mut i = 0usize;
    while i < n {
        let mut j = i + 1;
        while j < n && bytes[j] == bytes[i] {
            j += 1;
        }
        let run = j - i;
        if run >= MIN_RUN {
            flush_literals(bytes, lit_start, i, out);
            let mut pos = i;
            let mut rem = run;
            while rem >= MIN_RUN {
                let take = rem.min(MAX_RUN);
                out.push(0x80 + (take - MIN_RUN) as u8);
                out.push(bytes[pos]);
                pos += take;
                rem -= take;
            }
            // A 1–2 byte remainder joins the following literal region.
            lit_start = pos;
        }
        i = j;
    }
    flush_literals(bytes, lit_start, n, out);
}

/// Unpacks exactly `plane.len()` bytes from `input` starting at `*cursor`.
fn unpack_plane(input: &[u8], cursor: &mut usize, plane: &mut [u8]) -> Result<(), CodecError> {
    let n = plane.len();
    let mut filled = 0usize;
    while filled < n {
        let t = *input
            .get(*cursor)
            .ok_or(CodecError::Malformed("truncated rle stream"))?;
        *cursor += 1;
        if t < 0x80 {
            let len = t as usize + 1;
            if filled + len > n {
                return Err(CodecError::Malformed("literal run overruns plane"));
            }
            let src = input
                .get(*cursor..*cursor + len)
                .ok_or(CodecError::Malformed("truncated literal run"))?;
            plane[filled..filled + len].copy_from_slice(src);
            *cursor += len;
            filled += len;
        } else {
            let len = (t - 0x80) as usize + MIN_RUN;
            if filled + len > n {
                return Err(CodecError::Malformed("repeat run overruns plane"));
            }
            let b = *input
                .get(*cursor)
                .ok_or(CodecError::Malformed("truncated repeat run"))?;
            *cursor += 1;
            plane[filled..filled + len].fill(b);
            filled += len;
        }
    }
    Ok(())
}

/// Encodes one chunk's XOR words into its byte segment.
fn encode_chunk(words: &[u32], seg: &mut Vec<u8>) {
    let mut plane = vec![0u8; words.len()];
    for b in 0..4 {
        for (p, &w) in plane.iter_mut().zip(words.iter()) {
            *p = (w >> (8 * b)) as u8;
        }
        pack_plane(&plane, seg);
    }
}

/// Decodes one chunk's byte segment back into XOR words. The segment must
/// be consumed exactly.
fn decode_chunk(seg: &[u8], words: &mut [u32]) -> Result<(), CodecError> {
    let mut plane = vec![0u8; words.len()];
    let mut cursor = 0usize;
    for b in 0..4 {
        unpack_plane(seg, &mut cursor, &mut plane)?;
        for (w, &p) in words.iter_mut().zip(plane.iter()) {
            *w |= (p as u32) << (8 * b);
        }
    }
    if cursor != seg.len() {
        return Err(CodecError::Malformed("trailing bytes in chunk segment"));
    }
    Ok(())
}

/// The lossless delta-RLE wire codec. See the module docs for the format.
#[derive(Clone, Copy, Debug, Default)]
pub struct DeltaRleCodec;

impl WireCodec for DeltaRleCodec {
    fn encode_with_ref(&self, weights: &[f32], reference: Option<&[f32]>) -> CompressedBlob {
        check_reference(weights, reference);
        let n = weights.len();
        let n_chunks = n.div_ceil(CODEC_CHUNK);
        let mut segs: Vec<Vec<u8>> = vec![Vec::new(); n_chunks];
        let threads = plan_threads(n, 16);
        for_each_slot(&mut segs, threads, |ci, seg| {
            let lo = ci * CODEC_CHUNK;
            let hi = (lo + CODEC_CHUNK).min(n);
            let mut words = vec![0u32; hi - lo];
            match reference {
                Some(r) => simd::delta_bits_into(&mut words, &weights[lo..hi], &r[lo..hi]),
                None => {
                    for (w, &v) in words.iter_mut().zip(weights[lo..hi].iter()) {
                        *w = v.to_bits();
                    }
                }
            }
            encode_chunk(&words, seg);
        });
        let table_len = 4 * n_chunks;
        let total: usize = table_len + segs.iter().map(Vec::len).sum::<usize>();
        let mut payload = Vec::with_capacity(total);
        for seg in &segs {
            payload.extend_from_slice(&(seg.len() as u32).to_le_bytes());
        }
        for seg in &segs {
            payload.extend_from_slice(seg);
        }
        CompressedBlob {
            payload: Bytes::from(payload),
            count: n,
            kind: CodecKind::DeltaRle,
            aux: Vec::new(),
        }
    }

    fn try_decode_with_ref(
        &self,
        blob: &CompressedBlob,
        reference: Option<&[f32]>,
    ) -> Result<Vec<f32>, CodecError> {
        if blob.kind != CodecKind::DeltaRle {
            return Err(CodecError::WrongKind);
        }
        let n = blob.count;
        let reference = decode_reference(n, reference)?;
        let n_chunks = n.div_ceil(CODEC_CHUNK);
        let table_len = n_chunks
            .checked_mul(4)
            .ok_or(CodecError::Malformed("chunk table overflow"))?;
        if blob.payload.len() < table_len {
            return Err(CodecError::Malformed("chunk table truncated"));
        }
        // Segment offsets are a cheap serial prefix scan; the per-chunk
        // decode below is the parallel part.
        let mut offsets = Vec::with_capacity(n_chunks + 1);
        let mut cursor = table_len;
        for ci in 0..n_chunks {
            let b = &blob.payload[ci * 4..ci * 4 + 4];
            let len = u32::from_le_bytes([b[0], b[1], b[2], b[3]]) as usize;
            offsets.push(cursor);
            cursor = cursor
                .checked_add(len)
                .ok_or(CodecError::Malformed("segment length overflow"))?;
        }
        offsets.push(cursor);
        if cursor != blob.payload.len() {
            return Err(CodecError::Malformed(
                "segment lengths disagree with payload",
            ));
        }
        let mut slots: Vec<Result<Vec<f32>, CodecError>> = vec![Ok(Vec::new()); n_chunks];
        let threads = plan_threads(n, 16);
        for_each_slot(&mut slots, threads, |ci, slot| {
            let lo = ci * CODEC_CHUNK;
            let hi = (lo + CODEC_CHUNK).min(n);
            let seg = &blob.payload[offsets[ci]..offsets[ci + 1]];
            let mut words = vec![0u32; hi - lo];
            *slot = decode_chunk(seg, &mut words).map(|()| {
                let mut out = vec![0.0f32; hi - lo];
                match reference {
                    Some(r) => simd::apply_delta_bits_into(&mut out, &words, &r[lo..hi]),
                    None => {
                        for (o, &w) in out.iter_mut().zip(words.iter()) {
                            *o = f32::from_bits(w);
                        }
                    }
                }
                out
            });
        });
        let mut out = Vec::with_capacity(n);
        for slot in slots {
            out.extend_from_slice(&slot?);
        }
        Ok(out)
    }

    fn name(&self) -> String {
        "delta-rle".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn specials() -> Vec<f32> {
        let mut v = vec![
            0.0,
            -0.0,
            1.0,
            -1.0,
            f32::MIN_POSITIVE,
            f32::MIN_POSITIVE / 2.0, // subnormal
            3e38,
            -3e38,
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::NAN,
            f32::from_bits(0x7fc0_dead), // NaN payload
        ];
        v.extend((0..5000).map(|i| ((i as f32) * 0.013).sin() * 0.2));
        v
    }

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn roundtrip_is_bitwise_without_reference() {
        let w = specials();
        let c = DeltaRleCodec;
        let blob = c.encode(&w);
        assert_eq!(bits(&c.decode(&blob)), bits(&w));
    }

    #[test]
    fn roundtrip_is_bitwise_against_reference() {
        let w = specials();
        let r: Vec<f32> = w.iter().map(|v| v * 0.99 + 0.001).collect();
        let c = DeltaRleCodec;
        let blob = c.encode_with_ref(&w, Some(&r));
        let back = c.decode_with_ref(&blob, Some(&r));
        assert_eq!(bits(&back), bits(&w));
    }

    #[test]
    fn near_reference_updates_compress_well() {
        // A sparse local update leaves most weights untouched; the XOR
        // planes are then mostly zero and RLE-friendly.
        let r: Vec<f32> = (0..20_000)
            .map(|i| ((i as f32) * 0.017).sin() * 0.05)
            .collect();
        let mut w = r.clone();
        for i in (0..w.len()).step_by(8) {
            w[i] += 1e-4;
        }
        let c = DeltaRleCodec;
        let with_ref = c.encode_with_ref(&w, Some(&r)).wire_bytes();
        let raw = 16 + 4 * w.len();
        assert!(
            (with_ref as f64) < raw as f64 / 2.0,
            "delta-rle vs raw: {with_ref} vs {raw}"
        );
    }

    #[test]
    fn chunking_is_exercised_past_one_chunk() {
        let w: Vec<f32> = (0..(CODEC_CHUNK * 3 + 17))
            .map(|i| (i as f32 * 0.001).cos())
            .collect();
        let c = DeltaRleCodec;
        let blob = c.encode(&w);
        assert_eq!(bits(&c.decode(&blob)), bits(&w));
    }

    #[test]
    fn corrupt_streams_error_instead_of_panicking() {
        let w: Vec<f32> = (0..100).map(|i| i as f32 * 0.1).collect();
        let c = DeltaRleCodec;
        let good = c.encode(&w);
        // Truncated payload.
        let mut cut = good.clone();
        cut.payload = cut.payload.slice(0..cut.payload.len() - 3);
        assert!(c.try_decode_with_ref(&cut, None).is_err());
        // Inflated count.
        let mut grown = good.clone();
        grown.count = 5_000;
        assert!(c.try_decode_with_ref(&grown, None).is_err());
        // Wrong kind.
        let mut rekinded = good;
        rekinded.kind = CodecKind::None;
        assert_eq!(
            c.try_decode_with_ref(&rekinded, None),
            Err(CodecError::WrongKind)
        );
    }

    #[test]
    fn rle_plane_roundtrip_on_awkward_runs() {
        // Runs crossing every token boundary: 1, 2, 3, 130, 131 repeats and
        // >128-byte literal stretches.
        let mut plane = Vec::new();
        for (i, len) in [1usize, 2, 3, 130, 131, 200, 1].iter().enumerate() {
            plane.extend(std::iter::repeat_n((i * 37) as u8, *len));
            plane.push(0xAB); // break the run
        }
        plane.extend((0..300).map(|i| (i % 251) as u8)); // long literal tail
        let mut packed = Vec::new();
        pack_plane(&plane, &mut packed);
        let mut back = vec![0u8; plane.len()];
        let mut cursor = 0;
        unpack_plane(&packed, &mut cursor, &mut back).unwrap();
        assert_eq!(cursor, packed.len());
        assert_eq!(back, plane);
    }
}
