//! # fedat-compress — the Encoded Polyline weight codec
//!
//! FedAT compresses every uplink and downlink model transfer with the
//! Encoded Polyline Algorithm (paper §4.3): each weight is rounded to a
//! configurable decimal precision, zig-zag shifted, split into 5-bit chunks,
//! and emitted as printable ASCII — exactly Google's polyline format
//! generalized from lat/lng pairs to arbitrary `f32` streams.
//!
//! * [`polyline`] — the wire format: value/stream encode + decode, in both
//!   *delta* mode (successive differences, as in the original algorithm)
//!   and *absolute* mode (weights are unordered, so deltas are an ablation —
//!   see DESIGN.md §5),
//! * [`codec`] — the [`codec::Codec`] trait with
//!   [`codec::NoCompression`],
//!   [`codec::PolylineCodec`] (precision 1–7) and an int8
//!   [`codec::QuantizeCodec`] baseline,
//! * [`archive`] — marshalling/unmarshalling of per-layer weight tensors
//!   with their dimensions (paper §4.3 steps 1–3),
//! * [`stats`] — compression ratio and reconstruction-error accounting.
//!
//! ```
//! use fedat_compress::codec::{Codec, PolylineCodec};
//!
//! let weights = vec![0.12345_f32, -0.5, 0.000071, 2.5];
//! let codec = PolylineCodec::new(4);
//! let blob = codec.encode(&weights);
//! let restored = codec.decode(&blob);
//! for (w, r) in weights.iter().zip(restored.iter()) {
//!     assert!((w - r).abs() <= 0.5e-4);
//! }
//! ```

pub mod archive;
pub mod codec;
pub mod polyline;
pub mod stats;

pub use codec::{Codec, CodecKind, CompressedBlob, NoCompression, PolylineCodec, QuantizeCodec};
