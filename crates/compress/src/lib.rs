//! # fedat-compress — the compressed wire path
//!
//! FedAT compresses every uplink and downlink model transfer; the paper's
//! codec is the Encoded Polyline Algorithm (§4.3): each weight is rounded
//! to a configurable decimal precision, zig-zag shifted, split into 5-bit
//! chunks, and emitted as printable ASCII — exactly Google's polyline
//! format generalized from lat/lng pairs to arbitrary `f32` streams. This
//! crate holds that codec plus the rest of the pluggable [`codec::WireCodec`]
//! family the transport layer charges real wire bytes through:
//!
//! * [`polyline`] — the polyline wire format: value/stream encode + decode,
//!   in both *delta* mode (successive differences, as in the original
//!   algorithm) and *absolute* mode (see DESIGN.md §5),
//! * [`codec`] — the [`codec::WireCodec`] trait with the absolute codecs
//!   [`codec::NoCompression`] (the inert default),
//!   [`codec::PolylineCodec`] (precision 1–7) and the int8
//!   [`codec::QuantizeCodec`] baseline,
//! * [`delta_rle`] — lossless bit-delta vs the broadcast reference +
//!   byte-plane RLE (bitwise round-trip, proptest-pinned),
//! * [`quantized`] — reference-aware 4/8-bit linear delta quantization,
//! * [`topk`] — sparse top-k delta selection with exact values,
//! * [`archive`] — marshalling/unmarshalling of per-layer weight tensors
//!   with their dimensions (paper §4.3 steps 1–3),
//! * [`stats`] — compression ratio and reconstruction-error accounting.
//!
//! Encode/decode inner loops (delta, quantize/dequantize, magnitude) run on
//! the bit-exact [`fedat_tensor::simd`] kernels and shard across the
//! persistent kernel pool on fixed [`codec::CODEC_CHUNK`] boundaries, so
//! lossless codecs round-trip bit-identically and lossy codecs are exactly
//! reproducible for any worker count, `ExecMode`, or `SimdKernel`.
//!
//! ```
//! use fedat_compress::codec::{PolylineCodec, WireCodec};
//!
//! let weights = vec![0.12345_f32, -0.5, 0.000071, 2.5];
//! let codec = PolylineCodec::new(4);
//! let blob = codec.encode(&weights);
//! let restored = codec.decode(&blob);
//! for (w, r) in weights.iter().zip(restored.iter()) {
//!     assert!((w - r).abs() <= 0.5e-4);
//! }
//! ```

pub mod archive;
pub mod codec;
pub mod delta_rle;
pub mod polyline;
pub mod quantized;
pub mod stats;
pub mod topk;

pub use codec::{
    codec_for, CodecError, CodecKind, CompressedBlob, NoCompression, PolylineCodec, QuantizeCodec,
    WireCodec,
};
pub use delta_rle::DeltaRleCodec;
pub use quantized::QuantizedCodec;
pub use topk::TopKCodec;

/// Back-compat alias: the trait was renamed to [`WireCodec`] when the
/// reference-aware wire path landed.
pub use codec::WireCodec as Codec;
