//! The Encoded Polyline wire format.
//!
//! Per value: round to `10^precision`, zig-zag to a non-negative integer,
//! split into little-endian 5-bit chunks, OR continuation bit `0x20` on all
//! but the last chunk, add 63 → printable ASCII (`?`..`~`). Delta mode
//! encodes the difference between consecutive *rounded* integers, so the
//! reconstruction error never accumulates.

/// Maximum supported decimal precision. `10^7` keeps every rounded weight
/// comfortably inside `i64` even for badly-scaled models.
pub const MAX_PRECISION: u8 = 7;

/// Encodes one signed integer into polyline ASCII chunks.
pub fn encode_int(mut value: i64, out: &mut Vec<u8>) {
    // Zig-zag: left-shift one bit, invert when negative.
    value = if value < 0 { !(value << 1) } else { value << 1 };
    let mut v = value as u64;
    while v >= 0x20 {
        out.push((0x20 | (v & 0x1F)) as u8 + 63);
        v >>= 5;
    }
    out.push(v as u8 + 63);
}

/// Decodes one signed integer; returns `(value, bytes_consumed)` or `None`
/// on truncated/corrupt input.
pub fn decode_int(bytes: &[u8]) -> Option<(i64, usize)> {
    let mut result: u64 = 0;
    let mut shift = 0u32;
    for (i, &b) in bytes.iter().enumerate() {
        let chunk = b.checked_sub(63)? as u64;
        result |= (chunk & 0x1F) << shift;
        if chunk & 0x20 == 0 {
            let v = result as i64;
            let value = if v & 1 != 0 { !(v >> 1) } else { v >> 1 };
            return Some((value, i + 1));
        }
        shift += 5;
        if shift > 63 {
            return None; // overflow: corrupt stream
        }
    }
    None // ran out of bytes mid-value
}

/// Rounds a float at `precision` decimal places to its integer lattice.
#[inline]
pub fn quantize(value: f32, precision: u8) -> i64 {
    let scale = 10f64.powi(precision as i32);
    (value as f64 * scale).round() as i64
}

/// Inverse of [`quantize`].
#[inline]
pub fn dequantize(value: i64, precision: u8) -> f32 {
    let scale = 10f64.powi(precision as i32);
    (value as f64 / scale) as f32
}

/// Encodes a float stream at the given precision.
///
/// `delta = true` reproduces the original polyline algorithm (differences
/// between consecutive rounded values); `delta = false` encodes each value
/// independently.
///
/// # Panics
/// Panics if `precision > MAX_PRECISION` or any value is non-finite.
pub fn encode_stream(values: &[f32], precision: u8, delta: bool) -> Vec<u8> {
    assert!(precision <= MAX_PRECISION, "precision {precision} too high");
    // Typical encoded weights need 2-3 bytes each at precision 4.
    let mut out = Vec::with_capacity(values.len() * 3);
    let mut prev = 0i64;
    for &v in values {
        assert!(v.is_finite(), "cannot polyline-encode non-finite value {v}");
        let q = quantize(v, precision);
        if delta {
            encode_int(q - prev, &mut out);
            prev = q;
        } else {
            encode_int(q, &mut out);
        }
    }
    out
}

/// Decodes a stream produced by [`encode_stream`]. Returns `None` on
/// corrupt input or if the stream does not hold exactly `count` values.
pub fn decode_stream(bytes: &[u8], count: usize, precision: u8, delta: bool) -> Option<Vec<f32>> {
    let mut out = Vec::with_capacity(count);
    let mut cursor = 0usize;
    let mut prev = 0i64;
    for _ in 0..count {
        let (v, used) = decode_int(&bytes[cursor..])?;
        cursor += used;
        let q = if delta {
            prev += v;
            prev
        } else {
            v
        };
        out.push(dequantize(q, precision));
    }
    if cursor == bytes.len() {
        Some(out)
    } else {
        None // trailing garbage
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The worked example from Google's polyline documentation:
    /// -179.9832104 (already rounded: -17998321) encodes to `` `~oia@ ``.
    /// We feed the rounded integer directly — the reference value has more
    /// significant digits than an `f32` carries.
    #[test]
    fn google_reference_vector() {
        let mut out = Vec::new();
        encode_int(-17_998_321, &mut out);
        assert_eq!(out, b"`~oia@");
        let (v, used) = decode_int(&out).unwrap();
        assert_eq!(used, 6);
        assert_eq!(v, -17_998_321);
    }

    /// Second reference: the polyline of points (38.5,-120.2),
    /// (40.7,-120.95), (43.252,-126.453) encodes to
    /// `_p~iF~ps|U_ulLnnqC_mqNvxq`@` in delta mode at precision 5.
    /// Checked on the rounded-integer stream for f32-precision independence.
    #[test]
    fn google_reference_polyline() {
        // Google deltas are per coordinate (lat chain and lng chain are
        // independent); the documented byte stream is the encoding of this
        // pre-differenced integer list.
        let deltas: [i64; 6] = [3_850_000, -12_020_000, 220_000, -75_000, 255_200, -550_300];
        let mut out = Vec::new();
        for &v in &deltas {
            encode_int(v, &mut out);
        }
        assert_eq!(out, b"_p~iF~ps|U_ulLnnqC_mqNvxq`@");
    }

    /// End-to-end f32 pair roundtrip at precision 5 (values chosen to be
    /// exactly representable so the byte stream is the documented one).
    #[test]
    fn f32_pair_roundtrips_through_delta_stream() {
        let enc = encode_stream(&[38.5, -120.25], 5, true);
        let dec = decode_stream(&enc, 2, 5, true).unwrap();
        assert!((dec[0] - 38.5).abs() < 1e-4);
        assert!((dec[1] + 120.25).abs() < 1e-4);
    }

    #[test]
    fn zero_encodes_to_one_byte() {
        let mut out = Vec::new();
        encode_int(0, &mut out);
        assert_eq!(out, b"?");
        assert_eq!(decode_int(&out).unwrap(), (0, 1));
    }

    #[test]
    fn int_roundtrip_extremes() {
        for v in [
            0i64,
            1,
            -1,
            31,
            -32,
            1_000_000,
            -1_000_000,
            i32::MAX as i64,
            i32::MIN as i64,
        ] {
            let mut out = Vec::new();
            encode_int(v, &mut out);
            let (d, used) = decode_int(&out).unwrap();
            assert_eq!(d, v);
            assert_eq!(used, out.len());
        }
    }

    #[test]
    fn output_is_printable_ascii() {
        let enc = encode_stream(&[1.5, -2.25, 0.0, 1e-4, -3.9], 5, true);
        assert!(
            enc.iter().all(|&b| (63..=126).contains(&b)),
            "non-printable byte in {enc:?}"
        );
    }

    #[test]
    fn stream_roundtrip_bounded_error() {
        let values: Vec<f32> = (0..500).map(|i| ((i as f32) * 0.7).sin() * 2.0).collect();
        for precision in 1..=6u8 {
            for delta in [false, true] {
                let enc = encode_stream(&values, precision, delta);
                let dec = decode_stream(&enc, values.len(), precision, delta).unwrap();
                // Half the lattice step plus f32 rounding slack of the
                // dequantized value.
                let tol = 0.5 * 10f32.powi(-(precision as i32)) * 1.01 + 2.0 * 4.0 * f32::EPSILON;
                for (o, d) in values.iter().zip(dec.iter()) {
                    assert!(
                        (o - d).abs() <= tol,
                        "precision {precision} delta {delta}: {o} vs {d}"
                    );
                }
            }
        }
    }

    #[test]
    fn delta_mode_error_does_not_accumulate() {
        // A long ramp is the worst case for naive delta-of-floats; the
        // rounded-integer delta must stay within one half-ULP of the lattice.
        let values: Vec<f32> = (0..10_000).map(|i| i as f32 * 1.00007).collect();
        let enc = encode_stream(&values, 3, true);
        let dec = decode_stream(&enc, values.len(), 3, true).unwrap();
        let last_err = (values[9999] - dec[9999]).abs();
        assert!(
            last_err <= 0.5e-3 * 1.5 + 1.0,
            "error accumulated: {last_err}"
        );
        // Relative check on a mid value too.
        assert!((values[5000] - dec[5000]).abs() / values[5000] < 1e-3);
    }

    #[test]
    fn higher_precision_costs_more_bytes() {
        let values: Vec<f32> = (0..200)
            .map(|i| ((i * 37 % 100) as f32 - 50.0) / 50.0)
            .collect();
        let p3 = encode_stream(&values, 3, false).len();
        let p6 = encode_stream(&values, 6, false).len();
        assert!(
            p6 > p3,
            "precision 6 ({p6} B) should exceed precision 3 ({p3} B)"
        );
    }

    #[test]
    fn decode_rejects_truncation_and_garbage() {
        let enc = encode_stream(&[1.0, 2.0, 3.0], 5, true);
        assert!(decode_stream(&enc[..enc.len() - 1], 3, 5, true).is_none());
        let mut padded = enc.clone();
        padded.push(b'?');
        assert!(decode_stream(&padded, 3, 5, true).is_none());
        assert!(
            decode_int(&[0x01]).is_none(),
            "byte below 63 must be rejected"
        );
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn nan_rejected() {
        let _ = encode_stream(&[f32::NAN], 4, true);
    }
}
