//! Reference-aware linear quantization at 4 or 8 bits per weight.
//!
//! The uplink transfers a *delta*: `d = w - reference` (the decoded
//! broadcast the client trained from), quantized linearly over the blob's
//! own `[lo, hi]` delta range. One local pass moves weights little, so the
//! delta range is narrow and the quantization step small — this is what
//! buys ≥4× (8-bit) / ≥8× (4-bit) uplink reduction at negligible accuracy
//! cost in `BENCH_codec.json`. Without a reference the codec quantizes the
//! weights directly (absolute mode, used on the shared downlink broadcast).
//!
//! ## Determinism
//!
//! Lossy but exactly reproducible per config: the range fold is serial, the
//! quantize/dequantize sweeps run on [`fedat_tensor::simd`] kernels that are
//! bit-identical across backends (`floor(x + 0.5)` rather than `round`,
//! because scalar `round` is half-away-from-zero while the vector rounding
//! instruction is half-to-even), and the sweep shards on fixed
//! [`CODEC_CHUNK`] boundaries, so worker count cannot change a byte.

use crate::codec::{
    check_reference, decode_reference, CodecError, CodecKind, CompressedBlob, WireCodec,
    CODEC_CHUNK,
};
use bytes::Bytes;
use fedat_tensor::parallel::{for_each_chunk, plan_threads};
use fedat_tensor::{scratch, simd};

/// Reference-aware linear quantizer; `bits` ∈ {4, 8}.
#[derive(Clone, Copy, Debug)]
pub struct QuantizedCodec {
    bits: u8,
}

impl QuantizedCodec {
    /// A quantizer at the given width.
    ///
    /// # Panics
    /// Panics unless `bits` is 4 or 8.
    pub fn new(bits: u8) -> Self {
        assert!(bits == 4 || bits == 8, "quantizer width {bits} unsupported");
        QuantizedCodec { bits }
    }

    /// Bits per encoded weight.
    pub fn bits(&self) -> u8 {
        self.bits
    }
}

fn levels(bits: u8) -> f32 {
    ((1u32 << bits) - 1) as f32
}

fn packed_len(count: usize, bits: u8) -> Option<usize> {
    match bits {
        8 => Some(count),
        4 => Some(count.div_ceil(2)),
        _ => None,
    }
}

/// Serial min/max fold over the delta (deterministic for any worker count
/// by virtue of being serial; it is a single cheap pass).
fn delta_range(d: &[f32]) -> (f32, f32) {
    let lo = d.iter().copied().fold(f32::INFINITY, f32::min);
    let hi = d.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    if lo.is_finite() && hi.is_finite() {
        if hi > lo {
            (lo, hi)
        } else {
            // Constant delta: park the range just above it so every value
            // lands on level 0 and decodes to exactly `lo`.
            (lo, lo + 1.0)
        }
    } else {
        (0.0, 1.0) // non-finite deltas: degenerate but deterministic
    }
}

impl WireCodec for QuantizedCodec {
    fn encode_with_ref(&self, weights: &[f32], reference: Option<&[f32]>) -> CompressedBlob {
        check_reference(weights, reference);
        let n = weights.len();
        let threads = plan_threads(n, 8);
        // Delta vs the reference (standing scratch buffers; recycled below).
        let mut delta_buf = Vec::new();
        let d: &[f32] = match reference {
            Some(r) => {
                delta_buf = scratch::take_zeroed(n);
                for_each_chunk(&mut delta_buf, CODEC_CHUNK, threads, |start, chunk| {
                    let end = start + chunk.len();
                    simd::sub_into(chunk, &weights[start..end], &r[start..end]);
                });
                &delta_buf
            }
            None => weights,
        };
        let (lo, hi) = delta_range(d);
        let lv = levels(self.bits);
        let scale = lv / (hi - lo);
        let mut q = scratch::take_zeroed(n);
        for_each_chunk(&mut q, CODEC_CHUNK, threads, |start, chunk| {
            simd::quantize_into(chunk, &d[start..start + chunk.len()], lo, scale, lv);
        });
        if !delta_buf.is_empty() {
            scratch::recycle(delta_buf);
        }
        // Byte packing: `q` holds exact small integers (NaN deltas clamp to
        // level 0 inside the kernel), so the cast is exact.
        let payload: Vec<u8> = match self.bits {
            8 => q.iter().map(|&v| v as u8).collect(),
            _ => q
                .chunks(2)
                .map(|pair| {
                    let lo_nib = pair[0] as u8 & 0x0F;
                    let hi_nib = pair.get(1).map_or(0, |&v| v as u8) & 0x0F;
                    lo_nib | (hi_nib << 4)
                })
                .collect(),
        };
        scratch::recycle(q);
        CompressedBlob {
            payload: Bytes::from(payload),
            count: n,
            kind: CodecKind::Quantized { bits: self.bits },
            aux: vec![lo, hi],
        }
    }

    fn try_decode_with_ref(
        &self,
        blob: &CompressedBlob,
        reference: Option<&[f32]>,
    ) -> Result<Vec<f32>, CodecError> {
        let bits = match blob.kind {
            CodecKind::Quantized { bits } if bits == 4 || bits == 8 => bits,
            CodecKind::Quantized { .. } => {
                return Err(CodecError::Malformed("unsupported quantizer width"))
            }
            _ => return Err(CodecError::WrongKind),
        };
        let n = blob.count;
        let reference = decode_reference(n, reference)?;
        if packed_len(n, bits) != Some(blob.payload.len()) {
            return Err(CodecError::Malformed("quantized payload size mismatch"));
        }
        if blob.aux.len() < 2 {
            return Err(CodecError::Malformed("quantized range missing"));
        }
        let (lo, hi) = (blob.aux[0], blob.aux[1]);
        let step = (hi - lo) / levels(bits);
        // Unpack to exact integer levels, then dequantize on the SIMD path.
        let mut q = scratch::take_empty(n);
        match bits {
            8 => q.extend(blob.payload.iter().map(|&b| b as f32)),
            _ => {
                for (i, &b) in blob.payload.iter().enumerate() {
                    q.push((b & 0x0F) as f32);
                    if 2 * i + 1 < n {
                        q.push((b >> 4) as f32);
                    }
                }
            }
        }
        let threads = plan_threads(n, 8);
        let mut out = vec![0.0f32; n];
        for_each_chunk(&mut out, CODEC_CHUNK, threads, |start, chunk| {
            let end = start + chunk.len();
            simd::affine_into(chunk, &q[start..end], step, lo);
            if let Some(r) = reference {
                simd::add_assign(chunk, &r[start..end]);
            }
        });
        scratch::recycle(q);
        Ok(out)
    }

    fn name(&self) -> String {
        format!("quantized{}", self.bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wiggly(n: usize) -> Vec<f32> {
        (0..n).map(|i| ((i as f32) * 0.23).sin() * 0.1).collect()
    }

    #[test]
    fn error_is_bounded_by_half_step() {
        for bits in [4u8, 8] {
            let w = wiggly(3000);
            let r: Vec<f32> = w.iter().map(|v| v * 0.98).collect();
            let c = QuantizedCodec::new(bits);
            let blob = c.encode_with_ref(&w, Some(&r));
            let back = c.decode_with_ref(&blob, Some(&r));
            let (lo, hi) = (blob.aux[0], blob.aux[1]);
            let step = (hi - lo) / levels(bits);
            for (a, b) in w.iter().zip(back.iter()) {
                assert!(
                    (a - b).abs() <= step * 0.51 + 1e-6,
                    "bits {bits}: {a} vs {b} (step {step})"
                );
            }
        }
    }

    #[test]
    fn wire_sizes_match_the_width() {
        let w = wiggly(1001);
        let b8 = QuantizedCodec::new(8).encode(&w);
        let b4 = QuantizedCodec::new(4).encode(&w);
        assert_eq!(b8.payload.len(), 1001);
        assert_eq!(b4.payload.len(), 501);
    }

    #[test]
    fn constant_delta_recovers_exactly() {
        let r = wiggly(64);
        let w: Vec<f32> = r.iter().map(|v| v + 0.125).collect();
        let c = QuantizedCodec::new(8);
        let back = c.decode_with_ref(&c.encode_with_ref(&w, Some(&r)), Some(&r));
        for (a, b) in w.iter().zip(back.iter()) {
            assert!((a - b).abs() <= 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn odd_count_nibble_packing_roundtrips() {
        let w = wiggly(7);
        let c = QuantizedCodec::new(4);
        let back = c.decode(&c.encode(&w));
        assert_eq!(back.len(), 7);
    }

    #[test]
    fn corrupt_blobs_error() {
        let c = QuantizedCodec::new(8);
        let mut blob = c.encode(&wiggly(50));
        blob.aux.clear();
        assert!(c.try_decode_with_ref(&blob, None).is_err());
        let mut short = c.encode(&wiggly(50));
        short.count = 60;
        assert!(c.try_decode_with_ref(&short, None).is_err());
        let weird = CompressedBlob {
            payload: Bytes::from(vec![0u8; 10]),
            count: 10,
            kind: CodecKind::Quantized { bits: 3 },
            aux: vec![0.0, 1.0],
        };
        assert!(c.try_decode_with_ref(&weird, None).is_err());
    }
}
