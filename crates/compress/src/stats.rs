//! Compression-quality accounting: ratio and reconstruction error.

use crate::codec::WireCodec;

/// Measured quality of one encode/decode cycle.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CompressionReport {
    /// Uncompressed size (4 bytes per value, no header).
    pub raw_bytes: usize,
    /// Wire size of the encoded blob (payload + header).
    pub wire_bytes: usize,
    /// `raw_bytes / wire_bytes` — the paper reports "up to 3.5×" for
    /// polyline on its models.
    pub ratio: f64,
    /// Largest absolute reconstruction error.
    pub max_abs_error: f32,
    /// Mean absolute reconstruction error.
    pub mean_abs_error: f32,
}

/// Runs one encode/decode cycle and reports size and error metrics.
///
/// # Panics
/// Panics if `weights` is empty.
pub fn measure(codec: &dyn WireCodec, weights: &[f32]) -> CompressionReport {
    assert!(!weights.is_empty(), "cannot measure an empty weight vector");
    let blob = codec.encode(weights);
    let decoded = codec.decode(&blob);
    let mut max_err = 0.0f32;
    let mut sum_err = 0.0f64;
    for (a, b) in weights.iter().zip(decoded.iter()) {
        let e = (a - b).abs();
        max_err = max_err.max(e);
        sum_err += e as f64;
    }
    let raw_bytes = weights.len() * 4;
    let wire_bytes = blob.wire_bytes();
    CompressionReport {
        raw_bytes,
        wire_bytes,
        ratio: raw_bytes as f64 / wire_bytes as f64,
        max_abs_error: max_err,
        mean_abs_error: (sum_err / weights.len() as f64) as f32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{NoCompression, PolylineCodec};

    #[test]
    fn raw_codec_reports_zero_error_and_subunit_ratio() {
        let w: Vec<f32> = (0..256).map(|i| i as f32 * 0.001).collect();
        let r = measure(&NoCompression, &w);
        assert_eq!(r.max_abs_error, 0.0);
        assert!(
            r.ratio < 1.0,
            "raw + header can never beat raw: {}",
            r.ratio
        );
    }

    #[test]
    fn polyline_ratio_grows_as_precision_drops() {
        let w: Vec<f32> = (0..4096)
            .map(|i| ((i as f32) * 0.01).sin() * 0.08)
            .collect();
        let r3 = measure(&PolylineCodec::new(3), &w);
        let r6 = measure(&PolylineCodec::new(6), &w);
        assert!(
            r3.ratio > r6.ratio,
            "p3 ratio {} ≤ p6 ratio {}",
            r3.ratio,
            r6.ratio
        );
        assert!(r3.max_abs_error > r6.max_abs_error);
    }

    #[test]
    fn typical_model_weights_reach_papers_ratio_band() {
        // Small-magnitude weights (the common case after Kaiming init +
        // training) at the paper's default precision 4: the paper claims up
        // to 3.5× — we assert a healthy > 1.8× here.
        let w: Vec<f32> = (0..50_000)
            .map(|i| ((i as f64 * 0.37).sin() * 0.03) as f32)
            .collect();
        let r = measure(&PolylineCodec::new(4), &w);
        assert!(r.ratio > 1.8, "ratio {} below expected band", r.ratio);
        assert!(r.max_abs_error <= 0.5e-4 * 1.01);
    }
}
