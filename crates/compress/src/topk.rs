//! Sparse top-k delta encoding.
//!
//! Only the `k = ⌈count · per_mille / 1000⌉` coordinates whose delta vs the
//! reference has the largest magnitude travel on the wire; every other
//! coordinate decodes back to the reference value. Selected coordinates
//! carry their *exact* weight bits (not the delta), so the update is
//! lossless where it matters and costs `varint(index gap) + 4` bytes per
//! selected weight.
//!
//! ## Determinism
//!
//! Selection is a total order — magnitude descending ([`f32::total_cmp`]),
//! index ascending on ties — so the selected set is unique regardless of
//! partition order, worker count, or backend; the magnitude sweep runs on
//! the bit-exact [`fedat_tensor::simd::abs_into`] kernel.

use crate::codec::{
    check_reference, decode_reference, CodecError, CodecKind, CompressedBlob, WireCodec,
    CODEC_CHUNK,
};
use bytes::Bytes;
use fedat_tensor::parallel::{for_each_chunk, plan_threads};
use fedat_tensor::{scratch, simd};

/// Selected weights for a blob of `count` values at `per_mille`.
pub fn k_for(count: usize, per_mille: u16) -> usize {
    if count == 0 {
        return 0;
    }
    (((count as u64 * per_mille as u64).div_ceil(1000)) as usize).clamp(1, count)
}

fn push_varint(mut v: u64, out: &mut Vec<u8>) {
    while v >= 0x80 {
        out.push(0x80 | (v & 0x7F) as u8);
        v >>= 7;
    }
    out.push(v as u8);
}

fn read_varint(bytes: &[u8], cursor: &mut usize) -> Result<u64, CodecError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *bytes
            .get(*cursor)
            .ok_or(CodecError::Malformed("truncated varint"))?;
        *cursor += 1;
        v |= ((b & 0x7F) as u64) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(CodecError::Malformed("varint overflow"));
        }
    }
}

/// Error-feedback accumulator for one uplink sender (EF-TopK).
///
/// Pure top-k sparsification *silently drops* the unselected coordinates
/// every round; a coordinate whose per-round delta never cracks the top k
/// simply stops training, and accuracy collapses as `per_mille` shrinks.
/// Error feedback is the standard fix: the dropped mass is carried as a
/// *residual* and added back before the next round's selection, so
/// suppressed coordinates accumulate until they win a slot — updates
/// arrive late, never never.
///
/// Per upload: `compensated = weights + residual`, the codec encodes
/// `compensated` against the shared reference, and the new residual is
/// `compensated − decoded` — which is exactly `+0.0` at every transmitted
/// coordinate (the wire carries the exact f32 bits of the compensated
/// value) and the suppressed displacement elsewhere.
///
/// ## Determinism
///
/// Both steps are elementwise f32 arithmetic in index order — no
/// reductions, no partition sensitivity — so the residual sequence is a
/// pure function of the upload sequence and is bit-identical across
/// kernels, thread counts, and execution modes. One accumulator serves one
/// sender: the transport layer keys them per client.
#[derive(Clone, Debug, Default)]
pub struct ErrorFeedback {
    residual: Vec<f32>,
}

impl ErrorFeedback {
    /// A fresh accumulator with no carried error.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns `weights + residual`, the vector the codec should encode.
    /// A model-size change (never expected mid-run) voids the residual.
    pub fn compensate(&mut self, weights: &[f32]) -> Vec<f32> {
        if self.residual.len() != weights.len() {
            self.residual = vec![0.0; weights.len()];
        }
        weights
            .iter()
            .zip(self.residual.iter())
            .map(|(w, r)| w + r)
            .collect()
    }

    /// Stores `compensated − decoded` as the next upload's residual.
    ///
    /// # Panics
    /// Panics if the lengths disagree.
    pub fn absorb(&mut self, compensated: &[f32], decoded: &[f32]) {
        assert_eq!(
            compensated.len(),
            decoded.len(),
            "encode/decode length mismatch"
        );
        self.residual.clear();
        self.residual
            .extend(compensated.iter().zip(decoded.iter()).map(|(c, d)| c - d));
    }

    /// The currently carried residual (empty before the first upload).
    pub fn residual(&self) -> &[f32] {
        &self.residual
    }
}

/// The sparse top-k wire codec. See the module docs for the format.
#[derive(Clone, Copy, Debug)]
pub struct TopKCodec {
    per_mille: u16,
}

impl TopKCodec {
    /// Keeps the top `per_mille`/1000 of coordinates by delta magnitude.
    ///
    /// # Panics
    /// Panics unless `1 <= per_mille <= 1000`.
    pub fn new(per_mille: u16) -> Self {
        assert!(
            (1..=1000).contains(&per_mille),
            "per_mille {per_mille} out of range"
        );
        TopKCodec { per_mille }
    }

    /// Selected fraction in thousandths.
    pub fn per_mille(&self) -> u16 {
        self.per_mille
    }
}

impl WireCodec for TopKCodec {
    fn encode_with_ref(&self, weights: &[f32], reference: Option<&[f32]>) -> CompressedBlob {
        check_reference(weights, reference);
        let n = weights.len();
        let k = k_for(n, self.per_mille);
        let threads = plan_threads(n, 8);
        // Magnitude of the delta (or of the weights when no reference).
        let mut mag = scratch::take_zeroed(n);
        for_each_chunk(&mut mag, CODEC_CHUNK, threads, |start, chunk| {
            let end = start + chunk.len();
            match reference {
                Some(r) => {
                    simd::sub_into(chunk, &weights[start..end], &r[start..end]);
                    let copy: Vec<f32> = chunk.to_vec();
                    simd::abs_into(chunk, &copy);
                }
                None => simd::abs_into(chunk, &weights[start..end]),
            }
        });
        // Unique selection: magnitude descending, index ascending on ties.
        let mut idx: Vec<u32> = (0..n as u32).collect();
        let by_magnitude =
            |a: &u32, b: &u32| mag[*b as usize].total_cmp(&mag[*a as usize]).then(a.cmp(b));
        if k < n {
            idx.select_nth_unstable_by(k - 1, by_magnitude);
            idx.truncate(k);
        }
        scratch::recycle(mag);
        idx.sort_unstable();
        let mut payload = Vec::with_capacity(k * 6);
        let mut prev = 0u64;
        for &i in &idx {
            push_varint(i as u64 - prev, &mut payload);
            payload.extend_from_slice(&weights[i as usize].to_le_bytes());
            prev = i as u64 + 1;
        }
        CompressedBlob {
            payload: Bytes::from(payload),
            count: n,
            kind: CodecKind::TopK {
                per_mille: self.per_mille,
            },
            aux: Vec::new(),
        }
    }

    fn try_decode_with_ref(
        &self,
        blob: &CompressedBlob,
        reference: Option<&[f32]>,
    ) -> Result<Vec<f32>, CodecError> {
        let per_mille = match blob.kind {
            CodecKind::TopK { per_mille } if (1..=1000).contains(&per_mille) => per_mille,
            CodecKind::TopK { .. } => return Err(CodecError::Malformed("per_mille out of range")),
            _ => return Err(CodecError::WrongKind),
        };
        let n = blob.count;
        let reference = decode_reference(n, reference)?;
        let k = k_for(n, per_mille);
        // Parse before allocating the output: k entries cost ≥5 bytes each.
        if blob.payload.len() < k.saturating_mul(5) {
            return Err(CodecError::Malformed("top-k payload too short"));
        }
        let mut out = match reference {
            Some(r) => r.to_vec(),
            None => vec![0.0f32; n],
        };
        let mut cursor = 0usize;
        let mut prev = 0u64;
        for _ in 0..k {
            let gap = read_varint(&blob.payload, &mut cursor)?;
            let i = prev
                .checked_add(gap)
                .ok_or(CodecError::Malformed("index overflow"))?;
            if i >= n as u64 {
                return Err(CodecError::Malformed("index out of range"));
            }
            let b = blob
                .payload
                .get(cursor..cursor + 4)
                .ok_or(CodecError::Malformed("truncated value"))?;
            cursor += 4;
            out[i as usize] = f32::from_le_bytes([b[0], b[1], b[2], b[3]]);
            prev = i + 1;
        }
        if cursor != blob.payload.len() {
            return Err(CodecError::Malformed("trailing bytes after k entries"));
        }
        Ok(out)
    }

    fn name(&self) -> String {
        format!("topk-{}pm", self.per_mille)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wiggly(n: usize) -> Vec<f32> {
        (0..n).map(|i| ((i as f32) * 0.41).sin() * 0.3).collect()
    }

    #[test]
    fn selected_coordinates_are_exact_rest_are_reference() {
        let r = wiggly(2000);
        let mut w = r.clone();
        // Push 20 spikes well above the background delta (which is zero).
        for s in 0..20 {
            w[s * 97] += 1.0 + s as f32;
        }
        let c = TopKCodec::new(10); // 1% of 2000 = 20
        let blob = c.encode_with_ref(&w, Some(&r));
        let back = c.decode_with_ref(&blob, Some(&r));
        for s in 0..20 {
            let i = s * 97;
            assert_eq!(back[i].to_bits(), w[i].to_bits(), "spike {i} not exact");
        }
        for (i, (b, rr)) in back.iter().zip(r.iter()).enumerate() {
            if i % 97 != 0 || i / 97 >= 20 {
                assert_eq!(b.to_bits(), rr.to_bits(), "coord {i} not reference");
            }
        }
    }

    #[test]
    fn k_formula_is_pinned() {
        assert_eq!(k_for(0, 100), 0);
        assert_eq!(k_for(1, 1), 1);
        assert_eq!(k_for(1000, 50), 50);
        assert_eq!(k_for(1001, 50), 51); // ceiling
        assert_eq!(k_for(10, 1000), 10);
    }

    #[test]
    fn no_reference_decodes_against_zeros() {
        let w = wiggly(500);
        let c = TopKCodec::new(1000); // keep everything
        let back = c.decode(&c.encode(&w));
        for (a, b) in w.iter().zip(back.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn ties_break_toward_lower_indices() {
        // Four equal-magnitude values; k = 1 must pick index 0.
        let w = vec![0.5f32, 0.5, 0.5, 0.5];
        let c = TopKCodec::new(250);
        let blob = c.encode(&w);
        let back = c.decode(&blob);
        assert_eq!(back[0], 0.5);
        assert_eq!(&back[1..], &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn corrupt_blobs_error() {
        let c = TopKCodec::new(100);
        let good = c.encode(&wiggly(100));
        let mut cut = good.clone();
        cut.payload = cut.payload.slice(0..cut.payload.len() - 2);
        assert!(c.try_decode_with_ref(&cut, None).is_err());
        let mut grown = good.clone();
        grown.count = 5;
        assert!(c.try_decode_with_ref(&grown, None).is_err());
        let mut bad_pm = good;
        bad_pm.kind = CodecKind::TopK { per_mille: 0 };
        assert!(c.try_decode_with_ref(&bad_pm, None).is_err());
    }

    #[test]
    fn error_feedback_accumulates_and_clears() {
        let mut fb = ErrorFeedback::new();
        assert!(fb.residual().is_empty());
        // Coordinate 0 is "suppressed" (decoded kept the reference 0.0),
        // coordinate 1 transmitted exactly.
        let c1 = fb.compensate(&[1.0, 2.0]);
        assert_eq!(c1, vec![1.0, 2.0]);
        fb.absorb(&c1, &[0.0, 2.0]);
        assert_eq!(fb.residual(), &[1.0, 0.0]);
        // The carried error re-offers the suppressed coordinate.
        let c2 = fb.compensate(&[1.0, 2.0]);
        assert_eq!(c2, vec![2.0, 2.0]);
        // A model-size change voids the stale residual.
        let c3 = fb.compensate(&[5.0, 5.0, 5.0]);
        assert_eq!(c3, vec![5.0, 5.0, 5.0]);
        assert_eq!(fb.residual(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn varint_roundtrips() {
        for v in [0u64, 1, 127, 128, 300, 1 << 20, u32::MAX as u64] {
            let mut out = Vec::new();
            push_varint(v, &mut out);
            let mut cursor = 0;
            assert_eq!(read_varint(&out, &mut cursor).unwrap(), v);
            assert_eq!(cursor, out.len());
        }
    }
}
