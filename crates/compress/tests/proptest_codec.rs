//! Property-based tests for the polyline wire format and codecs.

use fedat_compress::codec::{Codec, NoCompression, PolylineCodec, QuantizeCodec};
use fedat_compress::polyline::{decode_int, decode_stream, encode_int, encode_stream};
use proptest::prelude::*;

proptest! {
    #[test]
    fn int_roundtrip(v in -1_000_000_000i64..1_000_000_000) {
        let mut out = Vec::new();
        encode_int(v, &mut out);
        let (d, used) = decode_int(&out).unwrap();
        prop_assert_eq!(d, v);
        prop_assert_eq!(used, out.len());
        prop_assert!(out.iter().all(|&b| (63..=126).contains(&b)));
    }

    #[test]
    fn stream_roundtrip_error_bound(
        values in prop::collection::vec(-100.0f32..100.0, 1..200),
        precision in 1u8..=6,
        delta in any::<bool>(),
    ) {
        let enc = encode_stream(&values, precision, delta);
        let dec = decode_stream(&enc, values.len(), precision, delta).unwrap();
        let tol = 0.5 * 10f32.powi(-(precision as i32)) * 1.02
            + 100.0 * f32::EPSILON; // f64→f32 rounding slack at large magnitudes
        for (a, b) in values.iter().zip(dec.iter()) {
            prop_assert!((a - b).abs() <= tol, "{} vs {} (p{})", a, b, precision);
        }
    }

    #[test]
    fn encoding_is_deterministic(values in prop::collection::vec(-10.0f32..10.0, 1..100)) {
        let a = encode_stream(&values, 4, true);
        let b = encode_stream(&values, 4, true);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn polyline_idempotent_after_first_loss(
        values in prop::collection::vec(-5.0f32..5.0, 1..100),
        precision in 1u8..=5,
    ) {
        // Encoding an already-quantized stream must be lossless: the codec's
        // loss is idempotent.
        let c = PolylineCodec::new(precision);
        let once = c.decode(&c.encode(&values));
        let twice = c.decode(&c.encode(&once));
        for (a, b) in once.iter().zip(twice.iter()) {
            prop_assert!((a - b).abs() <= f32::EPSILON * 10.0, "{} vs {}", a, b);
        }
    }

    #[test]
    fn raw_codec_is_lossless(values in prop::collection::vec(any::<f32>().prop_filter("finite", |v| v.is_finite()), 1..100)) {
        let c = NoCompression;
        prop_assert_eq!(c.decode(&c.encode(&values)), values);
    }

    #[test]
    fn quantize_error_bounded_by_dynamic_range(values in prop::collection::vec(-50.0f32..50.0, 2..200)) {
        let c = QuantizeCodec;
        let dec = c.decode(&c.encode(&values));
        let lo = values.iter().copied().fold(f32::INFINITY, f32::min);
        let hi = values.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let step = ((hi - lo) / 255.0).max(f32::EPSILON);
        for (a, b) in values.iter().zip(dec.iter()) {
            prop_assert!((a - b).abs() <= step * 0.51 + 1e-5, "{} vs {} step {}", a, b, step);
        }
    }

    #[test]
    fn wire_size_monotone_in_value_count(
        base in prop::collection::vec(-1.0f32..1.0, 10..50),
    ) {
        let c = PolylineCodec::new(4);
        let small = c.encode(&base).wire_bytes();
        let mut doubled = base.clone();
        doubled.extend_from_slice(&base);
        let large = c.encode(&doubled).wire_bytes();
        prop_assert!(large > small);
    }
}
