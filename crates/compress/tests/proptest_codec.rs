//! Property-based tests for the polyline wire format and every codec in
//! the [`WireCodec`] family: lossless round-trips are bitwise (including
//! `-0.0`, subnormals, `3e38`, and NaN payloads — mirroring the LEAF writer
//! tests), lossy round-trips bound max per-weight error by the configured
//! precision, and arbitrary bytes never panic a decoder.

use bytes::Bytes;
use fedat_compress::codec::{
    codec_for, CodecKind, CompressedBlob, NoCompression, PolylineCodec, QuantizeCodec, WireCodec,
    BLOB_HEADER_BYTES,
};
use fedat_compress::polyline::{decode_int, decode_stream, encode_int, encode_stream};
use fedat_compress::quantized::QuantizedCodec;
use fedat_compress::topk::{k_for, ErrorFeedback, TopKCodec};
use fedat_compress::DeltaRleCodec;
use proptest::prelude::*;

/// Fully arbitrary `f32` bit patterns: normals, subnormals, ±0, ±inf, NaNs
/// with payloads — the lossless codecs must round-trip all of them.
fn any_bits_vec(len: impl Into<prop::collection::SizeRange>) -> BoxedStrategy<Vec<f32>> {
    prop::collection::vec(any::<u32>().prop_map(f32::from_bits), len).boxed()
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// The boundary specials every lossless strategy run must include at least
/// once (prepended rather than hoped-for): -0.0, a subnormal, and 3e38.
fn with_specials(mut v: Vec<f32>) -> Vec<f32> {
    v.extend_from_slice(&[-0.0, f32::MIN_POSITIVE / 4.0, 3e38, -3e38]);
    v
}

proptest! {
    #[test]
    fn int_roundtrip(v in -1_000_000_000i64..1_000_000_000) {
        let mut out = Vec::new();
        encode_int(v, &mut out);
        let (d, used) = decode_int(&out).unwrap();
        prop_assert_eq!(d, v);
        prop_assert_eq!(used, out.len());
        prop_assert!(out.iter().all(|&b| (63..=126).contains(&b)));
    }

    #[test]
    fn stream_roundtrip_error_bound(
        values in prop::collection::vec(-100.0f32..100.0, 1..200),
        precision in 1u8..=6,
        delta in any::<bool>(),
    ) {
        let enc = encode_stream(&values, precision, delta);
        let dec = decode_stream(&enc, values.len(), precision, delta).unwrap();
        let tol = 0.5 * 10f32.powi(-(precision as i32)) * 1.02
            + 100.0 * f32::EPSILON; // f64→f32 rounding slack at large magnitudes
        for (a, b) in values.iter().zip(dec.iter()) {
            prop_assert!((a - b).abs() <= tol, "{} vs {} (p{})", a, b, precision);
        }
    }

    #[test]
    fn encoding_is_deterministic(values in prop::collection::vec(-10.0f32..10.0, 1..100)) {
        let a = encode_stream(&values, 4, true);
        let b = encode_stream(&values, 4, true);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn polyline_idempotent_after_first_loss(
        values in prop::collection::vec(-5.0f32..5.0, 1..100),
        precision in 1u8..=5,
    ) {
        // Encoding an already-quantized stream must be lossless: the codec's
        // loss is idempotent.
        let c = PolylineCodec::new(precision);
        let once = c.decode(&c.encode(&values));
        let twice = c.decode(&c.encode(&once));
        for (a, b) in once.iter().zip(twice.iter()) {
            prop_assert!((a - b).abs() <= f32::EPSILON * 10.0, "{} vs {}", a, b);
        }
    }

    #[test]
    fn raw_codec_is_bitwise_lossless(values in any_bits_vec(0..100)) {
        let values = with_specials(values);
        let c = NoCompression;
        let blob = c.encode(&values);
        prop_assert_eq!(blob.wire_bytes(), BLOB_HEADER_BYTES + 4 * values.len());
        prop_assert_eq!(bits(&c.decode(&blob)), bits(&values));
    }

    #[test]
    fn delta_rle_is_bitwise_lossless(values in any_bits_vec(0..300)) {
        let values = with_specials(values);
        let c = DeltaRleCodec;
        prop_assert_eq!(bits(&c.decode(&c.encode(&values))), bits(&values));
    }

    #[test]
    fn delta_rle_is_bitwise_lossless_against_reference(
        values in any_bits_vec(1..300),
        seed in any::<u32>(),
    ) {
        let values = with_specials(values);
        // A reference with its own arbitrary-ish bit patterns.
        let reference: Vec<f32> = values
            .iter()
            .enumerate()
            .map(|(i, v)| f32::from_bits(v.to_bits() ^ seed.rotate_left(i as u32)))
            .collect();
        let c = DeltaRleCodec;
        let blob = c.encode_with_ref(&values, Some(&reference));
        let back = c.decode_with_ref(&blob, Some(&reference));
        prop_assert_eq!(bits(&back), bits(&values));
    }

    #[test]
    fn quantize_error_bounded_by_dynamic_range(values in prop::collection::vec(-50.0f32..50.0, 2..200)) {
        let c = QuantizeCodec;
        let dec = c.decode(&c.encode(&values));
        let lo = values.iter().copied().fold(f32::INFINITY, f32::min);
        let hi = values.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let step = ((hi - lo) / 255.0).max(f32::EPSILON);
        for (a, b) in values.iter().zip(dec.iter()) {
            prop_assert!((a - b).abs() <= step * 0.51 + 1e-5, "{} vs {} step {}", a, b, step);
        }
    }

    #[test]
    fn quantized_error_bounded_by_width(
        values in prop::collection::vec(-2.0f32..2.0, 1..300),
        deltas in prop::collection::vec(-0.05f32..0.05, 300),
        wide in any::<bool>(),
    ) {
        let bits_cfg = if wide { 8u8 } else { 4 };
        let reference = values.clone();
        let weights: Vec<f32> = values
            .iter()
            .zip(deltas.iter())
            .map(|(v, d)| v + d)
            .collect();
        let c = QuantizedCodec::new(bits_cfg);
        let blob = c.encode_with_ref(&weights, Some(&reference));
        let back = c.decode_with_ref(&blob, Some(&reference));
        let levels = ((1u32 << bits_cfg) - 1) as f32;
        let step = (blob.aux[1] - blob.aux[0]) / levels;
        // Half a step of quantization error plus float slack from the two
        // rounded adds (delta and reconstruction).
        let tol = step * 0.51 + 1e-5;
        for (a, b) in weights.iter().zip(back.iter()) {
            prop_assert!((a - b).abs() <= tol, "{} vs {} (step {}, b{})", a, b, step, bits_cfg);
        }
    }

    #[test]
    fn topk_is_reference_except_k_exact_coords(
        reference in prop::collection::vec(-1.0f32..1.0, 10..200),
        per_mille in 1u16..=1000,
        seed in any::<u64>(),
    ) {
        let n = reference.len();
        let weights: Vec<f32> = reference
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let h = (seed ^ i as u64).wrapping_mul(0x9E3779B97F4A7C15);
                r + ((h >> 40) as f32 / (1u64 << 24) as f32 - 0.5) * 0.2
            })
            .collect();
        let c = TopKCodec::new(per_mille);
        let blob = c.encode_with_ref(&weights, Some(&reference));
        let back = c.decode_with_ref(&blob, Some(&reference));
        let k = k_for(n, per_mille);
        let mut exact = 0usize;
        for i in 0..n {
            if back[i].to_bits() == weights[i].to_bits() {
                exact += 1;
            } else {
                // Unselected coordinates decode to the reference, bitwise.
                prop_assert_eq!(back[i].to_bits(), reference[i].to_bits(), "coord {}", i);
            }
        }
        // At least k coords are exact (more if reference coords equal the
        // weight by chance).
        prop_assert!(exact >= k, "{} exact < k {}", exact, k);
    }

    #[test]
    fn error_feedback_residual_is_exactly_compensated_minus_decoded(
        reference in prop::collection::vec(-1.0f32..1.0, 8..120),
        per_mille in 1u16..=1000,
        seed in any::<u64>(),
        rounds in 1usize..5,
    ) {
        let n = reference.len();
        let c = TopKCodec::new(per_mille);
        let mut fb = ErrorFeedback::new();
        for round in 0..rounds {
            let weights: Vec<f32> = reference
                .iter()
                .enumerate()
                .map(|(i, r)| {
                    let h = (seed ^ ((round as u64) << 32) ^ i as u64)
                        .wrapping_mul(0x9E3779B97F4A7C15);
                    r + ((h >> 40) as f32 / (1u64 << 24) as f32 - 0.5) * 0.2
                })
                .collect();
            let compensated = fb.compensate(&weights);
            let blob = c.encode_with_ref(&compensated, Some(&reference));
            let decoded = c.decode_with_ref(&blob, Some(&reference));
            fb.absorb(&compensated, &decoded);
            for i in 0..n {
                // The invariant the accumulator exists for, bitwise.
                prop_assert_eq!(
                    fb.residual()[i].to_bits(),
                    (compensated[i] - decoded[i]).to_bits(),
                    "coord {} round {}", i, round
                );
                // Transmitted coordinates carry exact bits, so their
                // residual clears to +0.0 exactly.
                if decoded[i].to_bits() == compensated[i].to_bits() {
                    prop_assert_eq!(
                        fb.residual()[i].to_bits(), 0u32,
                        "transmitted coord {} must clear", i
                    );
                }
            }
        }
    }

    #[test]
    fn error_feedback_pipeline_is_bitwise_deterministic(
        reference in prop::collection::vec(-1.0f32..1.0, 8..120),
        per_mille in 1u16..=500,
        seed in any::<u64>(),
    ) {
        let c = TopKCodec::new(per_mille);
        let run = || {
            let mut fb = ErrorFeedback::new();
            let mut outputs: Vec<Vec<u32>> = Vec::new();
            for round in 0u64..4 {
                let weights: Vec<f32> = reference
                    .iter()
                    .enumerate()
                    .map(|(i, r)| {
                        let h = (seed ^ (round << 32) ^ i as u64)
                            .wrapping_mul(0x9E3779B97F4A7C15);
                        r + ((h >> 40) as f32 / (1u64 << 24) as f32 - 0.5) * 0.2
                    })
                    .collect();
                let compensated = fb.compensate(&weights);
                let blob = c.encode_with_ref(&compensated, Some(&reference));
                let decoded = c.decode_with_ref(&blob, Some(&reference));
                fb.absorb(&compensated, &decoded);
                outputs.push(bits(&decoded));
                outputs.push(bits(fb.residual()));
            }
            outputs
        };
        prop_assert_eq!(run(), run(), "same upload sequence, different bits");
    }

    #[test]
    fn error_feedback_at_full_density_is_lossless_with_zero_residual(
        weights in prop::collection::vec(-3.0f32..3.0, 1..150),
        seed in any::<u32>(),
    ) {
        // per_mille = 1000 keeps every coordinate: the roundtrip is exact
        // and nothing is ever carried.
        let reference: Vec<f32> = weights
            .iter()
            .enumerate()
            .map(|(i, w)| w + ((seed ^ i as u32) % 7) as f32 * 0.01)
            .collect();
        let c = TopKCodec::new(1000);
        let mut fb = ErrorFeedback::new();
        let compensated = fb.compensate(&weights);
        prop_assert_eq!(&compensated, &weights, "fresh accumulator must be the identity");
        let blob = c.encode_with_ref(&compensated, Some(&reference));
        let decoded = c.decode_with_ref(&blob, Some(&reference));
        prop_assert_eq!(bits(&decoded), bits(&compensated));
        fb.absorb(&compensated, &decoded);
        prop_assert!(
            fb.residual().iter().all(|r| r.to_bits() == 0),
            "lossless roundtrip left a residual"
        );
    }

    #[test]
    fn arbitrary_bytes_never_panic_any_decoder(
        payload in prop::collection::vec(any::<u8>(), 0..600),
        aux in prop::collection::vec(any::<u32>().prop_map(f32::from_bits), 0..4),
        count in 0usize..600,
        kind_sel in 0usize..8,
        with_ref in any::<bool>(),
    ) {
        let kinds = [
            CodecKind::None,
            CodecKind::Polyline { precision: 4, delta: true },
            CodecKind::QuantizeI8,
            CodecKind::DeltaRle,
            CodecKind::Quantized { bits: 8 },
            CodecKind::Quantized { bits: 4 },
            CodecKind::TopK { per_mille: 100 },
            CodecKind::TopK { per_mille: 1000 },
        ];
        let kind = kinds[kind_sel];
        let blob = CompressedBlob {
            payload: Bytes::from(payload),
            count,
            kind,
            aux,
        };
        let reference = vec![0.25f32; count];
        let r = if with_ref { Some(reference.as_slice()) } else { None };
        for probe in kinds {
            // Every decoder must return (Ok or Err), never panic, on every
            // kind/byte combination — including mismatched kinds.
            let _ = codec_for(probe).try_decode_with_ref(&blob, r);
        }
    }

    #[test]
    fn wire_size_monotone_in_value_count(
        base in prop::collection::vec(-1.0f32..1.0, 10..50),
    ) {
        let c = PolylineCodec::new(4);
        let small = c.encode(&base).wire_bytes();
        let mut doubled = base.clone();
        doubled.extend_from_slice(&base);
        let large = c.encode(&doubled).wire_bytes();
        prop_assert!(large > small);
    }
}
