//! Model aggregation: intra-tier `n_k/N_c` averaging (Algorithm 2 inner
//! loop) and the cross-tier weighted heuristic of Eq. (5).
//!
//! Both reductions funnel into [`weighted_sum_into`], whose default kernel
//! shards the model dimension into fixed cache-sized chunks on the kernel
//! pool — so every strategy's server-side aggregation scales with cohort
//! size while staying bit-identical to the serial baseline for any thread
//! count (see `fedat_tensor::ops::AggKernel`).

use fedat_tensor::ops::{robust_reduce_into, weighted_sum_into, RobustRule};
use serde::{Deserialize, Serialize};

/// How client updates are combined into a (tier-)round average.
///
/// `WeightedMean` is the paper's `n_k/N_c` rule; the robust rules trade its
/// sample weighting for resistance to corrupted updates (the standard
/// Byzantine-robust estimators are unweighted order statistics). All three
/// are bit-identical across AggKernel × SimdKernel × thread counts, and the
/// robust rules are additionally invariant under client-update permutation
/// (see `fedat_tensor::ops::robust_reduce_into` for the argument).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub enum AggRule {
    /// Sample-count-weighted mean (`Σ_k (n_k/N_c) · w_k`) — the default.
    #[default]
    WeightedMean,
    /// Per-coordinate trimmed mean: drop the `⌊frac·k⌋` smallest and
    /// largest values at each coordinate, average the rest.
    TrimmedMean {
        /// Fraction trimmed from *each* end, in `[0, 0.5)`.
        frac: f64,
    },
    /// Per-coordinate median (even counts average the two middle values).
    CoordinateMedian,
}

/// Aggregates client updates under the configured [`AggRule`], written into
/// a reusable buffer.
///
/// `WeightedMean` delegates to [`weighted_client_average_into`]; the robust
/// rules ignore the sample counts and take the per-coordinate order
/// statistic over the raw updates (`TrimmedMean`'s trim count is clamped so
/// at least one value survives per coordinate). A single update passes
/// through every rule unchanged up to rounding (the robust rules return it
/// bitwise).
///
/// # Panics
/// Panics if `updates` is empty or lengths mismatch.
pub fn aggregate_clients_into(rule: AggRule, updates: &[(&[f32], usize)], out: &mut Vec<f32>) {
    assert!(!updates.is_empty(), "cannot aggregate zero client updates");
    match rule {
        AggRule::WeightedMean => weighted_client_average_into(updates, out),
        AggRule::TrimmedMean { frac } => {
            let k = updates.len();
            let trim = ((frac.max(0.0) * k as f64).floor() as usize).min((k - 1) / 2);
            let inputs: Vec<&[f32]> = updates.iter().map(|(w, _)| *w).collect();
            out.clear();
            out.resize(inputs[0].len(), 0.0);
            robust_reduce_into(&inputs, RobustRule::TrimmedMean { trim }, out);
        }
        AggRule::CoordinateMedian => {
            let inputs: Vec<&[f32]> = updates.iter().map(|(w, _)| *w).collect();
            out.clear();
            out.resize(inputs[0].len(), 0.0);
            robust_reduce_into(&inputs, RobustRule::Median, out);
        }
    }
}

/// Sample-count-weighted average of client weight vectors, written into a
/// reusable buffer: `out = Σ_k (n_k / N_c) · w_k` — the FedAvg/TiFL/FedAT
/// intra-tier rule. `out` is resized to the model dimension; strategies keep
/// one buffer per tier and aggregate every round without allocating.
///
/// Guard-layer contract: this function trusts its inputs. Finiteness and
/// magnitude screening happen upstream, per update, as each uplink lands
/// (`GuardPolicy` in the strategy completion path) — a single NaN/Inf or
/// magnitude-exploded update reaching this sum poisons every output
/// coordinate, which is exactly what `AggRule`'s robust alternatives and
/// the guard's reject/clip screens exist to prevent. With the default
/// (inert) guard the caller gets the paper's behavior: whatever the clients
/// sent is averaged verbatim.
///
/// # Panics
/// Panics if `updates` is empty or lengths mismatch.
pub fn weighted_client_average_into(updates: &[(&[f32], usize)], out: &mut Vec<f32>) {
    assert!(!updates.is_empty(), "cannot aggregate zero client updates");
    let total: usize = updates.iter().map(|(_, n)| *n).sum();
    assert!(total > 0, "client updates carry zero samples");
    let dim = updates[0].0.len();
    let inputs: Vec<&[f32]> = updates.iter().map(|(w, _)| *w).collect();
    let weights: Vec<f32> = updates
        .iter()
        .map(|(_, n)| *n as f32 / total as f32)
        .collect();
    out.clear();
    out.resize(dim, 0.0);
    weighted_sum_into(&inputs, &weights, out);
}

/// Allocating convenience wrapper around [`weighted_client_average_into`].
pub fn weighted_client_average(updates: &[(&[f32], usize)]) -> Vec<f32> {
    let mut out = Vec::new();
    weighted_client_average_into(updates, &mut out);
    out
}

/// The FedAT cross-tier weights of Eq. (5).
///
/// With per-tier update counts `T_tier1..T_tierM` (tier 1 = fastest) and
/// `T = Σ T_tierm`, tier `m` receives weight `T_{tier(M+1−m)} / T`: the
/// slowest tier inherits the *fastest* tier's (largest) update count, undoing
/// the frequency bias of asynchronous tier arrivals.
///
/// Before any update has happened (`T = 0`) the weights are uniform.
pub fn cross_tier_weights(update_counts: &[u64]) -> Vec<f32> {
    assert!(!update_counts.is_empty(), "no tiers");
    let m = update_counts.len();
    let total: u64 = update_counts.iter().sum();
    if total == 0 {
        return vec![1.0 / m as f32; m];
    }
    // weight[m] = counts[M+1-m] reversed, normalized.
    let mut w: Vec<f32> = (0..m)
        .map(|i| update_counts[m - 1 - i] as f32 / total as f32)
        .collect();
    // Guard against degenerate all-zero-but-total>0 (cannot happen, but keep
    // the invariant Σw = 1 robust to float error).
    let sum: f32 = w.iter().sum();
    if sum > 0.0 {
        for v in w.iter_mut() {
            *v /= sum;
        }
    } else {
        w = vec![1.0 / m as f32; m];
    }
    w
}

/// Uniform cross-tier weights — the Fig. 6 baseline.
pub fn uniform_tier_weights(num_tiers: usize) -> Vec<f32> {
    assert!(num_tiers > 0, "no tiers");
    vec![1.0 / num_tiers as f32; num_tiers]
}

/// Combines per-tier server models into the global model
/// (`WeightedAverage` in Algorithm 2), written into a reusable buffer —
/// the FedAT server aggregates into its standing global vector every tier
/// round without allocating.
///
/// # Panics
/// Panics on length mismatches.
pub fn aggregate_tiers_into(tier_models: &[Vec<f32>], weights: &[f32], out: &mut Vec<f32>) {
    assert_eq!(
        tier_models.len(),
        weights.len(),
        "one weight per tier model"
    );
    assert!(!tier_models.is_empty(), "no tier models");
    let dim = tier_models[0].len();
    let inputs: Vec<&[f32]> = tier_models.iter().map(|m| m.as_slice()).collect();
    out.clear();
    out.resize(dim, 0.0);
    weighted_sum_into(&inputs, weights, out);
}

/// Allocating convenience wrapper around [`aggregate_tiers_into`].
pub fn aggregate_tiers(tier_models: &[Vec<f32>], weights: &[f32]) -> Vec<f32> {
    let mut out = Vec::new();
    aggregate_tiers_into(tier_models, weights, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_average_weights_by_samples() {
        let a = vec![0.0f32; 3];
        let b = vec![4.0f32; 3];
        // 1 sample vs 3 samples → (0·1 + 4·3)/4 = 3.
        let avg = weighted_client_average(&[(&a, 1), (&b, 3)]);
        for v in avg {
            assert!((v - 3.0).abs() < 1e-6);
        }
    }

    #[test]
    fn client_average_of_identical_is_identity() {
        let w = vec![1.5f32, -2.0, 0.25];
        let avg = weighted_client_average(&[(&w, 7), (&w, 3), (&w, 90)]);
        for (x, y) in avg.iter().zip(w.iter()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn cross_tier_weights_reverse_the_counts() {
        // Fast tier updated 30×, slow tier 10× → slow tier gets 30/40,
        // fast tier gets 10/40.
        let w = cross_tier_weights(&[30, 10]);
        assert!((w[0] - 0.25).abs() < 1e-6, "fast-tier weight {w:?}");
        assert!((w[1] - 0.75).abs() < 1e-6, "slow-tier weight {w:?}");
    }

    #[test]
    fn cross_tier_weights_sum_to_one() {
        for counts in [vec![1u64, 2, 3, 4, 5], vec![100, 0, 0, 0, 1], vec![7, 7, 7]] {
            let w = cross_tier_weights(&counts);
            let s: f32 = w.iter().sum();
            assert!((s - 1.0).abs() < 1e-5, "weights {w:?} sum to {s}");
        }
    }

    #[test]
    fn zero_updates_give_uniform() {
        let w = cross_tier_weights(&[0, 0, 0, 0]);
        for v in w {
            assert!((v - 0.25).abs() < 1e-6);
        }
    }

    #[test]
    fn slower_tiers_get_monotonically_larger_weights() {
        // Monotone decreasing update counts (typical: fast tiers update
        // more) must yield monotone increasing weights.
        let w = cross_tier_weights(&[50, 40, 30, 20, 10]);
        for pair in w.windows(2) {
            assert!(pair[0] <= pair[1], "weights not increasing: {w:?}");
        }
    }

    #[test]
    fn uniform_weights_are_uniform() {
        let w = uniform_tier_weights(5);
        assert_eq!(w, vec![0.2; 5]);
    }

    #[test]
    fn tier_aggregation_is_convex_combination() {
        let t1 = vec![0.0f32; 4];
        let t2 = vec![1.0f32; 4];
        let g = aggregate_tiers(&[t1, t2], &[0.25, 0.75]);
        for v in g {
            assert!((v - 0.75).abs() < 1e-6);
        }
    }

    #[test]
    fn robust_rules_resist_one_hostile_update() {
        let good1 = vec![1.0f32, -1.0, 0.5];
        let good2 = vec![1.2f32, -0.8, 0.4];
        let good3 = vec![0.8f32, -1.2, 0.6];
        let evil = vec![1.0e6f32, -1.0e6, f32::INFINITY];
        let updates: Vec<(&[f32], usize)> =
            vec![(&good1, 10), (&evil, 10), (&good2, 10), (&good3, 10)];
        let mut out = Vec::new();
        aggregate_clients_into(AggRule::CoordinateMedian, &updates, &mut out);
        assert!(
            out.iter().all(|v| v.is_finite() && v.abs() < 2.0),
            "{out:?}"
        );
        aggregate_clients_into(AggRule::TrimmedMean { frac: 0.25 }, &updates, &mut out);
        assert!(
            out.iter().all(|v| v.is_finite() && v.abs() < 2.0),
            "{out:?}"
        );
        // The weighted mean is poisoned — that is the point of the guard.
        aggregate_clients_into(AggRule::WeightedMean, &updates, &mut out);
        assert!(out.iter().any(|v| !v.is_finite() || v.abs() > 1000.0));
    }

    #[test]
    fn robust_rules_pass_a_single_update_through() {
        let w = vec![1.5f32, -2.0, 0.25];
        let updates: Vec<(&[f32], usize)> = vec![(&w, 7)];
        let mut out = Vec::new();
        for rule in [
            AggRule::WeightedMean,
            AggRule::TrimmedMean { frac: 0.4 },
            AggRule::CoordinateMedian,
        ] {
            aggregate_clients_into(rule, &updates, &mut out);
            for (x, y) in out.iter().zip(w.iter()) {
                assert!((x - y).abs() < 1e-6, "{rule:?}");
            }
        }
    }

    #[test]
    fn trimmed_mean_clamps_to_keep_at_least_one_value() {
        // frac 0.49 of k=2 floors to 0 trimmed; k=3 → ⌊1.47⌋ = 1 = (k-1)/2.
        let a = vec![0.0f32];
        let b = vec![1.0f32];
        let c = vec![100.0f32];
        let mut out = Vec::new();
        aggregate_clients_into(
            AggRule::TrimmedMean { frac: 0.49 },
            &[(&a, 1), (&b, 1), (&c, 1)],
            &mut out,
        );
        assert_eq!(out, vec![1.0]);
    }

    #[test]
    fn fedat_reduces_to_plain_average_with_equal_counts() {
        // Equal update counts → uniform weights → same as FedAvg over tiers.
        let w = cross_tier_weights(&[5, 5, 5, 5, 5]);
        for v in w {
            assert!((v - 0.2).abs() < 1e-6);
        }
    }
}
