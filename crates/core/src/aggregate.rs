//! Model aggregation: intra-tier `n_k/N_c` averaging (Algorithm 2 inner
//! loop) and the cross-tier weighted heuristic of Eq. (5).
//!
//! Both reductions funnel into [`weighted_sum_into`], whose default kernel
//! shards the model dimension into fixed cache-sized chunks on the kernel
//! pool — so every strategy's server-side aggregation scales with cohort
//! size while staying bit-identical to the serial baseline for any thread
//! count (see `fedat_tensor::ops::AggKernel`).

use fedat_tensor::ops::weighted_sum_into;

/// Sample-count-weighted average of client weight vectors, written into a
/// reusable buffer: `out = Σ_k (n_k / N_c) · w_k` — the FedAvg/TiFL/FedAT
/// intra-tier rule. `out` is resized to the model dimension; strategies keep
/// one buffer per tier and aggregate every round without allocating.
///
/// # Panics
/// Panics if `updates` is empty or lengths mismatch.
pub fn weighted_client_average_into(updates: &[(&[f32], usize)], out: &mut Vec<f32>) {
    assert!(!updates.is_empty(), "cannot aggregate zero client updates");
    let total: usize = updates.iter().map(|(_, n)| *n).sum();
    assert!(total > 0, "client updates carry zero samples");
    let dim = updates[0].0.len();
    let inputs: Vec<&[f32]> = updates.iter().map(|(w, _)| *w).collect();
    let weights: Vec<f32> = updates
        .iter()
        .map(|(_, n)| *n as f32 / total as f32)
        .collect();
    out.clear();
    out.resize(dim, 0.0);
    weighted_sum_into(&inputs, &weights, out);
}

/// Allocating convenience wrapper around [`weighted_client_average_into`].
pub fn weighted_client_average(updates: &[(&[f32], usize)]) -> Vec<f32> {
    let mut out = Vec::new();
    weighted_client_average_into(updates, &mut out);
    out
}

/// The FedAT cross-tier weights of Eq. (5).
///
/// With per-tier update counts `T_tier1..T_tierM` (tier 1 = fastest) and
/// `T = Σ T_tierm`, tier `m` receives weight `T_{tier(M+1−m)} / T`: the
/// slowest tier inherits the *fastest* tier's (largest) update count, undoing
/// the frequency bias of asynchronous tier arrivals.
///
/// Before any update has happened (`T = 0`) the weights are uniform.
pub fn cross_tier_weights(update_counts: &[u64]) -> Vec<f32> {
    assert!(!update_counts.is_empty(), "no tiers");
    let m = update_counts.len();
    let total: u64 = update_counts.iter().sum();
    if total == 0 {
        return vec![1.0 / m as f32; m];
    }
    // weight[m] = counts[M+1-m] reversed, normalized.
    let mut w: Vec<f32> = (0..m)
        .map(|i| update_counts[m - 1 - i] as f32 / total as f32)
        .collect();
    // Guard against degenerate all-zero-but-total>0 (cannot happen, but keep
    // the invariant Σw = 1 robust to float error).
    let sum: f32 = w.iter().sum();
    if sum > 0.0 {
        for v in w.iter_mut() {
            *v /= sum;
        }
    } else {
        w = vec![1.0 / m as f32; m];
    }
    w
}

/// Uniform cross-tier weights — the Fig. 6 baseline.
pub fn uniform_tier_weights(num_tiers: usize) -> Vec<f32> {
    assert!(num_tiers > 0, "no tiers");
    vec![1.0 / num_tiers as f32; num_tiers]
}

/// Combines per-tier server models into the global model
/// (`WeightedAverage` in Algorithm 2), written into a reusable buffer —
/// the FedAT server aggregates into its standing global vector every tier
/// round without allocating.
///
/// # Panics
/// Panics on length mismatches.
pub fn aggregate_tiers_into(tier_models: &[Vec<f32>], weights: &[f32], out: &mut Vec<f32>) {
    assert_eq!(
        tier_models.len(),
        weights.len(),
        "one weight per tier model"
    );
    assert!(!tier_models.is_empty(), "no tier models");
    let dim = tier_models[0].len();
    let inputs: Vec<&[f32]> = tier_models.iter().map(|m| m.as_slice()).collect();
    out.clear();
    out.resize(dim, 0.0);
    weighted_sum_into(&inputs, weights, out);
}

/// Allocating convenience wrapper around [`aggregate_tiers_into`].
pub fn aggregate_tiers(tier_models: &[Vec<f32>], weights: &[f32]) -> Vec<f32> {
    let mut out = Vec::new();
    aggregate_tiers_into(tier_models, weights, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_average_weights_by_samples() {
        let a = vec![0.0f32; 3];
        let b = vec![4.0f32; 3];
        // 1 sample vs 3 samples → (0·1 + 4·3)/4 = 3.
        let avg = weighted_client_average(&[(&a, 1), (&b, 3)]);
        for v in avg {
            assert!((v - 3.0).abs() < 1e-6);
        }
    }

    #[test]
    fn client_average_of_identical_is_identity() {
        let w = vec![1.5f32, -2.0, 0.25];
        let avg = weighted_client_average(&[(&w, 7), (&w, 3), (&w, 90)]);
        for (x, y) in avg.iter().zip(w.iter()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn cross_tier_weights_reverse_the_counts() {
        // Fast tier updated 30×, slow tier 10× → slow tier gets 30/40,
        // fast tier gets 10/40.
        let w = cross_tier_weights(&[30, 10]);
        assert!((w[0] - 0.25).abs() < 1e-6, "fast-tier weight {w:?}");
        assert!((w[1] - 0.75).abs() < 1e-6, "slow-tier weight {w:?}");
    }

    #[test]
    fn cross_tier_weights_sum_to_one() {
        for counts in [vec![1u64, 2, 3, 4, 5], vec![100, 0, 0, 0, 1], vec![7, 7, 7]] {
            let w = cross_tier_weights(&counts);
            let s: f32 = w.iter().sum();
            assert!((s - 1.0).abs() < 1e-5, "weights {w:?} sum to {s}");
        }
    }

    #[test]
    fn zero_updates_give_uniform() {
        let w = cross_tier_weights(&[0, 0, 0, 0]);
        for v in w {
            assert!((v - 0.25).abs() < 1e-6);
        }
    }

    #[test]
    fn slower_tiers_get_monotonically_larger_weights() {
        // Monotone decreasing update counts (typical: fast tiers update
        // more) must yield monotone increasing weights.
        let w = cross_tier_weights(&[50, 40, 30, 20, 10]);
        for pair in w.windows(2) {
            assert!(pair[0] <= pair[1], "weights not increasing: {w:?}");
        }
    }

    #[test]
    fn uniform_weights_are_uniform() {
        let w = uniform_tier_weights(5);
        assert_eq!(w, vec![0.2; 5]);
    }

    #[test]
    fn tier_aggregation_is_convex_combination() {
        let t1 = vec![0.0f32; 4];
        let t2 = vec![1.0f32; 4];
        let g = aggregate_tiers(&[t1, t2], &[0.25, 0.75]);
        for v in g {
            assert!((v - 0.75).abs() < 1e-6);
        }
    }

    #[test]
    fn fedat_reduces_to_plain_average_with_equal_counts() {
        // Equal update counts → uniform weights → same as FedAvg over tiers.
        let w = cross_tier_weights(&[5, 5, 5, 5, 5]);
        for v in w {
            assert!((v - 0.2).abs() < 1e-6);
        }
    }
}
