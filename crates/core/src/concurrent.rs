//! A real-thread FedAT server.
//!
//! The simulator proves the algorithm deterministically; this module proves
//! the *design* concurrently: tier workers on OS threads race to update a
//! `parking_lot::Mutex`-guarded server exactly as FedAT's asynchronous
//! cross-tier protocol prescribes. Used by integration tests and the
//! `straggler_tolerance` example to demonstrate wait-free fast-tier
//! progress outside virtual time.
//!
//! This is the one intentionally nondeterministic surface in the
//! workspace; the fault-tolerance layer (deadlines, re-dispatch, dynamic
//! re-tiering — see `docs/ROBUSTNESS.md`) lives entirely in the
//! virtual-time server, where a deadline is a simulator timer. In this
//! module's real-thread setting the analogous mechanism would be a
//! wall-clock timeout on the tier worker's join, which would break the
//! bit-reproducibility the rest of the codebase guarantees — so the
//! threaded server deliberately stays fault-free.

use crate::aggregate::{aggregate_tiers_into, cross_tier_weights};
use crate::config::ExperimentConfig;
use crate::local::train_client;
use fedat_data::suite::FedTask;
use fedat_sim::threaded::{run_concurrent_tiers, TierSpec};
use parking_lot::Mutex;
use std::cell::RefCell;
use std::time::Duration;

/// Shared server state guarded by one lock (the paper's server is a single
/// aggregator process).
struct ServerShared {
    tier_models: Vec<Vec<f32>>,
    tier_counts: Vec<u64>,
    /// Shared snapshot of the global model: a dispatch clones the `Arc`
    /// (pointer-sized) instead of copying the weight vector under the lock.
    global: std::sync::Arc<[f32]>,
}

/// Result of a threaded FedAT run.
#[derive(Clone, Debug)]
pub struct ThreadedRun {
    /// Final global weights.
    pub global: Vec<f32>,
    /// Per-tier update counts (fast tiers should dominate).
    pub tier_counts: Vec<u64>,
    /// Total server updates observed.
    pub total_updates: u64,
}

/// Runs FedAT with one OS thread per tier against real (milli-scaled)
/// latencies.
///
/// `tier_clients[t]` lists the clients of tier `t`; each tier performs
/// `rounds_per_tier[t]` rounds with `latency_ms[t]` of simulated wall time
/// per round, training one client per round (round-robin within the tier).
///
/// # Panics
/// Panics on inconsistent argument lengths or empty tiers.
pub fn run_threaded_fedat(
    task: &FedTask,
    cfg: &ExperimentConfig,
    tier_clients: &[Vec<usize>],
    latency_ms: &[u64],
    rounds_per_tier: &[u64],
) -> ThreadedRun {
    assert_eq!(tier_clients.len(), latency_ms.len(), "one latency per tier");
    assert_eq!(
        tier_clients.len(),
        rounds_per_tier.len(),
        "one budget per tier"
    );
    assert!(
        tier_clients.iter().all(|t| !t.is_empty()),
        "tiers must be non-empty"
    );
    let m = tier_clients.len();
    let w0 = task.model.build(cfg.seed).weights();
    let shared = Mutex::new(ServerShared {
        tier_models: vec![w0.clone(); m],
        tier_counts: vec![0; m],
        global: w0.into(),
    });

    let specs: Vec<TierSpec> = latency_ms
        .iter()
        .zip(rounds_per_tier.iter())
        .map(|(&ms, &rounds)| TierSpec {
            round_latency: Duration::from_millis(ms),
            rounds,
        })
        .collect();

    // Per-thread standing buffer for the cross-tier aggregation: after the
    // first round each tier thread aggregates without allocating.
    thread_local! {
        static AGG_BUF: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
    }

    run_concurrent_tiers(&specs, |tier, round| {
        // Download outside the critical section: the snapshot is an `Arc`
        // clone, zero-copy even under contention.
        let global = std::sync::Arc::clone(&shared.lock().global);
        let client = tier_clients[tier][round as usize % tier_clients[tier].len()];
        let update = train_client(task, client, &global, cfg, cfg.local_epochs, round, true);
        // Server-side update inside the lock: tier model, counters, global.
        // The intra-tier `n_k/N_c` average of this single-client round is
        // the update itself (weight n_k/n_k = 1), so it *moves* into the
        // standing tier-model slot — the pre-fix code built the average
        // through a freshly allocated Vec while holding the server lock.
        let retired = AGG_BUF.with(|buf| {
            let mut buf = buf.borrow_mut();
            let mut s = shared.lock();
            let retired = std::mem::replace(&mut s.tier_models[tier], update.weights);
            s.tier_counts[tier] += 1;
            let weights = cross_tier_weights(&s.tier_counts);
            aggregate_tiers_into(&s.tier_models, &weights, &mut buf);
            // The snapshot `Arc` must be freshly allocated (readers hold
            // the old one), but that is the only copy left in the section.
            s.global = buf.as_slice().into();
            retired
        });
        // The displaced tier model deallocates outside the critical
        // section.
        drop(retired);
    });

    let s = shared.into_inner();
    ThreadedRun {
        global: s.global.to_vec(),
        total_updates: s.tier_counts.iter().sum(),
        tier_counts: s.tier_counts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StrategyKind;
    use fedat_data::suite;

    #[test]
    fn threaded_fedat_updates_all_tiers() {
        let task = suite::sent140_like(9, 3);
        let cfg = ExperimentConfig::builder()
            .strategy(StrategyKind::FedAt)
            .rounds(10)
            .local_epochs(1)
            .seed(3)
            .build();
        let tiers = vec![vec![0, 1, 2], vec![3, 4, 5], vec![6, 7, 8]];
        let run = run_threaded_fedat(&task, &cfg, &tiers, &[1, 5, 20], &[12, 6, 2]);
        assert_eq!(run.tier_counts, vec![12, 6, 2]);
        assert_eq!(run.total_updates, 20);
        assert!(run.global.iter().all(|w| w.is_finite()));
    }

    #[test]
    fn fast_tier_dominates_update_counts() {
        let task = suite::sent140_like(6, 4);
        let cfg = ExperimentConfig::builder()
            .rounds(10)
            .local_epochs(1)
            .seed(4)
            .build();
        let tiers = vec![vec![0, 1, 2], vec![3, 4, 5]];
        let run = run_threaded_fedat(&task, &cfg, &tiers, &[1, 30], &[30, 3]);
        assert!(
            run.tier_counts[0] > run.tier_counts[1] * 5,
            "fast tier should update far more often: {:?}",
            run.tier_counts
        );
    }
}
