//! Experiment configuration.

use fedat_compress::codec::CodecKind;
use fedat_sim::fleet::ClusterConfig;
use fedat_tensor::ops::{AggKernel, NtKernel};
use fedat_tensor::parallel::SpawnMode;
use fedat_tensor::simd::SimdKernel;
use serde::{Deserialize, Serialize};

/// Which federated-learning method to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StrategyKind {
    /// Synchronous FedAvg (McMahan et al.) — Algorithm 1.
    FedAvg,
    /// FedProx: FedAvg + proximal term + device-dependent local epochs.
    FedProx,
    /// TiFL: synchronous tier-based selection with adaptive, accuracy-driven
    /// tier probabilities.
    TiFL,
    /// FedAsync (Xie et al.): fully asynchronous staleness-weighted mixing.
    FedAsync,
    /// ASO-Fed (Chen et al.): asynchronous with per-client server copies
    /// and local constraints.
    AsoFed,
    /// FedAT — this paper.
    FedAt,
}

impl StrategyKind {
    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            StrategyKind::FedAvg => "FedAvg",
            StrategyKind::FedProx => "FedProx",
            StrategyKind::TiFL => "TiFL",
            StrategyKind::FedAsync => "FedAsync",
            StrategyKind::AsoFed => "ASO-Fed",
            StrategyKind::FedAt => "FedAT",
        }
    }

    /// All strategies, in the paper's table order.
    pub fn all() -> [StrategyKind; 6] {
        [
            StrategyKind::TiFL,
            StrategyKind::FedAvg,
            StrategyKind::FedProx,
            StrategyKind::FedAsync,
            StrategyKind::AsoFed,
            StrategyKind::FedAt,
        ]
    }
}

/// Local solver choice. The paper uses Adam (§6 *Hyperparameters*).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum OptimizerKind {
    /// Adam with the given learning rate.
    Adam {
        /// Learning rate.
        lr: f32,
    },
    /// SGD with learning rate and momentum.
    Sgd {
        /// Learning rate.
        lr: f32,
        /// Momentum coefficient.
        momentum: f32,
    },
}

impl OptimizerKind {
    /// Constructs the optimizer.
    pub fn build(&self) -> Box<dyn fedat_nn::optim::Optimizer> {
        match *self {
            OptimizerKind::Adam { lr } => Box::new(fedat_nn::optim::Adam::new(lr)),
            OptimizerKind::Sgd { lr, momentum } => {
                Box::new(fedat_nn::optim::Sgd::new(lr, momentum))
            }
        }
    }
}

/// Dynamic re-tiering policy: maintain an EWMA of observed response
/// latencies and periodically re-partition tiers when enough clients have
/// drifted out of place (cf. the one-shot [`crate::tiering::TierAssignment::profile`]).
// `#[serde(default)]` so a config file may name only the fields it changes
// — and so a policy added later can never turn an old file into a parse
// error (`fedat-lint` rule R6 pins this for every deserializable config
// struct in this module).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct RetierPolicy {
    /// EWMA smoothing factor for observed round-trip latencies, in `(0, 1]`.
    pub alpha: f64,
    /// Re-evaluate tier assignments every this many concluded tier rounds.
    pub check_every: u64,
    /// Adopt a new assignment only when at least this fraction of clients
    /// would change tier.
    pub drift_threshold: f64,
}

impl Default for RetierPolicy {
    fn default() -> Self {
        RetierPolicy {
            alpha: 0.3,
            check_every: 10,
            drift_threshold: 0.1,
        }
    }
}

/// Server-side fault-tolerance policy: per-dispatch deadlines with bounded,
/// backed-off re-dispatch, quorum accounting, and optional dynamic
/// re-tiering. The default (`deadline_multiplier: None`, `retier: None`)
/// reproduces the legacy behavior bit-for-bit: no timers are ever
/// scheduled.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct FaultPolicy {
    /// Deadline = multiplier × the dispatch group's nominal (expected)
    /// latency; `None` disables timeouts entirely.
    pub deadline_multiplier: Option<f64>,
    /// Bounded re-dispatches per round slot after a timeout.
    pub max_retries: u32,
    /// Each retry's deadline is scaled by `backoff^attempt`.
    pub backoff: f64,
    /// A round concluding with fewer than `quorum × picked` landed updates
    /// is recorded as degraded (it still aggregates whatever arrived).
    pub quorum: f64,
    /// Dynamic re-tiering; `None` keeps the one-shot profile.
    pub retier: Option<RetierPolicy>,
}

impl Default for FaultPolicy {
    fn default() -> Self {
        FaultPolicy {
            deadline_multiplier: None,
            max_retries: 2,
            backoff: 1.5,
            quorum: 0.5,
            retier: None,
        }
    }
}

/// L2-norm screen: each landed update's *displacement* from the current
/// global model is compared against `threshold ×` a deterministic EWMA of
/// previously *accepted* displacement norms. (Uploads are full models;
/// screening the displacement instead of the raw weights bounds a
/// magnitude attack additively rather than letting it compound.) The first
/// accepted update initializes the EWMA; over-threshold updates are
/// clipped down to the limit (`clip: true`) or rejected outright.
// `#[serde(default)]` — same R6 rationale as [`RetierPolicy`] above.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct NormScreen {
    /// EWMA smoothing factor for accepted displacement norms, in `(0, 1]`.
    pub alpha: f64,
    /// An update whose displacement norm exceeds `threshold × EWMA` trips
    /// the screen (must be ≥ 1).
    pub threshold: f64,
    /// Trip response: `true` rescales the update to the limit (`Clip`),
    /// `false` discards it (`Reject`).
    pub clip: bool,
}

impl Default for NormScreen {
    fn default() -> Self {
        NormScreen {
            alpha: 0.2,
            threshold: 3.0,
            clip: true,
        }
    }
}

/// Server-side guard layer against corrupted updates: per-update screens
/// applied as each uplink lands, a staleness bound for the async
/// strategies, quarantine of repeat offenders, and the aggregation rule.
///
/// The default is **inert**: no check runs, no norm is computed, every
/// strategy reproduces its unguarded trace bit-for-bit, and legacy configs
/// parse unchanged (container-level `#[serde(default)]`, lint R6).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct GuardPolicy {
    /// Reject updates containing NaN/Inf before they touch any reduction.
    pub finite_check: bool,
    /// L2-norm screen against the accepted-norm EWMA; `None` disables it.
    pub norm_screen: Option<NormScreen>,
    /// Async strategies (FedAsync/ASO-Fed) discard updates staler than
    /// this many global model versions; `None` disables the bound.
    pub max_staleness: Option<u64>,
    /// Quarantine a client after this many rejected updates; `None`
    /// disables quarantine. Stale discards do not count — slowness is not
    /// an offense.
    pub quarantine_after: Option<u32>,
    /// How long (virtual seconds) a quarantined client sits out of the
    /// dispatch pools before its offense count restarts from zero.
    pub quarantine_secs: f64,
    /// How landed updates are combined each (tier-)round.
    pub agg_rule: crate::aggregate::AggRule,
}

impl Default for GuardPolicy {
    fn default() -> Self {
        GuardPolicy {
            finite_check: false,
            norm_screen: None,
            max_staleness: None,
            quarantine_after: None,
            quarantine_secs: 600.0,
            agg_rule: crate::aggregate::AggRule::WeightedMean,
        }
    }
}

impl GuardPolicy {
    /// True when landed updates need per-update screening (finite check,
    /// norm screen, or offense tracking for quarantine). The inert default
    /// returns false, letting the completion path skip the guard entirely
    /// — no norm computation, no state, bit-identical legacy behavior.
    pub fn screens_updates(&self) -> bool {
        self.finite_check || self.norm_screen.is_some() || self.quarantine_after.is_some()
    }

    /// True when the whole policy is the inert default shape (used by
    /// tests and the bench to label variants).
    pub fn is_inert(&self) -> bool {
        !self.screens_updates()
            && self.max_staleness.is_none()
            && self.agg_rule == crate::aggregate::AggRule::WeightedMean
    }
}

/// Per-run execution overrides: every field is `None` = "inherit the
/// process default" (the env-initialized globals, possibly scoped by a
/// `ToggleGuard`). A run resolves these once at start into an
/// [`ExecCtx`](crate::exec::ExecCtx) — see
/// [`ExecCtx::resolve`](crate::exec::ExecCtx::resolve) — so two concurrent
/// runs with different overrides never read each other's settings.
///
/// Every override selects between bit-identical implementations, so none
/// of them can change a trace — only wall-clock behavior.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecOverrides {
    /// Speculative vs. inline client training.
    pub mode: Option<crate::exec::ExecMode>,
    /// SIMD backend selection.
    pub simd: Option<SimdKernel>,
    /// Force the portable fallback over the ISA path.
    pub portable_only: Option<bool>,
    /// `A·Bᵀ` matmul formulation.
    pub nt: Option<NtKernel>,
    /// Aggregation kernel formulation.
    pub agg: Option<AggKernel>,
    /// Per-kernel fork-join thread cap.
    pub max_threads: Option<usize>,
    /// Parallel-region execution mode (pool vs. scoped spawn).
    pub spawn: Option<SpawnMode>,
    /// Cap on pool-resident submitted jobs.
    pub max_pool_jobs: Option<usize>,
}

/// Full experiment configuration. Build via [`ExperimentConfig::builder`].
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// FL method.
    pub strategy: StrategyKind,
    /// Budget of *global* model updates (`T` in Algorithm 2).
    pub rounds: u64,
    /// Virtual-time horizon in seconds (runs stop at whichever of
    /// `rounds`/`max_time` hits first).
    pub max_time: f64,
    /// Clients sampled per (tier-)round — 10 in the paper.
    pub clients_per_round: usize,
    /// Local epochs `E` — 3 in the paper.
    pub local_epochs: usize,
    /// Mini-batch size — 10 in the paper.
    pub batch_size: usize,
    /// Local solver.
    pub optimizer: OptimizerKind,
    /// Proximal coefficient λ (Eq. 3) — 0.4 in the paper. Only strategies
    /// with a local constraint (FedProx, ASO-Fed, FedAT) use it.
    pub lambda: f32,
    /// Transfer codec; `None` defers to the `FEDAT_CODEC` environment
    /// variable and then the strategy default (polyline precision 4 for
    /// FedAT, uncompressed for the baselines) — see [`resolve_codec`].
    pub codec: Option<CodecKind>,
    /// Number of logical tiers `M` — 5 in the paper.
    pub num_tiers: usize,
    /// Evaluate the global model every this many global updates.
    pub eval_every: u64,
    /// Cap on test samples per evaluation (fixed subset; keeps runs fast).
    pub eval_subset: usize,
    /// Mixing weight α for FedAsync.
    pub fedasync_alpha: f32,
    /// Staleness attenuation for FedAsync (Xie et al. propose constant,
    /// polynomial, and hinge families; polynomial `a = 0.5` is the default
    /// the FedAT paper's baseline uses).
    pub fedasync_staleness: crate::staleness::StalenessFn,
    /// Fraction of clients deliberately assigned to a wrong tier
    /// (mis-tiering robustness ablation; 0 = off).
    pub mistier_fraction: f64,
    /// Use uniform cross-tier weights instead of Eq. 5 (Fig. 6 ablation).
    pub uniform_tier_weights: bool,
    /// Master seed.
    pub seed: u64,
    /// Cluster override; `None` builds the paper's medium cluster sized to
    /// the task's client count.
    pub cluster: Option<ClusterConfig>,
    /// Server-side fault tolerance (timeouts, retries, quorum accounting,
    /// dynamic re-tiering). Defaults to the legacy no-op policy.
    pub fault: FaultPolicy,
    /// Guard layer against corrupted updates (finite check, norm screen,
    /// staleness bound, quarantine, robust aggregation). Defaults inert.
    pub guard: GuardPolicy,
    /// Per-run execution overrides (exec mode, kernel selections, worker
    /// hints). Defaults to inheriting the process defaults.
    pub exec: ExecOverrides,
}

impl ExperimentConfig {
    /// Starts a builder with the paper's §6 hyperparameters.
    pub fn builder() -> ExperimentConfigBuilder {
        ExperimentConfigBuilder {
            cfg: ExperimentConfig::default(),
        }
    }
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            strategy: StrategyKind::FedAt,
            rounds: 300,
            max_time: f64::INFINITY,
            clients_per_round: 10,
            local_epochs: 3,
            batch_size: 10,
            optimizer: OptimizerKind::Adam { lr: 0.003 },
            lambda: 0.4,
            codec: None,
            num_tiers: 5,
            eval_every: 5,
            eval_subset: 512,
            fedasync_alpha: 0.6,
            fedasync_staleness: crate::staleness::StalenessFn::default_polynomial(),
            mistier_fraction: 0.0,
            uniform_tier_weights: false,
            seed: 0,
            cluster: None,
            fault: FaultPolicy::default(),
            guard: GuardPolicy::default(),
            exec: ExecOverrides::default(),
        }
    }
}

/// Fluent builder for [`ExperimentConfig`].
pub struct ExperimentConfigBuilder {
    cfg: ExperimentConfig,
}

impl ExperimentConfigBuilder {
    /// Sets the FL method.
    pub fn strategy(mut self, s: StrategyKind) -> Self {
        self.cfg.strategy = s;
        self
    }

    /// Sets the global update budget.
    pub fn rounds(mut self, r: u64) -> Self {
        self.cfg.rounds = r;
        self
    }

    /// Sets the virtual-time horizon (seconds).
    pub fn max_time(mut self, t: f64) -> Self {
        self.cfg.max_time = t;
        self
    }

    /// Sets clients sampled per round.
    pub fn clients_per_round(mut self, k: usize) -> Self {
        self.cfg.clients_per_round = k;
        self
    }

    /// Sets local epochs.
    pub fn local_epochs(mut self, e: usize) -> Self {
        self.cfg.local_epochs = e;
        self
    }

    /// Sets the mini-batch size.
    pub fn batch_size(mut self, b: usize) -> Self {
        self.cfg.batch_size = b;
        self
    }

    /// Sets the local solver.
    pub fn optimizer(mut self, o: OptimizerKind) -> Self {
        self.cfg.optimizer = o;
        self
    }

    /// Sets the proximal coefficient λ.
    pub fn lambda(mut self, l: f32) -> Self {
        self.cfg.lambda = l;
        self
    }

    /// Overrides the transfer codec.
    pub fn codec(mut self, c: CodecKind) -> Self {
        self.cfg.codec = Some(c);
        self
    }

    /// Sets the tier count `M`.
    pub fn num_tiers(mut self, m: usize) -> Self {
        self.cfg.num_tiers = m;
        self
    }

    /// Sets the evaluation cadence (global updates between evals).
    pub fn eval_every(mut self, n: u64) -> Self {
        self.cfg.eval_every = n;
        self
    }

    /// Caps test samples per evaluation.
    pub fn eval_subset(mut self, n: usize) -> Self {
        self.cfg.eval_subset = n;
        self
    }

    /// Sets FedAsync's α.
    pub fn fedasync_alpha(mut self, a: f32) -> Self {
        self.cfg.fedasync_alpha = a;
        self
    }

    /// Sets FedAsync's staleness attenuation family.
    pub fn fedasync_staleness(mut self, s: crate::staleness::StalenessFn) -> Self {
        self.cfg.fedasync_staleness = s;
        self
    }

    /// Enables mis-tiering of a client fraction.
    pub fn mistier_fraction(mut self, f: f64) -> Self {
        self.cfg.mistier_fraction = f;
        self
    }

    /// Switches FedAT to uniform cross-tier weights (Fig. 6 baseline).
    pub fn uniform_tier_weights(mut self, u: bool) -> Self {
        self.cfg.uniform_tier_weights = u;
        self
    }

    /// Sets the master seed.
    pub fn seed(mut self, s: u64) -> Self {
        self.cfg.seed = s;
        self
    }

    /// Overrides the simulated cluster.
    pub fn cluster(mut self, c: ClusterConfig) -> Self {
        self.cfg.cluster = Some(c);
        self
    }

    /// Sets the full fault-tolerance policy.
    pub fn fault(mut self, f: FaultPolicy) -> Self {
        self.cfg.fault = f;
        self
    }

    /// Enables per-dispatch deadlines at `m ×` the group's nominal latency.
    pub fn deadline_multiplier(mut self, m: f64) -> Self {
        self.cfg.fault.deadline_multiplier = Some(m);
        self
    }

    /// Enables dynamic re-tiering with the given policy.
    pub fn retier(mut self, p: RetierPolicy) -> Self {
        self.cfg.fault.retier = Some(p);
        self
    }

    /// Sets the full corrupted-update guard policy.
    pub fn guard(mut self, g: GuardPolicy) -> Self {
        self.cfg.guard = g;
        self
    }

    /// Sets the aggregation rule (leaving the rest of the guard as-is).
    pub fn agg_rule(mut self, rule: crate::aggregate::AggRule) -> Self {
        self.cfg.guard.agg_rule = rule;
        self
    }

    /// Sets the full per-run execution override block.
    pub fn exec(mut self, e: ExecOverrides) -> Self {
        self.cfg.exec = e;
        self
    }

    /// Pins this run's execution mode (speculative vs. inline).
    pub fn exec_mode(mut self, m: crate::exec::ExecMode) -> Self {
        self.cfg.exec.mode = Some(m);
        self
    }

    /// Pins this run's SIMD backend.
    pub fn simd_kernel(mut self, k: SimdKernel) -> Self {
        self.cfg.exec.simd = Some(k);
        self
    }

    /// Pins this run's aggregation kernel.
    pub fn agg_kernel(mut self, k: AggKernel) -> Self {
        self.cfg.exec.agg = Some(k);
        self
    }

    /// Pins this run's `A·Bᵀ` formulation.
    pub fn nt_kernel(mut self, k: NtKernel) -> Self {
        self.cfg.exec.nt = Some(k);
        self
    }

    /// Pins whether this run forces the portable SIMD fallback.
    pub fn portable_only(mut self, p: bool) -> Self {
        self.cfg.exec.portable_only = Some(p);
        self
    }

    /// Pins this run's fork-join thread cap.
    pub fn max_threads(mut self, n: usize) -> Self {
        self.cfg.exec.max_threads = Some(n);
        self
    }

    /// Pins this run's parallel-region spawn mode.
    pub fn spawn_mode(mut self, m: SpawnMode) -> Self {
        self.cfg.exec.spawn = Some(m);
        self
    }

    /// Pins this run's cap on pool-resident submitted jobs.
    pub fn max_pool_jobs(mut self, n: usize) -> Self {
        self.cfg.exec.max_pool_jobs = Some(n);
        self
    }

    /// Finalizes the config.
    ///
    /// # Panics
    /// Panics on inconsistent settings (zero rounds, zero participation…).
    pub fn build(self) -> ExperimentConfig {
        let c = self.cfg;
        assert!(c.rounds > 0, "rounds must be positive");
        assert!(
            c.clients_per_round > 0,
            "clients_per_round must be positive"
        );
        assert!(c.local_epochs > 0, "local_epochs must be positive");
        assert!(c.batch_size > 0, "batch_size must be positive");
        assert!(c.num_tiers > 0, "num_tiers must be positive");
        assert!(c.eval_every > 0, "eval_every must be positive");
        assert!(
            (0.0..=1.0).contains(&c.mistier_fraction),
            "mistier_fraction out of range"
        );
        if let Some(m) = c.fault.deadline_multiplier {
            assert!(m > 0.0, "deadline_multiplier must be positive");
        }
        assert!(c.fault.backoff >= 1.0, "backoff must be at least 1");
        assert!((0.0..=1.0).contains(&c.fault.quorum), "quorum out of range");
        if let Some(r) = c.fault.retier {
            assert!(r.alpha > 0.0 && r.alpha <= 1.0, "retier alpha out of range");
            assert!(r.check_every > 0, "retier check_every must be positive");
            assert!(
                (0.0..=1.0).contains(&r.drift_threshold),
                "retier drift_threshold out of range"
            );
        }
        if let Some(s) = c.guard.norm_screen {
            assert!(
                s.alpha > 0.0 && s.alpha <= 1.0,
                "norm-screen alpha out of range"
            );
            assert!(
                s.threshold >= 1.0,
                "norm-screen threshold must be at least 1"
            );
        }
        if let Some(k) = c.guard.quarantine_after {
            assert!(k > 0, "quarantine_after must be positive");
            assert!(
                c.guard.quarantine_secs > 0.0,
                "quarantine_secs must be positive"
            );
        }
        if let crate::aggregate::AggRule::TrimmedMean { frac } = c.guard.agg_rule {
            assert!(
                (0.0..0.5).contains(&frac),
                "trimmed-mean frac must be in [0, 0.5)"
            );
        }
        c
    }
}

/// The codec a strategy uses when none is overridden: FedAT compresses with
/// polyline precision 4 (§7, *Implementation and Setup*); the baselines send
/// raw weights as in their reference implementations.
pub fn default_codec(strategy: StrategyKind) -> CodecKind {
    match strategy {
        StrategyKind::FedAt => CodecKind::Polyline {
            precision: 4,
            delta: true,
        },
        _ => CodecKind::None,
    }
}

/// Parses a `FEDAT_CODEC`-style override string; unknown values are ignored
/// (the `FEDAT_SIMD` idiom: an experiment must never fail because an env
/// knob was misspelled — it just runs the default).
pub fn parse_codec(s: &str) -> Option<CodecKind> {
    match s.to_ascii_lowercase().as_str() {
        "none" | "raw" => Some(CodecKind::None),
        "polyline" => Some(CodecKind::Polyline {
            precision: 4,
            delta: true,
        }),
        "quantized" | "quantized8" => Some(CodecKind::Quantized { bits: 8 }),
        "quantized4" => Some(CodecKind::Quantized { bits: 4 }),
        "delta-rle" | "deltarle" | "rle" => Some(CodecKind::DeltaRle),
        "topk" => Some(CodecKind::TopK { per_mille: 50 }),
        _ => None,
    }
}

/// The codec named by the `FEDAT_CODEC` environment variable, if any.
/// Used by the CI `codec` lane to run the whole core suite over a
/// compressed wire path without touching configs.
pub fn codec_from_env() -> Option<CodecKind> {
    std::env::var("FEDAT_CODEC")
        .ok()
        .and_then(|s| parse_codec(&s))
}

/// Resolution order for the wire codec: an explicit config override wins,
/// then `FEDAT_CODEC`, then the strategy default. Explicit configs beating
/// the env var keeps codec-specific tests meaningful under the CI lane.
pub fn resolve_codec(cfg_codec: Option<CodecKind>, strategy: StrategyKind) -> CodecKind {
    cfg_codec
        .or_else(codec_from_env)
        .unwrap_or_else(|| default_codec(strategy))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_match_paper() {
        let c = ExperimentConfig::builder().build();
        assert_eq!(c.clients_per_round, 10);
        assert_eq!(c.local_epochs, 3);
        assert_eq!(c.batch_size, 10);
        assert_eq!(c.num_tiers, 5);
        assert!((c.lambda - 0.4).abs() < 1e-9);
    }

    #[test]
    fn builder_overrides_stick() {
        let c = ExperimentConfig::builder()
            .strategy(StrategyKind::FedAvg)
            .rounds(42)
            .clients_per_round(2)
            .lambda(0.0)
            .seed(9)
            .build();
        assert_eq!(c.strategy, StrategyKind::FedAvg);
        assert_eq!(c.rounds, 42);
        assert_eq!(c.clients_per_round, 2);
        assert_eq!(c.lambda, 0.0);
        assert_eq!(c.seed, 9);
    }

    #[test]
    fn default_codecs() {
        assert_eq!(
            default_codec(StrategyKind::FedAt),
            CodecKind::Polyline {
                precision: 4,
                delta: true
            }
        );
        assert_eq!(default_codec(StrategyKind::FedAvg), CodecKind::None);
        assert_eq!(default_codec(StrategyKind::FedAsync), CodecKind::None);
    }

    #[test]
    fn codec_override_strings_parse() {
        assert_eq!(parse_codec("none"), Some(CodecKind::None));
        assert_eq!(parse_codec("raw"), Some(CodecKind::None));
        assert_eq!(
            parse_codec("Polyline"),
            Some(CodecKind::Polyline {
                precision: 4,
                delta: true
            })
        );
        assert_eq!(
            parse_codec("quantized"),
            Some(CodecKind::Quantized { bits: 8 })
        );
        assert_eq!(
            parse_codec("quantized4"),
            Some(CodecKind::Quantized { bits: 4 })
        );
        assert_eq!(parse_codec("delta-rle"), Some(CodecKind::DeltaRle));
        assert_eq!(parse_codec("topk"), Some(CodecKind::TopK { per_mille: 50 }));
        assert_eq!(parse_codec("zstd"), None); // unknown → ignored
    }

    #[test]
    fn explicit_codec_beats_env_and_default() {
        // Whatever FEDAT_CODEC says, an explicit config wins…
        assert_eq!(
            resolve_codec(Some(CodecKind::DeltaRle), StrategyKind::FedAvg),
            CodecKind::DeltaRle
        );
        // …and with no override and no env the strategy default applies.
        if std::env::var("FEDAT_CODEC").is_err() {
            assert_eq!(
                resolve_codec(None, StrategyKind::FedAt),
                default_codec(StrategyKind::FedAt)
            );
        }
    }

    #[test]
    fn strategy_names() {
        assert_eq!(StrategyKind::FedAt.name(), "FedAT");
        assert_eq!(StrategyKind::AsoFed.name(), "ASO-Fed");
        assert_eq!(StrategyKind::all().len(), 6);
    }

    #[test]
    #[should_panic(expected = "rounds must be positive")]
    fn zero_rounds_rejected() {
        let _ = ExperimentConfig::builder().rounds(0).build();
    }

    #[test]
    fn guard_default_is_inert() {
        let c = ExperimentConfig::builder().build();
        assert!(c.guard.is_inert());
        assert!(!c.guard.screens_updates());
        assert_eq!(c.guard.agg_rule, crate::aggregate::AggRule::WeightedMean);
        // Any single knob wakes the screen.
        let g = GuardPolicy {
            finite_check: true,
            ..GuardPolicy::default()
        };
        assert!(g.screens_updates() && !g.is_inert());
        let g = GuardPolicy {
            norm_screen: Some(NormScreen::default()),
            ..GuardPolicy::default()
        };
        assert!(g.screens_updates());
        let g = GuardPolicy {
            quarantine_after: Some(3),
            ..GuardPolicy::default()
        };
        assert!(g.screens_updates());
    }

    #[test]
    #[should_panic(expected = "trimmed-mean frac")]
    fn out_of_range_trim_rejected() {
        let _ = ExperimentConfig::builder()
            .agg_rule(crate::aggregate::AggRule::TrimmedMean { frac: 0.5 })
            .build();
    }
}
