//! Global and per-client evaluation, plus the robustness metrics of
//! Definition 3.1 (convergence speed, accuracy variance, prediction
//! accuracy).

use fedat_data::dataset::Dataset;
use fedat_data::suite::FedTask;
use fedat_nn::metrics::evaluate_batched;
use fedat_nn::model::{EvalResult, Model};

/// A reusable evaluator holding one model instance and a fixed test subset.
pub struct Evaluator {
    model: Box<dyn Model>,
    test: Dataset,
    batch: usize,
}

impl Evaluator {
    /// Builds an evaluator over (a fixed subset of) the task's pooled test
    /// set. `subset` caps the number of test rows (0 = use everything); the
    /// subset is the deterministic prefix — the pooled test set is already
    /// seed-shuffled per client, and a fixed subset keeps every strategy's
    /// evaluation identical.
    pub fn new(task: &FedTask, subset: usize, seed: u64) -> Self {
        let full = &task.fed.global_test;
        let test = if subset > 0 && subset < full.len() {
            full.subset(&(0..subset).collect::<Vec<_>>())
        } else {
            full.clone()
        };
        Evaluator {
            model: task.model.build(seed),
            test,
            batch: 64,
        }
    }

    /// Loss/accuracy of `weights` on the evaluation subset.
    pub fn evaluate(&mut self, weights: &[f32]) -> EvalResult {
        self.model.set_weights(weights);
        evaluate_batched(self.model.as_mut(), &self.test.x, &self.test.y, self.batch)
    }

    /// Number of evaluation rows.
    pub fn test_rows(&self) -> usize {
        self.test.len()
    }
}

/// Per-client test accuracies of a single global model — the basis of the
/// paper's accuracy-variance metric (Table 1 `Norm. Var.` rows).
pub fn per_client_accuracy(task: &FedTask, weights: &[f32], seed: u64) -> Vec<f32> {
    let mut model = task.model.build(seed);
    model.set_weights(weights);
    task.fed
        .clients
        .iter()
        .map(|c| evaluate_batched(model.as_mut(), &c.test.x, &c.test.y, 64).accuracy)
        .collect()
}

/// Population variance of per-client accuracies.
pub fn accuracy_variance(per_client: &[f32]) -> f32 {
    if per_client.is_empty() {
        return 0.0;
    }
    let n = per_client.len() as f32;
    let mean = per_client.iter().sum::<f32>() / n;
    per_client
        .iter()
        .map(|a| (a - mean) * (a - mean))
        .sum::<f32>()
        / n
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedat_data::suite;

    #[test]
    fn evaluator_subset_caps_rows() {
        let task = suite::sent140_like(10, 1);
        let full = Evaluator::new(&task, 0, 1);
        let capped = Evaluator::new(&task, 16, 1);
        assert!(full.test_rows() > 16);
        assert_eq!(capped.test_rows(), 16);
    }

    #[test]
    fn evaluation_is_deterministic_per_weights() {
        let task = suite::sent140_like(8, 2);
        let w = task.model.build(5).weights();
        let mut e1 = Evaluator::new(&task, 0, 1);
        let mut e2 = Evaluator::new(&task, 0, 1);
        let r1 = e1.evaluate(&w);
        let r2 = e2.evaluate(&w);
        assert_eq!(r1.loss, r2.loss);
        assert_eq!(r1.accuracy, r2.accuracy);
    }

    #[test]
    fn per_client_accuracy_has_one_entry_per_client() {
        let task = suite::sent140_like(7, 3);
        let w = task.model.build(5).weights();
        let accs = per_client_accuracy(&task, &w, 1);
        assert_eq!(accs.len(), 7);
        assert!(accs.iter().all(|&a| (0.0..=1.0).contains(&a)));
    }

    #[test]
    fn variance_of_constant_is_zero() {
        assert_eq!(accuracy_variance(&[0.5, 0.5, 0.5]), 0.0);
        assert_eq!(accuracy_variance(&[]), 0.0);
    }

    #[test]
    fn variance_orders_spread() {
        let tight = accuracy_variance(&[0.5, 0.52, 0.48]);
        let wide = accuracy_variance(&[0.1, 0.9, 0.5]);
        assert!(wide > tight * 10.0);
    }
}
