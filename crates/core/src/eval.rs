//! Global and per-client evaluation, plus the robustness metrics of
//! Definition 3.1 (convergence speed, accuracy variance, prediction
//! accuracy).

use fedat_data::dataset::Dataset;
use fedat_data::suite::FedTask;
use fedat_nn::metrics::{evaluate_batched, pooled_eval, StreamingEvaluator};
use fedat_nn::model::EvalResult;
use fedat_nn::models::with_cached_model;
use fedat_tensor::parallel;
use fedat_tensor::rng::{rng_for, shuffle, tags};

/// Evaluation mini-batch size (also the per-client sweep batch).
const EVAL_BATCH: usize = 64;

/// A reusable evaluator holding a streaming model evaluator and a fixed
/// test subset.
pub struct Evaluator {
    eval: StreamingEvaluator,
    test: Dataset,
}

impl Evaluator {
    /// Builds an evaluator over (a fixed subset of) the task's pooled test
    /// set. `subset` caps the number of test rows (0 = use everything).
    ///
    /// The pooled test set is the *concatenation of the per-client test
    /// splits in client order*, so a prefix would over-represent the first
    /// clients' classes under non-IID partitions and skew every accuracy
    /// trace. The subset is therefore drawn by a seed-derived shuffle of
    /// the row indices — deterministic for a given seed and shared by
    /// every strategy, so method comparisons stay apples-to-apples.
    pub fn new(task: &FedTask, subset: usize, seed: u64) -> Self {
        let full = &task.fed.global_test;
        let test = if subset > 0 && subset < full.len() {
            let mut idx: Vec<usize> = (0..full.len()).collect();
            shuffle(&mut rng_for(seed, tags::EVAL), &mut idx);
            idx.truncate(subset);
            full.subset(&idx)
        } else {
            full.clone()
        };
        Evaluator {
            eval: StreamingEvaluator::new(task.model.clone(), seed, EVAL_BATCH),
            test,
        }
    }

    /// Loss/accuracy of `weights` on the evaluation subset. Mini-batches
    /// stream across the kernel pool; results are bit-identical to a
    /// serial sweep for any thread count (see [`StreamingEvaluator`]).
    pub fn evaluate(&mut self, weights: &[f32]) -> EvalResult {
        self.eval.evaluate(weights, &self.test.x, &self.test.y)
    }

    /// Number of evaluation rows.
    pub fn test_rows(&self) -> usize {
        self.test.len()
    }
}

/// Per-client test accuracies of a single global model — the basis of the
/// paper's accuracy-variance metric (Table 1 `Norm. Var.` rows).
///
/// The sweep is sharded across clients on the kernel pool: each band of
/// clients is evaluated serially on a thread-cached model instance and
/// every accuracy lands in its own slot, so the result is bit-identical
/// to the serial sweep for any thread count.
pub fn per_client_accuracy(task: &FedTask, weights: &[f32], seed: u64) -> Vec<f32> {
    let clients = &task.fed.clients;
    if !pooled_eval() {
        // Serial baseline: one freshly built model sweeps every client.
        let mut model = task.model.build(seed);
        model.set_weights(weights);
        return clients
            .iter()
            .map(|c| evaluate_batched(model.as_mut(), &c.test.x, &c.test.y, EVAL_BATCH).accuracy)
            .collect();
    }
    let mut accs = vec![0.0f32; clients.len()];
    let max_rows = clients.iter().map(|c| c.test.len()).max().unwrap_or(0);
    let threads = parallel::plan_threads(clients.len(), 4 * max_rows * task.fed.features);
    parallel::for_each_row_band(&mut accs, 1, threads, |first, band| {
        with_cached_model(&task.model, seed, |model| {
            model.set_weights(weights);
            for (i, slot) in band.iter_mut().enumerate() {
                let c = &clients[first + i];
                *slot = evaluate_batched(model, &c.test.x, &c.test.y, EVAL_BATCH).accuracy;
            }
        });
    });
    accs
}

/// Population variance of per-client accuracies.
pub fn accuracy_variance(per_client: &[f32]) -> f32 {
    if per_client.is_empty() {
        return 0.0;
    }
    let n = per_client.len() as f32;
    let mean = per_client.iter().sum::<f32>() / n;
    per_client
        .iter()
        .map(|a| (a - mean) * (a - mean))
        .sum::<f32>()
        / n
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedat_data::federated::{ClientData, FederatedDataset};
    use fedat_data::suite;
    use fedat_nn::models::ModelSpec;
    use fedat_tensor::Tensor;

    /// A federation whose pooled test set is maximally client-ordered:
    /// client `i`'s test rows all carry label `i`, so any prefix of
    /// `global_test` sees only the first clients' labels.
    fn label_striped_task(n_clients: usize, rows_per_client: usize) -> FedTask {
        let make = |label: u32| {
            let x = Tensor::from_vec(
                vec![label as f32; rows_per_client * 2],
                &[rows_per_client, 2],
            );
            fedat_data::dataset::Dataset::new(x, vec![label; rows_per_client], n_clients)
        };
        let clients: Vec<ClientData> = (0..n_clients)
            .map(|i| ClientData {
                train: make(i as u32),
                test: make(i as u32),
            })
            .collect();
        let tests: Vec<&fedat_data::dataset::Dataset> = clients.iter().map(|c| &c.test).collect();
        let global_test = fedat_data::dataset::Dataset::concat(&tests);
        FedTask {
            name: "label-striped".into(),
            fed: FederatedDataset {
                clients,
                global_test,
                classes: n_clients,
                features: 2,
                targets_per_row: 1,
            },
            model: ModelSpec::Logistic {
                input: 2,
                classes: n_clients,
            },
            target_accuracy: 0.5,
        }
    }

    /// Regression: the capped eval subset must be a seed-shuffled sample of
    /// the pooled test set, not its client-order prefix. With non-IID
    /// partitions a prefix over-represents the first clients' classes and
    /// skews every accuracy trace (the pre-fix behavior: a 20-row cap over
    /// this 10-client federation saw only client 0's label).
    #[test]
    fn capped_subset_draws_from_late_clients() {
        let task = label_striped_task(10, 20);
        let e = Evaluator::new(&task, 20, 7);
        assert_eq!(e.test_rows(), 20);
        let labels: std::collections::BTreeSet<u32> = e.test.y.iter().copied().collect();
        assert!(
            labels.iter().any(|&l| l >= 5),
            "capped subset drew only from early clients: {labels:?}"
        );
        assert!(
            labels.len() > 2,
            "capped subset is not a cross-client sample: {labels:?}"
        );
        // The subset is a pure function of the seed: every strategy of an
        // experiment (same cfg.seed) evaluates on the same rows.
        let e2 = Evaluator::new(&task, 20, 7);
        assert_eq!(e.test.y, e2.test.y);
        assert_ne!(
            Evaluator::new(&task, 20, 8).test.y,
            e.test.y,
            "different seeds should draw different subsets"
        );
    }

    #[test]
    fn evaluator_subset_caps_rows() {
        let task = suite::sent140_like(10, 1);
        let full = Evaluator::new(&task, 0, 1);
        let capped = Evaluator::new(&task, 16, 1);
        assert!(full.test_rows() > 16);
        assert_eq!(capped.test_rows(), 16);
    }

    #[test]
    fn evaluation_is_deterministic_per_weights() {
        let task = suite::sent140_like(8, 2);
        let w = task.model.build(5).weights();
        let mut e1 = Evaluator::new(&task, 0, 1);
        let mut e2 = Evaluator::new(&task, 0, 1);
        let r1 = e1.evaluate(&w);
        let r2 = e2.evaluate(&w);
        assert_eq!(r1.loss, r2.loss);
        assert_eq!(r1.accuracy, r2.accuracy);
    }

    #[test]
    fn per_client_sweep_serial_and_pooled_agree_bitwise() {
        // The benchmark baseline (fresh model, serial sweep) and the
        // default pooled path (thread-cached models, client bands on the
        // pool) must produce identical accuracies.
        let task = suite::cifar10_like(9, 2, 4);
        let w = task.model.build(6).weights();
        fedat_nn::metrics::set_pooled_eval(false);
        let serial = per_client_accuracy(&task, &w, 4);
        fedat_nn::metrics::set_pooled_eval(true);
        let mut g = crate::exec::ToggleGuard::new();
        for threads in [1usize, 4] {
            g.max_threads(threads);
            let pooled = per_client_accuracy(&task, &w, 4);
            assert_eq!(serial, pooled, "sweep diverged at {threads} threads");
        }
    }

    #[test]
    fn per_client_accuracy_has_one_entry_per_client() {
        let task = suite::sent140_like(7, 3);
        let w = task.model.build(5).weights();
        let accs = per_client_accuracy(&task, &w, 1);
        assert_eq!(accs.len(), 7);
        assert!(accs.iter().all(|&a| (0.0..=1.0).contains(&a)));
    }

    #[test]
    fn variance_of_constant_is_zero() {
        assert_eq!(accuracy_variance(&[0.5, 0.5, 0.5]), 0.0);
        assert_eq!(accuracy_variance(&[]), 0.0);
    }

    #[test]
    fn variance_orders_spread() {
        let tight = accuracy_variance(&[0.5, 0.52, 0.48]);
        let wide = accuracy_variance(&[0.1, 0.9, 0.5]);
        assert!(wide > tight * 10.0);
    }
}
