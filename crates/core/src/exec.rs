//! Execution-mode toggle for client training: speculative vs. inline.
//!
//! [`train_client`](crate::local::train_client) is a pure function of
//! `(task, client, downloaded weights, config, epochs, selection_round,
//! use_prox)` — it reads no simulator state and draws from no shared RNG —
//! so every dispatched client can start training the moment it is
//! *dispatched* instead of the moment its compute event *fires*. Under
//! [`ExecMode::Speculative`] (the default) each dispatch submits a training
//! job to the persistent kernel pool and the event loop merely *joins* the
//! result when the completion event arrives; virtual time, event order,
//! traffic accounting and the RNG streams are untouched, so the full trace
//! is bit-identical to inline execution by construction (pinned by
//! `strategy_behavior.rs`).
//!
//! [`ExecMode::Inline`] restores train-at-completion on the event-loop
//! thread — the measured baseline for `BENCH_fl_round.json`, mirroring the
//! `FEDAT_SIMD`/`AggKernel` baseline toggles. The environment variable
//! `FEDAT_EXEC=inline` flips the process default (CI runs the whole suite a
//! second time this way).
//!
//! The only observable cost of speculation is *wasted work*: a client that
//! drops out mid-compute has already been trained (or is mid-training) when
//! its `dropped` completion arrives, and the result is discarded.
//! [`speculative_discards`] counts those for the perf accounting in
//! `docs/PERF.md`.

use fedat_tensor::ops::{AggKernel, NtKernel};
use fedat_tensor::parallel::SpawnMode;
use fedat_tensor::simd::SimdKernel;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;

/// When client training actually executes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecMode {
    /// Launch the training job on the kernel pool at *dispatch*; join the
    /// result at the completion event. The default.
    Speculative,
    /// Train on the event-loop thread when the completion event fires —
    /// the seed's behavior, kept as the measured baseline.
    Inline,
}

const M_UNSET: u8 = 0;
const M_SPECULATIVE: u8 = 1;
const M_INLINE: u8 = 2;

/// Active mode; initialized lazily from `FEDAT_EXEC` on first query.
static MODE: AtomicU8 = AtomicU8::new(M_UNSET);

/// Speculative training results discarded because the client dropped out
/// before its compute event fired.
static DISCARDS: AtomicU64 = AtomicU64::new(0);

/// Training jobs launched speculatively (denominator for the wasted-work
/// ratio).
static LAUNCHES: AtomicU64 = AtomicU64::new(0);

/// Selects the execution mode. Both modes produce bit-identical traces —
/// the choice only changes wall-clock speed (and wasted work on dropouts).
pub fn set_exec_mode(mode: ExecMode) {
    MODE.store(
        match mode {
            ExecMode::Speculative => M_SPECULATIVE,
            ExecMode::Inline => M_INLINE,
        },
        Ordering::Relaxed,
    );
}

/// The active [`ExecMode`]. Defaults to `Speculative`; the environment
/// variable `FEDAT_EXEC=inline` flips the process default before any
/// override.
pub fn exec_mode() -> ExecMode {
    let mut v = MODE.load(Ordering::Relaxed);
    if v == M_UNSET {
        let from_env = match std::env::var("FEDAT_EXEC").as_deref() {
            Ok(s) if s.eq_ignore_ascii_case("inline") => M_INLINE,
            _ => M_SPECULATIVE,
        };
        // Only the unset state may take the env default: a concurrent
        // `set_exec_mode` must never be clobbered by this lazy init.
        v = match MODE.compare_exchange(M_UNSET, from_env, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => from_env,
            Err(current) => current,
        };
    }
    if v == M_INLINE {
        ExecMode::Inline
    } else {
        ExecMode::Speculative
    }
}

/// Process-lifetime count of speculative results thrown away on dropout.
pub fn speculative_discards() -> u64 {
    DISCARDS.load(Ordering::Relaxed)
}

/// Process-lifetime count of speculatively launched training jobs.
pub fn speculative_launches() -> u64 {
    LAUNCHES.load(Ordering::Relaxed)
}

pub(crate) fn note_launch() {
    LAUNCHES.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn note_discard() {
    DISCARDS.fetch_add(1, Ordering::Relaxed);
}

// ----------------------------------------------------------------------
// ExecCtx: per-run execution configuration
// ----------------------------------------------------------------------

/// The complete execution configuration of *one* experiment run: the
/// [`ExecMode`] plus a snapshot of every tensor-layer kernel toggle
/// ([`fedat_tensor::ctx::KernelCtx`]).
///
/// Resolution happens **once**, at run start
/// ([`run_experiment_shared`](crate::experiment::run_experiment_shared)):
///
/// 1. [`ExecCtx::from_env`] reads the *default layer* — the process
///    globals, which carry the `FEDAT_EXEC`/`FEDAT_SIMD` env defaults and
///    any [`ToggleGuard`] scoping in force on the calling thread,
/// 2. the config's [`ExecOverrides`](crate::config::ExecOverrides) are
///    applied field-by-field on top.
///
/// The result is immutable for the run's lifetime: it is installed as the
/// thread-local kernel overlay ([`ExecCtx::enter`]) so every kernel the run
/// touches — including work it ships across the pool — reads *this* run's
/// configuration, and it is threaded through `ServerCore` so the training
/// launch path never consults the process-global [`exec_mode`] again.
/// Two concurrent `run_experiment_shared` calls therefore cannot read each
/// other's toggles — the cross-talk bug this type exists to fix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExecCtx {
    /// When client training executes (speculative vs. inline).
    pub mode: ExecMode,
    /// The tensor-layer kernel selections and worker hints.
    pub kernels: fedat_tensor::ctx::KernelCtx,
}

impl ExecCtx {
    /// The default layer: the effective process-wide settings at call time
    /// (env-initialized globals, any `ToggleGuard` scoping, or an already
    /// installed overlay on this thread).
    pub fn from_env() -> Self {
        ExecCtx {
            mode: exec_mode(),
            kernels: fedat_tensor::ctx::snapshot(),
        }
    }

    /// Resolves a run's execution context: [`ExecCtx::from_env`] with the
    /// config's overrides applied on top.
    pub fn resolve(cfg: &crate::config::ExperimentConfig) -> Self {
        let mut ctx = ExecCtx::from_env();
        let o = cfg.exec;
        if let Some(m) = o.mode {
            ctx.mode = m;
        }
        if let Some(k) = o.simd {
            ctx.kernels.simd = k;
        }
        if let Some(p) = o.portable_only {
            ctx.kernels.portable_only = p;
        }
        if let Some(k) = o.nt {
            ctx.kernels.nt = k;
        }
        if let Some(k) = o.agg {
            ctx.kernels.agg = k;
        }
        if let Some(n) = o.max_threads {
            ctx.kernels.max_threads = n.max(1);
        }
        if let Some(s) = o.spawn {
            ctx.kernels.spawn = s;
        }
        if let Some(n) = o.max_pool_jobs {
            ctx.kernels.max_pool_jobs = n;
        }
        ctx
    }

    /// Installs this context's kernel configuration as the calling thread's
    /// overlay for the guard's lifetime. Work submitted to the pool while
    /// the guard is live inherits the overlay automatically.
    pub fn enter(&self) -> fedat_tensor::ctx::OverlayGuard {
        fedat_tensor::ctx::install(self.kernels)
    }
}

// ----------------------------------------------------------------------
// ToggleGuard: RAII discipline for the process-global toggles
// ----------------------------------------------------------------------

/// One toggle's restore bookkeeping: a stack of `(guard id, prior value)`
/// entries, one per live [`ToggleGuard`] that touched the toggle.
///
/// Drop order is not guaranteed to mirror creation order (tests stash
/// guards in collections, proptest shrinking reorders scopes), so a plain
/// "restore my prior" drop can strand an intermediate value: with guards
/// A(prior=default) then B(prior=A's value), dropping A before B would end
/// at A's value, not the default. Instead, dropping a *non-top* entry
/// bequeaths its prior to the entry pushed right after it; only dropping
/// the *top* entry restores a value. Under any drop order the last guard
/// standing therefore restores the value captured before the first guard —
/// the process default. `toggle_guard.rs` proptests exactly this.
struct RestoreStack<T: Copy> {
    entries: Mutex<Vec<(u64, T)>>,
}

impl<T: Copy> RestoreStack<T> {
    const fn new() -> Self {
        RestoreStack {
            entries: Mutex::new(Vec::new()),
        }
    }

    /// Registers a guard's captured prior value; returns its entry id.
    fn push(&self, prior: T) -> u64 {
        static NEXT_ID: AtomicU64 = AtomicU64::new(1);
        let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        self.entries
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push((id, prior));
        id
    }

    /// Removes a guard's entry. `Some(prior)` means the entry was the top
    /// of the stack and the caller must write `prior` back to the toggle;
    /// `None` means a later guard is still live and inherited the prior.
    fn pop(&self, id: u64) -> Option<T> {
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        let i = entries.iter().position(|&(eid, _)| eid == id)?;
        let (_, prior) = entries.remove(i);
        if i == entries.len() {
            Some(prior)
        } else {
            entries[i].1 = prior;
            None
        }
    }
}

static EXEC_STACK: RestoreStack<ExecMode> = RestoreStack::new();
static SIMD_STACK: RestoreStack<SimdKernel> = RestoreStack::new();
static AGG_STACK: RestoreStack<AggKernel> = RestoreStack::new();
static NT_STACK: RestoreStack<NtKernel> = RestoreStack::new();
static PORTABLE_STACK: RestoreStack<bool> = RestoreStack::new();
static THREADS_STACK: RestoreStack<usize> = RestoreStack::new();
static POOL_JOBS_STACK: RestoreStack<usize> = RestoreStack::new();
static SPAWN_STACK: RestoreStack<SpawnMode> = RestoreStack::new();

/// RAII guard for the process-global execution toggles (`ExecMode`,
/// `SimdKernel`, `AggKernel`, `NtKernel`, plus the portable-only, thread-
/// count and pool-occupancy knobs): every mutation is captured and undone
/// on drop, on every exit path including panics and proptest shrink
/// failures.
///
/// This is the only sanctioned way for *tests* to mutate the toggles —
/// `fedat-lint` rule R5 flags raw `set_exec_mode`/`set_simd_kernel`/
/// `set_agg_kernel`/`set_nt_kernel` calls in test and library code, so a
/// leaked toggle can no longer bleed into tests scheduled later in the
/// same process (the bug class the old hand-rolled `entry_kernel = ...;
/// restore` dance in every test existed to paper over).
///
/// A guard captures a toggle's prior value the *first* time it touches it;
/// repeated mutations through the same guard re-point the toggle without
/// growing the restore state, so sweep loops are cheap:
///
/// ```
/// use fedat_core::exec::{ExecMode, ToggleGuard};
/// use fedat_tensor::simd::SimdKernel;
///
/// let mut g = ToggleGuard::new();
/// for mode in [ExecMode::Speculative, ExecMode::Inline] {
///     g.exec(mode).simd(SimdKernel::Scalar);
///     // ... run the scenario ...
/// }
/// drop(g); // everything back to the pre-guard values
/// ```
///
/// Guards nest (each inner guard restores the outer guard's value) and may
/// even be dropped out of order: the restore stacks guarantee that once
/// *all* guards are gone every toggle is back at its pre-first-guard value
/// (proptested in `crates/core/tests/toggle_guard.rs`).
#[derive(Default)]
pub struct ToggleGuard {
    exec: Option<u64>,
    simd: Option<u64>,
    agg: Option<u64>,
    nt: Option<u64>,
    portable: Option<u64>,
    threads: Option<u64>,
    pool_jobs: Option<u64>,
    spawn: Option<u64>,
}

impl ToggleGuard {
    /// A guard holding nothing yet; toggles are captured as they are set.
    pub fn new() -> Self {
        ToggleGuard::default()
    }

    /// Sets the [`ExecMode`], restoring the prior mode on drop.
    pub fn exec(&mut self, mode: ExecMode) -> &mut Self {
        if self.exec.is_none() {
            self.exec = Some(EXEC_STACK.push(exec_mode()));
        }
        // lint: allow(R5, reason = "ToggleGuard is the audited home of the raw setters")
        set_exec_mode(mode);
        self
    }

    /// Sets the [`SimdKernel`], restoring the prior kernel on drop.
    pub fn simd(&mut self, kernel: SimdKernel) -> &mut Self {
        if self.simd.is_none() {
            self.simd = Some(SIMD_STACK.push(fedat_tensor::simd::simd_kernel()));
        }
        // lint: allow(R5, reason = "ToggleGuard is the audited home of the raw setters")
        fedat_tensor::simd::set_simd_kernel(kernel);
        self
    }

    /// Sets the [`AggKernel`], restoring the prior kernel on drop.
    pub fn agg(&mut self, kernel: AggKernel) -> &mut Self {
        if self.agg.is_none() {
            self.agg = Some(AGG_STACK.push(fedat_tensor::ops::agg_kernel()));
        }
        // lint: allow(R5, reason = "ToggleGuard is the audited home of the raw setters")
        fedat_tensor::ops::set_agg_kernel(kernel);
        self
    }

    /// Sets the [`NtKernel`], restoring the prior kernel on drop.
    pub fn nt(&mut self, kernel: NtKernel) -> &mut Self {
        if self.nt.is_none() {
            self.nt = Some(NT_STACK.push(fedat_tensor::ops::nt_kernel()));
        }
        // lint: allow(R5, reason = "ToggleGuard is the audited home of the raw setters")
        fedat_tensor::ops::set_nt_kernel(kernel);
        self
    }

    /// Forces (or releases) the portable SIMD fallback, restoring on drop.
    pub fn portable_only(&mut self, portable: bool) -> &mut Self {
        if self.portable.is_none() {
            self.portable = Some(PORTABLE_STACK.push(fedat_tensor::simd::portable_only()));
        }
        // lint: allow(R5, reason = "ToggleGuard is the audited home of the raw setters")
        fedat_tensor::simd::set_portable_only(portable);
        self
    }

    /// Sets the fork-join band thread cap, restoring the prior cap on drop.
    pub fn max_threads(&mut self, n: usize) -> &mut Self {
        if self.threads.is_none() {
            self.threads = Some(THREADS_STACK.push(fedat_tensor::parallel::max_threads()));
        }
        // lint: allow(R5, reason = "ToggleGuard is the audited home of the raw setters")
        fedat_tensor::parallel::set_max_threads(n);
        self
    }

    /// Sets the pool-occupancy cap for submitted jobs, restoring on drop.
    pub fn max_pool_jobs(&mut self, cap: usize) -> &mut Self {
        if self.pool_jobs.is_none() {
            self.pool_jobs = Some(POOL_JOBS_STACK.push(fedat_tensor::pool::max_pool_jobs()));
        }
        // lint: allow(R5, reason = "ToggleGuard is the audited home of the raw setters")
        fedat_tensor::pool::set_max_pool_jobs(cap);
        self
    }

    /// Sets the fork-join [`SpawnMode`], restoring the prior mode on drop.
    pub fn spawn_mode(&mut self, mode: SpawnMode) -> &mut Self {
        if self.spawn.is_none() {
            self.spawn = Some(SPAWN_STACK.push(fedat_tensor::parallel::spawn_mode()));
        }
        // lint: allow(R5, reason = "ToggleGuard is the audited home of the raw setters")
        fedat_tensor::parallel::set_spawn_mode(mode);
        self
    }
}

impl Drop for ToggleGuard {
    fn drop(&mut self) {
        if let Some(prior) = self.exec.take().and_then(|id| EXEC_STACK.pop(id)) {
            // lint: allow(R5, reason = "ToggleGuard restore path — the raw setters' audited home")
            set_exec_mode(prior);
        }
        if let Some(prior) = self.simd.take().and_then(|id| SIMD_STACK.pop(id)) {
            // lint: allow(R5, reason = "ToggleGuard restore path — the raw setters' audited home")
            fedat_tensor::simd::set_simd_kernel(prior);
        }
        if let Some(prior) = self.agg.take().and_then(|id| AGG_STACK.pop(id)) {
            // lint: allow(R5, reason = "ToggleGuard restore path — the raw setters' audited home")
            fedat_tensor::ops::set_agg_kernel(prior);
        }
        if let Some(prior) = self.nt.take().and_then(|id| NT_STACK.pop(id)) {
            // lint: allow(R5, reason = "ToggleGuard restore path — the raw setters' audited home")
            fedat_tensor::ops::set_nt_kernel(prior);
        }
        if let Some(prior) = self.portable.take().and_then(|id| PORTABLE_STACK.pop(id)) {
            // lint: allow(R5, reason = "ToggleGuard restore path — the raw setters' audited home")
            fedat_tensor::simd::set_portable_only(prior);
        }
        if let Some(prior) = self.threads.take().and_then(|id| THREADS_STACK.pop(id)) {
            // lint: allow(R5, reason = "ToggleGuard restore path — the raw setters' audited home")
            fedat_tensor::parallel::set_max_threads(prior);
        }
        if let Some(prior) = self.pool_jobs.take().and_then(|id| POOL_JOBS_STACK.pop(id)) {
            // lint: allow(R5, reason = "ToggleGuard restore path — the raw setters' audited home")
            fedat_tensor::pool::set_max_pool_jobs(prior);
        }
        if let Some(prior) = self.spawn.take().and_then(|id| SPAWN_STACK.pop(id)) {
            // lint: allow(R5, reason = "ToggleGuard restore path — the raw setters' audited home")
            fedat_tensor::parallel::set_spawn_mode(prior);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toggle_round_trips() {
        let entry = exec_mode();
        // lint: allow(R5, reason = "this test exercises the raw setter itself")
        set_exec_mode(ExecMode::Inline);
        assert_eq!(exec_mode(), ExecMode::Inline);
        // lint: allow(R5, reason = "this test exercises the raw setter itself")
        set_exec_mode(ExecMode::Speculative);
        assert_eq!(exec_mode(), ExecMode::Speculative);
        // lint: allow(R5, reason = "this test exercises the raw setter itself")
        set_exec_mode(entry);
    }

    #[test]
    fn guard_restores_exec_mode() {
        let entry = exec_mode();
        {
            let mut g = ToggleGuard::new();
            g.exec(ExecMode::Inline);
            assert_eq!(exec_mode(), ExecMode::Inline);
            g.exec(ExecMode::Speculative);
            assert_eq!(exec_mode(), ExecMode::Speculative);
        }
        assert_eq!(exec_mode(), entry);
    }

    #[test]
    fn counters_are_monotone() {
        let d0 = speculative_discards();
        let l0 = speculative_launches();
        note_launch();
        note_discard();
        assert!(speculative_launches() > l0);
        assert!(speculative_discards() > d0);
    }
}
