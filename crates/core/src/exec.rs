//! Execution-mode toggle for client training: speculative vs. inline.
//!
//! [`train_client`](crate::local::train_client) is a pure function of
//! `(task, client, downloaded weights, config, epochs, selection_round,
//! use_prox)` — it reads no simulator state and draws from no shared RNG —
//! so every dispatched client can start training the moment it is
//! *dispatched* instead of the moment its compute event *fires*. Under
//! [`ExecMode::Speculative`] (the default) each dispatch submits a training
//! job to the persistent kernel pool and the event loop merely *joins* the
//! result when the completion event arrives; virtual time, event order,
//! traffic accounting and the RNG streams are untouched, so the full trace
//! is bit-identical to inline execution by construction (pinned by
//! `strategy_behavior.rs`).
//!
//! [`ExecMode::Inline`] restores train-at-completion on the event-loop
//! thread — the measured baseline for `BENCH_fl_round.json`, mirroring the
//! `FEDAT_SIMD`/`AggKernel` baseline toggles. The environment variable
//! `FEDAT_EXEC=inline` flips the process default (CI runs the whole suite a
//! second time this way).
//!
//! The only observable cost of speculation is *wasted work*: a client that
//! drops out mid-compute has already been trained (or is mid-training) when
//! its `dropped` completion arrives, and the result is discarded.
//! [`speculative_discards`] counts those for the perf accounting in
//! `docs/PERF.md`.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

/// When client training actually executes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecMode {
    /// Launch the training job on the kernel pool at *dispatch*; join the
    /// result at the completion event. The default.
    Speculative,
    /// Train on the event-loop thread when the completion event fires —
    /// the seed's behavior, kept as the measured baseline.
    Inline,
}

const M_UNSET: u8 = 0;
const M_SPECULATIVE: u8 = 1;
const M_INLINE: u8 = 2;

/// Active mode; initialized lazily from `FEDAT_EXEC` on first query.
static MODE: AtomicU8 = AtomicU8::new(M_UNSET);

/// Speculative training results discarded because the client dropped out
/// before its compute event fired.
static DISCARDS: AtomicU64 = AtomicU64::new(0);

/// Training jobs launched speculatively (denominator for the wasted-work
/// ratio).
static LAUNCHES: AtomicU64 = AtomicU64::new(0);

/// Selects the execution mode. Both modes produce bit-identical traces —
/// the choice only changes wall-clock speed (and wasted work on dropouts).
pub fn set_exec_mode(mode: ExecMode) {
    MODE.store(
        match mode {
            ExecMode::Speculative => M_SPECULATIVE,
            ExecMode::Inline => M_INLINE,
        },
        Ordering::Relaxed,
    );
}

/// The active [`ExecMode`]. Defaults to `Speculative`; the environment
/// variable `FEDAT_EXEC=inline` flips the process default before any
/// override.
pub fn exec_mode() -> ExecMode {
    let mut v = MODE.load(Ordering::Relaxed);
    if v == M_UNSET {
        let from_env = match std::env::var("FEDAT_EXEC").as_deref() {
            Ok(s) if s.eq_ignore_ascii_case("inline") => M_INLINE,
            _ => M_SPECULATIVE,
        };
        // Only the unset state may take the env default: a concurrent
        // `set_exec_mode` must never be clobbered by this lazy init.
        v = match MODE.compare_exchange(M_UNSET, from_env, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => from_env,
            Err(current) => current,
        };
    }
    if v == M_INLINE {
        ExecMode::Inline
    } else {
        ExecMode::Speculative
    }
}

/// Process-lifetime count of speculative results thrown away on dropout.
pub fn speculative_discards() -> u64 {
    DISCARDS.load(Ordering::Relaxed)
}

/// Process-lifetime count of speculatively launched training jobs.
pub fn speculative_launches() -> u64 {
    LAUNCHES.load(Ordering::Relaxed)
}

pub(crate) fn note_launch() {
    LAUNCHES.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn note_discard() {
    DISCARDS.fetch_add(1, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toggle_round_trips() {
        let entry = exec_mode();
        set_exec_mode(ExecMode::Inline);
        assert_eq!(exec_mode(), ExecMode::Inline);
        set_exec_mode(ExecMode::Speculative);
        assert_eq!(exec_mode(), ExecMode::Speculative);
        set_exec_mode(entry);
    }

    #[test]
    fn counters_are_monotone() {
        let d0 = speculative_discards();
        let l0 = speculative_launches();
        note_launch();
        note_discard();
        assert!(speculative_launches() > l0);
        assert!(speculative_discards() > d0);
    }
}
