//! One-call experiment orchestration: task + config → trace.

use crate::config::ExperimentConfig;
use crate::eval::{accuracy_variance, per_client_accuracy};
use crate::strategies::{build_strategy, FaultCounters};
use fedat_data::suite::FedTask;
use fedat_sim::fault::FaultLog;
use fedat_sim::fleet::{ClusterConfig, Fleet};
use fedat_sim::runtime::{run_logged, EventHandler, RunLimits, SimReport};
use fedat_sim::trace::Trace;
use fedat_sim::ChurnConfig;
use std::sync::Arc;

/// Everything an experiment produces.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// Accuracy/loss/bytes time series.
    pub trace: Trace,
    /// Simulator exit report.
    pub report: SimReport,
    /// Final global weights.
    pub final_weights: Vec<f32>,
    /// Global updates performed.
    pub global_updates: u64,
    /// Final per-client test accuracies (Definition 3.1 variance basis).
    pub per_client_accuracy: Vec<f32>,
    /// Average per-client accuracy variance over training checkpoints —
    /// the Table 1 `Norm. Var.` metric ("the average variance of test
    /// accuracy among all clients").
    pub accuracy_variance: f32,
    /// Time-ordered availability transitions and server fault-tolerance
    /// actions (down/up/timeout/retry/quorum/re-tier).
    pub faults: FaultLog,
    /// Aggregate fault-tolerance counters.
    pub fault_counters: FaultCounters,
    /// Per-tier update counts for tiered strategies (`None` otherwise).
    pub tier_updates: Option<Vec<u64>>,
}

impl Outcome {
    /// Best accuracy along the trace (the Table 1 metric).
    pub fn best_accuracy(&self) -> f32 {
        self.trace.best_accuracy()
    }
}

/// Runs one federated-learning experiment end to end.
///
/// The cluster defaults to the paper's medium testbed sized to the task's
/// client count; override via [`ExperimentConfig::cluster`].
///
/// This entry clones the task once into an [`Arc`]; when the task is
/// already shared — harness jobs fanning one dataset across strategies, or
/// loader-built corpora ([`FedTask::from_leaf_dir`]) that can run to
/// hundreds of MB — use [`run_experiment_shared`] to skip the copy.
///
/// # Panics
/// Panics if an explicit cluster's client count disagrees with the task.
pub fn run_experiment(task: &FedTask, cfg: &ExperimentConfig) -> Outcome {
    run_experiment_shared(&Arc::new(task.clone()), cfg)
}

/// [`run_experiment`] without the corpus copy: the strategy stack holds the
/// given [`Arc`] directly, so arbitrarily large loader-built tasks are
/// shared, never cloned.
///
/// # Panics
/// Panics if an explicit cluster's client count disagrees with the task.
pub fn run_experiment_shared(task: &Arc<FedTask>, cfg: &ExperimentConfig) -> Outcome {
    let cluster = cfg.cluster.clone().unwrap_or_else(|| {
        let n = task.fed.num_clients();
        let mut c = ClusterConfig::paper_medium(cfg.seed).with_clients(n);
        // The paper's 10 unstable clients assume a 100-client cluster; keep
        // the same 10% rate for smaller federations.
        c.n_unstable = c.n_unstable.min(n / 10);
        // Opt-in churn overlay (`FEDAT_CHURN=storm`) for soak lanes;
        // explicit clusters are never overridden.
        if let Some(churn) = ChurnConfig::from_env() {
            c.churn = churn;
        }
        c
    });
    assert_eq!(
        cluster.n_clients,
        task.fed.num_clients(),
        "cluster size must match the federation"
    );
    let fleet = Fleet::new(&cluster, task.fed.client_sizes());
    // Resolve the run's execution context ONCE — process-global toggles and
    // env are only the default layer under any per-config overrides — and
    // install its kernel overlay for the run's scope. Every thread-crossing
    // point below (speculative training jobs, pipelined evals, fork-join
    // regions) re-installs the overlay on the executing thread, so
    // concurrent runs with different contexts never read each other's
    // toggles.
    let exec = crate::exec::ExecCtx::resolve(cfg);
    let _overlay = exec.enter();
    let mut strategy = build_strategy(Arc::clone(task), cfg, &fleet, exec);
    let limits = RunLimits {
        max_time: cfg.max_time,
        max_events: 20_000_000,
    };
    let (report, faults) = {
        let handler: &mut dyn EventHandler = &mut *strategy;
        run_logged(handler, &fleet, cfg.seed, limits)
    };
    // Join the pipelined-eval straggler before reading any result.
    strategy.flush_evals();
    let final_weights = strategy.global_weights().to_vec();
    let per_client = per_client_accuracy(task, &final_weights, cfg.seed);
    // Mean of the in-training variance checkpoints plus the final state.
    let mut checkpoints = strategy.variance_checkpoints().to_vec();
    checkpoints.push(accuracy_variance(&per_client));
    let mean_variance = checkpoints.iter().sum::<f32>() / checkpoints.len() as f32;
    Outcome {
        trace: strategy.take_trace(),
        report,
        global_updates: strategy.global_updates(),
        accuracy_variance: mean_variance,
        per_client_accuracy: per_client,
        final_weights,
        faults,
        fault_counters: strategy.fault_counters(),
        tier_updates: strategy.tier_updates(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StrategyKind;
    use fedat_data::suite;

    fn quick_cfg(strategy: StrategyKind, rounds: u64, seed: u64) -> ExperimentConfig {
        ExperimentConfig::builder()
            .strategy(strategy)
            .rounds(rounds)
            .clients_per_round(3)
            .local_epochs(1)
            .eval_every(2)
            .seed(seed)
            .build()
    }

    #[test]
    fn every_strategy_runs_on_a_tiny_task() {
        let task = suite::sent140_like(10, 5);
        for strategy in StrategyKind::all() {
            let cfg = quick_cfg(strategy, 8, 5);
            let out = run_experiment(&task, &cfg);
            assert!(
                out.global_updates > 0,
                "{} performed no updates",
                strategy.name()
            );
            assert!(
                !out.trace.points.is_empty(),
                "{} recorded no trace",
                strategy.name()
            );
            assert!(out.final_weights.iter().all(|w| w.is_finite()));
            assert_eq!(out.per_client_accuracy.len(), 10);
        }
    }

    #[test]
    fn experiments_are_deterministic() {
        let task = suite::sent140_like(10, 6);
        let cfg = quick_cfg(StrategyKind::FedAt, 10, 6);
        let a = run_experiment(&task, &cfg);
        let b = run_experiment(&task, &cfg);
        assert_eq!(a.final_weights, b.final_weights);
        assert_eq!(a.trace.points.len(), b.trace.points.len());
        for (p, q) in a.trace.points.iter().zip(b.trace.points.iter()) {
            assert_eq!(p.accuracy, q.accuracy);
            assert_eq!(p.time, q.time);
            assert_eq!(p.up_bytes, q.up_bytes);
        }
    }

    #[test]
    fn seeds_change_outcomes() {
        let task = suite::sent140_like(10, 6);
        let a = run_experiment(&task, &quick_cfg(StrategyKind::FedAvg, 6, 1));
        let b = run_experiment(&task, &quick_cfg(StrategyKind::FedAvg, 6, 2));
        assert_ne!(a.final_weights, b.final_weights);
    }

    #[test]
    fn fedat_learns_on_separable_task() {
        let task = suite::sent140_like(12, 3);
        let cfg = ExperimentConfig::builder()
            .strategy(StrategyKind::FedAt)
            .rounds(150)
            .clients_per_round(4)
            .local_epochs(2)
            .eval_every(10)
            .seed(3)
            .build();
        let out = run_experiment(&task, &cfg);
        assert!(
            out.best_accuracy() > 0.65,
            "FedAT should learn the separable task: best {} (chance 0.5)",
            out.best_accuracy()
        );
    }

    #[test]
    fn traffic_is_monotone_along_trace() {
        let task = suite::sent140_like(8, 4);
        let out = run_experiment(&task, &quick_cfg(StrategyKind::FedAt, 12, 4));
        for w in out.trace.points.windows(2) {
            assert!(w[1].up_bytes >= w[0].up_bytes);
            assert!(w[1].down_bytes >= w[0].down_bytes);
        }
        let last = out.trace.points.last().unwrap();
        assert!(last.up_bytes > 0 && last.down_bytes > 0);
    }
}
