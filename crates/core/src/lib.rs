//! # fedat-core — FedAT and its baselines
//!
//! The paper's primary contribution (§4): a federated-learning server that
//! combines *synchronous intra-tier* training with *asynchronous cross-tier*
//! updates, a straggler-aware weighted aggregation heuristic (Eq. 5), a
//! local proximal constraint (Eq. 3), and polyline-compressed transfers
//! (§4.3) — plus faithful re-implementations of every baseline the paper
//! compares against (§6): FedAvg, TiFL, FedProx, FedAsync, and ASO-Fed.
//!
//! * [`config`] — experiment configuration (strategy, rounds, participation,
//!   optimizer, λ, codec, tiers),
//! * [`tiering`] — the profiling/tiering module, including mis-tiering
//!   injection for the robustness ablation,
//! * [`aggregate`] — intra-tier `n_k/N` averaging and the cross-tier
//!   `T_{tier(M+1−m)}/T` heuristic,
//! * [`local`] — client-side local training (Adam/SGD + proximal term,
//!   fixed pseudo-random mini-batch schedules),
//! * [`exec`] — the speculative-vs-inline execution toggle: training jobs
//!   launch on the kernel pool at dispatch and are joined bit-identically
//!   when the completion event fires,
//! * [`transport`] — codec-mediated uplink/downlink with byte accounting,
//! * [`strategies`] — the six FL methods as [`fedat_sim::EventHandler`]s,
//! * [`eval`] — global accuracy, per-client accuracy variance
//!   (Definition 3.1), robustness metrics,
//! * [`experiment`] — one-call experiment orchestration returning a
//!   [`Trace`](fedat_sim::Trace),
//! * [`concurrent`] — a real-thread FedAT server used to validate the
//!   asynchronous design outside the deterministic simulator.
//!
//! ```
//! use fedat_core::prelude::*;
//! use fedat_data::suite;
//!
//! let task = suite::sent140_like(12, 7).scaled(0.4);
//! let cfg = ExperimentConfig::builder()
//!     .strategy(StrategyKind::FedAt)
//!     .rounds(40)
//!     .clients_per_round(3)
//!     .seed(7)
//!     .build();
//! let outcome = run_experiment(&task, &cfg);
//! assert!(outcome.trace.best_accuracy() > 0.4);
//! ```

pub mod aggregate;
pub mod concurrent;
pub mod config;
pub mod eval;
pub mod exec;
pub mod experiment;
pub mod local;
pub mod staleness;
pub mod strategies;
pub mod theory;
pub mod tiering;
pub mod transport;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::config::{ExperimentConfig, OptimizerKind, StrategyKind};
    pub use crate::experiment::{run_experiment, run_experiment_shared, Outcome};
    pub use crate::tiering::TierAssignment;
    pub use fedat_sim::{Trace, TracePoint};
}

pub use config::{ExperimentConfig, OptimizerKind, StrategyKind};
pub use experiment::{run_experiment, run_experiment_shared, Outcome};
