//! Client-side local training (Algorithm 2 inner loop).

use crate::config::ExperimentConfig;
use fedat_data::suite::FedTask;
use fedat_nn::optim::ProxTerm;
use fedat_tensor::rng::{rng_for, tags};

/// The result a client uploads after local training.
#[derive(Clone, Debug)]
pub struct LocalUpdate {
    /// New local weights `w_k^{t+1}` (flattened).
    pub weights: Vec<f32>,
    /// Mean training loss over all local batches.
    pub mean_loss: f32,
    /// Local sample count `n_k` (the aggregation weight).
    pub n_samples: usize,
}

/// Runs `epochs` epochs of mini-batch training on `client`'s local data,
/// starting from the downloaded `global` weights.
///
/// The mini-batch order is a fixed pseudo-random function of
/// `(seed, client, selection_round)`, matching the paper's fixed schedules
/// (§6: "each client, once selected, would follow a fixed, pseudo-random
/// mini-batch schedule").
///
/// `use_prox` applies the Eq. (3) constraint `λ/2‖w − w_global‖²` around the
/// *downloaded* global model.
pub fn train_client(
    task: &FedTask,
    client: usize,
    global: &[f32],
    cfg: &ExperimentConfig,
    epochs: usize,
    selection_round: u64,
    use_prox: bool,
) -> LocalUpdate {
    let data = &task.fed.clients[client].train;
    let mut model = task.model.build(cfg.seed);
    model.set_weights(global);
    let mut opt = cfg.optimizer.build();
    let prox = if use_prox && cfg.lambda > 0.0 {
        Some(ProxTerm::new(cfg.lambda, global.to_vec()))
    } else {
        None
    };
    let mut batch_rng = rng_for(
        cfg.seed ^ ((client as u64) << 16) ^ selection_round.wrapping_mul(0x2545_F491),
        tags::BATCHES,
    );
    let mut total_loss = 0.0f64;
    let mut batches = 0usize;
    for _ in 0..epochs.max(1) {
        for batch in data.batch_schedule(cfg.batch_size, &mut batch_rng) {
            let (x, y) = data.gather_batch(&batch);
            total_loss += model.train_batch(&x, &y, opt.as_mut(), prox.as_ref()) as f64;
            batches += 1;
        }
    }
    LocalUpdate {
        weights: model.weights(),
        mean_loss: (total_loss / batches.max(1) as f64) as f32,
        n_samples: data.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentConfig;
    use fedat_data::suite;
    use fedat_tensor::ops::dist_sq;

    fn tiny_task() -> FedTask {
        suite::sent140_like(6, 3)
    }

    fn cfg() -> ExperimentConfig {
        ExperimentConfig::builder().seed(3).batch_size(8).build()
    }

    #[test]
    fn training_changes_weights_and_reports_loss() {
        let task = tiny_task();
        let global = task.model.build(1).weights();
        let up = train_client(&task, 0, &global, &cfg(), 2, 0, false);
        assert_eq!(up.weights.len(), global.len());
        assert!(dist_sq(&up.weights, &global) > 0.0, "weights did not move");
        assert!(up.mean_loss.is_finite() && up.mean_loss > 0.0);
        assert_eq!(up.n_samples, task.fed.clients[0].train.len());
    }

    #[test]
    fn same_selection_round_is_deterministic() {
        let task = tiny_task();
        let global = task.model.build(1).weights();
        let a = train_client(&task, 1, &global, &cfg(), 2, 5, true);
        let b = train_client(&task, 1, &global, &cfg(), 2, 5, true);
        assert_eq!(a.weights, b.weights);
        assert_eq!(a.mean_loss, b.mean_loss);
    }

    #[test]
    fn different_selection_rounds_differ() {
        let task = tiny_task();
        let global = task.model.build(1).weights();
        let a = train_client(&task, 1, &global, &cfg(), 2, 5, false);
        let b = train_client(&task, 1, &global, &cfg(), 2, 6, false);
        assert_ne!(a.weights, b.weights, "batch schedule should vary by round");
    }

    #[test]
    fn prox_reduces_drift_from_global() {
        let task = tiny_task();
        let global = task.model.build(1).weights();
        let mut c = cfg();
        c.lambda = 5.0; // strong pull for an unambiguous test
        let with_prox = train_client(&task, 2, &global, &c, 3, 0, true);
        c.lambda = 0.0;
        let without = train_client(&task, 2, &global, &c, 3, 0, true);
        let d_prox = dist_sq(&with_prox.weights, &global);
        let d_free = dist_sq(&without.weights, &global);
        assert!(
            d_prox < d_free,
            "prox run drifted {d_prox} ≥ unconstrained {d_free}"
        );
    }

    #[test]
    fn more_epochs_more_progress() {
        let task = tiny_task();
        let global = task.model.build(1).weights();
        let short = train_client(&task, 3, &global, &cfg(), 1, 0, false);
        let long = train_client(&task, 3, &global, &cfg(), 6, 0, false);
        // Longer training should end with (weakly) lower mean loss on this
        // convex task.
        assert!(long.mean_loss <= short.mean_loss + 0.05);
    }
}
