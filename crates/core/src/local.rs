//! Client-side local training (Algorithm 2 inner loop).
//!
//! This is the hottest path in the whole system: every simulated dispatch
//! of every strategy funnels through [`train_client`]. Three things keep it
//! cheap:
//!
//! * **Model reuse** — simulated clients are stateless between rounds, so
//!   the (expensive, RNG-driven) model construction is hoisted into a
//!   thread-local cache keyed by [`fedat_nn::models::ModelSpec`]; each dispatch just loads
//!   the downloaded weights with `set_weights`. The per-dispatch rebuild is
//!   kept behind [`set_model_reuse`] as the measured baseline.
//! * **Zero-copy globals** — the downloaded weights arrive as a shared
//!   `Arc<[f32]>` (one decoded broadcast per tier round) and the proximal
//!   term holds the same `Arc` instead of cloning the full vector.
//! * **Scratch batches** — mini-batches are gathered into recycled
//!   scratch-arena storage, so steady-state training performs no per-batch
//!   allocations.
//! * **Speculative execution** — [`train_client`] is pure in its arguments,
//!   so strategies wrap each dispatch in a [`TrainJob`] and launch it on
//!   the kernel pool *at dispatch time* ([`TrainHandle::launch`]); the
//!   event loop joins the finished result when the completion event fires.
//!   See [`crate::exec`] for the mode toggle and the determinism argument.

use crate::config::ExperimentConfig;
use crate::exec::ExecMode;
use fedat_data::suite::FedTask;
use fedat_nn::model::Model;
use fedat_nn::optim::ProxTerm;
use fedat_tensor::rng::{rng_for, tags};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Whether clients reuse a cached model instance per thread (the default)
/// or rebuild the model on every dispatch (the naive baseline).
static REUSE_MODELS: AtomicBool = AtomicBool::new(true);

/// Enables or disables thread-local model reuse. `false` restores the
/// seed's behavior (a full `ModelSpec::build` per dispatch) and exists for
/// the `BENCH_fl_round.json` baseline.
///
/// The cache itself lives in [`fedat_nn::models::with_cached_model`] and
/// is shared with the pooled evaluators, so the reuse policy cannot drift
/// between the training and evaluation paths. Reuse is behavior-neutral:
/// every weight is overwritten by `set_weights` before training, and none
/// of the spec-built architectures carry non-parameter state across
/// batches — an invariant documented on [`fedat_nn::models::ModelSpec::build`] and pinned
/// (for the dense and conv families) by
/// `model_reuse_matches_fresh_builds_exactly`.
pub fn set_model_reuse(enabled: bool) {
    REUSE_MODELS.store(enabled, Ordering::Relaxed);
}

/// Whether model reuse is enabled.
pub fn model_reuse() -> bool {
    REUSE_MODELS.load(Ordering::Relaxed)
}

/// Everything one client dispatch needs to train, owned (`'static`) so the
/// job can run on any pool worker. The model itself stays shared: `task`
/// and the downloaded `global` weights are `Arc`s, and `cfg` is the
/// server's shared config handle — building a job copies pointers, not
/// tensors.
pub struct TrainJob {
    /// The federated task (model spec + client datasets).
    pub task: Arc<fedat_data::suite::FedTask>,
    /// Client id.
    pub client: usize,
    /// The (post-roundtrip) downloaded global weights.
    pub global: Arc<[f32]>,
    /// Experiment configuration (seed, optimizer, batch size, λ).
    pub cfg: Arc<ExperimentConfig>,
    /// Local epochs for this dispatch.
    pub epochs: usize,
    /// The client's selection counter at dispatch (fixes its batch
    /// schedule).
    pub selection_round: u64,
    /// Whether the Eq. (3) proximal constraint applies.
    pub use_prox: bool,
}

impl TrainJob {
    /// Runs the job to completion on the calling thread.
    pub fn run(&self) -> LocalUpdate {
        train_client(
            &self.task,
            self.client,
            &self.global,
            &self.cfg,
            self.epochs,
            self.selection_round,
            self.use_prox,
        )
    }
}

/// An in-flight client training computation, created at dispatch.
///
/// Under [`ExecMode::Speculative`] the job is already running (or queued)
/// on the kernel pool; under [`ExecMode::Inline`] the handle just carries
/// the job and trains when joined — which reproduces the seed's
/// train-at-completion behavior exactly, since [`TrainHandle::join`] is
/// called from the completion event.
pub struct TrainHandle(Option<HandleKind>);

enum HandleKind {
    /// Train at join, on the joining thread (the measured baseline).
    Inline(TrainJob),
    /// Result is being computed on (or stolen back from) the kernel pool.
    Speculative(fedat_tensor::pool::JobHandle<LocalUpdate>),
}

impl TrainHandle {
    /// Starts `job` under the caller's [`ExecMode`] — the mode travels
    /// explicitly from the run's [`crate::exec::ExecCtx`] rather than being
    /// read from the process-wide toggle, so concurrent runs with different
    /// modes cannot cross-talk.
    pub fn launch(job: TrainJob, mode: ExecMode) -> TrainHandle {
        TrainHandle(Some(match mode {
            ExecMode::Speculative => {
                crate::exec::note_launch();
                HandleKind::Speculative(fedat_tensor::pool::submit(move || job.run()))
            }
            ExecMode::Inline => HandleKind::Inline(job),
        }))
    }

    /// Returns the training result, blocking only if the speculative job is
    /// mid-run on a worker (an unstarted job is stolen and run inline —
    /// the pool's steal-on-join contract — so this never deadlocks).
    pub fn join(mut self) -> LocalUpdate {
        match self.0.take().expect("train handle already consumed") {
            HandleKind::Inline(job) => job.run(),
            HandleKind::Speculative(handle) => handle.join(),
        }
    }

    /// Abandons the computation: the client dropped out before its compute
    /// event. A job that has not started yet is *cancelled* — reclaimed
    /// from the pool unexecuted, costing nothing; one already running (or
    /// finished) completes on its worker and the result is dropped. Either
    /// way the discard is counted in
    /// [`crate::exec::speculative_discards`].
    pub fn discard(mut self) {
        if let Some(HandleKind::Speculative(handle)) = self.0.take() {
            crate::exec::note_discard();
            handle.cancel();
        }
    }
}

impl Drop for TrainHandle {
    /// A handle dropped unconsumed (an experiment hitting its rounds or
    /// time cutoff with clients still in flight) cancels its job, so
    /// queued-but-unstarted speculation is reclaimed instead of burning a
    /// worker after the run ended. Not counted as a dropout discard — the
    /// client didn't drop; the run stopped caring.
    fn drop(&mut self) {
        if let Some(HandleKind::Speculative(handle)) = self.0.take() {
            handle.cancel();
        }
    }
}

/// The result a client uploads after local training.
#[derive(Clone, Debug)]
pub struct LocalUpdate {
    /// New local weights `w_k^{t+1}` (flattened).
    pub weights: Vec<f32>,
    /// Mean training loss over all local batches.
    pub mean_loss: f32,
    /// Local sample count `n_k` (the aggregation weight).
    pub n_samples: usize,
}

/// Runs `epochs` epochs of mini-batch training on `client`'s local data,
/// starting from the downloaded `global` weights.
///
/// The mini-batch order is a fixed pseudo-random function of
/// `(seed, client, selection_round)`, matching the paper's fixed schedules
/// (§6: "each client, once selected, would follow a fixed, pseudo-random
/// mini-batch schedule").
///
/// `use_prox` applies the Eq. (3) constraint `λ/2‖w − w_global‖²` around the
/// *downloaded* global model. The `Arc` is shared into the prox term —
/// no copy of the global vector is made.
pub fn train_client(
    task: &FedTask,
    client: usize,
    global: &Arc<[f32]>,
    cfg: &ExperimentConfig,
    epochs: usize,
    selection_round: u64,
    use_prox: bool,
) -> LocalUpdate {
    if model_reuse() {
        fedat_nn::models::with_cached_model(&task.model, cfg.seed, |model| {
            run_local_epochs(
                model,
                task,
                client,
                global,
                cfg,
                epochs,
                selection_round,
                use_prox,
            )
        })
    } else {
        let mut model = task.model.build(cfg.seed);
        run_local_epochs(
            model.as_mut(),
            task,
            client,
            global,
            cfg,
            epochs,
            selection_round,
            use_prox,
        )
    }
}

/// The local-training inner loop, on whichever model instance
/// [`train_client`] handed over.
#[allow(clippy::too_many_arguments)]
fn run_local_epochs(
    model: &mut dyn Model,
    task: &FedTask,
    client: usize,
    global: &Arc<[f32]>,
    cfg: &ExperimentConfig,
    epochs: usize,
    selection_round: u64,
    use_prox: bool,
) -> LocalUpdate {
    let data = &task.fed.clients[client].train;
    model.set_weights(global.as_ref());
    let mut opt = cfg.optimizer.build();
    let prox = if use_prox && cfg.lambda > 0.0 {
        Some(ProxTerm::new(cfg.lambda, Arc::clone(global)))
    } else {
        None
    };
    let mut batch_rng = rng_for(
        cfg.seed ^ ((client as u64) << 16) ^ selection_round.wrapping_mul(0x2545_F491),
        tags::BATCHES,
    );
    let mut total_loss = 0.0f64;
    let mut batches = 0usize;
    let mut y_buf: Vec<u32> = Vec::new();
    for _ in 0..epochs.max(1) {
        for batch in data.batch_schedule(cfg.batch_size, &mut batch_rng) {
            let x = data.gather_batch_into(&batch, &mut y_buf);
            total_loss += model.train_batch(&x, &y_buf, opt.as_mut(), prox.as_ref()) as f64;
            x.recycle();
            batches += 1;
        }
    }
    LocalUpdate {
        weights: model.weights(),
        mean_loss: (total_loss / batches.max(1) as f64) as f32,
        n_samples: data.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentConfig;
    use fedat_data::suite;
    use fedat_tensor::ops::dist_sq;

    fn tiny_task() -> FedTask {
        suite::sent140_like(6, 3)
    }

    fn cfg() -> ExperimentConfig {
        ExperimentConfig::builder().seed(3).batch_size(8).build()
    }

    fn global_of(task: &FedTask, seed: u64) -> Arc<[f32]> {
        task.model.build(seed).weights().into()
    }

    #[test]
    fn training_changes_weights_and_reports_loss() {
        let task = tiny_task();
        let global = global_of(&task, 1);
        let up = train_client(&task, 0, &global, &cfg(), 2, 0, false);
        assert_eq!(up.weights.len(), global.len());
        assert!(dist_sq(&up.weights, &global) > 0.0, "weights did not move");
        assert!(up.mean_loss.is_finite() && up.mean_loss > 0.0);
        assert_eq!(up.n_samples, task.fed.clients[0].train.len());
    }

    #[test]
    fn same_selection_round_is_deterministic() {
        let task = tiny_task();
        let global = global_of(&task, 1);
        let a = train_client(&task, 1, &global, &cfg(), 2, 5, true);
        let b = train_client(&task, 1, &global, &cfg(), 2, 5, true);
        assert_eq!(a.weights, b.weights);
        assert_eq!(a.mean_loss, b.mean_loss);
    }

    #[test]
    fn model_reuse_matches_fresh_builds_exactly() {
        // The thread-local model cache must be invisible to results — for
        // the dense (logistic) and conv (CNN) model families.
        for task in [tiny_task(), suite::cifar10_like(4, 2, 3)] {
            let global = global_of(&task, 1);
            set_model_reuse(false);
            let fresh = train_client(&task, 1, &global, &cfg(), 2, 5, true);
            set_model_reuse(true);
            let warm1 = train_client(&task, 1, &global, &cfg(), 2, 5, true);
            // Second reuse pass exercises the cache-hit path.
            let warm2 = train_client(&task, 1, &global, &cfg(), 2, 5, true);
            assert_eq!(fresh.weights, warm1.weights, "{}", task.name);
            assert_eq!(warm1.weights, warm2.weights, "{}", task.name);
            assert_eq!(fresh.mean_loss, warm2.mean_loss, "{}", task.name);
        }
    }

    #[test]
    fn different_selection_rounds_differ() {
        let task = tiny_task();
        let global = global_of(&task, 1);
        let a = train_client(&task, 1, &global, &cfg(), 2, 5, false);
        let b = train_client(&task, 1, &global, &cfg(), 2, 6, false);
        assert_ne!(a.weights, b.weights, "batch schedule should vary by round");
    }

    #[test]
    fn prox_reduces_drift_from_global() {
        let task = tiny_task();
        let global = global_of(&task, 1);
        let mut c = cfg();
        c.lambda = 5.0; // strong pull for an unambiguous test
        let with_prox = train_client(&task, 2, &global, &c, 3, 0, true);
        c.lambda = 0.0;
        let without = train_client(&task, 2, &global, &c, 3, 0, true);
        let d_prox = dist_sq(&with_prox.weights, &global);
        let d_free = dist_sq(&without.weights, &global);
        assert!(
            d_prox < d_free,
            "prox run drifted {d_prox} ≥ unconstrained {d_free}"
        );
    }

    #[test]
    fn more_epochs_more_progress() {
        let task = tiny_task();
        let global = global_of(&task, 1);
        let short = train_client(&task, 3, &global, &cfg(), 1, 0, false);
        let long = train_client(&task, 3, &global, &cfg(), 6, 0, false);
        // Longer training should end with (weakly) lower mean loss on this
        // convex task.
        assert!(long.mean_loss <= short.mean_loss + 0.05);
    }

    #[test]
    fn steady_state_training_is_allocation_free() {
        // After a warm-up dispatch, further dispatches of the same client
        // must not miss the scratch arena (i.e. perform no tensor
        // allocations).
        let task = tiny_task();
        let global = global_of(&task, 1);
        set_model_reuse(true);
        for round in 0..3 {
            let _ = train_client(&task, 1, &global, &cfg(), 2, round, true);
        }
        let before = fedat_tensor::scratch::alloc_misses();
        for round in 3..8 {
            let _ = train_client(&task, 1, &global, &cfg(), 2, round, true);
        }
        assert_eq!(
            fedat_tensor::scratch::alloc_misses(),
            before,
            "steady-state dispatches must not allocate tensors"
        );
    }
}
