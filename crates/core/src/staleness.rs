//! Staleness-weighting functions for asynchronous aggregation.
//!
//! FedAsync (Xie et al., 2019) attenuates the mixing weight of a client
//! update by how many global versions elapsed since the client downloaded
//! its base model. The paper proposes three families; all are provided so
//! the FedAsync baseline can be configured exactly.

use serde::{Deserialize, Serialize};

/// `s(t, τ)` families from Xie et al. §3; the mixing weight is
/// `α_t = α · s(staleness)`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum StalenessFn {
    /// `s = 1`: ignore staleness entirely.
    Constant,
    /// `s = (1 + staleness)^(-a)`: polynomial decay (the FedAsync default,
    /// and what the FedAT paper's baseline uses; `a = 0.5`).
    Polynomial {
        /// Decay exponent `a > 0`.
        exponent: f32,
    },
    /// `s = 1` while `staleness ≤ b`, then `1 / (a·(staleness − b) + 1)`:
    /// tolerate recent updates, damp old ones sharply.
    Hinge {
        /// Damping slope `a > 0`.
        a: f32,
        /// Tolerance window `b`.
        b: u64,
    },
}

impl StalenessFn {
    /// The attenuation factor `s(staleness) ∈ (0, 1]`.
    pub fn factor(&self, staleness: u64) -> f32 {
        match *self {
            StalenessFn::Constant => 1.0,
            StalenessFn::Polynomial { exponent } => {
                (1.0 + staleness as f32).powf(-exponent.max(0.0))
            }
            StalenessFn::Hinge { a, b } => {
                if staleness <= b {
                    1.0
                } else {
                    1.0 / (a.max(0.0) * (staleness - b) as f32 + 1.0)
                }
            }
        }
    }

    /// The FedAsync-paper default used by the baseline.
    pub fn default_polynomial() -> Self {
        StalenessFn::Polynomial { exponent: 0.5 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_ignores_staleness() {
        let f = StalenessFn::Constant;
        assert_eq!(f.factor(0), 1.0);
        assert_eq!(f.factor(1_000_000), 1.0);
    }

    #[test]
    fn polynomial_decays_monotonically() {
        let f = StalenessFn::Polynomial { exponent: 0.5 };
        assert_eq!(f.factor(0), 1.0);
        let mut last = 1.0f32;
        for s in 1..50 {
            let v = f.factor(s);
            assert!(v < last, "not strictly decreasing at {s}");
            assert!(v > 0.0);
            last = v;
        }
        // The documented value at staleness 3: (1+3)^-0.5 = 0.5.
        assert!((f.factor(3) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn hinge_tolerates_then_damps() {
        let f = StalenessFn::Hinge { a: 0.5, b: 4 };
        for s in 0..=4 {
            assert_eq!(f.factor(s), 1.0, "inside tolerance window at {s}");
        }
        assert!((f.factor(6) - 1.0 / (0.5 * 2.0 + 1.0)).abs() < 1e-6);
        assert!(f.factor(20) < f.factor(6));
    }

    #[test]
    fn all_factors_bounded() {
        for f in [
            StalenessFn::Constant,
            StalenessFn::default_polynomial(),
            StalenessFn::Hinge { a: 2.0, b: 1 },
        ] {
            for s in [0u64, 1, 10, 1000] {
                let v = f.factor(s);
                assert!((0.0..=1.0).contains(&v), "{f:?} at {s} gave {v}");
            }
        }
    }
}
