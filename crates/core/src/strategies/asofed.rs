//! ASO-Fed (Chen et al., 2019): asynchronous online federated learning.
//!
//! Like FedAsync, every client cycles continuously; unlike FedAsync the
//! server keeps a *copy of each client's latest weights* and the global
//! model is the `n_k/N`-weighted average of all copies, so one client's
//! stale update cannot yank the global model. Clients train with a local
//! constraint (the same prox form FedAT adopts).

use crate::config::ExperimentConfig;
use crate::exec::ExecCtx;
use crate::strategies::{
    FaultCounters, InflightTable, PhaseEvent, ServerCore, Strategy, REVIVE_BIT,
};
use fedat_data::suite::FedTask;
use fedat_sim::runtime::{Completion, EventHandler, SimCtx};
use fedat_sim::trace::Trace;
use std::collections::BTreeMap;
use std::sync::Arc;

/// ASO-Fed server.
///
/// Like FedAsync, the protocol is wait-free so deadlines don't apply; the
/// fault layer adds client *revival* — a transiently-lost client rejoins
/// the pool at its return time instead of leaving forever.
pub struct AsoFedStrategy {
    core: ServerCore,
    /// Per-client weight copies on the server.
    copies: Vec<Vec<f32>>,
    /// `n_k / N` aggregation weight per client.
    client_weight: Vec<f32>,
    /// Global version at each in-flight client's dispatch (staleness base
    /// for the guard's `max_staleness` bound). Ordered map: accesses are
    /// keyed, and `BTreeMap` keeps any future iteration deterministic
    /// (lint rule R1).
    dispatch_version: BTreeMap<usize, u64>,
    inflight: InflightTable,
    live_dispatches: usize,
    /// Revival timers in flight for flapped-out clients.
    pending_revivals: usize,
}

impl AsoFedStrategy {
    /// Builds the ASO-Fed server (budget and eval scaling as in FedAsync).
    pub fn new(task: Arc<FedTask>, cfg: &ExperimentConfig, exec: ExecCtx) -> Self {
        let k = cfg.clients_per_round as u64;
        let core = ServerCore::new(
            task.clone(),
            cfg,
            exec,
            cfg.rounds * k * super::ASYNC_FILL,
            cfg.eval_every * k,
        );
        let n_clients = task.fed.num_clients();
        let total: usize = task.fed.total_train_samples();
        let client_weight: Vec<f32> = task
            .fed
            .client_sizes()
            .iter()
            .map(|&n| n as f32 / total as f32)
            .collect();
        let copies = vec![core.global.clone(); n_clients];
        AsoFedStrategy {
            core,
            copies,
            client_weight,
            dispatch_version: BTreeMap::new(),
            inflight: InflightTable::new(),
            live_dispatches: 0,
            pending_revivals: 0,
        }
    }

    fn dispatch_client(&mut self, ctx: &mut SimCtx, client: usize) {
        let epochs = self.core.cfg.local_epochs;
        let (weights, down_bytes) = self.core.transport.download(ctx, client, &self.core.global);
        let selection_round = ctx.dispatches_of(client);
        // Speculative launch at dispatch; `true`: ASO-Fed's local
        // constraint. No deadline timer: the protocol is wait-free.
        let phase = self
            .core
            .launch(client, &weights, epochs, selection_round, true);
        let gen = self.inflight.begin(client, 0, 0, ctx.now(), phase);
        self.dispatch_version.insert(client, self.core.updates);
        ctx.dispatch_with_transfer(client, gen, epochs, down_bytes);
        self.live_dispatches += 1;
    }

    /// On a transient loss (or a quarantine), arm a wake-up at the later of
    /// the client's return time and its quarantine release so it rejoins
    /// the pool; a permanently-gone client leaves forever.
    fn schedule_revival(&mut self, ctx: &mut SimCtx, client: usize) {
        if self.finished() {
            return;
        }
        if let Some(t_up) = ctx.fleet.next_up_time(client, ctx.now()) {
            self.pending_revivals += 1;
            let wake = t_up.max(self.core.guard_release_time(client));
            ctx.schedule_timer(wake, REVIVE_BIT | client as u64);
        }
    }

    /// Puts `client` back to work: dispatches immediately when it is alive
    /// and out of quarantine, otherwise parks it on a revival timer.
    fn redispatch_or_park(&mut self, ctx: &mut SimCtx, client: usize) {
        let now = ctx.now();
        if ctx.fleet.is_alive(client, now) && !self.core.is_quarantined(client, now) {
            self.dispatch_client(ctx, client);
        } else {
            self.schedule_revival(ctx, client);
        }
    }

    /// Replaces client `c`'s copy and incrementally updates the global
    /// average: `w ← w + (n_c/N)·(w_c_new − w_c_old)`.
    fn absorb(&mut self, client: usize, new_weights: Vec<f32>) {
        let wc = self.client_weight[client];
        for ((g, old), new) in self
            .core
            .global
            .iter_mut()
            .zip(self.copies[client].iter())
            .zip(new_weights.iter())
        {
            *g += wc * (new - old);
        }
        self.copies[client] = new_weights;
    }
}

impl EventHandler for AsoFedStrategy {
    fn on_start(&mut self, ctx: &mut SimCtx) {
        self.core.eval_now(ctx);
        for c in ctx.alive_clients() {
            self.dispatch_client(ctx, c);
        }
    }

    fn on_completion(&mut self, ctx: &mut SimCtx, c: Completion) {
        match self.inflight.advance(&mut self.core, ctx, &c) {
            PhaseEvent::UploadScheduled | PhaseEvent::Unknown => {}
            PhaseEvent::Landed { weights, .. } => {
                self.live_dispatches -= 1;
                let version = self.dispatch_version.remove(&c.client).unwrap_or(0);
                let staleness = self.core.updates - version;
                if self
                    .core
                    .cfg
                    .guard
                    .max_staleness
                    .is_some_and(|bound| staleness > bound)
                {
                    // Over the staleness bound: don't replace the server's
                    // copy with ancient weights; re-seed the client with
                    // the current global model instead.
                    self.core.note_stale(ctx, c.client, 0, staleness);
                    if !self.finished() {
                        self.redispatch_or_park(ctx, c.client);
                    }
                    return;
                }
                self.absorb(c.client, weights);
                self.core.bump(ctx);
                if !self.finished() {
                    self.redispatch_or_park(ctx, c.client);
                }
            }
            // Guard-rejected: the client is alive; back to work (or to
            // quarantine parking).
            PhaseEvent::Rejected { .. } => {
                self.live_dispatches -= 1;
                self.dispatch_version.remove(&c.client);
                if !self.finished() {
                    self.redispatch_or_park(ctx, c.client);
                }
            }
            PhaseEvent::Lost { .. } => {
                self.live_dispatches -= 1;
                self.dispatch_version.remove(&c.client);
                self.schedule_revival(ctx, c.client);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut SimCtx, tag: u64) {
        if tag & REVIVE_BIT == 0 {
            return;
        }
        let client = (tag & !REVIVE_BIT) as usize;
        self.pending_revivals -= 1;
        if self.finished() || self.inflight.contains(client) {
            return;
        }
        let now = ctx.now();
        if ctx.fleet.is_alive(client, now) && !self.core.is_quarantined(client, now) {
            self.core.faults.revivals += 1;
            self.dispatch_client(ctx, client);
        } else {
            self.schedule_revival(ctx, client);
        }
    }

    fn finished(&self) -> bool {
        self.core.budget_exhausted()
            || self.live_dispatches == 0 && self.pending_revivals == 0 && self.core.updates > 0
    }
}

impl Strategy for AsoFedStrategy {
    fn trace(&self) -> &Trace {
        &self.core.trace
    }

    fn take_trace(&mut self) -> Trace {
        std::mem::take(&mut self.core.trace)
    }

    fn global_weights(&self) -> &[f32] {
        &self.core.global
    }

    fn global_updates(&self) -> u64 {
        self.core.updates
    }

    fn variance_checkpoints(&self) -> &[f32] {
        &self.core.variance_checkpoints
    }

    fn fault_counters(&self) -> FaultCounters {
        self.core.faults
    }

    fn flush_evals(&mut self) {
        self.core.flush_evals();
    }
}
