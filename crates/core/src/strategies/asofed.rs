//! ASO-Fed (Chen et al., 2019): asynchronous online federated learning.
//!
//! Like FedAsync, every client cycles continuously; unlike FedAsync the
//! server keeps a *copy of each client's latest weights* and the global
//! model is the `n_k/N`-weighted average of all copies, so one client's
//! stale update cannot yank the global model. Clients train with a local
//! constraint (the same prox form FedAT adopts).

use crate::config::ExperimentConfig;
use crate::strategies::{
    FaultCounters, InflightTable, PhaseEvent, ServerCore, Strategy, REVIVE_BIT,
};
use fedat_data::suite::FedTask;
use fedat_sim::runtime::{Completion, EventHandler, SimCtx};
use fedat_sim::trace::Trace;
use std::sync::Arc;

/// ASO-Fed server.
///
/// Like FedAsync, the protocol is wait-free so deadlines don't apply; the
/// fault layer adds client *revival* — a transiently-lost client rejoins
/// the pool at its return time instead of leaving forever.
pub struct AsoFedStrategy {
    core: ServerCore,
    /// Per-client weight copies on the server.
    copies: Vec<Vec<f32>>,
    /// `n_k / N` aggregation weight per client.
    client_weight: Vec<f32>,
    inflight: InflightTable,
    live_dispatches: usize,
    /// Revival timers in flight for flapped-out clients.
    pending_revivals: usize,
}

impl AsoFedStrategy {
    /// Builds the ASO-Fed server (budget and eval scaling as in FedAsync).
    pub fn new(task: Arc<FedTask>, cfg: &ExperimentConfig) -> Self {
        let k = cfg.clients_per_round as u64;
        let core = ServerCore::new(
            task.clone(),
            cfg,
            cfg.rounds * k * super::ASYNC_FILL,
            cfg.eval_every * k,
        );
        let n_clients = task.fed.num_clients();
        let total: usize = task.fed.total_train_samples();
        let client_weight: Vec<f32> = task
            .fed
            .client_sizes()
            .iter()
            .map(|&n| n as f32 / total as f32)
            .collect();
        let copies = vec![core.global.clone(); n_clients];
        AsoFedStrategy {
            core,
            copies,
            client_weight,
            inflight: InflightTable::new(),
            live_dispatches: 0,
            pending_revivals: 0,
        }
    }

    fn dispatch_client(&mut self, ctx: &mut SimCtx, client: usize) {
        let epochs = self.core.cfg.local_epochs;
        let (weights, down_bytes) = self.core.transport.download(ctx, client, &self.core.global);
        let selection_round = ctx.dispatches_of(client);
        // Speculative launch at dispatch; `true`: ASO-Fed's local
        // constraint. No deadline timer: the protocol is wait-free.
        let phase = self
            .core
            .launch(client, &weights, epochs, selection_round, true);
        let gen = self.inflight.begin(client, 0, 0, ctx.now(), phase);
        ctx.dispatch_with_transfer(client, gen, epochs, down_bytes);
        self.live_dispatches += 1;
    }

    /// On a transient loss, arm a wake-up at the client's return time so it
    /// rejoins the pool; a permanently-gone client leaves forever.
    fn schedule_revival(&mut self, ctx: &mut SimCtx, client: usize) {
        if self.finished() {
            return;
        }
        if let Some(t_up) = ctx.fleet.next_up_time(client, ctx.now()) {
            self.pending_revivals += 1;
            ctx.schedule_timer(t_up, REVIVE_BIT | client as u64);
        }
    }

    /// Replaces client `c`'s copy and incrementally updates the global
    /// average: `w ← w + (n_c/N)·(w_c_new − w_c_old)`.
    fn absorb(&mut self, client: usize, new_weights: Vec<f32>) {
        let wc = self.client_weight[client];
        for ((g, old), new) in self
            .core
            .global
            .iter_mut()
            .zip(self.copies[client].iter())
            .zip(new_weights.iter())
        {
            *g += wc * (new - old);
        }
        self.copies[client] = new_weights;
    }
}

impl EventHandler for AsoFedStrategy {
    fn on_start(&mut self, ctx: &mut SimCtx) {
        self.core.eval_now(ctx);
        for c in ctx.alive_clients() {
            self.dispatch_client(ctx, c);
        }
    }

    fn on_completion(&mut self, ctx: &mut SimCtx, c: Completion) {
        match self.inflight.advance(&self.core, ctx, &c) {
            PhaseEvent::UploadScheduled | PhaseEvent::Unknown => {}
            PhaseEvent::Landed { weights, .. } => {
                self.live_dispatches -= 1;
                self.absorb(c.client, weights);
                self.core.bump(ctx);
                if !self.finished() {
                    if ctx.fleet.is_alive(c.client, ctx.now()) {
                        self.dispatch_client(ctx, c.client);
                    } else {
                        self.schedule_revival(ctx, c.client);
                    }
                }
            }
            PhaseEvent::Lost { .. } => {
                self.live_dispatches -= 1;
                self.schedule_revival(ctx, c.client);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut SimCtx, tag: u64) {
        if tag & REVIVE_BIT == 0 {
            return;
        }
        let client = (tag & !REVIVE_BIT) as usize;
        self.pending_revivals -= 1;
        if self.finished() || self.inflight.contains(client) {
            return;
        }
        if ctx.fleet.is_alive(client, ctx.now()) {
            self.core.faults.revivals += 1;
            self.dispatch_client(ctx, client);
        } else {
            self.schedule_revival(ctx, client);
        }
    }

    fn finished(&self) -> bool {
        self.core.budget_exhausted()
            || self.live_dispatches == 0 && self.pending_revivals == 0 && self.core.updates > 0
    }
}

impl Strategy for AsoFedStrategy {
    fn trace(&self) -> &Trace {
        &self.core.trace
    }

    fn take_trace(&mut self) -> Trace {
        std::mem::take(&mut self.core.trace)
    }

    fn global_weights(&self) -> &[f32] {
        &self.core.global
    }

    fn global_updates(&self) -> u64 {
        self.core.updates
    }

    fn variance_checkpoints(&self) -> &[f32] {
        &self.core.variance_checkpoints
    }

    fn fault_counters(&self) -> FaultCounters {
        self.core.faults
    }
}
