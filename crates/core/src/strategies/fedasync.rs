//! FedAsync (Xie et al., 2019): fully asynchronous federated optimization.
//!
//! Every client trains continuously; each arriving update is mixed into the
//! global model with a staleness-attenuated weight
//! `α_t = α · s(staleness)` where `s` is one of the
//! [`StalenessFn`](crate::staleness::StalenessFn) families from the FedAsync
//! paper (polynomial `a = 0.5` by default), after which the client
//! immediately redownloads and retrains. The server talks to *all* clients
//! all the time — the communication-bottleneck pattern FedAT's §1 argues
//! against.

use crate::config::ExperimentConfig;
use crate::exec::ExecCtx;
use crate::strategies::{
    FaultCounters, InflightTable, PhaseEvent, ServerCore, Strategy, REVIVE_BIT,
};
use fedat_data::suite::FedTask;
use fedat_sim::runtime::{Completion, EventHandler, SimCtx};
use fedat_sim::trace::Trace;
use fedat_tensor::ops::lerp_into;
use std::collections::BTreeMap;
use std::sync::Arc;

/// FedAsync server.
///
/// Deadlines don't apply here — the protocol is wait-free, so a slow
/// client delays nobody. The fault layer's contribution is *revival*: a
/// client lost to a transient outage rejoins the pool when it comes back
/// (the legacy behavior dropped it forever, which under flapping churn
/// bled the pool dry).
pub struct FedAsyncStrategy {
    core: ServerCore,
    alpha: f32,
    staleness: crate::staleness::StalenessFn,
    /// Global version at each in-flight client's dispatch (staleness base).
    /// Ordered map: all accesses are keyed today, and `BTreeMap` keeps any
    /// future iteration deterministic (lint rule R1).
    dispatch_version: BTreeMap<usize, u64>,
    inflight: InflightTable,
    live_dispatches: usize,
    /// Revival timers in flight for flapped-out clients.
    pending_revivals: usize,
}

impl FedAsyncStrategy {
    /// Builds the FedAsync server.
    ///
    /// One FedAsync global update ingests a single client, versus
    /// `clients_per_round` clients per synchronous round, so the update
    /// budget is scaled by `clients_per_round` — and further by
    /// [`super::ASYNC_FILL`] because asynchronous updates complete much
    /// faster in wall time; the shared `max_time` horizon is the effective
    /// stopping rule, exactly as in the paper's timeline figures. The
    /// evaluation stride is scaled likewise.
    pub fn new(task: Arc<FedTask>, cfg: &ExperimentConfig, exec: ExecCtx) -> Self {
        let k = cfg.clients_per_round as u64;
        let core = ServerCore::new(
            task,
            cfg,
            exec,
            cfg.rounds * k * super::ASYNC_FILL,
            cfg.eval_every * k,
        );
        FedAsyncStrategy {
            core,
            alpha: cfg.fedasync_alpha,
            staleness: cfg.fedasync_staleness,
            dispatch_version: BTreeMap::new(),
            inflight: InflightTable::new(),
            live_dispatches: 0,
            pending_revivals: 0,
        }
    }

    fn dispatch_client(&mut self, ctx: &mut SimCtx, client: usize) {
        let epochs = self.core.cfg.local_epochs;
        let (weights, down_bytes) = self.core.transport.download(ctx, client, &self.core.global);
        let selection_round = ctx.dispatches_of(client);
        // Speculative launch at dispatch; FedAsync trains unconstrained.
        // No deadline timer: the protocol is wait-free.
        let phase = self
            .core
            .launch(client, &weights, epochs, selection_round, false);
        let gen = self.inflight.begin(client, 0, 0, ctx.now(), phase);
        self.dispatch_version.insert(client, self.core.updates);
        ctx.dispatch_with_transfer(client, gen, epochs, down_bytes);
        self.live_dispatches += 1;
    }

    /// On a transient loss (or a quarantine), arm a wake-up at the later of
    /// the client's return time and its quarantine release so it rejoins
    /// the pool; a permanently-gone client has no return time and leaves
    /// forever (the legacy behavior).
    fn schedule_revival(&mut self, ctx: &mut SimCtx, client: usize) {
        if self.finished() {
            return;
        }
        if let Some(t_up) = ctx.fleet.next_up_time(client, ctx.now()) {
            self.pending_revivals += 1;
            let wake = t_up.max(self.core.guard_release_time(client));
            ctx.schedule_timer(wake, REVIVE_BIT | client as u64);
        }
    }

    /// Puts `client` back to work: dispatches immediately when it is alive
    /// and out of quarantine, otherwise parks it on a revival timer.
    fn redispatch_or_park(&mut self, ctx: &mut SimCtx, client: usize) {
        let now = ctx.now();
        if ctx.fleet.is_alive(client, now) && !self.core.is_quarantined(client, now) {
            self.dispatch_client(ctx, client);
        } else {
            self.schedule_revival(ctx, client);
        }
    }
}

impl EventHandler for FedAsyncStrategy {
    fn on_start(&mut self, ctx: &mut SimCtx) {
        self.core.eval_now(ctx);
        for c in ctx.alive_clients() {
            self.dispatch_client(ctx, c);
        }
    }

    fn on_completion(&mut self, ctx: &mut SimCtx, c: Completion) {
        match self.inflight.advance(&mut self.core, ctx, &c) {
            PhaseEvent::UploadScheduled | PhaseEvent::Unknown => {}
            PhaseEvent::Landed { weights, .. } => {
                self.live_dispatches -= 1;
                // Staleness measured when the update *lands* at the server.
                let version = self.dispatch_version.remove(&c.client).unwrap_or(0);
                let staleness = self.core.updates - version;
                if self
                    .core
                    .cfg
                    .guard
                    .max_staleness
                    .is_some_and(|bound| staleness > bound)
                {
                    // Over the staleness bound: the attenuated weight would
                    // be tiny anyway, and a corrupted-but-clipped stale
                    // update can still steer the model — drop it outright
                    // and put the client back to work on fresh weights.
                    self.core.note_stale(ctx, c.client, 0, staleness);
                    if !self.finished() {
                        self.redispatch_or_park(ctx, c.client);
                    }
                    return;
                }
                let alpha_t = self.alpha * self.staleness.factor(staleness);
                // The mixing sweep runs over the full model on *every*
                // arrival — `lerp_into` shards it across the kernel pool
                // with the vectorized inner loop, the same treatment the
                // sharded aggregation gives the synchronous strategies
                // (bit-identical for any kernel/thread count; pinned by
                // `fedasync_mixing_is_bit_identical_across_simd_and_threads`).
                lerp_into(&mut self.core.global, &weights, alpha_t);
                self.core.bump(ctx);
                if !self.finished() {
                    self.redispatch_or_park(ctx, c.client);
                }
            }
            // A guard-rejected update: the client is still alive, so it
            // goes straight back to work (or to quarantine parking).
            PhaseEvent::Rejected { .. } => {
                self.live_dispatches -= 1;
                self.dispatch_version.remove(&c.client);
                if !self.finished() {
                    self.redispatch_or_park(ctx, c.client);
                }
            }
            // A dropped client leaves the pool (wait-free: nobody blocks)
            // — but rejoins at its return time if the outage is transient.
            PhaseEvent::Lost { .. } => {
                self.live_dispatches -= 1;
                self.dispatch_version.remove(&c.client);
                self.schedule_revival(ctx, c.client);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut SimCtx, tag: u64) {
        if tag & REVIVE_BIT == 0 {
            return;
        }
        let client = (tag & !REVIVE_BIT) as usize;
        self.pending_revivals -= 1;
        if self.finished() || self.inflight.contains(client) {
            return;
        }
        let now = ctx.now();
        if ctx.fleet.is_alive(client, now) && !self.core.is_quarantined(client, now) {
            self.core.faults.revivals += 1;
            self.dispatch_client(ctx, client);
        } else {
            // Went down again (or got re-quarantined) before the wake-up
            // fired; chase the next return time (if any).
            self.schedule_revival(ctx, client);
        }
    }

    fn finished(&self) -> bool {
        self.core.budget_exhausted()
            || self.live_dispatches == 0 && self.pending_revivals == 0 && self.core.updates > 0
    }
}

impl Strategy for FedAsyncStrategy {
    fn trace(&self) -> &Trace {
        &self.core.trace
    }

    fn take_trace(&mut self) -> Trace {
        std::mem::take(&mut self.core.trace)
    }

    fn global_weights(&self) -> &[f32] {
        &self.core.global
    }

    fn global_updates(&self) -> u64 {
        self.core.updates
    }

    fn variance_checkpoints(&self) -> &[f32] {
        &self.core.variance_checkpoints
    }

    fn fault_counters(&self) -> FaultCounters {
        self.core.faults
    }

    fn flush_evals(&mut self) {
        self.core.flush_evals();
    }
}
