//! FedAT — the paper's contribution (§4, Algorithm 2).
//!
//! Clients are partitioned into `M` latency tiers. Every tier runs its own
//! *synchronous* FedAvg-style round loop at its natural pace; whenever a
//! tier finishes a round, the server (1) replaces that tier's model with
//! the `n_k/N_c`-weighted average of its clients' uploads, (2) recomputes
//! the global model as the *cross-tier weighted average* of all tier models
//! using the Eq. (5) heuristic (slower tiers get the larger weights), and
//! (3) hands the fresh global model to the tier for its next round — an
//! asynchronous, wait-free cross-tier update.
//!
//! Clients minimize the Eq. (3) surrogate `F_k(w) + λ/2‖w − w_global‖²`,
//! and every transfer is polyline-compressed in both directions (§4.3).
//!
//! On top of the paper's protocol this server carries the fault-tolerance
//! layer (see `docs/ROBUSTNESS.md`): per-dispatch deadlines with bounded,
//! backed-off re-dispatch; quorum accounting when a round concludes
//! under-strength; parking a fully-offline tier until its earliest member
//! returns (instead of permanent dormancy); and optional dynamic
//! re-tiering from an EWMA of observed response latencies. All of it is
//! disabled under the default [`crate::config::FaultPolicy`], which keeps
//! legacy runs bit-identical.

use crate::aggregate::{
    aggregate_clients_into, aggregate_tiers_into, cross_tier_weights, uniform_tier_weights,
};
use crate::config::ExperimentConfig;
use crate::exec::ExecCtx;
use crate::strategies::{
    dispatch_tracked, earliest_return, retry_slot, FaultCounters, InflightTable, PhaseEvent,
    ServerCore, Strategy, REVIVE_BIT,
};
use crate::tiering::TierAssignment;
use fedat_data::suite::FedTask;
use fedat_sim::fault::{FaultEvent, FaultKind};
use fedat_sim::runtime::{Completion, EventHandler, SimCtx};
use fedat_sim::trace::Trace;
use std::sync::Arc;

/// FedAT server.
pub struct FedAtStrategy {
    core: ServerCore,
    tiers: TierAssignment,
    /// Per-tier server models `w_tier_m` (Algorithm 2 state), aggregated
    /// in place every tier round.
    tier_models: Vec<Vec<f32>>,
    /// Per-tier update counters `T_tier_m`.
    tier_counts: Vec<u64>,
    /// In-flight dispatches per tier.
    tier_outstanding: Vec<usize>,
    /// Uploads received in each tier's current round.
    tier_received: Vec<Vec<(Vec<f32>, usize)>>,
    /// Clients selected for each tier's current round (quorum denominator).
    tier_picked: Vec<usize>,
    inflight: InflightTable,
    /// Tiers still running rounds (a tier goes dormant only when every
    /// member is *permanently* gone; transient outages park it instead).
    active_tiers: usize,
    /// Parked tiers: offline right now but holding a pending revival timer.
    tier_waiting: Vec<bool>,
    /// Dormant tiers: every member permanently dropped.
    tier_dormant: Vec<bool>,
    /// Nominal round-trip latency per tier — the deadline base.
    tier_nominal: Vec<f64>,
    /// EWMA of observed per-client response latencies (seeded from the
    /// profile-time expectation; drives dynamic re-tiering).
    ewma: Vec<f64>,
    /// Tier rounds concluded since the last re-tier check.
    rounds_since_check: u64,
    /// Number of tier rounds started (each performs exactly one downlink
    /// encode via the broadcast path).
    tier_rounds_started: u64,
    /// Fig. 6 ablation: uniform instead of Eq. (5) weights.
    uniform_weights: bool,
    /// Reusable buffer for alive-member filtering (hot path: one tier round
    /// per tier arrival; avoids a fresh Vec per round).
    alive_buf: Vec<usize>,
}

impl FedAtStrategy {
    /// Builds the FedAT server: profiles tiers, initializes every tier
    /// model to `w⁰`, and zeroes the update counters.
    pub fn new(
        task: Arc<FedTask>,
        cfg: &ExperimentConfig,
        fleet: &fedat_sim::Fleet,
        exec: ExecCtx,
    ) -> Self {
        let mut tiers = TierAssignment::profile(fleet, cfg.num_tiers, cfg.local_epochs);
        if cfg.mistier_fraction > 0.0 {
            tiers.mistier(cfg.mistier_fraction, cfg.seed);
        }
        let m = tiers.num_tiers();
        let core = ServerCore::new(task, cfg, exec, cfg.rounds, cfg.eval_every);
        let tier_models = vec![core.global.clone(); m];
        let ewma: Vec<f64> = (0..fleet.len())
            .map(|c| fleet.expected_latency(c, cfg.local_epochs))
            .collect();
        let tier_nominal = nominal_latencies(&tiers, &ewma);
        FedAtStrategy {
            core,
            tiers,
            tier_models,
            tier_counts: vec![0; m],
            tier_outstanding: vec![0; m],
            tier_received: (0..m).map(|_| Vec::new()).collect(),
            tier_picked: vec![0; m],
            inflight: InflightTable::new(),
            active_tiers: m,
            tier_waiting: vec![false; m],
            tier_dormant: vec![false; m],
            tier_nominal,
            ewma,
            rounds_since_check: 0,
            tier_rounds_started: 0,
            uniform_weights: cfg.uniform_tier_weights,
            alive_buf: Vec::new(),
        }
    }

    /// Current cross-tier aggregation weights.
    pub fn tier_weights(&self) -> Vec<f32> {
        if self.uniform_weights {
            uniform_tier_weights(self.tier_counts.len())
        } else {
            cross_tier_weights(&self.tier_counts)
        }
    }

    /// Per-tier update counts (for diagnostics and tests).
    pub fn tier_update_counts(&self) -> &[u64] {
        &self.tier_counts
    }

    /// Number of tier rounds started so far (diagnostics and the
    /// encode-once regression test).
    pub fn tier_rounds_started(&self) -> u64 {
        self.tier_rounds_started
    }

    /// Read access to the transport (encode counters in tests).
    pub fn transport(&self) -> &crate::transport::Transport {
        &self.core.transport
    }

    /// The current tier partition (re-tiering diagnostics).
    pub fn tier_assignment(&self) -> &TierAssignment {
        &self.tiers
    }

    fn start_tier_round(&mut self, ctx: &mut SimCtx, tier: usize) {
        let now = ctx.now();
        self.alive_buf.clear();
        {
            let members = self.tiers.tier(tier);
            let table = &self.inflight;
            let core = &self.core;
            self.alive_buf.extend(members.iter().copied().filter(|&c| {
                ctx.fleet.is_alive(c, now) && !table.contains(c) && !core.is_quarantined(c, now)
            }));
        }
        if self.alive_buf.is_empty() {
            // Every member is offline. If any of them comes back, park the
            // tier until the earliest return and skip this round — the
            // skipped round simply doesn't bump `T_tier`, so the Eq. (5)
            // staleness weights absorb it. Only a tier of *permanently*
            // gone clients goes dormant (the legacy behavior); other tiers
            // continue either way — exactly the wait-free property of
            // cross-tier asynchrony.
            let revive =
                earliest_return(&self.core, ctx, self.tiers.tier(tier).iter().copied(), now)
                    .unwrap_or(f64::INFINITY);
            if revive.is_finite() {
                self.core.faults.quorum_rounds += 1;
                ctx.faults.record(FaultEvent {
                    time: now,
                    kind: FaultKind::Quorum,
                    client: None,
                    tier: Some(tier),
                    detail: 0,
                });
                self.tier_waiting[tier] = true;
                ctx.schedule_timer(revive, REVIVE_BIT | tier as u64);
            } else {
                self.tier_dormant[tier] = true;
                self.active_tiers -= 1;
            }
            return;
        }
        let picks = self
            .core
            .sample_clients(ctx, &self.alive_buf, self.core.cfg.clients_per_round);
        self.tier_outstanding[tier] = picks.len();
        self.tier_picked[tier] = picks.len();
        self.tier_received[tier].clear();
        self.tier_rounds_started += 1;
        let epochs = self.core.cfg.local_epochs;
        let nominal = self.tier_nominal[tier];
        // Downlink: every selected client receives the latest *global*
        // model — encoded once, decoded once, shared by all dispatches.
        let (weights, down_bytes) = self
            .core
            .transport
            .broadcast(ctx, &picks, &self.core.global);
        for c in picks {
            // Speculative launch: the client starts training on the kernel
            // pool now; the compute event only joins it. `true`: Eq. (3)
            // local constraint.
            dispatch_tracked(
                &self.core,
                &mut self.inflight,
                ctx,
                c,
                tier as u64,
                0,
                nominal,
                &weights,
                epochs,
                true,
                down_bytes,
            );
        }
    }

    /// Concludes tier `tier`'s round once its last slot resolves:
    /// aggregates whatever landed, accounts quorum, runs the re-tier check,
    /// and starts the tier's next round.
    fn conclude_if_done(&mut self, ctx: &mut SimCtx, tier: usize) {
        if self.tier_outstanding[tier] != 0 {
            return;
        }
        if !self.tier_received[tier].is_empty() {
            // Intra-tier synchronous aggregation (Algorithm 2 inner
            // loop), written into the standing tier-model buffer. Both
            // this and the cross-tier update below run the sharded
            // `weighted_sum_into` kernel, so a tier arrival's server
            // cost scales with cohort size across the kernel pool.
            let refs: Vec<(&[f32], usize)> = self.tier_received[tier]
                .iter()
                .map(|(w, n)| (w.as_slice(), *n))
                .collect();
            // The robust rule (when configured) applies here, at the
            // intra-tier step where individual client updates meet; the
            // cross-tier Eq. (5) average mixes *tier models*, which the
            // guard already screened, and keeps its staleness weighting.
            aggregate_clients_into(
                self.core.cfg.guard.agg_rule,
                &refs,
                &mut self.tier_models[tier],
            );
            self.tier_counts[tier] += 1;
            // Cross-tier asynchronous aggregation (Eq. 5), into the
            // standing global buffer.
            let weights = self.tier_weights();
            aggregate_tiers_into(&self.tier_models, &weights, &mut self.core.global);
            self.core.bump(ctx);
        }
        let received = self.tier_received[tier].len();
        if (received as f64) < self.core.cfg.fault.quorum * self.tier_picked[tier] as f64 {
            // Degraded round: fewer updates than the quorum fraction made
            // it back (an empty round skips the tier update entirely —
            // staleness accounting, not a stall).
            self.core.faults.quorum_rounds += 1;
            ctx.faults.record(FaultEvent {
                time: ctx.now(),
                kind: FaultKind::Quorum,
                client: None,
                tier: Some(tier),
                detail: received as u64,
            });
        }
        self.maybe_retier(ctx);
        if !self.finished() {
            self.start_tier_round(ctx, tier);
        }
    }

    /// Dynamic re-tiering: every `check_every` concluded tier rounds,
    /// re-partition by the latency EWMAs and adopt the new assignment when
    /// enough clients have drifted out of place. In-flight clients are
    /// pinned to their current tier so per-tier round accounting (and the
    /// "no member in flight at round start" invariant) survives the swap.
    fn maybe_retier(&mut self, ctx: &mut SimCtx) {
        let Some(policy) = self.core.cfg.fault.retier else {
            return;
        };
        self.rounds_since_check += 1;
        if self.rounds_since_check < policy.check_every {
            return;
        }
        self.rounds_since_check = 0;
        let m = self.tiers.num_tiers();
        let mut desired = TierAssignment::from_latencies(&self.ewma, m).assignments();
        let old = self.tiers.assignments();
        for (c, a) in desired.iter_mut().enumerate() {
            if self.inflight.contains(c) {
                *a = old[c];
            }
        }
        let moved = desired.iter().zip(&old).filter(|(a, b)| a != b).count();
        if moved == 0 || (moved as f64) < policy.drift_threshold * old.len() as f64 {
            return;
        }
        let Some(new_tiers) = TierAssignment::from_assignments(&desired, m) else {
            return; // pinning emptied a tier; keep the old partition
        };
        self.tiers = new_tiers;
        for t in 0..m {
            let worst = self
                .tiers
                .tier(t)
                .iter()
                .map(|&c| self.ewma[c])
                .fold(0.0_f64, f64::max);
            if worst > 0.0 {
                self.tier_nominal[t] = worst;
            }
        }
        self.core.faults.retier_events += 1;
        ctx.faults.record(FaultEvent {
            time: ctx.now(),
            kind: FaultKind::Retier,
            client: None,
            tier: None,
            detail: moved as u64,
        });
        // A dormant tier may have been handed live members; wake it (the
        // round start re-parks or re-dormants it if they're gone too).
        for t in 0..m {
            if self.tier_dormant[t] {
                self.tier_dormant[t] = false;
                self.active_tiers += 1;
                if !self.finished() {
                    self.start_tier_round(ctx, t);
                }
            }
        }
    }
}

/// Per-tier nominal latency: the slowest member's (profiled or observed)
/// round-trip expectation.
fn nominal_latencies(tiers: &TierAssignment, ewma: &[f64]) -> Vec<f64> {
    (0..tiers.num_tiers())
        .map(|t| {
            tiers
                .tier(t)
                .iter()
                .map(|&c| ewma[c])
                .fold(0.0_f64, f64::max)
                .max(1e-6)
        })
        .collect()
}

impl EventHandler for FedAtStrategy {
    fn on_start(&mut self, ctx: &mut SimCtx) {
        self.core.eval_now(ctx);
        // All tiers start training simultaneously, each at its own pace.
        for tier in 0..self.tiers.num_tiers() {
            self.start_tier_round(ctx, tier);
        }
    }

    fn on_completion(&mut self, ctx: &mut SimCtx, c: Completion) {
        match self.inflight.advance(&mut self.core, ctx, &c) {
            // Still outstanding until the upload arrives / stale event.
            PhaseEvent::UploadScheduled | PhaseEvent::Unknown => (),
            PhaseEvent::Landed {
                group,
                latency,
                weights,
                n_samples,
            } => {
                let tier = group as usize;
                let alpha = self.core.cfg.fault.retier.map_or(0.3, |p| p.alpha);
                self.ewma[c.client] = alpha * latency + (1.0 - alpha) * self.ewma[c.client];
                self.tier_outstanding[tier] -= 1;
                self.tier_received[tier].push((weights, n_samples));
                self.conclude_if_done(ctx, tier);
            }
            // Dropped mid-compute or mid-upload, or discarded by the
            // guard: either way the round slot resolves without an update.
            PhaseEvent::Lost { group } | PhaseEvent::Rejected { group } => {
                let tier = group as usize;
                self.tier_outstanding[tier] -= 1;
                self.conclude_if_done(ctx, tier);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut SimCtx, tag: u64) {
        if tag & REVIVE_BIT != 0 {
            let tier = (tag & !REVIVE_BIT) as usize;
            if !self.tier_waiting[tier] {
                return;
            }
            self.tier_waiting[tier] = false;
            self.core.faults.revivals += 1;
            if !self.finished() {
                self.start_tier_round(ctx, tier);
            }
            return;
        }
        // Deadline timer: cancel the dispatch if still pending, then hand
        // the round slot to a replacement (bounded retries) or count it
        // lost.
        let Some(t) = self.inflight.timeout(tag) else {
            return;
        };
        let tier = t.group as usize;
        let nominal = self.tier_nominal[tier];
        let epochs = self.core.cfg.local_epochs;
        let redispatched = {
            let members = self.tiers.tier(tier);
            retry_slot(
                &mut self.core,
                &mut self.inflight,
                ctx,
                &t,
                members,
                nominal,
                true,
                |_| epochs,
            )
        };
        if !redispatched {
            self.tier_outstanding[tier] -= 1;
            self.conclude_if_done(ctx, tier);
        }
    }

    fn finished(&self) -> bool {
        self.core.budget_exhausted() || self.active_tiers == 0
    }
}

impl Strategy for FedAtStrategy {
    fn trace(&self) -> &Trace {
        &self.core.trace
    }

    fn take_trace(&mut self) -> Trace {
        std::mem::take(&mut self.core.trace)
    }

    fn global_weights(&self) -> &[f32] {
        &self.core.global
    }

    fn global_updates(&self) -> u64 {
        self.core.updates
    }

    fn variance_checkpoints(&self) -> &[f32] {
        &self.core.variance_checkpoints
    }

    fn fault_counters(&self) -> FaultCounters {
        self.core.faults
    }

    fn flush_evals(&mut self) {
        self.core.flush_evals();
    }

    fn tier_updates(&self) -> Option<Vec<u64>> {
        Some(self.tier_counts.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedat_data::suite;
    use fedat_sim::fleet::{ClusterConfig, Fleet};
    use fedat_sim::runtime::{run, EventHandler, RunLimits};

    /// Regression: the global model is encoded exactly once per tier round,
    /// no matter how many clients the round selects.
    #[test]
    fn codec_encodes_global_model_once_per_tier_round() {
        let n = 20;
        let task = suite::sent140_like(n, 21);
        let cluster = ClusterConfig::paper_medium(21)
            .with_clients(n)
            .without_dropouts();
        let cfg = ExperimentConfig::builder()
            .strategy(crate::config::StrategyKind::FedAt)
            .rounds(25)
            .clients_per_round(4)
            .local_epochs(1)
            .eval_every(5)
            .seed(21)
            .cluster(cluster.clone())
            .build();
        let fleet = Fleet::new(&cluster, task.fed.client_sizes());
        let mut s = FedAtStrategy::new(
            Arc::new(task),
            &cfg,
            &fleet,
            crate::exec::ExecCtx::resolve(&cfg),
        );
        {
            let h: &mut dyn EventHandler = &mut s;
            run(h, &fleet, cfg.seed, RunLimits::default());
        }
        let rounds = s.tier_rounds_started();
        assert!(
            rounds >= 25,
            "expected at least the budgeted tier rounds, got {rounds}"
        );
        assert_eq!(
            s.transport().downlink_encode_count(),
            rounds,
            "downlink must encode exactly once per tier round"
        );
        // With 4 clients per round a per-client encoder would have done 4×
        // the work; make the sharing observable.
        assert!(
            s.transport().uplink_encode_count() > s.transport().downlink_encode_count(),
            "uploads (per client) must outnumber downlink encodes (per round)"
        );
    }
}
