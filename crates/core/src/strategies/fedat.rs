//! FedAT — the paper's contribution (§4, Algorithm 2).
//!
//! Clients are partitioned into `M` latency tiers. Every tier runs its own
//! *synchronous* FedAvg-style round loop at its natural pace; whenever a
//! tier finishes a round, the server (1) replaces that tier's model with
//! the `n_k/N_c`-weighted average of its clients' uploads, (2) recomputes
//! the global model as the *cross-tier weighted average* of all tier models
//! using the Eq. (5) heuristic (slower tiers get the larger weights), and
//! (3) hands the fresh global model to the tier for its next round — an
//! asynchronous, wait-free cross-tier update.
//!
//! Clients minimize the Eq. (3) surrogate `F_k(w) + λ/2‖w − w_global‖²`,
//! and every transfer is polyline-compressed in both directions (§4.3).

use crate::aggregate::{aggregate_tiers, cross_tier_weights, uniform_tier_weights, weighted_client_average};
use crate::config::ExperimentConfig;
use crate::local::train_client;
use crate::strategies::{Inflight, ServerCore, Strategy};
use crate::tiering::TierAssignment;
use fedat_data::suite::FedTask;
use fedat_sim::runtime::{Completion, EventHandler, SimCtx};
use fedat_sim::trace::Trace;
use std::collections::HashMap;
use std::sync::Arc;

/// FedAT server.
pub struct FedAtStrategy {
    core: ServerCore,
    tiers: TierAssignment,
    /// Per-tier server models `w_tier_m` (Algorithm 2 state).
    tier_models: Vec<Vec<f32>>,
    /// Per-tier update counters `T_tier_m`.
    tier_counts: Vec<u64>,
    /// In-flight dispatches per tier.
    tier_outstanding: Vec<usize>,
    /// Uploads received in each tier's current round.
    tier_received: Vec<Vec<(Vec<f32>, usize)>>,
    inflight: HashMap<usize, Inflight>,
    /// Tiers still running rounds (a tier goes dormant when every client
    /// has dropped).
    active_tiers: usize,
    /// Fig. 6 ablation: uniform instead of Eq. (5) weights.
    uniform_weights: bool,
}

impl FedAtStrategy {
    /// Builds the FedAT server: profiles tiers, initializes every tier
    /// model to `w⁰`, and zeroes the update counters.
    pub fn new(task: Arc<FedTask>, cfg: &ExperimentConfig, fleet: &fedat_sim::Fleet) -> Self {
        let mut tiers = TierAssignment::profile(fleet, cfg.num_tiers, cfg.local_epochs);
        if cfg.mistier_fraction > 0.0 {
            tiers.mistier(cfg.mistier_fraction, cfg.seed);
        }
        let m = tiers.num_tiers();
        let core = ServerCore::new(task, cfg, cfg.rounds, cfg.eval_every);
        let tier_models = vec![core.global.clone(); m];
        FedAtStrategy {
            core,
            tiers,
            tier_models,
            tier_counts: vec![0; m],
            tier_outstanding: vec![0; m],
            tier_received: (0..m).map(|_| Vec::new()).collect(),
            inflight: HashMap::new(),
            active_tiers: m,
            uniform_weights: cfg.uniform_tier_weights,
        }
    }

    /// Current cross-tier aggregation weights.
    pub fn tier_weights(&self) -> Vec<f32> {
        if self.uniform_weights {
            uniform_tier_weights(self.tier_counts.len())
        } else {
            cross_tier_weights(&self.tier_counts)
        }
    }

    /// Per-tier update counts (for diagnostics and tests).
    pub fn tier_update_counts(&self) -> &[u64] {
        &self.tier_counts
    }

    fn start_tier_round(&mut self, ctx: &mut SimCtx, tier: usize) {
        let now = ctx.now();
        let alive: Vec<usize> = self
            .tiers
            .tier(tier)
            .iter()
            .copied()
            .filter(|&c| ctx.fleet.is_alive(c, now))
            .collect();
        if alive.is_empty() {
            // Tier dormant: every member dropped. Other tiers continue —
            // this is exactly the wait-free property of cross-tier
            // asynchrony.
            self.active_tiers -= 1;
            return;
        }
        let picks = self
            .core
            .sample_clients(ctx, &alive, self.core.cfg.clients_per_round);
        self.tier_outstanding[tier] = picks.len();
        self.tier_received[tier].clear();
        let epochs = self.core.cfg.local_epochs;
        for c in picks {
            // Downlink: the tier's clients receive the latest *global*
            // model (compressed).
            let (weights, down_bytes) = self.core.transport.download(ctx, c, &self.core.global);
            let selection_round = ctx.dispatches_of(c);
            self.inflight.insert(c, Inflight { weights, selection_round, epochs });
            ctx.dispatch_with_transfer(c, tier as u64, epochs, 2 * down_bytes);
        }
    }
}

impl EventHandler for FedAtStrategy {
    fn on_start(&mut self, ctx: &mut SimCtx) {
        self.core.eval_now(ctx);
        // All tiers start training simultaneously, each at its own pace.
        for tier in 0..self.tiers.num_tiers() {
            self.start_tier_round(ctx, tier);
        }
    }

    fn on_completion(&mut self, ctx: &mut SimCtx, c: Completion) {
        let tier = c.tag as usize;
        self.tier_outstanding[tier] -= 1;
        if let Some(info) = self.inflight.remove(&c.client) {
            if !c.dropped {
                let update = train_client(
                    &self.core.task,
                    c.client,
                    &info.weights,
                    &self.core.cfg,
                    info.epochs,
                    info.selection_round,
                    true, // Eq. (3) local constraint
                );
                // Uplink: compressed client weights.
                let w_up = self.core.transport.upload(ctx, c.client, &update.weights);
                self.tier_received[tier].push((w_up, update.n_samples));
            }
        }
        if self.tier_outstanding[tier] == 0 {
            if !self.tier_received[tier].is_empty() {
                // Intra-tier synchronous aggregation (Algorithm 2 inner loop).
                let refs: Vec<(&[f32], usize)> = self.tier_received[tier]
                    .iter()
                    .map(|(w, n)| (w.as_slice(), *n))
                    .collect();
                self.tier_models[tier] = weighted_client_average(&refs);
                self.tier_counts[tier] += 1;
                // Cross-tier asynchronous aggregation (Eq. 5).
                let weights = self.tier_weights();
                self.core.global = aggregate_tiers(&self.tier_models, &weights);
                self.core.bump(ctx);
            }
            if !self.finished() {
                self.start_tier_round(ctx, tier);
            }
        }
    }

    fn finished(&self) -> bool {
        self.core.budget_exhausted() || self.active_tiers == 0
    }
}

impl Strategy for FedAtStrategy {
    fn trace(&self) -> &Trace {
        &self.core.trace
    }

    fn take_trace(&mut self) -> Trace {
        std::mem::take(&mut self.core.trace)
    }

    fn global_weights(&self) -> &[f32] {
        &self.core.global
    }

    fn global_updates(&self) -> u64 {
        self.core.updates
    }

    fn variance_checkpoints(&self) -> &[f32] {
        &self.core.variance_checkpoints
    }
}
