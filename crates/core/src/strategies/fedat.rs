//! FedAT — the paper's contribution (§4, Algorithm 2).
//!
//! Clients are partitioned into `M` latency tiers. Every tier runs its own
//! *synchronous* FedAvg-style round loop at its natural pace; whenever a
//! tier finishes a round, the server (1) replaces that tier's model with
//! the `n_k/N_c`-weighted average of its clients' uploads, (2) recomputes
//! the global model as the *cross-tier weighted average* of all tier models
//! using the Eq. (5) heuristic (slower tiers get the larger weights), and
//! (3) hands the fresh global model to the tier for its next round — an
//! asynchronous, wait-free cross-tier update.
//!
//! Clients minimize the Eq. (3) surrogate `F_k(w) + λ/2‖w − w_global‖²`,
//! and every transfer is polyline-compressed in both directions (§4.3).

use crate::aggregate::{
    aggregate_tiers_into, cross_tier_weights, uniform_tier_weights, weighted_client_average_into,
};
use crate::config::ExperimentConfig;
use crate::strategies::{advance_phase, ClientPhase, PhaseEvent, ServerCore, Strategy};
use crate::tiering::TierAssignment;
use fedat_data::suite::FedTask;
use fedat_sim::runtime::{Completion, EventHandler, SimCtx};
use fedat_sim::trace::Trace;
use std::collections::HashMap;
use std::sync::Arc;

/// FedAT server.
pub struct FedAtStrategy {
    core: ServerCore,
    tiers: TierAssignment,
    /// Per-tier server models `w_tier_m` (Algorithm 2 state), aggregated
    /// in place every tier round.
    tier_models: Vec<Vec<f32>>,
    /// Per-tier update counters `T_tier_m`.
    tier_counts: Vec<u64>,
    /// In-flight dispatches per tier.
    tier_outstanding: Vec<usize>,
    /// Uploads received in each tier's current round.
    tier_received: Vec<Vec<(Vec<f32>, usize)>>,
    inflight: HashMap<usize, ClientPhase>,
    /// Tiers still running rounds (a tier goes dormant when every client
    /// has dropped).
    active_tiers: usize,
    /// Number of tier rounds started (each performs exactly one downlink
    /// encode via the broadcast path).
    tier_rounds_started: u64,
    /// Fig. 6 ablation: uniform instead of Eq. (5) weights.
    uniform_weights: bool,
}

impl FedAtStrategy {
    /// Builds the FedAT server: profiles tiers, initializes every tier
    /// model to `w⁰`, and zeroes the update counters.
    pub fn new(task: Arc<FedTask>, cfg: &ExperimentConfig, fleet: &fedat_sim::Fleet) -> Self {
        let mut tiers = TierAssignment::profile(fleet, cfg.num_tiers, cfg.local_epochs);
        if cfg.mistier_fraction > 0.0 {
            tiers.mistier(cfg.mistier_fraction, cfg.seed);
        }
        let m = tiers.num_tiers();
        let core = ServerCore::new(task, cfg, cfg.rounds, cfg.eval_every);
        let tier_models = vec![core.global.clone(); m];
        FedAtStrategy {
            core,
            tiers,
            tier_models,
            tier_counts: vec![0; m],
            tier_outstanding: vec![0; m],
            tier_received: (0..m).map(|_| Vec::new()).collect(),
            inflight: HashMap::new(),
            active_tiers: m,
            tier_rounds_started: 0,
            uniform_weights: cfg.uniform_tier_weights,
        }
    }

    /// Current cross-tier aggregation weights.
    pub fn tier_weights(&self) -> Vec<f32> {
        if self.uniform_weights {
            uniform_tier_weights(self.tier_counts.len())
        } else {
            cross_tier_weights(&self.tier_counts)
        }
    }

    /// Per-tier update counts (for diagnostics and tests).
    pub fn tier_update_counts(&self) -> &[u64] {
        &self.tier_counts
    }

    /// Number of tier rounds started so far (diagnostics and the
    /// encode-once regression test).
    pub fn tier_rounds_started(&self) -> u64 {
        self.tier_rounds_started
    }

    /// Read access to the transport (encode counters in tests).
    pub fn transport(&self) -> &crate::transport::Transport {
        &self.core.transport
    }

    fn start_tier_round(&mut self, ctx: &mut SimCtx, tier: usize) {
        let now = ctx.now();
        let alive: Vec<usize> = self
            .tiers
            .tier(tier)
            .iter()
            .copied()
            .filter(|&c| ctx.fleet.is_alive(c, now))
            .collect();
        if alive.is_empty() {
            // Tier dormant: every member dropped. Other tiers continue —
            // this is exactly the wait-free property of cross-tier
            // asynchrony.
            self.active_tiers -= 1;
            return;
        }
        let picks = self
            .core
            .sample_clients(ctx, &alive, self.core.cfg.clients_per_round);
        self.tier_outstanding[tier] = picks.len();
        self.tier_received[tier].clear();
        self.tier_rounds_started += 1;
        let epochs = self.core.cfg.local_epochs;
        // Downlink: every selected client receives the latest *global*
        // model — encoded once, decoded once, shared by all dispatches.
        let (weights, down_bytes) = self
            .core
            .transport
            .broadcast(ctx, &picks, &self.core.global);
        for c in picks {
            let selection_round = ctx.dispatches_of(c);
            // Speculative launch: the client starts training on the kernel
            // pool now; the compute event only joins it. `true`: Eq. (3)
            // local constraint.
            self.inflight.insert(
                c,
                self.core.launch(c, &weights, epochs, selection_round, true),
            );
            ctx.dispatch_with_transfer(c, tier as u64, epochs, down_bytes);
        }
    }
}

impl EventHandler for FedAtStrategy {
    fn on_start(&mut self, ctx: &mut SimCtx) {
        self.core.eval_now(ctx);
        // All tiers start training simultaneously, each at its own pace.
        for tier in 0..self.tiers.num_tiers() {
            self.start_tier_round(ctx, tier);
        }
    }

    fn on_completion(&mut self, ctx: &mut SimCtx, c: Completion) {
        let tier = c.tag as usize;
        match advance_phase(&self.core, &mut self.inflight, ctx, &c) {
            // Still outstanding until the upload arrives / stale event.
            PhaseEvent::UploadScheduled | PhaseEvent::Unknown => return,
            PhaseEvent::Landed { weights, n_samples } => {
                self.tier_outstanding[tier] -= 1;
                self.tier_received[tier].push((weights, n_samples));
            }
            // Dropped mid-compute or mid-upload: the update is lost.
            PhaseEvent::Lost => self.tier_outstanding[tier] -= 1,
        }
        if self.tier_outstanding[tier] == 0 {
            if !self.tier_received[tier].is_empty() {
                // Intra-tier synchronous aggregation (Algorithm 2 inner
                // loop), written into the standing tier-model buffer. Both
                // this and the cross-tier update below run the sharded
                // `weighted_sum_into` kernel, so a tier arrival's server
                // cost scales with cohort size across the kernel pool.
                let refs: Vec<(&[f32], usize)> = self.tier_received[tier]
                    .iter()
                    .map(|(w, n)| (w.as_slice(), *n))
                    .collect();
                weighted_client_average_into(&refs, &mut self.tier_models[tier]);
                self.tier_counts[tier] += 1;
                // Cross-tier asynchronous aggregation (Eq. 5), into the
                // standing global buffer.
                let weights = self.tier_weights();
                aggregate_tiers_into(&self.tier_models, &weights, &mut self.core.global);
                self.core.bump(ctx);
            }
            if !self.finished() {
                self.start_tier_round(ctx, tier);
            }
        }
    }

    fn finished(&self) -> bool {
        self.core.budget_exhausted() || self.active_tiers == 0
    }
}

impl Strategy for FedAtStrategy {
    fn trace(&self) -> &Trace {
        &self.core.trace
    }

    fn take_trace(&mut self) -> Trace {
        std::mem::take(&mut self.core.trace)
    }

    fn global_weights(&self) -> &[f32] {
        &self.core.global
    }

    fn global_updates(&self) -> u64 {
        self.core.updates
    }

    fn variance_checkpoints(&self) -> &[f32] {
        &self.core.variance_checkpoints
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedat_data::suite;
    use fedat_sim::fleet::{ClusterConfig, Fleet};
    use fedat_sim::runtime::{run, EventHandler, RunLimits};

    /// Regression: the global model is encoded exactly once per tier round,
    /// no matter how many clients the round selects.
    #[test]
    fn codec_encodes_global_model_once_per_tier_round() {
        let n = 20;
        let task = suite::sent140_like(n, 21);
        let cluster = ClusterConfig::paper_medium(21)
            .with_clients(n)
            .without_dropouts();
        let cfg = ExperimentConfig::builder()
            .strategy(crate::config::StrategyKind::FedAt)
            .rounds(25)
            .clients_per_round(4)
            .local_epochs(1)
            .eval_every(5)
            .seed(21)
            .cluster(cluster.clone())
            .build();
        let fleet = Fleet::new(&cluster, task.fed.client_sizes());
        let mut s = FedAtStrategy::new(Arc::new(task), &cfg, &fleet);
        {
            let h: &mut dyn EventHandler = &mut s;
            run(h, &fleet, cfg.seed, RunLimits::default());
        }
        let rounds = s.tier_rounds_started();
        assert!(
            rounds >= 25,
            "expected at least the budgeted tier rounds, got {rounds}"
        );
        assert_eq!(
            s.transport().downlink_encode_count(),
            rounds,
            "downlink must encode exactly once per tier round"
        );
        // With 4 clients per round a per-client encoder would have done 4×
        // the work; make the sharing observable.
        assert!(
            s.transport().uplink_encode_count() > s.transport().downlink_encode_count(),
            "uploads (per client) must outnumber downlink encodes (per round)"
        );
    }
}
