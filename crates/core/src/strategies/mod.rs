//! The six federated-learning methods, all driven by the same
//! discrete-event runtime.
//!
//! | Strategy | Module | Communication pattern |
//! |---|---|---|
//! | FedAvg | [`sync`] | synchronous rounds, random subset |
//! | FedProx | [`sync`] | synchronous + prox term + device-dependent epochs |
//! | TiFL | [`tifl`] | synchronous, adaptive tier selection |
//! | FedAsync | [`fedasync`] | fully async, staleness-weighted mixing |
//! | ASO-Fed | [`asofed`] | fully async, per-client server copies |
//! | FedAT | [`fedat`] | sync intra-tier + async cross-tier (the paper) |

pub mod asofed;
pub mod fedasync;
pub mod fedat;
pub mod sync;
pub mod tifl;

use crate::config::{default_codec, ExperimentConfig, StrategyKind};
use crate::eval::Evaluator;
use crate::transport::Transport;
use fedat_data::suite::FedTask;
use fedat_sim::fault::{FaultEvent, FaultKind};
use fedat_sim::runtime::{Completion, EventHandler, SimCtx};
use fedat_sim::trace::{Trace, TracePoint};
use std::collections::BTreeMap;
use std::sync::Arc;

/// High bit of a timer tag: marks revival wake-ups (a parked tier or a
/// flapped-out async client coming back). Every other timer tag is a
/// dispatch generation carrying that dispatch's deadline.
pub(crate) const REVIVE_BIT: u64 = 1 << 63;

/// Counters summarizing one run's server-side fault-tolerance activity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Dispatches cancelled at their deadline.
    pub timeouts: u64,
    /// Timed-out slots re-dispatched to a replacement client.
    pub retries: u64,
    /// Rounds concluded below quorum (degraded or skipped with staleness
    /// accounting).
    pub quorum_rounds: u64,
    /// Dynamic re-tier adoptions.
    pub retier_events: u64,
    /// Revival timers that restarted a parked tier or client.
    pub revivals: u64,
}

/// A runnable FL method: the event handler plus result accessors.
pub trait Strategy: EventHandler + Send {
    /// The accuracy/loss/bytes trace recorded so far.
    fn trace(&self) -> &Trace;

    /// Consumes the recorded trace.
    fn take_trace(&mut self) -> Trace;

    /// Current global model weights.
    fn global_weights(&self) -> &[f32];

    /// Number of global updates performed (`t` in Algorithm 2).
    fn global_updates(&self) -> u64;

    /// Per-client accuracy variances sampled along the run (the paper's
    /// Table 1 `Norm. Var.` metric averages the variance of per-client test
    /// accuracy over training checkpoints).
    fn variance_checkpoints(&self) -> &[f32];

    /// Fault-tolerance activity counters (timeouts, retries, quorum
    /// degradations, re-tiers, revivals).
    fn fault_counters(&self) -> FaultCounters;

    /// Per-tier update counts for tiered strategies (`None` otherwise) —
    /// lets callers assert that no tier stalled.
    fn tier_updates(&self) -> Option<Vec<u64>> {
        None
    }
}

/// Server-side state shared by every strategy implementation.
pub(crate) struct ServerCore {
    pub task: Arc<FedTask>,
    /// Shared so dispatch-time training jobs can carry the config to any
    /// pool worker without cloning it per dispatch.
    pub cfg: Arc<ExperimentConfig>,
    pub transport: Transport,
    pub evaluator: Evaluator,
    /// Current global weights `w^t`.
    pub global: Vec<f32>,
    /// Global update counter `t`.
    pub updates: u64,
    /// Global update budget (strategy-scaled).
    pub budget: u64,
    /// Evaluate every this many global updates (strategy-scaled).
    pub eval_stride: u64,
    pub trace: Trace,
    /// Per-client accuracy variance, sampled every
    /// [`VARIANCE_EVAL_STRIDE`]-th evaluation.
    pub variance_checkpoints: Vec<f32>,
    /// Fault-tolerance activity for the whole run.
    pub faults: FaultCounters,
    evals_done: u64,
}

/// Per-client variance is sampled every this many global evaluations (a
/// full per-client sweep costs about one extra global evaluation).
pub const VARIANCE_EVAL_STRIDE: u64 = 5;

/// Extra update-budget multiplier for the fully asynchronous methods
/// (FedAsync, ASO-Fed): their single-client updates land continuously, so
/// within any wall-clock horizon they perform far more global updates than
/// a synchronous method performs rounds. The budget is scaled up so the
/// shared `max_time` horizon — the paper's timeline axis — is the binding
/// stopping rule.
pub const ASYNC_FILL: u64 = 20;

impl ServerCore {
    pub fn new(task: Arc<FedTask>, cfg: &ExperimentConfig, budget: u64, eval_stride: u64) -> Self {
        let codec = cfg.codec.unwrap_or_else(|| default_codec(cfg.strategy));
        let transport = Transport::new(codec);
        let evaluator = Evaluator::new(&task, cfg.eval_subset, cfg.seed);
        let global = task.model.build(cfg.seed).weights();
        let trace = Trace::new(format!("{} @ {}", cfg.strategy.name(), task.name));
        ServerCore {
            task,
            cfg: Arc::new(cfg.clone()),
            transport,
            evaluator,
            global,
            updates: 0,
            budget,
            eval_stride: eval_stride.max(1),
            trace,
            variance_checkpoints: Vec::new(),
            faults: FaultCounters::default(),
            evals_done: 0,
        }
    }

    /// Records one global update; evaluates on the configured cadence.
    pub fn bump(&mut self, ctx: &mut SimCtx) {
        self.updates += 1;
        if self.updates.is_multiple_of(self.eval_stride) {
            self.eval_now(ctx);
        }
    }

    /// Evaluates the current global model and appends a trace point;
    /// periodically also sweeps per-client accuracies for the variance
    /// metric. Both run on the kernel pool (streaming mini-batches and
    /// sharded client bands) and are bit-identical to a serial sweep for
    /// any thread count.
    pub fn eval_now(&mut self, ctx: &mut SimCtx) {
        let r = self.evaluator.evaluate(&self.global);
        self.trace.push(TracePoint {
            time: ctx.now(),
            round: self.updates,
            accuracy: r.accuracy,
            loss: r.loss,
            up_bytes: ctx.traffic.uplink_bytes(),
            down_bytes: ctx.traffic.downlink_bytes(),
        });
        self.evals_done += 1;
        if self.evals_done.is_multiple_of(VARIANCE_EVAL_STRIDE) {
            let accs = crate::eval::per_client_accuracy(&self.task, &self.global, self.cfg.seed);
            self.variance_checkpoints
                .push(crate::eval::accuracy_variance(&accs));
        }
    }

    /// Whether the update budget is exhausted.
    pub fn budget_exhausted(&self) -> bool {
        self.updates >= self.budget
    }

    /// Samples `k` distinct clients from `pool` (all of `pool` if smaller).
    pub fn sample_clients(&self, ctx: &mut SimCtx, pool: &[usize], k: usize) -> Vec<usize> {
        if pool.len() <= k {
            return pool.to_vec();
        }
        fedat_tensor::rng::sample_without_replacement(ctx.rng, pool.len(), k)
            .into_iter()
            .map(|i| pool[i])
            .collect()
    }

    /// Starts one client's local training *at dispatch time* and returns
    /// the in-flight phase entry holding its handle. Under the speculative
    /// execution mode (see [`crate::exec`]) the job begins on the kernel
    /// pool immediately; inline mode defers it to the join inside
    /// [`advance_phase`]. `weights` is the shared decoded broadcast —
    /// launching clones `Arc`s, never the model.
    pub fn launch(
        &self,
        client: usize,
        weights: &std::sync::Arc<[f32]>,
        epochs: usize,
        selection_round: u64,
        use_prox: bool,
    ) -> ClientPhase {
        ClientPhase::Computing(Inflight {
            handle: crate::local::TrainHandle::launch(crate::local::TrainJob {
                task: Arc::clone(&self.task),
                client,
                global: Arc::clone(weights),
                cfg: Arc::clone(&self.cfg),
                epochs,
                selection_round,
                use_prox,
            }),
        })
    }
}

/// One in-flight client computation, launched at dispatch time.
pub(crate) struct Inflight {
    /// The training computation for this dispatch. The downloaded weights,
    /// selection round, epoch count and prox flag were all captured into
    /// the job when it launched — no simulator state can leak in later,
    /// which is what makes speculative execution trace-invisible.
    pub handle: crate::local::TrainHandle,
}

/// Where one client currently is in its round trip.
///
/// A client dispatch now takes two simulator events: the *compute*
/// completion (download + local training done — the strategy joins the
/// training result and puts the encoded update on the wire) and the
/// *upload arrival* (the uplink transfer finished — the update is
/// applied). Under infinite bandwidth the second event fires at the same
/// virtual instant; with a finite link it charges the actual encoded
/// payload of the *trained* weights, which differs from the downlink
/// payload once a lossy codec is in play.
pub(crate) enum ClientPhase {
    /// Dispatched; local training completes with the compute event.
    Computing(Inflight),
    /// Trained; the encoded update is in flight to the server.
    Uploading {
        /// Post-roundtrip uploaded weights.
        weights: Vec<f32>,
        /// The client's sample count (aggregation weight).
        n_samples: usize,
    },
}

/// What a completion event meant for the client's round trip.
pub(crate) enum PhaseEvent {
    /// Compute finished; the upload is now in flight — nothing to account
    /// yet (the dispatch is still outstanding).
    UploadScheduled,
    /// The client's trained update landed at the server.
    Landed {
        /// The dispatch group (tier index for tiered strategies).
        group: u64,
        /// Observed dispatch→arrival latency (feeds the re-tiering EWMA).
        latency: f64,
        /// Post-roundtrip uploaded weights.
        weights: Vec<f32>,
        /// The client's sample count (aggregation weight).
        n_samples: usize,
    },
    /// The dispatch was lost to a dropout (mid-compute or mid-upload).
    Lost {
        /// The dispatch group (tier index for tiered strategies).
        group: u64,
    },
    /// Stale event: the dispatch was already resolved (e.g. cancelled by a
    /// deadline) or superseded by a newer generation.
    Unknown,
}

/// A dispatch cancelled by its deadline timer.
pub(crate) struct TimedOut {
    pub client: usize,
    /// The dispatch group (tier index for tiered strategies).
    pub group: u64,
    /// Retries already spent on this round slot.
    pub retries: u32,
}

/// One tracked dispatch: the phase state machine plus the bookkeeping the
/// fault layer needs (generation, group, retry count, dispatch time).
struct Dispatch {
    gen: u64,
    group: u64,
    retries: u32,
    dispatched_at: f64,
    phase: ClientPhase,
}

/// The server's table of in-flight dispatches, keyed by client and by a
/// monotonically increasing *generation*. The generation is the dispatch's
/// event tag, so a completion or deadline timer arriving after the dispatch
/// was cancelled (or after the client was re-dispatched under a new
/// generation) resolves to nothing instead of corrupting round accounting.
///
/// Both maps are `BTreeMap`, not `HashMap`: every lookup here is keyed, but
/// a future `.iter()` over a RandomState-seeded map would silently order
/// server actions nondeterministically — the exact failure mode `fedat-lint`
/// rule R1 guards against. The ordered map makes any future iteration
/// deterministic by construction (and the keyed-op cost is identical at
/// in-flight sizes of tens of entries).
pub(crate) struct InflightTable {
    by_client: BTreeMap<usize, Dispatch>,
    client_of: BTreeMap<u64, usize>,
    next_gen: u64,
}

impl InflightTable {
    pub fn new() -> Self {
        InflightTable {
            by_client: BTreeMap::new(),
            client_of: BTreeMap::new(),
            // Generations start at 1 and stay below REVIVE_BIT for any
            // conceivable run length, so tag namespaces never collide.
            next_gen: 1,
        }
    }

    /// Whether `client` has a dispatch in flight.
    pub fn contains(&self, client: usize) -> bool {
        self.by_client.contains_key(&client)
    }

    /// Registers a new dispatch and returns its generation (the tag to
    /// dispatch under and the tag its deadline timer carries).
    pub fn begin(
        &mut self,
        client: usize,
        group: u64,
        retries: u32,
        now: f64,
        phase: ClientPhase,
    ) -> u64 {
        let gen = self.next_gen;
        self.next_gen += 1;
        let prev = self.by_client.insert(
            client,
            Dispatch {
                gen,
                group,
                retries,
                dispatched_at: now,
                phase,
            },
        );
        debug_assert!(prev.is_none(), "client {client} already in flight");
        self.client_of.insert(gen, client);
        gen
    }

    /// Advances one client's compute→upload state machine for a completion.
    ///
    /// On a compute completion this *joins* the training job launched at
    /// dispatch (running it now if the inline mode is active or no worker
    /// got to it), puts the encoded update on the wire (charging the
    /// *actual* uplink payload) and schedules the upload arrival; on the
    /// arrival it hands the update back to the strategy. A dropout
    /// mid-compute discards the speculative result unjoined. A completion
    /// whose tag doesn't match the client's current generation belongs to a
    /// cancelled dispatch and is reported [`PhaseEvent::Unknown`]. Shared
    /// by all five strategies so the phase protocol cannot diverge.
    pub fn advance(&mut self, core: &ServerCore, ctx: &mut SimCtx, c: &Completion) -> PhaseEvent {
        match self.by_client.get(&c.client) {
            Some(d) if d.gen == c.tag => {}
            _ => return PhaseEvent::Unknown,
        }
        let mut d = self.by_client.remove(&c.client).expect("checked above");
        match d.phase {
            ClientPhase::Computing(info) if !c.dropped => {
                let update = info.handle.join();
                let (w_up, up_bytes) = core.transport.upload(ctx, c.client, &update.weights);
                d.phase = ClientPhase::Uploading {
                    weights: w_up,
                    n_samples: update.n_samples,
                };
                self.by_client.insert(c.client, d);
                ctx.schedule_transfer(c.client, c.tag, up_bytes);
                PhaseEvent::UploadScheduled
            }
            ClientPhase::Uploading { weights, n_samples } if !c.dropped => {
                self.client_of.remove(&d.gen);
                PhaseEvent::Landed {
                    group: d.group,
                    latency: ctx.now() - d.dispatched_at,
                    weights,
                    n_samples,
                }
            }
            ClientPhase::Computing(info) => {
                // Dropped mid-compute: the dispatch-time job is wasted work.
                info.handle.discard();
                self.client_of.remove(&d.gen);
                PhaseEvent::Lost { group: d.group }
            }
            ClientPhase::Uploading { .. } => {
                self.client_of.remove(&d.gen);
                PhaseEvent::Lost { group: d.group }
            }
        }
    }

    /// Cancels the dispatch whose deadline timer (tag = generation) fired.
    /// Returns `None` when the timer is stale — the dispatch already landed
    /// or was lost. A cancelled mid-compute job is discarded unjoined; its
    /// eventual completion event resolves to [`PhaseEvent::Unknown`].
    pub fn timeout(&mut self, gen: u64) -> Option<TimedOut> {
        let client = self.client_of.remove(&gen)?;
        let d = self.by_client.remove(&client)?;
        debug_assert_eq!(d.gen, gen);
        if let ClientPhase::Computing(info) = d.phase {
            info.handle.discard();
        }
        Some(TimedOut {
            client,
            group: d.group,
            retries: d.retries,
        })
    }
}

/// Launches, registers and dispatches one tracked client round trip; when
/// the fault policy enables deadlines, also arms the deadline timer at
/// `nominal × multiplier × backoff^retries` from now.
#[allow(clippy::too_many_arguments)]
pub(crate) fn dispatch_tracked(
    core: &ServerCore,
    table: &mut InflightTable,
    ctx: &mut SimCtx,
    client: usize,
    group: u64,
    retries: u32,
    nominal: f64,
    weights: &Arc<[f32]>,
    epochs: usize,
    use_prox: bool,
    down_bytes: usize,
) {
    let selection_round = ctx.dispatches_of(client);
    let phase = core.launch(client, weights, epochs, selection_round, use_prox);
    let gen = table.begin(client, group, retries, ctx.now(), phase);
    ctx.dispatch_with_transfer(client, gen, epochs, down_bytes);
    if let Some(mult) = core.cfg.fault.deadline_multiplier {
        let deadline = nominal * mult * core.cfg.fault.backoff.powi(retries as i32);
        ctx.schedule_timer(ctx.now() + deadline, gen);
    }
}

/// Handles a cancelled dispatch: records the timeout, then — if retries
/// remain and a replacement exists in `pool` (alive, idle, not the victim)
/// — re-dispatches the round slot to it with the *current* global model and
/// a backed-off deadline. Returns `true` when the slot was re-dispatched,
/// `false` when the caller must account it as lost.
#[allow(clippy::too_many_arguments)]
pub(crate) fn retry_slot(
    core: &mut ServerCore,
    table: &mut InflightTable,
    ctx: &mut SimCtx,
    timed_out: &TimedOut,
    pool: &[usize],
    nominal: f64,
    use_prox: bool,
    epochs_for: impl Fn(usize) -> usize,
) -> bool {
    let now = ctx.now();
    core.faults.timeouts += 1;
    ctx.faults.record(FaultEvent {
        time: now,
        kind: FaultKind::Timeout,
        client: Some(timed_out.client),
        tier: Some(timed_out.group as usize),
        detail: timed_out.retries as u64,
    });
    if timed_out.retries >= core.cfg.fault.max_retries {
        return false;
    }
    let candidates: Vec<usize> = pool
        .iter()
        .copied()
        .filter(|&c| c != timed_out.client && ctx.fleet.is_alive(c, now) && !table.contains(c))
        .collect();
    let Some(&replacement) = core.sample_clients(ctx, &candidates, 1).first() else {
        return false;
    };
    let retries = timed_out.retries + 1;
    let epochs = epochs_for(replacement);
    // The replacement gets the *current* global model — a fresh unicast
    // download, not the possibly stale round broadcast.
    let (weights, down_bytes) = core.transport.download(ctx, replacement, &core.global);
    dispatch_tracked(
        core,
        table,
        ctx,
        replacement,
        timed_out.group,
        retries,
        nominal,
        &weights,
        epochs,
        use_prox,
        down_bytes,
    );
    core.faults.retries += 1;
    ctx.faults.record(FaultEvent {
        time: now,
        kind: FaultKind::Retry,
        client: Some(replacement),
        tier: Some(timed_out.group as usize),
        detail: retries as u64,
    });
    true
}

/// Builds the strategy object for a config.
pub fn build_strategy(
    task: Arc<FedTask>,
    cfg: &ExperimentConfig,
    fleet: &fedat_sim::Fleet,
) -> Box<dyn Strategy> {
    match cfg.strategy {
        StrategyKind::FedAvg => Box::new(sync::SyncStrategy::fedavg(task, cfg)),
        StrategyKind::FedProx => Box::new(sync::SyncStrategy::fedprox(task, cfg, fleet)),
        StrategyKind::TiFL => Box::new(tifl::TiflStrategy::new(task, cfg, fleet)),
        StrategyKind::FedAsync => Box::new(fedasync::FedAsyncStrategy::new(task, cfg)),
        StrategyKind::AsoFed => Box::new(asofed::AsoFedStrategy::new(task, cfg)),
        StrategyKind::FedAt => Box::new(fedat::FedAtStrategy::new(task, cfg, fleet)),
    }
}
