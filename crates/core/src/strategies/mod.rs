//! The six federated-learning methods, all driven by the same
//! discrete-event runtime.
//!
//! | Strategy | Module | Communication pattern |
//! |---|---|---|
//! | FedAvg | [`sync`] | synchronous rounds, random subset |
//! | FedProx | [`sync`] | synchronous + prox term + device-dependent epochs |
//! | TiFL | [`tifl`] | synchronous, adaptive tier selection |
//! | FedAsync | [`fedasync`] | fully async, staleness-weighted mixing |
//! | ASO-Fed | [`asofed`] | fully async, per-client server copies |
//! | FedAT | [`fedat`] | sync intra-tier + async cross-tier (the paper) |

pub mod asofed;
pub mod fedasync;
pub mod fedat;
pub mod sync;
pub mod tifl;

use crate::config::{default_codec, ExperimentConfig, StrategyKind};
use crate::eval::Evaluator;
use crate::transport::Transport;
use fedat_data::suite::FedTask;
use fedat_sim::runtime::{EventHandler, SimCtx};
use fedat_sim::trace::{Trace, TracePoint};
use std::sync::Arc;

/// A runnable FL method: the event handler plus result accessors.
pub trait Strategy: EventHandler + Send {
    /// The accuracy/loss/bytes trace recorded so far.
    fn trace(&self) -> &Trace;

    /// Consumes the recorded trace.
    fn take_trace(&mut self) -> Trace;

    /// Current global model weights.
    fn global_weights(&self) -> &[f32];

    /// Number of global updates performed (`t` in Algorithm 2).
    fn global_updates(&self) -> u64;

    /// Per-client accuracy variances sampled along the run (the paper's
    /// Table 1 `Norm. Var.` metric averages the variance of per-client test
    /// accuracy over training checkpoints).
    fn variance_checkpoints(&self) -> &[f32];
}

/// Server-side state shared by every strategy implementation.
pub(crate) struct ServerCore {
    pub task: Arc<FedTask>,
    /// Shared so dispatch-time training jobs can carry the config to any
    /// pool worker without cloning it per dispatch.
    pub cfg: Arc<ExperimentConfig>,
    pub transport: Transport,
    pub evaluator: Evaluator,
    /// Current global weights `w^t`.
    pub global: Vec<f32>,
    /// Global update counter `t`.
    pub updates: u64,
    /// Global update budget (strategy-scaled).
    pub budget: u64,
    /// Evaluate every this many global updates (strategy-scaled).
    pub eval_stride: u64,
    pub trace: Trace,
    /// Per-client accuracy variance, sampled every
    /// [`VARIANCE_EVAL_STRIDE`]-th evaluation.
    pub variance_checkpoints: Vec<f32>,
    evals_done: u64,
}

/// Per-client variance is sampled every this many global evaluations (a
/// full per-client sweep costs about one extra global evaluation).
pub const VARIANCE_EVAL_STRIDE: u64 = 5;

/// Extra update-budget multiplier for the fully asynchronous methods
/// (FedAsync, ASO-Fed): their single-client updates land continuously, so
/// within any wall-clock horizon they perform far more global updates than
/// a synchronous method performs rounds. The budget is scaled up so the
/// shared `max_time` horizon — the paper's timeline axis — is the binding
/// stopping rule.
pub const ASYNC_FILL: u64 = 20;

impl ServerCore {
    pub fn new(task: Arc<FedTask>, cfg: &ExperimentConfig, budget: u64, eval_stride: u64) -> Self {
        let codec = cfg.codec.unwrap_or_else(|| default_codec(cfg.strategy));
        let transport = Transport::new(codec);
        let evaluator = Evaluator::new(&task, cfg.eval_subset, cfg.seed);
        let global = task.model.build(cfg.seed).weights();
        let trace = Trace::new(format!("{} @ {}", cfg.strategy.name(), task.name));
        ServerCore {
            task,
            cfg: Arc::new(cfg.clone()),
            transport,
            evaluator,
            global,
            updates: 0,
            budget,
            eval_stride: eval_stride.max(1),
            trace,
            variance_checkpoints: Vec::new(),
            evals_done: 0,
        }
    }

    /// Records one global update; evaluates on the configured cadence.
    pub fn bump(&mut self, ctx: &mut SimCtx) {
        self.updates += 1;
        if self.updates.is_multiple_of(self.eval_stride) {
            self.eval_now(ctx);
        }
    }

    /// Evaluates the current global model and appends a trace point;
    /// periodically also sweeps per-client accuracies for the variance
    /// metric. Both run on the kernel pool (streaming mini-batches and
    /// sharded client bands) and are bit-identical to a serial sweep for
    /// any thread count.
    pub fn eval_now(&mut self, ctx: &mut SimCtx) {
        let r = self.evaluator.evaluate(&self.global);
        self.trace.push(TracePoint {
            time: ctx.now(),
            round: self.updates,
            accuracy: r.accuracy,
            loss: r.loss,
            up_bytes: ctx.traffic.uplink_bytes(),
            down_bytes: ctx.traffic.downlink_bytes(),
        });
        self.evals_done += 1;
        if self.evals_done.is_multiple_of(VARIANCE_EVAL_STRIDE) {
            let accs = crate::eval::per_client_accuracy(&self.task, &self.global, self.cfg.seed);
            self.variance_checkpoints
                .push(crate::eval::accuracy_variance(&accs));
        }
    }

    /// Whether the update budget is exhausted.
    pub fn budget_exhausted(&self) -> bool {
        self.updates >= self.budget
    }

    /// Samples `k` distinct clients from `pool` (all of `pool` if smaller).
    pub fn sample_clients(&self, ctx: &mut SimCtx, pool: &[usize], k: usize) -> Vec<usize> {
        if pool.len() <= k {
            return pool.to_vec();
        }
        fedat_tensor::rng::sample_without_replacement(ctx.rng, pool.len(), k)
            .into_iter()
            .map(|i| pool[i])
            .collect()
    }

    /// Starts one client's local training *at dispatch time* and returns
    /// the in-flight phase entry holding its handle. Under the speculative
    /// execution mode (see [`crate::exec`]) the job begins on the kernel
    /// pool immediately; inline mode defers it to the join inside
    /// [`advance_phase`]. `weights` is the shared decoded broadcast —
    /// launching clones `Arc`s, never the model.
    pub fn launch(
        &self,
        client: usize,
        weights: &std::sync::Arc<[f32]>,
        epochs: usize,
        selection_round: u64,
        use_prox: bool,
    ) -> ClientPhase {
        ClientPhase::Computing(Inflight {
            handle: crate::local::TrainHandle::launch(crate::local::TrainJob {
                task: Arc::clone(&self.task),
                client,
                global: Arc::clone(weights),
                cfg: Arc::clone(&self.cfg),
                epochs,
                selection_round,
                use_prox,
            }),
        })
    }
}

/// One in-flight client computation, launched at dispatch time.
pub(crate) struct Inflight {
    /// The training computation for this dispatch. The downloaded weights,
    /// selection round, epoch count and prox flag were all captured into
    /// the job when it launched — no simulator state can leak in later,
    /// which is what makes speculative execution trace-invisible.
    pub handle: crate::local::TrainHandle,
}

/// Where one client currently is in its round trip.
///
/// A client dispatch now takes two simulator events: the *compute*
/// completion (download + local training done — the strategy joins the
/// training result and puts the encoded update on the wire) and the
/// *upload arrival* (the uplink transfer finished — the update is
/// applied). Under infinite bandwidth the second event fires at the same
/// virtual instant; with a finite link it charges the actual encoded
/// payload of the *trained* weights, which differs from the downlink
/// payload once a lossy codec is in play.
pub(crate) enum ClientPhase {
    /// Dispatched; local training completes with the compute event.
    Computing(Inflight),
    /// Trained; the encoded update is in flight to the server.
    Uploading {
        /// Post-roundtrip uploaded weights.
        weights: Vec<f32>,
        /// The client's sample count (aggregation weight).
        n_samples: usize,
    },
}

/// What a completion event meant for the client's round trip.
pub(crate) enum PhaseEvent {
    /// Compute finished; the upload is now in flight — nothing to account
    /// yet (the dispatch is still outstanding).
    UploadScheduled,
    /// The client's trained update landed at the server.
    Landed {
        /// Post-roundtrip uploaded weights.
        weights: Vec<f32>,
        /// The client's sample count (aggregation weight).
        n_samples: usize,
    },
    /// The dispatch was lost to a dropout (mid-compute or mid-upload).
    Lost,
    /// No in-flight entry for this client (stale event).
    Unknown,
}

/// Advances one client's compute→upload state machine for a completion.
///
/// On a compute completion this *joins* the training job launched at
/// dispatch (running it now if the inline mode is active or no worker got
/// to it), puts the encoded update on the wire (charging the *actual*
/// uplink payload) and schedules the upload arrival; on the arrival it
/// hands the update back to the strategy. A dropout mid-compute discards
/// the speculative result unjoined. Shared by all five strategies so the
/// phase protocol cannot diverge.
pub(crate) fn advance_phase(
    core: &ServerCore,
    inflight: &mut std::collections::HashMap<usize, ClientPhase>,
    ctx: &mut SimCtx,
    c: &fedat_sim::runtime::Completion,
) -> PhaseEvent {
    match inflight.remove(&c.client) {
        Some(ClientPhase::Computing(info)) if !c.dropped => {
            let update = info.handle.join();
            let (w_up, up_bytes) = core.transport.upload(ctx, c.client, &update.weights);
            inflight.insert(
                c.client,
                ClientPhase::Uploading {
                    weights: w_up,
                    n_samples: update.n_samples,
                },
            );
            ctx.schedule_transfer(c.client, c.tag, up_bytes);
            PhaseEvent::UploadScheduled
        }
        Some(ClientPhase::Uploading { weights, n_samples }) if !c.dropped => {
            PhaseEvent::Landed { weights, n_samples }
        }
        Some(ClientPhase::Computing(info)) => {
            // Dropped mid-compute: the dispatch-time job is wasted work.
            info.handle.discard();
            PhaseEvent::Lost
        }
        Some(ClientPhase::Uploading { .. }) => PhaseEvent::Lost,
        None => PhaseEvent::Unknown,
    }
}

/// Builds the strategy object for a config.
pub fn build_strategy(
    task: Arc<FedTask>,
    cfg: &ExperimentConfig,
    fleet: &fedat_sim::Fleet,
) -> Box<dyn Strategy> {
    match cfg.strategy {
        StrategyKind::FedAvg => Box::new(sync::SyncStrategy::fedavg(task, cfg)),
        StrategyKind::FedProx => Box::new(sync::SyncStrategy::fedprox(task, cfg, fleet)),
        StrategyKind::TiFL => Box::new(tifl::TiflStrategy::new(task, cfg, fleet)),
        StrategyKind::FedAsync => Box::new(fedasync::FedAsyncStrategy::new(task, cfg)),
        StrategyKind::AsoFed => Box::new(asofed::AsoFedStrategy::new(task, cfg)),
        StrategyKind::FedAt => Box::new(fedat::FedAtStrategy::new(task, cfg, fleet)),
    }
}
