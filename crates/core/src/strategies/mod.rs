//! The six federated-learning methods, all driven by the same
//! discrete-event runtime.
//!
//! | Strategy | Module | Communication pattern |
//! |---|---|---|
//! | FedAvg | [`sync`] | synchronous rounds, random subset |
//! | FedProx | [`sync`] | synchronous + prox term + device-dependent epochs |
//! | TiFL | [`tifl`] | synchronous, adaptive tier selection |
//! | FedAsync | [`fedasync`] | fully async, staleness-weighted mixing |
//! | ASO-Fed | [`asofed`] | fully async, per-client server copies |
//! | FedAT | [`fedat`] | sync intra-tier + async cross-tier (the paper) |

pub mod asofed;
pub mod fedasync;
pub mod fedat;
pub mod sync;
pub mod tifl;

use crate::config::{ExperimentConfig, StrategyKind};
use crate::eval::Evaluator;
use crate::exec::{ExecCtx, ExecMode};
use crate::transport::Transport;
use fedat_data::suite::FedTask;
use fedat_sim::fault::{FaultEvent, FaultKind};
use fedat_sim::runtime::{Completion, EventHandler, SimCtx};
use fedat_sim::trace::{Trace, TracePoint};
use std::collections::BTreeMap;
use std::sync::Arc;

/// High bit of a timer tag: marks revival wake-ups (a parked tier or a
/// flapped-out async client coming back). Every other timer tag is a
/// dispatch generation carrying that dispatch's deadline.
pub(crate) const REVIVE_BIT: u64 = 1 << 63;

/// Counters summarizing one run's server-side fault-tolerance activity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Dispatches cancelled at their deadline.
    pub timeouts: u64,
    /// Timed-out slots re-dispatched to a replacement client.
    pub retries: u64,
    /// Rounds concluded below quorum (degraded or skipped with staleness
    /// accounting).
    pub quorum_rounds: u64,
    /// Dynamic re-tier adoptions.
    pub retier_events: u64,
    /// Revival timers that restarted a parked tier or client.
    pub revivals: u64,
    /// Uplink payloads mangled by the corrupted-update scenario (ground
    /// truth — the server cannot observe this directly).
    pub corrupt: u64,
    /// Updates discarded by the guard (non-finite, or over the norm screen
    /// with clipping disabled).
    pub rejects: u64,
    /// Updates clipped down to the norm-screen threshold.
    pub clips: u64,
    /// Async updates discarded for exceeding the staleness bound.
    pub stale: u64,
    /// Clients quarantined for repeat offenses.
    pub quarantines: u64,
}

/// A runnable FL method: the event handler plus result accessors.
pub trait Strategy: EventHandler + Send {
    /// The accuracy/loss/bytes trace recorded so far.
    fn trace(&self) -> &Trace;

    /// Consumes the recorded trace.
    fn take_trace(&mut self) -> Trace;

    /// Current global model weights.
    fn global_weights(&self) -> &[f32];

    /// Number of global updates performed (`t` in Algorithm 2).
    fn global_updates(&self) -> u64;

    /// Per-client accuracy variances sampled along the run (the paper's
    /// Table 1 `Norm. Var.` metric averages the variance of per-client test
    /// accuracy over training checkpoints).
    fn variance_checkpoints(&self) -> &[f32];

    /// Fault-tolerance activity counters (timeouts, retries, quorum
    /// degradations, re-tiers, revivals).
    fn fault_counters(&self) -> FaultCounters;

    /// Joins the in-flight pipelined evaluation, if any, so the trace and
    /// variance checkpoints are complete. Must be called after the event
    /// loop exits and before [`Strategy::take_trace`] /
    /// [`Strategy::variance_checkpoints`]; a no-op under
    /// [`crate::exec::ExecMode::Inline`] or when nothing is pending.
    fn flush_evals(&mut self);

    /// Per-tier update counts for tiered strategies (`None` otherwise) —
    /// lets callers assert that no tier stalled.
    fn tier_updates(&self) -> Option<Vec<u64>> {
        None
    }
}

/// Server-side state shared by every strategy implementation.
pub(crate) struct ServerCore {
    pub task: Arc<FedTask>,
    /// Shared so dispatch-time training jobs can carry the config to any
    /// pool worker without cloning it per dispatch.
    pub cfg: Arc<ExperimentConfig>,
    pub transport: Transport,
    /// This run's execution context (exec mode + kernel toggles), resolved
    /// once at run start — never read back from the process globals, so
    /// concurrent runs with different contexts cannot cross-talk.
    pub exec: ExecCtx,
    /// `None` exactly while a pipelined evaluation is in flight on the
    /// kernel pool (the job owns the evaluator and hands it back at the
    /// join).
    evaluator: Option<Evaluator>,
    /// The at-most-one in-flight pipelined evaluation (Speculative mode
    /// only; see [`ServerCore::eval_now`]).
    pending_eval: Option<PendingEval>,
    /// Current global weights `w^t`.
    pub global: Vec<f32>,
    /// Global update counter `t`.
    pub updates: u64,
    /// Global update budget (strategy-scaled).
    pub budget: u64,
    /// Evaluate every this many global updates (strategy-scaled).
    pub eval_stride: u64,
    pub trace: Trace,
    /// Per-client accuracy variance, sampled every
    /// [`VARIANCE_EVAL_STRIDE`]-th evaluation.
    pub variance_checkpoints: Vec<f32>,
    /// Fault-tolerance activity for the whole run.
    pub faults: FaultCounters,
    /// Guard-layer state (norm EWMA, offense counts, quarantine clocks).
    guard: GuardState,
    evals_done: u64,
}

/// Mutable guard-layer state. All of it is a pure function of the landed
/// updates' values and order in virtual time, so it preserves the
/// bit-identity contract across ExecMode × SimdKernel × thread counts.
#[derive(Default)]
struct GuardState {
    /// EWMA of accepted (post-clip) update L2 norms; `None` until the
    /// first accepted update initializes it.
    ewma_norm: Option<f64>,
    /// Per-client rejected-update counts since the last quarantine
    /// (indexed by client, grown on demand).
    offenses: Vec<u32>,
    /// Per-client quarantine release times (0 = never quarantined).
    quarantined_until: Vec<f64>,
}

impl GuardState {
    fn ensure(&mut self, client: usize) {
        if self.offenses.len() <= client {
            self.offenses.resize(client + 1, 0);
            self.quarantined_until.resize(client + 1, 0.0);
        }
    }
}

/// One round-boundary evaluation running as a kernel-pool job while the
/// event loop trains the next round (PR 4's follow-up: eval used to
/// serialize the event-loop thread). Everything a trace point needs besides
/// accuracy/loss was snapshotted at the cadence point, so the joined point
/// is bit-identical to the one the synchronous path would have pushed.
struct PendingEval {
    handle: fedat_tensor::pool::JobHandle<(Evaluator, fedat_nn::model::EvalResult, Option<f32>)>,
    time: f64,
    round: u64,
    up_bytes: u64,
    down_bytes: u64,
}

/// Per-client variance is sampled every this many global evaluations (a
/// full per-client sweep costs about one extra global evaluation).
pub const VARIANCE_EVAL_STRIDE: u64 = 5;

/// Extra update-budget multiplier for the fully asynchronous methods
/// (FedAsync, ASO-Fed): their single-client updates land continuously, so
/// within any wall-clock horizon they perform far more global updates than
/// a synchronous method performs rounds. The budget is scaled up so the
/// shared `max_time` horizon — the paper's timeline axis — is the binding
/// stopping rule.
pub const ASYNC_FILL: u64 = 20;

impl ServerCore {
    pub fn new(
        task: Arc<FedTask>,
        cfg: &ExperimentConfig,
        exec: ExecCtx,
        budget: u64,
        eval_stride: u64,
    ) -> Self {
        let codec = crate::config::resolve_codec(cfg.codec, cfg.strategy);
        let transport = Transport::new(codec);
        let evaluator = Evaluator::new(&task, cfg.eval_subset, cfg.seed);
        let global = task.model.build(cfg.seed).weights();
        let trace = Trace::new(format!("{} @ {}", cfg.strategy.name(), task.name));
        ServerCore {
            task,
            cfg: Arc::new(cfg.clone()),
            transport,
            exec,
            evaluator: Some(evaluator),
            pending_eval: None,
            global,
            updates: 0,
            budget,
            eval_stride: eval_stride.max(1),
            trace,
            variance_checkpoints: Vec::new(),
            faults: FaultCounters::default(),
            guard: GuardState::default(),
            evals_done: 0,
        }
    }

    /// Records one global update; evaluates on the configured cadence.
    pub fn bump(&mut self, ctx: &mut SimCtx) {
        self.updates += 1;
        // With a value-screening guard active every accepted update is
        // finite, so a non-finite global model means the guard leaked — a
        // bug, not a scenario outcome. (Undefended corrupt runs and
        // quarantine-only configs legitimately go non-finite; no assert.)
        if self.cfg.guard.finite_check || self.cfg.guard.norm_screen.is_some() {
            debug_assert!(
                self.global.iter().all(|w| w.is_finite()),
                "guard leaked a non-finite update into the global model at t={}",
                self.updates
            );
        }
        if self.updates.is_multiple_of(self.eval_stride) {
            self.eval_now(ctx);
        }
    }

    /// Evaluates the current global model and appends a trace point;
    /// periodically also sweeps per-client accuracies for the variance
    /// metric. Both run on the kernel pool (streaming mini-batches and
    /// sharded client bands) and are bit-identical to a serial sweep for
    /// any thread count.
    ///
    /// Under [`ExecMode::Speculative`] the evaluation is *pipelined*: the
    /// trace-point context (virtual time, update count, traffic meters) is
    /// snapshotted here, the sweep itself is submitted as a kernel-pool job,
    /// and the event loop immediately returns to dispatching the next
    /// round — eval overlaps training instead of serializing the event-loop
    /// thread. At most one evaluation is in flight; the next cadence point
    /// (or the end-of-run [`ServerCore::flush_evals`]) joins it and appends
    /// its trace point *before* anything newer, so trace order is the
    /// submission order and every value in the point was fixed at submit
    /// time. The weights are cloned into the job, the variance-sweep
    /// decision is made here from `evals_done`, and the evaluator round-trips
    /// through the job — nothing about the result depends on when a worker
    /// gets to it, which is what keeps the pipelined trace bit-identical to
    /// the [`ExecMode::Inline`] synchronous baseline.
    pub fn eval_now(&mut self, ctx: &mut SimCtx) {
        let time = ctx.now();
        let up_bytes = ctx.traffic.uplink_bytes();
        let down_bytes = ctx.traffic.downlink_bytes();
        self.evals_done += 1;
        let sweep_variance = self.evals_done.is_multiple_of(VARIANCE_EVAL_STRIDE);
        if self.exec.mode == ExecMode::Speculative {
            // Join (and record) the previous round's eval first: trace
            // points must land in submission order.
            self.join_pending_eval();
            let mut evaluator = self
                .evaluator
                .take()
                .expect("evaluator is with a joined job");
            let weights = self.global.clone();
            let sweep = sweep_variance.then(|| (Arc::clone(&self.task), self.cfg.seed));
            let handle = fedat_tensor::pool::submit(move || {
                let r = evaluator.evaluate(&weights);
                let variance = sweep.map(|(task, seed)| {
                    let accs = crate::eval::per_client_accuracy(&task, &weights, seed);
                    crate::eval::accuracy_variance(&accs)
                });
                (evaluator, r, variance)
            });
            self.pending_eval = Some(PendingEval {
                handle,
                time,
                round: self.updates,
                up_bytes,
                down_bytes,
            });
        } else {
            let evaluator = self
                .evaluator
                .as_mut()
                .expect("no eval in flight under Inline");
            let r = evaluator.evaluate(&self.global);
            self.trace.push(TracePoint {
                time,
                round: self.updates,
                accuracy: r.accuracy,
                loss: r.loss,
                up_bytes,
                down_bytes,
            });
            if sweep_variance {
                let accs =
                    crate::eval::per_client_accuracy(&self.task, &self.global, self.cfg.seed);
                self.variance_checkpoints
                    .push(crate::eval::accuracy_variance(&accs));
            }
        }
    }

    /// Joins the in-flight pipelined evaluation (if any), appending its
    /// trace point and variance checkpoint and taking the evaluator back.
    fn join_pending_eval(&mut self) {
        let Some(pending) = self.pending_eval.take() else {
            return;
        };
        let (evaluator, r, variance) = pending.handle.join();
        self.evaluator = Some(evaluator);
        self.trace.push(TracePoint {
            time: pending.time,
            round: pending.round,
            accuracy: r.accuracy,
            loss: r.loss,
            up_bytes: pending.up_bytes,
            down_bytes: pending.down_bytes,
        });
        if let Some(v) = variance {
            self.variance_checkpoints.push(v);
        }
    }

    /// End-of-run barrier for the eval pipeline: joins the straggler so the
    /// trace and variance checkpoints are complete. Strategies delegate
    /// their [`Strategy::flush_evals`] here.
    pub fn flush_evals(&mut self) {
        self.join_pending_eval();
    }

    /// Whether the update budget is exhausted.
    pub fn budget_exhausted(&self) -> bool {
        self.updates >= self.budget
    }

    /// Samples `k` distinct clients from `pool` (all of `pool` if smaller).
    pub fn sample_clients(&self, ctx: &mut SimCtx, pool: &[usize], k: usize) -> Vec<usize> {
        if pool.len() <= k {
            return pool.to_vec();
        }
        fedat_tensor::rng::sample_without_replacement(ctx.rng, pool.len(), k)
            .into_iter()
            .map(|i| pool[i])
            .collect()
    }

    /// Starts one client's local training *at dispatch time* and returns
    /// the in-flight phase entry holding its handle. Under the speculative
    /// execution mode (see [`crate::exec`]) the job begins on the kernel
    /// pool immediately; inline mode defers it to the join inside
    /// [`advance_phase`]. `weights` is the shared decoded broadcast —
    /// launching clones `Arc`s, never the model.
    pub fn launch(
        &self,
        client: usize,
        weights: &std::sync::Arc<[f32]>,
        epochs: usize,
        selection_round: u64,
        use_prox: bool,
    ) -> ClientPhase {
        ClientPhase::Computing(Inflight {
            handle: crate::local::TrainHandle::launch(
                crate::local::TrainJob {
                    task: Arc::clone(&self.task),
                    client,
                    global: Arc::clone(weights),
                    cfg: Arc::clone(&self.cfg),
                    epochs,
                    selection_round,
                    use_prox,
                },
                self.exec.mode,
            ),
            selection_round,
            reference: Arc::clone(weights),
        })
    }

    /// Screens one landed update against the guard policy, mutating it in
    /// place when clipping. Returns `true` to accept, `false` to discard.
    ///
    /// Runs at the Uploading→Landed seam, in virtual-time event order, on
    /// values that are already bit-identical across execution modes — so
    /// every decision (and the EWMA it feeds) is deterministic.
    pub fn screen_update(
        &mut self,
        ctx: &mut SimCtx,
        client: usize,
        group: u64,
        weights: &mut [f32],
    ) -> bool {
        if !self.cfg.guard.screens_updates() {
            return true;
        }
        if self.cfg.guard.finite_check && !weights.iter().all(|w| w.is_finite()) {
            self.reject_update(ctx, client, group, 0);
            return false;
        }
        if let Some(screen) = self.cfg.guard.norm_screen {
            // The screen measures the L2 norm of the update's *displacement*
            // from the current global model, not of the raw weights: client
            // uploads are full models, and a scaled-up model has a huge
            // displacement but the same direction, so bounding the
            // displacement bounds the damage additively. (Screening raw
            // norms lets a magnitude attack inflate the aggregate — and the
            // EWMA with it — a little every round, compounding into a
            // frozen, blown-up model.) Sequential f64 fold: bit-identical
            // for every kernel/thread count by construction.
            let norm = weights
                .iter()
                .zip(self.global.iter())
                .map(|(w, g)| {
                    let d = (*w - *g) as f64;
                    d * d
                })
                .sum::<f64>()
                .sqrt();
            if !norm.is_finite() {
                // Finite coordinates can still overflow the squared norm;
                // nothing sane survives that magnitude.
                self.reject_update(ctx, client, group, 1);
                return false;
            }
            match self.guard.ewma_norm {
                None => {
                    // First accepted update seeds the EWMA. Guard against a
                    // zero seed (a no-op first update would make every later
                    // norm infinite-relative).
                    self.guard.ewma_norm = Some(norm.max(1e-12));
                }
                Some(ewma) => {
                    let limit = screen.threshold * ewma;
                    let accepted_norm = if norm <= limit {
                        norm
                    } else if screen.clip {
                        // Shrink the displacement to the limit; the update's
                        // direction survives, its magnitude is bounded.
                        let s = (limit / norm) as f32;
                        for (w, g) in weights.iter_mut().zip(self.global.iter()) {
                            *w = *g + (*w - *g) * s;
                        }
                        self.faults.clips += 1;
                        let now = ctx.now();
                        ctx.faults.record(FaultEvent {
                            time: now,
                            kind: FaultKind::Clip,
                            client: Some(client),
                            tier: Some(group as usize),
                            detail: norm as u64,
                        });
                        limit
                    } else {
                        self.reject_update(ctx, client, group, 1);
                        return false;
                    };
                    self.guard.ewma_norm =
                        Some(screen.alpha * accepted_norm + (1.0 - screen.alpha) * ewma);
                }
            }
        }
        true
    }

    /// Records one rejected update and advances the offender's quarantine
    /// clock when the policy asks for one.
    fn reject_update(&mut self, ctx: &mut SimCtx, client: usize, group: u64, detail: u64) {
        self.faults.rejects += 1;
        let now = ctx.now();
        ctx.faults.record(FaultEvent {
            time: now,
            kind: FaultKind::Reject,
            client: Some(client),
            tier: Some(group as usize),
            detail,
        });
        if let Some(after) = self.cfg.guard.quarantine_after {
            self.guard.ensure(client);
            self.guard.offenses[client] += 1;
            if self.guard.offenses[client] >= after {
                self.guard.offenses[client] = 0;
                self.guard.quarantined_until[client] = now + self.cfg.guard.quarantine_secs;
                self.faults.quarantines += 1;
                ctx.faults.record(FaultEvent {
                    time: now,
                    kind: FaultKind::Quarantine,
                    client: Some(client),
                    tier: Some(group as usize),
                    detail: self.cfg.guard.quarantine_secs as u64,
                });
            }
        }
    }

    /// Whether `client` is currently serving a quarantine.
    pub fn is_quarantined(&self, client: usize, now: f64) -> bool {
        self.guard
            .quarantined_until
            .get(client)
            .is_some_and(|&until| now < until)
    }

    /// When `client`'s quarantine lifts (0.0 if never quarantined).
    pub fn guard_release_time(&self, client: usize) -> f64 {
        self.guard
            .quarantined_until
            .get(client)
            .copied()
            .unwrap_or(0.0)
    }

    /// Records one async update discarded for exceeding the staleness
    /// bound. Staleness is a timing property, not a value property, so it
    /// does not count toward quarantine offenses.
    pub fn note_stale(&mut self, ctx: &mut SimCtx, client: usize, group: u64, staleness: u64) {
        self.faults.stale += 1;
        let now = ctx.now();
        ctx.faults.record(FaultEvent {
            time: now,
            kind: FaultKind::Stale,
            client: Some(client),
            tier: Some(group as usize),
            detail: staleness,
        });
    }
}

/// Earliest virtual time at which any of `clients` is both alive and out of
/// quarantine — the park-until time for a pool with nothing dispatchable
/// right now. `None` when no client ever returns (all gone for good).
pub(crate) fn earliest_return(
    core: &ServerCore,
    ctx: &SimCtx,
    clients: impl Iterator<Item = usize>,
    now: f64,
) -> Option<f64> {
    clients
        .filter_map(|c| {
            let up = ctx.fleet.next_up_time(c, now)?;
            Some(up.max(core.guard_release_time(c)))
        })
        .min_by(f64::total_cmp)
}

/// One in-flight client computation, launched at dispatch time.
pub(crate) struct Inflight {
    /// The training computation for this dispatch. The downloaded weights,
    /// selection round, epoch count and prox flag were all captured into
    /// the job when it launched — no simulator state can leak in later,
    /// which is what makes speculative execution trace-invisible.
    pub handle: crate::local::TrainHandle,
    /// This dispatch's selection round (the client's dispatch ordinal) —
    /// the corruption scenario keys its per-event draw on it so the decision
    /// is a pure function of the dispatch, independent of event order.
    pub selection_round: u64,
    /// The decoded broadcast this dispatch trained from — the shared
    /// reference model for delta-family uplink codecs. Both ends hold it
    /// (the client received it on the downlink; the server keeps this `Arc`
    /// in its standing in-flight table), so encoding the uplink against it
    /// costs no extra traffic and decoding is trivially consistent.
    pub reference: std::sync::Arc<[f32]>,
}

/// Where one client currently is in its round trip.
///
/// A client dispatch now takes two simulator events: the *compute*
/// completion (download + local training done — the strategy joins the
/// training result and puts the encoded update on the wire) and the
/// *upload arrival* (the uplink transfer finished — the update is
/// applied). Under infinite bandwidth the second event fires at the same
/// virtual instant; with a finite link it charges the actual encoded
/// payload of the *trained* weights, which differs from the downlink
/// payload once a lossy codec is in play.
pub(crate) enum ClientPhase {
    /// Dispatched; local training completes with the compute event.
    Computing(Inflight),
    /// Trained; the encoded update is in flight to the server.
    Uploading {
        /// Post-roundtrip uploaded weights.
        weights: Vec<f32>,
        /// The client's sample count (aggregation weight).
        n_samples: usize,
    },
}

/// What a completion event meant for the client's round trip.
pub(crate) enum PhaseEvent {
    /// Compute finished; the upload is now in flight — nothing to account
    /// yet (the dispatch is still outstanding).
    UploadScheduled,
    /// The client's trained update landed at the server.
    Landed {
        /// The dispatch group (tier index for tiered strategies).
        group: u64,
        /// Observed dispatch→arrival latency (feeds the re-tiering EWMA).
        latency: f64,
        /// Post-roundtrip uploaded weights.
        weights: Vec<f32>,
        /// The client's sample count (aggregation weight).
        n_samples: usize,
    },
    /// The dispatch was lost to a dropout (mid-compute or mid-upload).
    Lost {
        /// The dispatch group (tier index for tiered strategies).
        group: u64,
    },
    /// The update arrived but the guard discarded it (non-finite or over
    /// the norm screen). For round/slot accounting this is a loss; the
    /// reject/quarantine bookkeeping already happened inside the screen.
    Rejected {
        /// The dispatch group (tier index for tiered strategies).
        group: u64,
    },
    /// Stale event: the dispatch was already resolved (e.g. cancelled by a
    /// deadline) or superseded by a newer generation.
    Unknown,
}

/// A dispatch cancelled by its deadline timer.
pub(crate) struct TimedOut {
    pub client: usize,
    /// The dispatch group (tier index for tiered strategies).
    pub group: u64,
    /// Retries already spent on this round slot.
    pub retries: u32,
}

/// One tracked dispatch: the phase state machine plus the bookkeeping the
/// fault layer needs (generation, group, retry count, dispatch time).
struct Dispatch {
    gen: u64,
    group: u64,
    retries: u32,
    dispatched_at: f64,
    phase: ClientPhase,
}

/// The server's table of in-flight dispatches, keyed by client and by a
/// monotonically increasing *generation*. The generation is the dispatch's
/// event tag, so a completion or deadline timer arriving after the dispatch
/// was cancelled (or after the client was re-dispatched under a new
/// generation) resolves to nothing instead of corrupting round accounting.
///
/// Both maps are `BTreeMap`, not `HashMap`: every lookup here is keyed, but
/// a future `.iter()` over a RandomState-seeded map would silently order
/// server actions nondeterministically — the exact failure mode `fedat-lint`
/// rule R1 guards against. The ordered map makes any future iteration
/// deterministic by construction (and the keyed-op cost is identical at
/// in-flight sizes of tens of entries).
pub(crate) struct InflightTable {
    by_client: BTreeMap<usize, Dispatch>,
    client_of: BTreeMap<u64, usize>,
    next_gen: u64,
}

impl InflightTable {
    pub fn new() -> Self {
        InflightTable {
            by_client: BTreeMap::new(),
            client_of: BTreeMap::new(),
            // Generations start at 1 and stay below REVIVE_BIT for any
            // conceivable run length, so tag namespaces never collide.
            next_gen: 1,
        }
    }

    /// Whether `client` has a dispatch in flight.
    pub fn contains(&self, client: usize) -> bool {
        self.by_client.contains_key(&client)
    }

    /// Registers a new dispatch and returns its generation (the tag to
    /// dispatch under and the tag its deadline timer carries).
    pub fn begin(
        &mut self,
        client: usize,
        group: u64,
        retries: u32,
        now: f64,
        phase: ClientPhase,
    ) -> u64 {
        let gen = self.next_gen;
        self.next_gen += 1;
        let prev = self.by_client.insert(
            client,
            Dispatch {
                gen,
                group,
                retries,
                dispatched_at: now,
                phase,
            },
        );
        debug_assert!(prev.is_none(), "client {client} already in flight");
        self.client_of.insert(gen, client);
        gen
    }

    /// Advances one client's compute→upload state machine for a completion.
    ///
    /// On a compute completion this *joins* the training job launched at
    /// dispatch (running it now if the inline mode is active or no worker
    /// got to it), puts the encoded update on the wire (charging the
    /// *actual* uplink payload) and schedules the upload arrival; on the
    /// arrival it hands the update back to the strategy, after the
    /// corruption scenario (if active) mangled the payload and the guard
    /// layer (if active) screened it. A dropout mid-compute discards the
    /// speculative result unjoined. A completion whose tag doesn't match
    /// the client's current generation belongs to a cancelled dispatch and
    /// is reported [`PhaseEvent::Unknown`]. Shared by all five strategies
    /// so the phase protocol cannot diverge.
    pub fn advance(
        &mut self,
        core: &mut ServerCore,
        ctx: &mut SimCtx,
        c: &Completion,
    ) -> PhaseEvent {
        match self.by_client.get(&c.client) {
            Some(d) if d.gen == c.tag => {}
            _ => return PhaseEvent::Unknown,
        }
        let mut d = self.by_client.remove(&c.client).expect("checked above");
        match d.phase {
            ClientPhase::Computing(info) if !c.dropped => {
                let update = info.handle.join();
                // Uplink bytes are charged on the *honest* encoded payload
                // first: corruption mangles the values in flight, it does
                // not change what the client transmitted or the traffic
                // meter's view of it.
                let (mut w_up, up_bytes) = core.transport.upload_with_ref(
                    ctx,
                    c.client,
                    &update.weights,
                    Some(&info.reference),
                );
                if let Some(mode) =
                    ctx.fleet
                        .corrupt_update(c.client, info.selection_round, &mut w_up)
                {
                    core.faults.corrupt += 1;
                    let now = ctx.now();
                    ctx.faults.record(FaultEvent {
                        time: now,
                        kind: FaultKind::Corrupt,
                        client: Some(c.client),
                        tier: Some(d.group as usize),
                        detail: mode,
                    });
                }
                d.phase = ClientPhase::Uploading {
                    weights: w_up,
                    n_samples: update.n_samples,
                };
                self.by_client.insert(c.client, d);
                ctx.schedule_transfer(c.client, c.tag, up_bytes);
                PhaseEvent::UploadScheduled
            }
            ClientPhase::Uploading {
                mut weights,
                n_samples,
            } if !c.dropped => {
                self.client_of.remove(&d.gen);
                if !core.screen_update(ctx, c.client, d.group, &mut weights) {
                    return PhaseEvent::Rejected { group: d.group };
                }
                PhaseEvent::Landed {
                    group: d.group,
                    latency: ctx.now() - d.dispatched_at,
                    weights,
                    n_samples,
                }
            }
            ClientPhase::Computing(info) => {
                // Dropped mid-compute: the dispatch-time job is wasted work.
                info.handle.discard();
                self.client_of.remove(&d.gen);
                PhaseEvent::Lost { group: d.group }
            }
            ClientPhase::Uploading { .. } => {
                self.client_of.remove(&d.gen);
                PhaseEvent::Lost { group: d.group }
            }
        }
    }

    /// Cancels the dispatch whose deadline timer (tag = generation) fired.
    /// Returns `None` when the timer is stale — the dispatch already landed
    /// or was lost. A cancelled mid-compute job is discarded unjoined; its
    /// eventual completion event resolves to [`PhaseEvent::Unknown`].
    pub fn timeout(&mut self, gen: u64) -> Option<TimedOut> {
        let client = self.client_of.remove(&gen)?;
        let d = self.by_client.remove(&client)?;
        debug_assert_eq!(d.gen, gen);
        if let ClientPhase::Computing(info) = d.phase {
            info.handle.discard();
        }
        Some(TimedOut {
            client,
            group: d.group,
            retries: d.retries,
        })
    }
}

/// Launches, registers and dispatches one tracked client round trip; when
/// the fault policy enables deadlines, also arms the deadline timer at
/// `nominal × multiplier × backoff^retries` from now.
#[allow(clippy::too_many_arguments)]
pub(crate) fn dispatch_tracked(
    core: &ServerCore,
    table: &mut InflightTable,
    ctx: &mut SimCtx,
    client: usize,
    group: u64,
    retries: u32,
    nominal: f64,
    weights: &Arc<[f32]>,
    epochs: usize,
    use_prox: bool,
    down_bytes: usize,
) {
    let selection_round = ctx.dispatches_of(client);
    let phase = core.launch(client, weights, epochs, selection_round, use_prox);
    let gen = table.begin(client, group, retries, ctx.now(), phase);
    ctx.dispatch_with_transfer(client, gen, epochs, down_bytes);
    if let Some(mult) = core.cfg.fault.deadline_multiplier {
        let deadline = nominal * mult * core.cfg.fault.backoff.powi(retries as i32);
        ctx.schedule_timer(ctx.now() + deadline, gen);
    }
}

/// Handles a cancelled dispatch: records the timeout, then — if retries
/// remain and a replacement exists in `pool` (alive, idle, not the victim)
/// — re-dispatches the round slot to it with the *current* global model and
/// a backed-off deadline. Returns `true` when the slot was re-dispatched,
/// `false` when the caller must account it as lost.
#[allow(clippy::too_many_arguments)]
pub(crate) fn retry_slot(
    core: &mut ServerCore,
    table: &mut InflightTable,
    ctx: &mut SimCtx,
    timed_out: &TimedOut,
    pool: &[usize],
    nominal: f64,
    use_prox: bool,
    epochs_for: impl Fn(usize) -> usize,
) -> bool {
    let now = ctx.now();
    core.faults.timeouts += 1;
    ctx.faults.record(FaultEvent {
        time: now,
        kind: FaultKind::Timeout,
        client: Some(timed_out.client),
        tier: Some(timed_out.group as usize),
        detail: timed_out.retries as u64,
    });
    if timed_out.retries >= core.cfg.fault.max_retries {
        return false;
    }
    let candidates: Vec<usize> = pool
        .iter()
        .copied()
        .filter(|&c| c != timed_out.client && ctx.fleet.is_alive(c, now) && !table.contains(c))
        .collect();
    let Some(&replacement) = core.sample_clients(ctx, &candidates, 1).first() else {
        return false;
    };
    let retries = timed_out.retries + 1;
    let epochs = epochs_for(replacement);
    // The replacement gets the *current* global model — a fresh unicast
    // download, not the possibly stale round broadcast.
    let (weights, down_bytes) = core.transport.download(ctx, replacement, &core.global);
    dispatch_tracked(
        core,
        table,
        ctx,
        replacement,
        timed_out.group,
        retries,
        nominal,
        &weights,
        epochs,
        use_prox,
        down_bytes,
    );
    core.faults.retries += 1;
    ctx.faults.record(FaultEvent {
        time: now,
        kind: FaultKind::Retry,
        client: Some(replacement),
        tier: Some(timed_out.group as usize),
        detail: retries as u64,
    });
    true
}

/// Builds the strategy object for a config, running under `exec` — the
/// per-run execution context resolved once by the caller (see
/// [`crate::exec::ExecCtx::resolve`]).
pub fn build_strategy(
    task: Arc<FedTask>,
    cfg: &ExperimentConfig,
    fleet: &fedat_sim::Fleet,
    exec: ExecCtx,
) -> Box<dyn Strategy> {
    match cfg.strategy {
        StrategyKind::FedAvg => Box::new(sync::SyncStrategy::fedavg(task, cfg, exec)),
        StrategyKind::FedProx => Box::new(sync::SyncStrategy::fedprox(task, cfg, fleet, exec)),
        StrategyKind::TiFL => Box::new(tifl::TiflStrategy::new(task, cfg, fleet, exec)),
        StrategyKind::FedAsync => Box::new(fedasync::FedAsyncStrategy::new(task, cfg, exec)),
        StrategyKind::AsoFed => Box::new(asofed::AsoFedStrategy::new(task, cfg, exec)),
        StrategyKind::FedAt => Box::new(fedat::FedAtStrategy::new(task, cfg, fleet, exec)),
    }
}
