//! Synchronous round-based strategies: FedAvg (Algorithm 1) and FedProx.
//!
//! FedProx differs from FedAvg in two ways, both from Li et al. (2018):
//! the proximal term `λ/2‖w − w_global‖²` on the local objective and
//! device-capability-dependent local work (slower devices run fewer
//! epochs — the γ-inexactness knob).
//!
//! Both share the fault-tolerance layer: per-dispatch deadlines with
//! bounded re-dispatch (when the policy enables them) and parking the
//! round loop until the earliest client returns when the whole fleet is
//! transiently offline — permanent total loss still starves the run, as
//! before.

use crate::aggregate::aggregate_clients_into;
use crate::config::ExperimentConfig;
use crate::exec::ExecCtx;
use crate::strategies::{
    dispatch_tracked, earliest_return, retry_slot, FaultCounters, InflightTable, PhaseEvent,
    ServerCore, Strategy, REVIVE_BIT,
};
use fedat_data::suite::FedTask;
use fedat_sim::fault::{FaultEvent, FaultKind};
use fedat_sim::runtime::{Completion, EventHandler, SimCtx};
use fedat_sim::trace::Trace;
use std::sync::Arc;

/// FedAvg / FedProx server.
pub struct SyncStrategy {
    core: ServerCore,
    use_prox: bool,
    /// Per-client local epochs (`None` = uniform `cfg.local_epochs`).
    client_epochs: Option<Vec<usize>>,
    inflight: InflightTable,
    received: Vec<(Vec<f32>, usize)>,
    outstanding: usize,
    /// Clients selected for the current round (quorum denominator).
    picked: usize,
    /// Nominal round-trip latency of the current round's cohort — the
    /// deadline base.
    round_nominal: f64,
    /// Parked: the whole fleet is offline and a revival timer is pending.
    waiting: bool,
    /// Set when no clients remain alive *and none will return*; terminates
    /// the run.
    starved: bool,
}

impl SyncStrategy {
    /// Plain FedAvg: uniform epochs, no proximal term.
    pub fn fedavg(task: Arc<FedTask>, cfg: &ExperimentConfig, exec: ExecCtx) -> Self {
        let core = ServerCore::new(task, cfg, exec, cfg.rounds, cfg.eval_every);
        SyncStrategy {
            core,
            use_prox: false,
            client_epochs: None,
            inflight: InflightTable::new(),
            received: Vec::new(),
            outstanding: 0,
            picked: 0,
            round_nominal: 0.0,
            waiting: false,
            starved: false,
        }
    }

    /// FedProx: prox term on, slower delay-parts run fewer local epochs.
    pub fn fedprox(
        task: Arc<FedTask>,
        cfg: &ExperimentConfig,
        fleet: &fedat_sim::Fleet,
        exec: ExecCtx,
    ) -> Self {
        let epochs: Vec<usize> = (0..fleet.len())
            .map(|c| {
                // Part 0 (fastest) runs the full E epochs; each slower part
                // sheds one, bottoming out at 1.
                cfg.local_epochs.saturating_sub(fleet.part_of(c)).max(1)
            })
            .collect();
        let core = ServerCore::new(task, cfg, exec, cfg.rounds, cfg.eval_every);
        SyncStrategy {
            core,
            use_prox: true,
            client_epochs: Some(epochs),
            inflight: InflightTable::new(),
            received: Vec::new(),
            outstanding: 0,
            picked: 0,
            round_nominal: 0.0,
            waiting: false,
            starved: false,
        }
    }

    fn epochs_for(&self, client: usize) -> usize {
        match &self.client_epochs {
            Some(e) => e[client],
            None => self.core.cfg.local_epochs,
        }
    }

    fn start_round(&mut self, ctx: &mut SimCtx) {
        let now = ctx.now();
        let alive: Vec<usize> = ctx
            .alive_clients()
            .into_iter()
            .filter(|&c| !self.core.is_quarantined(c, now))
            .collect();
        if alive.is_empty() {
            // Park until the earliest client returns (alive *and* out of
            // quarantine); only a fleet that is permanently gone starves
            // the run.
            let revive =
                earliest_return(&self.core, ctx, 0..ctx.fleet.len(), now).unwrap_or(f64::INFINITY);
            if revive.is_finite() {
                self.core.faults.quorum_rounds += 1;
                ctx.faults.record(FaultEvent {
                    time: now,
                    kind: FaultKind::Quorum,
                    client: None,
                    tier: None,
                    detail: 0,
                });
                self.waiting = true;
                ctx.schedule_timer(revive, REVIVE_BIT);
            } else {
                self.starved = true;
            }
            return;
        }
        let picks = self
            .core
            .sample_clients(ctx, &alive, self.core.cfg.clients_per_round);
        self.outstanding = picks.len();
        self.picked = picks.len();
        self.received.clear();
        self.round_nominal = picks
            .iter()
            .map(|&c| ctx.fleet.expected_latency(c, self.epochs_for(c)))
            .fold(0.0_f64, f64::max)
            .max(1e-6);
        // One encode + decode for the whole cohort; clients share the
        // decoded model.
        let (weights, down_bytes) = self
            .core
            .transport
            .broadcast(ctx, &picks, &self.core.global);
        for c in picks {
            let epochs = self.epochs_for(c);
            // Speculative launch at dispatch; the prox flag travels with
            // the job (FedProx on, FedAvg off). Downlink transfer charged
            // at dispatch; the uplink is charged when the trained payload
            // is known.
            dispatch_tracked(
                &self.core,
                &mut self.inflight,
                ctx,
                c,
                0,
                0,
                self.round_nominal,
                &weights,
                epochs,
                self.use_prox,
                down_bytes,
            );
        }
    }

    fn conclude_if_done(&mut self, ctx: &mut SimCtx) {
        if self.outstanding != 0 {
            return;
        }
        if !self.received.is_empty() {
            let refs: Vec<(&[f32], usize)> = self
                .received
                .iter()
                .map(|(w, n)| (w.as_slice(), *n))
                .collect();
            aggregate_clients_into(self.core.cfg.guard.agg_rule, &refs, &mut self.core.global);
        }
        if (self.received.len() as f64) < self.core.cfg.fault.quorum * self.picked as f64 {
            self.core.faults.quorum_rounds += 1;
            ctx.faults.record(FaultEvent {
                time: ctx.now(),
                kind: FaultKind::Quorum,
                client: None,
                tier: None,
                detail: self.received.len() as u64,
            });
        }
        self.core.bump(ctx);
        if !self.finished() {
            self.start_round(ctx);
        }
    }
}

impl EventHandler for SyncStrategy {
    fn on_start(&mut self, ctx: &mut SimCtx) {
        self.core.eval_now(ctx); // round-0 baseline point
        self.start_round(ctx);
    }

    fn on_completion(&mut self, ctx: &mut SimCtx, c: Completion) {
        match self.inflight.advance(&mut self.core, ctx, &c) {
            PhaseEvent::UploadScheduled | PhaseEvent::Unknown => return,
            PhaseEvent::Landed {
                weights, n_samples, ..
            } => {
                self.outstanding -= 1;
                self.received.push((weights, n_samples));
            }
            PhaseEvent::Lost { .. } | PhaseEvent::Rejected { .. } => self.outstanding -= 1,
        }
        self.conclude_if_done(ctx);
    }

    fn on_timer(&mut self, ctx: &mut SimCtx, tag: u64) {
        if tag & REVIVE_BIT != 0 {
            if !self.waiting {
                return;
            }
            self.waiting = false;
            self.core.faults.revivals += 1;
            if !self.finished() {
                self.start_round(ctx);
            }
            return;
        }
        let Some(t) = self.inflight.timeout(tag) else {
            return;
        };
        let pool = ctx.alive_clients();
        let nominal = self.round_nominal;
        let use_prox = self.use_prox;
        let redispatched = {
            let client_epochs = &self.client_epochs;
            let default_epochs = self.core.cfg.local_epochs;
            retry_slot(
                &mut self.core,
                &mut self.inflight,
                ctx,
                &t,
                &pool,
                nominal,
                use_prox,
                |c| client_epochs.as_ref().map_or(default_epochs, |e| e[c]),
            )
        };
        if !redispatched {
            self.outstanding -= 1;
            self.conclude_if_done(ctx);
        }
    }

    fn finished(&self) -> bool {
        self.starved || self.core.budget_exhausted()
    }
}

impl Strategy for SyncStrategy {
    fn trace(&self) -> &Trace {
        &self.core.trace
    }

    fn take_trace(&mut self) -> Trace {
        std::mem::take(&mut self.core.trace)
    }

    fn global_weights(&self) -> &[f32] {
        &self.core.global
    }

    fn global_updates(&self) -> u64 {
        self.core.updates
    }

    fn variance_checkpoints(&self) -> &[f32] {
        &self.core.variance_checkpoints
    }

    fn fault_counters(&self) -> FaultCounters {
        self.core.faults
    }

    fn flush_evals(&mut self) {
        self.core.flush_evals();
    }
}
