//! Synchronous round-based strategies: FedAvg (Algorithm 1) and FedProx.
//!
//! FedProx differs from FedAvg in two ways, both from Li et al. (2018):
//! the proximal term `λ/2‖w − w_global‖²` on the local objective and
//! device-capability-dependent local work (slower devices run fewer
//! epochs — the γ-inexactness knob).

use crate::aggregate::weighted_client_average_into;
use crate::config::ExperimentConfig;
use crate::strategies::{advance_phase, ClientPhase, PhaseEvent, ServerCore, Strategy};
use fedat_data::suite::FedTask;
use fedat_sim::runtime::{Completion, EventHandler, SimCtx};
use fedat_sim::trace::Trace;
use std::collections::HashMap;
use std::sync::Arc;

/// FedAvg / FedProx server.
pub struct SyncStrategy {
    core: ServerCore,
    use_prox: bool,
    /// Per-client local epochs (`None` = uniform `cfg.local_epochs`).
    client_epochs: Option<Vec<usize>>,
    inflight: HashMap<usize, ClientPhase>,
    received: Vec<(Vec<f32>, usize)>,
    outstanding: usize,
    /// Set when no clients remain alive; terminates the run.
    starved: bool,
}

impl SyncStrategy {
    /// Plain FedAvg: uniform epochs, no proximal term.
    pub fn fedavg(task: Arc<FedTask>, cfg: &ExperimentConfig) -> Self {
        let core = ServerCore::new(task, cfg, cfg.rounds, cfg.eval_every);
        SyncStrategy {
            core,
            use_prox: false,
            client_epochs: None,
            inflight: HashMap::new(),
            received: Vec::new(),
            outstanding: 0,
            starved: false,
        }
    }

    /// FedProx: prox term on, slower delay-parts run fewer local epochs.
    pub fn fedprox(task: Arc<FedTask>, cfg: &ExperimentConfig, fleet: &fedat_sim::Fleet) -> Self {
        let epochs: Vec<usize> = (0..fleet.len())
            .map(|c| {
                // Part 0 (fastest) runs the full E epochs; each slower part
                // sheds one, bottoming out at 1.
                cfg.local_epochs.saturating_sub(fleet.part_of(c)).max(1)
            })
            .collect();
        let core = ServerCore::new(task, cfg, cfg.rounds, cfg.eval_every);
        SyncStrategy {
            core,
            use_prox: true,
            client_epochs: Some(epochs),
            inflight: HashMap::new(),
            received: Vec::new(),
            outstanding: 0,
            starved: false,
        }
    }

    fn epochs_for(&self, client: usize) -> usize {
        match &self.client_epochs {
            Some(e) => e[client],
            None => self.core.cfg.local_epochs,
        }
    }

    fn start_round(&mut self, ctx: &mut SimCtx) {
        let alive = ctx.alive_clients();
        if alive.is_empty() {
            self.starved = true;
            return;
        }
        let picks = self
            .core
            .sample_clients(ctx, &alive, self.core.cfg.clients_per_round);
        self.outstanding = picks.len();
        self.received.clear();
        // One encode + decode for the whole cohort; clients share the
        // decoded model.
        let (weights, down_bytes) = self
            .core
            .transport
            .broadcast(ctx, &picks, &self.core.global);
        for c in picks {
            let epochs = self.epochs_for(c);
            let selection_round = ctx.dispatches_of(c);
            // Speculative launch at dispatch; the prox flag travels with
            // the job (FedProx on, FedAvg off).
            self.inflight.insert(
                c,
                self.core
                    .launch(c, &weights, epochs, selection_round, self.use_prox),
            );
            // Downlink transfer charged at dispatch; the uplink is charged
            // when the trained payload is known.
            ctx.dispatch_with_transfer(c, 0, epochs, down_bytes);
        }
    }
}

impl EventHandler for SyncStrategy {
    fn on_start(&mut self, ctx: &mut SimCtx) {
        self.core.eval_now(ctx); // round-0 baseline point
        self.start_round(ctx);
    }

    fn on_completion(&mut self, ctx: &mut SimCtx, c: Completion) {
        match advance_phase(&self.core, &mut self.inflight, ctx, &c) {
            PhaseEvent::UploadScheduled | PhaseEvent::Unknown => return,
            PhaseEvent::Landed { weights, n_samples } => {
                self.outstanding -= 1;
                self.received.push((weights, n_samples));
            }
            PhaseEvent::Lost => self.outstanding -= 1,
        }
        if self.outstanding == 0 {
            if !self.received.is_empty() {
                let refs: Vec<(&[f32], usize)> = self
                    .received
                    .iter()
                    .map(|(w, n)| (w.as_slice(), *n))
                    .collect();
                weighted_client_average_into(&refs, &mut self.core.global);
            }
            self.core.bump(ctx);
            if !self.finished() {
                self.start_round(ctx);
            }
        }
    }

    fn finished(&self) -> bool {
        self.starved || self.core.budget_exhausted()
    }
}

impl Strategy for SyncStrategy {
    fn trace(&self) -> &Trace {
        &self.core.trace
    }

    fn take_trace(&mut self) -> Trace {
        std::mem::take(&mut self.core.trace)
    }

    fn global_weights(&self) -> &[f32] {
        &self.core.global
    }

    fn global_updates(&self) -> u64 {
        self.core.updates
    }

    fn variance_checkpoints(&self) -> &[f32] {
        &self.core.variance_checkpoints
    }
}
