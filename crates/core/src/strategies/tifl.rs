//! TiFL (Chai et al., HPDC'20): synchronous tier-based federated learning
//! with adaptive, accuracy-driven tier selection.
//!
//! Each round selects *one* tier; clients are sampled within it, so a
//! fast-tier round is fast. The adaptive policy re-estimates per-tier test
//! accuracies every `PROB_UPDATE_EVERY` rounds and biases selection towards
//! lower-accuracy tiers, under per-tier credit budgets (both from the TiFL
//! paper). This is also the tiering scheme FedAT borrows (§2.1).

use crate::aggregate::aggregate_clients_into;
use crate::config::ExperimentConfig;
use crate::eval::per_client_accuracy;
use crate::exec::ExecCtx;
use crate::strategies::{
    dispatch_tracked, earliest_return, retry_slot, FaultCounters, InflightTable, PhaseEvent,
    ServerCore, Strategy, REVIVE_BIT,
};
use crate::tiering::TierAssignment;
use fedat_data::suite::FedTask;
use fedat_sim::fault::{FaultEvent, FaultKind};
use fedat_sim::runtime::{Completion, EventHandler, SimCtx};
use fedat_sim::trace::Trace;
use rand::RngExt;
use std::sync::Arc;

/// Rounds between re-estimations of the per-tier accuracies (the interval
/// the TiFL paper calls the adaptive evaluation interval; the FedAT paper
/// notes it "requires collecting test accuracies of all clients every
/// certain rounds").
const PROB_UPDATE_EVERY: u64 = 20;

/// TiFL server.
pub struct TiflStrategy {
    core: ServerCore,
    tiers: TierAssignment,
    /// Remaining selections per tier.
    credits: Vec<u64>,
    /// Selection probabilities (re-normalized over selectable tiers).
    probs: Vec<f64>,
    inflight: InflightTable,
    received: Vec<(Vec<f32>, usize)>,
    outstanding: usize,
    /// Clients selected for the current round (quorum denominator).
    picked: usize,
    /// The tier the current round samples from (replacement pool).
    round_tier: usize,
    /// Nominal round-trip latency of the current round's cohort.
    round_nominal: f64,
    /// Parked: no selectable tier right now, revival timer pending.
    waiting: bool,
    starved: bool,
}

impl TiflStrategy {
    /// Builds the TiFL server with profiled tiers and equal initial credits.
    pub fn new(
        task: Arc<FedTask>,
        cfg: &ExperimentConfig,
        fleet: &fedat_sim::Fleet,
        exec: ExecCtx,
    ) -> Self {
        let mut tiers = TierAssignment::profile(fleet, cfg.num_tiers, cfg.local_epochs);
        if cfg.mistier_fraction > 0.0 {
            tiers.mistier(cfg.mistier_fraction, cfg.seed);
        }
        let m = tiers.num_tiers();
        // Credits: rounds split evenly, like TiFL's credit initialization.
        let credits = vec![cfg.rounds / m as u64 + 1; m];
        let core = ServerCore::new(task, cfg, exec, cfg.rounds, cfg.eval_every);
        TiflStrategy {
            core,
            tiers,
            credits,
            probs: vec![1.0 / m as f64; m],
            inflight: InflightTable::new(),
            received: Vec::new(),
            outstanding: 0,
            picked: 0,
            round_tier: 0,
            round_nominal: 0.0,
            waiting: false,
            starved: false,
        }
    }

    /// Re-estimates per-tier accuracy of the current global model and
    /// biases selection toward the weaker tiers (probability ∝ 1 − acc).
    fn update_probs(&mut self) {
        let accs = per_client_accuracy(&self.core.task, &self.core.global, self.core.cfg.seed);
        let m = self.tiers.num_tiers();
        let mut weights = vec![0.0f64; m];
        for (t, w) in weights.iter_mut().enumerate() {
            let clients = self.tiers.tier(t);
            if clients.is_empty() {
                continue;
            }
            let mean: f64 =
                clients.iter().map(|&c| accs[c] as f64).sum::<f64>() / clients.len() as f64;
            *w = (1.0 - mean).max(0.01);
        }
        let sum: f64 = weights.iter().sum();
        if sum > 0.0 {
            for w in weights.iter_mut() {
                *w /= sum;
            }
            self.probs = weights;
        }
    }

    /// Picks the tier for the next round among those with credits and alive
    /// clients.
    fn pick_tier(&mut self, ctx: &mut SimCtx) -> Option<usize> {
        let m = self.tiers.num_tiers();
        let now = ctx.now();
        let usable = |core: &ServerCore, c: usize| {
            ctx.fleet.is_alive(c, now) && !core.is_quarantined(c, now)
        };
        let selectable: Vec<usize> = (0..m)
            .filter(|&t| {
                self.credits[t] > 0 && self.tiers.tier(t).iter().any(|&c| usable(&self.core, c))
            })
            .collect();
        // Credits exhausted everywhere: fall back to any tier with alive
        // clients (uniform), so training can use the full round budget.
        let pool: Vec<usize> = if selectable.is_empty() {
            (0..m)
                .filter(|&t| self.tiers.tier(t).iter().any(|&c| usable(&self.core, c)))
                .collect()
        } else {
            selectable
        };
        if pool.is_empty() {
            return None;
        }
        let total: f64 = pool.iter().map(|&t| self.probs[t]).sum();
        let mut r = ctx.rng.random::<f64>() * total;
        for &t in &pool {
            r -= self.probs[t];
            if r <= 0.0 {
                return Some(t);
            }
        }
        Some(*pool.last().expect("pool non-empty"))
    }

    fn start_round(&mut self, ctx: &mut SimCtx) {
        if self.core.updates > 0 && self.core.updates.is_multiple_of(PROB_UPDATE_EVERY) {
            self.update_probs();
        }
        let Some(tier) = self.pick_tier(ctx) else {
            // No tier has usable clients. Park until the earliest client
            // returns (alive and out of quarantine); starve only when every
            // client is permanently gone.
            let now = ctx.now();
            let revive =
                earliest_return(&self.core, ctx, 0..ctx.fleet.len(), now).unwrap_or(f64::INFINITY);
            if revive.is_finite() {
                self.core.faults.quorum_rounds += 1;
                ctx.faults.record(FaultEvent {
                    time: now,
                    kind: FaultKind::Quorum,
                    client: None,
                    tier: None,
                    detail: 0,
                });
                self.waiting = true;
                ctx.schedule_timer(revive, REVIVE_BIT);
            } else {
                self.starved = true;
            }
            return;
        };
        self.credits[tier] = self.credits[tier].saturating_sub(1);
        let now = ctx.now();
        let alive: Vec<usize> = self
            .tiers
            .tier(tier)
            .iter()
            .copied()
            .filter(|&c| ctx.fleet.is_alive(c, now) && !self.core.is_quarantined(c, now))
            .collect();
        let picks = self
            .core
            .sample_clients(ctx, &alive, self.core.cfg.clients_per_round);
        self.outstanding = picks.len();
        self.picked = picks.len();
        self.round_tier = tier;
        self.received.clear();
        let epochs = self.core.cfg.local_epochs;
        self.round_nominal = picks
            .iter()
            .map(|&c| ctx.fleet.expected_latency(c, epochs))
            .fold(0.0_f64, f64::max)
            .max(1e-6);
        let (weights, down_bytes) = self
            .core
            .transport
            .broadcast(ctx, &picks, &self.core.global);
        for c in picks {
            // Speculative launch at dispatch; TiFL trains unconstrained.
            dispatch_tracked(
                &self.core,
                &mut self.inflight,
                ctx,
                c,
                tier as u64,
                0,
                self.round_nominal,
                &weights,
                epochs,
                false,
                down_bytes,
            );
        }
    }

    fn conclude_if_done(&mut self, ctx: &mut SimCtx) {
        if self.outstanding != 0 {
            return;
        }
        if !self.received.is_empty() {
            let refs: Vec<(&[f32], usize)> = self
                .received
                .iter()
                .map(|(w, n)| (w.as_slice(), *n))
                .collect();
            aggregate_clients_into(self.core.cfg.guard.agg_rule, &refs, &mut self.core.global);
        }
        if (self.received.len() as f64) < self.core.cfg.fault.quorum * self.picked as f64 {
            self.core.faults.quorum_rounds += 1;
            ctx.faults.record(FaultEvent {
                time: ctx.now(),
                kind: FaultKind::Quorum,
                client: None,
                tier: Some(self.round_tier),
                detail: self.received.len() as u64,
            });
        }
        self.core.bump(ctx);
        if !self.finished() {
            self.start_round(ctx);
        }
    }
}

impl EventHandler for TiflStrategy {
    fn on_start(&mut self, ctx: &mut SimCtx) {
        self.core.eval_now(ctx);
        self.start_round(ctx);
    }

    fn on_completion(&mut self, ctx: &mut SimCtx, c: Completion) {
        match self.inflight.advance(&mut self.core, ctx, &c) {
            PhaseEvent::UploadScheduled | PhaseEvent::Unknown => return,
            PhaseEvent::Landed {
                weights, n_samples, ..
            } => {
                self.outstanding -= 1;
                self.received.push((weights, n_samples));
            }
            PhaseEvent::Lost { .. } | PhaseEvent::Rejected { .. } => self.outstanding -= 1,
        }
        self.conclude_if_done(ctx);
    }

    fn on_timer(&mut self, ctx: &mut SimCtx, tag: u64) {
        if tag & REVIVE_BIT != 0 {
            if !self.waiting {
                return;
            }
            self.waiting = false;
            self.core.faults.revivals += 1;
            if !self.finished() {
                self.start_round(ctx);
            }
            return;
        }
        let Some(t) = self.inflight.timeout(tag) else {
            return;
        };
        let nominal = self.round_nominal;
        let epochs = self.core.cfg.local_epochs;
        let redispatched = {
            // Replacements come from the round's own tier, like the
            // original cohort.
            let members = self.tiers.tier(t.group as usize);
            retry_slot(
                &mut self.core,
                &mut self.inflight,
                ctx,
                &t,
                members,
                nominal,
                false,
                |_| epochs,
            )
        };
        if !redispatched {
            self.outstanding -= 1;
            self.conclude_if_done(ctx);
        }
    }

    fn finished(&self) -> bool {
        self.starved || self.core.budget_exhausted()
    }
}

impl Strategy for TiflStrategy {
    fn trace(&self) -> &Trace {
        &self.core.trace
    }

    fn take_trace(&mut self) -> Trace {
        std::mem::take(&mut self.core.trace)
    }

    fn global_weights(&self) -> &[f32] {
        &self.core.global
    }

    fn global_updates(&self) -> u64 {
        self.core.updates
    }

    fn variance_checkpoints(&self) -> &[f32] {
        &self.core.variance_checkpoints
    }

    fn fault_counters(&self) -> FaultCounters {
        self.core.faults
    }

    fn flush_evals(&mut self) {
        self.core.flush_evals();
    }
}
