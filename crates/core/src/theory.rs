//! Empirical verification of the paper's convergence analysis (§5).
//!
//! Theorem 5.1 states that for an L-smooth, μ-strongly-convex central
//! objective with γ-inexact local solves, FedAT's server iterates satisfy
//!
//! ```text
//! E[f(w_T) − f(w*)] ≤ (1 − 2μBησ)^T · (f(w⁰) − f(w*)) + (L/2)η²γ²B²G²c²
//! ```
//!
//! i.e. *geometric decay to a noise ball* whose radius shrinks with the
//! step size. This module builds the exact setting of the analysis — a
//! strongly convex quadratic federation with tiered, asynchronously
//! weighted aggregation — and measures both properties, so the theorem's
//! qualitative content is covered by tests instead of trust.

use crate::aggregate::{aggregate_tiers, cross_tier_weights};
use fedat_tensor::ops::dist_sq;

/// A strongly convex quadratic federation:
/// client `k` holds `F_k(w) = ½‖w − aₖ‖²` so the central objective is
/// `f(w) = ½‖w − w*‖² + const` with `w* = Σ (n_k/N)·aₖ` (here `n_k` equal).
pub struct QuadraticFederation {
    /// Per-client optima `aₖ`, grouped by tier: `targets[tier][client]`.
    pub targets: Vec<Vec<Vec<f32>>>,
    /// Problem dimension.
    pub dim: usize,
}

impl QuadraticFederation {
    /// Builds a federation with `tiers × clients_per_tier` quadratic
    /// clients. Client optima are spread around a common non-zero center
    /// (so `w⁰ = 0` starts far from `w*`), with the *same* per-client
    /// offsets in every tier — any convex combination of tier means then
    /// equals `w*`, which is the regime Theorem 5.1's bound describes.
    pub fn new(tiers: usize, clients_per_tier: usize, dim: usize, spread: f32) -> Self {
        let mut targets = Vec::with_capacity(tiers);
        for _t in 0..tiers {
            let mut tier = Vec::with_capacity(clients_per_tier);
            for c in 0..clients_per_tier {
                let a: Vec<f32> = (0..dim)
                    .map(|d| {
                        let center = 2.0 + 0.1 * d as f32;
                        let phase = (c * 7 + d * 3) as f32;
                        center + spread * (phase * 0.7).sin()
                    })
                    .collect();
                tier.push(a);
            }
            targets.push(tier);
        }
        QuadraticFederation { targets, dim }
    }

    /// Adds a per-tier shift to every optimum, creating *tier-correlated*
    /// data: tier means now differ, so the asynchronously weighted global
    /// model converges to a point biased by the tier weights (the `B`-
    /// dependent residual of Theorem 5.1).
    pub fn with_tier_bias(mut self, bias: f32) -> Self {
        for (t, tier) in self.targets.iter_mut().enumerate() {
            for a in tier.iter_mut() {
                for v in a.iter_mut() {
                    *v += bias * t as f32;
                }
            }
        }
        self
    }

    /// The global optimum `w*` (mean of all client optima).
    pub fn optimum(&self) -> Vec<f32> {
        let mut w = vec![0.0f32; self.dim];
        let mut count = 0usize;
        for tier in &self.targets {
            for a in tier {
                for (wi, &ai) in w.iter_mut().zip(a.iter()) {
                    *wi += ai;
                }
                count += 1;
            }
        }
        for wi in w.iter_mut() {
            *wi /= count as f32;
        }
        w
    }

    /// Central suboptimality `f(w) − f(w*) = ½‖w − w*‖²` (up to the
    /// client-variance constant, which cancels in differences).
    pub fn suboptimality(&self, w: &[f32]) -> f64 {
        0.5 * dist_sq(w, &self.optimum()) as f64
    }

    /// One γ-inexact local solve of client `(tier, c)` from `w`: `steps`
    /// gradient-descent steps of size `eta` on
    /// `h(w) = F_k(w) + λ/2‖w − w_global‖²`.
    fn local_solve(
        &self,
        tier: usize,
        c: usize,
        w_global: &[f32],
        eta: f32,
        lambda: f32,
        steps: usize,
    ) -> Vec<f32> {
        let a = &self.targets[tier][c];
        let mut w = w_global.to_vec();
        for _ in 0..steps {
            for d in 0..self.dim {
                let grad = (w[d] - a[d]) + lambda * (w[d] - w_global[d]);
                w[d] -= eta * grad;
            }
        }
        w
    }

    /// Runs `rounds` of tiered FedAT updates: each round, every tier does a
    /// synchronous local solve and the global model is recomputed with the
    /// Eq. 5 weights (tier `t` is assumed to have updated `rounds_so_far`
    /// scaled by its speed factor). Returns the suboptimality trajectory.
    pub fn run_fedat(
        &self,
        rounds: usize,
        eta: f32,
        lambda: f32,
        local_steps: usize,
        tier_speed: &[u64],
    ) -> Vec<f64> {
        assert_eq!(tier_speed.len(), self.targets.len(), "one speed per tier");
        let m = self.targets.len();
        let mut global = vec![0.0f32; self.dim];
        let mut tier_models: Vec<Vec<f32>> = vec![global.clone(); m];
        let mut tier_counts = vec![0u64; m];
        let mut trajectory = Vec::with_capacity(rounds + 1);
        trajectory.push(self.suboptimality(&global));
        for round in 0..rounds {
            for (t, speed) in tier_speed.iter().enumerate() {
                // A tier updates `speed` times per round (fast tiers more).
                for _ in 0..*speed {
                    let clients = self.targets[t].len();
                    let mut avg = vec![0.0f32; self.dim];
                    for c in 0..clients {
                        let w_c = self.local_solve(t, c, &global, eta, lambda, local_steps);
                        for (ai, &wi) in avg.iter_mut().zip(w_c.iter()) {
                            *ai += wi / clients as f32;
                        }
                    }
                    tier_models[t] = avg;
                    tier_counts[t] += 1;
                    let weights = cross_tier_weights(&tier_counts);
                    global = aggregate_tiers(&tier_models, &weights);
                }
            }
            let _ = round;
            trajectory.push(self.suboptimality(&global));
        }
        trajectory
    }
}

/// Least-squares slope of `ln(values)` against the index — the empirical
/// geometric decay rate. Values ≤ `floor` are clamped (the noise ball).
pub fn log_slope(values: &[f64], floor: f64) -> f64 {
    let yy: Vec<f64> = values.iter().map(|&v| v.max(floor).ln()).collect();
    let n = yy.len() as f64;
    let mean_x = (yy.len() as f64 - 1.0) / 2.0;
    let mean_y = yy.iter().sum::<f64>() / n;
    let mut num = 0.0;
    let mut den = 0.0;
    for (i, &y) in yy.iter().enumerate() {
        let dx = i as f64 - mean_x;
        num += dx * (y - mean_y);
        den += dx * dx;
    }
    num / den
}

#[cfg(test)]
mod tests {
    use super::*;

    fn federation() -> QuadraticFederation {
        QuadraticFederation::new(3, 4, 8, 1.0)
    }

    #[test]
    fn optimum_minimizes_suboptimality() {
        let fed = federation();
        let w_star = fed.optimum();
        assert!(fed.suboptimality(&w_star) < 1e-12);
        let mut off = w_star.clone();
        off[0] += 0.5;
        assert!(fed.suboptimality(&off) > 0.1);
    }

    #[test]
    fn fedat_converges_geometrically_on_strongly_convex_objective() {
        // Theorem 5.1, part 1: the suboptimality trajectory decays
        // geometrically (negative log-slope) until it hits the noise ball.
        let fed = federation();
        let traj = fed.run_fedat(40, 0.1, 0.4, 5, &[4, 2, 1]);
        assert!(
            traj.last().unwrap() < &(traj[0] * 1e-2),
            "did not converge: {} → {}",
            traj[0],
            traj.last().unwrap()
        );
        let slope = log_slope(&traj[..15], 1e-12);
        assert!(slope < -0.1, "no geometric decay: slope {slope}");
    }

    #[test]
    fn smaller_step_size_means_smaller_noise_ball() {
        // Theorem 5.1, part 2: the residual term scales with η², so halving
        // the step size should (weakly) shrink the plateau.
        let fed = federation();
        let plateau = |eta: f32| {
            let traj = fed.run_fedat(80, eta, 0.4, 3, &[4, 2, 1]);
            *traj.last().unwrap()
        };
        let big = plateau(0.4);
        let small = plateau(0.05);
        assert!(
            small <= big * 1.5 + 1e-9,
            "smaller η should not plateau higher: η=0.05 → {small}, η=0.4 → {big}"
        );
    }

    #[test]
    fn prox_term_slows_but_does_not_break_convergence() {
        let fed = federation();
        let free = fed.run_fedat(40, 0.1, 0.0, 5, &[4, 2, 1]);
        let prox = fed.run_fedat(40, 0.1, 2.0, 5, &[4, 2, 1]);
        // Both converge…
        assert!(free.last().unwrap() < &(free[0] * 0.05));
        assert!(prox.last().unwrap() < &(prox[0] * 0.5));
        // …but strong λ cannot be faster than unconstrained on a quadratic.
        assert!(prox.last().unwrap() >= free.last().unwrap());
    }

    #[test]
    fn extreme_tier_imbalance_still_converges() {
        // The B = T_{tier(M+1−m)}/T weights vary per update; even a 20×
        // speed gap between tiers must not prevent convergence (the
        // theorem's bound holds for any B ≤ 1).
        let fed = federation();
        let traj = fed.run_fedat(40, 0.1, 0.4, 5, &[20, 2, 1]);
        assert!(
            traj.last().unwrap() < &(traj[0] * 0.05),
            "imbalanced tiers diverged: {:?}",
            &traj[traj.len() - 3..]
        );
    }

    #[test]
    fn log_slope_of_pure_geometric_series_is_exact() {
        let series: Vec<f64> = (0..20).map(|i| 0.5f64.powi(i)).collect();
        let slope = log_slope(&series, 1e-30);
        assert!((slope - 0.5f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn tier_correlated_data_leaves_a_weight_dependent_bias() {
        // When tier means differ (data correlated with speed), the Eq. 5
        // weights determine the fixed point: the plateau sits away from w*
        // by an amount growing with the tier bias — the B-dependent residual
        // of the theorem, made visible.
        let unbiased = QuadraticFederation::new(3, 4, 8, 1.0);
        let biased = QuadraticFederation::new(3, 4, 8, 1.0).with_tier_bias(1.0);
        let p_unbiased = *unbiased
            .run_fedat(60, 0.1, 0.4, 5, &[4, 2, 1])
            .last()
            .unwrap();
        let p_biased = *biased
            .run_fedat(60, 0.1, 0.4, 5, &[4, 2, 1])
            .last()
            .unwrap();
        assert!(
            p_biased > p_unbiased * 10.0 + 1e-9,
            "tier bias should leave a visible residual: {p_biased} vs {p_unbiased}"
        );
    }
}
