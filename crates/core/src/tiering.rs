//! The tiering module: profile clients by response latency and partition
//! them into `M` logical tiers (paper §4, borrowing TiFL's scheme).

use fedat_sim::fleet::Fleet;
use fedat_tensor::rng::{rng_for, tags};
use rand::RngExt;

/// A partition of clients into latency tiers. Tier 0 is the fastest
/// (`tier 1` in the paper's 1-based notation), tier `M−1` the slowest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TierAssignment {
    tiers: Vec<Vec<usize>>,
}

impl TierAssignment {
    /// Profiles every client's expected response latency and splits the
    /// sorted order into `m` near-equal tiers.
    ///
    /// # Panics
    /// Panics if `m` is zero or exceeds the client count.
    pub fn profile(fleet: &Fleet, m: usize, epochs: usize) -> Self {
        let latencies: Vec<f64> = (0..fleet.len())
            .map(|c| fleet.expected_latency(c, epochs))
            .collect();
        Self::from_latencies(&latencies, m)
    }

    /// Splits clients into `m` near-equal tiers by the given per-client
    /// latencies — the re-tiering entry point: dynamic re-tiering feeds
    /// *observed* EWMA latencies where [`profile`](Self::profile) feeds the
    /// one-shot expected ones.
    ///
    /// # Panics
    /// Panics if `m` is zero or exceeds the client count.
    pub fn from_latencies(latencies: &[f64], m: usize) -> Self {
        assert!(m > 0, "need at least one tier");
        assert!(m <= latencies.len(), "more tiers than clients");
        let mut order: Vec<usize> = (0..latencies.len()).collect();
        order.sort_by(|&a, &b| {
            latencies[a]
                .partial_cmp(&latencies[b])
                .expect("latencies are finite")
                .then(a.cmp(&b)) // stable, deterministic tie-break
        });
        let mut tiers = Vec::with_capacity(m);
        let base = order.len() / m;
        let extra = order.len() % m;
        let mut cursor = 0usize;
        for t in 0..m {
            let take = base + usize::from(t < extra);
            tiers.push(order[cursor..cursor + take].to_vec());
            cursor += take;
        }
        TierAssignment { tiers }
    }

    /// Flat view: `assignments()[client]` = tier index.
    pub fn assignments(&self) -> Vec<usize> {
        let mut out = vec![0usize; self.num_clients()];
        for (t, tier) in self.tiers.iter().enumerate() {
            for &c in tier {
                out[c] = t;
            }
        }
        out
    }

    /// Rebuilds a partition from a flat assignment (clients listed in id
    /// order within each tier). Returns `None` when any tier would end up
    /// empty — callers treat that as "keep the old assignment".
    pub fn from_assignments(assign: &[usize], m: usize) -> Option<Self> {
        let mut tiers = vec![Vec::new(); m];
        for (c, &t) in assign.iter().enumerate() {
            if t >= m {
                return None;
            }
            tiers[t].push(c);
        }
        if tiers.iter().any(|t| t.is_empty()) {
            return None;
        }
        Some(TierAssignment { tiers })
    }

    /// Randomly re-assigns `fraction` of all clients to a uniformly random
    /// *other* tier — the mis-tiering robustness ablation (§2.1 argues FedAT
    /// tolerates mis-profiled clients).
    pub fn mistier(&mut self, fraction: f64, seed: u64) {
        assert!((0.0..=1.0).contains(&fraction), "fraction out of range");
        if fraction == 0.0 || self.tiers.len() < 2 {
            return;
        }
        let mut rng = rng_for(seed, tags::UNSTABLE ^ 0xA5);
        let all: Vec<(usize, usize)> = self
            .tiers
            .iter()
            .enumerate()
            .flat_map(|(t, cs)| cs.iter().map(move |&c| (t, c)))
            .collect();
        let n_move = (all.len() as f64 * fraction).round() as usize;
        let picks = fedat_tensor::rng::sample_without_replacement(&mut rng, all.len(), n_move);
        for p in picks {
            let (from, client) = all[p];
            let mut to = rng.random_range(0..self.tiers.len() - 1);
            if to >= from {
                to += 1; // uniform over tiers ≠ from
            }
            // Move the client (it may have been moved already; skip if gone).
            if let Some(pos) = self.tiers[from].iter().position(|&c| c == client) {
                self.tiers[from].remove(pos);
                self.tiers[to].push(client);
            }
        }
        // A tier emptied by mis-tiering would deadlock its round loop;
        // refill every empty tier from the current largest donor until
        // none remains. Each donation leaves the donor non-empty, and with
        // at least as many clients as tiers (`profile` asserts m ≤ n) a
        // ≥2-client donor always exists while any tier is empty — by
        // pigeonhole, m−1 or fewer non-empty tiers hold all n ≥ m clients
        // — so the loop terminates with every tier populated. The earlier
        // single-pass rescue silently skipped a tier when its chosen donor
        // held ≤ 1 client, leaving the contract to an unstated global
        // argument; this loop makes it exhaustive by construction.
        while let Some(t) = (0..self.tiers.len()).find(|&t| self.tiers[t].is_empty()) {
            let donor = (0..self.tiers.len())
                .max_by_key(|&i| self.tiers[i].len())
                .expect("tiers exist");
            if self.tiers[donor].len() <= 1 {
                // Unreachable for assignments built by `profile` (m ≤ n);
                // bail rather than spin if that invariant is ever broken.
                break;
            }
            let c = self.tiers[donor].pop().expect("donor non-empty");
            self.tiers[t].push(c);
        }
    }

    /// Number of tiers.
    pub fn num_tiers(&self) -> usize {
        self.tiers.len()
    }

    /// Clients of tier `t` (0 = fastest).
    pub fn tier(&self, t: usize) -> &[usize] {
        &self.tiers[t]
    }

    /// Tier index of `client`.
    ///
    /// # Panics
    /// Panics if the client is in no tier.
    pub fn tier_of(&self, client: usize) -> usize {
        self.tiers
            .iter()
            .position(|t| t.contains(&client))
            .unwrap_or_else(|| panic!("client {client} not in any tier"))
    }

    /// Per-tier client counts.
    pub fn tier_sizes(&self) -> Vec<usize> {
        self.tiers.iter().map(|t| t.len()).collect()
    }

    /// Total clients across tiers.
    pub fn num_clients(&self) -> usize {
        self.tiers.iter().map(|t| t.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedat_sim::fleet::ClusterConfig;

    fn fleet(n: usize, seed: u64) -> Fleet {
        let cfg = ClusterConfig::paper_medium(seed)
            .with_clients(n)
            .without_dropouts();
        Fleet::new(&cfg, vec![48; n])
    }

    #[test]
    fn profile_splits_evenly_and_covers() {
        let f = fleet(100, 1);
        let t = TierAssignment::profile(&f, 5, 3);
        assert_eq!(t.tier_sizes(), vec![20; 5]);
        assert_eq!(t.num_clients(), 100);
        let mut all: Vec<usize> = (0..5).flat_map(|i| t.tier(i).to_vec()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn tiers_are_latency_ordered() {
        let f = fleet(100, 2);
        let t = TierAssignment::profile(&f, 5, 3);
        let mean = |clients: &[usize]| -> f64 {
            clients
                .iter()
                .map(|&c| f.expected_latency(c, 3))
                .sum::<f64>()
                / clients.len() as f64
        };
        for i in 0..4 {
            assert!(
                mean(t.tier(i)) <= mean(t.tier(i + 1)),
                "tier {i} slower than tier {}",
                i + 1
            );
        }
    }

    #[test]
    fn profiled_tiers_recover_ground_truth_parts() {
        // With equal sample counts, expected latency is a strictly monotone
        // function of the delay part, so profiling must recover the paper's
        // 5-part assignment exactly.
        let f = fleet(100, 3);
        let t = TierAssignment::profile(&f, 5, 3);
        for tier in 0..5 {
            for &c in t.tier(tier) {
                assert_eq!(f.part_of(c), tier, "client {c} profiled into wrong tier");
            }
        }
    }

    #[test]
    fn tier_of_inverts_assignment() {
        let f = fleet(50, 4);
        let t = TierAssignment::profile(&f, 5, 3);
        for tier in 0..5 {
            for &c in t.tier(tier) {
                assert_eq!(t.tier_of(c), tier);
            }
        }
    }

    #[test]
    fn mistier_moves_roughly_the_requested_fraction() {
        let f = fleet(100, 5);
        let clean = TierAssignment::profile(&f, 5, 3);
        let mut noisy = clean.clone();
        noisy.mistier(0.2, 99);
        assert_eq!(
            noisy.num_clients(),
            100,
            "mis-tiering must not lose clients"
        );
        let moved: usize = (0..100)
            .filter(|&c| clean.tier_of(c) != noisy.tier_of(c))
            .count();
        assert!(
            (15..=25).contains(&moved),
            "moved {moved} clients, expected ≈20"
        );
    }

    #[test]
    fn mistier_zero_is_identity() {
        let f = fleet(40, 6);
        let clean = TierAssignment::profile(&f, 4, 3);
        let mut copy = clean.clone();
        copy.mistier(0.0, 1);
        assert_eq!(clean, copy);
    }

    #[test]
    fn mistier_never_empties_a_tier() {
        let f = fleet(10, 7);
        let mut t = TierAssignment::profile(&f, 5, 3);
        t.mistier(1.0, 3);
        for i in 0..5 {
            assert!(!t.tier(i).is_empty(), "tier {i} emptied");
        }
        assert_eq!(t.num_clients(), 10);
    }

    #[test]
    fn assignments_round_trip() {
        let f = fleet(37, 9);
        let t = TierAssignment::profile(&f, 4, 3);
        let flat = t.assignments();
        assert_eq!(flat.len(), 37);
        for tier in 0..4 {
            for &c in t.tier(tier) {
                assert_eq!(flat[c], tier);
            }
        }
        let back = TierAssignment::from_assignments(&flat, 4).unwrap();
        assert_eq!(back.assignments(), flat);
        assert_eq!(back.num_clients(), 37);
    }

    #[test]
    fn from_assignments_rejects_empty_tiers() {
        assert!(TierAssignment::from_assignments(&[0, 0, 0], 2).is_none());
        assert!(TierAssignment::from_assignments(&[0, 2, 1], 2).is_none());
        assert!(TierAssignment::from_assignments(&[0, 1, 0], 2).is_some());
    }

    #[test]
    fn from_latencies_matches_profile() {
        let f = fleet(60, 10);
        let lat: Vec<f64> = (0..60).map(|c| f.expected_latency(c, 3)).collect();
        assert_eq!(
            TierAssignment::profile(&f, 5, 3),
            TierAssignment::from_latencies(&lat, 5)
        );
    }

    #[test]
    fn uneven_division_spreads_remainder() {
        let f = fleet(103, 8);
        let t = TierAssignment::profile(&f, 5, 3);
        let sizes = t.tier_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 103);
        assert!(sizes.iter().all(|&s| s == 20 || s == 21));
    }
}
