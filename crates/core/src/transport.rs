//! Codec-mediated model transfers with traffic accounting.
//!
//! Every download (server → client) and upload (client → server) passes
//! through the configured codec: the byte count is charged to the traffic
//! meter *and* the weights actually take the lossy roundtrip, so compression
//! precision genuinely affects training (Fig. 5).

use fedat_compress::codec::{codec_for, Codec, CodecKind};
use fedat_sim::runtime::SimCtx;

/// The uplink/downlink channel of one experiment.
pub struct Transport {
    codec: Box<dyn Codec>,
    kind: CodecKind,
}

impl Transport {
    /// Builds the transport for a codec kind.
    pub fn new(kind: CodecKind) -> Self {
        Transport { codec: codec_for(kind), kind }
    }

    /// The codec kind in use.
    pub fn kind(&self) -> CodecKind {
        self.kind
    }

    /// Codec name for reports.
    pub fn codec_name(&self) -> String {
        self.codec.name()
    }

    /// Wire size of one model transfer.
    pub fn payload_bytes(&self, weights: &[f32]) -> usize {
        self.codec.encode(weights).wire_bytes()
    }

    /// Server → client transfer: charges downlink bytes and returns the
    /// weights as the client will see them (post lossy roundtrip) together
    /// with the wire size (so dispatchers can model link transfer time).
    pub fn download(&self, ctx: &mut SimCtx, client: usize, weights: &[f32]) -> (Vec<f32>, usize) {
        let blob = self.codec.encode(weights);
        let bytes = blob.wire_bytes();
        ctx.traffic.record_download(client, bytes);
        (self.codec.decode(&blob), bytes)
    }

    /// Client → server transfer: charges uplink bytes and returns the
    /// weights as the server will see them.
    pub fn upload(&self, ctx: &mut SimCtx, client: usize, weights: &[f32]) -> Vec<f32> {
        let blob = self.codec.encode(weights);
        ctx.traffic.record_upload(client, blob.wire_bytes());
        self.codec.decode(&blob)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedat_sim::fleet::{ClusterConfig, Fleet};
    use fedat_sim::runtime::{run, Completion, EventHandler, RunLimits, SimCtx};

    /// Drives one download+upload through a real SimCtx to check accounting.
    struct OneTransfer {
        transport: Transport,
        weights: Vec<f32>,
        up_result: Option<Vec<f32>>,
        done: bool,
    }

    impl EventHandler for OneTransfer {
        fn on_start(&mut self, ctx: &mut SimCtx) {
            let (w, bytes) = self.transport.download(ctx, 0, &self.weights);
            assert_eq!(w.len(), self.weights.len());
            assert!(bytes > 0);
            ctx.dispatch(0, 0, 1);
        }
        fn on_completion(&mut self, ctx: &mut SimCtx, _c: Completion) {
            self.up_result = Some(self.transport.upload(ctx, 0, &self.weights));
            self.done = true;
        }
        fn finished(&self) -> bool {
            self.done
        }
    }

    #[test]
    fn transfers_charge_both_directions() {
        let cfg = ClusterConfig::paper_medium(1).with_clients(4).without_dropouts();
        let fleet = Fleet::new(&cfg, vec![10; 4]);
        let weights: Vec<f32> = (0..1000).map(|i| (i as f32 * 0.01).sin() * 0.1).collect();
        let mut h = OneTransfer {
            transport: Transport::new(CodecKind::Polyline { precision: 4, delta: true }),
            weights: weights.clone(),
            up_result: None,
            done: false,
        };
        let expected = h.transport.payload_bytes(&weights);
        // Can't reach ctx.traffic after run; assert via handler state +
        // payload symmetry instead.
        run(&mut h, &fleet, 1, RunLimits::default());
        let up = h.up_result.expect("upload happened");
        for (a, b) in up.iter().zip(weights.iter()) {
            assert!((a - b).abs() <= 0.5e-4 * 1.01, "lossy roundtrip out of tolerance");
        }
        assert!(expected < 4000, "polyline should beat raw 4000 B: {expected}");
    }

    #[test]
    fn raw_transport_is_lossless() {
        let t = Transport::new(CodecKind::Raw);
        let w: Vec<f32> = (0..64).map(|i| i as f32 * 0.125).collect();
        assert_eq!(t.payload_bytes(&w), 16 + 64 * 4);
        assert_eq!(t.codec_name(), "none");
    }

    #[test]
    fn polyline_transport_names_and_sizes() {
        let t = Transport::new(CodecKind::Polyline { precision: 3, delta: true });
        assert_eq!(t.codec_name(), "polyline-p3");
        let w = vec![0.001f32; 512];
        let raw = Transport::new(CodecKind::Raw);
        assert!(t.payload_bytes(&w) < raw.payload_bytes(&w));
    }
}
