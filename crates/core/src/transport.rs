//! Codec-mediated model transfers with traffic accounting.
//!
//! Every download (server → client) and upload (client → server) passes
//! through the configured codec: the byte count is charged to the traffic
//! meter *and* the weights actually take the lossy roundtrip, so compression
//! precision genuinely affects training (Fig. 5).
//!
//! ## Zero-copy broadcast
//!
//! A tier round sends the *same* global model to every selected client.
//! [`Transport::broadcast`] therefore encodes and decodes the model exactly
//! once per round and hands every client the same `Arc<[f32]>` — the seed
//! implementation re-encoded the identical payload once per client and
//! cloned the decoded vector per dispatch. Encode counters expose this
//! invariant to the regression tests.

use fedat_compress::codec::{codec_for, CodecKind, WireCodec};
use fedat_compress::topk::ErrorFeedback;
use fedat_sim::runtime::SimCtx;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Whether [`Transport::broadcast`] encodes once per cohort (the default)
/// or once per client (the seed's behavior, kept as the measured naive
/// baseline for `BENCH_fl_round.json`).
static BROADCAST_ENABLED: AtomicBool = AtomicBool::new(true);

/// Toggles the single-encode broadcast path.
pub fn set_broadcast_enabled(enabled: bool) {
    BROADCAST_ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether the single-encode broadcast path is active.
pub fn broadcast_enabled() -> bool {
    BROADCAST_ENABLED.load(Ordering::Relaxed)
}

/// Whether a codec kind is reference-aware (delta-family): it encodes
/// against a model both endpoints hold, which only the *uplink* has (the
/// broadcast the client trained from). The downlink broadcast is shared by
/// a whole cohort and reference-free, so these kinds apply to the uplink
/// leg only and the broadcast travels uncompressed.
pub fn is_delta_family(kind: CodecKind) -> bool {
    matches!(
        kind,
        CodecKind::DeltaRle | CodecKind::Quantized { .. } | CodecKind::TopK { .. }
    )
}

/// The uplink/downlink channel of one experiment.
///
/// Absolute codecs (`None`, `Polyline`, `QuantizeI8`) apply to both legs.
/// Delta-family codecs ([`is_delta_family`]) apply to the uplink only: the
/// downlink broadcast has no reference model to encode against — absolute
/// 4-bit quantization of the full global model every round would destroy
/// training, while the uplink's *delta* vs the just-received broadcast is
/// narrow and quantizes almost for free.
pub struct Transport {
    codec: Box<dyn WireCodec>,
    down_codec: Box<dyn WireCodec>,
    kind: CodecKind,
    downlink_encodes: AtomicU64,
    uplink_encodes: AtomicU64,
    /// Per-client error-feedback accumulators, engaged for
    /// [`CodecKind::TopK`] uplinks only: top-k is the one codec that
    /// silently *drops* coordinates, so the suppressed mass is carried as a
    /// residual and re-offered at the next upload (see
    /// [`fedat_compress::topk::ErrorFeedback`]). BTreeMap keeps iteration
    /// deterministic; the mutex exists because uploads take `&self`, and it
    /// is uncontended (the event loop is single-threaded).
    feedback: Mutex<BTreeMap<usize, ErrorFeedback>>,
}

impl Transport {
    /// Builds the transport for a codec kind.
    pub fn new(kind: CodecKind) -> Self {
        let down_codec = if is_delta_family(kind) {
            codec_for(CodecKind::None)
        } else {
            codec_for(kind)
        };
        Transport {
            codec: codec_for(kind),
            down_codec,
            kind,
            downlink_encodes: AtomicU64::new(0),
            uplink_encodes: AtomicU64::new(0),
            feedback: Mutex::new(BTreeMap::new()),
        }
    }

    /// The codec kind in use.
    pub fn kind(&self) -> CodecKind {
        self.kind
    }

    /// Codec name for reports.
    pub fn codec_name(&self) -> String {
        self.codec.name()
    }

    /// Wire size of one model transfer (probe only; not counted as a
    /// transfer).
    pub fn payload_bytes(&self, weights: &[f32]) -> usize {
        self.codec.encode(weights).wire_bytes()
    }

    /// Number of downlink (server → client) encode operations performed.
    /// With the broadcast path this is one per tier round, *not* one per
    /// selected client.
    pub fn downlink_encode_count(&self) -> u64 {
        self.downlink_encodes.load(Ordering::Relaxed)
    }

    /// Number of uplink (client → server) encode operations performed.
    pub fn uplink_encode_count(&self) -> u64 {
        self.uplink_encodes.load(Ordering::Relaxed)
    }

    /// Server → clients broadcast: encodes `weights` once, charges every
    /// client's downlink, and returns the decoded post-roundtrip model as a
    /// shared `Arc<[f32]>` together with the per-client wire size.
    pub fn broadcast(
        &self,
        ctx: &mut SimCtx,
        clients: &[usize],
        weights: &[f32],
    ) -> (Arc<[f32]>, usize) {
        if !broadcast_enabled() && clients.len() > 1 {
            // Naive baseline: re-encode and re-decode the identical payload
            // for every client, as the seed did.
            let mut decoded: Option<Vec<f32>> = None;
            let mut bytes = 0usize;
            for &c in clients {
                let blob = self.down_codec.encode(weights);
                self.downlink_encodes.fetch_add(1, Ordering::Relaxed);
                bytes = blob.wire_bytes();
                ctx.traffic.record_download(c, bytes);
                decoded = Some(self.down_codec.decode(&blob));
            }
            return (decoded.expect("at least one client").into(), bytes);
        }
        let blob = self.down_codec.encode(weights);
        self.downlink_encodes.fetch_add(1, Ordering::Relaxed);
        let bytes = blob.wire_bytes();
        for &c in clients {
            ctx.traffic.record_download(c, bytes);
        }
        (self.down_codec.decode(&blob).into(), bytes)
    }

    /// Server → client transfer: [`Transport::broadcast`] to one client.
    pub fn download(
        &self,
        ctx: &mut SimCtx,
        client: usize,
        weights: &[f32],
    ) -> (Arc<[f32]>, usize) {
        self.broadcast(ctx, &[client], weights)
    }

    /// Client → server transfer: charges uplink bytes and returns the
    /// weights as the server will see them plus the wire size (so the
    /// strategy can charge the uplink transfer time at completion).
    pub fn upload(&self, ctx: &mut SimCtx, client: usize, weights: &[f32]) -> (Vec<f32>, usize) {
        self.upload_with_ref(ctx, client, weights, None)
    }

    /// Client → server transfer against a shared reference model.
    ///
    /// Delta-family codecs ([`CodecKind::DeltaRle`], [`CodecKind::Quantized`],
    /// [`CodecKind::TopK`], and polyline in delta mode via its own stream
    /// format) shrink dramatically when encoding *against the broadcast the
    /// client trained from*. Both ends hold that reference: the client keeps
    /// the decoded downlink it received at dispatch, and the server keeps the
    /// same `Arc` in its in-flight table — so no extra reference traffic is
    /// ever charged. The downlink [`Transport::broadcast`] stays
    /// reference-free because its payload is shared by the whole cohort.
    ///
    /// [`CodecKind::TopK`] uplinks additionally run per-client error
    /// feedback: the client's carried residual is added to `weights` before
    /// encoding and the post-roundtrip loss becomes the next residual, so
    /// coordinates the sparsifier suppresses arrive late instead of never.
    pub fn upload_with_ref(
        &self,
        ctx: &mut SimCtx,
        client: usize,
        weights: &[f32],
        reference: Option<&[f32]>,
    ) -> (Vec<f32>, usize) {
        if matches!(self.kind, CodecKind::TopK { .. }) {
            let mut feedback = self.feedback.lock().expect("feedback map poisoned");
            let fb = feedback.entry(client).or_default();
            let compensated = fb.compensate(weights);
            let blob = self.codec.encode_with_ref(&compensated, reference);
            self.uplink_encodes.fetch_add(1, Ordering::Relaxed);
            let bytes = blob.wire_bytes();
            ctx.traffic.record_upload(client, bytes);
            let decoded = self.codec.decode_with_ref(&blob, reference);
            fb.absorb(&compensated, &decoded);
            return (decoded, bytes);
        }
        let blob = self.codec.encode_with_ref(weights, reference);
        self.uplink_encodes.fetch_add(1, Ordering::Relaxed);
        let bytes = blob.wire_bytes();
        ctx.traffic.record_upload(client, bytes);
        (self.codec.decode_with_ref(&blob, reference), bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedat_sim::fleet::{ClusterConfig, Fleet};
    use fedat_sim::runtime::{run, Completion, EventHandler, RunLimits, SimCtx};

    /// Drives one download+upload through a real SimCtx to check accounting.
    struct OneTransfer {
        transport: Transport,
        weights: Vec<f32>,
        up_result: Option<Vec<f32>>,
        done: bool,
    }

    impl EventHandler for OneTransfer {
        fn on_start(&mut self, ctx: &mut SimCtx) {
            let (w, bytes) = self.transport.download(ctx, 0, &self.weights);
            assert_eq!(w.len(), self.weights.len());
            assert!(bytes > 0);
            ctx.dispatch(0, 0, 1);
        }
        fn on_completion(&mut self, ctx: &mut SimCtx, _c: Completion) {
            let (w, bytes) = self.transport.upload(ctx, 0, &self.weights);
            assert!(bytes > 0);
            self.up_result = Some(w);
            self.done = true;
        }
        fn finished(&self) -> bool {
            self.done
        }
    }

    #[test]
    fn transfers_charge_both_directions() {
        let cfg = ClusterConfig::paper_medium(1)
            .with_clients(4)
            .without_dropouts();
        let fleet = Fleet::new(&cfg, vec![10; 4]);
        let weights: Vec<f32> = (0..1000).map(|i| (i as f32 * 0.01).sin() * 0.1).collect();
        let mut h = OneTransfer {
            transport: Transport::new(CodecKind::Polyline {
                precision: 4,
                delta: true,
            }),
            weights: weights.clone(),
            up_result: None,
            done: false,
        };
        let expected = h.transport.payload_bytes(&weights);
        // Can't reach ctx.traffic after run; assert via handler state +
        // payload symmetry instead.
        run(&mut h, &fleet, 1, RunLimits::default());
        let up = h.up_result.expect("upload happened");
        for (a, b) in up.iter().zip(weights.iter()) {
            assert!(
                (a - b).abs() <= 0.5e-4 * 1.01,
                "lossy roundtrip out of tolerance"
            );
        }
        assert!(
            expected < 4000,
            "polyline should beat raw 4000 B: {expected}"
        );
        assert_eq!(h.transport.downlink_encode_count(), 1);
        assert_eq!(h.transport.uplink_encode_count(), 1);
    }

    #[test]
    fn broadcast_encodes_once_for_many_clients() {
        let cfg = ClusterConfig::paper_medium(2)
            .with_clients(8)
            .without_dropouts();
        let fleet = Fleet::new(&cfg, vec![10; 8]);
        struct Broadcaster {
            transport: Transport,
            done: bool,
        }
        impl EventHandler for Broadcaster {
            fn on_start(&mut self, ctx: &mut SimCtx) {
                let w: Vec<f32> = (0..256).map(|i| i as f32 * 0.01).collect();
                let clients: Vec<usize> = (0..8).collect();
                let (shared, bytes) = self.transport.broadcast(ctx, &clients, &w);
                assert_eq!(shared.len(), 256);
                assert!(bytes > 0);
                // All eight downlinks charged, one encode performed.
                assert_eq!(ctx.traffic.downlink_bytes(), 8 * bytes as u64);
                assert_eq!(self.transport.downlink_encode_count(), 1);
                self.done = true;
            }
            fn on_completion(&mut self, _ctx: &mut SimCtx, _c: Completion) {}
            fn finished(&self) -> bool {
                self.done
            }
        }
        let mut h = Broadcaster {
            transport: Transport::new(CodecKind::None),
            done: false,
        };
        run(&mut h, &fleet, 2, RunLimits::default());
        assert!(h.done);
    }

    #[test]
    fn raw_transport_is_lossless() {
        let t = Transport::new(CodecKind::None);
        let w: Vec<f32> = (0..64).map(|i| i as f32 * 0.125).collect();
        assert_eq!(t.payload_bytes(&w), 16 + 64 * 4);
        assert_eq!(t.codec_name(), "none");
    }

    #[test]
    fn delta_family_codecs_apply_to_the_uplink_only() {
        let cfg = ClusterConfig::paper_medium(1)
            .with_clients(2)
            .without_dropouts();
        let fleet = Fleet::new(&cfg, vec![10; 2]);
        struct Split {
            transport: Transport,
            done: bool,
        }
        impl EventHandler for Split {
            fn on_start(&mut self, ctx: &mut SimCtx) {
                let w: Vec<f32> = (0..512).map(|i| (i as f32 * 0.013).sin() * 0.1).collect();
                // Downlink: uncompressed and bit-exact.
                let (shared, down_bytes) = self.transport.download(ctx, 0, &w);
                assert_eq!(down_bytes, 16 + 512 * 4, "broadcast must travel raw");
                for (a, b) in shared.iter().zip(w.iter()) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
                // Uplink: quantized delta vs the broadcast reference —
                // roughly one byte per weight instead of four.
                let trained: Vec<f32> = shared.iter().map(|v| v + 0.001).collect();
                let (_, up_bytes) = self
                    .transport
                    .upload_with_ref(ctx, 0, &trained, Some(&shared));
                assert!(up_bytes < down_bytes / 3, "{up_bytes} vs {down_bytes}");
                self.done = true;
            }
            fn on_completion(&mut self, _ctx: &mut SimCtx, _c: Completion) {}
            fn finished(&self) -> bool {
                self.done
            }
        }
        let mut h = Split {
            transport: Transport::new(CodecKind::Quantized { bits: 8 }),
            done: false,
        };
        run(&mut h, &fleet, 3, RunLimits::default());
        assert!(h.done);
        assert!(is_delta_family(CodecKind::DeltaRle));
        assert!(is_delta_family(CodecKind::TopK { per_mille: 50 }));
        assert!(!is_delta_family(CodecKind::None));
        assert!(!is_delta_family(CodecKind::Polyline {
            precision: 4,
            delta: true
        }));
    }

    #[test]
    fn topk_uplink_error_feedback_recovers_suppressed_coordinates() {
        let cfg = ClusterConfig::paper_medium(4)
            .with_clients(2)
            .without_dropouts();
        let fleet = Fleet::new(&cfg, vec![10; 2]);
        struct Ef {
            transport: Transport,
            done: bool,
        }
        impl EventHandler for Ef {
            fn on_start(&mut self, ctx: &mut SimCtx) {
                // k = 1 of 8: each upload transmits only the largest-delta
                // coordinate. Coordinate 0 (delta 1.0) always beats
                // coordinate 7 (delta 0.1) in a memoryless sparsifier.
                let mut w = vec![0.0f32; 8];
                w[0] = 1.0;
                w[7] = 0.1;
                let reference = vec![0.0f32; 8];
                let kind = CodecKind::TopK { per_mille: 125 };
                // Without feedback (raw codec): dropped forever.
                let raw = codec_for(kind);
                for _ in 0..15 {
                    let blob = raw.encode_with_ref(&w, Some(&reference));
                    let decoded = raw.decode_with_ref(&blob, Some(&reference));
                    assert_eq!(decoded[7], 0.0, "raw top-k must keep dropping it");
                }
                // With feedback: the carried residual grows by 0.1 per
                // upload until coordinate 7 outranks the spike and arrives.
                let mut recovered = None;
                for round in 0..15 {
                    let (decoded, _) = self.transport.upload_with_ref(ctx, 0, &w, Some(&reference));
                    if decoded[7] != 0.0 {
                        recovered = Some(round);
                        break;
                    }
                }
                let round = recovered.expect("feedback never recovered the coordinate");
                assert!(round >= 5, "recovery needs rounds of accumulation: {round}");
                // Residuals are per-client: client 1's first upload still
                // suppresses coordinate 7.
                let (other, _) = self.transport.upload_with_ref(ctx, 1, &w, Some(&reference));
                assert_eq!(other[7], 0.0, "residuals leaked across clients");
                self.done = true;
            }
            fn on_completion(&mut self, _ctx: &mut SimCtx, _c: Completion) {}
            fn finished(&self) -> bool {
                self.done
            }
        }
        let mut h = Ef {
            transport: Transport::new(CodecKind::TopK { per_mille: 125 }),
            done: false,
        };
        run(&mut h, &fleet, 4, RunLimits::default());
        assert!(h.done);
    }

    #[test]
    fn polyline_transport_names_and_sizes() {
        let t = Transport::new(CodecKind::Polyline {
            precision: 3,
            delta: true,
        });
        assert_eq!(t.codec_name(), "polyline-p3");
        let w = vec![0.001f32; 512];
        let raw = Transport::new(CodecKind::None);
        assert!(t.payload_bytes(&w) < raw.payload_bytes(&w));
    }
}
