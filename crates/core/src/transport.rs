//! Codec-mediated model transfers with traffic accounting.
//!
//! Every download (server → client) and upload (client → server) passes
//! through the configured codec: the byte count is charged to the traffic
//! meter *and* the weights actually take the lossy roundtrip, so compression
//! precision genuinely affects training (Fig. 5).
//!
//! ## Zero-copy broadcast
//!
//! A tier round sends the *same* global model to every selected client.
//! [`Transport::broadcast`] therefore encodes and decodes the model exactly
//! once per round and hands every client the same `Arc<[f32]>` — the seed
//! implementation re-encoded the identical payload once per client and
//! cloned the decoded vector per dispatch. Encode counters expose this
//! invariant to the regression tests.

use fedat_compress::codec::{codec_for, Codec, CodecKind};
use fedat_sim::runtime::SimCtx;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Whether [`Transport::broadcast`] encodes once per cohort (the default)
/// or once per client (the seed's behavior, kept as the measured naive
/// baseline for `BENCH_fl_round.json`).
static BROADCAST_ENABLED: AtomicBool = AtomicBool::new(true);

/// Toggles the single-encode broadcast path.
pub fn set_broadcast_enabled(enabled: bool) {
    BROADCAST_ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether the single-encode broadcast path is active.
pub fn broadcast_enabled() -> bool {
    BROADCAST_ENABLED.load(Ordering::Relaxed)
}

/// The uplink/downlink channel of one experiment.
pub struct Transport {
    codec: Box<dyn Codec>,
    kind: CodecKind,
    downlink_encodes: AtomicU64,
    uplink_encodes: AtomicU64,
}

impl Transport {
    /// Builds the transport for a codec kind.
    pub fn new(kind: CodecKind) -> Self {
        Transport {
            codec: codec_for(kind),
            kind,
            downlink_encodes: AtomicU64::new(0),
            uplink_encodes: AtomicU64::new(0),
        }
    }

    /// The codec kind in use.
    pub fn kind(&self) -> CodecKind {
        self.kind
    }

    /// Codec name for reports.
    pub fn codec_name(&self) -> String {
        self.codec.name()
    }

    /// Wire size of one model transfer (probe only; not counted as a
    /// transfer).
    pub fn payload_bytes(&self, weights: &[f32]) -> usize {
        self.codec.encode(weights).wire_bytes()
    }

    /// Number of downlink (server → client) encode operations performed.
    /// With the broadcast path this is one per tier round, *not* one per
    /// selected client.
    pub fn downlink_encode_count(&self) -> u64 {
        self.downlink_encodes.load(Ordering::Relaxed)
    }

    /// Number of uplink (client → server) encode operations performed.
    pub fn uplink_encode_count(&self) -> u64 {
        self.uplink_encodes.load(Ordering::Relaxed)
    }

    /// Server → clients broadcast: encodes `weights` once, charges every
    /// client's downlink, and returns the decoded post-roundtrip model as a
    /// shared `Arc<[f32]>` together with the per-client wire size.
    pub fn broadcast(
        &self,
        ctx: &mut SimCtx,
        clients: &[usize],
        weights: &[f32],
    ) -> (Arc<[f32]>, usize) {
        if !broadcast_enabled() && clients.len() > 1 {
            // Naive baseline: re-encode and re-decode the identical payload
            // for every client, as the seed did.
            let mut decoded: Option<Vec<f32>> = None;
            let mut bytes = 0usize;
            for &c in clients {
                let blob = self.codec.encode(weights);
                self.downlink_encodes.fetch_add(1, Ordering::Relaxed);
                bytes = blob.wire_bytes();
                ctx.traffic.record_download(c, bytes);
                decoded = Some(self.codec.decode(&blob));
            }
            return (decoded.expect("at least one client").into(), bytes);
        }
        let blob = self.codec.encode(weights);
        self.downlink_encodes.fetch_add(1, Ordering::Relaxed);
        let bytes = blob.wire_bytes();
        for &c in clients {
            ctx.traffic.record_download(c, bytes);
        }
        (self.codec.decode(&blob).into(), bytes)
    }

    /// Server → client transfer: [`Transport::broadcast`] to one client.
    pub fn download(
        &self,
        ctx: &mut SimCtx,
        client: usize,
        weights: &[f32],
    ) -> (Arc<[f32]>, usize) {
        self.broadcast(ctx, &[client], weights)
    }

    /// Client → server transfer: charges uplink bytes and returns the
    /// weights as the server will see them plus the wire size (so the
    /// strategy can charge the uplink transfer time at completion).
    pub fn upload(&self, ctx: &mut SimCtx, client: usize, weights: &[f32]) -> (Vec<f32>, usize) {
        let blob = self.codec.encode(weights);
        self.uplink_encodes.fetch_add(1, Ordering::Relaxed);
        let bytes = blob.wire_bytes();
        ctx.traffic.record_upload(client, bytes);
        (self.codec.decode(&blob), bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedat_sim::fleet::{ClusterConfig, Fleet};
    use fedat_sim::runtime::{run, Completion, EventHandler, RunLimits, SimCtx};

    /// Drives one download+upload through a real SimCtx to check accounting.
    struct OneTransfer {
        transport: Transport,
        weights: Vec<f32>,
        up_result: Option<Vec<f32>>,
        done: bool,
    }

    impl EventHandler for OneTransfer {
        fn on_start(&mut self, ctx: &mut SimCtx) {
            let (w, bytes) = self.transport.download(ctx, 0, &self.weights);
            assert_eq!(w.len(), self.weights.len());
            assert!(bytes > 0);
            ctx.dispatch(0, 0, 1);
        }
        fn on_completion(&mut self, ctx: &mut SimCtx, _c: Completion) {
            let (w, bytes) = self.transport.upload(ctx, 0, &self.weights);
            assert!(bytes > 0);
            self.up_result = Some(w);
            self.done = true;
        }
        fn finished(&self) -> bool {
            self.done
        }
    }

    #[test]
    fn transfers_charge_both_directions() {
        let cfg = ClusterConfig::paper_medium(1)
            .with_clients(4)
            .without_dropouts();
        let fleet = Fleet::new(&cfg, vec![10; 4]);
        let weights: Vec<f32> = (0..1000).map(|i| (i as f32 * 0.01).sin() * 0.1).collect();
        let mut h = OneTransfer {
            transport: Transport::new(CodecKind::Polyline {
                precision: 4,
                delta: true,
            }),
            weights: weights.clone(),
            up_result: None,
            done: false,
        };
        let expected = h.transport.payload_bytes(&weights);
        // Can't reach ctx.traffic after run; assert via handler state +
        // payload symmetry instead.
        run(&mut h, &fleet, 1, RunLimits::default());
        let up = h.up_result.expect("upload happened");
        for (a, b) in up.iter().zip(weights.iter()) {
            assert!(
                (a - b).abs() <= 0.5e-4 * 1.01,
                "lossy roundtrip out of tolerance"
            );
        }
        assert!(
            expected < 4000,
            "polyline should beat raw 4000 B: {expected}"
        );
        assert_eq!(h.transport.downlink_encode_count(), 1);
        assert_eq!(h.transport.uplink_encode_count(), 1);
    }

    #[test]
    fn broadcast_encodes_once_for_many_clients() {
        let cfg = ClusterConfig::paper_medium(2)
            .with_clients(8)
            .without_dropouts();
        let fleet = Fleet::new(&cfg, vec![10; 8]);
        struct Broadcaster {
            transport: Transport,
            done: bool,
        }
        impl EventHandler for Broadcaster {
            fn on_start(&mut self, ctx: &mut SimCtx) {
                let w: Vec<f32> = (0..256).map(|i| i as f32 * 0.01).collect();
                let clients: Vec<usize> = (0..8).collect();
                let (shared, bytes) = self.transport.broadcast(ctx, &clients, &w);
                assert_eq!(shared.len(), 256);
                assert!(bytes > 0);
                // All eight downlinks charged, one encode performed.
                assert_eq!(ctx.traffic.downlink_bytes(), 8 * bytes as u64);
                assert_eq!(self.transport.downlink_encode_count(), 1);
                self.done = true;
            }
            fn on_completion(&mut self, _ctx: &mut SimCtx, _c: Completion) {}
            fn finished(&self) -> bool {
                self.done
            }
        }
        let mut h = Broadcaster {
            transport: Transport::new(CodecKind::Raw),
            done: false,
        };
        run(&mut h, &fleet, 2, RunLimits::default());
        assert!(h.done);
    }

    #[test]
    fn raw_transport_is_lossless() {
        let t = Transport::new(CodecKind::Raw);
        let w: Vec<f32> = (0..64).map(|i| i as f32 * 0.125).collect();
        assert_eq!(t.payload_bytes(&w), 16 + 64 * 4);
        assert_eq!(t.codec_name(), "none");
    }

    #[test]
    fn polyline_transport_names_and_sizes() {
        let t = Transport::new(CodecKind::Polyline {
            precision: 3,
            delta: true,
        });
        assert_eq!(t.codec_name(), "polyline-p3");
        let w = vec![0.001f32; 512];
        let raw = Transport::new(CodecKind::Raw);
        assert!(t.payload_bytes(&w) < raw.payload_bytes(&w));
    }
}
