//! Fault-tolerance integration tests: the availability churn engine (sim)
//! driving the server-side robustness layer (core) — timeouts, re-dispatch,
//! quorum degradation, dynamic re-tiering — with determinism pinned across
//! execution modes and worker counts.

use fedat_core::config::{FaultPolicy, RetierPolicy};
use fedat_core::prelude::*;
use fedat_data::suite;
use fedat_sim::churn::{ChurnConfig, DriftSpec, FlapSpec, StormSpec};
use fedat_sim::fault::FaultKind;
use fedat_sim::fleet::{ClusterConfig, Fleet};

/// Serializes tests that flip the process-global `ExecMode` (see
/// `strategy_behavior.rs` for why result-invariance tests still need it:
/// the assertions on *fault counters* depend on which paths actually ran).
static EXEC_MODE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// The paper_medium(seed=7) permanent-dropout schedule, pinned bit-exact.
/// The churn engine replaced the `dropout_at` representation with down
/// intervals; this guards the contract that the legacy draws — which every
/// seeded experiment's client availability depends on — survive the
/// refactor bit-for-bit.
#[test]
fn legacy_dropout_schedule_is_pinned() {
    let expected: [(usize, f64); 10] = [
        (3, f64::from_bits(0x40893a4b5d439091)),  // 807.2867989805692
        (11, f64::from_bits(0x407c3a2b3150b87d)), // 451.6355450776244
        (27, f64::from_bits(0x4094e04e931c55c2)), // 1336.0767330577223
        (28, f64::from_bits(0x407cb19e4df653e9)), // 459.10114856931483
        (29, f64::from_bits(0x40858cec0adba1b1)), // 689.6152550848693
        (38, f64::from_bits(0x4080cdce0326cc53)), // 537.7255919486146
        (42, f64::from_bits(0x408f1d914ba811ca)), // 995.6959450846127
        (46, f64::from_bits(0x40862fda902e3ea1)), // 709.9817203152526
        (71, f64::from_bits(0x405ba8982662abb6)), // 110.6342864955503
        (79, f64::from_bits(0x409c7ef751d7e170)), // 1823.7415231448504
    ];
    let cfg = ClusterConfig::paper_medium(7);
    let fleet = Fleet::new(&cfg, vec![48; cfg.n_clients]);
    let mut dropped = 0;
    for c in 0..cfg.n_clients {
        match expected.iter().find(|&&(e, _)| e == c) {
            Some(&(_, t)) => {
                assert_eq!(
                    fleet.dropout_time(c),
                    Some(t),
                    "client {c}: legacy dropout draw moved"
                );
                dropped += 1;
            }
            None => assert_eq!(
                fleet.dropout_time(c),
                None,
                "client {c} gained a spurious dropout"
            ),
        }
    }
    assert_eq!(dropped, cfg.n_unstable);
}

fn stormy_cluster(n: usize, seed: u64) -> ClusterConfig {
    // ~30% of the fleet taken down together mid-run, twice, plus light
    // flapping and compute drift that invalidates the static profile.
    let churn = ChurnConfig {
        flaps: Some(FlapSpec {
            fraction: 0.25,
            mean_up: 300.0,
            mean_down: 60.0,
            horizon: 4000.0,
        }),
        storms: Some(StormSpec {
            count: 2,
            cohort_fraction: 0.3,
            duration: 150.0,
            horizon: 1500.0,
        }),
        drift: Some(DriftSpec {
            fraction: 0.4,
            per_round: 0.05,
            max_factor: 4.0,
        }),
        ..ChurnConfig::default()
    };
    ClusterConfig::paper_medium(seed)
        .with_clients(n)
        .without_dropouts()
        .with_churn(churn)
}

fn robust_cfg(n_rounds: u64, seed: u64, cluster: ClusterConfig) -> ExperimentConfig {
    ExperimentConfig::builder()
        .strategy(StrategyKind::FedAt)
        .rounds(n_rounds)
        .clients_per_round(3)
        .local_epochs(1)
        .eval_every(10)
        .seed(seed)
        .cluster(cluster)
        .fault(FaultPolicy {
            deadline_multiplier: Some(1.5),
            max_retries: 2,
            backoff: 1.5,
            // Strict quorum: any round degraded by a mid-flight drop (a
            // `Lost` slot is not retried) must be logged as a Quorum skip.
            quorum: 0.9,
            retier: Some(RetierPolicy {
                alpha: 0.3,
                check_every: 10,
                drift_threshold: 0.05,
            }),
        })
        .build()
}

/// FedAT under a drift+storm scenario with the full fault policy: the run
/// must complete with no stalled tier, actually exercise timeout /
/// re-dispatch / quorum / re-tier, and surface every fault kind in the log.
#[test]
fn fedat_with_timeouts_rides_out_a_storm_without_stalling() {
    let n = 20;
    let task = suite::sent140_like(n, 37);
    // Enough rounds that the run outlives the first down/up cycles, so the
    // ground-truth transitions show up in the log alongside the server's
    // fault-tolerance actions.
    let mut cfg = robust_cfg(400, 37, stormy_cluster(n, 37));
    cfg.max_time = 20_000.0;
    let out = fedat_core::run_experiment(&task, &cfg);

    assert!(out.global_updates > 0, "run made no progress");
    let tiers = out.tier_updates.expect("FedAT reports per-tier updates");
    for (t, &u) in tiers.iter().enumerate() {
        assert!(u > 0, "tier {t} stalled: 0 updates (counts {tiers:?})");
    }
    let fc = out.fault_counters;
    assert!(fc.timeouts > 0, "no deadline ever fired: {fc:?}");
    assert!(fc.retries > 0, "no slot was re-dispatched: {fc:?}");
    assert!(
        fc.quorum_rounds > 0,
        "quorum degradation never exercised: {fc:?}"
    );
    assert!(
        fc.retier_events > 0,
        "dynamic re-tiering never adopted: {fc:?}"
    );

    // Every fault-tolerance action must be visible in the event log…
    for kind in [
        FaultKind::Down,
        FaultKind::Up,
        FaultKind::Timeout,
        FaultKind::Retry,
        FaultKind::Quorum,
        FaultKind::Retier,
    ] {
        assert!(
            out.faults.count(kind) > 0,
            "fault kind {kind} missing from the log"
        );
    }
    // …and the counters must agree with the log.
    assert_eq!(out.faults.count(FaultKind::Timeout) as u64, fc.timeouts);
    assert_eq!(out.faults.count(FaultKind::Retry) as u64, fc.retries);
    assert_eq!(out.faults.count(FaultKind::Retier) as u64, fc.retier_events);
    // The log is time-ordered.
    for w in out.faults.events().windows(2) {
        assert!(w[0].time <= w[1].time, "fault log out of order");
    }
    assert!(out.final_weights.iter().all(|w| w.is_finite()));
}

/// The timeout/re-dispatch path must be trace-invisible to the execution
/// machinery: bit-identical across ExecMode::{Speculative, Inline} × pool
/// worker counts {1, 2, 4, 8}. Deadlines cancel speculative jobs mid-run,
/// so this pins that a discarded-but-still-running job can't leak anything
/// observable.
#[test]
fn timeout_paths_are_bit_identical_across_exec_modes_and_workers() {
    use fedat_core::exec::{ExecMode, ToggleGuard};
    use fedat_tensor::pool;
    let _exec_guard = EXEC_MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    pool::ensure_workers(8);

    let n = 16;
    let task = suite::sent140_like(n, 41);
    let mut cfg = robust_cfg(60, 41, stormy_cluster(n, 41));
    cfg.max_time = 15_000.0;

    let run_with = |mode: ExecMode, workers: usize| {
        let mut g = ToggleGuard::new();
        g.exec(mode).max_pool_jobs(workers - 1);
        fedat_core::run_experiment(&task, &cfg)
    };

    let base = run_with(ExecMode::Speculative, 8);
    assert!(
        base.fault_counters.timeouts > 0 && base.fault_counters.retries > 0,
        "scenario no longer exercises the timeout path: {:?}",
        base.fault_counters
    );
    for mode in [ExecMode::Speculative, ExecMode::Inline] {
        for workers in [1usize, 2, 4, 8] {
            let out = run_with(mode, workers);
            assert_eq!(
                out.final_weights, base.final_weights,
                "weights diverged under {mode:?} with {workers} workers"
            );
            assert_eq!(
                out.fault_counters, base.fault_counters,
                "fault counters diverged under {mode:?} with {workers} workers"
            );
            assert_eq!(
                out.faults, base.faults,
                "fault log diverged under {mode:?} with {workers} workers"
            );
            assert_eq!(out.report.end_time, base.report.end_time);
            assert_eq!(out.trace.points.len(), base.trace.points.len());
            for (p, q) in out.trace.points.iter().zip(base.trace.points.iter()) {
                assert_eq!(p.accuracy, q.accuracy);
                assert_eq!(p.loss, q.loss);
                assert_eq!(p.time, q.time);
                assert_eq!(p.up_bytes, q.up_bytes);
                assert_eq!(p.down_bytes, q.down_bytes);
            }
        }
    }
}

/// With the default (legacy) fault policy the new machinery is inert: no
/// timers fire, no faults beyond ground-truth down/up are logged, and the
/// run matches the legacy trace shape (the workspace-wide determinism pins
/// in `strategy_behavior.rs` cover bit-identity; this checks the policy
/// gate itself).
#[test]
fn default_policy_keeps_the_fault_layer_inert() {
    let n = 12;
    let task = suite::sent140_like(n, 43);
    let cluster = ClusterConfig::paper_medium(43).with_clients(n);
    let cfg = ExperimentConfig::builder()
        .strategy(StrategyKind::FedAt)
        .rounds(30)
        .clients_per_round(3)
        .local_epochs(1)
        .eval_every(5)
        .seed(43)
        .cluster(cluster)
        .build();
    let out = fedat_core::run_experiment(&task, &cfg);
    let fc = out.fault_counters;
    assert_eq!(fc.timeouts, 0);
    assert_eq!(fc.retries, 0);
    assert_eq!(fc.retier_events, 0);
    assert_eq!(fc.revivals, 0);
    assert_eq!(out.faults.count(FaultKind::Timeout), 0);
    assert_eq!(out.faults.count(FaultKind::Retry), 0);
    assert_eq!(out.faults.count(FaultKind::Retier), 0);
    assert!(out.global_updates > 0);
}

/// Transient churn without fault tolerance used to strand the async
/// strategies (a flapped client left the pool forever). Revival timers must
/// keep FedAsync productive through flaps, deterministically.
#[test]
fn fedasync_revives_flapped_clients() {
    let n = 10;
    let task = suite::sent140_like(n, 47);
    let churn = ChurnConfig {
        flaps: Some(FlapSpec {
            fraction: 1.0,
            mean_up: 150.0,
            mean_down: 30.0,
            horizon: 3000.0,
        }),
        ..ChurnConfig::default()
    };
    let cluster = ClusterConfig::paper_medium(47)
        .with_clients(n)
        .without_dropouts()
        .with_churn(churn);
    let cfg = ExperimentConfig::builder()
        .strategy(StrategyKind::FedAsync)
        .rounds(40)
        .clients_per_round(3)
        .local_epochs(1)
        .eval_every(20)
        .seed(47)
        .cluster(cluster)
        .build();
    let out = fedat_core::run_experiment(&task, &cfg);
    assert!(
        out.fault_counters.revivals > 0,
        "every client flaps, so revivals must fire: {:?}",
        out.fault_counters
    );
    assert!(out.global_updates > 0);
    let again = fedat_core::run_experiment(&task, &cfg);
    assert_eq!(out.final_weights, again.final_weights);
    assert_eq!(out.fault_counters, again.fault_counters);
    assert_eq!(out.faults, again.faults);
}
