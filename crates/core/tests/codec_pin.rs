//! Inert-default pin for the wire codec (same discipline as the
//! `FaultPolicy`/`GuardPolicy` pins): an explicit `CodecKind::None` run and a
//! default-codec run must keep reproducing the exact traffic totals and
//! model bits they produced before the reference-aware codec layer grew.
//! The literals below were captured on the pre-codec tree — if one moves,
//! the "inert default" contract broke.

use fedat_compress::codec::CodecKind;
use fedat_core::config::{ExperimentConfig, StrategyKind};
use fedat_data::suite;

/// Order-sensitive FNV-1a over the weight bit patterns: any single-bit
/// divergence anywhere in the model changes the digest.
fn weight_digest(w: &[f32]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for v in w {
        for b in v.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

fn pin_cfg(strategy: StrategyKind, codec: Option<CodecKind>) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::builder()
        .strategy(strategy)
        .rounds(40)
        .clients_per_round(3)
        .seed(7)
        .build();
    cfg.codec = codec;
    cfg
}

struct Pin {
    up_bytes: u64,
    down_bytes: u64,
    best_bits: u32,
    digest: u64,
    updates: u64,
}

fn run_pin(strategy: StrategyKind, codec: Option<CodecKind>, expect: Pin) {
    if codec.is_none() && std::env::var("FEDAT_CODEC").is_ok() {
        // The CI codec lane swaps the default codec out from under the
        // default-codec pins on purpose; only explicit-codec pins apply.
        eprintln!("skipping default-codec pin: FEDAT_CODEC is set");
        return;
    }
    let task = suite::sent140_like(12, 7).scaled(0.4);
    let cfg = pin_cfg(strategy, codec);
    let out = fedat_core::run_experiment(&task, &cfg);
    let last = out.trace.points.last().unwrap();
    assert_eq!(last.up_bytes, expect.up_bytes, "uplink bytes moved");
    assert_eq!(last.down_bytes, expect.down_bytes, "downlink bytes moved");
    assert_eq!(
        out.trace.best_accuracy().to_bits(),
        expect.best_bits,
        "best accuracy bits moved"
    );
    assert_eq!(
        weight_digest(&out.final_weights),
        expect.digest,
        "final model bits moved"
    );
    assert_eq!(out.global_updates, expect.updates, "update count moved");
}

/// `CodecKind::None` reproduces the pre-codec-layer trace exactly —
/// including every byte the traffic meter charged. The uncompressed path
/// is the inert default the whole regression suite stands on.
#[test]
fn none_codec_matches_pre_codec_trace_bit_for_bit() {
    run_pin(
        StrategyKind::FedAt,
        Some(CodecKind::None),
        Pin {
            up_bytes: 31640,
            down_bytes: 33320,
            best_bits: 0x3eefa8da,
            digest: 0x9586ad710164b363,
            updates: 40,
        },
    );
}

/// The baselines default to the uncompressed codec; their traces must not
/// move either (FedAvg stands in for the family).
#[test]
fn baseline_default_codec_is_unchanged() {
    run_pin(
        StrategyKind::FedAvg,
        None,
        Pin {
            up_bytes: 33600,
            down_bytes: 33600,
            best_bits: 0x3f393105,
            digest: 0xf766694d65ae1d92,
            updates: 40,
        },
    );
}

/// FedAT's default polyline uplink is absolute (reference-ignoring), so
/// threading the broadcast reference through the new uplink path must not
/// change its trace either.
#[test]
fn fedat_default_polyline_is_unchanged() {
    run_pin(
        StrategyKind::FedAt,
        None,
        Pin {
            up_bytes: 23369,
            down_bytes: 24578,
            best_bits: 0x3eefa8da,
            digest: 0xd4be6d0abaa19bea,
            updates: 40,
        },
    );
}
