//! Corrupted-update integration tests: the corruption injector (sim)
//! against the server-side guard layer (core) — finite/norm screening,
//! staleness bounds, quarantine — with determinism pinned across execution
//! modes and worker counts while the attack is live.

use fedat_core::aggregate::AggRule;
use fedat_core::config::{GuardPolicy, NormScreen};
use fedat_core::prelude::*;
use fedat_data::suite;
use fedat_sim::churn::{ChurnConfig, CorruptMode, CorruptSpec, FlapSpec};
use fedat_sim::fault::FaultKind;
use fedat_sim::fleet::{ClusterConfig, Fleet};

/// Serializes tests that flip the process-global `ExecMode` (same
/// rationale as in `churn_robustness.rs`).
static EXEC_MODE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn scale_attack(fraction: f64) -> CorruptSpec {
    CorruptSpec {
        fraction,
        probability: 0.5,
        mode: CorruptMode::Scale { factor: 5.0 },
    }
}

fn clip_guard() -> GuardPolicy {
    GuardPolicy {
        finite_check: true,
        norm_screen: Some(NormScreen {
            alpha: 0.2,
            threshold: 2.0,
            clip: true,
        }),
        ..GuardPolicy::default()
    }
}

fn corrupt_cluster(n: usize, seed: u64, spec: Option<CorruptSpec>) -> ClusterConfig {
    ClusterConfig::paper_medium(seed)
        .with_clients(n)
        .without_dropouts()
        .with_churn(ChurnConfig {
            corrupt: spec,
            ..ChurnConfig::default()
        })
}

fn cfg_with(
    strategy: StrategyKind,
    rounds: u64,
    seed: u64,
    cluster: ClusterConfig,
    guard: GuardPolicy,
) -> ExperimentConfig {
    ExperimentConfig::builder()
        .strategy(strategy)
        .rounds(rounds)
        .clients_per_round(6)
        .local_epochs(1)
        .eval_every(5)
        .seed(seed)
        .cluster(cluster)
        .guard(guard)
        .build()
}

/// The regression pin for the default-inert contract: a run whose config
/// spells out the new knobs at their defaults — `GuardPolicy::default()`
/// and a corrupt spec covering zero clients — is bit-identical to a run
/// that never mentions them, and neither logs any guard fault kind.
#[test]
fn default_guard_and_empty_corrupt_spec_are_inert() {
    let n = 12;
    let task = suite::sent140_like(n, 43);
    let legacy = ExperimentConfig::builder()
        .strategy(StrategyKind::FedAt)
        .rounds(30)
        .clients_per_round(3)
        .local_epochs(1)
        .eval_every(5)
        .seed(43)
        .cluster(ClusterConfig::paper_medium(43).with_clients(n))
        .build();
    let spelled = ExperimentConfig::builder()
        .strategy(StrategyKind::FedAt)
        .rounds(30)
        .clients_per_round(3)
        .local_epochs(1)
        .eval_every(5)
        .seed(43)
        .cluster(
            ClusterConfig::paper_medium(43)
                .with_clients(n)
                .with_churn(ChurnConfig {
                    corrupt: Some(scale_attack(0.0)),
                    ..ChurnConfig::default()
                }),
        )
        .guard(GuardPolicy::default())
        .build();
    let a = fedat_core::run_experiment(&task, &legacy);
    let b = fedat_core::run_experiment(&task, &spelled);
    assert_eq!(a.final_weights, b.final_weights);
    assert_eq!(a.fault_counters, b.fault_counters);
    assert_eq!(a.faults, b.faults);
    assert_eq!(a.report.end_time, b.report.end_time);
    let fc = a.fault_counters;
    assert_eq!(
        (fc.corrupt, fc.rejects, fc.clips, fc.stale, fc.quarantines),
        (0, 0, 0, 0, 0)
    );
    for kind in [
        FaultKind::Corrupt,
        FaultKind::Reject,
        FaultKind::Clip,
        FaultKind::Stale,
        FaultKind::Quarantine,
    ] {
        assert_eq!(a.faults.count(kind), 0, "inert run logged {kind}");
    }
    assert!(a.global_updates > 0);
}

/// The corruption draws live under their own RNG tag, so attaching a
/// corrupt spec must not move any legacy availability draw: dropout times
/// and the flap schedule are bit-identical with and without it.
#[test]
fn corrupt_spec_leaves_legacy_availability_draws_untouched() {
    let churn_without = ChurnConfig {
        flaps: Some(FlapSpec {
            fraction: 0.5,
            mean_up: 200.0,
            mean_down: 40.0,
            horizon: 2000.0,
        }),
        ..ChurnConfig::default()
    };
    let churn_with = ChurnConfig {
        corrupt: Some(scale_attack(0.4)),
        ..churn_without
    };
    let n = 20;
    let base = || ClusterConfig::paper_medium(53).with_clients(n);
    let fleet_a = Fleet::new(&base().with_churn(churn_without), vec![48; n]);
    let fleet_b = Fleet::new(&base().with_churn(churn_with), vec![48; n]);
    for c in 0..n {
        assert_eq!(
            fleet_a.dropout_time(c),
            fleet_b.dropout_time(c),
            "client {c}: dropout draw moved"
        );
        // Probe the flap schedule on a fixed grid.
        for step in 0..200 {
            let t = step as f64 * 10.0;
            assert_eq!(
                fleet_a.is_alive(c, t),
                fleet_b.is_alive(c, t),
                "client {c}: availability diverged at t={t}"
            );
            assert_eq!(fleet_a.next_up_time(c, t), fleet_b.next_up_time(c, t));
        }
    }
}

/// The headline e2e claim, in miniature: at 20% corrupt clients the
/// norm-screen guard keeps FedAvg within tolerance of the clean run while
/// the undefended server degrades, and the robust rules match the guard.
#[test]
fn guard_recovers_a_corrupted_run_that_degrades_undefended() {
    let n = 16;
    let seed = 59;
    let rounds = 120;
    let task = suite::sent140_like(n, seed);
    let run = |spec: Option<CorruptSpec>, guard: GuardPolicy| {
        let mut cfg = cfg_with(
            StrategyKind::FedAvg,
            rounds,
            seed,
            corrupt_cluster(n, seed, spec),
            guard,
        );
        // An 8-wide cohort makes the median structurally safe here: only 3
        // of the 16 clients are corrupt-capable (20%), which can never
        // reach the 4-of-8 breakdown point of the order statistics.
        cfg.clients_per_round = 8;
        fedat_core::run_experiment(&task, &cfg)
    };
    let clean = run(None, GuardPolicy::default());
    let undefended = run(Some(scale_attack(0.2)), GuardPolicy::default());
    let clipped = run(Some(scale_attack(0.2)), clip_guard());
    let median = run(
        Some(scale_attack(0.2)),
        GuardPolicy {
            finite_check: true,
            agg_rule: AggRule::CoordinateMedian,
            ..GuardPolicy::default()
        },
    );

    assert!(undefended.fault_counters.corrupt > 0, "attack never fired");
    assert!(clipped.fault_counters.clips > 0, "screen never clipped");
    let clean_best = clean.best_accuracy();
    // The magnitude attack compounds in the mean: the undefended server
    // must visibly degrade relative to both the clean run and the guard.
    assert!(
        undefended.best_accuracy() < clean_best - 0.05,
        "undefended run did not degrade: {:.3} vs clean {clean_best:.3}",
        undefended.best_accuracy()
    );
    for (name, out) in [("clip", &clipped), ("median", &median)] {
        assert!(
            out.final_weights.iter().all(|w| w.is_finite()),
            "{name}: non-finite final model"
        );
        assert!(
            out.best_accuracy() >= clean_best - 0.04,
            "{name}: best {:.3} fell out of tolerance of clean {clean_best:.3}",
            out.best_accuracy()
        );
    }
}

/// FedAsync with a staleness bound: ancient updates are discarded (logged
/// as `Stale`, counted, not mixed), and the run stays productive and
/// deterministic.
#[test]
fn fedasync_staleness_bound_discards_ancient_updates() {
    let n = 14;
    let seed = 61;
    let task = suite::sent140_like(n, seed);
    let guard = GuardPolicy {
        max_staleness: Some(3),
        ..GuardPolicy::default()
    };
    let cfg = cfg_with(
        StrategyKind::FedAsync,
        40,
        seed,
        corrupt_cluster(n, seed, None),
        guard,
    );
    let out = fedat_core::run_experiment(&task, &cfg);
    // paper_medium's latency spread guarantees the slowest clients land
    // updates many versions behind the bound of 3.
    assert!(
        out.fault_counters.stale > 0,
        "no update ever exceeded the staleness bound: {:?}",
        out.fault_counters
    );
    assert_eq!(
        out.faults.count(FaultKind::Stale) as u64,
        out.fault_counters.stale
    );
    assert!(out.global_updates > 0);
    assert!(out.final_weights.iter().all(|w| w.is_finite()));
    let again = fedat_core::run_experiment(&task, &cfg);
    assert_eq!(out.final_weights, again.final_weights);
    assert_eq!(out.faults, again.faults);
}

/// Reject-mode screening plus quarantine: repeat offenders are parked for
/// `quarantine_secs` (logged, counted) and the run still completes; the
/// ground-truth corrupt count shrinks versus an unquarantined run because
/// parked clients stop being selected.
#[test]
fn quarantine_parks_repeat_offenders() {
    let n = 16;
    let seed = 67;
    let task = suite::sent140_like(n, seed);
    let reject_guard = GuardPolicy {
        norm_screen: Some(NormScreen {
            clip: false,
            ..clip_guard().norm_screen.expect("screen set")
        }),
        ..clip_guard()
    };
    let quarantine_guard = GuardPolicy {
        quarantine_after: Some(2),
        quarantine_secs: 500.0,
        ..reject_guard
    };
    let attack = Some(CorruptSpec {
        probability: 1.0,
        ..scale_attack(0.25)
    });
    let run = |guard: GuardPolicy| {
        let cfg = cfg_with(
            StrategyKind::FedAvg,
            80,
            seed,
            corrupt_cluster(n, seed, attack),
            guard,
        );
        fedat_core::run_experiment(&task, &cfg)
    };
    let without = run(reject_guard);
    let with = run(quarantine_guard);
    assert!(with.fault_counters.rejects > 0, "screen never rejected");
    assert!(
        with.fault_counters.quarantines > 0,
        "repeat offenders were never quarantined: {:?}",
        with.fault_counters
    );
    assert_eq!(
        with.faults.count(FaultKind::Quarantine) as u64,
        with.fault_counters.quarantines
    );
    assert!(
        with.fault_counters.corrupt < without.fault_counters.corrupt,
        "quarantine did not shrink the attack surface: {} vs {}",
        with.fault_counters.corrupt,
        without.fault_counters.corrupt
    );
    assert!(with.global_updates > 0);
    assert!(with.final_weights.iter().all(|w| w.is_finite()));
    let again = run(quarantine_guard);
    assert_eq!(with.final_weights, again.final_weights);
    assert_eq!(with.faults, again.faults);
}

/// Bit-identity with the guard on and the attack live: corruption,
/// screening, clipping and quarantine all sit on the virtual-time side of
/// the determinism contract, so the full outcome must not move across
/// ExecMode × SimdKernel × pool worker counts {1, 2, 4, 8}.
#[test]
fn guarded_corruption_is_bit_identical_across_exec_modes_and_workers() {
    use fedat_core::exec::{ExecMode, ToggleGuard};
    use fedat_tensor::pool;
    use fedat_tensor::simd::SimdKernel;
    let _exec_guard = EXEC_MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    pool::ensure_workers(8);

    let n = 12;
    let seed = 71;
    let task = suite::sent140_like(n, seed);
    let guard = GuardPolicy {
        quarantine_after: Some(3),
        quarantine_secs: 300.0,
        agg_rule: AggRule::TrimmedMean { frac: 0.3 },
        ..clip_guard()
    };
    let cfg = cfg_with(
        StrategyKind::FedAt,
        40,
        seed,
        corrupt_cluster(n, seed, Some(scale_attack(0.3))),
        guard,
    );
    let run_with = |mode: ExecMode, kernel: SimdKernel, workers: usize| {
        let mut g = ToggleGuard::new();
        g.exec(mode).simd(kernel).max_pool_jobs(workers - 1);
        fedat_core::run_experiment(&task, &cfg)
    };
    let base = run_with(ExecMode::Speculative, SimdKernel::Auto, 8);
    assert!(
        base.fault_counters.corrupt > 0 && base.fault_counters.clips > 0,
        "scenario no longer exercises the guard: {:?}",
        base.fault_counters
    );
    for mode in [ExecMode::Speculative, ExecMode::Inline] {
        for kernel in [SimdKernel::Auto, SimdKernel::Scalar] {
            for workers in [1usize, 2, 4, 8] {
                let out = run_with(mode, kernel, workers);
                assert_eq!(
                    out.final_weights, base.final_weights,
                    "weights diverged under {mode:?}/{kernel:?}/{workers} workers"
                );
                assert_eq!(
                    out.fault_counters, base.fault_counters,
                    "fault counters diverged under {mode:?}/{kernel:?}/{workers} workers"
                );
                assert_eq!(
                    out.faults, base.faults,
                    "fault log diverged under {mode:?}/{kernel:?}/{workers} workers"
                );
                assert_eq!(out.report.end_time, base.report.end_time);
            }
        }
    }
}
