//! Per-run execution contexts: concurrent experiments with *different*
//! exec modes and kernel toggles must not cross-talk.
//!
//! The process-wide toggles (`ExecMode`, `SimdKernel`, …) are only the
//! default layer now: `run_experiment_shared` resolves an
//! [`fedat_core::exec::ExecCtx`] once from config + environment and installs
//! it as a per-thread overlay that follows the run across every
//! thread-crossing point (speculative training jobs, pipelined evals,
//! fork-join kernel regions). These tests pin the property the refactor
//! exists for: N concurrent runs, each under a different context, each
//! bit-identical to its own serial counterpart.

use fedat_core::exec::{ExecCtx, ExecMode, ToggleGuard};
use fedat_core::{run_experiment, ExperimentConfig, Outcome, StrategyKind};
use fedat_data::suite;
use fedat_sim::fleet::ClusterConfig;
use fedat_tensor::simd::SimdKernel;

fn cfg_with(mode: ExecMode, simd: SimdKernel, n: usize, seed: u64) -> ExperimentConfig {
    ExperimentConfig::builder()
        .strategy(StrategyKind::FedAt)
        .rounds(12)
        .clients_per_round(3)
        .local_epochs(1)
        .eval_every(3)
        .seed(seed)
        .cluster(
            ClusterConfig::paper_medium(seed)
                .with_clients(n)
                .without_dropouts(),
        )
        .exec_mode(mode)
        .simd_kernel(simd)
        .build()
}

fn assert_same(label: &str, a: &Outcome, b: &Outcome) {
    assert_eq!(
        a.final_weights, b.final_weights,
        "{label}: weights diverged"
    );
    assert_eq!(a.global_updates, b.global_updates, "{label}");
    assert_eq!(
        a.trace.points.len(),
        b.trace.points.len(),
        "{label}: trace length diverged"
    );
    for (p, q) in a.trace.points.iter().zip(b.trace.points.iter()) {
        assert_eq!(p.time, q.time, "{label}: virtual time diverged");
        assert_eq!(p.round, q.round, "{label}");
        assert_eq!(p.accuracy, q.accuracy, "{label}: accuracy diverged");
        assert_eq!(p.loss, q.loss, "{label}: loss diverged");
        assert_eq!(p.up_bytes, q.up_bytes, "{label}: uplink diverged");
        assert_eq!(p.down_bytes, q.down_bytes, "{label}: downlink diverged");
    }
}

/// The four contexts of the grid: {Speculative, Inline} × {Auto, Scalar}.
const COMBOS: [(ExecMode, SimdKernel, &str); 4] = [
    (ExecMode::Speculative, SimdKernel::Auto, "spec/auto"),
    (ExecMode::Speculative, SimdKernel::Scalar, "spec/scalar"),
    (ExecMode::Inline, SimdKernel::Auto, "inline/auto"),
    (ExecMode::Inline, SimdKernel::Scalar, "inline/scalar"),
];

#[test]
fn concurrent_runs_with_different_contexts_match_their_serial_counterparts() {
    let n = 12;
    let task = suite::sent140_like(n, 41);

    // Serial baselines, one per context, on this thread.
    let serial: Vec<Outcome> = COMBOS
        .iter()
        .map(|&(mode, simd, _)| run_experiment(&task, &cfg_with(mode, simd, n, 41)))
        .collect();

    // All four contexts at once, each from its own OS thread — the exact
    // scenario the process-global toggles used to corrupt (one run's
    // `set_exec_mode` silently flipping a concurrent run's executor).
    let concurrent: Vec<Outcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = COMBOS
            .iter()
            .map(|&(mode, simd, _)| {
                let task = &task;
                scope.spawn(move || run_experiment(task, &cfg_with(mode, simd, n, 41)))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for ((s, c), &(_, _, label)) in serial.iter().zip(concurrent.iter()).zip(COMBOS.iter()) {
        assert_same(label, c, s);
    }
    // The bit-identity contract also pins the four contexts to *each
    // other*: mode and kernel choice are performance levers, not semantics.
    for (s, &(_, _, label)) in serial.iter().skip(1).zip(COMBOS.iter().skip(1)) {
        assert_same(label, s, &serial[0]);
    }
}

#[test]
fn config_overrides_beat_the_global_default_layer() {
    // A run whose config pins Inline must stay inline even while the
    // process-wide default says Speculative: no launches may be recorded.
    let _guard = {
        let mut g = ToggleGuard::new();
        g.exec(ExecMode::Speculative);
        g
    };
    let n = 8;
    let task = suite::sent140_like(n, 43);
    let before = fedat_core::exec::speculative_launches();
    let cfg = cfg_with(ExecMode::Inline, SimdKernel::Auto, n, 43);
    let out = run_experiment(&task, &cfg);
    assert!(out.global_updates > 0);
    assert_eq!(
        fedat_core::exec::speculative_launches(),
        before,
        "an Inline-pinned run launched speculative jobs"
    );
}

#[test]
fn resolve_layers_config_over_env_defaults() {
    // ToggleGuard mutations (the test/bench default layer) are visible to
    // from_env/resolve; explicit config overrides beat them field by field.
    let mut g = ToggleGuard::new();
    g.simd(SimdKernel::Scalar).max_threads(3);
    let base = ExecCtx::from_env();
    assert_eq!(base.kernels.simd, SimdKernel::Scalar);
    assert_eq!(base.kernels.max_threads, 3);

    let cfg = ExperimentConfig::builder()
        .simd_kernel(SimdKernel::Auto)
        .max_threads(0) // clamped to 1
        .build();
    let resolved = ExecCtx::resolve(&cfg);
    assert_eq!(resolved.kernels.simd, SimdKernel::Auto, "config must win");
    assert_eq!(resolved.kernels.max_threads, 1, "zero clamps to one");
    assert_eq!(
        resolved.kernels.agg, base.kernels.agg,
        "untouched fields keep the env default"
    );
}
