//! Regression pin for the FedAsync bookkeeping migration from `HashMap`
//! to `BTreeMap` (`InflightTable.{by_client, client_of}` in
//! `strategies/mod.rs` and `dispatch_version` in `strategies/fedasync.rs`),
//! done so `fedat-lint` rule R1 can ban RandomState-seeded containers from
//! library code outright.
//!
//! All accesses were keyed, so the migration must be a bitwise no-op. At
//! migration time this was verified directly: the FNV-1a fingerprint below
//! evaluated to `0x0745704debd136ee` on both the pre-migration (`HashMap`)
//! and post-migration (`BTreeMap`) builds on the same host. The literal is
//! deliberately *not* asserted here — the trace folds in `tanh`/`exp` from
//! the platform libm, so the value is host-stable but not portable. What
//! this test pins instead is everything the fingerprint was a proxy for:
//! the run is reproducible within a process and invariant across the
//! ExecMode × worker-count sweep, i.e. nothing about the async inflight
//! bookkeeping depends on container iteration order.

use fedat_core::config::{ExperimentConfig, StrategyKind};
use fedat_core::exec::{ExecMode, ToggleGuard};
use fedat_data::suite;
use fedat_sim::fleet::ClusterConfig;
use fedat_tensor::pool;

fn fnv(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x100000001b3);
    }
}

/// The exact fingerprint used for the before/after migration check: final
/// weights, full trace (time/accuracy/loss/traffic), and the per-client
/// accuracy sweep, all at the bit level.
fn fingerprint(out: &fedat_core::Outcome) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for w in &out.final_weights {
        fnv(&mut h, &w.to_bits().to_le_bytes());
    }
    for p in &out.trace.points {
        fnv(&mut h, &p.time.to_bits().to_le_bytes());
        fnv(&mut h, &p.accuracy.to_bits().to_le_bytes());
        fnv(&mut h, &p.loss.to_bits().to_le_bytes());
        fnv(&mut h, &p.up_bytes.to_le_bytes());
        fnv(&mut h, &p.down_bytes.to_le_bytes());
    }
    for a in &out.per_client_accuracy {
        fnv(&mut h, &a.to_bits().to_le_bytes());
    }
    h
}

#[test]
fn fedasync_inflight_bookkeeping_is_order_blind() {
    pool::ensure_workers(8);
    // The migration-check scenario verbatim: staleness-weighted async
    // aggregation with enough concurrent inflight dispatches that
    // `by_client`/`client_of`/`dispatch_version` all carry several live
    // entries at once.
    let n = 12;
    let task = suite::sent140_like(n, 31);
    let cluster = ClusterConfig::paper_medium(31).with_clients(n);
    let cfg = ExperimentConfig::builder()
        .strategy(StrategyKind::FedAsync)
        .rounds(20)
        .clients_per_round(4)
        .eval_every(5)
        .seed(31)
        .cluster(cluster)
        .build();

    let run_with = |mode: ExecMode, workers: usize| {
        let mut g = ToggleGuard::new();
        g.exec(mode).max_pool_jobs(workers - 1);
        fedat_core::run_experiment(&task, &cfg)
    };

    let base = run_with(ExecMode::Speculative, 8);
    assert!(base.global_updates > 0, "run made no progress");
    assert!(base.final_weights.iter().all(|w| w.is_finite()));

    // Reproducible within the process…
    let again = run_with(ExecMode::Speculative, 8);
    assert_eq!(fingerprint(&again), fingerprint(&base));
    assert_eq!(again.final_weights, base.final_weights);

    // …and invariant across everything that would perturb map iteration
    // timing if any access were order-sensitive.
    for mode in [ExecMode::Speculative, ExecMode::Inline] {
        for workers in [1usize, 2, 8] {
            let out = run_with(mode, workers);
            assert_eq!(
                fingerprint(&out),
                fingerprint(&base),
                "FedAsync diverged under {mode:?} with {workers} workers"
            );
            assert_eq!(out.final_weights, base.final_weights);
            assert_eq!(out.per_client_accuracy, base.per_client_accuracy);
            assert_eq!(out.trace.points.len(), base.trace.points.len());
        }
    }
}
