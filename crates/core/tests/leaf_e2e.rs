//! End-to-end regression for loader-built tasks: a FEMNIST-shaped fixture
//! is generated on disk by the LEAF writer, parsed back, and trained under
//! FedAT — and the whole run (trace, traffic, final weights, per-client
//! accuracies) must be **bit-identical** across
//! `ExecMode::{Speculative, Inline}` × `SimdKernel::{Auto, Scalar}`,
//! extending the sweep contract of `strategy_behavior.rs` from synthetic
//! tasks to the disk-loaded natural-partition path.

use fedat_core::exec::{ExecMode, ToggleGuard};
use fedat_core::prelude::*;
use fedat_data::leaf::{writer, LeafBenchmark};
use fedat_data::suite::FedTask;
use fedat_sim::fleet::ClusterConfig;
use fedat_tensor::simd::SimdKernel;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new() -> Self {
        static N: AtomicUsize = AtomicUsize::new(0);
        let path = std::env::temp_dir().join(format!(
            "fedat-leaf-e2e-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&path).expect("temp dir");
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn leaf_loaded_fedat_run_is_bit_identical_across_exec_and_simd_modes() {
    let tmp = TempDir::new();
    let written = writer::write_femnist_fixture(&tmp.0, 5, 8, 31).expect("write fixture");
    let task = FedTask::from_leaf_dir(&tmp.0, LeafBenchmark::femnist(), 31).expect("load fixture");

    // The on-disk round trip itself must be bitwise before training: any
    // drift here would masquerade as an execution-mode bug below.
    assert_eq!(task.fed.num_clients(), written.fed.num_clients());
    for (a, b) in task.fed.clients.iter().zip(written.fed.clients.iter()) {
        assert_eq!(a.train.x.data(), b.train.x.data());
        assert_eq!(a.train.y, b.train.y);
        assert_eq!(a.test.x.data(), b.test.x.data());
    }

    let task = Arc::new(task);
    let cluster = ClusterConfig::paper_medium(31)
        .with_clients(task.fed.num_clients())
        .without_dropouts();
    let cfg = ExperimentConfig::builder()
        .strategy(StrategyKind::FedAt)
        .rounds(8)
        .clients_per_round(2)
        .local_epochs(1)
        .eval_every(2)
        .eval_subset(32) // capped → exercises the shuffled-subset path
        .seed(31)
        .cluster(cluster)
        .build();

    let run_with = |mode: ExecMode, kernel: SimdKernel| {
        let mut g = ToggleGuard::new();
        g.exec(mode).simd(kernel);
        run_experiment_shared(&task, &cfg)
    };

    let base = run_with(ExecMode::Speculative, SimdKernel::Auto);
    assert!(
        !base.trace.points.is_empty(),
        "the run must record a trace to pin"
    );
    assert!(base.final_weights.iter().all(|w| w.is_finite()));
    for (mode, kernel) in [
        (ExecMode::Speculative, SimdKernel::Scalar),
        (ExecMode::Inline, SimdKernel::Auto),
        (ExecMode::Inline, SimdKernel::Scalar),
    ] {
        let out = run_with(mode, kernel);
        assert_eq!(
            out.final_weights, base.final_weights,
            "final weights diverged under {mode:?}/{kernel:?}"
        );
        assert_eq!(
            out.per_client_accuracy, base.per_client_accuracy,
            "per-client sweep diverged under {mode:?}/{kernel:?}"
        );
        assert_eq!(out.global_updates, base.global_updates);
        assert_eq!(out.trace.points.len(), base.trace.points.len());
        for (p, q) in out.trace.points.iter().zip(base.trace.points.iter()) {
            assert_eq!(
                p.accuracy, q.accuracy,
                "accuracy diverged under {mode:?}/{kernel:?}"
            );
            assert_eq!(p.loss, q.loss, "loss diverged under {mode:?}/{kernel:?}");
            assert_eq!(p.time, q.time);
            assert_eq!(p.round, q.round);
            assert_eq!(p.up_bytes, q.up_bytes, "uplink traffic diverged");
            assert_eq!(p.down_bytes, q.down_bytes, "downlink traffic diverged");
        }
    }
}

#[test]
fn every_strategy_trains_on_a_leaf_loaded_task() {
    // The loader-built natural partition (uneven per-user sizes) must be a
    // first-class citizen of the whole strategy zoo, not just FedAT.
    let tmp = TempDir::new();
    writer::write_femnist_fixture(&tmp.0, 6, 8, 17).expect("write fixture");
    let task = Arc::new(
        FedTask::from_leaf_dir(&tmp.0, LeafBenchmark::femnist(), 17).expect("load fixture"),
    );
    let cluster = ClusterConfig::paper_medium(17)
        .with_clients(task.fed.num_clients())
        .without_dropouts();
    for strategy in StrategyKind::all() {
        let cfg = ExperimentConfig::builder()
            .strategy(strategy)
            .rounds(4)
            .clients_per_round(2)
            .local_epochs(1)
            .eval_every(4)
            .eval_subset(16)
            .seed(17)
            .cluster(cluster.clone())
            .build();
        let out = run_experiment_shared(&task, &cfg);
        assert!(
            out.global_updates > 0,
            "{} performed no updates on the LEAF task",
            strategy.name()
        );
        assert!(
            out.final_weights.iter().all(|w| w.is_finite()),
            "{} produced non-finite weights",
            strategy.name()
        );
        assert_eq!(out.per_client_accuracy.len(), task.fed.num_clients());
    }
}
