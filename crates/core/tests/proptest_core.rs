//! Property-based tests for aggregation and tiering invariants.

use fedat_core::aggregate::{
    aggregate_tiers, cross_tier_weights, uniform_tier_weights, weighted_client_average,
};
use fedat_core::tiering::TierAssignment;
use fedat_sim::fleet::{ClusterConfig, Fleet};
use proptest::prelude::*;

proptest! {
    #[test]
    fn cross_tier_weights_form_distribution(counts in prop::collection::vec(0u64..1000, 1..10)) {
        let w = cross_tier_weights(&counts);
        prop_assert_eq!(w.len(), counts.len());
        let s: f32 = w.iter().sum();
        prop_assert!((s - 1.0).abs() < 1e-4, "weights sum to {}", s);
        prop_assert!(w.iter().all(|&v| (0.0..=1.0 + 1e-6).contains(&v)));
    }

    #[test]
    fn cross_tier_weights_are_reversed_counts(counts in prop::collection::vec(1u64..1000, 2..8)) {
        let w = cross_tier_weights(&counts);
        let total: u64 = counts.iter().sum();
        let m = counts.len();
        for i in 0..m {
            let expect = counts[m - 1 - i] as f32 / total as f32;
            prop_assert!((w[i] - expect).abs() < 1e-5);
        }
    }

    #[test]
    fn mistier_never_empties_or_loses_clients(
        n in 2usize..60,
        m_frac in 0.0f64..1.0,
        fraction in 0.0f64..1.0,
        seed in 0u64..1000
    ) {
        // The "never empties a tier" contract of `TierAssignment::mistier`,
        // swept over cohort size, tier count and mis-tiering fraction
        // (the unit test only pins n=10/m=5). An empty tier would deadlock
        // that tier's round loop in FedAT and TiFL.
        let m = 2 + ((n - 2) as f64 * m_frac) as usize; // 2..=n
        let cfg = ClusterConfig::paper_medium(seed).with_clients(n).without_dropouts();
        let fleet = Fleet::new(&cfg, vec![48; n]);
        let mut tiers = TierAssignment::profile(&fleet, m, 3);
        tiers.mistier(fraction, seed ^ 0x9E37);
        prop_assert_eq!(tiers.num_clients(), n, "mis-tiering lost clients");
        for t in 0..m {
            prop_assert!(
                !tiers.tier(t).is_empty(),
                "tier {}/{} emptied at n={} fraction={}",
                t, m, n, fraction
            );
        }
    }

    #[test]
    fn client_average_is_convex(dim in 1usize..32, k in 1usize..8, seed in 0u64..100) {
        // The weighted average must lie inside the coordinate-wise hull.
        use fedat_tensor::rng::rng_for;
        use rand::RngExt;
        let mut rng = rng_for(seed, 1);
        let updates: Vec<(Vec<f32>, usize)> = (0..k)
            .map(|_| {
                let w: Vec<f32> = (0..dim).map(|_| rng.random::<f32>() * 4.0 - 2.0).collect();
                (w, 1 + rng.random_range(0usize..50))
            })
            .collect();
        let refs: Vec<(&[f32], usize)> = updates.iter().map(|(w, n)| (w.as_slice(), *n)).collect();
        let avg = weighted_client_average(&refs);
        for d in 0..dim {
            let lo = updates.iter().map(|(w, _)| w[d]).fold(f32::INFINITY, f32::min);
            let hi = updates.iter().map(|(w, _)| w[d]).fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(avg[d] >= lo - 1e-4 && avg[d] <= hi + 1e-4);
        }
    }

    #[test]
    fn tier_aggregation_with_uniform_weights_is_mean(tiers in 1usize..6, dim in 1usize..16) {
        let models: Vec<Vec<f32>> = (0..tiers)
            .map(|t| vec![t as f32; dim])
            .collect();
        let g = aggregate_tiers(&models, &uniform_tier_weights(tiers));
        let mean = (0..tiers).map(|t| t as f32).sum::<f32>() / tiers as f32;
        for v in g {
            prop_assert!((v - mean).abs() < 1e-5);
        }
    }

    #[test]
    fn tiering_partitions_exactly(n in 5usize..120, m in 1usize..6, seed in 0u64..50) {
        prop_assume!(m <= n);
        let cfg = ClusterConfig::paper_medium(seed).with_clients(n).without_dropouts();
        let fleet = Fleet::new(&cfg, vec![20; n]);
        let t = TierAssignment::profile(&fleet, m, 3);
        prop_assert_eq!(t.num_tiers(), m);
        prop_assert_eq!(t.num_clients(), n);
        let mut all: Vec<usize> = (0..m).flat_map(|i| t.tier(i).to_vec()).collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
        // Sizes differ by at most one.
        let sizes = t.tier_sizes();
        let (lo, hi) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        prop_assert!(hi - lo <= 1);
    }

    #[test]
    fn mistiering_preserves_population(n in 10usize..80, frac in 0.0f64..1.0, seed in 0u64..50) {
        let cfg = ClusterConfig::paper_medium(seed).with_clients(n).without_dropouts();
        let fleet = Fleet::new(&cfg, vec![20; n]);
        let mut t = TierAssignment::profile(&fleet, 5.min(n), 3);
        t.mistier(frac, seed);
        prop_assert_eq!(t.num_clients(), n, "clients lost or duplicated");
        for i in 0..t.num_tiers() {
            prop_assert!(!t.tier(i).is_empty(), "tier {} emptied", i);
        }
    }
}

#[test]
fn fedat_equals_fedavg_in_degenerate_setting() {
    // Paper §4.1: "with λ = 0, and all clients share the same latency, we
    // get one tier and FedAT becomes FedAvg." With a single tier, identical
    // delays, *equal client sizes* (so the latency-sorted tier order matches
    // FedAvg's id order and both sample the same clients), no dropouts and
    // λ=0, both methods perform bit-identical synchronous rounds.
    use fedat_compress::codec::CodecKind;
    use fedat_core::prelude::*;
    use fedat_data::federated::FederatedDataset;
    use fedat_data::partition::Partitioner;
    use fedat_data::suite::FedTask;
    use fedat_data::synth::{synth_features, FeatureSynthSpec};
    use fedat_nn::models::ModelSpec;
    use fedat_sim::latency::DelayPart;
    use fedat_tensor::rng::rng_for;

    // 12 clients × exactly 40 samples each.
    let spec = FeatureSynthSpec {
        features: 8,
        classes: 2,
        separation: 0.4,
        noise: 1.0,
    };
    let pool = synth_features(&mut rng_for(55, 1), &spec, 480);
    let parts = Partitioner::Iid.partition(&pool, 12, &mut rng_for(55, 2));
    let task = FedTask {
        name: "equal-sized".into(),
        fed: FederatedDataset::from_partitions(parts, 55),
        model: ModelSpec::Logistic {
            input: 8,
            classes: 2,
        },
        target_accuracy: 0.6,
    };
    let mut cluster = ClusterConfig::paper_medium(55)
        .with_clients(12)
        .without_dropouts();
    cluster.delay_parts = vec![DelayPart { lo: 0.0, hi: 0.0 }];
    cluster.part_sizes = Some(vec![12]);
    let cfg = |strategy| {
        ExperimentConfig::builder()
            .strategy(strategy)
            .rounds(12)
            .clients_per_round(4)
            .local_epochs(1)
            .lambda(0.0)
            .num_tiers(1)
            .codec(CodecKind::None)
            .eval_every(1)
            .seed(55)
            .cluster(cluster.clone())
            .build()
    };
    let avg = fedat_core::run_experiment(&task, &cfg(StrategyKind::FedAvg));
    let fat = fedat_core::run_experiment(&task, &cfg(StrategyKind::FedAt));
    assert_eq!(
        avg.final_weights, fat.final_weights,
        "one-tier λ=0 FedAT must reduce to FedAvg exactly"
    );
    assert_eq!(avg.trace.points.len(), fat.trace.points.len());
    for (a, b) in avg.trace.points.iter().zip(fat.trace.points.iter()) {
        assert_eq!(a.accuracy, b.accuracy);
        assert_eq!(a.up_bytes, b.up_bytes);
    }
}
