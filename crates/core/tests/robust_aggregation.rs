//! Property-based determinism pins for the robust aggregation rules.
//!
//! The guard layer's bit-identity contract says the aggregate is a pure
//! function of the landed updates' *values* in virtual time — so
//! `TrimmedMean` and `CoordinateMedian` must return the same bits for any
//! kernel-pool width, and (because the per-coordinate sort imposes a total
//! order) must not care in which order the cohort's updates arrived.

use fedat_core::aggregate::{aggregate_clients_into, AggRule};
use fedat_core::exec::ToggleGuard;
use fedat_tensor::pool;
use fedat_tensor::rng::rng_for;
use proptest::prelude::*;
use rand::RngExt;

/// Deterministic pseudo-random cohort: `k` client models of `dim`
/// coordinates with non-uniform sample counts, including the occasional
/// tied coordinate (ties are where an unstable sort could diverge).
fn cohort(dim: usize, k: usize, seed: u64) -> Vec<(Vec<f32>, usize)> {
    let mut rng = rng_for(seed, 3);
    (0..k)
        .map(|_| {
            let w: Vec<f32> = (0..dim)
                .map(|_| {
                    // Quantize one value in four so equal values across
                    // clients actually occur.
                    let v = rng.random::<f32>() * 8.0 - 4.0;
                    if rng.random::<f32>() < 0.25 {
                        (v * 2.0).round() / 2.0
                    } else {
                        v
                    }
                })
                .collect();
            (w, 1 + rng.random_range(0usize..50))
        })
        .collect()
}

fn reduce(rule: AggRule, updates: &[(Vec<f32>, usize)]) -> Vec<f32> {
    let refs: Vec<(&[f32], usize)> = updates.iter().map(|(w, n)| (w.as_slice(), *n)).collect();
    let mut out = Vec::new();
    aggregate_clients_into(rule, &refs, &mut out);
    out
}

proptest! {
    #[test]
    fn robust_rules_are_bit_identical_across_worker_counts(
        dim in 1usize..96,
        k in 1usize..12,
        seed in 0u64..500,
        frac in 0.0f64..0.49
    ) {
        pool::ensure_workers(8);
        let updates = cohort(dim, k, seed);
        for rule in [AggRule::TrimmedMean { frac }, AggRule::CoordinateMedian] {
            let base = reduce(rule, &updates);
            prop_assert_eq!(base.len(), dim);
            prop_assert!(base.iter().all(|v| v.is_finite()));
            for workers in [1usize, 2, 4, 8] {
                let mut g = ToggleGuard::new();
                g.max_pool_jobs(workers - 1);
                let out = reduce(rule, &updates);
                prop_assert_eq!(
                    &out, &base,
                    "{:?} diverged at {} workers", rule, workers
                );
            }
        }
    }

    #[test]
    fn robust_rules_are_invariant_under_update_permutation(
        dim in 1usize..64,
        k in 2usize..12,
        seed in 0u64..500,
        frac in 0.0f64..0.49,
        rot in 1usize..12
    ) {
        // A rotation composed with a swap reaches enough of the symmetric
        // group to catch order-dependence; the weighted mean (checked last)
        // is *also* order-invariant only because its accumulation order is
        // index-stable, so it is deliberately not part of this contract.
        let updates = cohort(dim, k, seed);
        let mut shuffled = updates.clone();
        shuffled.rotate_left(rot % k);
        shuffled.swap(0, k / 2);
        for rule in [AggRule::TrimmedMean { frac }, AggRule::CoordinateMedian] {
            let a = reduce(rule, &updates);
            let b = reduce(rule, &shuffled);
            prop_assert_eq!(&a, &b, "{:?} depends on client arrival order", rule);
        }
    }

    #[test]
    fn trimmed_mean_and_median_lie_in_the_coordinate_hull(
        dim in 1usize..48,
        k in 1usize..10,
        seed in 0u64..500,
        frac in 0.0f64..0.49
    ) {
        let updates = cohort(dim, k, seed);
        for rule in [AggRule::TrimmedMean { frac }, AggRule::CoordinateMedian] {
            let out = reduce(rule, &updates);
            for d in 0..dim {
                let lo = updates.iter().map(|(w, _)| w[d]).fold(f32::INFINITY, f32::min);
                let hi = updates.iter().map(|(w, _)| w[d]).fold(f32::NEG_INFINITY, f32::max);
                prop_assert!(
                    out[d] >= lo - 1e-4 && out[d] <= hi + 1e-4,
                    "{:?} left the hull at coordinate {}: {} not in [{}, {}]",
                    rule, d, out[d], lo, hi
                );
            }
        }
    }
}
