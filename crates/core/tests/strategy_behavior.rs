//! Behavioral tests of the six strategies: the mechanism-level claims the
//! paper makes about each method, checked on small federations.

use fedat_core::prelude::*;
use fedat_core::strategies::{build_strategy, Strategy};
use fedat_data::suite;
use fedat_sim::fleet::{ClusterConfig, Fleet};
use fedat_sim::runtime::{run, EventHandler, RunLimits};
use std::sync::Arc;

/// Serializes the tests that flip the process-global `ExecMode`. Unlike
/// the kernel/thread-count globals (whose cross-test races are harmless
/// because result invariance is exactly the property under test), the
/// dropout-discard test asserts a *side effect* of speculative mode — the
/// discard counter moving — which a concurrently running test holding
/// `ExecMode::Inline` could suppress.
static EXEC_MODE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn cfg(strategy: StrategyKind, rounds: u64, seed: u64, cluster: ClusterConfig) -> ExperimentConfig {
    ExperimentConfig::builder()
        .strategy(strategy)
        .rounds(rounds)
        .clients_per_round(3)
        .local_epochs(1)
        .eval_every(5)
        .seed(seed)
        .cluster(cluster)
        .build()
}

/// Runs a strategy and returns it for post-hoc inspection.
fn run_strategy(
    strategy: StrategyKind,
    rounds: u64,
    seed: u64,
    n_clients: usize,
) -> (Box<dyn Strategy>, fedat_data::suite::FedTask) {
    let task = suite::sent140_like(n_clients, seed);
    let cluster = ClusterConfig::paper_medium(seed)
        .with_clients(n_clients)
        .without_dropouts();
    let c = cfg(strategy, rounds, seed, cluster.clone());
    let fleet = Fleet::new(&cluster, task.fed.client_sizes());
    let exec = fedat_core::exec::ExecCtx::resolve(&c);
    let _overlay = exec.enter();
    let mut s = build_strategy(Arc::new(task.clone()), &c, &fleet, exec);
    {
        let h: &mut dyn EventHandler = &mut *s;
        run(h, &fleet, seed, RunLimits::default());
    }
    s.flush_evals();
    (s, task)
}

#[test]
fn fedavg_performs_exactly_the_requested_rounds() {
    let (s, _) = run_strategy(StrategyKind::FedAvg, 17, 3, 15);
    assert_eq!(s.global_updates(), 17);
}

#[test]
fn fedat_tier_updates_sum_to_global_updates() {
    let (s, _) = run_strategy(StrategyKind::FedAt, 40, 5, 20);
    assert_eq!(s.global_updates(), 40);
    // The trace must be monotone in round number.
    let t = s.trace();
    for w in t.points.windows(2) {
        assert!(w[1].round >= w[0].round);
    }
}

#[test]
fn fedat_time_per_update_beats_fedavg() {
    // Each FedAT update waits only for one tier's stragglers; FedAvg waits
    // for the slowest of a cross-tier cohort. Mean virtual time per global
    // update must therefore be smaller for FedAT.
    let (avg, _) = run_strategy(StrategyKind::FedAvg, 20, 7, 25);
    let (fat, _) = run_strategy(StrategyKind::FedAt, 60, 7, 25);
    let per_update = |s: &dyn Strategy| {
        let t = s.trace();
        t.points.last().unwrap().time / s.global_updates() as f64
    };
    assert!(
        per_update(&*fat) < per_update(&*avg),
        "FedAT {}s/update should beat FedAvg {}s/update",
        per_update(&*fat),
        per_update(&*avg)
    );
}

#[test]
fn async_strategies_update_far_more_often_per_virtual_second() {
    let (asy, _) = run_strategy(StrategyKind::FedAsync, 30, 9, 25);
    let (avg, _) = run_strategy(StrategyKind::FedAvg, 30, 9, 25);
    let rate = |s: &dyn Strategy| {
        s.global_updates() as f64 / s.trace().points.last().unwrap().time.max(1.0)
    };
    assert!(
        rate(&*asy) > rate(&*avg) * 2.0,
        "FedAsync update rate {} should dwarf FedAvg's {}",
        rate(&*asy),
        rate(&*avg)
    );
}

#[test]
fn variance_checkpoints_are_recorded() {
    let (s, _) = run_strategy(StrategyKind::FedAt, 60, 11, 20);
    assert!(
        !s.variance_checkpoints().is_empty(),
        "long runs must sample the variance metric"
    );
    for &v in s.variance_checkpoints() {
        assert!(
            (0.0..=0.25).contains(&v),
            "client-accuracy variance {v} out of range"
        );
    }
}

#[test]
fn uniform_and_weighted_fedat_diverge() {
    // Fig. 6's premise: the aggregation scheme changes the trajectory.
    let task = suite::sent140_like(20, 13);
    let cluster = ClusterConfig::paper_medium(13)
        .with_clients(20)
        .without_dropouts();
    let mut wcfg = cfg(StrategyKind::FedAt, 30, 13, cluster.clone());
    wcfg.uniform_tier_weights = false;
    let mut ucfg = cfg(StrategyKind::FedAt, 30, 13, cluster);
    ucfg.uniform_tier_weights = true;
    let w = fedat_core::run_experiment(&task, &wcfg);
    let u = fedat_core::run_experiment(&task, &ucfg);
    assert_ne!(
        w.final_weights, u.final_weights,
        "aggregation scheme must affect the model"
    );
}

#[test]
fn mistiering_changes_fedat_little_more_than_noise() {
    // §2.1: FedAT tolerates mis-profiled clients. A 30% mis-tiering should
    // not collapse accuracy.
    let task = suite::sent140_like(25, 15);
    let cluster = ClusterConfig::paper_medium(15)
        .with_clients(25)
        .without_dropouts();
    let clean_cfg = cfg(StrategyKind::FedAt, 50, 15, cluster.clone());
    let mut noisy_cfg = cfg(StrategyKind::FedAt, 50, 15, cluster);
    noisy_cfg.mistier_fraction = 0.3;
    let clean = fedat_core::run_experiment(&task, &clean_cfg);
    let noisy = fedat_core::run_experiment(&task, &noisy_cfg);
    assert!(
        noisy.best_accuracy() > clean.best_accuracy() - 0.1,
        "mis-tiering collapsed FedAT: {} vs {}",
        noisy.best_accuracy(),
        clean.best_accuracy()
    );
}

#[test]
fn compression_codec_flows_into_traffic_totals() {
    use fedat_compress::codec::CodecKind;
    let task = suite::sent140_like(15, 17);
    let cluster = ClusterConfig::paper_medium(17)
        .with_clients(15)
        .without_dropouts();
    // Note: trained logistic weights reach magnitude ≈2, where precision 6
    // needs 5 polyline bytes per value and *loses* to raw — so the
    // comparison uses p4 and p3, which stay below 4 B/value.
    let sizes: Vec<u64> = [
        CodecKind::None,
        CodecKind::Polyline {
            precision: 4,
            delta: true,
        },
        CodecKind::Polyline {
            precision: 3,
            delta: true,
        },
    ]
    .into_iter()
    .map(|k| {
        let mut c = cfg(StrategyKind::FedAt, 20, 17, cluster.clone());
        c.codec = Some(k);
        let out = fedat_core::run_experiment(&task, &c);
        out.trace.points.last().unwrap().up_bytes
    })
    .collect();
    assert!(sizes[0] > sizes[1], "p4 must beat raw: {sizes:?}");
    assert!(sizes[1] > sizes[2], "p3 must beat p4: {sizes:?}");
}

#[test]
fn total_dropout_starves_but_terminates() {
    // Failure injection: every client is unstable and drops within 60 s.
    // Strategies must terminate (starved or budget) without panicking.
    let n = 12;
    let task = suite::sent140_like(n, 19);
    let mut cluster = ClusterConfig::paper_medium(19).with_clients(n);
    cluster.n_unstable = n;
    cluster.dropout_horizon = 60.0;
    for strategy in StrategyKind::all() {
        let mut c = cfg(strategy, 1000, 19, cluster.clone());
        c.max_time = 5000.0;
        let out = fedat_core::run_experiment(&task, &c);
        assert!(
            out.report.end_time <= 5000.0,
            "{} ran past the horizon",
            strategy.name()
        );
        assert!(out.final_weights.iter().all(|w| w.is_finite()));
    }
}

#[test]
fn fedat_trace_is_bit_identical_across_aggregation_thread_counts() {
    // The parallel server path — sharded aggregation, pooled streaming
    // evaluation, per-client sweeps — must be invisible to results: the
    // whole accuracy/loss/time trace, the final weights and the per-client
    // accuracies are pinned bitwise across kernel thread counts.
    let n = 15;
    let task = suite::cifar10_like(n, 2, 23);
    let cluster = ClusterConfig::paper_medium(23)
        .with_clients(n)
        .without_dropouts();
    let mut c = cfg(StrategyKind::FedAt, 10, 23, cluster);
    c.eval_every = 2;
    c.eval_subset = 48; // capped → exercises the shuffled-subset path too
    let run_at = |threads: usize| {
        let mut g = fedat_core::exec::ToggleGuard::new();
        g.max_threads(threads);
        fedat_core::run_experiment(&task, &c)
    };
    let base = run_at(1);
    assert!(!base.trace.points.is_empty());
    for threads in [2usize, 4, 8] {
        let out = run_at(threads);
        assert_eq!(
            out.final_weights, base.final_weights,
            "final weights diverged at {threads} threads"
        );
        assert_eq!(
            out.per_client_accuracy, base.per_client_accuracy,
            "per-client sweep diverged at {threads} threads"
        );
        assert_eq!(out.trace.points.len(), base.trace.points.len());
        for (p, q) in out.trace.points.iter().zip(base.trace.points.iter()) {
            assert_eq!(
                p.accuracy, q.accuracy,
                "accuracy diverged at {threads} threads"
            );
            assert_eq!(p.loss, q.loss, "loss diverged at {threads} threads");
            assert_eq!(p.time, q.time);
            assert_eq!(p.up_bytes, q.up_bytes);
        }
    }
    // The speculative executor must be equally invisible: the whole trace
    // is pinned across ExecMode::{Speculative, Inline} × pool-worker
    // counts {1, 2, 4, 8}. Workers are grown explicitly so the sweep is
    // real even on single-core hosts, and the job cap emulates the smaller
    // counts; neither can change a bit because training jobs are pure and
    // virtual time never observes where they ran.
    {
        use fedat_core::exec::{ExecMode, ToggleGuard};
        use fedat_tensor::pool;
        let _exec_guard = EXEC_MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        pool::ensure_workers(8);
        for mode in [ExecMode::Speculative, ExecMode::Inline] {
            for workers in [1usize, 2, 4, 8] {
                let mut g = ToggleGuard::new();
                // "W workers" = the joining main thread + W−1 pool helpers.
                g.exec(mode).max_pool_jobs(workers - 1);
                let out = run_at(1);
                drop(g);
                assert_eq!(
                    out.final_weights, base.final_weights,
                    "final weights diverged under {mode:?} with {workers} workers"
                );
                assert_eq!(out.per_client_accuracy, base.per_client_accuracy);
                assert_eq!(out.trace.points.len(), base.trace.points.len());
                for (p, q) in out.trace.points.iter().zip(base.trace.points.iter()) {
                    assert_eq!(
                        p.accuracy, q.accuracy,
                        "accuracy diverged under {mode:?} with {workers} workers"
                    );
                    assert_eq!(p.loss, q.loss);
                    assert_eq!(p.time, q.time);
                    assert_eq!(p.up_bytes, q.up_bytes);
                    assert_eq!(p.down_bytes, q.down_bytes);
                }
            }
        }
    }
    // The SIMD micro-kernel layer must be equally invisible: the whole
    // trace is pinned under the forced-scalar kernel too. The guard
    // restores the entry kernel (not a hard-coded Auto) so the
    // FEDAT_SIMD=scalar CI lane keeps its scalar coverage for tests
    // scheduled after this one.
    use fedat_tensor::simd::SimdKernel;
    let scalar = {
        let mut g = fedat_core::exec::ToggleGuard::new();
        g.simd(SimdKernel::Scalar);
        run_at(1)
    };
    assert_eq!(
        scalar.final_weights, base.final_weights,
        "final weights diverged under SimdKernel::Scalar"
    );
    assert_eq!(scalar.per_client_accuracy, base.per_client_accuracy);
    assert_eq!(scalar.trace.points.len(), base.trace.points.len());
    for (p, q) in scalar.trace.points.iter().zip(base.trace.points.iter()) {
        assert_eq!(
            p.accuracy, q.accuracy,
            "accuracy diverged under SimdKernel::Scalar"
        );
        assert_eq!(p.loss, q.loss);
        assert_eq!(p.time, q.time);
    }
}

#[test]
fn speculative_dropout_discards_are_trace_invisible() {
    // A client that drops mid-compute or mid-upload has its speculative
    // training job's result *discarded* — the run must be bit-identical to
    // ExecMode::Inline in every observable: the whole trace (accuracy,
    // loss, virtual time, uplink/downlink byte counters), the final
    // weights and the per-client accuracies. The cluster here keeps every
    // client unstable over a horizon shorter than the run, so both
    // mid-compute and mid-upload losses occur (dispatches outlive their
    // clients while uploads race the dropout clock).
    use fedat_core::exec::{speculative_discards, ExecMode, ToggleGuard};
    use fedat_tensor::pool;
    let _exec_guard = EXEC_MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    pool::ensure_workers(4);
    let n = 14;
    let task = suite::sent140_like(n, 29);
    let mut cluster = ClusterConfig::paper_medium(29).with_clients(n);
    cluster.n_unstable = n / 2; // half the fleet drops out mid-run
    cluster.dropout_horizon = 400.0;
    let mut c = cfg(StrategyKind::FedAt, 200, 29, cluster);
    c.max_time = 2000.0;
    c.eval_every = 10;
    let run_with = |mode: ExecMode| {
        let mut g = ToggleGuard::new();
        g.exec(mode);
        fedat_core::run_experiment(&task, &c)
    };
    let discards_before = speculative_discards();
    let spec = run_with(ExecMode::Speculative);
    assert!(
        speculative_discards() > discards_before,
        "the unstable cluster must have produced at least one discarded \
         speculative result — the scenario no longer exercises the path"
    );
    let inline = run_with(ExecMode::Inline);
    assert_eq!(
        spec.final_weights, inline.final_weights,
        "dropout discards leaked into the final weights"
    );
    assert_eq!(spec.per_client_accuracy, inline.per_client_accuracy);
    assert_eq!(spec.global_updates, inline.global_updates);
    assert_eq!(spec.report.end_time, inline.report.end_time);
    assert_eq!(spec.trace.points.len(), inline.trace.points.len());
    for (p, q) in spec.trace.points.iter().zip(inline.trace.points.iter()) {
        assert_eq!(p.accuracy, q.accuracy);
        assert_eq!(p.loss, q.loss);
        assert_eq!(p.time, q.time);
        assert_eq!(p.round, q.round);
        assert_eq!(p.up_bytes, q.up_bytes, "uplink traffic diverged");
        assert_eq!(p.down_bytes, q.down_bytes, "downlink traffic diverged");
    }
}

#[test]
fn fedasync_mixing_is_bit_identical_across_simd_and_threads() {
    // FedAsync's server mixing (`lerp_into` over the full model on every
    // arrival) runs sharded on the kernel pool with the vectorized inner
    // loop: neither the SIMD kernel nor the thread count may change a bit
    // of the trace or the final model.
    use fedat_core::exec::ToggleGuard;
    use fedat_tensor::simd::SimdKernel;
    let n = 12;
    let task = suite::sent140_like(n, 31);
    let cluster = ClusterConfig::paper_medium(31)
        .with_clients(n)
        .without_dropouts();
    let c = cfg(StrategyKind::FedAsync, 20, 31, cluster);
    let run_with = |kernel: SimdKernel, threads: usize| {
        let mut g = ToggleGuard::new();
        g.simd(kernel).max_threads(threads);
        fedat_core::run_experiment(&task, &c)
    };
    let base = run_with(SimdKernel::Auto, 1);
    assert!(!base.trace.points.is_empty());
    for (kernel, threads) in [
        (SimdKernel::Auto, 4),
        (SimdKernel::Scalar, 1),
        (SimdKernel::Scalar, 4),
    ] {
        let out = run_with(kernel, threads);
        assert_eq!(
            out.final_weights, base.final_weights,
            "FedAsync weights diverged under {kernel:?} at {threads} threads"
        );
        assert_eq!(out.trace.points.len(), base.trace.points.len());
        for (p, q) in out.trace.points.iter().zip(base.trace.points.iter()) {
            assert_eq!(p.accuracy, q.accuracy);
            assert_eq!(p.loss, q.loss);
            assert_eq!(p.time, q.time);
        }
    }
}
