//! Property tests for [`fedat_core::exec::ToggleGuard`]: under *any*
//! interleaving of guard creation, toggle mutation, and guard drop — LIFO
//! nesting, FIFO draining, or arbitrary shuffles — once every guard is
//! gone, every process-global toggle is back at its pre-first-guard value.
//!
//! This is the contract that lets `fedat-lint` rule R5 forbid raw toggle
//! setters in tests: a guard can be stashed in a collection, dropped by a
//! panicking proptest shrink, or released in whatever order the test finds
//! convenient, and the process defaults still survive.

use fedat_core::exec::{exec_mode, ExecMode, ToggleGuard};
use fedat_tensor::ops::{agg_kernel, nt_kernel, AggKernel, NtKernel};
use fedat_tensor::parallel::max_threads;
use fedat_tensor::pool::max_pool_jobs;
use fedat_tensor::simd::{portable_only, simd_kernel, SimdKernel};
use proptest::prelude::*;

/// Serializes every test in this binary: they all mutate and then assert
/// on the same process-global toggles.
static TOGGLE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Snapshot of every toggle the guard manages (spawn mode is covered by
/// the deterministic test below; it stays at its default here so the
/// proptest can't leave the pool in scoped-spawn mode on failure).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Snapshot {
    exec: ExecMode,
    simd: SimdKernel,
    agg: AggKernel,
    nt: NtKernel,
    portable: bool,
    threads: usize,
    pool_jobs: usize,
}

fn snapshot() -> Snapshot {
    Snapshot {
        exec: exec_mode(),
        simd: simd_kernel(),
        agg: agg_kernel(),
        nt: nt_kernel(),
        portable: portable_only(),
        threads: max_threads(),
        pool_jobs: max_pool_jobs(),
    }
}

/// One step of the guard workout. Indices are taken modulo the number of
/// live guards (or guard slots), so every generated sequence is valid.
#[derive(Debug, Clone, Copy)]
enum Op {
    Create,
    SetExec(usize, bool),
    SetSimd(usize, bool),
    SetAgg(usize, bool),
    SetNt(usize, bool),
    SetPortable(usize, bool),
    SetThreads(usize, usize),
    SetPoolJobs(usize, usize),
    Drop(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Tagged-tuple encoding (the vendored proptest has no `prop_oneof`):
    // two tags apiece for Create and Drop so interleavings stay lively.
    (0u8..11, any::<usize>(), 0usize..8, any::<bool>()).prop_map(|(tag, i, n, b)| match tag {
        0 | 1 => Op::Create,
        2 => Op::SetExec(i, b),
        3 => Op::SetSimd(i, b),
        4 => Op::SetAgg(i, b),
        5 => Op::SetNt(i, b),
        6 => Op::SetPortable(i, b),
        7 => Op::SetThreads(i, n + 1),
        8 => Op::SetPoolJobs(i, n),
        _ => Op::Drop(i),
    })
}

proptest! {
    #[test]
    fn any_interleaving_of_guards_restores_every_toggle(
        ops in prop::collection::vec(op_strategy(), 1..40)
    ) {
        let _lock = TOGGLE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let entry = snapshot();
        let mut guards: Vec<ToggleGuard> = Vec::new();
        for op in ops {
            let live = guards.len();
            match op {
                Op::Create => guards.push(ToggleGuard::new()),
                Op::Drop(i) if live > 0 => {
                    guards.swap_remove(i % live);
                }
                Op::Drop(_) => {}
                _ if live == 0 => {}
                Op::SetExec(i, b) => {
                    guards[i % live].exec(if b { ExecMode::Inline } else { ExecMode::Speculative });
                }
                Op::SetSimd(i, b) => {
                    guards[i % live].simd(if b { SimdKernel::Scalar } else { SimdKernel::Auto });
                }
                Op::SetAgg(i, b) => {
                    guards[i % live].agg(if b {
                        AggKernel::FusedSerial
                    } else {
                        AggKernel::ShardedAxpy
                    });
                }
                Op::SetNt(i, b) => {
                    guards[i % live].nt(if b {
                        NtKernel::DotProduct
                    } else {
                        NtKernel::TransposedScratch
                    });
                }
                Op::SetPortable(i, b) => {
                    guards[i % live].portable_only(b);
                }
                Op::SetThreads(i, n) => {
                    guards[i % live].max_threads(n);
                }
                Op::SetPoolJobs(i, n) => {
                    guards[i % live].max_pool_jobs(n);
                }
            }
        }
        // `swap_remove` above already dropped guards in arbitrary order
        // relative to creation; this drops the survivors newest-first.
        guards.clear();
        prop_assert_eq!(snapshot(), entry, "a toggle leaked past the last guard");
    }
}

/// The specific hazard the restore stacks exist for: dropping an *outer*
/// guard before an *inner* one must not resurrect the outer guard's value.
#[test]
fn out_of_order_drop_restores_the_process_default() {
    let _lock = TOGGLE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let entry = exec_mode();
    let flipped = match entry {
        ExecMode::Speculative => ExecMode::Inline,
        ExecMode::Inline => ExecMode::Speculative,
    };

    let mut a = ToggleGuard::new();
    a.exec(flipped);
    let mut b = ToggleGuard::new();
    b.exec(entry);
    assert_eq!(exec_mode(), entry);
    // Outer guard first: b inherits a's prior (the true entry value)…
    drop(a);
    assert_eq!(
        exec_mode(),
        entry,
        "dropping the outer guard moved the toggle"
    );
    // …so the last guard standing restores the entry value, not `flipped`.
    drop(b);
    assert_eq!(exec_mode(), entry, "stranded the intermediate value");
}

/// Spawn-mode coverage (kept out of the proptest so a failure there can
/// never leave the whole binary running in scoped-spawn mode).
#[test]
fn spawn_mode_round_trips_through_a_guard() {
    use fedat_tensor::parallel::{spawn_mode, SpawnMode};
    let _lock = TOGGLE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let entry = spawn_mode();
    {
        let mut g = ToggleGuard::new();
        g.spawn_mode(SpawnMode::ScopedSpawn);
        assert_eq!(spawn_mode(), SpawnMode::ScopedSpawn);
        g.spawn_mode(SpawnMode::PersistentPool);
    }
    assert_eq!(spawn_mode(), entry);
}

/// A guard that sets the same toggle many times still restores the value
/// captured at its *first* touch, not any intermediate one.
#[test]
fn repeated_sets_through_one_guard_restore_the_first_prior() {
    let _lock = TOGGLE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let entry = snapshot();
    {
        let mut g = ToggleGuard::new();
        for n in 1..=8 {
            g.max_threads(n).simd(if n % 2 == 0 {
                SimdKernel::Scalar
            } else {
                SimdKernel::Auto
            });
        }
    }
    assert_eq!(snapshot(), entry);
}
