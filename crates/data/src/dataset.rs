//! The labelled dataset container.

use fedat_tensor::rng::shuffle;
use fedat_tensor::Tensor;
use rand::Rng;

/// A labelled dataset: a `[rows, features]` tensor plus integer targets.
///
/// For classification `targets_per_row == 1`; for language modelling each
/// row is a token sequence and `targets_per_row == seq_len` (one next-token
/// target per position).
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Features, one sample (or sequence) per row.
    pub x: Tensor,
    /// Targets in row order; `rows · targets_per_row` entries.
    pub y: Vec<u32>,
    /// Number of distinct classes (or vocabulary size for LM tasks).
    pub classes: usize,
    /// Targets per feature row (1 for classification).
    pub targets_per_row: usize,
}

impl Dataset {
    /// Builds a classification dataset (`targets_per_row = 1`).
    ///
    /// # Panics
    /// Panics if row/target counts disagree or a label is out of range.
    pub fn new(x: Tensor, y: Vec<u32>, classes: usize) -> Self {
        Self::with_stride(x, y, classes, 1)
    }

    /// Builds a dataset with `targets_per_row` targets per row.
    pub fn with_stride(x: Tensor, y: Vec<u32>, classes: usize, targets_per_row: usize) -> Self {
        let (rows, _) = x.shape().as_matrix();
        assert!(targets_per_row > 0, "targets_per_row must be positive");
        assert_eq!(y.len(), rows * targets_per_row, "target count mismatch");
        assert!(
            y.iter().all(|&t| (t as usize) < classes),
            "label out of range for {classes} classes"
        );
        Dataset {
            x,
            y,
            classes,
            targets_per_row,
        }
    }

    /// Number of feature rows.
    pub fn len(&self) -> usize {
        self.x.shape().as_matrix().0
    }

    /// True if the dataset has no rows (never constructible; kept for API
    /// completeness).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Feature count per row.
    pub fn features(&self) -> usize {
        self.x.shape().as_matrix().1
    }

    /// A new dataset containing the given rows (in the given order).
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let cols = self.features();
        let tpr = self.targets_per_row;
        let mut xs = Vec::with_capacity(indices.len() * cols);
        let mut ys = Vec::with_capacity(indices.len() * tpr);
        for &i in indices {
            xs.extend_from_slice(self.x.row(i));
            ys.extend_from_slice(&self.y[i * tpr..(i + 1) * tpr]);
        }
        Dataset {
            x: Tensor::from_vec(xs, &[indices.len(), cols]),
            y: ys,
            classes: self.classes,
            targets_per_row: tpr,
        }
    }

    /// Splits into `(first, second)` with `frac` of rows (rounded down, at
    /// least one in each side) going to `first`, after a seeded shuffle.
    pub fn split<R: Rng + ?Sized>(&self, frac: f64, rng: &mut R) -> (Dataset, Dataset) {
        let n = self.len();
        assert!(n >= 2, "cannot split a dataset with {n} rows");
        let mut idx: Vec<usize> = (0..n).collect();
        shuffle(rng, &mut idx);
        let cut = ((n as f64 * frac) as usize).clamp(1, n - 1);
        (self.subset(&idx[..cut]), self.subset(&idx[cut..]))
    }

    /// Concatenates datasets with identical schema.
    ///
    /// # Panics
    /// Panics if schemas differ or the list is empty.
    pub fn concat(parts: &[&Dataset]) -> Dataset {
        assert!(!parts.is_empty(), "concat of zero datasets");
        let first = parts[0];
        let cols = first.features();
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for p in parts {
            assert_eq!(p.features(), cols, "feature mismatch in concat");
            assert_eq!(p.classes, first.classes, "class-count mismatch in concat");
            assert_eq!(
                p.targets_per_row, first.targets_per_row,
                "stride mismatch in concat"
            );
            xs.extend_from_slice(p.x.data());
            ys.extend_from_slice(&p.y);
        }
        Dataset {
            x: Tensor::from_vec(xs, &[ys.len() / first.targets_per_row, cols]),
            y: ys,
            classes: first.classes,
            targets_per_row: first.targets_per_row,
        }
    }

    /// Histogram of labels (length `classes`).
    pub fn label_histogram(&self) -> Vec<usize> {
        let mut h = vec![0usize; self.classes];
        for &t in &self.y {
            h[t as usize] += 1;
        }
        h
    }

    /// Number of distinct labels present.
    pub fn distinct_labels(&self) -> usize {
        self.label_histogram().iter().filter(|&&c| c > 0).count()
    }

    /// Deterministic mini-batch schedule: shuffles row indices with `rng`
    /// and chunks them into batches of `batch_size` (last batch may be
    /// short). The paper fixes a pseudo-random schedule per client so
    /// repeated selections are comparable across FL methods (§6).
    pub fn batch_schedule<R: Rng + ?Sized>(
        &self,
        batch_size: usize,
        rng: &mut R,
    ) -> Vec<Vec<usize>> {
        assert!(batch_size > 0, "batch_size must be positive");
        let mut idx: Vec<usize> = (0..self.len()).collect();
        shuffle(rng, &mut idx);
        idx.chunks(batch_size).map(|c| c.to_vec()).collect()
    }

    /// Materializes a batch `(x, y)` from row indices.
    pub fn gather_batch(&self, indices: &[usize]) -> (Tensor, Vec<u32>) {
        let sub = self.subset(indices);
        (sub.x, sub.y)
    }

    /// Materializes a batch without allocating: the feature tensor comes
    /// from the thread-local scratch arena (recycle it after the step) and
    /// the targets are written into the caller's reusable buffer.
    pub fn gather_batch_into(&self, indices: &[usize], y_out: &mut Vec<u32>) -> Tensor {
        let cols = self.features();
        let tpr = self.targets_per_row;
        let mut xs = fedat_tensor::scratch::take_zeroed(indices.len() * cols);
        y_out.clear();
        y_out.reserve(indices.len() * tpr);
        for (r, &i) in indices.iter().enumerate() {
            xs[r * cols..(r + 1) * cols].copy_from_slice(self.x.row(i));
            y_out.extend_from_slice(&self.y[i * tpr..(i + 1) * tpr]);
        }
        Tensor::from_vec(xs, &[indices.len(), cols])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedat_tensor::rng::rng_for;

    fn toy(n: usize) -> Dataset {
        let x = Tensor::from_vec((0..n * 2).map(|v| v as f32).collect(), &[n, 2]);
        let y = (0..n as u32).map(|v| v % 3).collect();
        Dataset::new(x, y, 3)
    }

    #[test]
    fn subset_preserves_rows() {
        let d = toy(10);
        let s = d.subset(&[3, 7]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.x.row(0), d.x.row(3));
        assert_eq!(s.x.row(1), d.x.row(7));
        assert_eq!(s.y, vec![d.y[3], d.y[7]]);
    }

    #[test]
    fn split_partitions_rows() {
        let d = toy(20);
        let mut rng = rng_for(1, 1);
        let (a, b) = d.split(0.8, &mut rng);
        assert_eq!(a.len(), 16);
        assert_eq!(b.len(), 4);
        // Every original row appears exactly once across the two halves.
        let mut seen: Vec<f32> =
            a.x.data()
                .chunks(2)
                .chain(b.x.data().chunks(2))
                .map(|r| r[0])
                .collect();
        seen.sort_by(|p, q| p.partial_cmp(q).unwrap());
        let expected: Vec<f32> = (0..20).map(|i| (i * 2) as f32).collect();
        assert_eq!(seen, expected);
    }

    #[test]
    fn concat_restores_total() {
        let d = toy(9);
        let a = d.subset(&[0, 1, 2]);
        let b = d.subset(&[3, 4, 5, 6, 7, 8]);
        let c = Dataset::concat(&[&a, &b]);
        assert_eq!(c.len(), 9);
        assert_eq!(c.x.data(), d.x.data());
    }

    #[test]
    fn histogram_counts_labels() {
        let d = toy(9);
        assert_eq!(d.label_histogram(), vec![3, 3, 3]);
        assert_eq!(d.distinct_labels(), 3);
    }

    #[test]
    fn batch_schedule_covers_all_rows_once() {
        let d = toy(11);
        let mut rng = rng_for(2, 2);
        let sched = d.batch_schedule(4, &mut rng);
        assert_eq!(sched.len(), 3);
        assert_eq!(sched[2].len(), 3);
        let mut all: Vec<usize> = sched.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..11).collect::<Vec<_>>());
    }

    #[test]
    fn batch_schedule_is_seed_deterministic() {
        let d = toy(16);
        let s1 = d.batch_schedule(4, &mut rng_for(3, 3));
        let s2 = d.batch_schedule(4, &mut rng_for(3, 3));
        assert_eq!(s1, s2);
    }

    #[test]
    fn stride_datasets_validate() {
        let x = Tensor::from_vec(vec![0.0, 1.0, 2.0, 3.0], &[2, 2]);
        let d = Dataset::with_stride(x, vec![1, 2, 3, 0], 4, 2);
        assert_eq!(d.len(), 2);
        let s = d.subset(&[1]);
        assert_eq!(s.y, vec![3, 0]);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn out_of_range_label_rejected() {
        let x = Tensor::from_vec(vec![0.0], &[1, 1]);
        let _ = Dataset::new(x, vec![5], 3);
    }
}
