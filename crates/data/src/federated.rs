//! The federated dataset container: per-client train/test splits plus a
//! pooled global test set.

use crate::dataset::Dataset;
use fedat_tensor::rng::{rng_for, tags};

/// One client's local data, already split 80/20 like the paper (§6
/// *Hyperparameters*: "We randomly split each client's local data into an
/// 80% training set and a 20% testing set").
#[derive(Clone, Debug)]
pub struct ClientData {
    /// Local training split.
    pub train: Dataset,
    /// Local held-out split (used for the per-client accuracy variance
    /// metric of Definition 3.1).
    pub test: Dataset,
}

impl ClientData {
    /// Number of local training samples (`n_k` in the paper).
    pub fn num_train(&self) -> usize {
        self.train.len()
    }
}

/// A complete federated learning corpus.
#[derive(Clone, Debug)]
pub struct FederatedDataset {
    /// Per-client data.
    pub clients: Vec<ClientData>,
    /// Pooled test set (union of the per-client test splits) used for the
    /// global accuracy curves.
    pub global_test: Dataset,
    /// Number of classes.
    pub classes: usize,
    /// Features per row.
    pub features: usize,
    /// Targets per row (1 for classification, `seq_len` for LM).
    pub targets_per_row: usize,
}

impl FederatedDataset {
    /// Assembles a federation from per-client datasets, splitting each
    /// 80/20 into train/test with a seed-derived RNG.
    ///
    /// # Panics
    /// Panics if `parts` is empty or any client has fewer than 2 samples.
    pub fn from_partitions(parts: Vec<Dataset>, seed: u64) -> Self {
        assert!(!parts.is_empty(), "federation needs at least one client");
        let classes = parts[0].classes;
        let features = parts[0].features();
        let targets_per_row = parts[0].targets_per_row;
        let mut clients = Vec::with_capacity(parts.len());
        for (i, part) in parts.into_iter().enumerate() {
            let mut rng = rng_for(seed ^ (i as u64) << 20, tags::PARTITION);
            let (train, test) = part.split(0.8, &mut rng);
            clients.push(ClientData { train, test });
        }
        let tests: Vec<&Dataset> = clients.iter().map(|c| &c.test).collect();
        let global_test = Dataset::concat(&tests);
        FederatedDataset {
            clients,
            global_test,
            classes,
            features,
            targets_per_row,
        }
    }

    /// Assembles a federation from per-client datasets that are **already
    /// split** into train/test — the natural-partition path the LEAF
    /// loaders use (the on-disk split is taken verbatim; no shuffling or
    /// re-splitting happens here).
    ///
    /// # Panics
    /// Panics if `clients` is empty or the schemas disagree (the LEAF
    /// loader validates both before calling).
    pub fn from_client_splits(clients: Vec<ClientData>) -> Self {
        assert!(!clients.is_empty(), "federation needs at least one client");
        let classes = clients[0].train.classes;
        let features = clients[0].train.features();
        let targets_per_row = clients[0].train.targets_per_row;
        let tests: Vec<&Dataset> = clients.iter().map(|c| &c.test).collect();
        let global_test = Dataset::concat(&tests);
        FederatedDataset {
            clients,
            global_test,
            classes,
            features,
            targets_per_row,
        }
    }

    /// Number of clients.
    pub fn num_clients(&self) -> usize {
        self.clients.len()
    }

    /// Total training samples across clients (`N` in the paper).
    pub fn total_train_samples(&self) -> usize {
        self.clients.iter().map(|c| c.num_train()).sum()
    }

    /// Per-client training sample counts (`n_k`).
    pub fn client_sizes(&self) -> Vec<usize> {
        self.clients.iter().map(|c| c.num_train()).collect()
    }

    /// Returns a shrunken copy keeping roughly `frac` of every client's
    /// train/test rows (at least 2 train and 1 test row each). Used to make
    /// doc examples and smoke tests fast.
    ///
    /// Degenerate fractions are handled explicitly rather than silently:
    /// `frac` is clamped into `[0, 1]` (`≤ 0` keeps the per-client floor of
    /// 2 train + 1 test rows, `≥ 1` is the identity), a task with no
    /// clients is returned unchanged, and a NaN fraction panics — there is
    /// no least-surprising number to clamp it to.
    ///
    /// # Panics
    /// Panics if `frac` is NaN.
    pub fn scaled(&self, frac: f64) -> FederatedDataset {
        assert!(!frac.is_nan(), "scaled(NaN) has no meaningful clamp");
        let frac = frac.clamp(0.0, 1.0);
        if self.clients.is_empty() {
            return self.clone();
        }
        let take = |d: &Dataset, min: usize| -> Dataset {
            let floor = min.min(d.len());
            let keep = ((d.len() as f64 * frac) as usize).clamp(floor, d.len());
            d.subset(&(0..keep).collect::<Vec<_>>())
        };
        let clients: Vec<ClientData> = self
            .clients
            .iter()
            .map(|c| ClientData {
                train: take(&c.train, 2),
                test: take(&c.test, 1),
            })
            .collect();
        let tests: Vec<&Dataset> = clients.iter().map(|c| &c.test).collect();
        let global_test = Dataset::concat(&tests);
        FederatedDataset {
            clients,
            global_test,
            classes: self.classes,
            features: self.features,
            targets_per_row: self.targets_per_row,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::Partitioner;
    use crate::synth::{synth_features, FeatureSynthSpec};
    use fedat_tensor::rng::rng_for;

    fn build(n: usize, clients: usize) -> FederatedDataset {
        let spec = FeatureSynthSpec {
            features: 6,
            classes: 4,
            separation: 1.0,
            noise: 0.3,
        };
        let d = synth_features(&mut rng_for(1, 1), &spec, n);
        let parts = Partitioner::Iid.partition(&d, clients, &mut rng_for(1, 2));
        FederatedDataset::from_partitions(parts, 7)
    }

    #[test]
    fn split_is_80_20ish_and_total_preserved() {
        let fed = build(500, 10);
        assert_eq!(fed.num_clients(), 10);
        let total: usize = fed
            .clients
            .iter()
            .map(|c| c.train.len() + c.test.len())
            .sum();
        assert_eq!(total, 500);
        for c in &fed.clients {
            let frac = c.train.len() as f64 / (c.train.len() + c.test.len()) as f64;
            assert!((0.7..0.9).contains(&frac), "train fraction {frac} not ≈0.8");
        }
    }

    #[test]
    fn global_test_is_union_of_client_tests() {
        let fed = build(200, 5);
        let expected: usize = fed.clients.iter().map(|c| c.test.len()).sum();
        assert_eq!(fed.global_test.len(), expected);
    }

    #[test]
    fn from_partitions_is_deterministic() {
        let a = build(100, 4);
        let b = build(100, 4);
        for (ca, cb) in a.clients.iter().zip(b.clients.iter()) {
            assert_eq!(ca.train.x.data(), cb.train.x.data());
            assert_eq!(ca.test.y, cb.test.y);
        }
    }

    #[test]
    fn from_client_splits_preserves_the_given_split() {
        let fed = build(200, 5);
        let rebuilt = FederatedDataset::from_client_splits(fed.clients.clone());
        assert_eq!(rebuilt.num_clients(), 5);
        assert_eq!(rebuilt.classes, fed.classes);
        assert_eq!(rebuilt.features, fed.features);
        for (a, b) in rebuilt.clients.iter().zip(fed.clients.iter()) {
            assert_eq!(a.train.x.data(), b.train.x.data());
            assert_eq!(a.test.y, b.test.y);
        }
        assert_eq!(rebuilt.global_test.x.data(), fed.global_test.x.data());
    }

    #[test]
    fn scaled_clamps_degenerate_fractions() {
        let fed = build(300, 6);
        // ≤ 0 keeps the documented per-client floor instead of panicking.
        let floor = fed.scaled(0.0);
        for c in &floor.clients {
            assert!(c.train.len() >= 2, "train floor violated");
            assert!(!c.test.is_empty(), "test floor violated");
        }
        let neg = fed.scaled(-3.5);
        for (a, b) in neg.clients.iter().zip(floor.clients.iter()) {
            assert_eq!(a.train.len(), b.train.len());
        }
        // ≥ 1 is the identity instead of panicking.
        let same = fed.scaled(7.0);
        assert_eq!(same.total_train_samples(), fed.total_train_samples());
        for (a, b) in same.clients.iter().zip(fed.clients.iter()) {
            assert_eq!(a.train.x.data(), b.train.x.data());
            assert_eq!(a.test.y, b.test.y);
        }
        // global_test stays consistent with the shrunken client tests.
        let expected: usize = floor.clients.iter().map(|c| c.test.len()).sum();
        assert_eq!(floor.global_test.len(), expected);
    }

    #[test]
    #[should_panic(expected = "scaled(NaN)")]
    fn scaled_rejects_nan_loudly() {
        let _ = build(100, 4).scaled(f64::NAN);
    }

    #[test]
    fn scaled_on_clientless_federation_is_identity() {
        // Not constructible through the public builders (both assert at
        // least one client), but the fields are public; `scaled` must not
        // panic in `Dataset::concat` on the hand-built degenerate case.
        let placeholder = {
            let x = fedat_tensor::Tensor::from_vec(vec![0.0, 1.0], &[1, 2]);
            Dataset::new(x, vec![0], 2)
        };
        let ghost = FederatedDataset {
            clients: Vec::new(),
            global_test: placeholder,
            classes: 2,
            features: 2,
            targets_per_row: 1,
        };
        let scaled = ghost.scaled(0.5);
        assert_eq!(scaled.num_clients(), 0);
        assert_eq!(scaled.global_test.len(), 1);
    }

    #[test]
    fn scaled_shrinks_every_client() {
        let fed = build(1000, 10);
        let small = fed.scaled(0.1);
        assert_eq!(small.num_clients(), 10);
        for (orig, shrunk) in fed.clients.iter().zip(small.clients.iter()) {
            assert!(shrunk.train.len() <= orig.train.len() / 5);
            assert!(shrunk.train.len() >= 2);
            assert!(!shrunk.test.is_empty());
        }
    }
}
