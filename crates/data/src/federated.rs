//! The federated dataset container: per-client train/test splits plus a
//! pooled global test set.

use crate::dataset::Dataset;
use fedat_tensor::rng::{rng_for, tags};

/// One client's local data, already split 80/20 like the paper (§6
/// *Hyperparameters*: "We randomly split each client's local data into an
/// 80% training set and a 20% testing set").
#[derive(Clone, Debug)]
pub struct ClientData {
    /// Local training split.
    pub train: Dataset,
    /// Local held-out split (used for the per-client accuracy variance
    /// metric of Definition 3.1).
    pub test: Dataset,
}

impl ClientData {
    /// Number of local training samples (`n_k` in the paper).
    pub fn num_train(&self) -> usize {
        self.train.len()
    }
}

/// A complete federated learning corpus.
#[derive(Clone, Debug)]
pub struct FederatedDataset {
    /// Per-client data.
    pub clients: Vec<ClientData>,
    /// Pooled test set (union of the per-client test splits) used for the
    /// global accuracy curves.
    pub global_test: Dataset,
    /// Number of classes.
    pub classes: usize,
    /// Features per row.
    pub features: usize,
    /// Targets per row (1 for classification, `seq_len` for LM).
    pub targets_per_row: usize,
}

impl FederatedDataset {
    /// Assembles a federation from per-client datasets, splitting each
    /// 80/20 into train/test with a seed-derived RNG.
    ///
    /// # Panics
    /// Panics if `parts` is empty or any client has fewer than 2 samples.
    pub fn from_partitions(parts: Vec<Dataset>, seed: u64) -> Self {
        assert!(!parts.is_empty(), "federation needs at least one client");
        let classes = parts[0].classes;
        let features = parts[0].features();
        let targets_per_row = parts[0].targets_per_row;
        let mut clients = Vec::with_capacity(parts.len());
        for (i, part) in parts.into_iter().enumerate() {
            let mut rng = rng_for(seed ^ (i as u64) << 20, tags::PARTITION);
            let (train, test) = part.split(0.8, &mut rng);
            clients.push(ClientData { train, test });
        }
        let tests: Vec<&Dataset> = clients.iter().map(|c| &c.test).collect();
        let global_test = Dataset::concat(&tests);
        FederatedDataset {
            clients,
            global_test,
            classes,
            features,
            targets_per_row,
        }
    }

    /// Number of clients.
    pub fn num_clients(&self) -> usize {
        self.clients.len()
    }

    /// Total training samples across clients (`N` in the paper).
    pub fn total_train_samples(&self) -> usize {
        self.clients.iter().map(|c| c.num_train()).sum()
    }

    /// Per-client training sample counts (`n_k`).
    pub fn client_sizes(&self) -> Vec<usize> {
        self.clients.iter().map(|c| c.num_train()).collect()
    }

    /// Returns a shrunken copy keeping roughly `frac` of every client's
    /// train/test rows (at least 2 train and 1 test row each). Used to make
    /// doc examples and smoke tests fast.
    pub fn scaled(&self, frac: f64) -> FederatedDataset {
        assert!(frac > 0.0 && frac <= 1.0, "frac must be in (0, 1]");
        let take = |d: &Dataset, min: usize| -> Dataset {
            let floor = min.min(d.len());
            let keep = ((d.len() as f64 * frac) as usize).clamp(floor, d.len());
            d.subset(&(0..keep).collect::<Vec<_>>())
        };
        let clients: Vec<ClientData> = self
            .clients
            .iter()
            .map(|c| ClientData {
                train: take(&c.train, 2),
                test: take(&c.test, 1),
            })
            .collect();
        let tests: Vec<&Dataset> = clients.iter().map(|c| &c.test).collect();
        let global_test = Dataset::concat(&tests);
        FederatedDataset {
            clients,
            global_test,
            classes: self.classes,
            features: self.features,
            targets_per_row: self.targets_per_row,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::Partitioner;
    use crate::synth::{synth_features, FeatureSynthSpec};
    use fedat_tensor::rng::rng_for;

    fn build(n: usize, clients: usize) -> FederatedDataset {
        let spec = FeatureSynthSpec {
            features: 6,
            classes: 4,
            separation: 1.0,
            noise: 0.3,
        };
        let d = synth_features(&mut rng_for(1, 1), &spec, n);
        let parts = Partitioner::Iid.partition(&d, clients, &mut rng_for(1, 2));
        FederatedDataset::from_partitions(parts, 7)
    }

    #[test]
    fn split_is_80_20ish_and_total_preserved() {
        let fed = build(500, 10);
        assert_eq!(fed.num_clients(), 10);
        let total: usize = fed
            .clients
            .iter()
            .map(|c| c.train.len() + c.test.len())
            .sum();
        assert_eq!(total, 500);
        for c in &fed.clients {
            let frac = c.train.len() as f64 / (c.train.len() + c.test.len()) as f64;
            assert!((0.7..0.9).contains(&frac), "train fraction {frac} not ≈0.8");
        }
    }

    #[test]
    fn global_test_is_union_of_client_tests() {
        let fed = build(200, 5);
        let expected: usize = fed.clients.iter().map(|c| c.test.len()).sum();
        assert_eq!(fed.global_test.len(), expected);
    }

    #[test]
    fn from_partitions_is_deterministic() {
        let a = build(100, 4);
        let b = build(100, 4);
        for (ca, cb) in a.clients.iter().zip(b.clients.iter()) {
            assert_eq!(ca.train.x.data(), cb.train.x.data());
            assert_eq!(ca.test.y, cb.test.y);
        }
    }

    #[test]
    fn scaled_shrinks_every_client() {
        let fed = build(1000, 10);
        let small = fed.scaled(0.1);
        assert_eq!(small.num_clients(), 10);
        for (orig, shrunk) in fed.clients.iter().zip(small.clients.iter()) {
            assert!(shrunk.train.len() <= orig.train.len() / 5);
            assert!(shrunk.train.len() >= 2);
            assert!(!shrunk.test.is_empty());
        }
    }
}
