//! Minimal streaming JSON reader for the LEAF on-disk format.
//!
//! The build environment is offline and `vendor/serde` is an API stub with
//! no `serde_json`, so this file implements the subset of JSON the LEAF
//! format needs — strings (with escapes), numbers, booleans, null, arrays
//! and objects — as a byte-at-a-time reader over any [`BufRead`]. The
//! top-level LEAF parse in [`super`] iterates object keys *without*
//! materializing the whole file, so memory stays bounded by one user's
//! subtree rather than the corpus.
//!
//! Robustness contract (property-tested in `tests/leaf_malformed.rs`):
//! every input — including arbitrary bytes — produces `Ok` or a typed
//! [`LeafError`], never a panic. Nesting is depth-limited so adversarial
//! `[[[[…` streams error out instead of overflowing the stack, and numbers
//! that overflow to ±∞ (e.g. `1e999`) are rejected as
//! [`LeafError::NonFinite`] rather than silently saturating.

use super::LeafError;
use std::io::BufRead;

/// Maximum value-nesting depth the reader accepts. LEAF needs 4 levels
/// (`object → user_data → user → x → row`); 64 leaves generous headroom
/// while keeping recursion safely inside the stack.
pub const MAX_DEPTH: usize = 64;

/// A parsed JSON subtree (used for per-user payloads; the top level of a
/// LEAF file is streamed key-by-key instead).
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always finite; overflow is a parse error).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in key order of appearance.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// The value's JSON type name (for schema error messages).
    pub fn type_name(&self) -> &'static str {
        match self {
            JsonValue::Null => "null",
            JsonValue::Bool(_) => "bool",
            JsonValue::Number(_) => "number",
            JsonValue::String(_) => "string",
            JsonValue::Array(_) => "array",
            JsonValue::Object(_) => "object",
        }
    }

    /// Borrows the elements if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(v) => Some(v),
            _ => None,
        }
    }

    /// Borrows the text if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Looks up `key` if this is an object (first occurrence wins).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Byte-at-a-time JSON reader with single-byte lookahead and line/column
/// tracking for error messages.
pub struct JsonReader<R: BufRead> {
    src: R,
    peeked: Option<u8>,
    line: usize,
    col: usize,
}

impl<R: BufRead> JsonReader<R> {
    /// Wraps a buffered reader positioned at the start of a JSON document.
    pub fn new(src: R) -> Self {
        JsonReader {
            src,
            peeked: None,
            line: 1,
            col: 1,
        }
    }

    /// Current `(line, column)` of the next unconsumed byte.
    pub fn position(&self) -> (usize, usize) {
        (self.line, self.col)
    }

    /// Builds a [`LeafError::Parse`] at the current position.
    pub fn error(&self, msg: impl Into<String>) -> LeafError {
        LeafError::Parse {
            line: self.line,
            col: self.col,
            msg: msg.into(),
        }
    }

    fn peek(&mut self) -> Result<Option<u8>, LeafError> {
        if self.peeked.is_none() {
            let mut buf = [0u8; 1];
            let n = self.src.read(&mut buf).map_err(LeafError::Io)?;
            if n == 1 {
                self.peeked = Some(buf[0]);
            }
        }
        Ok(self.peeked)
    }

    fn bump(&mut self) -> Result<Option<u8>, LeafError> {
        let b = self.peek()?;
        self.peeked = None;
        match b {
            Some(b'\n') => {
                self.line += 1;
                self.col = 1;
            }
            Some(_) => self.col += 1,
            None => {}
        }
        Ok(b)
    }

    /// Consumes whitespace.
    pub fn skip_ws(&mut self) -> Result<(), LeafError> {
        while let Some(b) = self.peek()? {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.bump()?;
            } else {
                break;
            }
        }
        Ok(())
    }

    /// Consumes whitespace, then exactly the byte `want`.
    pub fn expect(&mut self, want: u8) -> Result<(), LeafError> {
        self.skip_ws()?;
        match self.bump()? {
            Some(b) if b == want => Ok(()),
            Some(b) => Err(self.error(format!(
                "expected '{}', found '{}'",
                want as char,
                printable(b)
            ))),
            None => Err(self.error(format!("expected '{}', found end of input", want as char))),
        }
    }

    /// After the document, only whitespace may remain.
    pub fn expect_eof(&mut self) -> Result<(), LeafError> {
        self.skip_ws()?;
        match self.peek()? {
            None => Ok(()),
            Some(b) => Err(self.error(format!("trailing content '{}'", printable(b)))),
        }
    }

    /// Streams the next key of the object currently being read. `first`
    /// must start `true` right after the opening `{` was consumed (via
    /// [`JsonReader::expect`]); the reader flips it. Returns `None` when
    /// the closing `}` is consumed. The caller parses the value after each
    /// `Some(key)` — the separating `:` is already consumed.
    pub fn next_key(&mut self, first: &mut bool) -> Result<Option<String>, LeafError> {
        self.skip_ws()?;
        match self.peek()? {
            Some(b'}') => {
                self.bump()?;
                Ok(None)
            }
            Some(b',') if !*first => {
                self.bump()?;
                self.key_and_colon().map(Some)
            }
            Some(_) if *first => {
                *first = false;
                self.key_and_colon().map(Some)
            }
            Some(b) => Err(self.error(format!(
                "expected ',' or '}}' after object member, found '{}'",
                printable(b)
            ))),
            None => Err(self.error("unterminated object")),
        }
    }

    fn key_and_colon(&mut self) -> Result<String, LeafError> {
        self.expect(b'"')?;
        let key = self.parse_string_body()?;
        self.expect(b':')?;
        Ok(key)
    }

    /// Signals whether another array element follows. `first` must start
    /// `true` right after the opening `[` was consumed. Returns `false`
    /// when the closing `]` is consumed.
    pub fn next_element(&mut self, first: &mut bool) -> Result<bool, LeafError> {
        self.skip_ws()?;
        match self.peek()? {
            Some(b']') => {
                self.bump()?;
                Ok(false)
            }
            Some(b',') if !*first => {
                self.bump()?;
                Ok(true)
            }
            Some(_) if *first => {
                *first = false;
                Ok(true)
            }
            Some(b) => Err(self.error(format!(
                "expected ',' or ']' after array element, found '{}'",
                printable(b)
            ))),
            None => Err(self.error("unterminated array")),
        }
    }

    /// Parses one complete value (recursive, depth-limited).
    pub fn parse_value(&mut self, depth: usize) -> Result<JsonValue, LeafError> {
        if depth > MAX_DEPTH {
            return Err(self.error(format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        self.skip_ws()?;
        match self.peek()? {
            None => Err(self.error("unexpected end of input")),
            Some(b'{') => {
                self.bump()?;
                let mut entries = Vec::new();
                let mut first = true;
                while let Some(key) = self.next_key(&mut first)? {
                    let value = self.parse_value(depth + 1)?;
                    entries.push((key, value));
                }
                Ok(JsonValue::Object(entries))
            }
            Some(b'[') => {
                self.bump()?;
                let mut items = Vec::new();
                let mut first = true;
                while self.next_element(&mut first)? {
                    items.push(self.parse_value(depth + 1)?);
                }
                Ok(JsonValue::Array(items))
            }
            Some(b'"') => {
                self.bump()?;
                self.parse_string_body().map(JsonValue::String)
            }
            Some(b't') => {
                self.literal("true")?;
                Ok(JsonValue::Bool(true))
            }
            Some(b'f') => {
                self.literal("false")?;
                Ok(JsonValue::Bool(false))
            }
            Some(b'n') => {
                self.literal("null")?;
                Ok(JsonValue::Null)
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => {
                self.parse_number().map(JsonValue::Number)
            }
            Some(b) => Err(self.error(format!("unexpected '{}'", printable(b)))),
        }
    }

    fn literal(&mut self, word: &'static str) -> Result<(), LeafError> {
        for want in word.bytes() {
            match self.bump()? {
                Some(b) if b == want => {}
                _ => return Err(self.error(format!("invalid literal (expected `{word}`)"))),
            }
        }
        Ok(())
    }

    /// Parses a number. Values that overflow `f64` (e.g. `1e999`) are
    /// rejected as [`LeafError::NonFinite`]; `NaN`/`Infinity` are not JSON
    /// and fail at the literal stage already.
    pub fn parse_number(&mut self) -> Result<f64, LeafError> {
        let (line, col) = self.position();
        let mut text = String::new();
        while let Some(b) = self.peek()? {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                text.push(b as char);
                self.bump()?;
            } else {
                break;
            }
        }
        let n: f64 = text.parse().map_err(|_| LeafError::Parse {
            line,
            col,
            msg: format!("invalid number `{text}`"),
        })?;
        if !n.is_finite() {
            return Err(LeafError::NonFinite { line, col });
        }
        Ok(n)
    }

    /// Parses a string body; the opening `"` must already be consumed.
    pub fn parse_string_body(&mut self) -> Result<String, LeafError> {
        let mut out: Vec<u8> = Vec::new();
        loop {
            match self.bump()? {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => break,
                Some(b'\\') => {
                    let esc = self
                        .bump()?
                        .ok_or_else(|| self.error("unterminated escape"))?;
                    match esc {
                        b'"' => out.push(b'"'),
                        b'\\' => out.push(b'\\'),
                        b'/' => out.push(b'/'),
                        b'b' => out.push(0x08),
                        b'f' => out.push(0x0C),
                        b'n' => out.push(b'\n'),
                        b'r' => out.push(b'\r'),
                        b't' => out.push(b'\t'),
                        b'u' => {
                            let c = self.parse_unicode_escape()?;
                            let mut buf = [0u8; 4];
                            out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                        }
                        other => {
                            return Err(
                                self.error(format!("invalid escape '\\{}'", printable(other)))
                            )
                        }
                    }
                }
                Some(b) if b < 0x20 => {
                    return Err(self.error("unescaped control character in string"))
                }
                Some(b) => out.push(b),
            }
        }
        String::from_utf8(out).map_err(|_| self.error("string is not valid UTF-8"))
    }

    fn hex4(&mut self) -> Result<u32, LeafError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()?
                .ok_or_else(|| self.error("unterminated \\u escape"))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.error("invalid hex digit in \\u escape"))?;
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn parse_unicode_escape(&mut self) -> Result<char, LeafError> {
        let hi = self.hex4()?;
        let code = if (0xD800..=0xDBFF).contains(&hi) {
            // High surrogate: a \uXXXX low surrogate must follow.
            if self.bump()? != Some(b'\\') || self.bump()? != Some(b'u') {
                return Err(self.error("high surrogate not followed by \\u low surrogate"));
            }
            let lo = self.hex4()?;
            if !(0xDC00..=0xDFFF).contains(&lo) {
                return Err(self.error("invalid low surrogate"));
            }
            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
        } else {
            hi
        };
        char::from_u32(code).ok_or_else(|| self.error("\\u escape is not a valid scalar value"))
    }
}

fn printable(b: u8) -> String {
    if (0x20..0x7F).contains(&b) {
        (b as char).to_string()
    } else {
        format!("\\x{b:02x}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(s: &str) -> Result<JsonValue, LeafError> {
        let mut r = JsonReader::new(Cursor::new(s.as_bytes()));
        let v = r.parse_value(0)?;
        r.expect_eof()?;
        Ok(v)
    }

    #[test]
    fn scalars_parse() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse(" -12.5e2 ").unwrap(), JsonValue::Number(-1250.0));
        assert_eq!(
            parse("\"a b\"").unwrap(),
            JsonValue::String("a b".to_string())
        );
    }

    #[test]
    fn containers_parse() {
        let v = parse(r#"{"x": [1, 2, [3]], "y": {"z": false}}"#).unwrap();
        assert_eq!(
            v.get("x").unwrap().as_array().unwrap()[2],
            JsonValue::Array(vec![JsonValue::Number(3.0)])
        );
        assert_eq!(
            v.get("y").unwrap().get("z").unwrap(),
            &JsonValue::Bool(false)
        );
    }

    #[test]
    fn escapes_decode() {
        assert_eq!(
            parse(r#""a\n\t\"\\Aé😀""#).unwrap(),
            JsonValue::String("a\n\t\"\\Aé😀".to_string())
        );
    }

    #[test]
    fn overflow_is_nonfinite_error() {
        assert!(matches!(parse("1e999"), Err(LeafError::NonFinite { .. })));
        assert!(matches!(parse("-1e999"), Err(LeafError::NonFinite { .. })));
    }

    #[test]
    fn nan_is_a_parse_error() {
        assert!(matches!(parse("NaN"), Err(LeafError::Parse { .. })));
        assert!(matches!(parse("Infinity"), Err(LeafError::Parse { .. })));
    }

    #[test]
    fn deep_nesting_errors_without_overflow() {
        let s = "[".repeat(100_000);
        assert!(matches!(parse(&s), Err(LeafError::Parse { .. })));
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse("1 2").is_err());
        assert!(parse("{} x").is_err());
    }

    #[test]
    fn error_positions_point_at_the_problem() {
        match parse("{\n  \"a\": @\n}") {
            Err(LeafError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }
}
