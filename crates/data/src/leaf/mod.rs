//! LEAF-format dataset loading behind the [`FedTask`] interface.
//!
//! [LEAF](https://leaf.cmu.edu) is the federated-learning benchmark suite
//! the paper evaluates on (FEMNIST, Sentiment140, Reddit). Its on-disk
//! format is a JSON object per split:
//!
//! ```text
//! {
//!   "users":       ["f_0000", "f_0001", ...],
//!   "num_samples": [312, 44, ...],
//!   "user_data":   {"f_0000": {"x": ..., "y": ...}, ...}
//! }
//! ```
//!
//! with per-benchmark `x`/`y` payloads. This module parses that format with
//! the self-contained streaming reader in [`json`] (the build environment
//! is offline and `vendor/serde` is a stub), featurizes each user straight
//! into a [`Dataset`], and assembles the *natural* per-user partition —
//! bypassing the synthetic splitters in [`crate::partition`] entirely,
//! which is the whole point: tier-skew effects only appear under real
//! per-user imbalance.
//!
//! Layout accepted by [`FedTask::from_leaf_dir`]:
//!
//! * `dir/train/*.json` + `dir/test/*.json` — LEAF's post-`split_data.sh`
//!   layout; the per-user train/test split is taken from disk verbatim.
//! * `dir/*.json` — a flat corpus; each user is split 80/20 with the same
//!   seeded scheme the synthetic suite uses.
//!
//! The [`writer`] submodule emits this exact format from in-memory tasks,
//! which makes the subsystem testable offline (generate fixture → parse →
//! train) and doubles as a documented interchange format. See
//! `docs/DATA.md` for the full contract.

// The data crate sits outside the R1 determinism gate (docs/LINTS.md): the
// hash containers below are parse-time indices and duplicate detectors whose
// iteration order never reaches an output — every user list is sorted before
// partitioning.
#![allow(clippy::disallowed_types)]

pub mod json;
pub mod writer;

use crate::dataset::Dataset;
use crate::federated::{ClientData, FederatedDataset};
use crate::suite::FedTask;
use fedat_nn::models::ModelSpec;
use json::{JsonReader, JsonValue};
use std::collections::{HashMap, HashSet};
use std::fs::File;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};

/// Largest token id the Reddit featurizer accepts: token ids become `f32`
/// features, and 2^24 is the last integer `f32` represents exactly.
pub const MAX_TOKEN: u64 = 1 << 24;

/// Everything that can go wrong while reading a LEAF directory. Parsing
/// never panics — arbitrary bytes produce one of these (property-tested in
/// `tests/leaf_malformed.rs`).
#[derive(Debug)]
pub enum LeafError {
    /// Underlying file/stream I/O failure.
    Io(std::io::Error),
    /// Malformed JSON at `line:col` of the current file.
    Parse {
        /// 1-based line.
        line: usize,
        /// 1-based column.
        col: usize,
        /// What went wrong.
        msg: String,
    },
    /// A number overflowed to ±∞ (e.g. `1e999`) — LEAF corpora are finite.
    NonFinite {
        /// 1-based line.
        line: usize,
        /// 1-based column.
        col: usize,
    },
    /// Well-formed JSON that violates the LEAF schema.
    Schema(String),
    /// `num_samples[i]` disagrees with `user_data[users[i]]`'s row count.
    NumSamplesMismatch {
        /// The offending user.
        user: String,
        /// What `num_samples` declared.
        declared: usize,
        /// How many samples `user_data` actually holds.
        actual: usize,
    },
    /// A user listed in `users` is absent from `user_data` (or a train
    /// user has no matching test entry).
    MissingUser(String),
    /// A label falls outside the benchmark's class range.
    LabelOutOfRange {
        /// The offending user.
        user: String,
        /// The raw label value.
        label: f64,
        /// The benchmark's class count.
        classes: usize,
    },
    /// The directory or split holds no usable data.
    Empty(String),
}

impl std::fmt::Display for LeafError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LeafError::Io(e) => write!(f, "i/o error: {e}"),
            LeafError::Parse { line, col, msg } => {
                write!(f, "json parse error at {line}:{col}: {msg}")
            }
            LeafError::NonFinite { line, col } => {
                write!(f, "non-finite number at {line}:{col} (overflow or NaN)")
            }
            LeafError::Schema(msg) => write!(f, "leaf schema error: {msg}"),
            LeafError::NumSamplesMismatch {
                user,
                declared,
                actual,
            } => write!(
                f,
                "num_samples declares {declared} samples for user `{user}` but user_data holds {actual}"
            ),
            LeafError::MissingUser(u) => write!(f, "user `{u}` is listed but has no data"),
            LeafError::LabelOutOfRange {
                user,
                label,
                classes,
            } => write!(
                f,
                "label {label} of user `{user}` is outside the {classes}-class range"
            ),
            LeafError::Empty(msg) => write!(f, "empty leaf input: {msg}"),
        }
    }
}

impl std::error::Error for LeafError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LeafError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for LeafError {
    fn from(e: std::io::Error) -> Self {
        LeafError::Io(e)
    }
}

/// Which paper benchmark a LEAF directory encodes — selects the featurizer,
/// the model architecture and the time-to-accuracy target.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LeafBenchmark {
    /// FEMNIST: `x[i]` is a flat `height·width` grayscale pixel row,
    /// `y[i]` the class index.
    Femnist {
        /// Image height (28 for real FEMNIST; must be divisible by 4).
        height: usize,
        /// Image width (28 for real FEMNIST; must be divisible by 4).
        width: usize,
        /// Number of classes (62 for real FEMNIST).
        classes: usize,
    },
    /// Sentiment140: `x[i]` is the tweet text (either a bare string or, as
    /// in raw LEAF, an array whose *last* element is the text), `y[i]` the
    /// 0/1 sentiment. Features are token counts over a deterministic
    /// vocabulary (see [`FedTask::from_leaf_dir`]).
    Sent140 {
        /// Vocabulary cap when the vocabulary is built from the corpus.
        max_vocab: usize,
    },
    /// Reddit next-token prediction: `x[i]` is a token-id sequence, `y[i]`
    /// the sequence shifted by one (one next-token target per position).
    Reddit {
        /// Vocabulary size; `0` infers `max_token + 1` from the data.
        vocab: usize,
    },
}

impl LeafBenchmark {
    /// Real-FEMNIST shape: 28×28 grayscale, 62 classes.
    pub fn femnist() -> Self {
        LeafBenchmark::Femnist {
            height: 28,
            width: 28,
            classes: 62,
        }
    }

    /// Sentiment140 with a 2048-token vocabulary cap.
    pub fn sent140() -> Self {
        LeafBenchmark::Sent140 { max_vocab: 2048 }
    }

    /// Reddit with the vocabulary inferred from the corpus.
    pub fn reddit() -> Self {
        LeafBenchmark::Reddit { vocab: 0 }
    }

    /// Short benchmark name (used in task names and reports).
    pub fn name(&self) -> &'static str {
        match self {
            LeafBenchmark::Femnist { .. } => "femnist",
            LeafBenchmark::Sent140 { .. } => "sent140",
            LeafBenchmark::Reddit { .. } => "reddit",
        }
    }

    fn validate(&self) -> Result<(), LeafError> {
        match *self {
            LeafBenchmark::Femnist {
                height,
                width,
                classes,
            } => {
                if height == 0 || width == 0 || classes == 0 {
                    return Err(LeafError::Schema(
                        "femnist benchmark needs positive height/width/classes".into(),
                    ));
                }
                if height % 4 != 0 || width % 4 != 0 {
                    return Err(LeafError::Schema(format!(
                        "femnist images must have height/width divisible by 4 \
                         (the CnnLite model pools twice), got {height}×{width}"
                    )));
                }
            }
            LeafBenchmark::Sent140 { max_vocab } => {
                if max_vocab == 0 {
                    return Err(LeafError::Schema(
                        "sent140 benchmark needs a positive max_vocab".into(),
                    ));
                }
            }
            LeafBenchmark::Reddit { .. } => {}
        }
        Ok(())
    }
}

/// One parsed LEAF split: per-user datasets in `users` order.
#[derive(Clone, Debug)]
pub struct LeafSplit {
    /// User names, in the file's `users` order.
    pub users: Vec<String>,
    /// One featurized dataset per user, aligned with `users`.
    pub data: Vec<Dataset>,
}

// ---------------------------------------------------------------------------
// Featurizers
// ---------------------------------------------------------------------------

/// A featurized user before `Dataset` construction. Labels are *not* yet
/// range-checked against the class count here (Reddit's vocabulary may be
/// inferred across users later); [`finalize_users`] does that, so the
/// asserting [`Dataset`] constructors are only reached with valid data.
struct RawUser {
    name: String,
    rows: usize,
    width: usize,
    tpr: usize,
    xs: Vec<f32>,
    ys: Vec<u32>,
}

enum Featurizer {
    Femnist {
        features: usize,
        classes: usize,
    },
    Sent140 {
        vocab: Vec<String>,
        index: HashMap<String, usize>,
    },
    Reddit,
}

fn make_featurizer(
    bench: &LeafBenchmark,
    vocab: Option<&[String]>,
) -> Result<Featurizer, LeafError> {
    bench.validate()?;
    Ok(match *bench {
        LeafBenchmark::Femnist {
            height,
            width,
            classes,
        } => Featurizer::Femnist {
            features: height * width,
            classes,
        },
        LeafBenchmark::Sent140 { .. } => {
            let vocab = vocab
                .ok_or_else(|| {
                    LeafError::Schema(
                        "sent140 needs an explicit vocabulary at the reader level \
                         (directory loading resolves one automatically)"
                            .into(),
                    )
                })?
                .to_vec();
            if vocab.is_empty() {
                return Err(LeafError::Schema("sent140 vocabulary is empty".into()));
            }
            let index = vocab
                .iter()
                .enumerate()
                .map(|(i, t)| (t.clone(), i))
                .collect();
            Featurizer::Sent140 { vocab, index }
        }
        LeafBenchmark::Reddit { .. } => Featurizer::Reddit,
    })
}

/// Extracts the tweet text from a Sentiment140 `x` entry: either a bare
/// string or (raw LEAF) an array whose last element is the text.
fn sample_text<'a>(user: &str, i: usize, xi: &'a JsonValue) -> Result<&'a str, LeafError> {
    if let Some(s) = xi.as_str() {
        return Ok(s);
    }
    if let Some(s) = xi
        .as_array()
        .and_then(|a| a.last())
        .and_then(|v| v.as_str())
    {
        return Ok(s);
    }
    Err(LeafError::Schema(format!(
        "x[{i}] of user `{user}`: expected a string (or an array ending in one), found {}",
        xi.type_name()
    )))
}

/// Parses a classification label and range-checks it.
fn label(user: &str, v: &JsonValue, classes: usize) -> Result<u32, LeafError> {
    let f = v.as_f64().ok_or_else(|| {
        LeafError::Schema(format!(
            "label of user `{user}`: expected a number, found {}",
            v.type_name()
        ))
    })?;
    if f.fract() != 0.0 || f < 0.0 || f >= classes as f64 {
        return Err(LeafError::LabelOutOfRange {
            user: user.to_string(),
            label: f,
            classes,
        });
    }
    Ok(f as u32)
}

/// Parses a token id (Reddit): a small non-negative integer.
fn token(user: &str, v: &JsonValue) -> Result<u32, LeafError> {
    let f = v.as_f64().ok_or_else(|| {
        LeafError::Schema(format!(
            "token of user `{user}`: expected a number, found {}",
            v.type_name()
        ))
    })?;
    if f.fract() != 0.0 || f < 0.0 || f >= MAX_TOKEN as f64 {
        return Err(LeafError::Schema(format!(
            "token {f} of user `{user}` is not an integer in [0, {MAX_TOKEN})"
        )));
    }
    Ok(f as u32)
}

impl Featurizer {
    fn featurize(&self, user: &str, v: &JsonValue) -> Result<RawUser, LeafError> {
        let x = v
            .get("x")
            .ok_or_else(|| LeafError::Schema(format!("user `{user}` has no `x`")))?
            .as_array()
            .ok_or_else(|| LeafError::Schema(format!("`x` of user `{user}` is not an array")))?;
        let y = v
            .get("y")
            .ok_or_else(|| LeafError::Schema(format!("user `{user}` has no `y`")))?
            .as_array()
            .ok_or_else(|| LeafError::Schema(format!("`y` of user `{user}` is not an array")))?;
        if x.len() != y.len() {
            return Err(LeafError::Schema(format!(
                "user `{user}`: {} samples in x but {} labels in y",
                x.len(),
                y.len()
            )));
        }
        if x.is_empty() {
            return Err(LeafError::Schema(format!("user `{user}` has no samples")));
        }
        let rows = x.len();
        match self {
            Featurizer::Femnist { features, classes } => {
                let mut xs = Vec::with_capacity(rows * features);
                let mut ys = Vec::with_capacity(rows);
                for (i, xi) in x.iter().enumerate() {
                    let row = xi.as_array().ok_or_else(|| {
                        LeafError::Schema(format!(
                            "x[{i}] of user `{user}`: expected a pixel array, found {}",
                            xi.type_name()
                        ))
                    })?;
                    if row.len() != *features {
                        return Err(LeafError::Schema(format!(
                            "x[{i}] of user `{user}` has {} pixels, expected {features}",
                            row.len()
                        )));
                    }
                    for p in row {
                        let f = p.as_f64().ok_or_else(|| {
                            LeafError::Schema(format!(
                                "pixel of user `{user}`: expected a number, found {}",
                                p.type_name()
                            ))
                        })?;
                        let f32v = f as f32;
                        if !f32v.is_finite() {
                            return Err(LeafError::Schema(format!(
                                "pixel {f} of user `{user}` overflows f32"
                            )));
                        }
                        xs.push(f32v);
                    }
                    ys.push(label(user, &y[i], *classes)?);
                }
                Ok(RawUser {
                    name: user.to_string(),
                    rows,
                    width: *features,
                    tpr: 1,
                    xs,
                    ys,
                })
            }
            Featurizer::Sent140 { vocab, index } => {
                let mut xs = vec![0.0f32; rows * vocab.len()];
                let mut ys = Vec::with_capacity(rows);
                for (i, xi) in x.iter().enumerate() {
                    let text = sample_text(user, i, xi)?;
                    let counts = &mut xs[i * vocab.len()..(i + 1) * vocab.len()];
                    for tok in text.split_whitespace() {
                        if let Some(&j) = index.get(tok) {
                            counts[j] += 1.0;
                        }
                    }
                    ys.push(label(user, &y[i], 2)?);
                }
                Ok(RawUser {
                    name: user.to_string(),
                    rows,
                    width: vocab.len(),
                    tpr: 1,
                    xs,
                    ys,
                })
            }
            Featurizer::Reddit => {
                let first = x[0].as_array().ok_or_else(|| {
                    LeafError::Schema(format!(
                        "x[0] of user `{user}`: expected a token sequence, found {}",
                        x[0].type_name()
                    ))
                })?;
                let seq = first.len();
                if seq == 0 {
                    return Err(LeafError::Schema(format!(
                        "user `{user}` has an empty token sequence"
                    )));
                }
                let mut xs = Vec::with_capacity(rows * seq);
                let mut ys = Vec::with_capacity(rows * seq);
                for (i, xi) in x.iter().enumerate() {
                    let row = xi.as_array().ok_or_else(|| {
                        LeafError::Schema(format!(
                            "x[{i}] of user `{user}`: expected a token sequence, found {}",
                            xi.type_name()
                        ))
                    })?;
                    let targets = y[i].as_array().ok_or_else(|| {
                        LeafError::Schema(format!(
                            "y[{i}] of user `{user}`: expected a next-token sequence, found {}",
                            y[i].type_name()
                        ))
                    })?;
                    if row.len() != seq || targets.len() != seq {
                        return Err(LeafError::Schema(format!(
                            "user `{user}` mixes sequence lengths ({} and {} vs {seq})",
                            row.len(),
                            targets.len()
                        )));
                    }
                    for t in row {
                        xs.push(token(user, t)? as f32);
                    }
                    for t in targets {
                        ys.push(token(user, t)?);
                    }
                }
                Ok(RawUser {
                    name: user.to_string(),
                    rows,
                    width: seq,
                    tpr: seq,
                    xs,
                    ys,
                })
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Split parsing
// ---------------------------------------------------------------------------

/// Streams one LEAF split file: `users`/`num_samples` are collected,
/// `user_data` is featurized user-by-user (so memory is bounded by one
/// user's subtree, not the file), unknown keys are skipped.
fn parse_raw<R: BufRead>(reader: R, feat: &Featurizer) -> Result<Vec<RawUser>, LeafError> {
    let mut r = JsonReader::new(reader);
    r.expect(b'{')?;
    let mut users: Option<Vec<String>> = None;
    let mut num_samples: Option<Vec<usize>> = None;
    let mut parsed: Vec<RawUser> = Vec::new();
    let mut first = true;
    while let Some(key) = r.next_key(&mut first)? {
        match key.as_str() {
            "users" => users = Some(parse_string_array(&mut r)?),
            "num_samples" => num_samples = Some(parse_count_array(&mut r)?),
            "user_data" => {
                r.expect(b'{')?;
                let mut ufirst = true;
                while let Some(user) = r.next_key(&mut ufirst)? {
                    let subtree = r.parse_value(2)?;
                    parsed.push(feat.featurize(&user, &subtree)?);
                }
            }
            // Real LEAF files may carry extras (e.g. `hierarchies`).
            _ => {
                r.parse_value(1)?;
            }
        }
    }
    r.expect_eof()?;
    let users = users.ok_or_else(|| LeafError::Schema("missing `users` array".into()))?;
    let num_samples =
        num_samples.ok_or_else(|| LeafError::Schema("missing `num_samples` array".into()))?;
    if num_samples.len() != users.len() {
        return Err(LeafError::Schema(format!(
            "{} users but {} num_samples entries",
            users.len(),
            num_samples.len()
        )));
    }
    let mut by_name: HashMap<String, RawUser> = HashMap::with_capacity(parsed.len());
    for raw in parsed {
        if by_name.insert(raw.name.clone(), raw).is_some() {
            // Unreachable through the JSON reader (duplicate object keys
            // produce two entries, the second insert wins the map slot) —
            // keep the check for the multi-file merge path in the caller.
            return Err(LeafError::Schema("duplicate user in user_data".into()));
        }
    }
    let mut out = Vec::with_capacity(users.len());
    for (user, &declared) in users.iter().zip(num_samples.iter()) {
        let raw = by_name
            .remove(user)
            .ok_or_else(|| LeafError::MissingUser(user.clone()))?;
        if raw.rows != declared {
            return Err(LeafError::NumSamplesMismatch {
                user: user.clone(),
                declared,
                actual: raw.rows,
            });
        }
        out.push(raw);
    }
    if let Some(extra) = by_name.into_keys().next() {
        return Err(LeafError::Schema(format!(
            "user_data contains user `{extra}` not listed in `users`"
        )));
    }
    Ok(out)
}

fn parse_string_array<R: BufRead>(r: &mut JsonReader<R>) -> Result<Vec<String>, LeafError> {
    r.expect(b'[')?;
    let mut out = Vec::new();
    let mut first = true;
    while r.next_element(&mut first)? {
        r.expect(b'"')?;
        out.push(r.parse_string_body()?);
    }
    Ok(out)
}

fn parse_count_array<R: BufRead>(r: &mut JsonReader<R>) -> Result<Vec<usize>, LeafError> {
    r.expect(b'[')?;
    let mut out = Vec::new();
    let mut first = true;
    while r.next_element(&mut first)? {
        r.skip_ws()?;
        let n = r.parse_number()?;
        if n.fract() != 0.0 || n < 0.0 || n > u32::MAX as f64 {
            return Err(LeafError::Schema(format!(
                "num_samples entry {n} is not a non-negative integer"
            )));
        }
        out.push(n as usize);
    }
    Ok(out)
}

/// Range-checks labels (and, for token tasks, inputs) against the final
/// class count, enforces cross-user shape consistency, and only then
/// constructs the (asserting) [`Dataset`]s.
fn finalize_users(
    raw: Vec<RawUser>,
    classes: usize,
    inputs_are_tokens: bool,
) -> Result<Vec<Dataset>, LeafError> {
    let Some(head) = raw.first() else {
        return Err(LeafError::Empty("split has no users".into()));
    };
    let (width, tpr) = (head.width, head.tpr);
    let mut out = Vec::with_capacity(raw.len());
    for u in raw {
        if u.width != width || u.tpr != tpr {
            return Err(LeafError::Schema(format!(
                "user `{}` has row shape {}×{} but the split uses {width}×{tpr}",
                u.name, u.width, u.tpr
            )));
        }
        for &y in &u.ys {
            if y as usize >= classes {
                return Err(LeafError::LabelOutOfRange {
                    user: u.name.clone(),
                    label: y as f64,
                    classes,
                });
            }
        }
        if inputs_are_tokens {
            for &x in &u.xs {
                if x as usize >= classes {
                    return Err(LeafError::Schema(format!(
                        "input token {x} of user `{}` exceeds the {classes}-token vocabulary",
                        u.name
                    )));
                }
            }
        }
        out.push(Dataset::with_stride(
            fedat_tensor::Tensor::from_vec(u.xs, &[u.rows, width]),
            u.ys,
            classes,
            tpr,
        ));
    }
    Ok(out)
}

/// The class count a set of raw splits implies, honoring an explicit
/// Reddit vocabulary and inferring `max_token + 1` otherwise.
fn resolve_classes(bench: &LeafBenchmark, splits: &[&[RawUser]]) -> usize {
    match *bench {
        LeafBenchmark::Femnist { classes, .. } => classes,
        LeafBenchmark::Sent140 { .. } => 2,
        LeafBenchmark::Reddit { vocab } => {
            if vocab > 0 {
                vocab
            } else {
                let mut max = 1u32; // at least a 2-token vocabulary
                for split in splits {
                    for u in *split {
                        for &x in &u.xs {
                            max = max.max(x as u32);
                        }
                        for &y in &u.ys {
                            max = max.max(y);
                        }
                    }
                }
                max as usize + 1
            }
        }
    }
}

/// Parses one LEAF split from any buffered reader.
///
/// This is the stream-level entry point (also the surface the malformed-
/// input property tests drive): it needs no directory, but Sentiment140
/// must be given its vocabulary explicitly — [`FedTask::from_leaf_dir`]
/// resolves one from `vocab.json` or the corpus automatically. A Reddit
/// benchmark with `vocab: 0` infers the vocabulary from this split alone.
pub fn parse_split<R: BufRead>(
    reader: R,
    bench: &LeafBenchmark,
    vocab: Option<&[String]>,
) -> Result<LeafSplit, LeafError> {
    let feat = make_featurizer(bench, vocab)?;
    let raw = parse_raw(reader, &feat)?;
    let classes = resolve_classes(bench, &[&raw]);
    let users = raw.iter().map(|u| u.name.clone()).collect();
    let data = finalize_users(raw, classes, matches!(bench, LeafBenchmark::Reddit { .. }))?;
    Ok(LeafSplit { users, data })
}

// ---------------------------------------------------------------------------
// Directory loading
// ---------------------------------------------------------------------------

/// `*.json` files directly under `dir`, sorted by file name (LEAF shards
/// large corpora across several files; sorting pins the user order).
/// `vocab.json` is the Sentiment140 sidecar, not a split.
fn json_files(dir: &Path) -> Result<Vec<PathBuf>, LeafError> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let is_json = path.extension().is_some_and(|e| e == "json");
        let is_sidecar = path.file_name().is_some_and(|n| n == "vocab.json");
        if path.is_file() && is_json && !is_sidecar {
            out.push(path);
        }
    }
    out.sort();
    Ok(out)
}

fn open(path: &Path) -> Result<BufReader<File>, LeafError> {
    Ok(BufReader::with_capacity(1 << 16, File::open(path)?))
}

/// Parses and concatenates the split files of one side (train or test).
fn parse_files(paths: &[PathBuf], feat: &Featurizer) -> Result<Vec<RawUser>, LeafError> {
    let mut out: Vec<RawUser> = Vec::new();
    let mut seen: HashSet<String> = HashSet::new();
    for path in paths {
        for raw in parse_raw(open(path)?, feat)? {
            if !seen.insert(raw.name.clone()) {
                return Err(LeafError::Schema(format!(
                    "user `{}` appears in more than one split file",
                    raw.name
                )));
            }
            out.push(raw);
        }
    }
    Ok(out)
}

/// Streams `user_data` of one split file, invoking `f` per user subtree.
/// Used by the vocabulary-building pass, which must not featurize.
fn walk_user_data<R: BufRead>(
    reader: R,
    f: &mut impl FnMut(&str, &JsonValue) -> Result<(), LeafError>,
) -> Result<(), LeafError> {
    let mut r = JsonReader::new(reader);
    r.expect(b'{')?;
    let mut first = true;
    while let Some(key) = r.next_key(&mut first)? {
        if key == "user_data" {
            r.expect(b'{')?;
            let mut ufirst = true;
            while let Some(user) = r.next_key(&mut ufirst)? {
                let subtree = r.parse_value(2)?;
                f(&user, &subtree)?;
            }
        } else {
            r.parse_value(1)?;
        }
    }
    r.expect_eof()
}

/// Builds the deterministic Sentiment140 vocabulary from the training
/// corpus: tokens ordered by descending count, ties broken by the token
/// itself, truncated to `max_vocab`. A pure function of the corpus — two
/// machines pointed at the same download build the identical feature map.
pub fn build_sent140_vocab(
    train_paths: &[PathBuf],
    max_vocab: usize,
) -> Result<Vec<String>, LeafError> {
    let mut counts: HashMap<String, u64> = HashMap::new();
    for path in train_paths {
        walk_user_data(open(path)?, &mut |user, v| {
            let x = v
                .get("x")
                .and_then(|x| x.as_array())
                .ok_or_else(|| LeafError::Schema(format!("user `{user}` has no `x` array")))?;
            for (i, xi) in x.iter().enumerate() {
                for tok in sample_text(user, i, xi)?.split_whitespace() {
                    *counts.entry(tok.to_string()).or_insert(0) += 1;
                }
            }
            Ok(())
        })?;
    }
    if counts.is_empty() {
        return Err(LeafError::Empty(
            "sent140 corpus has no tokens to build a vocabulary from".into(),
        ));
    }
    let mut ranked: Vec<(String, u64)> = counts.into_iter().collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    ranked.truncate(max_vocab);
    Ok(ranked.into_iter().map(|(t, _)| t).collect())
}

/// Reads the `vocab.json` sidecar (a JSON array of tokens in feature
/// order) that [`writer`] emits next to generated corpora.
fn read_vocab_sidecar(path: &Path) -> Result<Vec<String>, LeafError> {
    let mut r = JsonReader::new(open(path)?);
    let v = r.parse_value(0)?;
    r.expect_eof()?;
    let arr = v.as_array().ok_or_else(|| {
        LeafError::Schema(format!(
            "{}: expected a JSON array of tokens",
            path.display()
        ))
    })?;
    arr.iter()
        .map(|t| {
            t.as_str().map(str::to_string).ok_or_else(|| {
                LeafError::Schema(format!(
                    "{}: vocabulary entries must be strings, found {}",
                    path.display(),
                    t.type_name()
                ))
            })
        })
        .collect()
}

impl FedTask {
    /// Loads a LEAF-format directory as a ready-to-train task, preserving
    /// the **natural per-user partition** (no synthetic splitter runs).
    ///
    /// Layouts (see module docs): `dir/train/*.json` [+ `dir/test/*.json`]
    /// uses the on-disk train/test split verbatim; a flat `dir/*.json`
    /// corpus is split 80/20 per user with the suite's seeded scheme (only
    /// there does `seed` matter). For [`LeafBenchmark::Sent140`] the
    /// vocabulary comes from a `dir/vocab.json` sidecar when present and is
    /// otherwise built deterministically from the training corpus via
    /// [`build_sent140_vocab`].
    ///
    /// Everything is validated before any asserting constructor runs, so
    /// malformed input yields a typed [`LeafError`], never a panic.
    pub fn from_leaf_dir(
        dir: impl AsRef<Path>,
        bench: LeafBenchmark,
        seed: u64,
    ) -> Result<FedTask, LeafError> {
        let dir = dir.as_ref();
        bench.validate()?;
        let train_dir = dir.join("train");
        let (train_paths, test_paths) = if train_dir.is_dir() {
            let test_dir = dir.join("test");
            let test = if test_dir.is_dir() {
                json_files(&test_dir)?
            } else {
                Vec::new()
            };
            (json_files(&train_dir)?, test)
        } else {
            (json_files(dir)?, Vec::new())
        };
        if train_paths.is_empty() {
            return Err(LeafError::Empty(format!(
                "no .json split files under {}",
                dir.display()
            )));
        }
        let vocab: Option<Vec<String>> = match bench {
            LeafBenchmark::Sent140 { max_vocab } => {
                let sidecar = dir.join("vocab.json");
                Some(if sidecar.is_file() {
                    read_vocab_sidecar(&sidecar)?
                } else {
                    build_sent140_vocab(&train_paths, max_vocab)?
                })
            }
            _ => None,
        };
        let feat = make_featurizer(&bench, vocab.as_deref())?;
        let train = parse_files(&train_paths, &feat)?;
        let test = if test_paths.is_empty() {
            None
        } else {
            Some(parse_files(&test_paths, &feat)?)
        };

        let classes = match &test {
            Some(t) => resolve_classes(&bench, &[&train, t]),
            None => resolve_classes(&bench, &[&train]),
        };
        let tokens = matches!(bench, LeafBenchmark::Reddit { .. });
        let fed = match test {
            Some(test) => {
                // Natural partition: the on-disk split is the split.
                let train_users: Vec<String> = train.iter().map(|u| u.name.clone()).collect();
                let train_data = finalize_users(train, classes, tokens)?;
                let test_users: Vec<String> = test.iter().map(|u| u.name.clone()).collect();
                let mut test_by_name: HashMap<String, Dataset> = test_users
                    .into_iter()
                    .zip(finalize_users(test, classes, tokens)?)
                    .collect();
                let mut clients = Vec::with_capacity(train_data.len());
                for (name, train) in train_users.iter().zip(train_data) {
                    let test = test_by_name
                        .remove(name)
                        .ok_or_else(|| LeafError::MissingUser(name.clone()))?;
                    clients.push(ClientData { train, test });
                }
                if let Some(extra) = test_by_name.into_keys().next() {
                    return Err(LeafError::Schema(format!(
                        "test split contains user `{extra}` absent from the train split"
                    )));
                }
                FederatedDataset::from_client_splits(clients)
            }
            None => {
                let parts = finalize_users(train, classes, tokens)?;
                for (i, p) in parts.iter().enumerate() {
                    if p.len() < 2 {
                        return Err(LeafError::Schema(format!(
                            "flat-layout user #{i} has {} samples — the 80/20 split needs \
                             at least 2 (provide train/ and test/ subdirectories instead)",
                            p.len()
                        )));
                    }
                }
                FederatedDataset::from_partitions(parts, seed)
            }
        };

        let (model, target_accuracy) = match bench {
            LeafBenchmark::Femnist { height, width, .. } => (
                ModelSpec::CnnLite {
                    channels: 1,
                    height,
                    width,
                    classes,
                },
                0.70,
            ),
            LeafBenchmark::Sent140 { .. } => (
                ModelSpec::Logistic {
                    input: fed.features,
                    classes: 2,
                },
                0.73,
            ),
            LeafBenchmark::Reddit { .. } => (
                ModelSpec::LstmLm {
                    vocab: classes,
                    embed: 16,
                    hidden: 24,
                },
                0.25,
            ),
        };
        Ok(FedTask {
            name: format!("{}-leaf", bench.name()),
            fed,
            model,
            target_accuracy,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn femnist_small() -> LeafBenchmark {
        LeafBenchmark::Femnist {
            height: 4,
            width: 4,
            classes: 3,
        }
    }

    fn tiny_femnist_doc() -> String {
        let px: Vec<String> = (0..16).map(|i| format!("{}", i as f32 * 0.5)).collect();
        let row = px.join(", ");
        format!(
            r#"{{"users": ["a", "b"], "num_samples": [2, 1],
                "user_data": {{
                  "a": {{"x": [[{row}], [{row}]], "y": [0, 2]}},
                  "b": {{"x": [[{row}]], "y": [1]}}
                }}}}"#
        )
    }

    #[test]
    fn tiny_split_parses_in_user_order() {
        let split = parse_split(
            Cursor::new(tiny_femnist_doc().into_bytes()),
            &femnist_small(),
            None,
        )
        .unwrap();
        assert_eq!(split.users, vec!["a".to_string(), "b".to_string()]);
        assert_eq!(split.data[0].len(), 2);
        assert_eq!(split.data[1].len(), 1);
        assert_eq!(split.data[0].y, vec![0, 2]);
        assert_eq!(split.data[0].features(), 16);
        assert_eq!(split.data[0].x.row(0)[2], 1.0);
    }

    #[test]
    fn unknown_top_level_keys_are_skipped() {
        let doc = tiny_femnist_doc().replacen(
            "\"users\"",
            "\"hierarchies\": [[1, {\"deep\": true}]], \"users\"",
            1,
        );
        assert!(parse_split(Cursor::new(doc.into_bytes()), &femnist_small(), None).is_ok());
    }

    #[test]
    fn sent140_counts_tokens_against_vocab() {
        let doc = r#"{"users": ["u"], "num_samples": [2],
            "user_data": {"u": {"x": ["good good bad", [0, "bad ugly"]], "y": [1, 0]}}}"#;
        let vocab = vec!["bad".to_string(), "good".to_string()];
        let split = parse_split(
            Cursor::new(doc.as_bytes()),
            &LeafBenchmark::sent140(),
            Some(&vocab),
        )
        .unwrap();
        assert_eq!(split.data[0].x.row(0), &[1.0, 2.0]);
        assert_eq!(split.data[0].x.row(1), &[1.0, 0.0]); // "ugly" is OOV
        assert_eq!(split.data[0].y, vec![1, 0]);
    }

    #[test]
    fn reddit_infers_vocab_and_strides() {
        let doc = r#"{"users": ["u"], "num_samples": [2],
            "user_data": {"u": {"x": [[0, 4, 2], [1, 1, 1]], "y": [[4, 2, 3], [1, 1, 0]]}}}"#;
        let split =
            parse_split(Cursor::new(doc.as_bytes()), &LeafBenchmark::reddit(), None).unwrap();
        assert_eq!(split.data[0].targets_per_row, 3);
        assert_eq!(split.data[0].classes, 5);
        assert_eq!(split.data[0].y, vec![4, 2, 3, 1, 1, 0]);
    }

    #[test]
    fn sent140_without_vocab_is_a_schema_error_at_reader_level() {
        let doc = r#"{"users": [], "num_samples": [], "user_data": {}}"#;
        assert!(matches!(
            parse_split(Cursor::new(doc.as_bytes()), &LeafBenchmark::sent140(), None),
            Err(LeafError::Schema(_))
        ));
    }

    #[test]
    fn femnist_benchmark_validates_pool_divisibility() {
        let bad = LeafBenchmark::Femnist {
            height: 30,
            width: 30,
            classes: 62,
        };
        assert!(matches!(bad.validate(), Err(LeafError::Schema(_))));
        assert!(LeafBenchmark::femnist().validate().is_ok());
    }

    #[test]
    fn errors_display_their_context() {
        let e = LeafError::NumSamplesMismatch {
            user: "u9".into(),
            declared: 5,
            actual: 3,
        };
        let msg = e.to_string();
        assert!(
            msg.contains("u9") && msg.contains('5') && msg.contains('3'),
            "{msg}"
        );
    }
}
