//! LEAF writer: emits valid LEAF directories from in-memory tasks.
//!
//! The build environment has no network access, so real LEAF downloads can
//! never appear in CI — this writer is what makes the whole [`super`]
//! subsystem testable end to end (generate fixture → parse → train) and
//! gives users a documented on-disk interchange format for their own
//! corpora. Output layout:
//!
//! ```text
//! dir/
//!   vocab.json        (Sentiment140 only: tokens in feature order)
//!   train/data.json
//!   test/data.json
//! ```
//!
//! Round-trip contract (property-tested in `tests/leaf_roundtrip.rs`):
//! for a task compatible with the chosen benchmark,
//! `FedTask::from_leaf_dir(write_leaf_task(task))` reproduces the task's
//! features, labels, user order and train/test split **bitwise**. Floats
//! are printed with Rust's shortest-round-trip formatting, Sentiment140
//! count features become synthetic `w0007`-style tokens repeated
//! count-many times (with the matching `vocab.json` sidecar), and Reddit
//! token ids are written as plain integers.

use super::{LeafBenchmark, LeafError};
use crate::dataset::Dataset;
use crate::federated::FederatedDataset;
use crate::partition::Partitioner;
use crate::suite::FedTask;
use crate::synth::{synth_images, ImageSynthSpec};
use fedat_nn::models::ModelSpec;
use fedat_tensor::rng::{fill_normal, rng_for, tags};
use std::fs;
use std::io::{BufWriter, Write};
use std::path::Path;

/// Writes `task` as a LEAF directory for `bench` (train/ + test/ [+
/// `vocab.json`]), creating `dir` as needed. The task must be compatible
/// with the benchmark's featurizer — see the module docs for the exact
/// requirements per benchmark; incompatibilities are reported as
/// [`LeafError::Schema`], never written as silently-corrupt files.
pub fn write_leaf_task(task: &FedTask, bench: &LeafBenchmark, dir: &Path) -> Result<(), LeafError> {
    validate_compat(task, bench)?;
    fs::create_dir_all(dir.join("train"))?;
    fs::create_dir_all(dir.join("test"))?;
    if let LeafBenchmark::Sent140 { .. } = bench {
        write_vocab_sidecar(&dir.join("vocab.json"), task.fed.features)?;
    }
    let trains: Vec<&Dataset> = task.fed.clients.iter().map(|c| &c.train).collect();
    let tests: Vec<&Dataset> = task.fed.clients.iter().map(|c| &c.test).collect();
    write_split(&dir.join("train").join("data.json"), &trains, bench)?;
    write_split(&dir.join("test").join("data.json"), &tests, bench)?;
    Ok(())
}

fn validate_compat(task: &FedTask, bench: &LeafBenchmark) -> Result<(), LeafError> {
    match *bench {
        LeafBenchmark::Femnist {
            height,
            width,
            classes,
        } => {
            if task.fed.features != height * width {
                return Err(LeafError::Schema(format!(
                    "task has {} features but the femnist benchmark expects {height}×{width}",
                    task.fed.features
                )));
            }
            if task.fed.classes != classes {
                return Err(LeafError::Schema(format!(
                    "task has {} classes but the femnist benchmark expects {classes}",
                    task.fed.classes
                )));
            }
            if task.fed.targets_per_row != 1 {
                return Err(LeafError::Schema(
                    "femnist is a classification task (one target per row)".into(),
                ));
            }
        }
        LeafBenchmark::Sent140 { .. } => {
            if task.fed.classes != 2 || task.fed.targets_per_row != 1 {
                return Err(LeafError::Schema(
                    "sent140 is a binary classification task".into(),
                ));
            }
            if task.fed.features == 0 || task.fed.features > 99_999 {
                return Err(LeafError::Schema(format!(
                    "sent140 writer supports 1..=99999 count features, got {}",
                    task.fed.features
                )));
            }
        }
        LeafBenchmark::Reddit { vocab } => {
            if task.fed.targets_per_row < 2 {
                return Err(LeafError::Schema(
                    "reddit tasks carry one next-token target per sequence position \
                     (targets_per_row must exceed 1)"
                        .into(),
                ));
            }
            if vocab != 0 && vocab != task.fed.classes {
                return Err(LeafError::Schema(format!(
                    "benchmark vocabulary {vocab} disagrees with the task's {} classes",
                    task.fed.classes
                )));
            }
        }
    }
    Ok(())
}

/// The synthetic token the writer uses for Sentiment140 feature `j`.
/// Deterministic, whitespace-free, lexicographically ordered by index so
/// a vocabulary rebuilt from the corpus ties break predictably.
pub fn sent140_token(j: usize) -> String {
    format!("w{j:05}")
}

fn write_vocab_sidecar(path: &Path, features: usize) -> Result<(), LeafError> {
    let mut w = BufWriter::new(fs::File::create(path)?);
    write!(w, "[")?;
    for j in 0..features {
        if j > 0 {
            write!(w, ", ")?;
        }
        write!(w, "\"{}\"", sent140_token(j))?;
    }
    writeln!(w, "]")?;
    w.flush()?;
    Ok(())
}

/// The generated name of client `i` (also the parse-back user order).
pub fn user_name(i: usize) -> String {
    format!("u{i:05}")
}

fn write_split(path: &Path, parts: &[&Dataset], bench: &LeafBenchmark) -> Result<(), LeafError> {
    let mut w = BufWriter::with_capacity(1 << 16, fs::File::create(path)?);
    writeln!(w, "{{")?;
    write!(w, "  \"users\": [")?;
    for i in 0..parts.len() {
        if i > 0 {
            write!(w, ", ")?;
        }
        write!(w, "\"{}\"", user_name(i))?;
    }
    writeln!(w, "],")?;
    write!(w, "  \"num_samples\": [")?;
    for (i, p) in parts.iter().enumerate() {
        if i > 0 {
            write!(w, ", ")?;
        }
        write!(w, "{}", p.len())?;
    }
    writeln!(w, "],")?;
    writeln!(w, "  \"user_data\": {{")?;
    for (i, p) in parts.iter().enumerate() {
        write!(w, "    \"{}\": {{\"x\": [", user_name(i))?;
        for r in 0..p.len() {
            if r > 0 {
                write!(w, ", ")?;
            }
            write_sample(&mut w, p, r, bench)?;
        }
        write!(w, "], \"y\": [")?;
        match bench {
            LeafBenchmark::Reddit { .. } => {
                let tpr = p.targets_per_row;
                for (r, chunk) in p.y.chunks(tpr).enumerate() {
                    if r > 0 {
                        write!(w, ", ")?;
                    }
                    write!(w, "[")?;
                    for (j, &t) in chunk.iter().enumerate() {
                        if j > 0 {
                            write!(w, ", ")?;
                        }
                        write!(w, "{t}")?;
                    }
                    write!(w, "]")?;
                }
            }
            _ => {
                for (r, &t) in p.y.iter().enumerate() {
                    if r > 0 {
                        write!(w, ", ")?;
                    }
                    write!(w, "{t}")?;
                }
            }
        }
        writeln!(w, "]}}{}", if i + 1 < parts.len() { "," } else { "" })?;
    }
    writeln!(w, "  }}")?;
    writeln!(w, "}}")?;
    w.flush()?;
    Ok(())
}

fn write_sample(
    w: &mut impl Write,
    p: &Dataset,
    r: usize,
    bench: &LeafBenchmark,
) -> Result<(), LeafError> {
    let row = p.x.row(r);
    match bench {
        LeafBenchmark::Femnist { .. } => {
            write!(w, "[")?;
            for (j, &v) in row.iter().enumerate() {
                if j > 0 {
                    write!(w, ", ")?;
                }
                if !v.is_finite() {
                    return Err(LeafError::Schema(format!(
                        "non-finite feature {v} in row {r} cannot be written as JSON"
                    )));
                }
                // Rust's shortest-round-trip float formatting: parsing the
                // text back through f64 recovers the exact f32.
                write!(w, "{v}")?;
            }
            write!(w, "]")?;
        }
        LeafBenchmark::Sent140 { .. } => {
            write!(w, "\"")?;
            let mut first = true;
            for (j, &v) in row.iter().enumerate() {
                if !(v.fract() == 0.0 && (0.0..=100_000.0).contains(&v)) {
                    return Err(LeafError::Schema(format!(
                        "sent140 features must be small non-negative integer counts, \
                         got {v} in row {r}"
                    )));
                }
                for _ in 0..v as usize {
                    if !first {
                        write!(w, " ")?;
                    }
                    first = false;
                    write!(w, "{}", sent140_token(j))?;
                }
            }
            write!(w, "\"")?;
        }
        LeafBenchmark::Reddit { .. } => {
            write!(w, "[")?;
            for (j, &v) in row.iter().enumerate() {
                if j > 0 {
                    write!(w, ", ")?;
                }
                if !(v.fract() == 0.0 && v >= 0.0 && (v as usize) < p.classes) {
                    return Err(LeafError::Schema(format!(
                        "reddit inputs must be token ids in [0, {}), got {v} in row {r}",
                        p.classes
                    )));
                }
                write!(w, "{}", v as u32)?;
            }
            write!(w, "]")?;
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Fixture generation
// ---------------------------------------------------------------------------

/// A FEMNIST-shaped synthetic federation at the real benchmark's scale per
/// sample: 1×28×28 grayscale images, 62 classes, Dirichlet(0.3) label skew
/// plus a per-client "writer style" pixel shift, and uneven per-client
/// sizes from the partitioner. Unlike [`crate::suite::femnist_like`] (8×8,
/// sized for simulation sweeps) this matches the LEAF featurizer's default
/// shape, so a written copy loads back through
/// [`LeafBenchmark::femnist`](super::LeafBenchmark::femnist) verbatim.
pub fn synth_femnist_task(n_clients: usize, per_client: usize, seed: u64) -> FedTask {
    assert!(
        n_clients > 0 && per_client >= 4,
        "need clients with ≥4 samples"
    );
    let mut rng = rng_for(seed.wrapping_add(11), tags::DATA);
    let spec = ImageSynthSpec {
        channels: 1,
        height: 28,
        width: 28,
        classes: 62,
        signal: 1.0,
        noise: 0.55,
    };
    let pool = synth_images(&mut rng, &spec, n_clients * per_client);
    let mut parts = Partitioner::Dirichlet { alpha: 0.3 }.partition(&pool, n_clients, &mut rng);
    for (i, part) in parts.iter_mut().enumerate() {
        let mut style_rng = rng_for(seed ^ 0x1EAF ^ ((i as u64) << 24), tags::DATA);
        let mut style = vec![0.0f32; part.features()];
        fill_normal(&mut style_rng, &mut style, 0.0, 0.25);
        crate::suite::apply_style(part, &style);
    }
    let fed = FederatedDataset::from_partitions(parts, seed.wrapping_add(11));
    FedTask {
        name: "femnist-leaf".to_string(),
        fed,
        model: ModelSpec::CnnLite {
            channels: 1,
            height: 28,
            width: 28,
            classes: 62,
        },
        target_accuracy: 0.70,
    }
}

/// Generates a FEMNIST-shaped fixture under `dir` and returns the task
/// that was written. `FedTask::from_leaf_dir(dir, LeafBenchmark::femnist(),
/// _)` reproduces it bitwise — the zero-network path CI and the
/// `leaf_run` example train on.
pub fn write_femnist_fixture(
    dir: &Path,
    n_clients: usize,
    per_client: usize,
    seed: u64,
) -> Result<FedTask, LeafError> {
    let task = synth_femnist_task(n_clients, per_client, seed);
    write_leaf_task(&task, &LeafBenchmark::femnist(), dir)?;
    Ok(task)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    struct TempDir(std::path::PathBuf);

    impl TempDir {
        fn new(label: &str) -> Self {
            static N: AtomicUsize = AtomicUsize::new(0);
            let path = std::env::temp_dir().join(format!(
                "fedat-leaf-writer-{label}-{}-{}",
                std::process::id(),
                N.fetch_add(1, Ordering::Relaxed)
            ));
            fs::create_dir_all(&path).expect("temp dir");
            TempDir(path)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn femnist_fixture_round_trips_bitwise() {
        let tmp = TempDir::new("fixture");
        let written = write_femnist_fixture(&tmp.0, 3, 8, 42).expect("write fixture");
        let loaded = FedTask::from_leaf_dir(&tmp.0, LeafBenchmark::femnist(), 42).expect("reload");
        assert_eq!(loaded.name, written.name);
        assert_eq!(loaded.fed.num_clients(), written.fed.num_clients());
        assert_eq!(loaded.fed.classes, 62);
        assert_eq!(loaded.fed.features, 784);
        for (a, b) in loaded.fed.clients.iter().zip(written.fed.clients.iter()) {
            assert_eq!(a.train.y, b.train.y);
            assert_eq!(a.test.y, b.test.y);
            let bits = |d: &Dataset| d.x.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&a.train), bits(&b.train), "train features drifted");
            assert_eq!(bits(&a.test), bits(&b.test), "test features drifted");
        }
        assert_eq!(loaded.fed.global_test.y, written.fed.global_test.y);
    }

    #[test]
    fn fixture_is_deterministic_per_seed() {
        let a = synth_femnist_task(4, 8, 7);
        let b = synth_femnist_task(4, 8, 7);
        let c = synth_femnist_task(4, 8, 8);
        assert_eq!(a.fed.global_test.x.data(), b.fed.global_test.x.data());
        assert_ne!(a.fed.global_test.x.data(), c.fed.global_test.x.data());
    }

    #[test]
    fn incompatible_tasks_are_rejected_not_corrupted() {
        let tmp = TempDir::new("compat");
        let task = synth_femnist_task(2, 6, 1);
        // Wrong pixel count for the benchmark.
        let bad = LeafBenchmark::Femnist {
            height: 8,
            width: 8,
            classes: 62,
        };
        assert!(matches!(
            write_leaf_task(&task, &bad, &tmp.0),
            Err(LeafError::Schema(_))
        ));
        // Continuous features cannot be sent140 counts.
        assert!(matches!(
            write_leaf_task(&task, &LeafBenchmark::sent140(), &tmp.0),
            Err(LeafError::Schema(_))
        ));
    }
}
