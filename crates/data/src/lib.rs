//! # fedat-data — synthetic federated datasets and non-IID partitioners
//!
//! The paper evaluates on five federated datasets (CIFAR-10, Fashion-MNIST,
//! Sentiment140, FEMNIST, Reddit) under the LEAF benchmark. Those corpora
//! are not redistributable here, so this crate generates *synthetic
//! equivalents with the same statistical shape* (see DESIGN.md §2):
//!
//! * [`synth`] — class-template image generators, separable feature-vector
//!   tasks, and per-user Markov token streams,
//! * [`partition`] — IID, shard-based `#classes-per-client` (exactly the
//!   McMahan et al. scheme the paper uses), and Dirichlet partitioners,
//! * [`federated`] — the [`federated::FederatedDataset`]
//!   container with per-client 80/20 train/test splits,
//! * [`suite`] — one ready-made [`suite::FedTask`] per paper
//!   dataset, pairing data with the matching
//!   [`ModelSpec`](fedat_nn::models::ModelSpec),
//! * [`leaf`] — loaders for the **real** LEAF on-disk format
//!   (FEMNIST/Sent140/Reddit) behind the same [`suite::FedTask`]
//!   interface, preserving the natural per-user partition, plus the
//!   [`leaf::writer`] that emits that format (and CI fixtures) offline.
//!
//! Everything is a deterministic function of `(generator, seed)` — for
//! LEAF directories, of the bytes on disk.

pub mod dataset;
pub mod federated;
pub mod leaf;
pub mod partition;
pub mod suite;
pub mod synth;

pub use dataset::Dataset;
pub use federated::{ClientData, FederatedDataset};
pub use leaf::{LeafBenchmark, LeafError};
pub use partition::Partitioner;
pub use suite::FedTask;
