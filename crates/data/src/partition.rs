//! Partitioning a global dataset across federated clients.
//!
//! The paper's non-IID setting follows McMahan et al.: sort by label, slice
//! into shards, give each client `#classes` shards ([`Partitioner::Shard`]).
//! [`Partitioner::Dirichlet`] is the standard label-distribution skew used
//! for the FEMNIST-like natural heterogeneity.

use crate::dataset::Dataset;
use fedat_tensor::rng::{shuffle, standard_normal, uniform};
use rand::{Rng, RngExt};

/// A client-partitioning strategy.
#[derive(Clone, Debug, PartialEq)]
pub enum Partitioner {
    /// Shuffle uniformly and deal evenly.
    Iid,
    /// Label-sorted shards; each client receives `classes_per_client`
    /// shards, so it sees at most that many distinct labels.
    Shard {
        /// Approximate number of distinct classes per client.
        classes_per_client: usize,
    },
    /// For each class, split its samples across clients with proportions
    /// drawn from `Dirichlet(alpha)`. Smaller `alpha` = more skew.
    Dirichlet {
        /// Concentration parameter (> 0).
        alpha: f64,
    },
}

impl Partitioner {
    /// Splits `dataset` into `n_clients` disjoint client datasets covering
    /// every sample exactly once.
    ///
    /// # Panics
    /// Panics if `n_clients` is zero or exceeds the sample count.
    pub fn partition<R: Rng + ?Sized>(
        &self,
        dataset: &Dataset,
        n_clients: usize,
        rng: &mut R,
    ) -> Vec<Dataset> {
        assert!(n_clients > 0, "need at least one client");
        assert!(
            n_clients * 2 <= dataset.len(),
            "too many clients ({n_clients}) for {} samples",
            dataset.len()
        );
        let assignment = match self {
            Partitioner::Iid => iid_assignment(dataset.len(), n_clients, rng),
            Partitioner::Shard { classes_per_client } => {
                shard_assignment(dataset, n_clients, *classes_per_client, rng)
            }
            Partitioner::Dirichlet { alpha } => {
                dirichlet_assignment(dataset, n_clients, *alpha, rng)
            }
        };
        let mut balanced = assignment;
        rebalance_min_samples(&mut balanced, 2);
        balanced.iter().map(|idx| dataset.subset(idx)).collect()
    }
}

fn iid_assignment<R: Rng + ?Sized>(n: usize, clients: usize, rng: &mut R) -> Vec<Vec<usize>> {
    let mut idx: Vec<usize> = (0..n).collect();
    shuffle(rng, &mut idx);
    let base = n / clients;
    let extra = n % clients;
    let mut out = Vec::with_capacity(clients);
    let mut cursor = 0usize;
    for c in 0..clients {
        let take = base + usize::from(c < extra);
        out.push(idx[cursor..cursor + take].to_vec());
        cursor += take;
    }
    out
}

fn shard_assignment<R: Rng + ?Sized>(
    dataset: &Dataset,
    clients: usize,
    classes_per_client: usize,
    rng: &mut R,
) -> Vec<Vec<usize>> {
    assert!(classes_per_client >= 1, "classes_per_client must be ≥ 1");
    // Sort indices by label (stable), shuffling within each label so shard
    // contents are random.
    let mut by_label: Vec<Vec<usize>> = vec![Vec::new(); dataset.classes];
    for i in 0..dataset.len() {
        by_label[dataset.y[i * dataset.targets_per_row] as usize].push(i);
    }
    for bucket in by_label.iter_mut() {
        shuffle(rng, bucket);
    }
    let sorted: Vec<usize> = by_label.into_iter().flatten().collect();

    let num_shards = clients * classes_per_client;
    assert!(
        num_shards <= sorted.len(),
        "more shards ({num_shards}) than samples ({})",
        sorted.len()
    );
    let shard_size = sorted.len() / num_shards;
    let mut shard_order: Vec<usize> = (0..num_shards).collect();
    shuffle(rng, &mut shard_order);

    let mut out = vec![Vec::new(); clients];
    for (pos, &shard) in shard_order.iter().enumerate() {
        let client = pos / classes_per_client;
        let lo = shard * shard_size;
        let hi = if shard == num_shards - 1 {
            sorted.len()
        } else {
            lo + shard_size
        };
        out[client].extend_from_slice(&sorted[lo..hi]);
    }
    out
}

/// Marsaglia–Tsang gamma sampling (shape `a`, scale 1).
fn sample_gamma<R: Rng + ?Sized>(rng: &mut R, a: f64) -> f64 {
    if a < 1.0 {
        // Boost: Gamma(a) = Gamma(a+1) · U^{1/a}.
        let u: f64 = rng.random::<f64>().max(1e-12);
        return sample_gamma(rng, a + 1.0) * u.powf(1.0 / a);
    }
    let d = a - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng) as f64;
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.random::<f64>().max(1e-300);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

/// Draws a Dirichlet(alpha, …, alpha) sample of dimension `k`.
pub fn sample_dirichlet<R: Rng + ?Sized>(rng: &mut R, alpha: f64, k: usize) -> Vec<f64> {
    assert!(alpha > 0.0, "alpha must be positive");
    let mut g: Vec<f64> = (0..k).map(|_| sample_gamma(rng, alpha)).collect();
    let sum: f64 = g.iter().sum();
    if sum <= 0.0 {
        // Degenerate draw (can only happen with pathological alpha): uniform.
        return vec![1.0 / k as f64; k];
    }
    for v in g.iter_mut() {
        *v /= sum;
    }
    g
}

fn dirichlet_assignment<R: Rng + ?Sized>(
    dataset: &Dataset,
    clients: usize,
    alpha: f64,
    rng: &mut R,
) -> Vec<Vec<usize>> {
    let mut out = vec![Vec::new(); clients];
    let mut by_label: Vec<Vec<usize>> = vec![Vec::new(); dataset.classes];
    for i in 0..dataset.len() {
        by_label[dataset.y[i * dataset.targets_per_row] as usize].push(i);
    }
    for bucket in by_label.into_iter() {
        if bucket.is_empty() {
            continue;
        }
        let mut items = bucket;
        shuffle(rng, &mut items);
        let props = sample_dirichlet(rng, alpha, clients);
        // Largest-remainder apportionment of this class across clients.
        let n = items.len();
        let mut counts: Vec<usize> = props.iter().map(|p| (p * n as f64) as usize).collect();
        let mut assigned: usize = counts.iter().sum();
        // Distribute the remainder to the largest fractional parts.
        let mut fracs: Vec<(usize, f64)> = props
            .iter()
            .enumerate()
            .map(|(c, p)| (c, p * n as f64 - counts[c] as f64))
            .collect();
        fracs.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        let mut fi = 0usize;
        while assigned < n {
            counts[fracs[fi % clients].0] += 1;
            assigned += 1;
            fi += 1;
        }
        let mut cursor = 0usize;
        for (c, &take) in counts.iter().enumerate() {
            out[c].extend_from_slice(&items[cursor..cursor + take]);
            cursor += take;
        }
    }
    out
}

/// Moves samples from the largest clients so every client has at least
/// `min` samples (needed for per-client train/test splits).
fn rebalance_min_samples(assignment: &mut [Vec<usize>], min: usize) {
    #[allow(clippy::while_let_loop)] // a second exit condition lives mid-body
    loop {
        let Some(poorest) = assignment
            .iter()
            .enumerate()
            .filter(|(_, a)| a.len() < min)
            .min_by_key(|(_, a)| a.len())
            .map(|(i, _)| i)
        else {
            break;
        };
        let richest = assignment
            .iter()
            .enumerate()
            .max_by_key(|(_, a)| a.len())
            .map(|(i, _)| i)
            .expect("non-empty assignment list");
        if assignment[richest].len() <= min {
            break; // nothing left to take without starving the donor
        }
        let moved = assignment[richest]
            .pop()
            .expect("richest client is non-empty");
        assignment[poorest].push(moved);
    }
}

/// Jensen–Shannon-style heterogeneity score: mean L1 distance between each
/// client's label distribution and the global one, in `[0, 2]`.
/// 0 = perfectly IID. Useful for tests and diagnostics.
pub fn label_skew(parts: &[Dataset]) -> f64 {
    assert!(!parts.is_empty());
    let classes = parts[0].classes;
    let mut global = vec![0.0f64; classes];
    let mut total = 0.0f64;
    for p in parts {
        for (g, &c) in global.iter_mut().zip(p.label_histogram().iter()) {
            *g += c as f64;
            total += c as f64;
        }
    }
    for g in global.iter_mut() {
        *g /= total;
    }
    let mut acc = 0.0f64;
    for p in parts {
        let h = p.label_histogram();
        let n: usize = h.iter().sum();
        let mut l1 = 0.0f64;
        for (c, &cnt) in h.iter().enumerate() {
            l1 += (cnt as f64 / n as f64 - global[c]).abs();
        }
        acc += l1;
    }
    acc / parts.len() as f64
}

/// Deals per-client sample budgets that sum to `total`, with sizes varying
/// uniformly within `±spread` of the mean (used by the natural generators
/// to mimic unequal user activity).
pub fn uneven_budgets<R: Rng + ?Sized>(
    rng: &mut R,
    total: usize,
    clients: usize,
    spread: f64,
) -> Vec<usize> {
    assert!((0.0..1.0).contains(&spread), "spread must be in [0,1)");
    let mean = total as f64 / clients as f64;
    let mut budgets: Vec<usize> = (0..clients)
        .map(|_| (mean * (1.0 + uniform(rng, -spread, spread))).max(2.0) as usize)
        .collect();
    // Adjust to hit the exact total.
    let mut diff = total as isize - budgets.iter().sum::<usize>() as isize;
    let mut i = 0usize;
    while diff != 0 {
        let c = i % clients;
        if diff > 0 {
            budgets[c] += 1;
            diff -= 1;
        } else if budgets[c] > 2 {
            budgets[c] -= 1;
            diff += 1;
        }
        i += 1;
    }
    budgets
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{synth_features, FeatureSynthSpec};
    use fedat_tensor::rng::rng_for;

    fn toy_dataset(n: usize, classes: usize) -> Dataset {
        let spec = FeatureSynthSpec {
            features: 4,
            classes,
            separation: 1.0,
            noise: 0.2,
        };
        synth_features(&mut rng_for(99, 1), &spec, n)
    }

    fn assert_exact_cover(parts: &[Dataset], total: usize) {
        let sum: usize = parts.iter().map(|p| p.len()).sum();
        assert_eq!(sum, total, "partition lost or duplicated samples");
    }

    #[test]
    fn iid_partition_is_even_and_covering() {
        let d = toy_dataset(103, 5);
        let parts = Partitioner::Iid.partition(&d, 10, &mut rng_for(1, 1));
        assert_eq!(parts.len(), 10);
        assert_exact_cover(&parts, 103);
        for p in &parts {
            assert!(p.len() == 10 || p.len() == 11);
        }
    }

    #[test]
    fn iid_partition_has_low_skew() {
        let d = toy_dataset(1000, 5);
        let parts = Partitioner::Iid.partition(&d, 10, &mut rng_for(2, 1));
        assert!(
            label_skew(&parts) < 0.3,
            "IID skew too high: {}",
            label_skew(&parts)
        );
    }

    #[test]
    fn shard_partition_limits_classes_per_client() {
        let d = toy_dataset(1000, 10);
        let parts = Partitioner::Shard {
            classes_per_client: 2,
        }
        .partition(&d, 20, &mut rng_for(3, 1));
        assert_exact_cover(&parts, 1000);
        for (i, p) in parts.iter().enumerate() {
            // A client holds ≤ classes_per_client + 1 labels (+1 from shard
            // boundaries straddling a label change).
            assert!(
                p.distinct_labels() <= 3,
                "client {i} sees {} labels",
                p.distinct_labels()
            );
        }
    }

    #[test]
    fn shard_skew_decreases_with_more_classes() {
        let d = toy_dataset(2000, 10);
        let skew2 = label_skew(
            &Partitioner::Shard {
                classes_per_client: 2,
            }
            .partition(&d, 20, &mut rng_for(4, 1)),
        );
        let skew8 = label_skew(
            &Partitioner::Shard {
                classes_per_client: 8,
            }
            .partition(&d, 20, &mut rng_for(4, 2)),
        );
        assert!(
            skew2 > skew8 + 0.2,
            "2-class skew {skew2} should clearly exceed 8-class skew {skew8}"
        );
    }

    #[test]
    fn dirichlet_covers_and_small_alpha_is_skewed() {
        let d = toy_dataset(2000, 10);
        let parts_skewed =
            Partitioner::Dirichlet { alpha: 0.1 }.partition(&d, 20, &mut rng_for(5, 1));
        assert_exact_cover(&parts_skewed, 2000);
        let parts_flat =
            Partitioner::Dirichlet { alpha: 100.0 }.partition(&d, 20, &mut rng_for(5, 2));
        assert!(label_skew(&parts_skewed) > label_skew(&parts_flat) + 0.2);
    }

    #[test]
    fn every_client_gets_minimum_samples() {
        let d = toy_dataset(200, 10);
        // Extreme skew would starve some clients without rebalancing.
        let parts = Partitioner::Dirichlet { alpha: 0.05 }.partition(&d, 30, &mut rng_for(6, 1));
        for (i, p) in parts.iter().enumerate() {
            assert!(p.len() >= 2, "client {i} has {} samples", p.len());
        }
    }

    #[test]
    fn dirichlet_samples_form_distribution() {
        let mut rng = rng_for(7, 1);
        for alpha in [0.1, 1.0, 10.0] {
            let s = sample_dirichlet(&mut rng, alpha, 8);
            assert_eq!(s.len(), 8);
            assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(s.iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn uneven_budgets_sum_exactly() {
        let mut rng = rng_for(8, 1);
        let budgets = uneven_budgets(&mut rng, 1000, 37, 0.5);
        assert_eq!(budgets.iter().sum::<usize>(), 1000);
        assert!(budgets.iter().all(|&b| b >= 2));
        let max = *budgets.iter().max().unwrap();
        let min = *budgets.iter().min().unwrap();
        assert!(max > min, "budgets should vary");
    }
}
