//! LEAF-like benchmark suite: one ready-made task per paper dataset.
//!
//! Each builder mirrors a dataset from §6 of the paper (see DESIGN.md §2 for
//! the substitution argument) and pairs the federation with the matching
//! model architecture and the paper's time-to-accuracy target.

use crate::dataset::Dataset;
use crate::federated::FederatedDataset;
use crate::partition::{uneven_budgets, Partitioner};
use crate::synth::{
    synth_features, synth_images, FeatureSynthSpec, ImageSynthSpec, TokenStreamGenerator,
    TokenSynthSpec,
};
use fedat_nn::models::ModelSpec;
use fedat_tensor::rng::{fill_normal, rng_for, tags};

/// A benchmark task: federation + model + accuracy target.
#[derive(Clone, Debug)]
pub struct FedTask {
    /// Task name (e.g. `cifar10-like(#2)`).
    pub name: String,
    /// The federated data.
    pub fed: FederatedDataset,
    /// Model architecture to train.
    pub model: ModelSpec,
    /// Target accuracy for time-to-accuracy comparisons (Fig. 2 bars,
    /// Table 2), scaled to this synthetic task.
    pub target_accuracy: f32,
}

impl FedTask {
    /// Shrinks every client's data by `frac` (for smoke tests and docs).
    /// Degenerate fractions are clamped into `[0, 1]` — see
    /// [`FederatedDataset::scaled`] for the exact contract.
    pub fn scaled(mut self, frac: f64) -> FedTask {
        self.fed = self.fed.scaled(frac);
        self
    }
}

/// Samples per client used by the default suite builders.
pub mod defaults {
    /// CIFAR-10-like samples per client.
    pub const CIFAR_PER_CLIENT: usize = 60;
    /// Fashion-MNIST-like samples per client.
    pub const FMNIST_PER_CLIENT: usize = 60;
    /// Sentiment140-like samples per client.
    pub const SENT_PER_CLIENT: usize = 50;
    /// FEMNIST-like samples per client.
    pub const FEMNIST_PER_CLIENT: usize = 40;
    /// Reddit-like sequences per client.
    pub const REDDIT_PER_CLIENT: usize = 24;
}

/// CIFAR-10 stand-in: 10-class 3×8×8 smooth-template images with heavy
/// pixel noise (CIFAR is the hardest of the paper's vision tasks), CNN
/// model, shard non-IID with `classes_per_client` labels per client
/// (`0` selects IID).
pub fn cifar10_like(n_clients: usize, classes_per_client: usize, seed: u64) -> FedTask {
    let mut rng = rng_for(seed, tags::DATA);
    let spec = ImageSynthSpec {
        channels: 3,
        height: 8,
        width: 8,
        classes: 10,
        signal: 1.0,
        noise: 2.5,
    };
    let pool = synth_images(&mut rng, &spec, n_clients * defaults::CIFAR_PER_CLIENT);
    let parts = partitioner_for(classes_per_client).partition(&pool, n_clients, &mut rng);
    let fed = FederatedDataset::from_partitions(parts, seed);
    FedTask {
        name: format!("cifar10-like({})", niid_tag(classes_per_client)),
        fed,
        model: ModelSpec::CnnLite {
            channels: 3,
            height: 8,
            width: 8,
            classes: 10,
        },
        target_accuracy: 0.47,
    }
}

/// Fashion-MNIST stand-in: 10-class 1×8×8 template images with moderate
/// noise; same CNN family, shard non-IID.
pub fn fmnist_like(n_clients: usize, classes_per_client: usize, seed: u64) -> FedTask {
    let mut rng = rng_for(seed.wrapping_add(1), tags::DATA);
    let spec = ImageSynthSpec {
        channels: 1,
        height: 8,
        width: 8,
        classes: 10,
        signal: 1.0,
        noise: 1.2,
    };
    let pool = synth_images(&mut rng, &spec, n_clients * defaults::FMNIST_PER_CLIENT);
    let parts = partitioner_for(classes_per_client).partition(&pool, n_clients, &mut rng);
    let fed = FederatedDataset::from_partitions(parts, seed.wrapping_add(1));
    FedTask {
        name: format!("fmnist-like({})", niid_tag(classes_per_client)),
        fed,
        model: ModelSpec::CnnLite {
            channels: 1,
            height: 8,
            width: 8,
            classes: 10,
        },
        target_accuracy: 0.76,
    }
}

/// Sentiment140 stand-in: binary bag-of-features task under a convex
/// logistic model; label skew across "accounts" via Dirichlet(0.5).
pub fn sent140_like(n_clients: usize, seed: u64) -> FedTask {
    let mut rng = rng_for(seed.wrapping_add(2), tags::DATA);
    let spec = FeatureSynthSpec {
        features: 32,
        classes: 2,
        separation: 0.17,
        noise: 1.0,
    };
    let pool = synth_features(&mut rng, &spec, n_clients * defaults::SENT_PER_CLIENT);
    let parts = Partitioner::Dirichlet { alpha: 0.5 }.partition(&pool, n_clients, &mut rng);
    let fed = FederatedDataset::from_partitions(parts, seed.wrapping_add(2));
    FedTask {
        name: "sent140-like".to_string(),
        fed,
        model: ModelSpec::Logistic {
            input: 32,
            classes: 2,
        },
        target_accuracy: 0.73,
    }
}

/// FEMNIST stand-in: 62-class 1×8×8 images, Dirichlet(0.3) label skew plus
/// a per-client "writer style" feature shift.
pub fn femnist_like(n_clients: usize, seed: u64) -> FedTask {
    let mut rng = rng_for(seed.wrapping_add(3), tags::DATA);
    let spec = ImageSynthSpec {
        channels: 1,
        height: 8,
        width: 8,
        classes: 62,
        signal: 1.0,
        noise: 0.55,
    };
    let pool = synth_images(&mut rng, &spec, n_clients * defaults::FEMNIST_PER_CLIENT);
    let mut parts = Partitioner::Dirichlet { alpha: 0.3 }.partition(&pool, n_clients, &mut rng);
    // Writer style: a fixed random shift of every pixel for all of a
    // client's samples (feature-level non-IID-ness on top of label skew).
    for (i, part) in parts.iter_mut().enumerate() {
        let mut style_rng = rng_for(seed ^ 0xFEE7 ^ ((i as u64) << 24), tags::DATA);
        let feat = part.features();
        let mut style = vec![0.0f32; feat];
        fill_normal(&mut style_rng, &mut style, 0.0, 0.25);
        apply_style(part, &style);
    }
    let fed = FederatedDataset::from_partitions(parts, seed.wrapping_add(3));
    FedTask {
        name: "femnist-like".to_string(),
        fed,
        model: ModelSpec::CnnLite {
            channels: 1,
            height: 8,
            width: 8,
            classes: 62,
        },
        target_accuracy: 0.70,
    }
}

/// Reddit stand-in: per-user Markov token streams with a shared backbone,
/// next-token prediction under an embedding+LSTM+dense model.
pub fn reddit_like(n_clients: usize, seed: u64) -> FedTask {
    let mut rng = rng_for(seed.wrapping_add(4), tags::DATA);
    let gen_spec = TokenSynthSpec {
        vocab: 80,
        seq_len: 8,
        user_skew: 0.35,
    };
    let generator = TokenStreamGenerator::new(&mut rng, gen_spec);
    let budgets = uneven_budgets(
        &mut rng,
        n_clients * defaults::REDDIT_PER_CLIENT,
        n_clients,
        0.5,
    );
    let parts: Vec<Dataset> = budgets
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            let mut user_rng = rng_for(seed ^ 0x5EDD17 ^ ((i as u64) << 16), tags::DATA);
            generator.user_dataset(&mut user_rng, n.max(3))
        })
        .collect();
    let fed = FederatedDataset::from_partitions(parts, seed.wrapping_add(4));
    FedTask {
        name: "reddit-like".to_string(),
        fed,
        model: ModelSpec::LstmLm {
            vocab: 80,
            embed: 16,
            hidden: 24,
        },
        target_accuracy: 0.25,
    }
}

fn partitioner_for(classes_per_client: usize) -> Partitioner {
    if classes_per_client == 0 {
        Partitioner::Iid
    } else {
        Partitioner::Shard { classes_per_client }
    }
}

fn niid_tag(classes_per_client: usize) -> String {
    if classes_per_client == 0 {
        "iid".to_string()
    } else {
        format!("#{classes_per_client}")
    }
}

pub(crate) fn apply_style(part: &mut Dataset, style: &[f32]) {
    let cols = part.features();
    for row in part.x.data_mut().chunks_mut(cols) {
        for (v, &s) in row.iter_mut().zip(style.iter()) {
            *v += s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::label_skew;

    #[test]
    fn cifar_task_shapes() {
        let t = cifar10_like(10, 2, 7);
        assert_eq!(t.fed.num_clients(), 10);
        assert_eq!(t.fed.classes, 10);
        assert_eq!(t.fed.features, 192);
        assert!(t.name.contains("#2"));
        // 2-class sharding: every client sees few labels.
        for c in &t.fed.clients {
            assert!(c.train.distinct_labels() <= 4);
        }
    }

    #[test]
    fn cifar_iid_has_low_skew() {
        let t = cifar10_like(10, 0, 7);
        let parts: Vec<Dataset> = t.fed.clients.iter().map(|c| c.train.clone()).collect();
        assert!(label_skew(&parts) < 0.6);
        assert!(t.name.contains("iid"));
    }

    #[test]
    fn sent140_is_binary_logistic() {
        let t = sent140_like(8, 1);
        assert_eq!(t.fed.classes, 2);
        assert!(matches!(
            t.model,
            ModelSpec::Logistic {
                input: 32,
                classes: 2
            }
        ));
    }

    #[test]
    fn femnist_has_62_classes_and_styles() {
        let t = femnist_like(12, 1);
        assert_eq!(t.fed.classes, 62);
        // Two clients' feature means should differ thanks to style shifts.
        let mean = |d: &Dataset| d.x.mean();
        let m0 = mean(&t.fed.clients[0].train);
        let m1 = mean(&t.fed.clients[1].train);
        assert!((m0 - m1).abs() > 1e-4, "style shift missing: {m0} vs {m1}");
    }

    #[test]
    fn reddit_is_sequence_task_with_uneven_clients() {
        let t = reddit_like(10, 1);
        assert_eq!(t.fed.targets_per_row, 8);
        assert_eq!(t.fed.classes, 80);
        let sizes = t.fed.client_sizes();
        assert!(
            sizes.iter().max() > sizes.iter().min(),
            "sizes should vary: {sizes:?}"
        );
    }

    #[test]
    fn tasks_are_reproducible() {
        let a = cifar10_like(5, 2, 42);
        let b = cifar10_like(5, 2, 42);
        assert_eq!(a.fed.global_test.x.data(), b.fed.global_test.x.data());
        let c = cifar10_like(5, 2, 43);
        assert_ne!(a.fed.global_test.x.data(), c.fed.global_test.x.data());
    }

    #[test]
    fn scaled_task_shrinks() {
        let t = cifar10_like(5, 2, 7).scaled(0.2);
        assert!(t.fed.total_train_samples() < 5 * defaults::CIFAR_PER_CLIENT / 3);
    }
}
