//! Synthetic data generators with the statistical shape of the paper's
//! datasets.
//!
//! Each generator is a pure function of its RNG, so identical seeds give
//! identical corpora. Difficulty is controlled by the signal-to-noise ratio
//! of class templates; the defaults in [`crate::suite`] are calibrated so
//! the reproduction's models converge within a few hundred federated rounds
//! (matching the paper's round budgets) without saturating at 100%.

use crate::dataset::Dataset;
use fedat_tensor::rng::{standard_normal, uniform};
use fedat_tensor::Tensor;
use rand::{Rng, RngExt};

/// Configuration for template-based vision-like data
/// ([`synth_images`]).
#[derive(Clone, Debug)]
pub struct ImageSynthSpec {
    /// Channels (3 for CIFAR-like, 1 for MNIST-like).
    pub channels: usize,
    /// Image height.
    pub height: usize,
    /// Image width.
    pub width: usize,
    /// Number of classes.
    pub classes: usize,
    /// Template magnitude (signal).
    pub signal: f32,
    /// Additive Gaussian pixel noise (higher = harder).
    pub noise: f32,
}

/// Per-class smooth random templates; a sample is
/// `signal · template[class] + noise · ε` with per-sample jitter.
///
/// Rows are flattened `channels · height · width` pixel vectors, roughly
/// standardized. The smooth templates give conv layers genuine local
/// structure to exploit (plain Gaussian blobs would make convolution
/// pointless).
pub fn synth_images<R: Rng + ?Sized>(rng: &mut R, spec: &ImageSynthSpec, n: usize) -> Dataset {
    let feat = spec.channels * spec.height * spec.width;
    // Smooth templates: random low-frequency pattern per class = sum of a few
    // 2-D cosine modes with random phase.
    let mut templates = Vec::with_capacity(spec.classes);
    for _ in 0..spec.classes {
        let mut t = vec![0.0f32; feat];
        for c in 0..spec.channels {
            for _mode in 0..3 {
                let fy = uniform(rng, 0.5, 2.5);
                let fx = uniform(rng, 0.5, 2.5);
                let py = uniform(rng, 0.0, std::f64::consts::TAU);
                let px = uniform(rng, 0.0, std::f64::consts::TAU);
                let amp = uniform(rng, 0.4, 1.0) as f32;
                for y in 0..spec.height {
                    for x in 0..spec.width {
                        let v = ((fy * y as f64 / spec.height as f64 * std::f64::consts::TAU + py)
                            .sin()
                            * (fx * x as f64 / spec.width as f64 * std::f64::consts::TAU + px)
                                .cos()) as f32;
                        t[c * spec.height * spec.width + y * spec.width + x] += amp * v;
                    }
                }
            }
        }
        templates.push(t);
    }

    let mut xs = Vec::with_capacity(n * feat);
    let mut ys = Vec::with_capacity(n);
    for i in 0..n {
        let class = i % spec.classes; // balanced classes
        let template = &templates[class];
        // Small per-sample global shift/gain mimics exposure variation.
        let gain = 1.0 + 0.1 * standard_normal(rng);
        for &tv in template.iter() {
            xs.push(spec.signal * gain * tv + spec.noise * standard_normal(rng));
        }
        ys.push(class as u32);
    }
    Dataset::new(Tensor::from_vec(xs, &[n, feat]), ys, spec.classes)
}

/// Configuration for separable feature-vector data ([`synth_features`]).
#[derive(Clone, Debug)]
pub struct FeatureSynthSpec {
    /// Feature dimension.
    pub features: usize,
    /// Number of classes.
    pub classes: usize,
    /// Distance scale between class means.
    pub separation: f32,
    /// Within-class standard deviation.
    pub noise: f32,
}

/// Gaussian-mixture classification data: one spherical Gaussian per class
/// with means `separation` apart — the shape of a bag-of-features text task
/// (our Sentiment140 stand-in, convex under logistic regression).
pub fn synth_features<R: Rng + ?Sized>(rng: &mut R, spec: &FeatureSynthSpec, n: usize) -> Dataset {
    let mut means = Vec::with_capacity(spec.classes);
    for _ in 0..spec.classes {
        let mut m = vec![0.0f32; spec.features];
        for v in m.iter_mut() {
            *v = spec.separation * standard_normal(rng);
        }
        means.push(m);
    }
    let mut xs = Vec::with_capacity(n * spec.features);
    let mut ys = Vec::with_capacity(n);
    for i in 0..n {
        let class = i % spec.classes;
        for &mv in &means[class] {
            xs.push(mv + spec.noise * standard_normal(rng));
        }
        ys.push(class as u32);
    }
    Dataset::new(Tensor::from_vec(xs, &[n, spec.features]), ys, spec.classes)
}

/// Configuration for per-user Markov token streams
/// ([`TokenStreamGenerator`]).
#[derive(Clone, Debug)]
pub struct TokenSynthSpec {
    /// Vocabulary size.
    pub vocab: usize,
    /// Sequence length per sample.
    pub seq_len: usize,
    /// How strongly a user's chain deviates from the shared backbone
    /// (0 = all users identical, 1 = fully idiosyncratic).
    pub user_skew: f64,
}

/// A shared Markov backbone over the vocabulary, perturbed per user.
///
/// This is the Reddit stand-in: every user writes from the same language
/// but with a personal transition bias, producing naturally non-IID
/// next-token statistics. Targets are the next token at each position
/// (`targets_per_row == seq_len`).
pub struct TokenStreamGenerator {
    backbone: Vec<Vec<f64>>, // [vocab][vocab] cumulative-free probabilities
    spec: TokenSynthSpec,
}

impl TokenStreamGenerator {
    /// Builds the shared backbone chain.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, spec: TokenSynthSpec) -> Self {
        assert!(spec.vocab >= 2, "vocab must be at least 2");
        // Sparse backbone: each token strongly prefers ~4 successors. The
        // smoothing mass is a small *total* (0.2 split over the vocabulary)
        // so the conditional distributions stay sharp enough to predict —
        // with per-entry smoothing the chain degenerates to near-uniform
        // and no model (federated or centralized) can beat chance.
        let smoothing = 0.2 / spec.vocab as f64;
        let mut backbone = Vec::with_capacity(spec.vocab);
        for _ in 0..spec.vocab {
            let mut row = vec![0.0f64; spec.vocab];
            for _ in 0..3 {
                let succ = rng.random_range(0..spec.vocab);
                row[succ] += uniform(rng, 1.0, 2.0);
            }
            // Smoothing mass so every transition has nonzero probability.
            for v in row.iter_mut() {
                *v += smoothing;
            }
            let sum: f64 = row.iter().sum();
            for v in row.iter_mut() {
                *v /= sum;
            }
            backbone.push(row);
        }
        TokenStreamGenerator { backbone, spec }
    }

    /// Generates one user's dataset of `n` sequences, using `user_rng` both
    /// for the personal perturbation and for sampling.
    pub fn user_dataset<R: Rng + ?Sized>(&self, user_rng: &mut R, n: usize) -> Dataset {
        let v = self.spec.vocab;
        let t = self.spec.seq_len;
        // Personal chain: mix backbone with a user-specific random chain.
        let skew = self.spec.user_skew;
        let mut chain = Vec::with_capacity(v);
        for row in &self.backbone {
            let mut personal = vec![0.0f64; v];
            for _ in 0..3 {
                let succ = user_rng.random_range(0..v);
                personal[succ] += uniform(user_rng, 0.5, 1.5);
            }
            let smoothing = 0.2 / v as f64;
            for p in personal.iter_mut() {
                *p += smoothing;
            }
            let psum: f64 = personal.iter().sum();
            let mut mixed = vec![0.0f64; v];
            for j in 0..v {
                mixed[j] = (1.0 - skew) * row[j] + skew * personal[j] / psum;
            }
            chain.push(mixed);
        }
        // Sample sequences of length t+1; inputs are positions 0..t,
        // targets positions 1..t+1.
        let mut xs = Vec::with_capacity(n * t);
        let mut ys = Vec::with_capacity(n * t);
        for _ in 0..n {
            let mut tok = user_rng.random_range(0..v);
            let mut seq = Vec::with_capacity(t + 1);
            seq.push(tok);
            for _ in 0..t {
                let r: f64 = user_rng.random::<f64>();
                let mut acc = 0.0;
                let mut next = v - 1;
                for (j, &p) in chain[tok].iter().enumerate() {
                    acc += p;
                    if r < acc {
                        next = j;
                        break;
                    }
                }
                seq.push(next);
                tok = next;
            }
            for p in 0..t {
                xs.push(seq[p] as f32);
                ys.push(seq[p + 1] as u32);
            }
        }
        Dataset::with_stride(Tensor::from_vec(xs, &[n, t]), ys, v, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedat_tensor::rng::rng_for;

    #[test]
    fn images_have_balanced_classes_and_right_shape() {
        let mut rng = rng_for(1, 1);
        let spec = ImageSynthSpec {
            channels: 3,
            height: 8,
            width: 8,
            classes: 10,
            signal: 1.0,
            noise: 0.5,
        };
        let d = synth_images(&mut rng, &spec, 200);
        assert_eq!(d.len(), 200);
        assert_eq!(d.features(), 192);
        let h = d.label_histogram();
        assert!(h.iter().all(|&c| c == 20), "histogram {h:?} not balanced");
    }

    #[test]
    fn images_are_separable_by_nearest_template_mean() {
        // Nearest-class-mean on a fresh sample should beat chance by a lot —
        // sanity check that signal dominates noise at default-ish settings.
        let mut rng = rng_for(2, 1);
        let spec = ImageSynthSpec {
            channels: 1,
            height: 8,
            width: 8,
            classes: 4,
            signal: 1.0,
            noise: 0.7,
        };
        let train = synth_images(&mut rng, &spec, 400);
        // class means
        let feat = train.features();
        let mut means = vec![vec![0.0f32; feat]; 4];
        let mut counts = [0usize; 4];
        for i in 0..train.len() {
            let c = train.y[i] as usize;
            for (m, &v) in means[c].iter_mut().zip(train.x.row(i)) {
                *m += v;
            }
            counts[c] += 1;
        }
        for (m, &c) in means.iter_mut().zip(counts.iter()) {
            for v in m.iter_mut() {
                *v /= c as f32;
            }
        }
        let test = synth_images(&mut rng, &spec, 100);
        // NOTE: templates are re-drawn for `test`, so instead classify train
        // samples held out mentally — evaluate on train itself (in-sample
        // nearest mean), which is a valid separability check.
        let mut correct = 0usize;
        for i in 0..train.len() {
            let row = train.x.row(i);
            let mut best = 0usize;
            let mut best_d = f32::INFINITY;
            for (c, m) in means.iter().enumerate() {
                let d = fedat_tensor::ops::dist_sq(row, m);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            if best == train.y[i] as usize {
                correct += 1;
            }
        }
        let acc = correct as f32 / train.len() as f32;
        assert!(
            acc > 0.8,
            "nearest-mean accuracy {acc} too low — data not separable"
        );
        let _ = test;
    }

    #[test]
    fn features_are_deterministic_per_seed() {
        let spec = FeatureSynthSpec {
            features: 10,
            classes: 2,
            separation: 1.0,
            noise: 0.3,
        };
        let a = synth_features(&mut rng_for(3, 1), &spec, 50);
        let b = synth_features(&mut rng_for(3, 1), &spec, 50);
        assert_eq!(a.x.data(), b.x.data());
        assert_eq!(a.y, b.y);
    }

    #[test]
    fn token_streams_respect_vocab_and_stride() {
        let mut rng = rng_for(4, 1);
        let generator = TokenStreamGenerator::new(
            &mut rng,
            TokenSynthSpec {
                vocab: 20,
                seq_len: 6,
                user_skew: 0.3,
            },
        );
        let mut urng = rng_for(4, 2);
        let d = generator.user_dataset(&mut urng, 15);
        assert_eq!(d.len(), 15);
        assert_eq!(d.targets_per_row, 6);
        assert_eq!(d.y.len(), 90);
        assert!(d.x.data().iter().all(|&t| (0.0..20.0).contains(&t)));
        // Targets really are the next input token within each row.
        for r in 0..15 {
            let row = d.x.row(r);
            for p in 0..5 {
                assert_eq!(d.y[r * 6 + p], row[p + 1] as u32);
            }
        }
    }

    #[test]
    fn distinct_users_get_distinct_distributions() {
        let mut rng = rng_for(5, 1);
        let generator = TokenStreamGenerator::new(
            &mut rng,
            TokenSynthSpec {
                vocab: 30,
                seq_len: 8,
                user_skew: 0.8,
            },
        );
        let d1 = generator.user_dataset(&mut rng_for(5, 100), 50);
        let d2 = generator.user_dataset(&mut rng_for(5, 200), 50);
        // Token histograms should differ noticeably under high skew.
        let hist = |d: &Dataset| {
            let mut h = vec![0usize; 30];
            for &v in d.x.data() {
                h[v as usize] += 1;
            }
            h
        };
        let (h1, h2) = (hist(&d1), hist(&d2));
        let l1: usize = h1.iter().zip(h2.iter()).map(|(a, b)| a.abs_diff(*b)).sum();
        assert!(l1 > 50, "user histograms too similar: L1 distance {l1}");
    }
}
