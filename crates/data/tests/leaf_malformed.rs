//! Malformed-input matrix for the LEAF reader: every corruption class maps
//! to a typed [`LeafError`], and — property-tested over arbitrary and
//! mutated bytes — parsing **never panics**.

use fedat_data::leaf::{parse_split, LeafBenchmark, LeafError};
use fedat_data::suite::FedTask;
use proptest::prelude::*;
use std::io::Cursor;
use std::sync::atomic::{AtomicUsize, Ordering};

fn femnist_small() -> LeafBenchmark {
    LeafBenchmark::Femnist {
        height: 4,
        width: 4,
        classes: 3,
    }
}

/// A well-formed tiny FEMNIST split document.
fn valid_doc() -> String {
    let px: Vec<String> = (0..16).map(|i| format!("{}", i as f32 * 0.25)).collect();
    let row = px.join(", ");
    format!(
        r#"{{"users": ["a", "b"], "num_samples": [2, 1],
            "user_data": {{
              "a": {{"x": [[{row}], [{row}]], "y": [0, 2]}},
              "b": {{"x": [[{row}]], "y": [1]}}
            }}}}"#
    )
}

fn parse_bytes(bytes: &[u8]) -> Result<(), LeafError> {
    parse_split(Cursor::new(bytes.to_vec()), &femnist_small(), None).map(|_| ())
}

#[test]
fn the_valid_doc_is_actually_valid() {
    parse_bytes(valid_doc().as_bytes()).expect("baseline document must parse");
}

#[test]
fn truncated_files_error_at_every_cut() {
    let doc = valid_doc().into_bytes();
    for cut in (0..doc.len()).step_by(7) {
        assert!(
            parse_bytes(&doc[..cut]).is_err(),
            "prefix of {cut} bytes should be rejected"
        );
    }
}

#[test]
fn user_listed_but_missing_from_user_data() {
    let doc = valid_doc()
        .replacen(r#"["a", "b"]"#, r#"["a", "b", "ghost"]"#, 1)
        .replacen("[2, 1]", "[2, 1, 4]", 1);
    assert!(matches!(
        parse_bytes(doc.as_bytes()),
        Err(LeafError::MissingUser(u)) if u == "ghost"
    ));
}

#[test]
fn num_samples_mismatch_is_typed() {
    let doc = valid_doc().replacen("[2, 1]", "[2, 5]", 1);
    match parse_bytes(doc.as_bytes()) {
        Err(LeafError::NumSamplesMismatch {
            user,
            declared,
            actual,
        }) => {
            assert_eq!(user, "b");
            assert_eq!(declared, 5);
            assert_eq!(actual, 1);
        }
        other => panic!("expected NumSamplesMismatch, got {other:?}"),
    }
}

#[test]
fn num_samples_length_disagreement_is_schema() {
    let doc = valid_doc().replacen("[2, 1]", "[2]", 1);
    assert!(matches!(
        parse_bytes(doc.as_bytes()),
        Err(LeafError::Schema(_))
    ));
}

#[test]
fn unlisted_user_in_user_data_is_schema() {
    let doc = valid_doc()
        .replacen(r#"["a", "b"]"#, r#"["a"]"#, 1)
        .replacen("[2, 1]", "[2]", 1);
    assert!(matches!(
        parse_bytes(doc.as_bytes()),
        Err(LeafError::Schema(m)) if m.contains('b')
    ));
}

#[test]
fn overflowing_numbers_are_nonfinite_errors() {
    let doc = valid_doc().replacen("0.25", "1e999", 1);
    assert!(matches!(
        parse_bytes(doc.as_bytes()),
        Err(LeafError::NonFinite { .. })
    ));
}

#[test]
fn nan_tokens_are_parse_errors() {
    // `NaN` is not JSON; the reader must fail the literal, not produce NaN.
    let doc = valid_doc().replacen("0.25", "NaN", 1);
    assert!(matches!(
        parse_bytes(doc.as_bytes()),
        Err(LeafError::Parse { .. })
    ));
}

#[test]
fn out_of_range_labels_are_typed() {
    let doc = valid_doc().replacen("\"y\": [0, 2]", "\"y\": [0, 62]", 1);
    match parse_bytes(doc.as_bytes()) {
        Err(LeafError::LabelOutOfRange {
            user,
            label,
            classes,
        }) => {
            assert_eq!(user, "a");
            assert_eq!(label, 62.0);
            assert_eq!(classes, 3);
        }
        other => panic!("expected LabelOutOfRange, got {other:?}"),
    }
    let frac = valid_doc().replacen("\"y\": [0, 2]", "\"y\": [0, 1.5]", 1);
    assert!(matches!(
        parse_bytes(frac.as_bytes()),
        Err(LeafError::LabelOutOfRange { .. })
    ));
}

#[test]
fn wrong_pixel_count_is_schema() {
    let doc = valid_doc().replacen("[[", "[[9.0, ", 1);
    assert!(matches!(
        parse_bytes(doc.as_bytes()),
        Err(LeafError::Schema(_))
    ));
}

#[test]
fn x_y_length_disagreement_is_schema() {
    let doc = valid_doc().replacen("\"y\": [0, 2]", "\"y\": [0]", 1);
    assert!(matches!(
        parse_bytes(doc.as_bytes()),
        Err(LeafError::Schema(_))
    ));
}

#[test]
fn adversarial_nesting_errors_instead_of_overflowing() {
    let mut doc = String::from(r#"{"users": ["a"], "num_samples": [1], "user_data": {"a": "#);
    doc.push_str(&"[".repeat(200_000));
    assert!(matches!(
        parse_bytes(doc.as_bytes()),
        Err(LeafError::Parse { .. })
    ));
}

#[test]
fn non_object_top_level_is_a_parse_error() {
    for doc in ["[]", "42", "\"hi\"", "null", "true"] {
        assert!(matches!(
            parse_bytes(doc.as_bytes()),
            Err(LeafError::Parse { .. })
        ));
    }
}

#[test]
fn duplicate_user_across_split_files_is_schema() {
    static N: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "fedat-leaf-dup-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let train = dir.join("train");
    std::fs::create_dir_all(&train).unwrap();
    std::fs::write(train.join("shard_a.json"), valid_doc()).unwrap();
    std::fs::write(train.join("shard_b.json"), valid_doc()).unwrap();
    let result = FedTask::from_leaf_dir(&dir, femnist_small(), 0);
    std::fs::remove_dir_all(&dir).ok();
    assert!(matches!(result, Err(LeafError::Schema(m)) if m.contains("more than one split file")));
}

#[test]
fn missing_directory_is_io_not_panic() {
    let ghost = std::env::temp_dir().join(format!("fedat-leaf-no-such-dir-{}", std::process::id()));
    assert!(matches!(
        FedTask::from_leaf_dir(&ghost, femnist_small(), 0),
        Err(LeafError::Io(_))
    ));
}

proptest! {
    /// The headline robustness property: *arbitrary bytes* never panic the
    /// parser — they parse or they return a typed error.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..400)) {
        let _ = parse_bytes(&bytes);
    }

    /// Mutations of a valid document (byte flips, splices, truncation)
    /// never panic either — this walks the parser's deeper states, where
    /// schema validation runs, not just the tokenizer.
    #[test]
    fn mutated_documents_never_panic(
        flips in prop::collection::vec((0usize..4096, any::<u8>()), 0..12),
        cut in 0usize..4096,
        truncate in any::<bool>(),
    ) {
        let mut doc = valid_doc().into_bytes();
        for (pos, byte) in flips {
            let n = doc.len();
            doc[pos % n] = byte;
        }
        if truncate {
            doc.truncate(cut % (doc.len() + 1));
        }
        let _ = parse_bytes(&doc);
    }
}
