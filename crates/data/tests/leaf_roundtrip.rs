//! Round-trip property tests for the LEAF subsystem: arbitrary small
//! `FedTask`s → `leaf::writer` → `leaf` parser → **bitwise-equal**
//! features, labels, train/test split and user order, swept over all three
//! featurizers. Plus the fixture lane CI drives (`FEDAT_LEAF_FIXTURE_DIR`).

use fedat_data::dataset::Dataset;
use fedat_data::federated::{ClientData, FederatedDataset};
use fedat_data::leaf::{writer, LeafBenchmark};
use fedat_data::suite::FedTask;
use fedat_nn::models::ModelSpec;
use fedat_tensor::rng::{fill_normal, rng_for};
use fedat_tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, RngExt};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

struct TempDir(PathBuf);

impl TempDir {
    fn new(label: &str) -> Self {
        static N: AtomicUsize = AtomicUsize::new(0);
        let path = std::env::temp_dir().join(format!(
            "fedat-leaf-rt-{label}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&path).expect("temp dir");
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn bits(d: &Dataset) -> Vec<u32> {
    d.x.data().iter().map(|v| v.to_bits()).collect()
}

/// Asserts the loaded task reproduces the original bitwise: user order,
/// per-user train/test features and labels, schema, and the pooled test.
fn assert_roundtrip(orig: &FedTask, loaded: &FedTask) {
    assert_eq!(loaded.fed.num_clients(), orig.fed.num_clients());
    assert_eq!(loaded.fed.classes, orig.fed.classes);
    assert_eq!(loaded.fed.features, orig.fed.features);
    assert_eq!(loaded.fed.targets_per_row, orig.fed.targets_per_row);
    for (i, (a, b)) in loaded
        .fed
        .clients
        .iter()
        .zip(orig.fed.clients.iter())
        .enumerate()
    {
        assert_eq!(bits(&a.train), bits(&b.train), "client {i} train features");
        assert_eq!(a.train.y, b.train.y, "client {i} train labels");
        assert_eq!(bits(&a.test), bits(&b.test), "client {i} test features");
        assert_eq!(a.test.y, b.test.y, "client {i} test labels");
    }
    assert_eq!(
        bits(&loaded.fed.global_test),
        bits(&orig.fed.global_test),
        "pooled test set"
    );
    assert_eq!(loaded.fed.global_test.y, orig.fed.global_test.y);
}

/// Builds one client's pre-split data from the seeded RNG.
fn client<R: Rng + ?Sized>(
    rng: &mut R,
    train_rows: usize,
    test_rows: usize,
    make: &mut impl FnMut(&mut R, usize) -> Dataset,
) -> ClientData {
    ClientData {
        train: make(rng, train_rows),
        test: make(rng, test_rows),
    }
}

fn task_from_clients(name: &str, clients: Vec<ClientData>, model: ModelSpec) -> FedTask {
    FedTask {
        name: name.to_string(),
        fed: FederatedDataset::from_client_splits(clients),
        model,
        target_accuracy: 0.5,
    }
}

proptest! {
    #[test]
    fn femnist_roundtrip_is_bitwise(
        n_clients in 1usize..4,
        classes in 2usize..6,
        seed in 0u64..40,
    ) {
        let mut rng = rng_for(seed, 71);
        let mut make = |rng: &mut StdRng, rows: usize| {
            let mut xs = vec![0.0f32; rows * 16];
            fill_normal(rng, &mut xs, 0.0, 2.0);
            // Exercise the formatter's corners: signed zero, subnormals,
            // near-max magnitudes, exact integers.
            xs[0] = -0.0;
            if xs.len() > 4 {
                xs[1] = 1.0e-40;
                xs[2] = 3.0e38;
                xs[3] = -17.0;
            }
            let ys = (0..rows).map(|r| (r % classes) as u32).collect();
            Dataset::new(Tensor::from_vec(xs, &[rows, 16]), ys, classes)
        };
        let clients: Vec<ClientData> = (0..n_clients)
            .map(|_| {
                let train_rows = 2 + (rng.random_range(0..3usize));
                let test_rows = 1 + (rng.random_range(0..2usize));
                client(&mut rng, train_rows, test_rows, &mut make)
            })
            .collect();
        let bench = LeafBenchmark::Femnist { height: 4, width: 4, classes };
        let orig = task_from_clients(
            "femnist-leaf",
            clients,
            ModelSpec::CnnLite { channels: 1, height: 4, width: 4, classes },
        );
        let tmp = TempDir::new("femnist");
        writer::write_leaf_task(&orig, &bench, &tmp.0).expect("write");
        let loaded = FedTask::from_leaf_dir(&tmp.0, bench, seed).expect("parse");
        assert_roundtrip(&orig, &loaded);
    }

    #[test]
    fn sent140_roundtrip_is_bitwise(
        n_clients in 1usize..4,
        features in 2usize..6,
        seed in 0u64..40,
    ) {
        let mut rng = rng_for(seed, 72);
        let mut make = |rng: &mut StdRng, rows: usize| {
            let xs: Vec<f32> = (0..rows * features)
                .map(|_| rng.random_range(0..4) as f32)
                .collect();
            let ys = (0..rows).map(|_| rng.random_range(0..2) as u32).collect();
            Dataset::new(Tensor::from_vec(xs, &[rows, features]), ys, 2)
        };
        let clients: Vec<ClientData> = (0..n_clients)
            .map(|_| {
                let train_rows = 2 + (rng.random_range(0..3usize));
                let test_rows = 1 + (rng.random_range(0..2usize));
                client(&mut rng, train_rows, test_rows, &mut make)
            })
            .collect();
        let orig = task_from_clients(
            "sent140-leaf",
            clients,
            ModelSpec::Logistic { input: features, classes: 2 },
        );
        let tmp = TempDir::new("sent140");
        writer::write_leaf_task(&orig, &LeafBenchmark::sent140(), &tmp.0).expect("write");
        // The writer's vocab.json sidecar carries the feature order, so the
        // bag-of-words featurizer reproduces the count matrix exactly.
        let loaded = FedTask::from_leaf_dir(&tmp.0, LeafBenchmark::sent140(), seed).expect("parse");
        assert_roundtrip(&orig, &loaded);
    }

    #[test]
    fn reddit_roundtrip_is_bitwise(
        n_clients in 1usize..4,
        vocab in 4usize..9,
        seq in 2usize..5,
        seed in 0u64..40,
    ) {
        let mut rng = rng_for(seed, 73);
        let mut make = |rng: &mut StdRng, rows: usize| {
            let xs: Vec<f32> = (0..rows * seq)
                .map(|_| rng.random_range(0..vocab) as f32)
                .collect();
            let ys: Vec<u32> = (0..rows * seq)
                .map(|_| rng.random_range(0..vocab) as u32)
                .collect();
            Dataset::with_stride(Tensor::from_vec(xs, &[rows, seq]), ys, vocab, seq)
        };
        let clients: Vec<ClientData> = (0..n_clients)
            .map(|_| {
                let train_rows = 2 + (rng.random_range(0..3usize));
                let test_rows = 1 + (rng.random_range(0..2usize));
                client(&mut rng, train_rows, test_rows, &mut make)
            })
            .collect();
        let bench = LeafBenchmark::Reddit { vocab };
        let orig = task_from_clients(
            "reddit-leaf",
            clients,
            ModelSpec::LstmLm { vocab, embed: 16, hidden: 24 },
        );
        let tmp = TempDir::new("reddit");
        writer::write_leaf_task(&orig, &bench, &tmp.0).expect("write");
        let loaded = FedTask::from_leaf_dir(&tmp.0, bench, seed).expect("parse");
        assert_roundtrip(&orig, &loaded);
        // The inference path (`vocab: 0`) recovers max_token + 1 instead.
        let inferred =
            FedTask::from_leaf_dir(&tmp.0, LeafBenchmark::reddit(), seed).expect("infer");
        prop_assert!(inferred.fed.classes <= vocab, "inferred vocab too large");
    }
}

/// The CI fixture lane: `FEDAT_LEAF_FIXTURE_DIR` points at a directory the
/// writer example generated; without it the test generates its own, so
/// `cargo test` stays hermetic.
#[test]
fn fixture_dir_loads_end_to_end() {
    let (dir, _guard) = match std::env::var_os("FEDAT_LEAF_FIXTURE_DIR") {
        Some(d) => (PathBuf::from(d), None),
        None => {
            let tmp = TempDir::new("fixture");
            writer::write_femnist_fixture(&tmp.0, 6, 12, 3).expect("generate fixture");
            (tmp.0.clone(), Some(tmp))
        }
    };
    let task = FedTask::from_leaf_dir(&dir, LeafBenchmark::femnist(), 3)
        .unwrap_or_else(|e| panic!("fixture under {} failed to load: {e}", dir.display()));
    assert_eq!(task.fed.classes, 62);
    assert_eq!(task.fed.features, 784);
    assert!(task.fed.num_clients() >= 2, "fixture should be federated");
    let sizes = task.fed.client_sizes();
    assert!(sizes.iter().all(|&s| s >= 1));
    // The natural partition must carry real imbalance (the whole point of
    // loading LEAF-shaped data): Dirichlet-skewed writers never come out
    // exactly uniform.
    assert!(
        sizes.iter().max() > sizes.iter().min(),
        "per-user sizes are uniform: {sizes:?}"
    );
    assert!(task.fed.global_test.len() >= task.fed.num_clients());
}

/// Loading the same directory twice is bit-identical (pure function of the
/// bytes on disk) — the loader-side determinism guarantee DATA.md states.
#[test]
fn loading_is_deterministic() {
    let tmp = TempDir::new("determinism");
    writer::write_femnist_fixture(&tmp.0, 4, 10, 11).expect("generate");
    let a = FedTask::from_leaf_dir(&tmp.0, LeafBenchmark::femnist(), 11).expect("first");
    let b = FedTask::from_leaf_dir(&tmp.0, LeafBenchmark::femnist(), 11).expect("second");
    assert_eq!(a.fed.global_test.x.data(), b.fed.global_test.x.data());
    for (x, y) in a.fed.clients.iter().zip(b.fed.clients.iter()) {
        assert_eq!(x.train.x.data(), y.train.x.data());
        assert_eq!(x.train.y, y.train.y);
    }
}

/// Without a `vocab.json` sidecar the Sentiment140 vocabulary is built from
/// the training corpus: descending count order, ties broken by the token
/// itself, capped at `max_vocab`.
#[test]
fn sent140_vocab_builds_deterministically_from_corpus() {
    let tmp = TempDir::new("vocab");
    std::fs::create_dir_all(tmp.0.join("train")).unwrap();
    std::fs::create_dir_all(tmp.0.join("test")).unwrap();
    let train = r#"{"users": ["u"], "num_samples": [3],
        "user_data": {"u": {"x": ["bb aa", "aa bb cc", "bb"], "y": [0, 1, 0]}}}"#;
    let test = r#"{"users": ["u"], "num_samples": [1],
        "user_data": {"u": {"x": ["cc aa zz"], "y": [1]}}}"#;
    std::fs::write(tmp.0.join("train").join("data.json"), train).unwrap();
    std::fs::write(tmp.0.join("test").join("data.json"), test).unwrap();
    // Counts over *train* only: bb=3, aa=2, cc=1 → vocab [bb, aa, cc].
    let task = FedTask::from_leaf_dir(&tmp.0, LeafBenchmark::sent140(), 0).expect("load");
    assert_eq!(task.fed.features, 3);
    let u = &task.fed.clients[0];
    assert_eq!(u.train.x.row(0), &[1.0, 1.0, 0.0]); // "bb aa"
    assert_eq!(u.train.x.row(1), &[1.0, 1.0, 1.0]); // "aa bb cc"
    assert_eq!(u.train.x.row(2), &[1.0, 0.0, 0.0]); // "bb"
                                                    // Test-split tokens use the same map; "zz" is out-of-vocabulary.
    assert_eq!(u.test.x.row(0), &[0.0, 1.0, 1.0]);
    // The cap truncates the ranked list.
    let capped =
        FedTask::from_leaf_dir(&tmp.0, LeafBenchmark::Sent140 { max_vocab: 2 }, 0).expect("cap");
    assert_eq!(capped.fed.features, 2);
}

/// The flat (un-split) layout goes through the suite's seeded 80/20 split —
/// same totals, seed-deterministic.
#[test]
fn flat_layout_splits_80_20_with_the_seed() {
    let tmp = TempDir::new("flat");
    let px: Vec<String> = (0..16).map(|i| format!("{}.5", i)).collect();
    let row = px.join(", ");
    let rows: Vec<String> = (0..10).map(|_| format!("[{row}]")).collect();
    let doc = format!(
        r#"{{"users": ["solo"], "num_samples": [10],
            "user_data": {{"solo": {{"x": [{}], "y": [0,1,2,0,1,2,0,1,2,0]}}}}}}"#,
        rows.join(", ")
    );
    std::fs::write(tmp.0.join("corpus.json"), doc).unwrap();
    let bench = LeafBenchmark::Femnist {
        height: 4,
        width: 4,
        classes: 3,
    };
    let a = FedTask::from_leaf_dir(&tmp.0, bench.clone(), 5).expect("load");
    assert_eq!(a.fed.num_clients(), 1);
    let c = &a.fed.clients[0];
    assert_eq!(c.train.len() + c.test.len(), 10);
    assert_eq!(c.train.len(), 8, "80/20 split");
    let b = FedTask::from_leaf_dir(&tmp.0, bench, 5).expect("reload");
    assert_eq!(a.fed.clients[0].train.y, b.fed.clients[0].train.y);
}
