//! Property-based tests for dataset generation and partitioning.

use fedat_data::dataset::Dataset;
use fedat_data::partition::{label_skew, sample_dirichlet, uneven_budgets, Partitioner};
use fedat_data::synth::{synth_features, FeatureSynthSpec};
use fedat_tensor::rng::rng_for;
use proptest::prelude::*;

fn pool(n: usize, classes: usize, seed: u64) -> Dataset {
    let spec = FeatureSynthSpec {
        features: 3,
        classes,
        separation: 1.0,
        noise: 0.2,
    };
    synth_features(&mut rng_for(seed, 1), &spec, n)
}

proptest! {
    #[test]
    fn every_partitioner_covers_exactly(
        n in 40usize..300,
        clients in 2usize..12,
        classes in 2usize..8,
        seed in 0u64..50,
        which in 0usize..3,
    ) {
        let classes_per_client = 1 + seed as usize % classes;
        // Sharding needs every client to receive `classes_per_client` shards
        // of at least two samples each.
        prop_assume!(clients * 2 <= n);
        prop_assume!(which != 1 || clients * classes_per_client * 2 <= n);
        let d = pool(n, classes, seed);
        let p = match which {
            0 => Partitioner::Iid,
            1 => Partitioner::Shard { classes_per_client },
            _ => Partitioner::Dirichlet { alpha: 0.3 },
        };
        let parts = p.partition(&d, clients, &mut rng_for(seed, 2));
        prop_assert_eq!(parts.len(), clients);
        let total: usize = parts.iter().map(|p| p.len()).sum();
        prop_assert_eq!(total, n, "samples lost or duplicated");
        for part in &parts {
            prop_assert!(part.len() >= 2, "client starved");
            prop_assert_eq!(part.classes, classes);
        }
    }

    #[test]
    fn label_skew_bounded(n in 100usize..400, clients in 2usize..10, seed in 0u64..30) {
        let d = pool(n, 5, seed);
        let parts = Partitioner::Dirichlet { alpha: 0.2 }.partition(&d, clients, &mut rng_for(seed, 3));
        let s = label_skew(&parts);
        prop_assert!((0.0..=2.0 + 1e-9).contains(&s), "skew {} out of range", s);
    }

    #[test]
    fn dirichlet_is_a_distribution(alpha in 0.05f64..20.0, k in 2usize..12, seed in 0u64..50) {
        let s = sample_dirichlet(&mut rng_for(seed, 4), alpha, k);
        prop_assert_eq!(s.len(), k);
        prop_assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(s.iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn budgets_sum_and_floor(total in 50usize..2000, clients in 2usize..40, spread in 0.0f64..0.9, seed in 0u64..50) {
        prop_assume!(total >= clients * 2);
        let b = uneven_budgets(&mut rng_for(seed, 5), total, clients, spread);
        prop_assert_eq!(b.iter().sum::<usize>(), total);
        prop_assert!(b.iter().all(|&x| x >= 2));
    }

    #[test]
    fn subset_then_concat_is_identity_on_rows(n in 4usize..50, seed in 0u64..30) {
        let d = pool(n, 3, seed);
        let half = n / 2;
        let a = d.subset(&(0..half).collect::<Vec<_>>());
        let b = d.subset(&(half..n).collect::<Vec<_>>());
        let back = Dataset::concat(&[&a, &b]);
        prop_assert_eq!(back.x.data(), d.x.data());
        prop_assert_eq!(back.y, d.y);
    }

    #[test]
    fn split_fractions_respected(n in 10usize..200, frac in 0.1f64..0.9, seed in 0u64..30) {
        let d = pool(n, 3, seed);
        let (a, b) = d.split(frac, &mut rng_for(seed, 6));
        prop_assert_eq!(a.len() + b.len(), n);
        let expect = ((n as f64 * frac) as usize).clamp(1, n - 1);
        prop_assert_eq!(a.len(), expect);
    }
}
