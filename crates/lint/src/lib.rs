//! fedat-lint: the workspace determinism linter.
//!
//! FedAT's headline claim is a *bit-identity contract*: the same experiment
//! config and seed produce byte-identical metrics regardless of thread
//! count, SIMD backend, or execution mode. The contract is enforced
//! dynamically by the determinism test suites — this crate enforces it
//! *statically*, by scanning workspace source for the constructs that have
//! historically broken it:
//!
//! | Rule | Invariant |
//! |------|-----------|
//! | R1   | no `HashMap`/`HashSet` in gated library code (RandomState order) |
//! | R2   | no fused multiply-add outside the pinned lanes of `tensor/src/simd.rs` |
//! | R3   | every `unsafe` carries a `// SAFETY:` rationale |
//! | R4   | no wall-clock or ad-hoc thread spawns in gated library code |
//! | R5   | raw toggle mutators only inside `ToggleGuard` (RAII restore) |
//! | R6   | `Deserialize` config structs carry `#[serde(default)]` |
//!
//! Deliberate exceptions are acknowledged in-source with
//! `// lint: allow(RX, reason = "..")` and surface in the report's
//! `suppressed` list, so every escape hatch stays auditable.
//!
//! The crate has **zero dependencies** — a hand-rolled lexer in [`scan`]
//! rather than `syn` — so it can audit the vendored stubs' consumers without
//! ever being broken by them, and it runs both as a binary
//! (`cargo run -p fedat-lint`) and as a test gate
//! (`crates/lint/tests/workspace_clean.rs`), making `cargo test` fail on
//! violations.

pub mod report;
pub mod rules;
pub mod scan;
pub mod workspace;

use report::{Finding, Report, Suppressed};
use rules::FileContext;
use std::path::Path;

/// Lints one file's source text under the classification derived from its
/// workspace-relative path. Returns `None` when the path is outside the
/// linted layout (fixtures, vendor, non-crate files).
pub fn lint_source(rel: &str, source: &str) -> Option<(Vec<Finding>, Vec<Suppressed>)> {
    let (crate_name, kind) = workspace::classify(rel)?;
    let lines = scan::scan(source);
    let ctx = FileContext {
        rel,
        crate_name: &crate_name,
        kind,
    };
    let mut findings = Vec::new();
    let mut suppressed = Vec::new();
    for raw in rules::run_all(&ctx, &lines) {
        let lineno = raw.line_idx + 1;
        let allow = rules::allows_for_line(&lines, raw.line_idx)
            .into_iter()
            .find(|a| a.reason.is_some() && a.rules.iter().any(|r| r == raw.rule));
        match allow {
            Some(a) => suppressed.push(Suppressed {
                file: rel.to_string(),
                line: lineno,
                rule: raw.rule,
                reason: a.reason.unwrap_or_default(),
            }),
            None => findings.push(Finding {
                file: rel.to_string(),
                line: lineno,
                rule: raw.rule,
                message: raw.message,
            }),
        }
    }
    Some((findings, suppressed))
}

/// Scans the whole workspace under `root` and returns the normalized report.
pub fn lint_workspace(root: &Path) -> std::io::Result<Report> {
    let mut report = Report::default();
    for file in workspace::discover(root)? {
        let source = std::fs::read_to_string(&file.path)?;
        if let Some((findings, suppressed)) = lint_source(&file.rel, &source) {
            report.files_scanned += 1;
            report.findings.extend(findings);
            report.suppressed.extend(suppressed);
        }
    }
    report.normalize();
    Ok(report)
}

/// The workspace root, resolved from this crate's manifest directory at
/// compile time (`crates/lint` → two levels up). Works from any cwd, which
/// is what the test gate and CI both need.
pub fn workspace_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint sits two levels below the workspace root")
        .to_path_buf()
}
