//! `fedat-lint` binary: scan the workspace, print findings, write
//! `LINT_REPORT.json` at the workspace root, exit non-zero on violations.

use std::process::ExitCode;

fn main() -> ExitCode {
    let root = match std::env::args_os().nth(1) {
        Some(p) => std::path::PathBuf::from(p),
        None => fedat_lint::workspace_root(),
    };
    let report = match fedat_lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fedat-lint: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    print!("{}", report.render_text());
    let json_path = root.join("LINT_REPORT.json");
    if let Err(e) = std::fs::write(&json_path, report.to_json()) {
        eprintln!("fedat-lint: failed to write {}: {e}", json_path.display());
        return ExitCode::from(2);
    }
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
