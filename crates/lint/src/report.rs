//! Findings and the machine-readable report.
//!
//! The JSON writer is hand-rolled (the linter is dependency-free) and emits
//! no timestamps or absolute paths, so `LINT_REPORT.json` is byte-identical
//! across runs on a clean tree — the report itself honours the determinism
//! contract it audits.

/// A rule violation at a specific source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule id (`R1`..`R6`, or `LINT` for malformed suppressions).
    pub rule: &'static str,
    /// Human-readable rationale.
    pub message: String,
}

/// A violation that was acknowledged with `// lint: allow(RX, reason = ..)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Suppressed {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number of the violation.
    pub line: usize,
    /// Rule id.
    pub rule: &'static str,
    /// The audited justification from the allow comment.
    pub reason: String,
}

/// The full result of a workspace scan.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Unsuppressed violations. Non-empty ⇒ the lint gate fails.
    pub findings: Vec<Finding>,
    /// Acknowledged violations, kept visible for audit.
    pub suppressed: Vec<Suppressed>,
}

impl Report {
    /// Sorts both lists by (file, line, rule) for deterministic output.
    pub fn normalize(&mut self) {
        self.findings
            .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
        self.suppressed
            .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    }

    /// Human-readable summary for the terminal.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{}:{}: [{}] {}\n",
                f.file, f.line, f.rule, f.message
            ));
        }
        out.push_str(&format!(
            "fedat-lint: {} file(s) scanned, {} finding(s), {} suppressed\n",
            self.files_scanned,
            self.findings.len(),
            self.suppressed.len()
        ));
        out
    }

    /// Machine-readable JSON (stable key order, no timestamps).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        s.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}}}",
                json_str(&f.file),
                f.line,
                json_str(f.rule),
                json_str(&f.message)
            ));
        }
        if self.findings.is_empty() {
            s.push_str("],\n");
        } else {
            s.push_str("\n  ],\n");
        }
        s.push_str("  \"suppressed\": [");
        for (i, f) in self.suppressed.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"reason\": {}}}",
                json_str(&f.file),
                f.line,
                json_str(f.rule),
                json_str(&f.reason)
            ));
        }
        if self.suppressed.is_empty() {
            s.push_str("]\n");
        } else {
            s.push_str("\n  ]\n");
        }
        s.push_str("}\n");
        s
    }
}

/// Escapes a string for JSON.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_stable_and_escaped() {
        let mut r = Report {
            files_scanned: 2,
            findings: vec![Finding {
                file: "crates/x/src/lib.rs".into(),
                line: 3,
                rule: "R1",
                message: "uses \"HashMap\"".into(),
            }],
            suppressed: vec![],
        };
        r.normalize();
        let j = r.to_json();
        assert!(j.contains("\\\"HashMap\\\""));
        assert!(j.contains("\"files_scanned\": 2"));
        assert!(j.ends_with("}\n"));
    }

    #[test]
    fn normalize_orders_by_file_then_line() {
        let mut r = Report::default();
        r.findings.push(Finding {
            file: "b.rs".into(),
            line: 1,
            rule: "R1",
            message: String::new(),
        });
        r.findings.push(Finding {
            file: "a.rs".into(),
            line: 9,
            rule: "R2",
            message: String::new(),
        });
        r.normalize();
        assert_eq!(r.findings[0].file, "a.rs");
    }
}
