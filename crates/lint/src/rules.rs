//! The determinism rules (R1–R6) and the suppression grammar.
//!
//! Every rule is a pure function over the lexed lines of one file plus its
//! workspace classification. Rules report *raw* findings; the driver in
//! [`crate::lint_lines`] then matches them against `lint: allow(..)`
//! suppressions found on the same line or in the contiguous comment block
//! above.

use crate::scan::{has_call, has_token, Line};
use crate::workspace::FileKind;

/// Crates that carry the bit-identity contract. `bench` is deliberately
/// absent: wall-clock benchmarks measure time, so they may read clocks and
/// spawn threads freely.
pub const GATED_CRATES: &[&str] = &["core", "sim", "tensor", "nn", "compress"];

/// The toggle mutators that [R5] reserves for the sanctioned default-layer
/// homes: `fedat_core::exec::ToggleGuard` (RAII restore for tests/benches)
/// and `fedat_core::exec::ExecCtx`, which *reads* the globals these set as
/// its environment layer and carries the per-run values in a thread-local
/// overlay instead of mutating process state. Covers every knob the guard
/// and the overlay snapshot, not just the original four kernel selectors.
pub const RAW_SETTERS: &[&str] = &[
    "set_exec_mode",
    "set_simd_kernel",
    "set_agg_kernel",
    "set_nt_kernel",
    "set_portable_only",
    "set_max_threads",
    "set_max_pool_jobs",
    "set_spawn_mode",
];

/// Wall-clock and threading APIs banned from library code by [R4].
const R4_PATTERNS: &[&str] = &[
    "Instant::now",
    "SystemTime",
    "thread::spawn",
    "thread::scope",
    "thread::Builder",
    "thread::sleep",
];

/// Fused-multiply token stems banned by [R2]. `_pd` variants are legal only
/// inside the pinned lane framework of `crates/tensor/src/simd.rs`, where the
/// f64 products of f32 inputs are exact and fusing cannot change a bit.
const FUSED_STEMS: &[&str] = &["fmadd", "fmsub", "fnmadd", "fnmsub"];

/// The one file where `_pd` fused intrinsics are exact-by-construction.
pub const FMA_SANCTUARY: &str = "crates/tensor/src/simd.rs";

/// A rule violation before suppression matching (0-based line index).
#[derive(Clone, Debug)]
pub struct RawFinding {
    /// 0-based index into the lexed lines.
    pub line_idx: usize,
    /// Rule id.
    pub rule: &'static str,
    /// Rationale shown to the developer.
    pub message: String,
}

/// Classification of one file being linted.
#[derive(Clone, Copy, Debug)]
pub struct FileContext<'a> {
    /// Workspace-relative path.
    pub rel: &'a str,
    /// Crate directory name under `crates/`.
    pub crate_name: &'a str,
    /// Target kind.
    pub kind: FileKind,
}

fn gated(ctx: &FileContext) -> bool {
    GATED_CRATES.contains(&ctx.crate_name)
}

/// Runs every rule over one file.
pub fn run_all(ctx: &FileContext, lines: &[Line]) -> Vec<RawFinding> {
    let mut out = Vec::new();
    rule_r1(ctx, lines, &mut out);
    rule_r2(ctx, lines, &mut out);
    rule_r3(ctx, lines, &mut out);
    rule_r4(ctx, lines, &mut out);
    rule_r5(ctx, lines, &mut out);
    rule_r6(ctx, lines, &mut out);
    rule_malformed_allows(ctx, lines, &mut out);
    out
}

/// R1: no `HashMap`/`HashSet` in library code of gated crates. Their
/// `RandomState` hasher is seeded per process, so iteration order — and any
/// float accumulation that follows it — varies run to run.
fn rule_r1(ctx: &FileContext, lines: &[Line], out: &mut Vec<RawFinding>) {
    if !gated(ctx) || ctx.kind != FileKind::Lib {
        return;
    }
    for (i, line) in lines.iter().enumerate() {
        for ty in ["HashMap", "HashSet"] {
            if has_token(&line.code, ty) {
                out.push(RawFinding {
                    line_idx: i,
                    rule: "R1",
                    message: format!(
                        "{ty} iterates in RandomState order; use BTreeMap/BTreeSet so \
                         aggregation order is pinned (bit-identity contract)"
                    ),
                });
            }
        }
    }
}

/// R2: no fused multiply-add outside the pinned lanes of
/// [`FMA_SANCTUARY`]. `f32::mul_add` and `_ps` fused intrinsics round once
/// where the scalar reference rounds twice, so results diverge from the
/// pinned trace; `_pd` fusion over f32 inputs is exact and allowed only in
/// the sanctuary where the lane structure is part of the contract.
fn rule_r2(ctx: &FileContext, lines: &[Line], out: &mut Vec<RawFinding>) {
    if !gated(ctx) {
        return;
    }
    for (i, line) in lines.iter().enumerate() {
        if has_call(&line.code, "mul_add") {
            out.push(RawFinding {
                line_idx: i,
                rule: "R2",
                message: "mul_add fuses the intermediate rounding step; write `a * b + c` so \
                          scalar and SIMD lanes round identically"
                    .into(),
            });
        }
        for stem in FUSED_STEMS {
            let mut from = 0;
            while let Some(rel_pos) = line.code[from..].find(stem) {
                let at = from + rel_pos;
                from = at + stem.len();
                // Expand to the full identifier around the stem.
                let bytes = line.code.as_bytes();
                let mut lo = at;
                while lo > 0 && (bytes[lo - 1].is_ascii_alphanumeric() || bytes[lo - 1] == b'_') {
                    lo -= 1;
                }
                let mut hi = at + stem.len();
                while hi < bytes.len() && (bytes[hi].is_ascii_alphanumeric() || bytes[hi] == b'_') {
                    hi += 1;
                }
                let ident = &line.code[lo..hi];
                let exact_pd = ident.ends_with("_pd");
                if exact_pd && ctx.rel == FMA_SANCTUARY {
                    continue;
                }
                out.push(RawFinding {
                    line_idx: i,
                    rule: "R2",
                    message: format!(
                        "fused intrinsic `{ident}` outside the pinned-lane sanctuary \
                         ({FMA_SANCTUARY}); fusion changes rounding vs the scalar reference"
                    ),
                });
            }
        }
    }
}

/// R3: every `unsafe` keyword in a gated crate must carry a `// SAFETY:`
/// rationale on the same line or in the contiguous comment block above.
fn rule_r3(ctx: &FileContext, lines: &[Line], out: &mut Vec<RawFinding>) {
    if !gated(ctx) {
        return;
    }
    for (i, line) in lines.iter().enumerate() {
        if !has_token(&line.code, "unsafe") {
            continue;
        }
        if comment_block_above(lines, i)
            .iter()
            .any(|c| c.contains("SAFETY:"))
        {
            continue;
        }
        out.push(RawFinding {
            line_idx: i,
            rule: "R3",
            message: "unsafe without a `// SAFETY:` comment; state the invariant that makes \
                      this sound"
                .into(),
        });
    }
}

/// R4: no wall-clock reads or ad-hoc thread spawns in library code of gated
/// crates. Simulated time comes from the event queue; real threads belong to
/// the audited kernel pool.
fn rule_r4(ctx: &FileContext, lines: &[Line], out: &mut Vec<RawFinding>) {
    if !gated(ctx) || ctx.kind != FileKind::Lib {
        return;
    }
    for (i, line) in lines.iter().enumerate() {
        for pat in R4_PATTERNS {
            if let Some(at) = line.code.find(pat) {
                // Reject matches that extend an identifier on the left
                // (e.g. `my_thread::spawn`).
                let ok = at == 0 || {
                    let b = line.code.as_bytes()[at - 1];
                    !(b.is_ascii_alphanumeric() || b == b'_')
                };
                if ok {
                    out.push(RawFinding {
                        line_idx: i,
                        rule: "R4",
                        message: format!(
                            "`{pat}` in library code; simulated time comes from the event \
                             queue and threads from the kernel pool"
                        ),
                    });
                }
            }
        }
    }
}

/// R5: the raw toggle mutators are reserved for the default layer —
/// `fedat_core::exec::ToggleGuard` (which restores the prior value on every
/// exit path) and the environment-reading side of `ExecCtx`. Call sites
/// elsewhere (library *or* test code) must go through a guard, or carry the
/// per-run configuration in an `ExecCtx` overlay instead of mutating
/// process-wide state a concurrent run would observe.
fn rule_r5(ctx: &FileContext, lines: &[Line], out: &mut Vec<RawFinding>) {
    if !gated(ctx) || !matches!(ctx.kind, FileKind::Lib | FileKind::Test) {
        return;
    }
    for (i, line) in lines.iter().enumerate() {
        for setter in RAW_SETTERS {
            if has_call(&line.code, setter) {
                out.push(RawFinding {
                    line_idx: i,
                    rule: "R5",
                    message: format!(
                        "raw `{setter}(..)` call mutates process-wide state; use \
                         fedat_core::exec::ToggleGuard (restores on every exit path) or \
                         carry the value in a per-run ExecCtx overlay"
                    ),
                });
            }
        }
    }
}

/// R6: config structs in the serde-facing config files — the experiment
/// config (`crates/core/src/config.rs`, home of `FaultPolicy` and
/// `GuardPolicy`) and the churn scenario specs (`crates/sim/src/churn.rs`,
/// home of `CorruptSpec` and friends) — that derive `Deserialize` must
/// carry container-level `#[serde(default)]`, so configs written by older
/// binaries keep loading when fields are added.
fn rule_r6(ctx: &FileContext, lines: &[Line], out: &mut Vec<RawFinding>) {
    if ctx.rel != "crates/core/src/config.rs" && ctx.rel != "crates/sim/src/churn.rs" {
        return;
    }
    for (i, line) in lines.iter().enumerate() {
        if !(line.code.contains("derive(") && has_token(&line.code, "Deserialize")) {
            continue;
        }
        let mut has_default = line.code.contains("serde(default)");
        let mut j = i + 1;
        while j < lines.len() {
            let code = lines[j].code.trim();
            if code.is_empty() || code.starts_with("#[") || code.starts_with("#!") {
                if code.contains("serde(default)") {
                    has_default = true;
                }
                j += 1;
            } else {
                break;
            }
        }
        if j >= lines.len() {
            continue;
        }
        let item = lines[j].code.trim();
        if has_token(item, "struct") && !has_default {
            out.push(RawFinding {
                line_idx: j,
                rule: "R6",
                message: "config struct derives Deserialize without container-level \
                          #[serde(default)]; old on-disk configs must keep loading when \
                          fields are added"
                    .into(),
            });
        }
    }
}

/// LINT: a `lint: allow(..)` without a `reason = ".."` is itself a finding —
/// unexplained suppressions rot. Scoped to gated crates: that is where
/// suppressions have effect (and where all of them live).
fn rule_malformed_allows(ctx: &FileContext, lines: &[Line], out: &mut Vec<RawFinding>) {
    if !gated(ctx) {
        return;
    }
    for (i, line) in lines.iter().enumerate() {
        for allow in parse_allows(&line.comment) {
            if allow.rules.is_empty() {
                out.push(RawFinding {
                    line_idx: i,
                    rule: "LINT",
                    message: "malformed suppression: `lint: allow(..)` names no rule".into(),
                });
            } else if allow.reason.is_none() {
                out.push(RawFinding {
                    line_idx: i,
                    rule: "LINT",
                    message: format!(
                        "suppression for {} carries no reason; write \
                         `lint: allow({}, reason = \"..\")`",
                        allow.rules.join(", "),
                        allow.rules.join(", ")
                    ),
                });
            }
        }
    }
}

/// A parsed `lint: allow(R.., reason = "..")` marker.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Allow {
    /// Rule ids named by the marker.
    pub rules: Vec<String>,
    /// The justification string, if present (required for the marker to
    /// actually suppress anything).
    pub reason: Option<String>,
}

/// Extracts every `lint: allow(..)` marker from one comment string.
pub fn parse_allows(comment: &str) -> Vec<Allow> {
    const MARKER: &str = "lint: allow(";
    let mut out = Vec::new();
    let mut rest = comment;
    while let Some(pos) = rest.find(MARKER) {
        let mut s = &rest[pos + MARKER.len()..];
        rest = s;
        let mut rules = Vec::new();
        let mut reason = None;
        loop {
            s = s.trim_start_matches([' ', ',']);
            if s.is_empty() || s.starts_with(')') {
                break;
            }
            if let Some(r) = s.strip_prefix("reason") {
                let r = r.trim_start();
                let r = r.strip_prefix('=').unwrap_or(r).trim_start();
                if let Some(body) = r.strip_prefix('"') {
                    if let Some(end) = body.find('"') {
                        reason = Some(body[..end].to_string());
                        s = &body[end + 1..];
                        continue;
                    }
                }
                break; // malformed reason → treated as absent
            }
            let end = s.find([',', ')', ' ']).unwrap_or(s.len());
            if end == 0 {
                break;
            }
            rules.push(s[..end].to_string());
            s = &s[end..];
        }
        out.push(Allow { rules, reason });
    }
    out
}

/// Comment text applicable to line `i`: its own comment plus the contiguous
/// block of comment-only / attribute-only lines directly above. A fully
/// blank line (no code, no comment) breaks the block, keeping rationales
/// tightly associated with the code they justify. Assignment continuations
/// (`let x =` split across lines by rustfmt) are passed through so a
/// rationale above the statement covers its whole right-hand side.
pub fn comment_block_above(lines: &[Line], i: usize) -> Vec<&str> {
    let mut block = vec![lines[i].comment.as_str()];
    let mut j = i;
    while j > 0 {
        j -= 1;
        let code = lines[j].code.trim();
        let comment = &lines[j].comment;
        if code.is_empty() && comment.is_empty() {
            break; // blank line
        }
        if code.is_empty()
            || code.starts_with("#[")
            || code.starts_with("#!")
            || code.ends_with('=')
        {
            block.push(comment.as_str());
        } else {
            break;
        }
    }
    block
}

/// Allows applicable to line `i` (same line + contiguous block above).
pub fn allows_for_line(lines: &[Line], i: usize) -> Vec<Allow> {
    comment_block_above(lines, i)
        .into_iter()
        .flat_map(parse_allows)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_parsing_extracts_rules_and_reason() {
        let a = parse_allows("// lint: allow(R5, reason = \"audited home\")");
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].rules, vec!["R5"]);
        assert_eq!(a[0].reason.as_deref(), Some("audited home"));
    }

    #[test]
    fn allow_parsing_handles_multiple_rules_and_parens_in_reason() {
        let a = parse_allows("// lint: allow(R1, R4, reason = \"x (y) z\")");
        assert_eq!(a[0].rules, vec!["R1", "R4"]);
        assert_eq!(a[0].reason.as_deref(), Some("x (y) z"));
    }

    #[test]
    fn allow_without_reason_is_parsed_but_reasonless() {
        let a = parse_allows("// lint: allow(R2)");
        assert_eq!(a[0].rules, vec!["R2"]);
        assert!(a[0].reason.is_none());
    }

    #[test]
    fn token_position_is_boundary_aware() {
        use crate::scan::token_position;
        assert!(token_position("let m: HashMap<u8, u8>;", "HashMap").is_some());
        assert!(token_position("let m: MyHashMapLike;", "HashMap").is_none());
    }
}
