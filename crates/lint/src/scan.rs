//! A hand-rolled Rust surface lexer.
//!
//! The linter's rules are all *token-level*: they need to know whether a
//! pattern occurs in executable code, in a comment, or inside a string
//! literal. A full parse is overkill (and would drag in `syn`, which the
//! workspace deliberately does not vendor), so this module walks the source
//! character-by-character and splits every line into
//!
//! - `code`: the line's code text with string/char literal *contents* blanked
//!   to spaces (delimiters too), so rule patterns can never match inside a
//!   literal, while column positions stay stable; and
//! - `comment`: the concatenated text of any `//`, `///`, `/* .. */` comment
//!   on that line, which is where `SAFETY:` rationales and
//!   `lint: allow(..)` suppressions live.
//!
//! The lexer understands nested block comments, raw strings with arbitrary
//! hash fences (`r#".."#`, `br##".."##`), escapes in string and char
//! literals, and the lifetime-vs-char-literal ambiguity (`'a` vs `'a'`).

/// One source line, split into its code and comment channels.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Line {
    /// Code text with literal contents blanked to spaces.
    pub code: String,
    /// Concatenated comment text (markers included).
    pub comment: String,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum State {
    Normal,
    LineComment,
    /// Block comment with a nesting depth (Rust block comments nest).
    BlockComment(u32),
    Str,
    /// Raw string terminated by `"` followed by this many `#`s.
    RawStr(u32),
    CharLit,
}

/// Splits `source` into per-line code/comment channels.
pub fn scan(source: &str) -> Vec<Line> {
    let chars: Vec<char> = source.chars().collect();
    let mut lines = Vec::new();
    let mut line = Line::default();
    let mut state = State::Normal;
    let mut prev_ident = false; // was the previous Normal char part of an identifier?
    let mut i = 0;

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if state == State::LineComment {
                state = State::Normal;
            }
            lines.push(std::mem::take(&mut line));
            prev_ident = false;
            i += 1;
            continue;
        }
        match state {
            State::Normal => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    line.comment.push_str("//");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    line.comment.push_str("/*");
                    i += 2;
                } else if c == '"' {
                    state = State::Str;
                    line.code.push(' ');
                    prev_ident = false;
                    i += 1;
                } else if (c == 'r' || c == 'b') && !prev_ident {
                    // Possible raw-string opener: r"", r#"", br#"", b"".
                    let mut j = i + 1;
                    if c == 'b' && chars.get(j) == Some(&'r') {
                        j += 1;
                    }
                    let raw = j > i + 1 || c == 'r';
                    let mut hashes = 0u32;
                    while raw && chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if raw && chars.get(j) == Some(&'"') {
                        state = State::RawStr(hashes);
                        for _ in i..=j {
                            line.code.push(' ');
                        }
                        prev_ident = false;
                        i = j + 1;
                    } else if c == 'b' && chars.get(i + 1) == Some(&'"') {
                        // byte string b"..."
                        state = State::Str;
                        line.code.push(' ');
                        line.code.push(' ');
                        prev_ident = false;
                        i += 2;
                    } else if c == 'b' && chars.get(i + 1) == Some(&'\'') {
                        // byte char b'x'
                        state = State::CharLit;
                        line.code.push(' ');
                        line.code.push(' ');
                        prev_ident = false;
                        i += 2;
                    } else {
                        line.code.push(c);
                        prev_ident = true;
                        i += 1;
                    }
                } else if c == '\'' {
                    // Lifetime or char literal? A char literal is `'x'` or
                    // `'\..'`; a lifetime is `'ident` with no closing quote.
                    let is_char = match next {
                        Some('\\') => true,
                        Some(_) => chars.get(i + 2) == Some(&'\''),
                        None => false,
                    };
                    if is_char {
                        state = State::CharLit;
                        line.code.push(' ');
                    } else {
                        line.code.push(c);
                    }
                    prev_ident = false;
                    i += 1;
                } else {
                    line.code.push(c);
                    prev_ident = c.is_alphanumeric() || c == '_';
                    i += 1;
                }
            }
            State::LineComment => {
                line.comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    line.comment.push_str("*/");
                    state = if depth == 1 {
                        State::Normal
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    line.comment.push_str("/*");
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else {
                    line.comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    line.code.push(' ');
                    if chars.get(i + 1).is_some() && chars[i + 1] != '\n' {
                        line.code.push(' ');
                        i += 1;
                    }
                } else if c == '"' {
                    state = State::Normal;
                    line.code.push(' ');
                } else {
                    line.code.push(' ');
                }
                i += 1;
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    let mut ok = true;
                    for k in 0..hashes as usize {
                        if chars.get(i + 1 + k) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        for _ in 0..=hashes as usize {
                            line.code.push(' ');
                        }
                        state = State::Normal;
                        i += 1 + hashes as usize;
                        continue;
                    }
                }
                line.code.push(' ');
                i += 1;
            }
            State::CharLit => {
                if c == '\\' {
                    line.code.push(' ');
                    if chars.get(i + 1).is_some() && chars[i + 1] != '\n' {
                        line.code.push(' ');
                        i += 1;
                    }
                } else if c == '\'' {
                    state = State::Normal;
                    line.code.push(' ');
                } else {
                    line.code.push(' ');
                }
                i += 1;
            }
        }
    }
    if !line.code.is_empty() || !line.comment.is_empty() {
        lines.push(line);
    }
    lines
}

/// Returns true if `needle` occurs in `haystack` as a whole identifier token
/// (not as a substring of a longer identifier).
pub fn has_token(haystack: &str, needle: &str) -> bool {
    token_position(haystack, needle).is_some()
}

/// Byte offset of the first whole-token occurrence of `needle`, if any.
pub fn token_position(haystack: &str, needle: &str) -> Option<usize> {
    let bytes = haystack.as_bytes();
    let mut from = 0;
    while let Some(rel) = haystack[from..].find(needle) {
        let at = from + rel;
        let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let end = at + needle.len();
        let after_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if before_ok && after_ok {
            return Some(at);
        }
        from = at + 1;
    }
    None
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Returns true if `name` occurs as a token that is *called* (followed,
/// after optional whitespace, by `(`), excluding `fn name(` definitions.
pub fn has_call(code: &str, name: &str) -> bool {
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(rel) = code[from..].find(name) {
        let at = from + rel;
        from = at + 1;
        let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let end = at + name.len();
        let after_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if !(before_ok && after_ok) {
            continue;
        }
        // Must be a call: next non-space char is '('.
        let mut j = end;
        while j < bytes.len() && bytes[j] == b' ' {
            j += 1;
        }
        if j >= bytes.len() || bytes[j] != b'(' {
            continue;
        }
        // Not a definition: `fn name(`.
        let head = code[..at].trim_end();
        if head.ends_with("fn") {
            continue;
        }
        return true;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(src: &str) -> Vec<String> {
        scan(src).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn line_comments_are_routed_to_the_comment_channel() {
        let lines = scan("let x = 1; // HashMap here\nlet y = 2;\n");
        assert!(!lines[0].code.contains("HashMap"));
        assert!(lines[0].comment.contains("HashMap"));
        assert_eq!(lines[1].code, "let y = 2;");
    }

    #[test]
    fn string_contents_are_blanked() {
        let c = codes("let s = \"HashMap::new() // not a comment\"; foo();\n");
        assert!(!c[0].contains("HashMap"));
        assert!(c[0].contains("foo();"));
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let c = codes("let s = \"a\\\"HashMap\"; bar();\n");
        assert!(!c[0].contains("HashMap"));
        assert!(c[0].contains("bar();"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let c = codes("let s = r#\"unsafe \" still string\"#; baz();\n");
        assert!(!c[0].contains("unsafe"));
        assert!(c[0].contains("baz();"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "a(); /* outer /* inner */ still comment */ b();\n";
        let lines = scan(src);
        assert!(lines[0].code.contains("a();"));
        assert!(lines[0].code.contains("b();"));
        assert!(!lines[0].code.contains("still"));
        assert!(lines[0].comment.contains("inner"));
    }

    #[test]
    fn multiline_block_comment_spans_lines() {
        let lines = scan("x(); /* one\ntwo HashMap\n*/ y();\n");
        assert!(!lines[1].code.contains("HashMap"));
        assert!(lines[1].comment.contains("HashMap"));
        assert!(lines[2].code.contains("y();"));
    }

    #[test]
    fn lifetimes_are_code_char_literals_are_not() {
        let c = codes("fn f<'a>(x: &'a str) { let c = 'x'; let q = '\\n'; }\n");
        assert!(c[0].contains("'a"));
        assert!(!c[0].contains('x') || !c[0].contains("'x'"));
        assert!(!c[0].contains("\\n"));
    }

    #[test]
    fn byte_and_raw_byte_literals() {
        let c = codes("let a = b\"unsafe\"; let b2 = br#\"unsafe\"#; let c0 = b'u'; ok();\n");
        assert!(!c[0].contains("unsafe"));
        assert!(c[0].contains("ok();"));
    }

    #[test]
    fn identifier_ending_in_r_is_not_a_raw_string() {
        let c = codes("let var\"x\" = 1;\n"); // pathological but must not panic
        assert!(c[0].contains("var"));
        let c = codes("attr\"s\";\n");
        assert!(c[0].contains("attr"));
    }

    #[test]
    fn token_matching_respects_identifier_boundaries() {
        assert!(has_token("use std::collections::HashMap;", "HashMap"));
        assert!(!has_token("#![forbid(unsafe_code)]", "unsafe"));
        assert!(has_token("unsafe { x }", "unsafe"));
        assert!(!has_token("MyHashMap::new()", "HashMap"));
    }

    #[test]
    fn call_matching_skips_definitions_and_bare_paths() {
        assert!(has_call("exec::set_exec_mode(mode);", "set_exec_mode"));
        assert!(!has_call(
            "pub fn set_exec_mode(mode: ExecMode) {",
            "set_exec_mode"
        ));
        assert!(!has_call(
            "use exec::{set_exec_mode, exec_mode};",
            "set_exec_mode"
        ));
        assert!(!has_call("my_set_exec_mode(x)", "set_exec_mode"));
    }
}
