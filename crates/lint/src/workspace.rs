//! Workspace discovery: walks `crates/*` and classifies every `.rs` file.

use std::io;
use std::path::{Path, PathBuf};

/// What kind of target a source file belongs to. Rules scope themselves to
/// kinds: library code carries the bit-identity contract, test code may
/// exercise toggles through guards, benches are out of contract entirely.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileKind {
    /// `src/**` — library code shipped to every consumer.
    Lib,
    /// `tests/**` — integration tests.
    Test,
    /// `benches/**` — wall-clock benchmarks (out of the determinism contract).
    Bench,
    /// `examples/**`.
    Example,
    /// `src/bin/**` — binaries (CLIs may read clocks and spawn threads).
    Bin,
}

impl FileKind {
    /// Stable lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            FileKind::Lib => "lib",
            FileKind::Test => "test",
            FileKind::Bench => "bench",
            FileKind::Example => "example",
            FileKind::Bin => "bin",
        }
    }
}

/// One source file slated for scanning.
#[derive(Clone, Debug)]
pub struct SourceFile {
    /// Absolute path on disk.
    pub path: PathBuf,
    /// Path relative to the workspace root, with `/` separators.
    pub rel: String,
    /// Crate directory name under `crates/` (e.g. `core`, `tensor`).
    pub crate_name: String,
    /// Target classification.
    pub kind: FileKind,
}

/// Classifies a workspace-relative path (`crates/<name>/...`), or returns
/// `None` for files the linter does not scan (fixtures, non-target dirs).
pub fn classify(rel: &str) -> Option<(String, FileKind)> {
    let rest = rel.strip_prefix("crates/")?;
    let (crate_name, inside) = rest.split_once('/')?;
    if !inside.ends_with(".rs") {
        return None;
    }
    // Lint-rule fixtures are deliberate violations; never scan them.
    if inside.contains("tests/fixtures/") {
        return None;
    }
    let kind = if let Some(src_rest) = inside.strip_prefix("src/") {
        if src_rest.starts_with("bin/") {
            FileKind::Bin
        } else {
            FileKind::Lib
        }
    } else if inside.starts_with("tests/") {
        FileKind::Test
    } else if inside.starts_with("benches/") {
        FileKind::Bench
    } else if inside.starts_with("examples/") {
        FileKind::Example
    } else {
        return None;
    };
    Some((crate_name.to_string(), kind))
}

/// Walks `root/crates/*` and returns every classifiable `.rs` file, sorted
/// by workspace-relative path so reports are deterministic.
pub fn discover(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let mut stack = vec![crates_dir];
    while let Some(dir) = stack.pop() {
        let entries = match std::fs::read_dir(&dir) {
            Ok(e) => e,
            Err(_) => continue,
        };
        for entry in entries {
            let entry = entry?;
            let path = entry.path();
            if path.is_dir() {
                let name = entry.file_name();
                if name != "target" {
                    stack.push(path);
                }
            } else if path.extension().is_some_and(|e| e == "rs") {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy())
                    .collect::<Vec<_>>()
                    .join("/");
                if let Some((crate_name, kind)) = classify(&rel) {
                    files.push(SourceFile {
                        path,
                        rel,
                        crate_name,
                        kind,
                    });
                }
            }
        }
    }
    files.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(files)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matches_cargo_target_layout() {
        assert_eq!(
            classify("crates/core/src/lib.rs"),
            Some(("core".into(), FileKind::Lib))
        );
        assert_eq!(
            classify("crates/core/src/strategies/fedasync.rs"),
            Some(("core".into(), FileKind::Lib))
        );
        assert_eq!(
            classify("crates/core/src/bin/fedat.rs"),
            Some(("core".into(), FileKind::Bin))
        );
        assert_eq!(
            classify("crates/tensor/tests/pool_determinism.rs"),
            Some(("tensor".into(), FileKind::Test))
        );
        assert_eq!(
            classify("crates/bench/benches/fl_round.rs"),
            Some(("bench".into(), FileKind::Bench))
        );
    }

    #[test]
    fn fixtures_and_foreign_files_are_skipped() {
        assert_eq!(classify("crates/lint/tests/fixtures/r1_violation.rs"), None);
        assert_eq!(classify("vendor/serde/src/lib.rs"), None);
        assert_eq!(classify("crates/core/README.md"), None);
        assert_eq!(classify("src/lib.rs"), None);
    }
}
