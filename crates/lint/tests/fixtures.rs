//! Fixture-based self-tests: one violating, one clean, and one suppressed
//! case per rule. Fixture sources live under `tests/fixtures/` — a path the
//! workspace walker deliberately skips — and are replayed through
//! [`fedat_lint::lint_source`] under pretend workspace paths, so each rule's
//! scoping (crate, target kind, special files) is exercised exactly as in a
//! real scan.

use fedat_lint::lint_source;
use fedat_lint::report::{Finding, Suppressed};

fn lint(rel: &str, src: &str) -> (Vec<Finding>, Vec<Suppressed>) {
    lint_source(rel, src).expect("fixture path must classify")
}

fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

#[test]
fn r1_flags_hash_containers_in_lib_code() {
    let (f, _) = lint(
        "crates/core/src/table.rs",
        include_str!("fixtures/r1_violation.rs"),
    );
    assert_eq!(rules_of(&f), ["R1", "R1"], "use + field type: {f:?}");
}

#[test]
fn r1_ignores_ordered_containers_comments_and_strings() {
    let (f, s) = lint(
        "crates/core/src/table.rs",
        include_str!("fixtures/r1_clean.rs"),
    );
    assert!(f.is_empty(), "clean fixture flagged: {f:?}");
    assert!(s.is_empty());
}

#[test]
fn r1_is_out_of_scope_in_tests_and_ungated_crates() {
    let src = include_str!("fixtures/r1_violation.rs");
    let (f, _) = lint("crates/core/tests/table.rs", src);
    assert!(f.is_empty(), "R1 must not apply to test code: {f:?}");
    let (f, _) = lint("crates/bench/src/lib.rs", src);
    assert!(f.is_empty(), "R1 must not apply to the bench crate: {f:?}");
}

#[test]
fn r1_suppression_moves_the_finding_to_the_audit_list() {
    let (f, s) = lint(
        "crates/core/src/table.rs",
        include_str!("fixtures/r1_suppressed.rs"),
    );
    assert!(f.is_empty(), "suppressed fixture still flagged: {f:?}");
    assert_eq!(s.len(), 1);
    assert_eq!(s[0].rule, "R1");
    assert!(s[0].reason.contains("diagnostic cache"));
}

#[test]
fn r2_flags_mul_add_and_ps_fusion_anywhere_gated() {
    let (f, _) = lint(
        "crates/nn/src/layers.rs",
        include_str!("fixtures/r2_violation.rs"),
    );
    let rules = rules_of(&f);
    assert!(rules.contains(&"R2"), "expected R2 findings: {f:?}");
    assert_eq!(rules.iter().filter(|r| **r == "R2").count(), 2);
}

#[test]
fn r2_allows_unfused_arithmetic_and_trait_definitions() {
    let (f, _) = lint(
        "crates/nn/src/layers.rs",
        include_str!("fixtures/r2_clean.rs"),
    );
    assert!(f.is_empty(), "clean fixture flagged: {f:?}");
}

#[test]
fn r2_pd_fusion_is_legal_only_in_the_sanctuary() {
    let src = "// SAFETY: fixture.\npub unsafe fn lane() {\n    let _ = _mm256_fmadd_pd();\n}\n";
    let (f, _) = lint(fedat_lint::rules::FMA_SANCTUARY, src);
    assert!(f.is_empty(), "_pd in the sanctuary flagged: {f:?}");
    let (f, _) = lint("crates/tensor/src/ops.rs", src);
    assert_eq!(rules_of(&f), ["R2"], "_pd outside the sanctuary: {f:?}");
}

#[test]
fn r2_suppression_is_honoured() {
    let (f, s) = lint(
        "crates/nn/src/layers.rs",
        include_str!("fixtures/r2_suppressed.rs"),
    );
    assert!(f.is_empty(), "{f:?}");
    assert_eq!(s.len(), 1);
    assert_eq!(s[0].rule, "R2");
}

#[test]
fn r3_flags_unsafe_without_rationale() {
    let (f, _) = lint(
        "crates/tensor/src/ops.rs",
        include_str!("fixtures/r3_violation.rs"),
    );
    assert_eq!(rules_of(&f), ["R3"], "{f:?}");
}

#[test]
fn r3_accepts_safety_across_attributes_and_split_assignments() {
    let (f, _) = lint(
        "crates/tensor/src/ops.rs",
        include_str!("fixtures/r3_clean.rs"),
    );
    assert!(f.is_empty(), "clean fixture flagged: {f:?}");
}

#[test]
fn r3_suppression_is_honoured() {
    let (f, s) = lint(
        "crates/tensor/src/ops.rs",
        include_str!("fixtures/r3_suppressed.rs"),
    );
    assert!(f.is_empty(), "{f:?}");
    assert_eq!(s.len(), 1);
    assert_eq!(s[0].rule, "R3");
}

#[test]
fn r4_flags_clocks_and_adhoc_threads_in_lib_code() {
    let (f, _) = lint(
        "crates/sim/src/runtime.rs",
        include_str!("fixtures/r4_violation.rs"),
    );
    let r4 = f.iter().filter(|f| f.rule == "R4").count();
    // Instant::now, SystemTime (use + call), thread::spawn, thread::sleep.
    assert!(r4 >= 4, "expected ≥4 R4 findings, got {f:?}");
}

#[test]
fn r4_permits_durations_and_is_lib_only() {
    let (f, _) = lint(
        "crates/sim/src/runtime.rs",
        include_str!("fixtures/r4_clean.rs"),
    );
    assert!(f.is_empty(), "clean fixture flagged: {f:?}");
    let (f, _) = lint(
        "crates/sim/tests/runtime.rs",
        include_str!("fixtures/r4_violation.rs"),
    );
    assert!(f.is_empty(), "R4 must not apply to test code: {f:?}");
}

#[test]
fn r4_suppression_is_honoured() {
    let (f, s) = lint(
        "crates/sim/src/runtime.rs",
        include_str!("fixtures/r4_suppressed.rs"),
    );
    assert!(f.is_empty(), "{f:?}");
    assert_eq!(s.len(), 1);
    assert_eq!(s[0].rule, "R4");
}

#[test]
fn r5_flags_raw_setter_calls_in_tests_too() {
    let (f, _) = lint(
        "crates/tensor/tests/kernels.rs",
        include_str!("fixtures/r5_violation.rs"),
    );
    assert_eq!(rules_of(&f), ["R5", "R5"], "{f:?}");
}

#[test]
fn r5_permits_guards_imports_and_definitions() {
    let (f, _) = lint(
        "crates/tensor/tests/kernels.rs",
        include_str!("fixtures/r5_clean.rs"),
    );
    assert!(f.is_empty(), "clean fixture flagged: {f:?}");
    // Benches are out of the contract entirely.
    let (f, _) = lint(
        "crates/bench/benches/kernels.rs",
        include_str!("fixtures/r5_violation.rs"),
    );
    assert!(f.is_empty(), "R5 must not apply to benches: {f:?}");
}

#[test]
fn r5_suppression_is_honoured() {
    let (f, s) = lint(
        "crates/tensor/tests/kernels.rs",
        include_str!("fixtures/r5_suppressed.rs"),
    );
    assert!(f.is_empty(), "{f:?}");
    assert_eq!(s.len(), 1);
    assert_eq!(s[0].rule, "R5");
}

#[test]
fn r6_flags_deserialize_structs_without_container_default() {
    let (f, _) = lint(
        "crates/core/src/config.rs",
        include_str!("fixtures/r6_violation.rs"),
    );
    assert_eq!(rules_of(&f), ["R6"], "{f:?}");
}

#[test]
fn r6_accepts_defaults_enums_and_serde_free_structs() {
    let (f, _) = lint(
        "crates/core/src/config.rs",
        include_str!("fixtures/r6_clean.rs"),
    );
    assert!(f.is_empty(), "clean fixture flagged: {f:?}");
    // The rule is scoped to the serde-facing config files alone.
    let (f, _) = lint(
        "crates/core/src/other.rs",
        include_str!("fixtures/r6_violation.rs"),
    );
    assert!(f.is_empty(), "R6 must be scoped to the config files: {f:?}");
}

#[test]
fn r6_covers_the_churn_scenario_specs() {
    // `CorruptSpec` and the other churn scenario structs are part of the
    // on-disk config surface; the rule applies to them like to
    // `GuardPolicy`/`FaultPolicy` in core's config.rs.
    let (f, _) = lint(
        "crates/sim/src/churn.rs",
        include_str!("fixtures/r6_violation.rs"),
    );
    assert_eq!(rules_of(&f), ["R6"], "{f:?}");
    let (f, _) = lint(
        "crates/sim/src/churn.rs",
        include_str!("fixtures/r6_clean.rs"),
    );
    assert!(f.is_empty(), "clean fixture flagged in churn.rs: {f:?}");
}

#[test]
fn r6_suppression_is_honoured() {
    let (f, s) = lint(
        "crates/core/src/config.rs",
        include_str!("fixtures/r6_suppressed.rs"),
    );
    assert!(f.is_empty(), "{f:?}");
    assert_eq!(s.len(), 1);
    assert_eq!(s[0].rule, "R6");
}

#[test]
fn reasonless_allows_are_themselves_findings() {
    let src = "pub fn f() {\n    // lint: allow(R3)\n    unsafe { core::hint::unreachable_unchecked() }\n}\n";
    let (f, s) = lint("crates/core/src/x.rs", src);
    let rules = rules_of(&f);
    assert!(
        rules.contains(&"LINT"),
        "reasonless allow not flagged: {f:?}"
    );
    assert!(
        rules.contains(&"R3"),
        "reasonless allow must not suppress: {f:?}"
    );
    assert!(s.is_empty());
}

#[test]
fn fixture_paths_are_invisible_to_the_workspace_walker() {
    assert!(
        fedat_lint::workspace::classify("crates/lint/tests/fixtures/r1_violation.rs").is_none()
    );
}
