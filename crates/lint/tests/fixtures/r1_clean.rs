//! R1 fixture: ordered containers keep aggregation order pinned.
//! A doc-comment mention of HashMap must not trip the rule, and neither
//! must a string literal: "HashMap".
use std::collections::BTreeMap;

pub struct InflightTable {
    pub by_version: BTreeMap<u64, Vec<f32>>,
}

pub fn label() -> &'static str {
    "prefer BTreeMap over HashMap"
}
