//! R1 fixture: an acknowledged exception with an audited reason.

// lint: allow(R1, reason = "diagnostic cache; never iterated during aggregation")
pub type DiagCache = std::collections::HashMap<u64, String>;
