//! R1 fixture: RandomState-ordered containers in library code.
use std::collections::HashMap;

pub struct InflightTable {
    pub by_version: HashMap<u64, Vec<f32>>,
}
