//! R2 fixture: two-rounding-step arithmetic matches the scalar reference.
//! Mentioning mul_add in a comment is fine; defining one is fine too.

pub fn axpy(y: &mut [f32], a: f32, x: &[f32]) {
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi = a * xi + *yi;
    }
}

pub trait MulAdd {
    fn mul_add(self, a: f32, b: f32) -> f32;
}
