//! R2 fixture: an acknowledged fused site with an audited reason.

pub fn horner(c: &[f32], x: f32) -> f32 {
    c.iter().rev().fold(0.0f32, |acc, &ci| {
        // lint: allow(R2, reason = "fixture: pretend this polynomial is not on the pinned path")
        acc.mul_add(x, ci)
    })
}
