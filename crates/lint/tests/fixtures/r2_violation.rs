//! R2 fixture: fused multiply-add outside the pinned-lane sanctuary.

pub fn axpy(y: &mut [f32], a: f32, x: &[f32]) {
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi = xi.mul_add(a, *yi);
    }
}

#[cfg(target_arch = "x86_64")]
pub unsafe fn lane(acc: core::arch::x86_64::__m256, a: core::arch::x86_64::__m256) {
    // SAFETY: fixture text only.
    let _ = core::arch::x86_64::_mm256_fmadd_ps(acc, a, acc);
}
