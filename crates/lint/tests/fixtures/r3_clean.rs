//! R3 fixture: every unsafe carries its invariant, even across attribute
//! lines and rustfmt-split assignments.

pub fn head(xs: &[f32]) -> f32 {
    assert!(!xs.is_empty());
    // SAFETY: asserted non-empty above, so index 0 is in bounds.
    unsafe { *xs.get_unchecked(0) }
}

// SAFETY: requires AVX2 — callers dispatch through a runtime feature check.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
pub unsafe fn lane_sum(_x: &[f32]) {}

pub fn split_assignment(xs: &[f32]) -> f32 {
    assert!(!xs.is_empty());
    // SAFETY: asserted non-empty above; the comment covers the whole RHS.
    let value =
        unsafe { *xs.get_unchecked(0) };
    value
}
