//! R3 fixture: a suppression is accepted, though SAFETY is the better fix.

pub fn head(xs: &[f32]) -> f32 {
    // lint: allow(R3, reason = "fixture: migration stopgap tracked in the audit log")
    unsafe { *xs.get_unchecked(0) }
}
