//! R3 fixture: unsafe without a SAFETY rationale.

pub fn head(xs: &[f32]) -> f32 {
    unsafe { *xs.get_unchecked(0) }
}
