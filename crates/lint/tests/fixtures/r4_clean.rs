//! R4 fixture: simulated time from the event queue; Duration values are
//! fine — only clock *reads* and ad-hoc spawns are banned.
use std::time::Duration;

pub fn horizon(rounds: u64, per_round: Duration) -> Duration {
    per_round * rounds as u32
}
