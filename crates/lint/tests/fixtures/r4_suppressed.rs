//! R4 fixture: a sanctioned real-thread site with an audited reason.

pub fn demo() {
    // lint: allow(R4, reason = "fixture: demonstration harness, feeds no pinned trace")
    std::thread::scope(|s| {
        s.spawn(|| {});
    });
}
