//! R4 fixture: wall-clock reads and ad-hoc threads in library code.
use std::time::{Instant, SystemTime};

pub fn stamp() -> u128 {
    let t0 = Instant::now();
    let _ = SystemTime::now();
    std::thread::spawn(|| {});
    std::thread::sleep(std::time::Duration::from_millis(1));
    t0.elapsed().as_nanos()
}
