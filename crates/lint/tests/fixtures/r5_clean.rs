//! R5 fixture: toggles flow through the RAII guard; importing a setter or
//! defining one is fine — only raw *calls* are flagged.
use fedat_core::exec::ToggleGuard;
use fedat_tensor::simd::{set_simd_kernel, SimdKernel};

pub fn set_exec_mode(_mode: u8) {
    // a same-named local definition is not a raw call
}

#[test]
fn scalar_matches_auto() {
    let mut g = ToggleGuard::new();
    g.simd(SimdKernel::Scalar);
    // guard drop restores the prior kernel on every exit path
}
