//! R5 fixture: the setter's own test suite may call it raw, with a reason.
use fedat_tensor::simd::{set_simd_kernel, SimdKernel};

#[test]
fn raw_setter_round_trips() {
    // lint: allow(R5, reason = "fixture: this test exercises the raw setter itself")
    set_simd_kernel(SimdKernel::Auto);
}
