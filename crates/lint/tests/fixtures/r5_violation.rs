//! R5 fixture: raw toggle mutators leak state into later tests.
use fedat_tensor::simd::{set_simd_kernel, SimdKernel};

#[test]
fn scalar_matches_auto() {
    set_simd_kernel(SimdKernel::Scalar);
    // ... if the assertion below panics, the toggle never resets ...
    set_simd_kernel(SimdKernel::Auto);
}
