//! R6 fixture: container-level serde(default) keeps old configs loading;
//! enums and serde-free structs are out of scope.
use serde::{Deserialize, Serialize};

#[derive(Clone, Debug, Serialize, Deserialize)]
#[serde(default)]
pub struct RetierPolicy {
    pub interval: u64,
}

impl Default for RetierPolicy {
    fn default() -> Self {
        Self { interval: 10 }
    }
}

#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub enum Strategy {
    FedAvg,
    FedAsync,
}

#[derive(Clone, Debug)]
pub struct NotSerialized {
    pub scratch: Vec<f32>,
}
