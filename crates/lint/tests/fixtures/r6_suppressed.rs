//! R6 fixture: a struct that genuinely wants strict parsing, acknowledged.
use serde::Deserialize;

// lint: allow(R6, reason = "fixture: strict parse is intentional; missing fields must error")
#[derive(Clone, Debug, Deserialize)]
pub struct StrictHeader {
    pub magic: u32,
}
