//! R6 fixture: a Deserialize config struct with no container default.
use serde::{Deserialize, Serialize};

#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RetierPolicy {
    pub interval: u64,
}
