//! The lint gate: `cargo test` fails if the workspace violates the
//! bit-identity contract's static rules. This is the same scan the
//! `fedat-lint` binary and the CI lint lane run.

#[test]
fn workspace_has_no_unsuppressed_findings() {
    let root = fedat_lint::workspace_root();
    let report = fedat_lint::lint_workspace(&root).expect("workspace scan");
    assert!(
        report.files_scanned > 50,
        "scan looks truncated: only {} files found under {}",
        report.files_scanned,
        root.display()
    );
    assert!(
        report.findings.is_empty(),
        "fedat-lint found determinism-contract violations:\n{}\nFix the code, or — for an \
         audited exception — add `// lint: allow(RX, reason = \"..\")` above the line \
         (see docs/LINTS.md).",
        report.render_text()
    );
}

#[test]
fn every_suppression_in_the_workspace_carries_a_reason() {
    let root = fedat_lint::workspace_root();
    let report = fedat_lint::lint_workspace(&root).expect("workspace scan");
    for s in &report.suppressed {
        assert!(
            !s.reason.trim().is_empty(),
            "{}:{} suppresses {} with an empty reason",
            s.file,
            s.line,
            s.rule
        );
    }
}
