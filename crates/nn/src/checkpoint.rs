//! Weight checkpointing: save/load flat weight vectors.
//!
//! The format is deliberately trivial — a magic tag, a version byte, the
//! element count, then little-endian `f32`s — so checkpoints stay readable
//! from any language and diffable by size.

use crate::model::Model;
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"FEDATCKP";
const VERSION: u8 = 1;

/// Serializes a weight vector to a writer.
pub fn write_weights<W: Write>(mut w: W, weights: &[f32]) -> std::io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&[VERSION])?;
    w.write_all(&(weights.len() as u64).to_le_bytes())?;
    for v in weights {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

/// Deserializes a weight vector from a reader.
///
/// Returns `InvalidData` on bad magic, version, or truncation.
pub fn read_weights<R: Read>(mut r: R) -> std::io::Result<Vec<f32>> {
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad("not a FedAT checkpoint"));
    }
    let mut ver = [0u8; 1];
    r.read_exact(&mut ver)?;
    if ver[0] != VERSION {
        return Err(bad("unsupported checkpoint version"));
    }
    let mut len_bytes = [0u8; 8];
    r.read_exact(&mut len_bytes)?;
    let n = u64::from_le_bytes(len_bytes) as usize;
    let mut buf = vec![0u8; n * 4];
    r.read_exact(&mut buf)?;
    // Reject trailing garbage.
    let mut probe = [0u8; 1];
    if r.read(&mut probe)? != 0 {
        return Err(bad("trailing bytes after checkpoint payload"));
    }
    Ok(buf
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect())
}

/// Saves a model's weights to `path`.
pub fn save(model: &dyn Model, path: &Path) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    write_weights(std::io::BufWriter::new(file), &model.weights())
}

/// Loads weights from `path` into `model`.
///
/// # Errors
/// I/O and format errors; additionally `InvalidData` if the checkpoint's
/// parameter count mismatches the model.
pub fn load(model: &mut dyn Model, path: &Path) -> std::io::Result<()> {
    let file = std::fs::File::open(path)?;
    let weights = read_weights(std::io::BufReader::new(file))?;
    if weights.len() != model.num_params() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!(
                "checkpoint holds {} weights but the model has {}",
                weights.len(),
                model.num_params()
            ),
        ));
    }
    model.set_weights(&weights);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::ModelSpec;

    #[test]
    fn roundtrip_through_memory() {
        let w: Vec<f32> = (0..100).map(|i| (i as f32 * 0.37).sin()).collect();
        let mut buf = Vec::new();
        write_weights(&mut buf, &w).unwrap();
        assert_eq!(read_weights(buf.as_slice()).unwrap(), w);
    }

    #[test]
    fn roundtrip_through_file_restores_model() {
        let spec = ModelSpec::Mlp {
            input: 6,
            hidden: vec![5],
            classes: 3,
        };
        let a = spec.build(7);
        let dir = std::env::temp_dir().join("fedat_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.ckpt");
        save(a.as_ref(), &path).unwrap();
        let mut b = spec.build(8);
        assert_ne!(b.weights(), a.weights());
        load(b.as_mut(), &path).unwrap();
        assert_eq!(b.weights(), a.weights());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_magic_rejected() {
        let err = read_weights(&b"NOTACKPT\x01"[..]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncation_rejected() {
        let w = vec![1.0f32; 10];
        let mut buf = Vec::new();
        write_weights(&mut buf, &w).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_weights(buf.as_slice()).is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        let w = vec![1.0f32; 4];
        let mut buf = Vec::new();
        write_weights(&mut buf, &w).unwrap();
        buf.push(0xFF);
        assert!(read_weights(buf.as_slice()).is_err());
    }

    #[test]
    fn size_mismatch_rejected_on_load() {
        let small = ModelSpec::Logistic {
            input: 3,
            classes: 2,
        }
        .build(1);
        let dir = std::env::temp_dir().join("fedat_ckpt_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.ckpt");
        save(small.as_ref(), &path).unwrap();
        let mut big = ModelSpec::Logistic {
            input: 30,
            classes: 2,
        }
        .build(1);
        assert!(load(big.as_mut(), &path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
