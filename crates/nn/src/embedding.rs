//! A mean-pooled embedding layer for token-id inputs.
//!
//! Maps `[batch, seq_len]` token ids (stored as `f32`, like
//! [`crate::lstm::LstmLm`]) to `[batch, embed_dim]` by averaging the token
//! embeddings — the classic bag-of-embeddings encoder for lightweight text
//! classification, composable with [`crate::layers::Dense`] inside a
//! [`crate::model::Sequential`].

use crate::layer::{Layer, Mode};
use crate::param::Param;
use fedat_tensor::Tensor;
use rand::Rng;

/// Mean-pooled embedding: `y = mean_t E[x_t]`.
pub struct Embedding {
    table: Param,
    vocab: usize,
    dim: usize,
    cached_tokens: Option<Vec<Vec<usize>>>,
}

impl Embedding {
    /// New embedding table of `vocab × dim`, N(0, 0.1) initialized.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, vocab: usize, dim: usize) -> Self {
        Embedding {
            table: Param::new(Tensor::randn(rng, &[vocab, dim], 0.0, 0.1)),
            vocab,
            dim,
            cached_tokens: None,
        }
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }
}

impl Layer for Embedding {
    fn forward(&mut self, input: Tensor, mode: Mode) -> Tensor {
        let (n, t) = input.shape().as_matrix();
        assert!(t > 0, "embedding needs at least one token per row");
        let mut out = Tensor::zeros(&[n, self.dim]);
        let mut tokens: Vec<Vec<usize>> = Vec::with_capacity(n);
        for r in 0..n {
            let ids: Vec<usize> = input
                .row(r)
                .iter()
                .map(|&v| {
                    let id = v as usize;
                    assert!(
                        v >= 0.0 && id < self.vocab,
                        "token id {v} out of range for vocab {}",
                        self.vocab
                    );
                    id
                })
                .collect();
            let row = out.row_mut(r);
            for &id in &ids {
                let emb = &self.table.value.data()[id * self.dim..(id + 1) * self.dim];
                for (o, &e) in row.iter_mut().zip(emb.iter()) {
                    *o += e / t as f32;
                }
            }
            tokens.push(ids);
        }
        if mode == Mode::Train {
            self.cached_tokens = Some(tokens);
        }
        out
    }

    fn backward(&mut self, grad_out: Tensor) -> Tensor {
        let tokens = self
            .cached_tokens
            .take()
            .expect("Embedding::backward without Train forward");
        let n = tokens.len();
        let t = tokens[0].len();
        for (r, ids) in tokens.iter().enumerate() {
            let g = grad_out.row(r);
            for &id in ids {
                let emb_grad = &mut self.table.grad.data_mut()[id * self.dim..(id + 1) * self.dim];
                for (eg, &gv) in emb_grad.iter_mut().zip(g.iter()) {
                    *eg += gv / t as f32;
                }
            }
        }
        // Token ids are not differentiable; return a zero gradient of the
        // input shape to keep the pipeline contract.
        Tensor::zeros(&[n, t])
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.table]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.table]
    }

    fn name(&self) -> &'static str {
        "embedding"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Dense;
    use crate::model::{Model, Sequential};
    use crate::optim::Adam;
    use fedat_tensor::rng::rng_for;

    #[test]
    fn forward_is_mean_of_token_embeddings() {
        let mut rng = rng_for(1, 1);
        let mut e = Embedding::new(&mut rng, 5, 3);
        // Row of two identical tokens: output = that token's embedding.
        let x = Tensor::from_vec(vec![2.0, 2.0], &[1, 2]);
        let y = e.forward(x, Mode::Eval);
        let emb: Vec<f32> = e.table.value.data()[6..9].to_vec();
        for (a, b) in y.data().iter().zip(emb.iter()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn gradcheck_on_table() {
        let mut rng = rng_for(2, 1);
        let mut e = Embedding::new(&mut rng, 4, 3);
        let x = Tensor::from_vec(vec![0.0, 1.0, 3.0, 3.0], &[2, 2]);
        // Loss = sum of outputs.
        let y = e.forward(x.clone(), Mode::Train);
        e.backward(Tensor::ones(y.dims()));
        let eps = 1e-3f32;
        for wi in [0usize, 4, 9, 11] {
            let orig = e.table.value.data()[wi];
            e.table.value.data_mut()[wi] = orig + eps;
            let lp = e.forward(x.clone(), Mode::Eval).sum();
            e.table.value.data_mut()[wi] = orig - eps;
            let lm = e.forward(x.clone(), Mode::Eval).sum();
            e.table.value.data_mut()[wi] = orig;
            let num = (lp - lm) / (2.0 * eps);
            let ana = e.table.grad.data()[wi];
            assert!((num - ana).abs() < 1e-2, "table[{wi}]: {num} vs {ana}");
        }
    }

    #[test]
    fn bag_of_embeddings_classifier_learns() {
        // Sequences dominated by token 0 are class 0; by token 5, class 1.
        let mut rng = rng_for(3, 1);
        let mut model = Sequential::new(vec![
            Box::new(Embedding::new(&mut rng, 6, 8)),
            Box::new(Dense::new(&mut rng, 8, 2)),
        ]);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        use rand::RngExt;
        for i in 0..40 {
            let class = i % 2;
            for _ in 0..4 {
                let dominant = if class == 0 { 0.0 } else { 5.0 };
                if rng.random::<f32>() < 0.8 {
                    xs.push(dominant);
                } else {
                    xs.push(rng.random_range(1..5) as f32);
                }
            }
            ys.push(class as u32);
        }
        let x = Tensor::from_vec(xs, &[40, 4]);
        let mut opt = Adam::new(0.05);
        let before = model.evaluate(&x, &ys);
        for _ in 0..60 {
            model.train_batch(&x, &ys, &mut opt, None);
        }
        let after = model.evaluate(&x, &ys);
        assert!(
            after.accuracy > 0.9,
            "accuracy {} too low (was {})",
            after.accuracy,
            before.accuracy
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_vocab_token_rejected() {
        let mut rng = rng_for(4, 1);
        let mut e = Embedding::new(&mut rng, 3, 2);
        let x = Tensor::from_vec(vec![7.0], &[1, 1]);
        let _ = e.forward(x, Mode::Eval);
    }
}
