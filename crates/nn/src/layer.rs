//! The layer abstraction used by [`crate::model::Sequential`].

use crate::param::Param;
use fedat_tensor::Tensor;

/// Whether a pass is training (dropout active, batch-norm uses batch stats)
/// or evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Training pass: stochastic layers are active and caches are kept for
    /// the subsequent backward pass.
    Train,
    /// Inference pass: deterministic, no caches required.
    Eval,
}

/// A differentiable layer.
///
/// Layers own their parameters and any caches needed to run `backward`
/// immediately after the matching `forward`. The contract is strictly
/// `forward(Train)` → `backward` with no interleaving; `Sequential`
/// enforces this ordering.
pub trait Layer: Send {
    /// Computes the layer output. `Train` mode must cache whatever the
    /// backward pass needs.
    fn forward(&mut self, input: Tensor, mode: Mode) -> Tensor;

    /// Computes the layer output from a *borrowed* input — the entry point
    /// [`crate::model::Sequential`] uses for the first layer, so the
    /// caller's batch tensor is never cloned per step. The default
    /// materializes a scratch-arena copy; layers that can read the input
    /// in place (Dense, Conv2d) override it to skip even that.
    fn forward_ref(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        self.forward(input.clone_scratch(), mode)
    }

    /// Propagates the loss gradient, accumulating parameter gradients and
    /// returning the gradient with respect to the layer input.
    fn backward(&mut self, grad_out: Tensor) -> Tensor;

    /// Immutable access to the parameters, in a fixed deterministic order.
    fn params(&self) -> Vec<&Param>;

    /// Mutable access to the parameters, in the same order as [`Layer::params`].
    fn params_mut(&mut self) -> Vec<&mut Param>;

    /// Short human-readable layer name for diagnostics.
    fn name(&self) -> &'static str;

    /// Clears accumulated gradients.
    fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    /// Total scalar parameter count.
    fn num_params(&self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }
}
