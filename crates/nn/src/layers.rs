//! Concrete layers: Dense, activations, Dropout, BatchNorm1d, Conv2d,
//! MaxPool2d.
//!
//! All layers exchange rank-2 tensors `[batch, features]`; the convolutional
//! layers carry their own spatial geometry and (un)flatten internally, which
//! keeps [`crate::model::Sequential`] a simple pipeline of matrices.

use crate::layer::{Layer, Mode};
use crate::param::Param;
use fedat_tensor::conv::{
    conv2d_backward, conv2d_forward, maxpool2d_backward, maxpool2d_forward, Conv2dSpec,
};
use fedat_tensor::rng::rng_for;
use fedat_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, RngExt};

// ----------------------------------------------------------------------
// Dense
// ----------------------------------------------------------------------

/// Fully-connected layer: `y = x·W + b` with `W: [in, out]`.
pub struct Dense {
    w: Param,
    b: Param,
    cached_input: Option<Tensor>,
}

impl Dense {
    /// Kaiming-initialized dense layer.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, in_dim: usize, out_dim: usize) -> Self {
        Dense {
            w: Param::new(Tensor::kaiming(rng, &[in_dim, out_dim], in_dim)),
            b: Param::new(Tensor::zeros(&[out_dim])),
            cached_input: None,
        }
    }

    /// Input feature count.
    pub fn in_dim(&self) -> usize {
        self.w.value.dims()[0]
    }

    /// Output feature count.
    pub fn out_dim(&self) -> usize {
        self.w.value.dims()[1]
    }
}

impl Layer for Dense {
    fn forward(&mut self, input: Tensor, mode: Mode) -> Tensor {
        let mut out = input.matmul(&self.w.value);
        out.add_row_bias(&self.b.value);
        if mode == Mode::Train {
            self.cached_input = Some(input);
        } else {
            input.recycle();
        }
        out
    }

    fn forward_ref(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        // Reads the batch in place: no input copy in Eval, and in Train the
        // backward cache is a scratch-arena copy instead of a fresh clone.
        let mut out = input.matmul(&self.w.value);
        out.add_row_bias(&self.b.value);
        if mode == Mode::Train {
            self.cached_input = Some(input.clone_scratch());
        }
        out
    }

    fn backward(&mut self, grad_out: Tensor) -> Tensor {
        let x = self
            .cached_input
            .take()
            .expect("Dense::backward called without a Train forward");
        // dW += xᵀ · dY
        let dw = x.matmul_tn(&grad_out);
        x.recycle();
        self.w.grad.axpy_inplace(1.0, &dw);
        dw.recycle();
        // db += column sums of dY
        let db = grad_out.sum_rows();
        self.b.grad.axpy_inplace(1.0, &db);
        db.recycle();
        // dX = dY · Wᵀ
        let dx = grad_out.matmul_nt(&self.w.value);
        grad_out.recycle();
        dx
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.w, &self.b]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w, &mut self.b]
    }

    fn name(&self) -> &'static str {
        "dense"
    }
}

// ----------------------------------------------------------------------
// Activations
// ----------------------------------------------------------------------

/// Rectified linear unit.
#[derive(Default)]
pub struct Relu {
    mask: Option<Vec<bool>>,
    /// Retired mask buffer, reused by the next Train forward so steady-state
    /// training allocates nothing.
    spare_mask: Vec<bool>,
}

impl Relu {
    /// New ReLU layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Relu {
    fn forward(&mut self, mut input: Tensor, mode: Mode) -> Tensor {
        if mode == Mode::Train {
            let mut mask = std::mem::take(&mut self.spare_mask);
            mask.clear();
            mask.extend(input.data().iter().map(|&x| x > 0.0));
            self.mask = Some(mask);
        }
        fedat_tensor::simd::relu(input.data_mut());
        input
    }

    fn backward(&mut self, mut grad_out: Tensor) -> Tensor {
        let mask = self
            .mask
            .take()
            .expect("Relu::backward without Train forward");
        for (g, keep) in grad_out.data_mut().iter_mut().zip(mask.iter()) {
            if !keep {
                *g = 0.0;
            }
        }
        self.spare_mask = mask;
        grad_out
    }

    fn params(&self) -> Vec<&Param> {
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    fn name(&self) -> &'static str {
        "relu"
    }
}

/// Hyperbolic tangent.
#[derive(Default)]
pub struct Tanh {
    cached_output: Option<Tensor>,
}

impl Tanh {
    /// New tanh layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Tanh {
    fn forward(&mut self, mut input: Tensor, mode: Mode) -> Tensor {
        input.map_inplace(f32::tanh);
        if mode == Mode::Train {
            self.cached_output = Some(input.clone_scratch());
        }
        input
    }

    fn backward(&mut self, mut grad_out: Tensor) -> Tensor {
        let y = self
            .cached_output
            .take()
            .expect("Tanh::backward without Train forward");
        fedat_tensor::simd::tanh_grad(grad_out.data_mut(), y.data());
        y.recycle();
        grad_out
    }

    fn params(&self) -> Vec<&Param> {
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    fn name(&self) -> &'static str {
        "tanh"
    }
}

/// Logistic sigmoid.
#[derive(Default)]
pub struct Sigmoid {
    cached_output: Option<Tensor>,
}

impl Sigmoid {
    /// New sigmoid layer.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Numerically-stable scalar sigmoid.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        let e = (-x).exp();
        1.0 / (1.0 + e)
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

impl Layer for Sigmoid {
    fn forward(&mut self, mut input: Tensor, mode: Mode) -> Tensor {
        input.map_inplace(sigmoid);
        if mode == Mode::Train {
            self.cached_output = Some(input.clone_scratch());
        }
        input
    }

    fn backward(&mut self, mut grad_out: Tensor) -> Tensor {
        let y = self
            .cached_output
            .take()
            .expect("Sigmoid::backward without Train forward");
        fedat_tensor::simd::sigmoid_grad(grad_out.data_mut(), y.data());
        y.recycle();
        grad_out
    }

    fn params(&self) -> Vec<&Param> {
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    fn name(&self) -> &'static str {
        "sigmoid"
    }
}

// ----------------------------------------------------------------------
// Dropout
// ----------------------------------------------------------------------

/// Inverted dropout: at train time each activation is zeroed with
/// probability `p` and survivors are scaled by `1/(1-p)`; evaluation is the
/// identity.
pub struct Dropout {
    p: f32,
    rng: StdRng,
    mask: Option<Vec<f32>>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p` and its own
    /// deterministic RNG stream derived from `seed`.
    ///
    /// # Panics
    /// Panics unless `0 ≤ p < 1`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "dropout probability {p} out of range"
        );
        Dropout {
            p,
            rng: rng_for(seed, fedat_tensor::rng::tags::DROPOUT),
            mask: None,
        }
    }
}

impl Layer for Dropout {
    fn forward(&mut self, mut input: Tensor, mode: Mode) -> Tensor {
        if mode == Mode::Eval || self.p == 0.0 {
            return input;
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mut mask = fedat_tensor::scratch::take_empty(input.len());
        for _ in 0..input.len() {
            mask.push(if self.rng.random::<f32>() < keep {
                scale
            } else {
                0.0
            });
        }
        fedat_tensor::simd::mul_assign(input.data_mut(), &mask);
        self.mask = Some(mask);
        input
    }

    fn backward(&mut self, mut grad_out: Tensor) -> Tensor {
        if let Some(mask) = self.mask.take() {
            fedat_tensor::simd::mul_assign(grad_out.data_mut(), &mask);
            fedat_tensor::scratch::recycle(mask);
        }
        grad_out
    }

    fn params(&self) -> Vec<&Param> {
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    fn name(&self) -> &'static str {
        "dropout"
    }
}

// ----------------------------------------------------------------------
// BatchNorm1d
// ----------------------------------------------------------------------

/// Batch normalization over the feature dimension of `[batch, features]`.
///
/// Running statistics (not trainable, not part of the aggregated weight
/// vector) follow the usual exponential moving average with `momentum`.
pub struct BatchNorm1d {
    gamma: Param,
    beta: Param,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    momentum: f32,
    eps: f32,
    cache: Option<BnCache>,
}

struct BnCache {
    x_hat: Tensor,
    inv_std: Vec<f32>,
}

impl BatchNorm1d {
    /// New batch-norm layer over `features` columns.
    pub fn new(features: usize) -> Self {
        BatchNorm1d {
            gamma: Param::new(Tensor::ones(&[features])),
            beta: Param::new(Tensor::zeros(&[features])),
            running_mean: vec![0.0; features],
            running_var: vec![1.0; features],
            momentum: 0.1,
            eps: 1e-5,
            cache: None,
        }
    }
}

impl Layer for BatchNorm1d {
    fn forward(&mut self, input: Tensor, mode: Mode) -> Tensor {
        let (n, f) = input.shape().as_matrix();
        assert_eq!(f, self.gamma.len(), "batchnorm feature mismatch");
        let mut out = input.clone_scratch();
        match mode {
            Mode::Train => {
                assert!(n > 1, "batch norm needs batch size > 1 in training");
                let mut mean = vec![0.0f32; f];
                let mut var = vec![0.0f32; f];
                for r in 0..n {
                    for (m, &v) in mean.iter_mut().zip(input.row(r)) {
                        *m += v;
                    }
                }
                for m in mean.iter_mut() {
                    *m /= n as f32;
                }
                for r in 0..n {
                    for (j, &v) in input.row(r).iter().enumerate() {
                        let d = v - mean[j];
                        var[j] += d * d;
                    }
                }
                for v in var.iter_mut() {
                    *v /= n as f32;
                }
                let inv_std: Vec<f32> = var.iter().map(|&v| 1.0 / (v + self.eps).sqrt()).collect();
                for r in 0..n {
                    let row = out.row_mut(r);
                    for (j, v) in row.iter_mut().enumerate() {
                        *v = (*v - mean[j]) * inv_std[j];
                    }
                }
                // Running stats update.
                for j in 0..f {
                    self.running_mean[j] =
                        (1.0 - self.momentum) * self.running_mean[j] + self.momentum * mean[j];
                    self.running_var[j] =
                        (1.0 - self.momentum) * self.running_var[j] + self.momentum * var[j];
                }
                self.cache = Some(BnCache {
                    x_hat: out.clone_scratch(),
                    inv_std,
                });
            }
            Mode::Eval => {
                for r in 0..n {
                    let row = out.row_mut(r);
                    for (j, v) in row.iter_mut().enumerate() {
                        *v = (*v - self.running_mean[j]) / (self.running_var[j] + self.eps).sqrt();
                    }
                }
            }
        }
        // Affine: y = γ·x̂ + β
        for r in 0..n {
            let row = out.row_mut(r);
            for (j, v) in row.iter_mut().enumerate() {
                *v = self.gamma.value.data()[j] * *v + self.beta.value.data()[j];
            }
        }
        input.recycle();
        out
    }

    fn backward(&mut self, grad_out: Tensor) -> Tensor {
        let BnCache { x_hat, inv_std } = self
            .cache
            .take()
            .expect("BatchNorm1d::backward without Train forward");
        let (n, f) = grad_out.shape().as_matrix();
        // dγ, dβ
        for r in 0..n {
            for (j, (&g, &xh)) in grad_out.row(r).iter().zip(x_hat.row(r)).enumerate() {
                self.gamma.grad.data_mut()[j] += g * xh;
                self.beta.grad.data_mut()[j] += g;
            }
        }
        // Standard batch-norm input gradient:
        // dx̂ = dy·γ;  dx = (1/n)·inv_std·(n·dx̂ − Σdx̂ − x̂·Σ(dx̂·x̂))
        let mut sum_dxhat = vec![0.0f32; f];
        let mut sum_dxhat_xhat = vec![0.0f32; f];
        let gamma = self.gamma.value.data();
        for r in 0..n {
            for (j, (&g, &xh)) in grad_out.row(r).iter().zip(x_hat.row(r)).enumerate() {
                let dxh = g * gamma[j];
                sum_dxhat[j] += dxh;
                sum_dxhat_xhat[j] += dxh * xh;
            }
        }
        let mut dx = Tensor::zeros_scratch(grad_out.dims());
        for r in 0..n {
            let out_row = dx.row_mut(r);
            for (j, v) in out_row.iter_mut().enumerate() {
                let dxh = grad_out.row(r)[j] * gamma[j];
                let xh = x_hat.row(r)[j];
                *v = inv_std[j] / n as f32
                    * (n as f32 * dxh - sum_dxhat[j] - xh * sum_dxhat_xhat[j]);
            }
        }
        x_hat.recycle();
        grad_out.recycle();
        dx
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.gamma, &self.beta]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gamma, &mut self.beta]
    }

    fn name(&self) -> &'static str {
        "batchnorm1d"
    }
}

// ----------------------------------------------------------------------
// Conv2d + MaxPool2d (flat 2-D interface)
// ----------------------------------------------------------------------

/// 2-D convolution over inputs given as flattened rows
/// `[batch, in_channels·h·w]`; emits `[batch, out_channels·oh·ow]`.
pub struct Conv2d {
    spec: Conv2dSpec,
    h: usize,
    w: usize,
    weight: Param,
    bias: Param,
    cache: Option<ConvCache>,
}

struct ConvCache {
    cols: Vec<Vec<f32>>,
    batch: usize,
}

impl Conv2d {
    /// New convolution layer for `h × w` inputs.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, spec: Conv2dSpec, h: usize, w: usize) -> Self {
        let fan_in = spec.in_channels * spec.kernel * spec.kernel;
        Conv2d {
            spec,
            h,
            w,
            weight: Param::new(Tensor::kaiming(rng, &[spec.out_channels, fan_in], fan_in)),
            bias: Param::new(Tensor::zeros(&[spec.out_channels])),
            cache: None,
        }
    }

    /// Flattened output feature count (`out_channels · oh · ow`).
    pub fn out_features(&self) -> usize {
        let (oh, ow) = self.spec.out_hw(self.h, self.w);
        self.spec.out_channels * oh * ow
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: Tensor, mode: Mode) -> Tensor {
        let out = self.forward_ref(&input, mode);
        input.recycle();
        out
    }

    fn forward_ref(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        // The im2col kernel reads the batch in place — no input copy in
        // either mode; Train retains only the column matrices.
        let (n, feat) = input.shape().as_matrix();
        assert_eq!(
            feat,
            self.spec.in_channels * self.h * self.w,
            "conv2d input features mismatch"
        );
        let (out, cols) = conv2d_forward(
            input,
            &self.weight.value,
            &self.bias.value,
            self.h,
            self.w,
            &self.spec,
        );
        if mode == Mode::Train {
            self.cache = Some(ConvCache { cols, batch: n });
        } else {
            for c in cols {
                fedat_tensor::scratch::recycle(c);
            }
        }
        let of = self.out_features();
        out.reshape(&[n, of])
    }

    fn backward(&mut self, grad_out: Tensor) -> Tensor {
        let ConvCache { cols, batch } = self
            .cache
            .take()
            .expect("Conv2d::backward without Train forward");
        let (oh, ow) = self.spec.out_hw(self.h, self.w);
        let dy = grad_out.reshape(&[batch, self.spec.out_channels, oh, ow]);
        let (dx, dw, db) =
            conv2d_backward(&dy, &self.weight.value, cols, self.h, self.w, &self.spec);
        dy.recycle();
        self.weight.grad.axpy_inplace(1.0, &dw);
        self.bias.grad.axpy_inplace(1.0, &db);
        dw.recycle();
        db.recycle();
        dx.reshape(&[batch, self.spec.in_channels * self.h * self.w])
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn name(&self) -> &'static str {
        "conv2d"
    }
}

/// Non-overlapping `k × k` max pooling over flat `[batch, c·h·w]` rows.
pub struct MaxPool2d {
    c: usize,
    h: usize,
    w: usize,
    k: usize,
    cache: Option<(Vec<u32>, usize)>,
}

impl MaxPool2d {
    /// New pooling layer for `c`-channel `h × w` inputs.
    pub fn new(c: usize, h: usize, w: usize, k: usize) -> Self {
        assert!(
            h.is_multiple_of(k) && w.is_multiple_of(k),
            "pooling window must tile the input"
        );
        MaxPool2d {
            c,
            h,
            w,
            k,
            cache: None,
        }
    }

    /// Flattened output feature count.
    pub fn out_features(&self) -> usize {
        self.c * (self.h / self.k) * (self.w / self.k)
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, input: Tensor, mode: Mode) -> Tensor {
        let (n, feat) = input.shape().as_matrix();
        assert_eq!(
            feat,
            self.c * self.h * self.w,
            "maxpool input features mismatch"
        );
        let x = input.reshape(&[n, self.c, self.h, self.w]);
        let (out, argmax) = maxpool2d_forward(&x, self.k);
        x.recycle();
        if mode == Mode::Train {
            self.cache = Some((argmax, n * feat));
        }
        out.reshape(&[n, self.out_features()])
    }

    fn backward(&mut self, grad_out: Tensor) -> Tensor {
        let (argmax, input_len) = self
            .cache
            .take()
            .expect("MaxPool2d::backward without Train forward");
        let n = grad_out.shape().as_matrix().0;
        let (oh, ow) = (self.h / self.k, self.w / self.k);
        let dy = grad_out.reshape(&[n, self.c, oh, ow]);
        let dx = maxpool2d_backward(&dy, &argmax, input_len);
        dy.recycle();
        dx.reshape(&[n, self.c * self.h * self.w])
    }

    fn params(&self) -> Vec<&Param> {
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    fn name(&self) -> &'static str {
        "maxpool2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedat_tensor::rng::rng_for;

    #[test]
    fn dense_forward_matches_manual() {
        let mut rng = rng_for(1, 1);
        let mut d = Dense::new(&mut rng, 3, 2);
        // Overwrite with known weights.
        d.params_mut()[0].value = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0], &[3, 2]);
        d.params_mut()[1].value = Tensor::from_vec(vec![0.5, -0.5], &[2]);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]);
        let y = d.forward(x, Mode::Eval);
        // y0 = 1·1 + 2·0 + 3·1 + 0.5 = 4.5 ; y1 = 1·0 + 2·1 + 3·1 − 0.5 = 4.5
        assert_eq!(y.data(), &[4.5, 4.5]);
    }

    #[test]
    fn dense_gradcheck() {
        let mut rng = rng_for(2, 1);
        let mut d = Dense::new(&mut rng, 4, 3);
        let x = Tensor::randn(&mut rng, &[5, 4], 0.0, 1.0);
        // Loss = sum(dense(x)) → dY = ones.
        let y = d.forward(x.clone(), Mode::Train);
        let dx = d.backward(Tensor::ones(y.dims()));
        let eps = 1e-2f32;
        // Check dW numerically at a few positions.
        for wi in [0usize, 5, 11] {
            let orig = d.w.value.data()[wi];
            d.w.value.data_mut()[wi] = orig + eps;
            let lp = d.forward(x.clone(), Mode::Eval).sum();
            d.w.value.data_mut()[wi] = orig - eps;
            let lm = d.forward(x.clone(), Mode::Eval).sum();
            d.w.value.data_mut()[wi] = orig;
            let num = (lp - lm) / (2.0 * eps);
            let ana = d.w.grad.data()[wi];
            assert!(
                (num - ana).abs() < 2e-2,
                "dW[{wi}] numeric {num} vs analytic {ana}"
            );
        }
        // Check dx numerically at one position.
        let mut x2 = x.clone();
        let xi = 7;
        let orig = x2.data()[xi];
        x2.data_mut()[xi] = orig + eps;
        let lp = d.forward(x2.clone(), Mode::Eval).sum();
        x2.data_mut()[xi] = orig - eps;
        let lm = d.forward(x2.clone(), Mode::Eval).sum();
        let num = (lp - lm) / (2.0 * eps);
        assert!((num - dx.data()[xi]).abs() < 2e-2);
    }

    #[test]
    fn relu_masks_gradient() {
        let mut r = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 2.0, -3.0, 4.0], &[1, 4]);
        let y = r.forward(x, Mode::Train);
        assert_eq!(y.data(), &[0.0, 2.0, 0.0, 4.0]);
        let g = r.backward(Tensor::ones(&[1, 4]));
        assert_eq!(g.data(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn tanh_gradient_is_one_minus_y_squared() {
        let mut t = Tanh::new();
        let x = Tensor::from_vec(vec![0.0, 1.0], &[1, 2]);
        let y = t.forward(x, Mode::Train);
        let g = t.backward(Tensor::ones(&[1, 2]));
        assert!((g.data()[0] - 1.0).abs() < 1e-6);
        let expected = 1.0 - y.data()[1] * y.data()[1];
        assert!((g.data()[1] - expected).abs() < 1e-6);
    }

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        assert!((sigmoid(100.0) - 1.0).abs() < 1e-6);
        assert!(sigmoid(-100.0) >= 0.0);
        assert!(sigmoid(-100.0) < 1e-6);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
    }

    #[test]
    fn dropout_eval_is_identity_and_train_preserves_mean() {
        let mut d = Dropout::new(0.5, 77);
        let x = Tensor::ones(&[1, 10_000]);
        let y_eval = d.forward(x.clone(), Mode::Eval);
        assert_eq!(y_eval.data(), x.data());
        let y = d.forward(x, Mode::Train);
        let mean = y.mean();
        assert!(
            (mean - 1.0).abs() < 0.1,
            "inverted dropout mean {mean} should be ≈1"
        );
        let zeros = y.data().iter().filter(|&&v| v == 0.0).count();
        assert!((zeros as f32 / 10_000.0 - 0.5).abs() < 0.05);
    }

    #[test]
    fn dropout_backward_uses_same_mask() {
        let mut d = Dropout::new(0.3, 42);
        let x = Tensor::ones(&[1, 100]);
        let y = d.forward(x, Mode::Train);
        let g = d.backward(Tensor::ones(&[1, 100]));
        for (yv, gv) in y.data().iter().zip(g.data().iter()) {
            assert_eq!(yv, gv, "gradient mask must match forward mask");
        }
    }

    #[test]
    fn batchnorm_normalizes_batch() {
        let mut bn = BatchNorm1d::new(2);
        let x = Tensor::from_vec(vec![1.0, 10.0, 3.0, 20.0, 5.0, 30.0, 7.0, 40.0], &[4, 2]);
        let y = bn.forward(x, Mode::Train);
        // Each column should have ≈0 mean and ≈1 variance after normalization.
        for j in 0..2 {
            let col: Vec<f32> = (0..4).map(|r| y.row(r)[j]).collect();
            let mean: f32 = col.iter().sum::<f32>() / 4.0;
            let var: f32 = col.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5);
            assert!((var - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn batchnorm_gradcheck() {
        let mut rng = rng_for(3, 1);
        let mut bn = BatchNorm1d::new(3);
        let x = Tensor::randn(&mut rng, &[6, 3], 1.0, 2.0);
        // Weighted-sum loss to give a non-uniform upstream gradient.
        let wvec: Vec<f32> = (0..18).map(|i| 0.1 * (i as f32 - 9.0)).collect();
        let loss = |bn: &mut BatchNorm1d, x: &Tensor| -> f32 {
            // Fresh statistics each call: clone to avoid running-stat drift.
            let mut b2 = BatchNorm1d::new(3);
            b2.gamma.value = bn.gamma.value.clone();
            b2.beta.value = bn.beta.value.clone();
            let y = b2.forward(x.clone(), Mode::Train);
            y.data().iter().zip(wvec.iter()).map(|(a, b)| a * b).sum()
        };
        let y = bn.forward(x.clone(), Mode::Train);
        let upstream = Tensor::from_vec(wvec.clone(), &[6, 3]);
        let dx = bn.backward(upstream);
        let _ = y;
        let eps = 1e-2f32;
        for xi in [0usize, 7, 17] {
            let mut xp = x.clone();
            xp.data_mut()[xi] += eps;
            let lp = loss(&mut bn, &xp);
            let mut xm = x.clone();
            xm.data_mut()[xi] -= eps;
            let lm = loss(&mut bn, &xm);
            let num = (lp - lm) / (2.0 * eps);
            let ana = dx.data()[xi];
            assert!(
                (num - ana).abs() < 3e-2,
                "dx[{xi}] numeric {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn conv_layer_shapes_flow() {
        let mut rng = rng_for(4, 1);
        let spec = Conv2dSpec {
            in_channels: 3,
            out_channels: 8,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let mut conv = Conv2d::new(&mut rng, spec, 8, 8);
        let x = Tensor::randn(&mut rng, &[2, 3 * 64], 0.0, 1.0);
        let y = conv.forward(x, Mode::Train);
        assert_eq!(y.dims(), &[2, 8 * 64]);
        let dx = conv.backward(Tensor::ones(y.dims()));
        assert_eq!(dx.dims(), &[2, 3 * 64]);
        assert!(conv.weight.grad.norm() > 0.0);
    }

    #[test]
    fn maxpool_layer_halves_spatial_dims() {
        let mut rng = rng_for(5, 1);
        let mut pool = MaxPool2d::new(4, 8, 8, 2);
        let x = Tensor::randn(&mut rng, &[3, 4 * 64], 0.0, 1.0);
        let y = pool.forward(x, Mode::Train);
        assert_eq!(y.dims(), &[3, 4 * 16]);
        let dx = pool.backward(Tensor::ones(y.dims()));
        assert_eq!(dx.dims(), &[3, 4 * 64]);
        // Pool routes each gradient to exactly one input: total mass conserved.
        assert_eq!(dx.sum(), (3 * 4 * 16) as f32);
    }
}
