//! # fedat-nn — neural-network layers, losses, and optimizers
//!
//! The model substrate of the FedAT reproduction (the paper uses
//! TensorFlow). Everything is implemented from scratch on top of
//! [`fedat_tensor`] with *manual, gradient-checked backprop* — no autograd
//! tape — which keeps the hot training loop allocation-light and fully
//! deterministic.
//!
//! The federated-learning crates interact with models exclusively through
//! the [`model::Model`] trait:
//!
//! * [`model::Sequential`] — feed-forward stacks (logistic regression, MLPs,
//!   and the paper's CNNs) built from [`layer::Layer`] implementations,
//! * [`lstm::LstmLm`] — an embedding + LSTM + projection language model used
//!   for the Reddit experiment (Fig. 8), trained with truncated BPTT,
//! * [`models`] — ready-made builders matching the architectures in §6 of
//!   the paper,
//! * [`optim`] — SGD (+momentum) and Adam, plus the proximal-term gradient
//!   `λ(w − w_global)` from Eq. (3),
//! * [`loss`] — softmax cross-entropy (mean-reduced) and MSE.
//!
//! Weights flatten to a single `Vec<f32>` in a deterministic layer order
//! ([`model::Model::weights`] / [`model::Model::set_weights`]), which is the
//! unit the FedAT server aggregates and the polyline codec compresses.

pub mod checkpoint;
pub mod embedding;
pub mod layer;
pub mod layers;
pub mod loss;
pub mod lstm;
pub mod metrics;
pub mod model;
pub mod models;
pub mod optim;
pub mod param;

pub use layer::{Layer, Mode};
pub use model::{Model, Sequential};
pub use param::Param;
