//! Loss functions. Each returns the (mean-reduced) loss *and* the gradient
//! with respect to the model output, ready to feed into `backward`.

use fedat_tensor::Tensor;

/// Softmax cross-entropy over integer class targets.
///
/// Returns `(mean loss, d_logits)` where `d_logits = (softmax − onehot) / N`.
///
/// # Panics
/// Panics if `targets.len()` differs from the logit row count or a target is
/// out of class range.
pub fn softmax_cross_entropy(logits: &Tensor, targets: &[u32]) -> (f32, Tensor) {
    let (n, classes) = logits.shape().as_matrix();
    assert_eq!(targets.len(), n, "target count mismatch");
    // Scratch-arena copy: the returned gradient reuses recycled storage.
    let mut probs = logits.clone_scratch();
    for r in 0..n {
        fedat_tensor::ops::softmax_inplace(probs.row_mut(r));
    }
    let mut loss = 0.0f64;
    for (r, &t) in targets.iter().enumerate() {
        let t = t as usize;
        assert!(t < classes, "target {t} out of range for {classes} classes");
        let p = probs.row(r)[t].max(1e-12);
        loss -= (p as f64).ln();
    }
    let inv_n = 1.0 / n as f32;
    for (r, &t) in targets.iter().enumerate() {
        let row = probs.row_mut(r);
        row[t as usize] -= 1.0;
        fedat_tensor::simd::scale(row, inv_n);
    }
    ((loss / n as f64) as f32, probs)
}

/// Classification accuracy of logits against integer targets.
pub fn accuracy(logits: &Tensor, targets: &[u32]) -> f32 {
    let preds = logits.argmax_rows();
    let correct = preds
        .iter()
        .zip(targets.iter())
        .filter(|(p, t)| **p == **t as usize)
        .count();
    correct as f32 / targets.len().max(1) as f32
}

/// Mean squared error. Returns `(mean loss, d_pred)`.
pub fn mse(pred: &Tensor, target: &Tensor) -> (f32, Tensor) {
    assert_eq!(pred.dims(), target.dims(), "mse shape mismatch");
    let n = pred.len() as f32;
    let diff = pred.sub(target);
    let loss = diff.norm_sq() / n;
    let grad = diff.scale(2.0 / n);
    (loss, grad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedat_tensor::rng::rng_for;

    #[test]
    fn uniform_logits_give_log_c_loss() {
        let logits = Tensor::zeros(&[4, 10]);
        let targets = [0u32, 3, 7, 9];
        let (loss, _) = softmax_cross_entropy(&logits, &targets);
        assert!((loss - (10.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn perfect_logits_give_near_zero_loss() {
        let mut logits = Tensor::full(&[2, 3], -50.0);
        *logits.at_mut(&[0, 1]) = 50.0;
        *logits.at_mut(&[1, 2]) = 50.0;
        let (loss, _) = softmax_cross_entropy(&logits, &[1, 2]);
        assert!(loss < 1e-5);
        assert_eq!(accuracy(&logits, &[1, 2]), 1.0);
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let mut rng = rng_for(1, 1);
        let logits = Tensor::randn(&mut rng, &[5, 4], 0.0, 2.0);
        let (_, grad) = softmax_cross_entropy(&logits, &[0, 1, 2, 3, 0]);
        for r in 0..5 {
            let s: f32 = grad.row(r).iter().sum();
            assert!(s.abs() < 1e-6, "row {r} gradient sums to {s}");
        }
    }

    #[test]
    fn xent_gradcheck() {
        let mut rng = rng_for(2, 1);
        let logits = Tensor::randn(&mut rng, &[3, 5], 0.0, 1.0);
        let targets = [1u32, 4, 2];
        let (_, grad) = softmax_cross_entropy(&logits, &targets);
        let eps = 1e-3f32;
        for idx in [0usize, 6, 14] {
            let mut lp = logits.clone();
            lp.data_mut()[idx] += eps;
            let (loss_p, _) = softmax_cross_entropy(&lp, &targets);
            let mut lm = logits.clone();
            lm.data_mut()[idx] -= eps;
            let (loss_m, _) = softmax_cross_entropy(&lm, &targets);
            let num = (loss_p - loss_m) / (2.0 * eps);
            let ana = grad.data()[idx];
            assert!(
                (num - ana).abs() < 1e-3,
                "idx {idx}: numeric {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn accuracy_counts_matches() {
        let logits = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 0.0], &[3, 2]);
        assert!((accuracy(&logits, &[0, 1, 1]) - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn mse_zero_for_identical() {
        let t = Tensor::ones(&[2, 2]);
        let (loss, grad) = mse(&t, &t);
        assert_eq!(loss, 0.0);
        assert!(grad.data().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn mse_gradcheck() {
        let mut rng = rng_for(3, 1);
        let pred = Tensor::randn(&mut rng, &[2, 3], 0.0, 1.0);
        let target = Tensor::randn(&mut rng, &[2, 3], 0.0, 1.0);
        let (_, grad) = mse(&pred, &target);
        let eps = 1e-3f32;
        let idx = 4;
        let mut pp = pred.clone();
        pp.data_mut()[idx] += eps;
        let (lp, _) = mse(&pp, &target);
        let mut pm = pred.clone();
        pm.data_mut()[idx] -= eps;
        let (lm, _) = mse(&pm, &target);
        let num = (lp - lm) / (2.0 * eps);
        assert!((num - grad.data()[idx]).abs() < 1e-3);
    }
}
