//! An embedding + LSTM + projection language model with manual truncated
//! BPTT, used for the Reddit next-token experiment (paper Fig. 8).
//!
//! The paper's Reddit model is "an embedding layer … followed by an LSTM
//! layer … and a dense layer" (§6 *Models*); [`LstmLm`] is the same shape
//! scaled to the synthetic token streams of `fedat-data`.

use crate::layer::Mode;
use crate::layers::sigmoid;
use crate::loss::softmax_cross_entropy;
use crate::model::{flatten_params, unflatten_params, Model};
use crate::optim::{Optimizer, ProxTerm};
use crate::param::Param;
use fedat_tensor::Tensor;
use rand::Rng;

/// LSTM language model: `tokens → embedding → LSTM → logits`.
///
/// * Input: `[batch, seq_len]` tensor whose entries are token ids stored as
///   `f32` (exact for vocabularies < 2²⁴).
/// * Output: `[batch · seq_len, vocab]` logits, row `n·T + t` holding the
///   prediction for position `t` of sample `n`. Targets are the next tokens
///   in the same layout.
pub struct LstmLm {
    vocab: usize,
    embed_dim: usize,
    hidden: usize,
    /// Embedding table `[vocab, embed_dim]`.
    embed: Param,
    /// Input-to-gates weights `[embed_dim, 4·hidden]`, gate order `i,f,g,o`.
    w_ih: Param,
    /// Hidden-to-gates weights `[hidden, 4·hidden]`.
    w_hh: Param,
    /// Gate bias `[4·hidden]` (forget-gate slice initialized to 1).
    b: Param,
    /// Output projection `[hidden, vocab]`.
    w_out: Param,
    /// Output bias `[vocab]`.
    b_out: Param,
    cache: Option<Cache>,
}

struct StepCache {
    tokens: Vec<usize>,
    x_emb: Tensor,
    i: Tensor,
    f: Tensor,
    g: Tensor,
    o: Tensor,
    tanh_c: Tensor,
    h_prev: Tensor,
    c_prev: Tensor,
    h: Tensor,
}

struct Cache {
    steps: Vec<StepCache>,
    batch: usize,
}

impl LstmLm {
    /// Builds a randomly initialized model.
    pub fn new<R: Rng + ?Sized>(
        rng: &mut R,
        vocab: usize,
        embed_dim: usize,
        hidden: usize,
    ) -> Self {
        let mut b = Tensor::zeros(&[4 * hidden]);
        // Forget-gate bias = 1: the standard trick so early training does not
        // immediately flush the cell state.
        for j in hidden..2 * hidden {
            b.data_mut()[j] = 1.0;
        }
        LstmLm {
            vocab,
            embed_dim,
            hidden,
            embed: Param::new(Tensor::randn(rng, &[vocab, embed_dim], 0.0, 0.1)),
            w_ih: Param::new(Tensor::kaiming(rng, &[embed_dim, 4 * hidden], embed_dim)),
            w_hh: Param::new(Tensor::kaiming(rng, &[hidden, 4 * hidden], hidden)),
            b: Param::new(b),
            w_out: Param::new(Tensor::kaiming(rng, &[hidden, vocab], hidden)),
            b_out: Param::new(Tensor::zeros(&[vocab])),
            cache: None,
        }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    fn params(&self) -> Vec<&Param> {
        vec![
            &self.embed,
            &self.w_ih,
            &self.w_hh,
            &self.b,
            &self.w_out,
            &self.b_out,
        ]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![
            &mut self.embed,
            &mut self.w_ih,
            &mut self.w_hh,
            &mut self.b,
            &mut self.w_out,
            &mut self.b_out,
        ]
    }

    fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    /// Forward pass over `[batch, seq_len]` token ids.
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        let (n, t_len) = x.shape().as_matrix();
        let h_dim = self.hidden;
        let mut h = Tensor::zeros(&[n, h_dim]);
        let mut c = Tensor::zeros(&[n, h_dim]);
        let mut logits = Tensor::zeros(&[n * t_len, self.vocab]);
        let mut steps = Vec::with_capacity(if mode == Mode::Train { t_len } else { 0 });

        for t in 0..t_len {
            // Gather token embeddings.
            let tokens: Vec<usize> = (0..n)
                .map(|r| {
                    let id = x.row(r)[t];
                    debug_assert!(
                        id >= 0.0 && (id as usize) < self.vocab,
                        "token id {id} out of range"
                    );
                    id as usize
                })
                .collect();
            let mut x_emb = Tensor::zeros(&[n, self.embed_dim]);
            for (r, &tok) in tokens.iter().enumerate() {
                x_emb.row_mut(r).copy_from_slice(
                    &self.embed.value.data()[tok * self.embed_dim..(tok + 1) * self.embed_dim],
                );
            }

            // Pre-activations: a = x·W_ih + h·W_hh + b, shape [n, 4H].
            let mut a = x_emb.matmul(&self.w_ih.value);
            let hh = h.matmul(&self.w_hh.value);
            a.zip_inplace(&hh, |p, q| p + q);
            a.add_row_bias(&self.b.value);

            // Split gates (i, f, g, o) and advance the cell.
            let mut gi = Tensor::zeros(&[n, h_dim]);
            let mut gf = Tensor::zeros(&[n, h_dim]);
            let mut gg = Tensor::zeros(&[n, h_dim]);
            let mut go = Tensor::zeros(&[n, h_dim]);
            for r in 0..n {
                let arow = a.row(r);
                for j in 0..h_dim {
                    gi.row_mut(r)[j] = sigmoid(arow[j]);
                    gf.row_mut(r)[j] = sigmoid(arow[h_dim + j]);
                    gg.row_mut(r)[j] = arow[2 * h_dim + j].tanh();
                    go.row_mut(r)[j] = sigmoid(arow[3 * h_dim + j]);
                }
            }
            let c_prev = c.clone();
            let h_prev = h.clone();
            let mut c_new = Tensor::zeros(&[n, h_dim]);
            for idx in 0..n * h_dim {
                c_new.data_mut()[idx] =
                    gf.data()[idx] * c_prev.data()[idx] + gi.data()[idx] * gg.data()[idx];
            }
            let tanh_c = c_new.map(f32::tanh);
            let mut h_new = Tensor::zeros(&[n, h_dim]);
            for idx in 0..n * h_dim {
                h_new.data_mut()[idx] = go.data()[idx] * tanh_c.data()[idx];
            }

            // Project to vocabulary logits; rows interleaved as n·T + t.
            let mut out_t = h_new.matmul(&self.w_out.value);
            out_t.add_row_bias(&self.b_out.value);
            for r in 0..n {
                logits.row_mut(r * t_len + t).copy_from_slice(out_t.row(r));
            }

            if mode == Mode::Train {
                steps.push(StepCache {
                    tokens,
                    x_emb,
                    i: gi,
                    f: gf,
                    g: gg,
                    o: go,
                    tanh_c,
                    h_prev,
                    c_prev,
                    h: h_new.clone(),
                });
            }
            h = h_new;
            c = c_new;
        }
        if mode == Mode::Train {
            self.cache = Some(Cache { steps, batch: n });
        }
        logits
    }

    /// Backward pass from `d_logits` (`[batch · seq_len, vocab]`).
    fn backward(&mut self, d_logits: &Tensor) {
        let cache = self
            .cache
            .take()
            .expect("LstmLm::backward without Train forward");
        let n = cache.batch;
        let t_len = cache.steps.len();
        let h_dim = self.hidden;

        let mut dh_next = Tensor::zeros(&[n, h_dim]);
        let mut dc_next = Tensor::zeros(&[n, h_dim]);

        for (t, step) in cache.steps.iter().enumerate().rev() {
            // Collect dy_t rows back into a contiguous [n, vocab] matrix.
            let mut dy = Tensor::zeros(&[n, self.vocab]);
            for r in 0..n {
                dy.row_mut(r).copy_from_slice(d_logits.row(r * t_len + t));
            }
            // Output projection gradients.
            let dwout = step.h.matmul_tn(&dy);
            self.w_out.grad.axpy_inplace(1.0, &dwout);
            self.b_out.grad.axpy_inplace(1.0, &dy.sum_rows());
            // dh = dy·W_outᵀ + carry from t+1.
            let mut dh = dy.matmul_nt(&self.w_out.value);
            dh.zip_inplace(&dh_next, |a, b| a + b);

            // Cell/gate gradients.
            let mut da = Tensor::zeros(&[n, 4 * h_dim]);
            let mut dc = Tensor::zeros(&[n, h_dim]);
            for idx in 0..n * h_dim {
                let o = step.o.data()[idx];
                let tc = step.tanh_c.data()[idx];
                let d_o = dh.data()[idx] * tc;
                let mut d_c = dh.data()[idx] * o * (1.0 - tc * tc) + dc_next.data()[idx];
                let i = step.i.data()[idx];
                let f = step.f.data()[idx];
                let g = step.g.data()[idx];
                let d_i = d_c * g;
                let d_f = d_c * step.c_prev.data()[idx];
                let d_g = d_c * i;
                d_c *= f; // becomes dc_next for t−1
                dc.data_mut()[idx] = d_c;
                let r = idx / h_dim;
                let j = idx % h_dim;
                let arow = da.row_mut(r);
                arow[j] = d_i * i * (1.0 - i);
                arow[h_dim + j] = d_f * f * (1.0 - f);
                arow[2 * h_dim + j] = d_g * (1.0 - g * g);
                arow[3 * h_dim + j] = d_o * o * (1.0 - o);
            }
            dc_next = dc;

            // Weight gradients.
            let dwih = step.x_emb.matmul_tn(&da);
            self.w_ih.grad.axpy_inplace(1.0, &dwih);
            let dwhh = step.h_prev.matmul_tn(&da);
            self.w_hh.grad.axpy_inplace(1.0, &dwhh);
            self.b.grad.axpy_inplace(1.0, &da.sum_rows());

            // Embedding gradients: scatter dx rows by token id.
            let dx = da.matmul_nt(&self.w_ih.value);
            for (r, &tok) in step.tokens.iter().enumerate() {
                let grad_row = &mut self.embed.grad.data_mut()
                    [tok * self.embed_dim..(tok + 1) * self.embed_dim];
                for (gv, &dv) in grad_row.iter_mut().zip(dx.row(r)) {
                    *gv += dv;
                }
            }
            // Hidden-state carry.
            dh_next = da.matmul_nt(&self.w_hh.value);
        }
    }
}

impl Model for LstmLm {
    fn logits(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        self.forward(x, mode)
    }

    fn train_batch(
        &mut self,
        x: &Tensor,
        y: &[u32],
        opt: &mut dyn Optimizer,
        prox: Option<&ProxTerm>,
    ) -> f32 {
        self.zero_grad();
        let logits = self.forward(x, Mode::Train);
        let (loss, d_logits) = softmax_cross_entropy(&logits, y);
        logits.recycle();
        self.backward(&d_logits);
        d_logits.recycle();
        let mut params = self.params_mut();
        if let Some(p) = prox {
            p.apply(&mut params);
        }
        opt.step(&mut params);
        loss
    }

    fn num_params(&self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }

    fn weights(&self) -> Vec<f32> {
        flatten_params(&self.params())
    }

    fn set_weights(&mut self, flat: &[f32]) {
        unflatten_params(&mut self.params_mut(), flat);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Adam;
    use fedat_tensor::rng::rng_for;
    use rand::RngExt;

    fn tiny_lm(seed: u64) -> LstmLm {
        let mut rng = rng_for(seed, 11);
        LstmLm::new(&mut rng, 6, 3, 4)
    }

    #[test]
    fn logits_shape_is_positions_by_vocab() {
        let mut lm = tiny_lm(1);
        let x = Tensor::from_vec(vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0], &[2, 3]);
        let logits = lm.logits(&x, Mode::Eval);
        assert_eq!(logits.dims(), &[6, 6]);
    }

    #[test]
    fn weights_roundtrip() {
        let mut a = tiny_lm(1);
        let mut b = tiny_lm(2);
        let w = a.weights();
        assert_eq!(w.len(), a.num_params());
        assert_ne!(b.weights(), w);
        b.set_weights(&w);
        assert_eq!(b.weights(), w);
        // And the two models now agree on outputs.
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 4]);
        assert_eq!(
            a.logits(&x, Mode::Eval).data(),
            b.logits(&x, Mode::Eval).data()
        );
    }

    #[test]
    fn full_gradcheck_on_tiny_model() {
        let mut lm = tiny_lm(3);
        let x = Tensor::from_vec(vec![0.0, 2.0, 4.0, 1.0, 3.0, 5.0], &[2, 3]);
        let y = [2u32, 4, 1, 3, 5, 0];

        lm.zero_grad();
        let logits = lm.forward(&x, Mode::Train);
        let (_, d_logits) = softmax_cross_entropy(&logits, &y);
        lm.backward(&d_logits);

        // Snapshot analytic gradients.
        let analytic: Vec<Vec<f32>> = lm.params().iter().map(|p| p.grad.data().to_vec()).collect();

        let loss_of = |lm: &mut LstmLm| -> f32 {
            let logits = lm.forward(&x, Mode::Eval);
            softmax_cross_entropy(&logits, &y).0
        };
        let eps = 1e-2f32;
        // Spot-check several coordinates in every parameter tensor.
        for (pi, probe) in [(0usize, 7usize), (1, 5), (2, 9), (3, 2), (4, 11), (5, 3)] {
            let orig = lm.params()[pi].value.data()[probe];
            lm.params_mut()[pi].value.data_mut()[probe] = orig + eps;
            let lp = loss_of(&mut lm);
            lm.params_mut()[pi].value.data_mut()[probe] = orig - eps;
            let lmm = loss_of(&mut lm);
            lm.params_mut()[pi].value.data_mut()[probe] = orig;
            let num = (lp - lmm) / (2.0 * eps);
            let ana = analytic[pi][probe];
            assert!(
                (num - ana).abs() < 5e-3 + 0.05 * num.abs().max(ana.abs()),
                "param {pi}[{probe}]: numeric {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn learns_a_deterministic_successor_function() {
        // Language: token k is always followed by (k+1) mod V. An LSTM must
        // drive the loss well below chance.
        let mut lm = tiny_lm(4);
        let v = 6usize;
        let mut rng = rng_for(5, 5);
        let (n, t) = (8, 5);
        let make_batch = |rng: &mut rand::rngs::StdRng| {
            let mut xs = Vec::with_capacity(n * t);
            let mut ys = Vec::with_capacity(n * t);
            for _ in 0..n {
                let start = rng.random_range(0..v);
                for p in 0..t {
                    let tok = (start + p) % v;
                    xs.push(tok as f32);
                    ys.push(((tok + 1) % v) as u32);
                }
            }
            (Tensor::from_vec(xs, &[n, t]), ys)
        };
        let mut opt = Adam::new(0.05);
        let (x0, y0) = make_batch(&mut rng);
        let before = lm.evaluate(&x0, &y0);
        for _ in 0..150 {
            let (x, y) = make_batch(&mut rng);
            lm.train_batch(&x, &y, &mut opt, None);
        }
        let after = lm.evaluate(&x0, &y0);
        assert!(
            after.loss < before.loss * 0.3,
            "LSTM failed to learn: {} → {}",
            before.loss,
            after.loss
        );
        assert!(after.accuracy > 0.9, "accuracy {} too low", after.accuracy);
    }
}
