//! Batched evaluation helpers.

use crate::layer::Mode;
use crate::loss::{accuracy, softmax_cross_entropy};
use crate::model::{EvalResult, Model};
use fedat_tensor::Tensor;

/// Evaluates `model` over `(x, y)` in mini-batches of `batch_size` rows,
/// merging results sample-weighted. Bounds peak memory on large test sets.
///
/// For sequence models, a "row" of `x` is one sequence and `y` must hold
/// `seq_len` targets per row (handled transparently by the target stride).
pub fn evaluate_batched(
    model: &mut dyn Model,
    x: &Tensor,
    y: &[u32],
    batch_size: usize,
) -> EvalResult {
    let (rows, cols) = x.shape().as_matrix();
    assert!(batch_size > 0, "batch_size must be positive");
    assert_eq!(
        y.len() % rows,
        0,
        "targets must be a whole multiple of rows"
    );
    let targets_per_row = y.len() / rows;
    let mut total = EvalResult::default();
    let mut start = 0usize;
    while start < rows {
        let end = (start + batch_size).min(rows);
        let n = end - start;
        let xb = Tensor::from_vec(
            fedat_tensor::scratch::take_copy(&x.data()[start * cols..end * cols]),
            &[n, cols],
        );
        let yb = &y[start * targets_per_row..end * targets_per_row];
        let logits = model.logits(&xb, Mode::Eval);
        xb.recycle();
        let (loss, grad) = softmax_cross_entropy(&logits, yb);
        grad.recycle();
        let batch = EvalResult {
            loss,
            accuracy: accuracy(&logits, yb),
            count: yb.len(),
        };
        logits.recycle();
        total = total.merge(batch);
        start = end;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::ModelSpec;
    use fedat_tensor::rng::rng_for;

    #[test]
    fn batched_eval_matches_full_eval() {
        let spec = ModelSpec::Mlp {
            input: 5,
            hidden: vec![8],
            classes: 3,
        };
        let mut m = spec.build(1);
        let mut rng = rng_for(2, 2);
        let x = Tensor::randn(&mut rng, &[23, 5], 0.0, 1.0);
        let y: Vec<u32> = (0..23).map(|i| (i % 3) as u32).collect();
        let full = m.evaluate(&x, &y);
        let batched = evaluate_batched(m.as_mut(), &x, &y, 7);
        assert_eq!(full.count, batched.count);
        assert!((full.loss - batched.loss).abs() < 1e-4);
        assert!((full.accuracy - batched.accuracy).abs() < 1e-6);
    }

    #[test]
    fn batched_eval_handles_sequences() {
        let spec = ModelSpec::LstmLm {
            vocab: 8,
            embed: 4,
            hidden: 5,
        };
        let mut m = spec.build(1);
        let x = Tensor::from_vec(vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0], &[2, 4]);
        let y: Vec<u32> = vec![1, 2, 3, 4, 5, 6, 7, 0];
        let r = evaluate_batched(m.as_mut(), &x, &y, 1);
        assert_eq!(r.count, 8);
        assert!(r.loss > 0.0);
    }
}
