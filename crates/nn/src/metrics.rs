//! Batched evaluation helpers: the serial [`evaluate_batched`] sweep and
//! the pool-backed [`StreamingEvaluator`].

use crate::layer::Mode;
use crate::loss::{accuracy, softmax_cross_entropy};
use crate::model::{EvalResult, Model};
use crate::models::{with_cached_model, ModelSpec};
use fedat_tensor::{parallel, Tensor};
use std::sync::atomic::{AtomicBool, Ordering};

/// Evaluates rows `[start, end)` of `(x, y)` as one mini-batch — the shared
/// per-batch kernel of [`evaluate_batched`] and [`StreamingEvaluator`], so
/// the serial and pooled paths are per-batch bit-identical.
fn eval_rows(model: &mut dyn Model, x: &Tensor, y: &[u32], start: usize, end: usize) -> EvalResult {
    let (rows, cols) = x.shape().as_matrix();
    let targets_per_row = y.len() / rows;
    let n = end - start;
    let xb = Tensor::from_vec(
        fedat_tensor::scratch::take_copy(&x.data()[start * cols..end * cols]),
        &[n, cols],
    );
    let yb = &y[start * targets_per_row..end * targets_per_row];
    let logits = model.logits(&xb, Mode::Eval);
    xb.recycle();
    let (loss, grad) = softmax_cross_entropy(&logits, yb);
    grad.recycle();
    let batch = EvalResult {
        loss,
        accuracy: accuracy(&logits, yb),
        count: yb.len(),
    };
    logits.recycle();
    batch
}

/// Evaluates `model` over `(x, y)` in mini-batches of `batch_size` rows,
/// merging results sample-weighted. Bounds peak memory on large test sets.
///
/// For sequence models, a "row" of `x` is one sequence and `y` must hold
/// `seq_len` targets per row (handled transparently by the target stride).
pub fn evaluate_batched(
    model: &mut dyn Model,
    x: &Tensor,
    y: &[u32],
    batch_size: usize,
) -> EvalResult {
    let (rows, _) = x.shape().as_matrix();
    assert!(batch_size > 0, "batch_size must be positive");
    assert_eq!(
        y.len() % rows,
        0,
        "targets must be a whole multiple of rows"
    );
    let mut total = EvalResult::default();
    let mut start = 0usize;
    while start < rows {
        let end = (start + batch_size).min(rows);
        total = total.merge(eval_rows(model, x, y, start, end));
        start = end;
    }
    total
}

/// Whether streaming evaluators fan mini-batches out across the kernel
/// pool (the default) or sweep them serially on one cached model — the
/// measured baseline for `BENCH_aggregate.json`.
static POOLED_EVAL: AtomicBool = AtomicBool::new(true);

/// Enables or disables pooled evaluation. The two paths are bit-identical
/// (same batch partition, same merge order); the toggle only changes
/// throughput.
pub fn set_pooled_eval(enabled: bool) {
    POOLED_EVAL.store(enabled, Ordering::Relaxed);
}

/// Whether streaming evaluators use the kernel pool.
pub fn pooled_eval() -> bool {
    POOLED_EVAL.load(Ordering::Relaxed)
}

/// A reusable streaming evaluator: a fixed mini-batch partition whose
/// per-batch results land in recycled slots, merged in batch order.
///
/// With [`pooled_eval`] enabled, batches are fanned out across the kernel
/// pool and each worker evaluates on its own thread-cached model instance.
/// The batch partition and the merge order are functions of the batch size
/// alone — never of the thread count — so the result is bit-identical to
/// the serial [`evaluate_batched`] sweep for any fan-out.
pub struct StreamingEvaluator {
    spec: ModelSpec,
    seed: u64,
    batch: usize,
    /// Reusable per-batch result slots, 3 floats each: loss, accuracy,
    /// count (counts are small integers, exactly representable).
    slots: Vec<f32>,
}

impl StreamingEvaluator {
    /// Builds an evaluator for `spec` with the given mini-batch size.
    ///
    /// # Panics
    /// Panics if `batch` is zero.
    pub fn new(spec: ModelSpec, seed: u64, batch: usize) -> Self {
        assert!(batch > 0, "batch size must be positive");
        StreamingEvaluator {
            spec,
            seed,
            batch,
            slots: Vec::new(),
        }
    }

    /// Loss/accuracy of `weights` over `(x, y)`.
    pub fn evaluate(&mut self, weights: &[f32], x: &Tensor, y: &[u32]) -> EvalResult {
        let (rows, cols) = x.shape().as_matrix();
        assert_eq!(
            y.len() % rows.max(1),
            0,
            "targets must be a whole multiple of rows"
        );
        if rows == 0 {
            return EvalResult::default();
        }
        if !pooled_eval() {
            // Serial baseline: one cached model sweeps every batch.
            return with_cached_model(&self.spec, self.seed, |model| {
                model.set_weights(weights);
                evaluate_batched(model, x, y, self.batch)
            });
        }
        let batch = self.batch;
        let n_batches = rows.div_ceil(batch);
        self.slots.clear();
        self.slots.resize(3 * n_batches, 0.0);
        let spec = &self.spec;
        let seed = self.seed;
        // Rough forward cost per batch (two f32 ops per weight would need
        // the model dimension; the input volume is a usable lower bound).
        let threads = parallel::plan_threads(n_batches, 4 * batch * cols);
        parallel::for_each_row_band(&mut self.slots, 3, threads, |first_batch, band| {
            with_cached_model(spec, seed, |model| {
                model.set_weights(weights);
                for (i, slot) in band.chunks_mut(3).enumerate() {
                    let b = first_batch + i;
                    let start = b * batch;
                    let end = ((b + 1) * batch).min(rows);
                    let r = eval_rows(model, x, y, start, end);
                    slot[0] = r.loss;
                    slot[1] = r.accuracy;
                    slot[2] = r.count as f32;
                }
            });
        });
        // Serial merge in batch order — identical to the serial sweep.
        let mut total = EvalResult::default();
        for slot in self.slots.chunks(3) {
            total = total.merge(EvalResult {
                loss: slot[0],
                accuracy: slot[1],
                count: slot[2] as usize,
            });
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::ModelSpec;
    use fedat_tensor::rng::rng_for;

    #[test]
    fn batched_eval_matches_full_eval() {
        let spec = ModelSpec::Mlp {
            input: 5,
            hidden: vec![8],
            classes: 3,
        };
        let mut m = spec.build(1);
        let mut rng = rng_for(2, 2);
        let x = Tensor::randn(&mut rng, &[23, 5], 0.0, 1.0);
        let y: Vec<u32> = (0..23).map(|i| (i % 3) as u32).collect();
        let full = m.evaluate(&x, &y);
        let batched = evaluate_batched(m.as_mut(), &x, &y, 7);
        assert_eq!(full.count, batched.count);
        assert!((full.loss - batched.loss).abs() < 1e-4);
        assert!((full.accuracy - batched.accuracy).abs() < 1e-6);
    }

    #[test]
    fn streaming_evaluator_matches_serial_sweep_bitwise() {
        let spec = ModelSpec::Mlp {
            input: 6,
            hidden: vec![10],
            classes: 4,
        };
        let weights = spec.build(3).weights();
        let mut rng = rng_for(4, 4);
        let x = Tensor::randn(&mut rng, &[150, 6], 0.0, 1.0);
        let y: Vec<u32> = (0..150).map(|i| (i % 4) as u32).collect();
        let mut model = spec.build(9);
        model.set_weights(&weights);
        let serial = evaluate_batched(model.as_mut(), &x, &y, 32);
        let mut streaming = StreamingEvaluator::new(spec, 3, 32);
        for threads in [1usize, 2, 4, 8] {
            // lint: allow(R5, reason = "in-crate unit test below the ToggleGuard layer")
            parallel::set_max_threads(threads);
            let pooled = streaming.evaluate(&weights, &x, &y);
            assert_eq!(
                serial.loss, pooled.loss,
                "loss diverged at {threads} threads"
            );
            assert_eq!(serial.accuracy, pooled.accuracy);
            assert_eq!(serial.count, pooled.count);
        }
        // lint: allow(R5, reason = "in-crate unit test below the ToggleGuard layer")
        parallel::set_max_threads(1);
    }

    #[test]
    fn pooled_toggle_is_bit_neutral() {
        let spec = ModelSpec::Mlp {
            input: 5,
            hidden: vec![7],
            classes: 3,
        };
        let weights = spec.build(2).weights();
        let mut rng = rng_for(5, 5);
        let x = Tensor::randn(&mut rng, &[90, 5], 0.0, 1.0);
        let y: Vec<u32> = (0..90).map(|i| (i % 3) as u32).collect();
        let mut streaming = StreamingEvaluator::new(spec, 1, 16);
        set_pooled_eval(false);
        let serial = streaming.evaluate(&weights, &x, &y);
        set_pooled_eval(true);
        let pooled = streaming.evaluate(&weights, &x, &y);
        assert_eq!(serial.loss, pooled.loss);
        assert_eq!(serial.accuracy, pooled.accuracy);
        assert_eq!(serial.count, pooled.count);
    }

    #[test]
    fn batched_eval_handles_sequences() {
        let spec = ModelSpec::LstmLm {
            vocab: 8,
            embed: 4,
            hidden: 5,
        };
        let mut m = spec.build(1);
        let x = Tensor::from_vec(vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0], &[2, 4]);
        let y: Vec<u32> = vec![1, 2, 3, 4, 5, 6, 7, 0];
        let r = evaluate_batched(m.as_mut(), &x, &y, 1);
        assert_eq!(r.count, 8);
        assert!(r.loss > 0.0);
    }
}
