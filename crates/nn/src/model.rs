//! The [`Model`] trait — the unit of federated training — and
//! [`Sequential`], the feed-forward implementation.

use crate::layer::{Layer, Mode};
use crate::loss::{accuracy, softmax_cross_entropy};
use crate::optim::{Optimizer, ProxTerm};
use crate::param::Param;
use fedat_tensor::Tensor;

/// Loss/accuracy pair returned by evaluation.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EvalResult {
    /// Mean loss over the evaluated samples.
    pub loss: f32,
    /// Fraction of correctly classified samples (or token positions).
    pub accuracy: f32,
    /// Number of samples evaluated.
    pub count: usize,
}

impl EvalResult {
    /// Sample-weighted merge of two evaluation results.
    pub fn merge(self, other: EvalResult) -> EvalResult {
        let count = self.count + other.count;
        if count == 0 {
            return EvalResult::default();
        }
        let wa = self.count as f32 / count as f32;
        let wb = other.count as f32 / count as f32;
        EvalResult {
            loss: wa * self.loss + wb * other.loss,
            accuracy: wa * self.accuracy + wb * other.accuracy,
            count,
        }
    }
}

/// A trainable classifier: the unit the FL strategies operate on.
///
/// Implementations must expose their weights as a single flat `Vec<f32>` in
/// a stable order; this vector is what the server aggregates and what the
/// polyline codec compresses.
pub trait Model: Send {
    /// Class logits for a batch (rows = samples or token positions).
    fn logits(&mut self, x: &Tensor, mode: Mode) -> Tensor;

    /// One optimizer step on a mini-batch. Returns the batch loss.
    ///
    /// `prox` optionally applies the FedAT/FedProx constraint gradient
    /// `λ(w − w_global)` (Eq. 3) before the optimizer update.
    fn train_batch(
        &mut self,
        x: &Tensor,
        y: &[u32],
        opt: &mut dyn Optimizer,
        prox: Option<&ProxTerm>,
    ) -> f32;

    /// Loss and accuracy on a labelled batch.
    fn evaluate(&mut self, x: &Tensor, y: &[u32]) -> EvalResult {
        let logits = self.logits(x, Mode::Eval);
        let (loss, grad) = softmax_cross_entropy(&logits, y);
        grad.recycle();
        let result = EvalResult {
            loss,
            accuracy: accuracy(&logits, y),
            count: y.len(),
        };
        logits.recycle();
        result
    }

    /// Total scalar weight count.
    fn num_params(&self) -> usize;

    /// Flattens all weights into a canonical-order vector.
    fn weights(&self) -> Vec<f32>;

    /// Replaces all weights from a canonical-order vector.
    ///
    /// # Panics
    /// Panics if `flat.len() != num_params()`.
    fn set_weights(&mut self, flat: &[f32]);
}

/// Helper shared by `Model` implementations: flatten parameter values.
pub fn flatten_params(params: &[&Param]) -> Vec<f32> {
    let total: usize = params.iter().map(|p| p.len()).sum();
    let mut flat = Vec::with_capacity(total);
    for p in params {
        flat.extend_from_slice(p.value.data());
    }
    flat
}

/// Helper shared by `Model` implementations: scatter a flat vector back.
///
/// # Panics
/// Panics if sizes disagree.
pub fn unflatten_params(params: &mut [&mut Param], flat: &[f32]) {
    let total: usize = params.iter().map(|p| p.len()).sum();
    assert_eq!(total, flat.len(), "weight vector size mismatch");
    let mut off = 0usize;
    for p in params.iter_mut() {
        let n = p.len();
        p.value.data_mut().copy_from_slice(&flat[off..off + n]);
        off += n;
    }
}

/// A feed-forward stack of [`Layer`]s ending in class logits.
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Builds a model from a layer pipeline.
    ///
    /// # Panics
    /// Panics if no layers are given.
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        assert!(!layers.is_empty(), "Sequential needs at least one layer");
        Sequential { layers }
    }

    /// Layer count.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Runs a full forward pass from a borrowed batch.
    ///
    /// The first layer reads `x` in place (or caches a scratch-arena copy
    /// when training requires it); no per-batch clone of the input is made.
    pub fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        let (first, rest) = self
            .layers
            .split_first_mut()
            .expect("Sequential has at least one layer");
        let mut acc = first.forward_ref(x, mode);
        for layer in rest {
            acc = layer.forward(acc, mode);
        }
        acc
    }

    /// Runs a full backward pass (after a `Train` forward).
    pub fn backward(&mut self, grad: Tensor) -> Tensor {
        self.layers
            .iter_mut()
            .rev()
            .fold(grad, |acc, layer| layer.backward(acc))
    }

    /// Clears all gradients.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }

    fn all_params(&self) -> Vec<&Param> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }

    fn all_params_mut(&mut self) -> Vec<&mut Param> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    /// Human-readable architecture summary, e.g. `dense→relu→dense`.
    pub fn describe(&self) -> String {
        self.layers
            .iter()
            .map(|l| l.name())
            .collect::<Vec<_>>()
            .join("→")
    }
}

impl Model for Sequential {
    fn logits(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        self.forward(x, mode)
    }

    fn train_batch(
        &mut self,
        x: &Tensor,
        y: &[u32],
        opt: &mut dyn Optimizer,
        prox: Option<&ProxTerm>,
    ) -> f32 {
        self.zero_grad();
        let logits = self.forward(x, Mode::Train);
        let (loss, d_logits) = softmax_cross_entropy(&logits, y);
        logits.recycle();
        let dx = self.backward(d_logits);
        dx.recycle();
        let mut params = self.all_params_mut();
        if let Some(p) = prox {
            p.apply(&mut params);
        }
        opt.step(&mut params);
        loss
    }

    fn num_params(&self) -> usize {
        self.all_params().iter().map(|p| p.len()).sum()
    }

    fn weights(&self) -> Vec<f32> {
        flatten_params(&self.all_params())
    }

    fn set_weights(&mut self, flat: &[f32]) {
        unflatten_params(&mut self.all_params_mut(), flat);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Relu};
    use crate::optim::Sgd;
    use fedat_tensor::rng::rng_for;

    fn tiny_mlp(seed: u64) -> Sequential {
        let mut rng = rng_for(seed, 3);
        Sequential::new(vec![
            Box::new(Dense::new(&mut rng, 4, 8)),
            Box::new(Relu::new()),
            Box::new(Dense::new(&mut rng, 8, 3)),
        ])
    }

    #[test]
    fn weights_roundtrip() {
        let m = tiny_mlp(1);
        let w = m.weights();
        assert_eq!(w.len(), m.num_params());
        assert_eq!(w.len(), 4 * 8 + 8 + 8 * 3 + 3);
        let mut m2 = tiny_mlp(2);
        assert_ne!(m2.weights(), w, "different seeds should differ");
        m2.set_weights(&w);
        assert_eq!(m2.weights(), w);
    }

    #[test]
    fn training_reduces_loss_on_separable_data() {
        let mut rng = rng_for(7, 1);
        let mut m = tiny_mlp(7);
        // Three Gaussian blobs, one per class.
        let n = 60;
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..n {
            let class = (i % 3) as u32;
            let center = [(class as f32) * 4.0, -(class as f32) * 4.0, 1.0, -1.0];
            for (j, &c) in center.iter().enumerate() {
                let _ = j;
                xs.push(c + 0.3 * fedat_tensor::rng::standard_normal(&mut rng));
            }
            ys.push(class);
        }
        let x = Tensor::from_vec(xs, &[n, 4]);
        let mut opt = Sgd::new(0.05, 0.9);
        let first = m.evaluate(&x, &ys).loss;
        for _ in 0..100 {
            m.train_batch(&x, &ys, &mut opt, None);
        }
        let result = m.evaluate(&x, &ys);
        assert!(
            result.loss < first * 0.3,
            "loss should drop substantially: {first} → {}",
            result.loss
        );
        assert!(
            result.accuracy > 0.9,
            "accuracy {} too low",
            result.accuracy
        );
    }

    #[test]
    fn prox_term_keeps_weights_near_global() {
        let mut rng = rng_for(9, 1);
        let x = Tensor::randn(&mut rng, &[32, 4], 0.0, 1.0);
        let y: Vec<u32> = (0..32).map(|i| (i % 3) as u32).collect();

        let run = |lambda: f32| -> f32 {
            let mut m = tiny_mlp(5);
            let global = m.weights();
            let prox = ProxTerm::new(lambda, global.clone());
            let mut opt = Sgd::new(0.1, 0.0);
            for _ in 0..50 {
                m.train_batch(&x, &y, &mut opt, Some(&prox));
            }
            let w = m.weights();
            fedat_tensor::ops::dist_sq(&w, &global).sqrt()
        };
        let drift_free = run(0.0);
        let drift_prox = run(2.0);
        assert!(
            drift_prox < drift_free,
            "prox should restrain drift: {drift_prox} !< {drift_free}"
        );
    }

    #[test]
    fn eval_result_merge_weighs_by_count() {
        let a = EvalResult {
            loss: 1.0,
            accuracy: 1.0,
            count: 10,
        };
        let b = EvalResult {
            loss: 3.0,
            accuracy: 0.0,
            count: 30,
        };
        let m = a.merge(b);
        assert_eq!(m.count, 40);
        assert!((m.loss - 2.5).abs() < 1e-6);
        assert!((m.accuracy - 0.25).abs() < 1e-6);
    }

    #[test]
    fn describe_lists_layers() {
        let m = tiny_mlp(1);
        assert_eq!(m.describe(), "dense→relu→dense");
    }
}
