//! Ready-made model builders matching the architectures of paper §6, plus
//! [`ModelSpec`] — a cheap, copyable description that rebuilds a model
//! anywhere (each simulated client constructs its own instance from the
//! spec and loads the current weights).

use crate::layers::{Conv2d, Dense, MaxPool2d, Relu};
use crate::lstm::LstmLm;
use crate::model::{Model, Sequential};
use fedat_tensor::conv::Conv2dSpec;
use fedat_tensor::rng::{rng_for, tags};

/// A buildable model architecture.
///
/// Specs are `Clone + Send + Sync`, so the simulator can hand one to every
/// worker thread; [`ModelSpec::build`] is deterministic in `seed`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ModelSpec {
    /// Multinomial logistic regression (`input → classes`), the convex
    /// objective used for Sentiment140.
    Logistic {
        /// Input feature count.
        input: usize,
        /// Number of classes.
        classes: usize,
    },
    /// Multi-layer perceptron with ReLU activations.
    Mlp {
        /// Input feature count.
        input: usize,
        /// Hidden layer widths.
        hidden: Vec<usize>,
        /// Number of classes.
        classes: usize,
    },
    /// Two-conv-block CNN for small synthetic images
    /// (`conv k3 → relu → pool2 → conv k3 → relu → pool2 → fc → relu → fc`).
    CnnLite {
        /// Input channels.
        channels: usize,
        /// Input height (must be divisible by 4).
        height: usize,
        /// Input width (must be divisible by 4).
        width: usize,
        /// Number of classes.
        classes: usize,
    },
    /// The paper's CIFAR CNN shape: three conv layers with 32/64/64 filters
    /// followed by dense 64 → classes (§6 *Models*). Needs height and width
    /// divisible by 8.
    CnnPaper {
        /// Input channels.
        channels: usize,
        /// Input height (must be divisible by 8).
        height: usize,
        /// Input width (must be divisible by 8).
        width: usize,
        /// Number of classes.
        classes: usize,
    },
    /// Embedding + LSTM + dense language model (the Reddit model).
    LstmLm {
        /// Vocabulary size.
        vocab: usize,
        /// Embedding dimension.
        embed: usize,
        /// LSTM hidden width.
        hidden: usize,
    },
}

impl ModelSpec {
    /// Builds a freshly initialized model; identical `(spec, seed)` pairs
    /// produce identical weights.
    ///
    /// **Invariant relied on by `fedat-core`'s thread-local model cache:**
    /// every architecture built here must be a pure function of its
    /// parameters — `set_weights` fully resets the model. Do **not** add
    /// layers with non-parameter state (`BatchNorm1d` running statistics,
    /// `Dropout` RNG position) to a spec without also giving cached
    /// instances a way to reset that state, or model reuse will silently
    /// leak state across simulated clients.
    pub fn build(&self, seed: u64) -> Box<dyn Model> {
        let mut rng = rng_for(seed, tags::INIT);
        match self {
            ModelSpec::Logistic { input, classes } => Box::new(Sequential::new(vec![Box::new(
                Dense::new(&mut rng, *input, *classes),
            )])),
            ModelSpec::Mlp {
                input,
                hidden,
                classes,
            } => {
                let mut layers: Vec<Box<dyn crate::layer::Layer>> = Vec::new();
                let mut dim = *input;
                for &h in hidden {
                    layers.push(Box::new(Dense::new(&mut rng, dim, h)));
                    layers.push(Box::new(Relu::new()));
                    dim = h;
                }
                layers.push(Box::new(Dense::new(&mut rng, dim, *classes)));
                Box::new(Sequential::new(layers))
            }
            ModelSpec::CnnLite {
                channels,
                height,
                width,
                classes,
            } => {
                assert!(
                    height % 4 == 0 && width % 4 == 0,
                    "CnnLite needs H,W divisible by 4, got {height}×{width}"
                );
                let (c, h, w) = (*channels, *height, *width);
                let spec1 = Conv2dSpec {
                    in_channels: c,
                    out_channels: 16,
                    kernel: 3,
                    stride: 1,
                    padding: 1,
                };
                let spec2 = Conv2dSpec {
                    in_channels: 16,
                    out_channels: 32,
                    kernel: 3,
                    stride: 1,
                    padding: 1,
                };
                let flat = 32 * (h / 4) * (w / 4);
                Box::new(Sequential::new(vec![
                    Box::new(Conv2d::new(&mut rng, spec1, h, w)),
                    Box::new(Relu::new()),
                    Box::new(MaxPool2d::new(16, h, w, 2)),
                    Box::new(Conv2d::new(&mut rng, spec2, h / 2, w / 2)),
                    Box::new(Relu::new()),
                    Box::new(MaxPool2d::new(32, h / 2, w / 2, 2)),
                    Box::new(Dense::new(&mut rng, flat, 64)),
                    Box::new(Relu::new()),
                    Box::new(Dense::new(&mut rng, 64, *classes)),
                ]))
            }
            ModelSpec::CnnPaper {
                channels,
                height,
                width,
                classes,
            } => {
                assert!(
                    height % 8 == 0 && width % 8 == 0,
                    "CnnPaper needs H,W divisible by 8, got {height}×{width}"
                );
                let (c, h, w) = (*channels, *height, *width);
                let s1 = Conv2dSpec {
                    in_channels: c,
                    out_channels: 32,
                    kernel: 3,
                    stride: 1,
                    padding: 1,
                };
                let s2 = Conv2dSpec {
                    in_channels: 32,
                    out_channels: 64,
                    kernel: 3,
                    stride: 1,
                    padding: 1,
                };
                let s3 = Conv2dSpec {
                    in_channels: 64,
                    out_channels: 64,
                    kernel: 3,
                    stride: 1,
                    padding: 1,
                };
                let flat = 64 * (h / 8) * (w / 8);
                Box::new(Sequential::new(vec![
                    Box::new(Conv2d::new(&mut rng, s1, h, w)),
                    Box::new(Relu::new()),
                    Box::new(MaxPool2d::new(32, h, w, 2)),
                    Box::new(Conv2d::new(&mut rng, s2, h / 2, w / 2)),
                    Box::new(Relu::new()),
                    Box::new(MaxPool2d::new(64, h / 2, w / 2, 2)),
                    Box::new(Conv2d::new(&mut rng, s3, h / 4, w / 4)),
                    Box::new(Relu::new()),
                    Box::new(MaxPool2d::new(64, h / 4, w / 4, 2)),
                    Box::new(Dense::new(&mut rng, flat, 64)),
                    Box::new(Relu::new()),
                    Box::new(Dense::new(&mut rng, 64, *classes)),
                ]))
            }
            ModelSpec::LstmLm {
                vocab,
                embed,
                hidden,
            } => Box::new(LstmLm::new(&mut rng, *vocab, *embed, *hidden)),
        }
    }

    /// Scalar weight count of the built model (builds one to count; cached
    /// by callers that care).
    pub fn num_params(&self) -> usize {
        self.build(0).num_params()
    }
}

/// Maximum cached models per thread (one per distinct architecture a
/// worker touches; the harness runs a handful of tasks per thread).
const MODEL_CACHE_CAP: usize = 4;

thread_local! {
    static MODEL_CACHE: std::cell::RefCell<Vec<(ModelSpec, Box<dyn Model>)>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Runs `f` with a thread-cached model instance for `spec`, building one
/// (seeded with `seed`) on first use per thread. The single cache backs
/// both the training hot path (`fedat-core::local`) and the pooled
/// evaluators, so the reuse policy cannot drift between them.
///
/// Reuse is behavior-neutral as long as the caller overwrites the weights
/// via `set_weights` before inference or training — none of the spec-built
/// architectures carry non-parameter state across batches, the invariant
/// documented on [`ModelSpec::build`] — so which thread (and thus which
/// cached instance) runs `f` cannot affect results.
pub fn with_cached_model<R>(spec: &ModelSpec, seed: u64, f: impl FnOnce(&mut dyn Model) -> R) -> R {
    let mut model = MODEL_CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        match cache.iter().position(|(s, _)| s == spec) {
            Some(i) => cache.swap_remove(i).1,
            None => spec.build(seed),
        }
    });
    let result = f(model.as_mut());
    MODEL_CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        if cache.len() >= MODEL_CACHE_CAP {
            cache.remove(0); // oldest entry
        }
        cache.push((spec.clone(), model));
    });
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Mode;
    use fedat_tensor::Tensor;

    #[test]
    fn logistic_param_count() {
        let spec = ModelSpec::Logistic {
            input: 20,
            classes: 3,
        };
        assert_eq!(spec.num_params(), 20 * 3 + 3);
    }

    #[test]
    fn mlp_param_count() {
        let spec = ModelSpec::Mlp {
            input: 10,
            hidden: vec![16, 8],
            classes: 4,
        };
        let expected = 10 * 16 + 16 + 16 * 8 + 8 + 8 * 4 + 4;
        assert_eq!(spec.num_params(), expected);
    }

    #[test]
    fn build_is_deterministic_in_seed() {
        let spec = ModelSpec::Mlp {
            input: 6,
            hidden: vec![5],
            classes: 2,
        };
        let a = spec.build(42).weights();
        let b = spec.build(42).weights();
        let c = spec.build(43).weights();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn cnn_lite_forward_shape() {
        let spec = ModelSpec::CnnLite {
            channels: 3,
            height: 8,
            width: 8,
            classes: 10,
        };
        let mut m = spec.build(1);
        let x = Tensor::zeros(&[2, 3 * 8 * 8]);
        let logits = m.logits(&x, Mode::Eval);
        assert_eq!(logits.dims(), &[2, 10]);
    }

    #[test]
    fn cnn_paper_forward_shape() {
        let spec = ModelSpec::CnnPaper {
            channels: 3,
            height: 16,
            width: 16,
            classes: 10,
        };
        let mut m = spec.build(1);
        let x = Tensor::zeros(&[1, 3 * 16 * 16]);
        let logits = m.logits(&x, Mode::Eval);
        assert_eq!(logits.dims(), &[1, 10]);
        // 3 conv layers + 2 dense → 8 weight tensors (w+b each is 2) = 10 params.
        assert!(
            m.num_params() > 50_000,
            "paper CNN should be reasonably sized"
        );
    }

    #[test]
    fn lstm_spec_builds() {
        let spec = ModelSpec::LstmLm {
            vocab: 20,
            embed: 8,
            hidden: 12,
        };
        let mut m = spec.build(3);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 4]);
        assert_eq!(m.logits(&x, Mode::Eval).dims(), &[4, 20]);
    }
}
